// Electricity-transformer forecasting, end to end: the paper's flagship
// downstream task (intro: "forecasting for electric power").
//
//   build/examples/forecasting_ett
//
// Compares three ways to forecast the same series:
//   (a) TimeDRL linear evaluation  (frozen SSL encoder + linear head)
//   (b) TimeDRL fine-tuned         (encoder updated with the head)
//   (c) supervised-from-scratch    (same architecture, no pre-training)
// across two horizons, and round-trips the dataset through CSV to show the
// I/O path a real deployment would use.

#include <cstdio>

#include "core/model.h"
#include "core/pipelines.h"
#include "core/pretrainer.h"
#include "core/sources.h"
#include "data/csv.h"
#include "data/scaler.h"
#include "data/synthetic.h"
#include "data/windows.h"

using namespace timedrl;  // NOLINT: example brevity

namespace {

constexpr int64_t kInputLength = 48;

core::TimeDrlConfig ModelConfig() {
  core::TimeDrlConfig config;
  config.input_channels = 1;  // channel independence
  config.input_length = kInputLength;
  config.patch_length = 8;
  config.patch_stride = 8;
  config.d_model = 32;
  config.num_heads = 4;
  config.num_layers = 2;
  return config;
}

double RunProbe(core::TimeDrlModel* model, const data::TimeSeries& train,
                const data::TimeSeries& test, int64_t horizon,
                bool fine_tune, Rng& rng) {
  data::ForecastingWindows train_windows(train, kInputLength, horizon, 2);
  data::ForecastingWindows test_windows(test, kInputLength, horizon, 2);
  core::ForecastingPipeline pipeline(model, horizon, train.channels,
                                     /*channel_independent=*/true, rng);
  core::DownstreamConfig config;
  config.train.epochs = 8;
  config.fine_tune_encoder = fine_tune;
  pipeline.Train(train_windows, config, rng);
  return pipeline.Evaluate(test_windows).mse;
}

}  // namespace

int main() {
  Rng rng(7);

  // Generate the ETT-like benchmark series and persist it as CSV — the same
  // format the real ETTh1.csv ships in.
  data::TimeSeries generated =
      data::MakeEttLike(2500, /*period=*/24, /*variant=*/1, rng);
  const char* path = "/tmp/etth1_like.csv";
  if (!data::SaveCsv(generated, path,
                     {"HUFL", "HULL", "MUFL", "MULL", "LUFL", "LULL", "OT"})) {
    return 1;
  }
  data::TimeSeries series;
  if (!data::LoadCsv(path, &series)) return 1;
  std::printf("loaded %s: %lld rows x %lld channels\n", path,
              static_cast<long long>(series.length()),
              static_cast<long long>(series.channels));

  data::ForecastingSplits splits = data::ChronologicalSplit(series);
  data::StandardScaler scaler;
  scaler.Fit(splits.train);
  data::TimeSeries train = scaler.Transform(splits.train);
  data::TimeSeries test = scaler.Transform(splits.test);

  // Pre-train once; reuse the encoder for both horizons (timestamp-level
  // embeddings are horizon-agnostic).
  data::ForecastingWindows unlabeled(train, kInputLength, 0, 2);
  core::ForecastingSource source(&unlabeled, /*channel_independent=*/true);
  core::PretrainConfig pretrain;
  pretrain.train.epochs = 10;

  std::printf("\n%-10s %-12s %-12s %-12s\n", "Horizon", "LinearEval",
              "FineTuned", "Scratch");
  for (int64_t horizon : {12, 24}) {
    Rng probe_rng(100 + horizon);

    core::TimeDrlModel linear_model(ModelConfig(), probe_rng);
    core::Pretrain(&linear_model, source, pretrain, probe_rng);
    const double linear_mse =
        RunProbe(&linear_model, train, test, horizon, false, probe_rng);

    core::TimeDrlModel finetune_model(ModelConfig(), probe_rng);
    core::Pretrain(&finetune_model, source, pretrain, probe_rng);
    const double finetune_mse =
        RunProbe(&finetune_model, train, test, horizon, true, probe_rng);

    core::TimeDrlModel scratch_model(ModelConfig(), probe_rng);
    const double scratch_mse =
        RunProbe(&scratch_model, train, test, horizon, true, probe_rng);

    std::printf("%-10lld %-12.3f %-12.3f %-12.3f\n",
                static_cast<long long>(horizon), linear_mse, finetune_mse,
                scratch_mse);
  }
  std::printf("\nExpected: pre-trained variants beat training from scratch; "
              "fine-tuning edges out the frozen probe.\n");
  return 0;
}
