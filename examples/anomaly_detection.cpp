// Industrial anomaly detection — the third application the paper's intro
// motivates ("anomaly detection in industrial machines").
//
//   build/examples/anomaly_detection
//
// Pre-trains TimeDRL on normal machine telemetry, then flags windows whose
// timestamp-predictive reconstruction error is abnormally high. No labels
// are used at any point except for the final evaluation.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/model.h"
#include "core/pretrainer.h"
#include "core/sources.h"
#include "data/synthetic.h"
#include "data/windows.h"

using namespace timedrl;  // NOLINT: example brevity

namespace {

constexpr int64_t kWindow = 48;

/// Injects short square-wave faults into a copy of the series; returns the
/// contaminated series and the set of fault timesteps.
data::TimeSeries InjectFaults(const data::TimeSeries& clean, Rng& rng,
                              std::vector<bool>* fault_mask) {
  data::TimeSeries contaminated = clean;
  fault_mask->assign(clean.length(), false);
  const int64_t num_faults = clean.length() / 400;
  for (int64_t f = 0; f < num_faults; ++f) {
    const int64_t start = rng.UniformInt(0, clean.length() - 12);
    const int64_t duration = rng.UniformInt(4, 10);
    const int64_t channel = rng.UniformInt(0, clean.channels - 1);
    const float level = rng.Uniform(4.0f, 7.0f);
    for (int64_t t = start; t < std::min(start + duration, clean.length());
         ++t) {
      contaminated.at(t, channel) += level;
      (*fault_mask)[t] = true;
    }
  }
  return contaminated;
}

}  // namespace

int main() {
  Rng rng(55);

  // Normal operation data (train) and contaminated data (test).
  data::TimeSeries normal = data::MakeEttLike(2200, 24, 1, rng);
  data::ForecastingSplits splits = data::ChronologicalSplit(normal);
  std::vector<bool> fault_mask;
  data::TimeSeries contaminated = InjectFaults(splits.test, rng, &fault_mask);

  core::TimeDrlConfig config;
  config.input_channels = normal.channels;
  config.input_length = kWindow;
  config.patch_length = 8;
  config.patch_stride = 8;
  config.d_model = 32;
  config.num_heads = 4;
  config.num_layers = 2;
  core::TimeDrlModel model(config, rng);

  // Pre-train on normal data only.
  data::ForecastingWindows train_windows(splits.train, kWindow, 0, 2);
  core::ForecastingSource source(&train_windows,
                                 /*channel_independent=*/false);
  core::PretrainConfig pretrain;
  pretrain.train.epochs = 10;
  core::Pretrain(&model, source, pretrain, rng);
  std::printf("pre-trained on %lld normal windows\n",
              static_cast<long long>(train_windows.size()));

  // Score every test window by max per-patch reconstruction error.
  data::ForecastingWindows test_windows(contaminated, kWindow, 0, kWindow);
  std::vector<double> scores;
  std::vector<bool> window_is_anomalous;
  {
    NoGradGuard guard;
    for (int64_t i = 0; i < test_windows.size(); ++i) {
      Tensor errors = model.ReconstructionError(test_windows.GetInputs({i}));
      double score = 0.0;
      for (float e : errors.data()) score = std::max(score, double{e});
      scores.push_back(score);
      bool anomalous = false;
      for (int64_t t = i * kWindow; t < (i + 1) * kWindow; ++t) {
        if (fault_mask[t]) anomalous = true;
      }
      window_is_anomalous.push_back(anomalous);
    }
  }

  // Report precision at the true anomaly count and score separation.
  std::vector<int64_t> order(scores.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](int64_t a, int64_t b) { return scores[a] > scores[b]; });
  int64_t actual = 0;
  for (bool anomalous : window_is_anomalous) actual += anomalous;
  int64_t hits = 0;
  for (int64_t k = 0; k < actual; ++k) hits += window_is_anomalous[order[k]];

  double normal_mean = 0;
  double anomalous_mean = 0;
  int64_t normal_count = 0;
  for (size_t i = 0; i < scores.size(); ++i) {
    if (window_is_anomalous[i]) {
      anomalous_mean += scores[i];
    } else {
      normal_mean += scores[i];
      ++normal_count;
    }
  }
  normal_mean /= std::max<int64_t>(1, normal_count);
  anomalous_mean /= std::max<int64_t>(1, actual);

  std::printf("test windows: %zu (%lld anomalous)\n", scores.size(),
              static_cast<long long>(actual));
  std::printf("mean reconstruction score: normal %.4f vs anomalous %.4f\n",
              normal_mean, anomalous_mean);
  std::printf("precision@%lld: %.2f\n", static_cast<long long>(actual),
              actual > 0 ? static_cast<double>(hits) / actual : 0.0);
  std::printf("\nExpected: anomalous windows score several times higher than "
              "normal ones.\n");
  return 0;
}
