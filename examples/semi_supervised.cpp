// Semi-supervised learning: the paper's headline real-world scenario
// (Section V-C) — lots of unlabeled data, few labels.
//
//   build/examples/semi_supervised
//
// Sweeps the labeled fraction of an epilepsy-detection dataset and compares
// supervised-only training against TimeDRL pre-training + fine-tuning.

#include <cstdio>
#include <vector>

#include "core/model.h"
#include "core/pipelines.h"
#include "core/pretrainer.h"
#include "core/sources.h"
#include "data/synthetic.h"

using namespace timedrl;  // NOLINT: example brevity

namespace {

core::TimeDrlConfig ModelConfig(const data::ClassificationDataset& dataset) {
  core::TimeDrlConfig config;
  config.input_channels = dataset.channels;
  config.input_length = dataset.window_length;
  config.patch_length = 8;
  config.patch_stride = 8;
  config.d_model = 32;
  config.num_heads = 4;
  config.num_layers = 2;
  return config;
}

}  // namespace

int main() {
  Rng rng(33);
  data::ClassificationDataset dataset = data::MakeEpilepsyLike(700, 96, rng);
  data::ClassificationSplits splits = data::StratifiedSplit(dataset, 0.7, rng);
  std::printf("Epilepsy-like EEG: %lld train / %lld test windows\n",
              static_cast<long long>(splits.train.size()),
              static_cast<long long>(splits.test.size()));

  core::DownstreamConfig finetune;
  finetune.train.epochs = 12;
  finetune.fine_tune_encoder = true;

  std::printf("\n%-10s %-16s %-16s\n", "Labels", "Supervised ACC",
              "TimeDRL(FT) ACC");
  for (double fraction : {0.05, 0.10, 0.25, 0.50, 1.00}) {
    const int64_t labeled_count =
        std::max<int64_t>(8, static_cast<int64_t>(splits.train.size() *
                                                  fraction));
    std::vector<int64_t> indices(labeled_count);
    for (int64_t i = 0; i < labeled_count; ++i) indices[i] = i;
    data::ClassificationDataset labeled = splits.train.Subset(indices);

    // Supervised: labeled subset only, random init.
    Rng supervised_rng(201);
    core::TimeDrlModel supervised_model(ModelConfig(dataset), supervised_rng);
    core::ClassificationPipeline supervised(&supervised_model,
                                            dataset.num_classes,
                                            core::Pooling::kCls,
                                            supervised_rng);
    supervised.Train(labeled, finetune, supervised_rng);
    const double supervised_acc =
        supervised.Evaluate(splits.test).accuracy * 100;

    // TimeDRL (FT): pre-train on ALL unlabeled windows, fine-tune on the
    // labeled subset.
    Rng ours_rng(202);
    core::TimeDrlModel model(ModelConfig(dataset), ours_rng);
    core::ClassificationSource source(&splits.train);  // labels unused
    core::PretrainConfig pretrain;
    pretrain.train.epochs = 15;
    core::Pretrain(&model, source, pretrain, ours_rng);
    core::ClassificationPipeline ours(&model, dataset.num_classes,
                                      core::Pooling::kCls, ours_rng);
    ours.Train(labeled, finetune, ours_rng);
    const double ours_acc = ours.Evaluate(splits.test).accuracy * 100;

    std::printf("%-10.0f %-16.2f %-16.2f\n", fraction * 100, supervised_acc,
                ours_acc);
  }
  std::printf("\nExpected: the pre-trained model holds up as labels shrink; "
              "the supervised model degrades faster.\n");
  return 0;
}
