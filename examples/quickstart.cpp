// Quickstart: pre-train TimeDRL on an unlabeled multivariate series, then
// use both embedding levels.
//
//   build/examples/quickstart
//
// Walks through the whole public API surface in ~80 lines:
//   1. generate (or load) a multivariate time-series
//   2. self-supervised pre-training with the two pretext tasks
//   3. timestamp-level embeddings -> linear forecasting probe
//   4. instance-level embedding inspection

#include <cstdio>

#include "core/model.h"
#include "core/pipelines.h"
#include "core/pretrainer.h"
#include "core/sources.h"
#include "data/scaler.h"
#include "data/synthetic.h"
#include "data/windows.h"
#include "obs/observer.h"

using namespace timedrl;  // NOLINT: example brevity

int main() {
  Rng rng(42);

  // 1. An ETT-like series: 7 channels, hourly seasonality. Swap in
  //    data::LoadCsv(...) to use your own data.
  data::TimeSeries series = data::MakeEttLike(2000, /*period=*/24,
                                              /*variant=*/1, rng);
  data::ForecastingSplits splits = data::ChronologicalSplit(series);
  data::StandardScaler scaler;
  scaler.Fit(splits.train);
  data::TimeSeries train = scaler.Transform(splits.train);
  data::TimeSeries test = scaler.Transform(splits.test);
  std::printf("series: %lld steps x %lld channels\n",
              static_cast<long long>(series.length()),
              static_cast<long long>(series.channels));

  // 2. Configure TimeDRL. Channel independence treats each channel as a
  //    univariate stream through a shared model (input_channels = 1).
  core::TimeDrlConfig config;
  config.input_channels = 1;
  config.input_length = 48;
  config.patch_length = 8;   // 48 steps -> 6 patch tokens + [CLS]
  config.patch_stride = 8;
  config.d_model = 32;
  config.num_heads = 4;
  config.num_layers = 2;
  core::TimeDrlModel model(config, rng);
  std::printf("model: %lld parameters\n",
              static_cast<long long>(model.NumParameters()));

  // Pre-train on unlabeled windows: timestamp-predictive + instance-
  // contrastive tasks, no augmentations, no labels.
  data::ForecastingWindows unlabeled(train, config.input_length,
                                     /*horizon=*/0, /*stride=*/2);
  core::ForecastingSource source(&unlabeled, /*channel_independent=*/true);
  core::PretrainConfig pretrain;
  pretrain.train.epochs = 8;
  pretrain.train.batch_size = 32;
  // Observers replace the old `verbose` flag: ConsoleObserver logs one line
  // per epoch, MetricsObserver feeds the process-wide metrics registry.
  obs::ConsoleObserver console;
  pretrain.train.observer = &console;
  core::PretrainHistory history =
      core::Pretrain(&model, source, pretrain, rng);
  std::printf("pretext loss: %.4f -> %.4f (L_P %.4f -> %.4f, L_C %.4f -> "
              "%.4f)\n",
              history.total.front(), history.total.back(),
              history.predictive.front(), history.predictive.back(),
              history.contrastive.front(), history.contrastive.back());

  // 3. Timestamp-level embeddings drive forecasting: freeze the encoder and
  //    train only a linear head (the paper's linear evaluation).
  const int64_t horizon = 24;
  data::ForecastingWindows train_windows(train, config.input_length, horizon,
                                         /*stride=*/2);
  data::ForecastingWindows test_windows(test, config.input_length, horizon,
                                        /*stride=*/2);
  core::ForecastingPipeline pipeline(&model, horizon, series.channels,
                                     /*channel_independent=*/true, rng);
  core::DownstreamConfig probe;
  probe.train.epochs = 8;
  pipeline.Train(train_windows, probe, rng);
  core::ForecastMetrics metrics = pipeline.Evaluate(test_windows);
  std::printf("forecast (T=%lld): MSE %.3f, MAE %.3f\n",
              static_cast<long long>(horizon), metrics.mse, metrics.mae);

  // 4. Instance-level embedding of one window, straight from the [CLS]
  //    token — disentangled from the timestamp-level embeddings above.
  auto [x, y] = test_windows.GetBatch({0});
  (void)y;
  NoGradGuard guard;
  core::TimeDrlModel::Encoded encoded =
      model.Encode(data::ToChannelIndependent(x));
  std::printf("instance embedding: %s\n",
              encoded.instance.ToString().c_str());
  std::printf("timestamp embeddings: %s\n",
              ShapeToString(encoded.timestamp.shape()).c_str());
  return 0;
}
