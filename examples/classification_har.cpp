// Human-activity recognition from wearable sensors: the paper's flagship
// classification task (intro: "activity classification in smartwatches").
//
//   build/examples/classification_har
//
// Pre-trains TimeDRL on unlabeled activity windows, then classifies with a
// linear probe on the [CLS] instance embedding, reporting the paper's three
// metrics (ACC / MF1 / Cohen's kappa) and the per-class confusion matrix.

#include <cstdio>
#include <vector>

#include "core/model.h"
#include "core/pipelines.h"
#include "core/pretrainer.h"
#include "core/sources.h"
#include "data/synthetic.h"
#include "metrics/metrics.h"

using namespace timedrl;  // NOLINT: example brevity

int main() {
  Rng rng(21);

  // 9 IMU channels, 6 activities (walking, sitting, ...), as in UCI HAR.
  data::ClassificationDataset dataset = data::MakeHarLike(600, 64, rng);
  data::ClassificationSplits splits = data::StratifiedSplit(dataset, 0.7, rng);
  std::printf("HAR-like: %lld train / %lld test windows, %lld channels, "
              "%lld classes\n",
              static_cast<long long>(splits.train.size()),
              static_cast<long long>(splits.test.size()),
              static_cast<long long>(dataset.channels),
              static_cast<long long>(dataset.num_classes));

  // Classification keeps all channels together (no channel independence —
  // the paper found this works better for classification).
  core::TimeDrlConfig config;
  config.input_channels = dataset.channels;
  config.input_length = dataset.window_length;
  config.patch_length = 8;
  config.patch_stride = 8;
  config.d_model = 64;
  config.num_heads = 4;
  config.ff_dim = 128;
  config.num_layers = 2;
  core::TimeDrlModel model(config, rng);

  core::ClassificationSource source(&splits.train);
  core::PretrainConfig pretrain;
  pretrain.train.epochs = 20;
  core::PretrainHistory history = core::Pretrain(&model, source, pretrain,
                                                 rng);
  std::printf("pretext loss %.3f -> %.3f\n", history.total.front(),
              history.total.back());

  // Linear probe on the frozen [CLS] embedding.
  core::ClassificationPipeline pipeline(&model, dataset.num_classes,
                                        core::Pooling::kCls, rng);
  core::DownstreamConfig probe;
  probe.train.epochs = 30;
  probe.train.learning_rate = 3e-3f;
  pipeline.Train(splits.train, probe, rng);
  core::ClassificationMetrics result = pipeline.Evaluate(splits.test);
  std::printf("\nlinear evaluation:  ACC %.2f%%  MF1 %.2f%%  kappa %.2f%%\n",
              result.accuracy * 100, result.macro_f1 * 100,
              result.kappa * 100);

  // Confusion matrix for a per-activity view.
  std::vector<int64_t> predictions = pipeline.Predict(splits.test);
  std::vector<int64_t> confusion = metrics::ConfusionMatrix(
      predictions, splits.test.labels, dataset.num_classes);
  std::printf("\nconfusion matrix (rows = true activity):\n");
  for (int64_t i = 0; i < dataset.num_classes; ++i) {
    std::printf("  activity %lld:", static_cast<long long>(i));
    for (int64_t j = 0; j < dataset.num_classes; ++j) {
      std::printf(" %4lld",
                  static_cast<long long>(confusion[i * dataset.num_classes +
                                                   j]));
    }
    std::printf("\n");
  }
  return 0;
}
