// trace_export — runs an instrumented TimeDRL workload with tracing on and
// writes the result as chrome://tracing / Perfetto JSON.
//
// Open the output at chrome://tracing (or https://ui.perfetto.dev): spans
// nest from the pre-training epoch loop down through autograd ops to
// individual kernels, with buffer-pool and optimizer activity alongside.
// The metrics-registry snapshot rides along under "otherData.metrics".
//
// Usage:
//   trace_export [--out FILE] [--epochs N] [--batch N] [--length N]
//                [--channels C] [--serve-requests N] [--summary]
//
// After pre-training, the trained model is frozen into a temporary
// checkpoint and served through serve::MicroBatcher for --serve-requests
// requests (0 disables the phase), so the trace also shows the inference
// side: serve/warmup, serve/batch, and serve/encode spans next to the
// training spans.
//
// Any already-running binary can produce the same file without this tool by
// setting TIMEDRL_TRACE=1 (and optionally TIMEDRL_TRACE_OUT=FILE) in its
// environment; trace_export exists so there is a one-command way to get a
// representative trace of the full training stack.

#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/model.h"
#include "core/pretrainer.h"
#include "core/sources.h"
#include "data/synthetic.h"
#include "data/windows.h"
#include "nn/serialize.h"
#include "obs/observer.h"
#include "obs/trace.h"
#include "serve/inference_session.h"
#include "serve/micro_batcher.h"
#include "tools/flag_parser.h"

namespace timedrl::tools {
namespace {

int Run(const FlagParser& flags) {
  const std::string out = flags.GetString("out", "timedrl_trace.json");
  const int64_t epochs = flags.GetInt("epochs", 2);
  const int64_t batch = flags.GetInt("batch", 16);
  const int64_t length = flags.GetInt("length", 64);
  const int64_t channels = flags.GetInt("channels", 3);

  Rng rng(flags.GetInt("seed", 42));
  data::TimeSeries series =
      data::MakeEttLike(/*length=*/length * 20, /*period=*/24,
                        /*variant=*/1, rng);
  (void)channels;  // MakeEttLike fixes the channel count; kept for forward
                   // compatibility of the flag surface.
  data::ForecastingWindows windows(series, length, /*horizon=*/0,
                                   /*stride=*/4);
  core::ForecastingSource source(&windows, /*channel_independent=*/true);

  core::TimeDrlConfig config;
  config.input_channels = 1;
  config.input_length = length;
  config.patch_length = 8;
  config.patch_stride = 8;
  config.d_model = 32;
  config.num_heads = 4;
  config.ff_dim = 64;
  config.num_layers = 2;
  core::TimeDrlModel model(config, rng);

  core::PretrainConfig pretrain;
  pretrain.train.epochs = epochs;
  pretrain.train.batch_size = batch;
  obs::MetricsObserver metrics_observer("train");
  pretrain.train.observer = &metrics_observer;

  const int64_t serve_requests = flags.GetInt("serve-requests", 64);

  obs::SetTraceEnabled(true);
  core::Pretrain(&model, source, pretrain, rng);

  if (serve_requests > 0) {
    // Serve phase: freeze the just-trained model into a checkpoint, open an
    // InferenceSession on it, and push requests through the micro-batcher
    // from a couple of client threads.
    const std::string ckpt = out + ".serve.ckpt";
    Status save_status = nn::SaveParameters(model, ckpt);
    if (!save_status.ok()) {
      std::fprintf(stderr, "trace_export: %s\n",
                   save_status.ToString().c_str());
      return 1;
    }
    serve::InferenceSessionConfig serve_config;
    serve_config.model = config;
    std::unique_ptr<serve::InferenceSession> session;
    Status open_status =
        serve::InferenceSession::Open(ckpt, serve_config, &session);
    std::remove(ckpt.c_str());
    if (!open_status.ok()) {
      std::fprintf(stderr, "trace_export: %s\n",
                   open_status.ToString().c_str());
      return 1;
    }
    serve::MicroBatcher batcher(session.get(),
                                serve::MicroBatcherOptions::FromEnv());
    // The model is channel-independent (C=1), so serve windows of a single
    // channel rather than the full multivariate rows.
    data::TimeSeries channel0 = series.Channel(0);
    data::ForecastingWindows serve_windows(channel0, length, /*horizon=*/0,
                                           /*stride=*/4);
    const int64_t num_clients = 2;
    std::vector<std::thread> clients;
    for (int64_t c = 0; c < num_clients; ++c) {
      clients.emplace_back([&, c] {
        for (int64_t i = c; i < serve_requests; i += num_clients) {
          Tensor x = serve_windows.GetInputs({i % serve_windows.size()});
          (void)batcher.Encode(
              std::vector<float>(x.data().begin(), x.data().end()));
        }
      });
    }
    for (std::thread& client : clients) client.join();
  }
  obs::SetTraceEnabled(false);

  if (!obs::WriteChromeTraceFile(out)) {
    std::fprintf(stderr, "trace_export: cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("wrote %lld spans to %s (%lld dropped)\n",
              static_cast<long long>(obs::TraceEventCount()), out.c_str(),
              static_cast<long long>(obs::TraceDroppedCount()));

  if (flags.GetBool("summary")) {
    // Span count and total self-time per name, most expensive first.
    struct PerName {
      int64_t count = 0;
      int64_t total_ns = 0;
    };
    std::map<std::string, PerName> by_name;
    for (const obs::TraceEvent& event : obs::CollectTraceEvents()) {
      PerName& entry = by_name[event.name];
      ++entry.count;
      entry.total_ns += event.duration_ns;
    }
    std::printf("%-28s %10s %14s\n", "span", "count", "total_ms");
    for (const auto& [name, entry] : by_name) {
      std::printf("%-28s %10lld %14.3f\n", name.c_str(),
                  static_cast<long long>(entry.count),
                  static_cast<double>(entry.total_ns) / 1e6);
    }

    // Per-op timing histograms from the metrics registry. Aggregated by
    // name prefix rather than a fixed op list, so new ops — the fused
    // kernels' op.fused_*.ns series included — appear here automatically
    // instead of being dropped.
    const obs::MetricsSnapshot snapshot = obs::Registry::Global().Snapshot();
    std::printf("\n%-28s %10s %14s %12s\n", "op histogram", "count",
                "total_ms", "mean_us");
    for (const auto& [name, stats] : snapshot.histograms) {
      if (name.rfind("op.", 0) != 0 || stats.count == 0) continue;
      std::printf("%-28s %10llu %14.3f %12.2f\n", name.c_str(),
                  static_cast<unsigned long long>(stats.count),
                  stats.sum / 1e6, stats.mean() / 1e3);
    }

    // Data-pipeline prefetch histograms (data::DataLoader): assemble time on
    // the producer thread and the consumer's queue wait. A queue wait far
    // below the assemble time means prefetching is hiding the input latency.
    std::printf("\n%-28s %10s %14s %12s\n", "prefetch histogram", "count",
                "total_ms", "mean_us");
    for (const auto& [name, stats] : snapshot.histograms) {
      if (name.rfind("prefetch.", 0) != 0 || stats.count == 0) continue;
      std::printf("%-28s %10llu %14.3f %12.2f\n", name.c_str(),
                  static_cast<unsigned long long>(stats.count),
                  stats.sum / 1e6, stats.mean() / 1e3);
    }

    // Serving robustness counters/gauges: shed and expired requests,
    // breaker state, and applied/rejected hot reloads. All zeros on a
    // healthy run with no deadlines configured.
    std::printf("\n%-28s %10s\n", "serve metric", "value");
    for (const char* name :
         {"serve.requests", "serve.shed", "serve.deadline_exceeded",
          "serve.reloads", "serve.reload_failures"}) {
      std::printf("%-28s %10llu\n", name,
                  static_cast<unsigned long long>(
                      snapshot.CounterValue(name)));
    }
    std::printf("%-28s %10.0f\n", "serve.breaker_state",
                snapshot.GaugeValue("serve.breaker_state"));
  }
  return 0;
}

}  // namespace
}  // namespace timedrl::tools

int main(int argc, char** argv) {
  timedrl::tools::FlagParser flags(argc, argv);
  if (flags.GetBool("help")) {
    std::printf(
        "usage: trace_export [--out FILE] [--epochs N] [--batch N]\n"
        "                    [--length N] [--seed S] [--serve-requests N]\n"
        "                    [--summary]\n");
    return 0;
  }
  return timedrl::tools::Run(flags);
}
