// Minimal --flag=value / --flag value command-line parsing for the CLI.

#ifndef TIMEDRL_TOOLS_FLAG_PARSER_H_
#define TIMEDRL_TOOLS_FLAG_PARSER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace timedrl::tools {

/// Parsed command line: one positional command plus --key value pairs.
class FlagParser {
 public:
  /// Parses argv[1:]; the first non-flag token is the command.
  FlagParser(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string token = argv[i];
      if (token.rfind("--", 0) == 0) {
        std::string key = token.substr(2);
        std::string value = "true";  // bare flag = boolean
        const size_t equals = key.find('=');
        if (equals != std::string::npos) {
          value = key.substr(equals + 1);
          key = key.substr(0, equals);
        } else if (i + 1 < argc &&
                   std::string(argv[i + 1]).rfind("--", 0) != 0) {
          value = argv[++i];
        }
        flags_[key] = value;
      } else if (command_.empty()) {
        command_ = token;
      } else {
        positional_.push_back(token);
      }
    }
  }

  const std::string& command() const { return command_; }

  bool Has(const std::string& key) const { return flags_.count(key) > 0; }

  std::string GetString(const std::string& key,
                        const std::string& fallback = "") const {
    auto it = flags_.find(key);
    return it == flags_.end() ? fallback : it->second;
  }

  int64_t GetInt(const std::string& key, int64_t fallback) const {
    auto it = flags_.find(key);
    return it == flags_.end() ? fallback : std::stoll(it->second);
  }

  double GetDouble(const std::string& key, double fallback) const {
    auto it = flags_.find(key);
    return it == flags_.end() ? fallback : std::stod(it->second);
  }

  bool GetBool(const std::string& key, bool fallback = false) const {
    auto it = flags_.find(key);
    if (it == flags_.end()) return fallback;
    return it->second == "true" || it->second == "1";
  }

 private:
  std::string command_;
  std::vector<std::string> positional_;
  std::map<std::string, std::string> flags_;
};

}  // namespace timedrl::tools

#endif  // TIMEDRL_TOOLS_FLAG_PARSER_H_
