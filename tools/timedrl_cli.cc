// timedrl — command-line interface to the library.
//
// Subcommands:
//   generate  write a synthetic benchmark series to CSV
//   pretrain  self-supervised pre-training on a CSV series -> checkpoint
//   forecast  train a linear probe on a pre-trained checkpoint and report
//             test MSE/MAE for a horizon
//   anomaly   score windows of a CSV series by reconstruction error
//   encode    embed windows of a CSV series through a frozen checkpoint
//             (graph-free inference path) and write them to CSV
//   serve     load-test the embedding-serving path: client threads submit
//             windows through the micro-batcher, report p50/p99 latency,
//             throughput, and typed-error counts; supports mid-traffic
//             zero-downtime model reload (--reload NEW.ckpt swaps in a new
//             checkpoint, TIMEDRL_SERVE_RELOAD_POLL_MS watches --model for
//             changes)
//   simd      report the SIMD dispatch decision (active backend, compiled/
//             supported/available ISAs, CPU feature string)
//   fault-points        list the registered fault-injection points
//   checkpoint-inspect  summarize a checkpoint file (version, CRC, shapes)
//
// The --out checkpoint stores parameters only; pass the same architecture
// flags (--window/--patch/--d-model/--layers/--channel-independent) to
// every command that loads it. `pretrain --checkpoint-dir DIR` additionally
// writes full training checkpoints (model + optimizer + RNG streams +
// epoch cursor) after every epoch, and `--resume` restarts from the newest
// valid one, bitwise-identically to the uninterrupted run.
//
// Examples:
//   timedrl generate --dataset etth1 --length 2000 --out /tmp/ett.csv
//   timedrl pretrain --csv /tmp/ett.csv --epochs 10 --out /tmp/model.ckpt
//   timedrl forecast --csv /tmp/ett.csv --model /tmp/model.ckpt --horizon 24
//   timedrl anomaly  --csv /tmp/ett.csv --model /tmp/model.ckpt --top 5

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <thread>

#include "core/checkpoint.h"
#include "core/model.h"
#include "core/pipelines.h"
#include "core/pretrainer.h"
#include "core/sources.h"
#include "data/csv.h"
#include "data/scaler.h"
#include "data/synthetic.h"
#include "data/windows.h"
#include "nn/serialize.h"
#include "obs/metrics.h"
#include "obs/observer.h"
#include "serve/inference_session.h"
#include "serve/micro_batcher.h"
#include "tensor/kernels/dispatch.h"
#include "tools/flag_parser.h"
#include "util/env.h"
#include "util/fault_inject.h"
#include "util/status_or.h"

namespace timedrl::tools {
namespace {

void PrintUsage() {
  std::printf(
      "usage: timedrl <command> [flags]\n"
      "\n"
      "commands:\n"
      "  generate  --dataset etth1|etth2|ettm1|ettm2|exchange|weather\n"
      "            --length N --seed S --out FILE.csv\n"
      "  pretrain  --csv FILE.csv --out MODEL.ckpt [--epochs N] [--window W]\n"
      "            [--patch P] [--d-model D] [--layers L] [--lambda X]\n"
      "            [--channel-independent] [--seed S] [--verbose]\n"
      "            [--metrics]  (print the metrics-registry snapshot)\n"
      "            [--checkpoint-dir DIR] [--checkpoint-every N]\n"
      "            [--checkpoint-keep N] [--resume]\n"
      "  forecast  --csv FILE.csv --model MODEL.ckpt --horizon H\n"
      "            [--probe-epochs N] [--fine-tune] [architecture flags]\n"
      "  anomaly   --csv FILE.csv --model MODEL.ckpt [--top K]\n"
      "            [architecture flags]\n"
      "  encode    --csv FILE.csv --model MODEL.ckpt --out EMB.csv\n"
      "            [--stride N] [--pooling cls|last|gap|all]\n"
      "            [architecture flags]\n"
      "  serve     --csv FILE.csv --model MODEL.ckpt [--threads N]\n"
      "            [--requests N] [--deadline-us D] [--reload NEW.ckpt]\n"
      "            [architecture flags]\n"
      "            (micro-batcher honors TIMEDRL_SERVE_MAX_BATCH,\n"
      "             TIMEDRL_SERVE_MAX_DELAY_US, TIMEDRL_SERVE_MAX_QUEUE,\n"
      "             TIMEDRL_SERVE_DEADLINE_US, TIMEDRL_SERVE_STALL_TIMEOUT_MS,\n"
      "             TIMEDRL_SERVE_BREAKER_THRESHOLD; --reload hot-swaps the\n"
      "             model mid-traffic, TIMEDRL_SERVE_RELOAD_POLL_MS watches\n"
      "             the --model file for changes instead)\n"
      "  simd                report the SIMD dispatch decision: active\n"
      "                      backend, compiled/supported/available ISAs,\n"
      "                      CPU feature string (override: TIMEDRL_SIMD=\n"
      "                      auto|scalar|avx2|avx512|neon)\n"
      "  fault-points        list registered fault-injection points\n"
      "  checkpoint-inspect --file CKPT\n"
      "\n"
      "CSV flags (pretrain/forecast/anomaly):\n"
      "  --nan-policy reject|drop|fill   what to do with nan/inf cells\n");
}

/// Architecture flags shared by pretrain/forecast/anomaly. Must match the
/// flags used when the checkpoint was created.
core::TimeDrlConfig ConfigFromFlags(const FlagParser& flags,
                                    int64_t data_channels) {
  core::TimeDrlConfig config;
  const bool channel_independent = flags.GetBool("channel-independent");
  config.input_channels = channel_independent ? 1 : data_channels;
  config.input_length = flags.GetInt("window", 48);
  config.patch_length = flags.GetInt("patch", 8);
  config.patch_stride = flags.GetInt("patch-stride", config.patch_length);
  config.d_model = flags.GetInt("d-model", 32);
  config.num_heads = flags.GetInt("heads", 4);
  config.ff_dim = flags.GetInt("ff-dim", 2 * config.d_model);
  config.num_layers = flags.GetInt("layers", 2);
  config.lambda_weight = static_cast<float>(flags.GetDouble("lambda", 1.0));
  return config;
}

/// Loads a CSV with the --nan-policy flag applied, printing the structured
/// error (code + row/column) on failure.
bool LoadSeries(const FlagParser& flags, const std::string& csv,
                data::TimeSeries* series) {
  data::CsvReadOptions options;
  const std::string policy = flags.GetString("nan-policy", "reject");
  if (policy == "reject") {
    options.non_finite = data::NonFinitePolicy::kReject;
  } else if (policy == "drop") {
    options.non_finite = data::NonFinitePolicy::kDropRow;
  } else if (policy == "fill") {
    options.non_finite = data::NonFinitePolicy::kForwardFill;
  } else {
    std::fprintf(stderr, "unknown --nan-policy '%s'\n", policy.c_str());
    return false;
  }
  Status status = data::LoadCsv(csv, series, nullptr, options);
  if (!status.ok()) {
    std::fprintf(stderr, "failed to load %s: %s\n", csv.c_str(),
                 status.ToString().c_str());
    return false;
  }
  return true;
}

int RunGenerate(const FlagParser& flags) {
  const std::string dataset = flags.GetString("dataset", "etth1");
  const int64_t length = flags.GetInt("length", 2000);
  const std::string out = flags.GetString("out");
  if (out.empty()) {
    std::fprintf(stderr, "generate: --out is required\n");
    return 1;
  }
  Rng rng(flags.GetInt("seed", 42));
  data::TimeSeries series;
  if (dataset == "etth1") {
    series = data::MakeEttLike(length, 24, 1, rng);
  } else if (dataset == "etth2") {
    series = data::MakeEttLike(length, 24, 2, rng);
  } else if (dataset == "ettm1") {
    series = data::MakeEttLike(length, 48, 1, rng);
  } else if (dataset == "ettm2") {
    series = data::MakeEttLike(length, 48, 2, rng);
  } else if (dataset == "exchange") {
    series = data::MakeExchangeLike(length, rng);
  } else if (dataset == "weather") {
    series = data::MakeWeatherLike(length, rng);
  } else {
    std::fprintf(stderr, "generate: unknown dataset '%s'\n", dataset.c_str());
    return 1;
  }
  if (!data::SaveCsv(series, out)) return 1;
  std::printf("wrote %lld x %lld series to %s\n",
              static_cast<long long>(series.length()),
              static_cast<long long>(series.channels), out.c_str());
  return 0;
}

int RunPretrain(const FlagParser& flags) {
  const std::string csv = flags.GetString("csv");
  const std::string out = flags.GetString("out");
  if (csv.empty() || out.empty()) {
    std::fprintf(stderr, "pretrain: --csv and --out are required\n");
    return 1;
  }
  data::TimeSeries series;
  if (!LoadSeries(flags, csv, &series)) return 1;

  data::ForecastingSplits splits = data::ChronologicalSplit(series);
  data::StandardScaler scaler;
  scaler.Fit(splits.train);
  data::TimeSeries train = scaler.Transform(splits.train);

  Rng rng(flags.GetInt("seed", 42));
  core::TimeDrlConfig config = ConfigFromFlags(flags, series.channels);
  core::TimeDrlModel model(config, rng);
  std::printf("model: %lld parameters; %s\n",
              static_cast<long long>(model.NumParameters()),
              flags.GetBool("channel-independent")
                  ? "channel-independent"
                  : "channel-mixing");

  data::ForecastingWindows windows(train, config.input_length, 0,
                                   flags.GetInt("stride", 2));
  if (windows.size() == 0) {
    std::fprintf(stderr, "pretrain: series too short for window %lld\n",
                 static_cast<long long>(config.input_length));
    return 1;
  }
  core::ForecastingSource source(&windows,
                                 flags.GetBool("channel-independent"));
  core::PretrainConfig pretrain;
  pretrain.train.epochs = flags.GetInt("epochs", 10);
  pretrain.train.batch_size = flags.GetInt("batch", 32);
  pretrain.train.checkpoint.directory = flags.GetString("checkpoint-dir");
  pretrain.train.checkpoint.every_epochs = flags.GetInt("checkpoint-every", 1);
  pretrain.train.checkpoint.keep_last = flags.GetInt("checkpoint-keep", 3);
  pretrain.train.checkpoint.resume = flags.GetBool("resume");
  if (pretrain.train.checkpoint.resume &&
      pretrain.train.checkpoint.directory.empty()) {
    std::fprintf(stderr, "pretrain: --resume requires --checkpoint-dir\n");
    return 1;
  }
  obs::ConsoleObserver console;
  obs::MetricsObserver metrics_observer("train");
  obs::MultiObserver observers(
      flags.GetBool("verbose")
          ? std::vector<obs::TrainObserver*>{&console, &metrics_observer}
          : std::vector<obs::TrainObserver*>{&metrics_observer});
  pretrain.train.observer = &observers;
  core::PretrainHistory history = core::Pretrain(&model, source, pretrain,
                                                 rng);
  if (history.aborted) {
    std::fprintf(stderr, "pretrain: aborted: %s\n",
                 history.abort_reason.c_str());
    return 1;
  }
  if (!history.total.empty()) {
    std::printf("pretext loss: %.4f -> %.4f over %lld epochs\n",
                history.total.front(), history.total.back(),
                static_cast<long long>(pretrain.train.epochs));
  }
  Status save_status = nn::SaveParameters(model, out);
  if (!save_status.ok()) {
    std::fprintf(stderr, "pretrain: %s\n", save_status.ToString().c_str());
    return 1;
  }
  std::printf("checkpoint saved to %s\n", out.c_str());
  if (flags.GetBool("metrics")) {
    std::ostringstream json;
    obs::Registry::Global().WriteJson(json);
    std::printf("metrics: %s\n", json.str().c_str());
  }
  return 0;
}

int RunForecast(const FlagParser& flags) {
  const std::string csv = flags.GetString("csv");
  const std::string model_path = flags.GetString("model");
  if (csv.empty() || model_path.empty()) {
    std::fprintf(stderr, "forecast: --csv and --model are required\n");
    return 1;
  }
  data::TimeSeries series;
  if (!LoadSeries(flags, csv, &series)) return 1;

  data::ForecastingSplits splits = data::ChronologicalSplit(series);
  data::StandardScaler scaler;
  scaler.Fit(splits.train);
  data::TimeSeries train = scaler.Transform(splits.train);
  data::TimeSeries test = scaler.Transform(splits.test);

  Rng rng(flags.GetInt("seed", 42));
  core::TimeDrlConfig config = ConfigFromFlags(flags, series.channels);
  core::TimeDrlModel model(config, rng);
  Status load_status = nn::LoadParameters(&model, model_path);
  if (!load_status.ok()) {
    std::fprintf(stderr, "failed to load %s: %s\n", model_path.c_str(),
                 load_status.ToString().c_str());
    return 1;
  }

  const int64_t horizon = flags.GetInt("horizon", 24);
  const int64_t stride = flags.GetInt("stride", 2);
  data::ForecastingWindows train_windows(train, config.input_length, horizon,
                                         stride);
  data::ForecastingWindows test_windows(test, config.input_length, horizon,
                                        stride);
  if (train_windows.size() == 0 || test_windows.size() == 0) {
    std::fprintf(stderr, "forecast: not enough data for horizon %lld\n",
                 static_cast<long long>(horizon));
    return 1;
  }

  core::ForecastingPipeline pipeline(&model, horizon, series.channels,
                                     flags.GetBool("channel-independent"),
                                     rng);
  core::DownstreamConfig probe;
  probe.train.epochs = flags.GetInt("probe-epochs", 8);
  probe.fine_tune_encoder = flags.GetBool("fine-tune");
  pipeline.Train(train_windows, probe, rng);
  core::ForecastMetrics metrics = pipeline.Evaluate(test_windows);
  std::printf("horizon %lld (%s): test MSE %.4f, MAE %.4f over %lld windows\n",
              static_cast<long long>(horizon),
              probe.fine_tune_encoder ? "fine-tuned" : "linear eval",
              metrics.mse, metrics.mae,
              static_cast<long long>(test_windows.size()));
  return 0;
}

int RunAnomaly(const FlagParser& flags) {
  const std::string csv = flags.GetString("csv");
  const std::string model_path = flags.GetString("model");
  if (csv.empty() || model_path.empty()) {
    std::fprintf(stderr, "anomaly: --csv and --model are required\n");
    return 1;
  }
  data::TimeSeries series;
  if (!LoadSeries(flags, csv, &series)) return 1;

  data::StandardScaler scaler;
  scaler.Fit(series);
  data::TimeSeries scaled = scaler.Transform(series);

  Rng rng(flags.GetInt("seed", 42));
  core::TimeDrlConfig config = ConfigFromFlags(flags, series.channels);
  if (flags.GetBool("channel-independent")) {
    std::fprintf(stderr,
                 "anomaly: channel-independent scoring is not supported; "
                 "re-pretrain without --channel-independent\n");
    return 1;
  }
  core::TimeDrlModel model(config, rng);
  Status load_status = nn::LoadParameters(&model, model_path);
  if (!load_status.ok()) {
    std::fprintf(stderr, "failed to load %s: %s\n", model_path.c_str(),
                 load_status.ToString().c_str());
    return 1;
  }
  model.Eval();

  const int64_t window = config.input_length;
  data::ForecastingWindows windows(scaled, window, 0, window);
  const int64_t top_k =
      std::min<int64_t>(flags.GetInt("top", 5), windows.size());

  NoGradGuard guard;
  std::vector<std::pair<double, int64_t>> scored;
  for (int64_t i = 0; i < windows.size(); ++i) {
    Tensor errors = model.ReconstructionError(windows.GetInputs({i}));
    double score = 0.0;
    for (float e : errors.data()) score = std::max(score, double{e});
    scored.emplace_back(score, i);
  }
  std::sort(scored.rbegin(), scored.rend());
  std::printf("top %lld anomalous windows (of %lld):\n",
              static_cast<long long>(top_k),
              static_cast<long long>(windows.size()));
  for (int64_t k = 0; k < top_k; ++k) {
    std::printf("  rows [%lld, %lld): score %.4f\n",
                static_cast<long long>(scored[k].second * window),
                static_cast<long long>((scored[k].second + 1) * window),
                scored[k].first);
  }
  return 0;
}

/// Shared setup for encode/serve: load + scale the CSV, window it, and open
/// an InferenceSession on the checkpoint. Returns false on any failure.
bool OpenServing(const FlagParser& flags,
                 std::unique_ptr<data::ForecastingWindows>* windows_out,
                 std::unique_ptr<serve::InferenceSession>* session_out,
                 data::TimeSeries* scaled_out) {
  const std::string csv = flags.GetString("csv");
  const std::string model_path = flags.GetString("model");
  if (csv.empty() || model_path.empty()) {
    std::fprintf(stderr, "%s: --csv and --model are required\n",
                 flags.command().c_str());
    return false;
  }
  if (flags.GetBool("channel-independent")) {
    std::fprintf(stderr,
                 "%s: channel-independent serving is not supported; windows "
                 "carry all channels\n",
                 flags.command().c_str());
    return false;
  }
  data::TimeSeries series;
  if (!LoadSeries(flags, csv, &series)) return false;

  data::StandardScaler scaler;
  scaler.Fit(series);
  *scaled_out = scaler.Transform(series);

  serve::InferenceSessionConfig config;
  config.model = ConfigFromFlags(flags, series.channels);
  const std::string pooling = flags.GetString("pooling", "cls");
  if (pooling == "cls") {
    config.pooling = core::Pooling::kCls;
  } else if (pooling == "last") {
    config.pooling = core::Pooling::kLast;
  } else if (pooling == "gap") {
    config.pooling = core::Pooling::kGap;
  } else if (pooling == "all") {
    config.pooling = core::Pooling::kAll;
  } else {
    std::fprintf(stderr, "%s: unknown --pooling '%s'\n",
                 flags.command().c_str(), pooling.c_str());
    return false;
  }

  *windows_out = std::make_unique<data::ForecastingWindows>(
      *scaled_out, config.model.input_length, 0,
      flags.GetInt("stride", config.model.input_length));
  if ((*windows_out)->size() == 0) {
    std::fprintf(stderr, "%s: series too short for window %lld\n",
                 flags.command().c_str(),
                 static_cast<long long>(config.model.input_length));
    return false;
  }

  Status status = serve::InferenceSession::Open(model_path, config,
                                                session_out);
  if (!status.ok()) {
    std::fprintf(stderr, "failed to load %s: %s\n", model_path.c_str(),
                 status.ToString().c_str());
    return false;
  }
  return true;
}

int RunEncode(const FlagParser& flags) {
  const std::string out = flags.GetString("out");
  if (out.empty()) {
    std::fprintf(stderr, "encode: --out is required\n");
    return 1;
  }
  std::unique_ptr<data::ForecastingWindows> windows;
  std::unique_ptr<serve::InferenceSession> session;
  data::TimeSeries scaled;
  if (!OpenServing(flags, &windows, &session, &scaled)) return 1;

  // Encode in max-planned-size chunks; the session pads the final partial
  // chunk up to a planned shape internally.
  const int64_t dim = session->embedding_dim();
  data::TimeSeries embeddings(windows->size(), dim);
  const int64_t chunk = session->max_batch();
  for (int64_t begin = 0; begin < windows->size(); begin += chunk) {
    const int64_t n = std::min<int64_t>(chunk, windows->size() - begin);
    std::vector<int64_t> indices(n);
    for (int64_t i = 0; i < n; ++i) indices[i] = begin + i;
    serve::Embeddings batch = session->Encode(windows->GetInputs(indices));
    std::copy(batch.instance.data().begin(), batch.instance.data().end(),
              embeddings.values.begin() + begin * dim);
  }
  if (!data::SaveCsv(embeddings, out)) return 1;
  std::printf("wrote %lld x %lld embeddings to %s\n",
              static_cast<long long>(embeddings.length()),
              static_cast<long long>(dim), out.c_str());
  return 0;
}

int RunServe(const FlagParser& flags) {
  std::unique_ptr<data::ForecastingWindows> windows;
  std::unique_ptr<serve::InferenceSession> session;
  data::TimeSeries scaled;
  if (!OpenServing(flags, &windows, &session, &scaled)) return 1;

  const int64_t num_threads = std::max<int64_t>(flags.GetInt("threads", 4), 1);
  const int64_t total_requests =
      std::max<int64_t>(flags.GetInt("requests", 256), num_threads);
  serve::MicroBatcher batcher(session.get(),
                              serve::MicroBatcherOptions::FromEnv());
  serve::SubmitOptions submit_options;
  submit_options.deadline_us = flags.GetInt("deadline-us", -1);

  const int64_t window = session->model_config().input_length;
  const int64_t channels = session->model_config().input_channels;
  const int64_t row = window * channels;

  // Zero-downtime reload, two modes: --reload NEW.ckpt swaps once
  // mid-traffic; TIMEDRL_SERVE_RELOAD_POLL_MS polls the --model file and
  // swaps whenever its mtime changes. Traffic keeps flowing either way.
  const std::string model_path = flags.GetString("model");
  const std::string reload_path = flags.GetString("reload");
  const int64_t reload_poll_ms =
      util::Env::GetInt("TIMEDRL_SERVE_RELOAD_POLL_MS", 0, /*min_value=*/0);
  std::atomic<bool> clients_done{false};
  std::thread reloader;
  if (reload_poll_ms > 0) {
    reloader = std::thread([&] {
      namespace fs = std::filesystem;
      std::error_code ec;
      fs::file_time_type last = fs::last_write_time(model_path, ec);
      while (!clients_done.load()) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(reload_poll_ms));
        const fs::file_time_type now = fs::last_write_time(model_path, ec);
        if (ec || now == last) continue;
        last = now;
        Status status = session->Reload(model_path);
        std::printf("reload of %s: %s\n", model_path.c_str(),
                    status.ok() ? "staged" : status.ToString().c_str());
      }
    });
  } else if (!reload_path.empty()) {
    reloader = std::thread([&] {
      // Let some traffic land on the old model first, then swap.
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      Status status = session->Reload(reload_path);
      std::printf("reload of %s: %s\n", reload_path.c_str(),
                  status.ok() ? "staged" : status.ToString().c_str());
    });
  }

  // Each client thread cycles through the dataset's windows and records
  // per-request wall latency for successes plus typed-error counts.
  std::vector<std::vector<double>> latencies_us(num_threads);
  std::vector<std::map<StatusCode, int64_t>> errors(num_threads);
  std::vector<std::thread> clients;
  const auto start = std::chrono::steady_clock::now();
  for (int64_t t = 0; t < num_threads; ++t) {
    const int64_t share = total_requests / num_threads +
                          (t < total_requests % num_threads ? 1 : 0);
    clients.emplace_back([&, t, share] {
      latencies_us[t].reserve(share);
      for (int64_t i = 0; i < share; ++i) {
        const int64_t w = (t * share + i) % windows->size();
        Tensor x = windows->GetInputs({w});
        std::vector<float> values(x.data().begin(),
                                  x.data().begin() + row);
        const auto submit = std::chrono::steady_clock::now();
        util::StatusOr<serve::Embedding> result =
            batcher.Encode(std::move(values), submit_options);
        if (result.ok()) {
          latencies_us[t].push_back(
              std::chrono::duration<double, std::micro>(
                  std::chrono::steady_clock::now() - submit)
                  .count());
        } else {
          ++errors[t][result.status().code()];
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  clients_done.store(true);
  if (reloader.joinable()) reloader.join();
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  std::vector<double> all;
  for (const auto& per_thread : latencies_us) {
    all.insert(all.end(), per_thread.begin(), per_thread.end());
  }
  std::map<StatusCode, int64_t> all_errors;
  for (const auto& per_thread : errors) {
    for (const auto& [code, count] : per_thread) all_errors[code] += count;
  }
  std::sort(all.begin(), all.end());
  obs::MetricsSnapshot snapshot = obs::Registry::Global().Snapshot();
  const obs::HistogramStats* batches =
      snapshot.FindHistogram("serve.batch_size");
  if (all.empty()) {
    std::printf("served 0 of %lld requests OK in %.2fs\n",
                static_cast<long long>(total_requests), elapsed_s);
  } else {
    auto quantile = [&](double q) {
      return all[static_cast<size_t>(q * (all.size() - 1))];
    };
    std::printf(
        "served %zu of %lld requests OK on %lld threads in %.2fs: "
        "%.1f req/s\n"
        "latency p50 %.0fus  p99 %.0fus  max %.0fus\n"
        "encode batches: %llu, mean size %.2f\n",
        all.size(), static_cast<long long>(total_requests),
        static_cast<long long>(num_threads), elapsed_s,
        static_cast<double>(all.size()) / elapsed_s, quantile(0.5),
        quantile(0.99), all.back(),
        static_cast<unsigned long long>(batches ? batches->count : 0),
        batches ? batches->mean() : 0.0);
  }
  for (const auto& [code, count] : all_errors) {
    std::printf("errors %s: %lld\n", StatusCodeName(code),
                static_cast<long long>(count));
  }
  std::printf(
      "shed: %llu  deadline_exceeded: %llu  reloads: %llu  "
      "breaker_state: %.0f\n",
      static_cast<unsigned long long>(snapshot.CounterValue("serve.shed")),
      static_cast<unsigned long long>(
          snapshot.CounterValue("serve.deadline_exceeded")),
      static_cast<unsigned long long>(
          snapshot.CounterValue("serve.reloads")),
      snapshot.GaugeValue("serve.breaker_state"));
  return 0;
}

// Reports what the SIMD dispatch registry decided on this machine: the
// active backend (after TIMEDRL_SIMD is applied), which backends this build
// compiled, which ones cpuid says the CPU can run, and the raw feature
// string. scripts/check.sh parses the "active_isa:" line to catch builds
// that silently fall back to scalar on vector-capable hardware.
int RunSimd() {
  namespace simd = kernels::simd;
  std::printf("active_isa: %s\n", simd::IsaName(simd::ActiveIsa()));
  std::string compiled, supported, available;
  for (simd::Isa isa : {simd::Isa::kScalar, simd::Isa::kAvx2,
                        simd::Isa::kAvx512, simd::Isa::kNeon}) {
    const char* name = simd::IsaName(isa);
    if (simd::Compiled(isa)) compiled += std::string(" ") + name;
    if (simd::CpuSupports(isa)) supported += std::string(" ") + name;
    if (simd::Available(isa)) available += std::string(" ") + name;
  }
  std::printf("compiled:%s\n", compiled.c_str());
  std::printf("cpu_supports:%s\n", supported.c_str());
  std::printf("available:%s\n", available.c_str());
  std::printf("cpu_features: %s\n", simd::CpuFeatureString().c_str());
  return 0;
}

int RunFaultPoints() {
  std::printf(
      "registered fault-injection points\n"
      "(activate with TIMEDRL_FAULT_INJECT=\"<point>@<start>[x<count>|x*]\")"
      "\n\n");
  for (const fault::FaultPointInfo& point : fault::RegisteredPoints()) {
    std::printf("  %-24s %s\n", point.name.c_str(),
                point.description.c_str());
  }
  return 0;
}

int RunCheckpointInspect(const FlagParser& flags) {
  const std::string file = flags.GetString("file");
  if (file.empty()) {
    std::fprintf(stderr, "checkpoint-inspect: --file is required\n");
    return 1;
  }
  core::CheckpointInfo info;
  Status status = core::CheckpointManager::Inspect(file, &info);
  if (!status.ok()) {
    std::fprintf(stderr, "checkpoint-inspect: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  std::printf("%s: version %u, %llu bytes\n", file.c_str(), info.version,
              static_cast<unsigned long long>(info.file_bytes));
  if (info.has_crc) {
    std::printf("crc: %s\n", info.crc_valid ? "valid" : "INVALID");
    if (!info.crc_valid) {
      std::printf("file is truncated or corrupt; contents unreadable\n");
      return 1;
    }
  } else {
    std::printf("crc: none (params-only format)\n");
  }
  std::printf("parameters (%zu):\n", info.parameters.size());
  for (const auto& [name, shape] : info.parameters) {
    std::printf("  %s %s\n", name.c_str(), ShapeToString(shape).c_str());
  }
  if (info.version >= nn::kVersionTrainingState) {
    std::printf("optimizer: %s, step count %lld, %zu slots\n",
                info.optimizer_type.c_str(),
                static_cast<long long>(info.optimizer_step_count),
                info.optimizer_slot_sizes.size());
    std::printf("cursor: epoch %lld, global step %lld, learning rate %g\n",
                static_cast<long long>(info.epoch),
                static_cast<long long>(info.global_step),
                double{info.learning_rate});
    for (const auto& [name, size] : info.history_sizes) {
      std::printf("history %s: %llu epochs\n", name.c_str(),
                  static_cast<unsigned long long>(size));
    }
  }
  return 0;
}

int Main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  if (flags.command() == "generate") return RunGenerate(flags);
  if (flags.command() == "pretrain") return RunPretrain(flags);
  if (flags.command() == "forecast") return RunForecast(flags);
  if (flags.command() == "anomaly") return RunAnomaly(flags);
  if (flags.command() == "encode") return RunEncode(flags);
  if (flags.command() == "serve") return RunServe(flags);
  if (flags.command() == "simd") return RunSimd();
  if (flags.command() == "fault-points") return RunFaultPoints();
  if (flags.command() == "checkpoint-inspect") {
    return RunCheckpointInspect(flags);
  }
  PrintUsage();
  return flags.command().empty() ? 0 : 1;
}

}  // namespace
}  // namespace timedrl::tools

int main(int argc, char** argv) { return timedrl::tools::Main(argc, argv); }
