// util::Env: typed environment-variable parsing with warn-and-fallback
// diagnostics instead of silent misreads.

#include <gtest/gtest.h>

#include <cstdlib>

#include "util/env.h"

namespace timedrl::util {
namespace {

constexpr char kVar[] = "TIMEDRL_ENV_TEST_VAR";

class EnvTest : public ::testing::Test {
 protected:
  void TearDown() override { ::unsetenv(kVar); }
  void Set(const char* value) { ::setenv(kVar, value, /*overwrite=*/1); }
};

TEST_F(EnvTest, GetStringUnsetAndEmptyFallBack) {
  EXPECT_EQ(Env::GetString(kVar, "fallback"), "fallback");
  Set("");
  EXPECT_EQ(Env::GetString(kVar, "fallback"), "fallback");
  Set("value");
  EXPECT_EQ(Env::GetString(kVar, "fallback"), "value");
}

TEST_F(EnvTest, GetIntParsesValidValues) {
  EXPECT_EQ(Env::GetInt(kVar, 7), 7);
  Set("42");
  EXPECT_EQ(Env::GetInt(kVar, 7), 42);
  Set("-3");
  EXPECT_EQ(Env::GetInt(kVar, 7), -3);
  Set("  12");  // strtoll skips leading whitespace
  EXPECT_EQ(Env::GetInt(kVar, 7), 12);
}

TEST_F(EnvTest, GetIntRejectsPartialParses) {
  Set("12abc");
  EXPECT_EQ(Env::GetInt(kVar, 7), 7);
  Set("abc");
  EXPECT_EQ(Env::GetInt(kVar, 7), 7);
  Set("1.5");
  EXPECT_EQ(Env::GetInt(kVar, 7), 7);
  Set("12  ");  // trailing junk, even whitespace, is rejected
  EXPECT_EQ(Env::GetInt(kVar, 7), 7);
  Set("");
  EXPECT_EQ(Env::GetInt(kVar, 7), 7);
}

TEST_F(EnvTest, GetIntEnforcesRangeWithoutClamping) {
  Set("500");
  // Out of range is a configuration error: fall back, don't clamp.
  EXPECT_EQ(Env::GetInt(kVar, 7, /*min_value=*/1, /*max_value=*/256), 7);
  Set("0");
  EXPECT_EQ(Env::GetInt(kVar, 7, /*min_value=*/1, /*max_value=*/256), 7);
  Set("256");
  EXPECT_EQ(Env::GetInt(kVar, 7, /*min_value=*/1, /*max_value=*/256), 256);
  Set("99999999999999999999");  // overflows int64
  EXPECT_EQ(Env::GetInt(kVar, 7), 7);
}

TEST_F(EnvTest, GetBoolAcceptsCommonSpellings) {
  EXPECT_FALSE(Env::GetBool(kVar, false));
  EXPECT_TRUE(Env::GetBool(kVar, true));
  for (const char* truthy : {"1", "true", "on", "yes"}) {
    Set(truthy);
    EXPECT_TRUE(Env::GetBool(kVar, false)) << truthy;
  }
  for (const char* falsy : {"0", "false", "off", "no"}) {
    Set(falsy);
    EXPECT_FALSE(Env::GetBool(kVar, true)) << falsy;
  }
}

TEST_F(EnvTest, GetBoolRejectsGarbage) {
  Set("2");
  EXPECT_FALSE(Env::GetBool(kVar, false));
  Set("maybe");
  EXPECT_TRUE(Env::GetBool(kVar, true));
  Set("TRUE");  // the documented forms are lowercase
  EXPECT_FALSE(Env::GetBool(kVar, false));
}

TEST_F(EnvTest, GetDoubleParsesAndRejects) {
  EXPECT_DOUBLE_EQ(Env::GetDouble(kVar, 1.5), 1.5);
  Set("2.25");
  EXPECT_DOUBLE_EQ(Env::GetDouble(kVar, 1.5), 2.25);
  Set("1e-3");
  EXPECT_DOUBLE_EQ(Env::GetDouble(kVar, 1.5), 1e-3);
  Set("2.5x");
  EXPECT_DOUBLE_EQ(Env::GetDouble(kVar, 1.5), 1.5);
  Set("nope");
  EXPECT_DOUBLE_EQ(Env::GetDouble(kVar, 1.5), 1.5);
}

}  // namespace
}  // namespace timedrl::util
