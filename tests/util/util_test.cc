#include <gtest/gtest.h>

#include <set>

#include "obs/logging.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

namespace timedrl {
namespace {

TEST(RngTest, SeedDeterminism) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    float v = rng.Uniform(-2.0f, 3.0f);
    EXPECT_GE(v, -2.0f);
    EXPECT_LT(v, 3.0f);
    int64_t n = rng.UniformInt(5, 9);
    EXPECT_GE(n, 5);
    EXPECT_LE(n, 9);
  }
}

TEST(RngTest, NormalMoments) {
  Rng rng(2);
  double sum = 0;
  double sum_sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal(3.0f, 2.0f);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.2);
}

TEST(RngTest, PermutationIsAPermutation) {
  Rng rng(3);
  std::vector<int64_t> perm = rng.Permutation(50);
  std::set<int64_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 49);
}

TEST(RngTest, ForkProducesIndependentStreams) {
  Rng parent(4);
  Rng child = parent.Fork();
  // Child and parent should now diverge.
  bool any_differ = false;
  for (int i = 0; i < 10; ++i) {
    if (parent.UniformInt(0, 1 << 30) != child.UniformInt(0, 1 << 30)) {
      any_differ = true;
    }
  }
  EXPECT_TRUE(any_differ);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0f));
    EXPECT_TRUE(rng.Bernoulli(1.0f));
  }
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch stopwatch;
  double first = stopwatch.ElapsedSeconds();
  EXPECT_GE(first, 0.0);
  // Busy-wait a little.
  volatile double sink = 0;
  for (int i = 0; i < 1000000; ++i) sink = sink + i;
  EXPECT_GE(stopwatch.ElapsedSeconds(), first);
  stopwatch.Reset();
  EXPECT_LT(stopwatch.ElapsedSeconds(), 1.0);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"A", "LongHeader"});
  table.AddRow({"x", "1"});
  table.AddRow({"yyyy", "2"});
  std::string rendered = table.ToString();
  // Header, two rows, and three separator lines.
  EXPECT_NE(rendered.find("| A    | LongHeader |"), std::string::npos);
  EXPECT_NE(rendered.find("| yyyy | 2          |"), std::string::npos);
  EXPECT_NE(rendered.find("+------+------------+"), std::string::npos);
}

TEST(TablePrinterTest, SeparatorRows) {
  TablePrinter table({"A"});
  table.AddRow({"1"});
  table.AddSeparator();
  table.AddRow({"2"});
  std::string rendered = table.ToString();
  // 3 outer separators + 1 inner separator = 4 dashed lines.
  int64_t dashes = 0;
  size_t pos = 0;
  while ((pos = rendered.find("+---+", pos)) != std::string::npos) {
    ++dashes;
    pos += 1;
  }
  EXPECT_EQ(dashes, 4);
}

TEST(TablePrinterTest, NumberFormatting) {
  EXPECT_EQ(TablePrinter::Num(1.23456, 3), "1.235");
  EXPECT_EQ(TablePrinter::Num(2.0, 0), "2");
  EXPECT_EQ(TablePrinter::Pct(0.1036), "+10.36%");
  EXPECT_EQ(TablePrinter::Pct(-0.05, 1), "-5.0%");
}

TEST(TablePrinterDeathTest, RowWidthMismatch) {
  TablePrinter table({"A", "B"});
  EXPECT_DEATH(table.AddRow({"only one"}), "CHECK FAILED");
}

TEST(LoggingTest, LevelFiltering) {
  LogLevel previous = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // These must not crash (output discarded).
  TIMEDRL_LOG_INFO << "hidden";
  TIMEDRL_LOG_ERROR << "shown";
  SetLogLevel(previous);
}

}  // namespace
}  // namespace timedrl
