// util::StatusOr<T> contracts: every instance is either an error Status or
// a value, never both and never neither; value() on an error dies (the
// library's fail-fast stance), and the implicit conversions keep serving
// code free of wrapper boilerplate.

#include "util/status_or.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace timedrl::util {
namespace {

StatusOr<std::vector<float>> MakeValue() {
  // Implicit value conversion: `return vec;` with no wrapper spelled out.
  return std::vector<float>{1.0f, 2.0f};
}

StatusOr<std::vector<float>> MakeError() {
  return Status::Error(StatusCode::kUnavailable, "shed");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<std::vector<float>> result = MakeValue();
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(static_cast<bool>(result));
  EXPECT_TRUE(result.status().ok());
  EXPECT_EQ(result.value().size(), 2u);
  EXPECT_EQ((*result)[1], 2.0f);
  EXPECT_EQ(result->size(), 2u);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<std::vector<float>> result = MakeError();
  ASSERT_FALSE(result.ok());
  EXPECT_FALSE(static_cast<bool>(result));
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
}

TEST(StatusOrTest, DefaultConstructedIsNotOk) {
  // A future fulfilled by accident with a default StatusOr must read as an
  // error, not as an empty success.
  StatusOr<std::vector<float>> result;
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

TEST(StatusOrTest, RvalueValueMovesOut) {
  std::vector<float> moved = MakeValue().value();
  EXPECT_EQ(moved.size(), 2u);

  // Move-only payloads work end to end.
  StatusOr<std::unique_ptr<int>> boxed(std::make_unique<int>(7));
  std::unique_ptr<int> out = std::move(boxed).value();
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 7);
}

TEST(StatusOrTest, NewServeCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kDeadlineExceeded),
               "DEADLINE_EXCEEDED");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnavailable), "UNAVAILABLE");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted),
               "RESOURCE_EXHAUSTED");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "INTERNAL");
}

TEST(StatusOrDeathTest, ValueOnErrorDies) {
  StatusOr<std::vector<float>> result = MakeError();
  EXPECT_DEATH((void)result.value(), "value\\(\\) on error StatusOr");
}

TEST(StatusOrDeathTest, OkStatusWithoutValueDies) {
  EXPECT_DEATH(StatusOr<std::vector<float>>{Status::Ok()},
               "OK status without a value");
}

}  // namespace
}  // namespace timedrl::util
