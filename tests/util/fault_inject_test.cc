#include "util/fault_inject.h"

#include <gtest/gtest.h>

#include <string>

#include "util/crc32.h"
#include "util/status.h"

namespace timedrl {
namespace {

class FaultInjectTest : public ::testing::Test {
 protected:
  // Every test leaves injection disabled so suites sharing the process are
  // unaffected.
  void TearDown() override { fault::SetSpecForTest(""); }
};

TEST_F(FaultInjectTest, DisabledByDefault) {
  fault::SetSpecForTest("");
  EXPECT_FALSE(fault::Enabled());
  EXPECT_FALSE(fault::At("anything"));
  // Counters are not tracked while disabled.
  EXPECT_EQ(fault::CallCount("anything"), 0u);
}

TEST_F(FaultInjectTest, SingleOccurrence) {
  fault::SetSpecForTest("boom@2");
  ASSERT_TRUE(fault::Enabled());
  EXPECT_FALSE(fault::At("boom"));  // call 1
  EXPECT_TRUE(fault::At("boom"));   // call 2 fires
  EXPECT_FALSE(fault::At("boom"));  // call 3
  EXPECT_EQ(fault::CallCount("boom"), 3u);
}

TEST_F(FaultInjectTest, CountedRange) {
  fault::SetSpecForTest("boom@2x3");
  EXPECT_FALSE(fault::At("boom"));  // 1
  EXPECT_TRUE(fault::At("boom"));   // 2
  EXPECT_TRUE(fault::At("boom"));   // 3
  EXPECT_TRUE(fault::At("boom"));   // 4
  EXPECT_FALSE(fault::At("boom"));  // 5
}

TEST_F(FaultInjectTest, OpenEndedRange) {
  fault::SetSpecForTest("boom@3x*");
  EXPECT_FALSE(fault::At("boom"));
  EXPECT_FALSE(fault::At("boom"));
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(fault::At("boom"));
}

TEST_F(FaultInjectTest, PointsAreIndependent) {
  fault::SetSpecForTest("a@1,b@2");
  EXPECT_TRUE(fault::At("a"));
  EXPECT_FALSE(fault::At("b"));  // b's counter is separate from a's
  EXPECT_TRUE(fault::At("b"));
  EXPECT_FALSE(fault::At("unlisted"));
}

TEST_F(FaultInjectTest, ResetCountersRearmsTheSpec) {
  fault::SetSpecForTest("boom@1");
  EXPECT_TRUE(fault::At("boom"));
  EXPECT_FALSE(fault::At("boom"));
  fault::ResetCounters();
  EXPECT_TRUE(fault::At("boom"));
}

TEST_F(FaultInjectTest, BuiltinPointsAreRegistered) {
  for (const char* name :
       {"pretrain_nan_loss", "truncate_checkpoint", "serve_slow_encode",
        "serve_nan_embedding", "serve_reload_corrupt"}) {
    EXPECT_TRUE(fault::IsRegisteredPoint(name)) << name;
  }
  EXPECT_FALSE(fault::IsRegisteredPoint("no_such_point"));

  // RegisteredPoints is sorted by name and every entry carries a
  // description (the `timedrl fault-points` listing).
  std::vector<fault::FaultPointInfo> points = fault::RegisteredPoints();
  ASSERT_GE(points.size(), 5u);
  for (size_t i = 1; i < points.size(); ++i) {
    EXPECT_LT(points[i - 1].name, points[i].name);
  }
  for (const fault::FaultPointInfo& point : points) {
    EXPECT_FALSE(point.description.empty()) << point.name;
  }
}

TEST_F(FaultInjectTest, RegisterPointIsIdempotentAndUpdates) {
  fault::RegisterPoint("test_only_point", "first description");
  EXPECT_TRUE(fault::IsRegisteredPoint("test_only_point"));
  fault::RegisterPoint("test_only_point", "second description");
  bool found = false;
  for (const fault::FaultPointInfo& point : fault::RegisteredPoints()) {
    if (point.name == "test_only_point") {
      found = true;
      EXPECT_EQ(point.description, "second description");
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(FaultInjectTest, UnregisteredSpecNamesStillInstall) {
  // A typo'd point warns (visible in the log) but the rule still works, so
  // a deliberately unregistered name in a spec is not silently inert.
  fault::SetSpecForTest("totally_unknown_point@1");
  EXPECT_TRUE(fault::At("totally_unknown_point"));
}

TEST(Crc32Test, MatchesKnownVector) {
  // IEEE 802.3 CRC-32 of "123456789" is the classic check value.
  const char data[] = "123456789";
  EXPECT_EQ(Crc32(data, 9), 0xCBF43926u);
}

TEST(Crc32Test, DetectsSingleBitFlip) {
  std::string payload(256, '\0');
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<char>(i);
  }
  const uint32_t crc = Crc32(payload.data(), payload.size());
  payload[100] ^= 0x01;
  EXPECT_NE(Crc32(payload.data(), payload.size()), crc);
}

TEST(StatusTest, LocationsAppearInToString) {
  Status status = Status::Error(StatusCode::kRaggedRow, "short row")
                      .WithLocation(7, 3);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kRaggedRow);
  EXPECT_EQ(status.row(), 7);
  EXPECT_EQ(status.col(), 3);
  EXPECT_NE(status.ToString().find("row 7"), std::string::npos);
  EXPECT_NE(status.ToString().find("col 3"), std::string::npos);
}

TEST(StatusTest, OkConvertsToTrue) {
  EXPECT_TRUE(Status::Ok());
  EXPECT_FALSE(Status::Error(StatusCode::kIoError, "nope"));
}

}  // namespace
}  // namespace timedrl
