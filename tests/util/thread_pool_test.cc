#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace timedrl {
namespace {

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr int64_t kRange = 10007;  // Deliberately not a grain multiple.
  std::vector<std::atomic<int>> hits(kRange);
  for (auto& hit : hits) hit.store(0);
  pool.ParallelFor(0, kRange, 64, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (int64_t i = 0; i < kRange; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ChunksRespectGrainAndAreContiguous) {
  ThreadPool pool(4);
  std::mutex mutex;
  std::vector<std::pair<int64_t, int64_t>> chunks;
  pool.ParallelFor(0, 1000, 128, [&](int64_t begin, int64_t end) {
    std::lock_guard<std::mutex> lock(mutex);
    chunks.emplace_back(begin, end);
  });
  int64_t covered = 0;
  for (const auto& [begin, end] : chunks) {
    EXPECT_LT(begin, end);
    EXPECT_LE(end - begin, 128);
    covered += end - begin;
  }
  EXPECT_EQ(covered, 1000);
}

TEST(ThreadPoolTest, SizeOneRunsInlineOnCaller) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  int calls = 0;
  pool.ParallelFor(0, 100, 1, [&](int64_t begin, int64_t end) {
    // Serial path: one call with the whole range, on the calling thread.
    EXPECT_EQ(std::this_thread::get_id(), caller);
    EXPECT_EQ(begin, 0);
    EXPECT_EQ(end, 100);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, EmptyRangeDoesNothing) {
  ThreadPool pool(4);
  bool called = false;
  pool.ParallelFor(5, 5, 1, [&](int64_t, int64_t) { called = true; });
  pool.ParallelFor(7, 3, 1, [&](int64_t, int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, PropagatesExceptionAndStaysUsable) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(0, 1000, 10,
                       [](int64_t begin, int64_t) {
                         if (begin >= 500) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // The pool must survive the failed loop.
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(0, 100, 10, [&](int64_t begin, int64_t end) {
    int64_t local = 0;
    for (int64_t i = begin; i < end; ++i) local += i;
    sum.fetch_add(local);
  });
  EXPECT_EQ(sum.load(), 100 * 99 / 2);
}

TEST(ThreadPoolTest, NestedParallelForRunsSeriallyInWorkers) {
  ThreadPool pool(4);
  std::atomic<int64_t> total{0};
  pool.ParallelFor(0, 8, 1, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      const std::thread::id outer_thread = std::this_thread::get_id();
      // The nested loop must complete inline without deadlocking, on the
      // same thread (reentrancy guard) when running inside a worker.
      pool.ParallelFor(0, 100, 10, [&](int64_t inner_begin, int64_t inner_end) {
        EXPECT_EQ(std::this_thread::get_id(), outer_thread);
        total.fetch_add(inner_end - inner_begin);
      });
    }
  });
  EXPECT_EQ(total.load(), 8 * 100);
}

TEST(ThreadPoolTest, DefaultSizeReadsEnvironment) {
  const char* saved = std::getenv("TIMEDRL_NUM_THREADS");
  const std::string saved_value = saved ? saved : "";

  setenv("TIMEDRL_NUM_THREADS", "3", /*overwrite=*/1);
  EXPECT_EQ(ThreadPool::DefaultSize(), 3);
  setenv("TIMEDRL_NUM_THREADS", "not-a-number", 1);
  EXPECT_GE(ThreadPool::DefaultSize(), 1);  // Falls back to hardware.
  setenv("TIMEDRL_NUM_THREADS", "0", 1);
  EXPECT_GE(ThreadPool::DefaultSize(), 1);

  if (saved) {
    setenv("TIMEDRL_NUM_THREADS", saved_value.c_str(), 1);
  } else {
    unsetenv("TIMEDRL_NUM_THREADS");
  }
}

TEST(ThreadPoolTest, SetNumThreadsRebuildsGlobalPool) {
  SetNumThreads(3);
  EXPECT_EQ(NumThreads(), 3);
  std::atomic<int64_t> sum{0};
  ParallelFor(0, 1000, 100, [&](int64_t begin, int64_t end) {
    int64_t local = 0;
    for (int64_t i = begin; i < end; ++i) local += i;
    sum.fetch_add(local);
  });
  EXPECT_EQ(sum.load(), 1000 * 999 / 2);
  SetNumThreads(1);
  EXPECT_EQ(NumThreads(), 1);
}

}  // namespace
}  // namespace timedrl
