// Unit tests for the baseline loss building blocks.

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/common.h"

namespace timedrl::baselines {
namespace {

TEST(L2NormalizeTest, RowsHaveUnitNorm) {
  Rng rng(1);
  Tensor x = Tensor::Randn({5, 7}, rng, 0.0f, 3.0f);
  Tensor y = L2NormalizeRows(x);
  for (int64_t r = 0; r < 5; ++r) {
    double norm = 0;
    for (int64_t c = 0; c < 7; ++c) norm += y.at({r, c}) * y.at({r, c});
    EXPECT_NEAR(std::sqrt(norm), 1.0, 1e-4);
  }
}

TEST(NtXentTest, PerfectAlignmentGivesLowLoss) {
  Rng rng(2);
  Tensor a = Tensor::Randn({8, 16}, rng);
  // Identical views: positives have similarity 1, everything else less (in
  // general position), so the loss should be small at low temperature.
  Tensor aligned_loss = NtXentLoss(a, a, 0.05f);
  Tensor b = Tensor::Randn({8, 16}, rng);
  Tensor random_loss = NtXentLoss(a, b, 0.05f);
  EXPECT_LT(aligned_loss.item(), random_loss.item());
  EXPECT_LT(aligned_loss.item(), 0.5f);
}

TEST(NtXentTest, GradientsFlowToBothViews) {
  Rng rng(3);
  Tensor a = Tensor::Randn({4, 8}, rng, 0.0f, 1.0f, /*requires_grad=*/true);
  Tensor b = Tensor::Randn({4, 8}, rng, 0.0f, 1.0f, /*requires_grad=*/true);
  NtXentLoss(a, b, 0.2f).Backward();
  EXPECT_TRUE(a.has_grad());
  EXPECT_TRUE(b.has_grad());
}

TEST(DiagonalContrastTest, IdentityLogitsBeatShuffled) {
  // Strong diagonal -> low CE; strong off-diagonal -> high CE.
  Tensor good = Tensor::FromVector({2, 2}, {5, 0, 0, 5});
  Tensor bad = Tensor::FromVector({2, 2}, {0, 5, 5, 0});
  EXPECT_LT(DiagonalContrast(good).item(), 0.1f);
  EXPECT_GT(DiagonalContrast(bad).item(), 3.0f);
}

TEST(BceWithLogitsTest, HandValues) {
  // BCE(logit=0, target) = log(2) for either target.
  Tensor zero = Tensor::Scalar(0.0f);
  EXPECT_NEAR(BceWithLogits(zero, 1.0f).item(), std::log(2.0f), 1e-5);
  EXPECT_NEAR(BceWithLogits(zero, 0.0f).item(), std::log(2.0f), 1e-5);
  // Confident & correct -> near zero; confident & wrong -> near |logit|.
  Tensor strong = Tensor::Scalar(10.0f);
  EXPECT_NEAR(BceWithLogits(strong, 1.0f).item(), 0.0f, 1e-3);
  EXPECT_NEAR(BceWithLogits(strong, 0.0f).item(), 10.0f, 1e-3);
}

TEST(BceWithLogitsTest, StableForLargeMagnitudes) {
  Tensor large = Tensor::FromVector({2}, {500.0f, -500.0f});
  Tensor loss = BceWithLogits(large, 1.0f);
  EXPECT_TRUE(std::isfinite(loss.item()));
}

TEST(KMeansTest, SeparatesObviousClusters) {
  Rng rng(4);
  std::vector<std::vector<float>> rows;
  for (int i = 0; i < 20; ++i) {
    rows.push_back({rng.Normal(0.0f, 0.1f), rng.Normal(0.0f, 0.1f)});
  }
  for (int i = 0; i < 20; ++i) {
    rows.push_back({rng.Normal(10.0f, 0.1f), rng.Normal(10.0f, 0.1f)});
  }
  std::vector<std::vector<float>> centroids;
  std::vector<int64_t> assignment = KMeans(rows, 2, 10, rng, &centroids);
  ASSERT_EQ(centroids.size(), 2u);
  // All points in the first half share a label, all in the second the other.
  for (int i = 1; i < 20; ++i) EXPECT_EQ(assignment[i], assignment[0]);
  for (int i = 21; i < 40; ++i) EXPECT_EQ(assignment[i], assignment[20]);
  EXPECT_NE(assignment[0], assignment[20]);
}

TEST(KMeansTest, ClampsKToSampleCount) {
  Rng rng(5);
  std::vector<std::vector<float>> rows = {{0.0f}, {1.0f}};
  std::vector<int64_t> assignment = KMeans(rows, 10, 5, rng, nullptr);
  EXPECT_EQ(assignment.size(), 2u);
  for (int64_t a : assignment) EXPECT_LT(a, 2);
}

TEST(KMeansTest, DeterministicGivenRngState) {
  std::vector<std::vector<float>> rows;
  Rng data_rng(6);
  for (int i = 0; i < 30; ++i) {
    rows.push_back({data_rng.Normal(), data_rng.Normal()});
  }
  Rng a(7);
  Rng b(7);
  EXPECT_EQ(KMeans(rows, 3, 5, a, nullptr), KMeans(rows, 3, 5, b, nullptr));
}

}  // namespace
}  // namespace timedrl::baselines
