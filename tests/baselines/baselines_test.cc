// Every baseline must train (loss decreases or stays finite) and produce
// usable representations.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "baselines/clustering.h"
#include "baselines/common.h"
#include "baselines/contrastive_cv.h"
#include "baselines/cost.h"
#include "baselines/end_to_end.h"
#include "baselines/simts.h"
#include "baselines/tloss.h"
#include "baselines/tnc.h"
#include "baselines/ts2vec.h"
#include "baselines/tstcc.h"
#include "data/synthetic.h"

namespace timedrl::baselines {
namespace {

struct BaselineCase {
  std::string name;
  std::function<std::unique_ptr<SslBaseline>(int64_t, Rng&)> make;
};

class SslBaselineTest : public ::testing::TestWithParam<BaselineCase> {};

TEST_P(SslBaselineTest, TrainsAndEncodes) {
  Rng rng(11);
  const int64_t channels = 3;
  data::ClassificationDataset dataset = data::MakeWisdmLike(80, 32, rng);
  std::unique_ptr<SslBaseline> model = GetParam().make(channels, rng);

  core::ClassificationSource source(&dataset);
  core::PretrainConfig config;
  config.train.epochs = 3;
  config.train.batch_size = 16;
  std::vector<double> history = TrainSslBaseline(model.get(), source, config,
                                                 rng);
  ASSERT_EQ(history.size(), 3u);
  for (double loss : history) EXPECT_TRUE(std::isfinite(loss));

  // Representations have the advertised shapes and are deterministic in
  // eval mode.
  auto [x, labels] = dataset.GetBatch({0, 1, 2});
  (void)labels;
  NoGradGuard guard;
  Tensor sequence = model->EncodeSequence(x);
  EXPECT_EQ(sequence.shape(),
            (Shape{3, 32, model->representation_dim()}));
  Tensor instance_a = model->EncodeInstance(x);
  Tensor instance_b = model->EncodeInstance(x);
  EXPECT_EQ(instance_a.shape(), (Shape{3, model->representation_dim()}));
  EXPECT_EQ(instance_a.data(), instance_b.data());
}

std::vector<BaselineCase> MakeCases() {
  auto wrap = [](auto factory) {
    return [factory](int64_t channels, Rng& rng) {
      return factory(channels, rng);
    };
  };
  return {
      {"Ts2Vec", wrap([](int64_t c, Rng& rng) -> std::unique_ptr<SslBaseline> {
         return std::make_unique<Ts2Vec>(c, 16, 2, rng);
       })},
      {"SimTs", wrap([](int64_t c, Rng& rng) -> std::unique_ptr<SslBaseline> {
         return std::make_unique<SimTs>(c, 16, 2, rng);
       })},
      {"Tnc", wrap([](int64_t c, Rng& rng) -> std::unique_ptr<SslBaseline> {
         return std::make_unique<Tnc>(c, 16, 2, rng);
       })},
      {"CoSt", wrap([](int64_t c, Rng& rng) -> std::unique_ptr<SslBaseline> {
         return std::make_unique<CoSt>(c, 16, 2, rng);
       })},
      {"SimClr", wrap([](int64_t c, Rng& rng) -> std::unique_ptr<SslBaseline> {
         return std::make_unique<SimClr>(c, 16, 2, rng);
       })},
      {"Byol", wrap([](int64_t c, Rng& rng) -> std::unique_ptr<SslBaseline> {
         return std::make_unique<Byol>(c, 16, 2, rng);
       })},
      {"TsTcc", wrap([](int64_t c, Rng& rng) -> std::unique_ptr<SslBaseline> {
         return std::make_unique<TsTcc>(c, 16, 2, rng);
       })},
      {"TLoss", wrap([](int64_t c, Rng& rng) -> std::unique_ptr<SslBaseline> {
         return std::make_unique<TLoss>(c, 16, 2, rng);
       })},
      {"Ccl", wrap([](int64_t c, Rng& rng) -> std::unique_ptr<SslBaseline> {
         return std::make_unique<Ccl>(c, 16, 2, 6, rng);
       })},
      {"MhcclLite",
       wrap([](int64_t c, Rng& rng) -> std::unique_ptr<SslBaseline> {
         return std::make_unique<MhcclLite>(c, 16, 2, 6, rng);
       })},
  };
}

INSTANTIATE_TEST_SUITE_P(
    All, SslBaselineTest, ::testing::ValuesIn(MakeCases()),
    [](const ::testing::TestParamInfo<BaselineCase>& info) {
      return info.param.name;
    });

TEST(BaselineLossDecreasesTest, Ts2VecLossDecreases) {
  Rng rng(13);
  data::TimeSeries series = data::MakeEttLike(500, 24, 1, rng);
  data::ForecastingWindows windows(series, 32, 0, /*stride=*/4);
  core::ForecastingSource source(&windows, /*channel_independent=*/false);
  Ts2Vec model(7, 16, 2, rng);
  core::PretrainConfig config;
  config.train.epochs = 5;
  config.train.batch_size = 16;
  std::vector<double> history =
      TrainSslBaseline(&model, source, config, rng);
  EXPECT_LT(history.back(), history.front());
}

TEST(EndToEndTest, InformerAndTcnLearnAR1) {
  Rng rng(17);
  // Highly predictable series: a clean sinusoid.
  data::TimeSeries series(400, 2);
  for (int64_t t = 0; t < 400; ++t) {
    series.at(t, 0) = std::sin(0.3f * t);
    series.at(t, 1) = std::cos(0.3f * t);
  }
  data::ForecastingWindows windows(series, 24, 8, /*stride=*/2);

  core::DownstreamConfig config;
  config.train.epochs = 12;
  config.train.batch_size = 16;

  InformerLite informer(2, 8, 16, 1, rng);
  TrainEndToEnd(&informer, windows, config, rng);
  core::ForecastMetrics informer_metrics = EvaluateEndToEnd(&informer, windows);
  EXPECT_LT(informer_metrics.mse, 0.25);  // sinusoid variance is 0.5

  TcnForecaster tcn(2, 8, 16, 2, rng);
  TrainEndToEnd(&tcn, windows, config, rng);
  core::ForecastMetrics tcn_metrics = EvaluateEndToEnd(&tcn, windows);
  EXPECT_LT(tcn_metrics.mse, 0.25);
}

TEST(BaselineProbeTest, ProbesRun) {
  Rng rng(19);
  data::ClassificationDataset dataset = data::MakeEpilepsyLike(100, 48, rng);
  data::ClassificationSplits splits = data::StratifiedSplit(dataset, 0.7, rng);

  Ts2Vec model(1, 16, 2, rng);
  core::ClassificationSource source(&splits.train);
  core::PretrainConfig pretrain_config;
  pretrain_config.train.epochs = 5;
  pretrain_config.train.batch_size = 16;
  TrainSslBaseline(&model, source, pretrain_config, rng);

  BaselineClassifyProbe probe(&model, 2, rng);
  core::DownstreamConfig downstream;
  downstream.train.epochs = 10;
  downstream.train.batch_size = 16;
  probe.Train(splits.train, downstream, rng);
  core::ClassificationMetrics result = probe.Evaluate(splits.test);
  EXPECT_GE(result.accuracy, 0.5);  // two classes; must be at least chance
}

}  // namespace
}  // namespace timedrl::baselines
