// Integration tests: every bench pathway runs end-to-end at miniature scale.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "bench/harness.h"

namespace timedrl::bench {
namespace {

Settings TinySettings() {
  Settings settings;  // note: deliberately NOT FromEnv(); tests are hermetic
  settings.data_scale = 0.08;
  settings.input_length = 32;
  settings.window_stride = 4;
  settings.d_model = 16;
  settings.num_heads = 2;
  settings.ff_dim = 32;
  settings.num_layers = 1;
  settings.baseline_hidden = 16;
  settings.baseline_blocks = 2;
  settings.ssl_epochs = 2;
  settings.probe_epochs = 2;
  settings.e2e_epochs = 2;
  settings.finetune_epochs = 2;
  return settings;
}

TEST(HarnessTest, SettingsFromEnvScales) {
  setenv("TIMEDRL_BENCH_SCALE", "2.0", 1);
  setenv("TIMEDRL_BENCH_EPOCHS", "3.0", 1);
  Settings settings = Settings::FromEnv();
  Settings defaults;
  EXPECT_DOUBLE_EQ(settings.data_scale, defaults.data_scale * 2.0);
  EXPECT_DOUBLE_EQ(settings.epoch_scale, 3.0);
  EXPECT_EQ(settings.SslEpochs(), defaults.ssl_epochs * 3);
  unsetenv("TIMEDRL_BENCH_SCALE");
  unsetenv("TIMEDRL_BENCH_EPOCHS");
}

TEST(HarnessTest, PrepareForecastSuiteProducesUsableSplits) {
  Settings settings = TinySettings();
  Rng rng(1);
  std::vector<ForecastData> suite =
      PrepareForecastSuite(settings, /*univariate=*/false, rng);
  ASSERT_EQ(suite.size(), 6u);
  for (const ForecastData& data : suite) {
    EXPECT_FALSE(data.horizons.empty()) << data.name;
    EXPECT_GT(data.PretrainWindows(settings).size(), 0) << data.name;
    const int64_t horizon = data.horizons.front();
    EXPECT_GT(data.TrainWindows(horizon, settings).size(), 0);
    EXPECT_GT(data.TestWindows(horizon, settings).size(), 0);
  }
}

TEST(HarnessTest, UnivariatePreparationKeepsOneChannel) {
  Settings settings = TinySettings();
  Rng rng(2);
  std::vector<ForecastData> suite =
      PrepareForecastSuite(settings, /*univariate=*/true, rng);
  for (const ForecastData& data : suite) {
    EXPECT_EQ(data.channels, 1) << data.name;
  }
}

TEST(HarnessTest, TimeDrlForecastPath) {
  Settings settings = TinySettings();
  Rng rng(3);
  std::vector<ForecastData> suite =
      PrepareForecastSuite(settings, false, rng);
  const ForecastData& data = suite[0];
  std::unique_ptr<core::TimeDrlModel> model =
      PretrainTimeDrlForecast(data, settings, rng);
  ForecastCell cell =
      EvalTimeDrlForecast(model.get(), data, data.horizons.front(), settings,
                          rng);
  EXPECT_TRUE(std::isfinite(cell.mse));
  EXPECT_GT(cell.mse, 0.0);
  EXPECT_TRUE(std::isfinite(cell.mae));
}

TEST(HarnessTest, AllSslForecastBaselinesRun) {
  Settings settings = TinySettings();
  Rng rng(4);
  std::vector<ForecastData> suite =
      PrepareForecastSuite(settings, false, rng);
  const ForecastData& data = suite[4];  // Exchange (cheapest channels)
  for (const std::string& name : SslForecastBaselineNames()) {
    std::unique_ptr<baselines::SslBaseline> model =
        PretrainBaselineForecast(name, data, settings, rng);
    ForecastCell cell = EvalBaselineForecast(model.get(), data,
                                             data.horizons.front(), settings,
                                             rng);
    EXPECT_TRUE(std::isfinite(cell.mse)) << name;
  }
}

TEST(HarnessTest, EndToEndForecastersRun) {
  Settings settings = TinySettings();
  Rng rng(5);
  std::vector<ForecastData> suite =
      PrepareForecastSuite(settings, false, rng);
  for (const std::string name : {"Informer", "TCN"}) {
    ForecastCell cell = EvalEndToEndForecast(name, suite[0],
                                             suite[0].horizons.front(),
                                             settings, rng);
    EXPECT_TRUE(std::isfinite(cell.mse)) << name;
  }
}

TEST(HarnessTest, ClassifySuitePreparation) {
  Settings settings = TinySettings();
  Rng rng(6);
  std::vector<ClassifyData> suite = PrepareClassifySuite(settings, rng);
  ASSERT_EQ(suite.size(), 5u);
  for (const ClassifyData& data : suite) {
    EXPECT_GT(data.train.size(), 0) << data.name;
    EXPECT_GT(data.test.size(), 0) << data.name;
    EXPECT_EQ(data.train.num_classes, data.test.num_classes);
  }
}

TEST(HarnessTest, TimeDrlClassifyPathAllPoolings) {
  Settings settings = TinySettings();
  Rng rng(7);
  std::vector<ClassifyData> suite = PrepareClassifySuite(settings, rng);
  const ClassifyData* pen_digits = nullptr;
  for (const auto& data : suite) {
    if (data.name == "PenDigits") pen_digits = &data;
  }
  ASSERT_NE(pen_digits, nullptr);
  // PenDigits has window length 8 < default patch 8: exercises the
  // patch-shrinking logic.
  std::unique_ptr<core::TimeDrlModel> model =
      PretrainTimeDrlClassify(*pen_digits, settings, rng);
  for (core::Pooling pooling :
       {core::Pooling::kCls, core::Pooling::kLast, core::Pooling::kGap,
        core::Pooling::kAll}) {
    core::ClassificationMetrics metrics =
        EvalTimeDrlClassify(model.get(), *pen_digits, pooling, settings, rng);
    EXPECT_GE(metrics.accuracy, 0.0);
    EXPECT_LE(metrics.accuracy, 1.0);
  }
}

TEST(HarnessTest, LambdaAndStopGradientKnobsPropagate) {
  Settings settings = TinySettings();
  Rng rng(8);
  std::vector<ClassifyData> suite = PrepareClassifySuite(settings, rng);
  std::unique_ptr<core::TimeDrlModel> a = PretrainTimeDrlClassify(
      suite[1], settings, rng, /*lambda_weight=*/0.001f,
      /*stop_gradient=*/true);
  EXPECT_FLOAT_EQ(a->config().lambda_weight, 0.001f);
  EXPECT_TRUE(a->config().stop_gradient);
  std::unique_ptr<core::TimeDrlModel> b = PretrainTimeDrlClassify(
      suite[1], settings, rng, /*lambda_weight=*/1.0f,
      /*stop_gradient=*/false);
  EXPECT_FALSE(b->config().stop_gradient);
}

TEST(HarnessTest, AllSslClassifyBaselinesRun) {
  Settings settings = TinySettings();
  Rng rng(9);
  std::vector<ClassifyData> suite = PrepareClassifySuite(settings, rng);
  const ClassifyData* epilepsy = nullptr;
  for (const auto& data : suite) {
    if (data.name == "Epilepsy") epilepsy = &data;
  }
  ASSERT_NE(epilepsy, nullptr);
  for (const std::string& name : SslClassifyBaselineNames()) {
    core::ClassificationMetrics metrics =
        EvalBaselineClassify(name, *epilepsy, settings, rng);
    EXPECT_GE(metrics.accuracy, 0.0) << name;
    EXPECT_LE(metrics.accuracy, 1.0) << name;
  }
}

}  // namespace
}  // namespace timedrl::bench
