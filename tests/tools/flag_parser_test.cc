#include "tools/flag_parser.h"

#include <gtest/gtest.h>

namespace timedrl::tools {
namespace {

FlagParser Parse(std::vector<std::string> args) {
  static std::vector<std::string> storage;
  storage = std::move(args);
  static std::vector<char*> argv;
  argv.clear();
  argv.push_back(const_cast<char*>("timedrl"));
  for (std::string& arg : storage) {
    argv.push_back(const_cast<char*>(arg.c_str()));
  }
  return FlagParser(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagParserTest, CommandAndSpaceSeparatedValues) {
  FlagParser flags = Parse({"pretrain", "--csv", "a.csv", "--epochs", "5"});
  EXPECT_EQ(flags.command(), "pretrain");
  EXPECT_EQ(flags.GetString("csv"), "a.csv");
  EXPECT_EQ(flags.GetInt("epochs", 0), 5);
}

TEST(FlagParserTest, EqualsSyntax) {
  FlagParser flags = Parse({"forecast", "--horizon=24", "--lambda=0.5"});
  EXPECT_EQ(flags.GetInt("horizon", 0), 24);
  EXPECT_DOUBLE_EQ(flags.GetDouble("lambda", 0), 0.5);
}

TEST(FlagParserTest, BareBooleanFlags) {
  FlagParser flags = Parse({"pretrain", "--channel-independent", "--csv",
                            "x.csv"});
  EXPECT_TRUE(flags.GetBool("channel-independent"));
  EXPECT_FALSE(flags.GetBool("fine-tune"));
  EXPECT_EQ(flags.GetString("csv"), "x.csv");
}

TEST(FlagParserTest, BooleanFollowedByFlagDoesNotSwallowIt) {
  FlagParser flags = Parse({"anomaly", "--verbose", "--top", "3"});
  EXPECT_TRUE(flags.GetBool("verbose"));
  EXPECT_EQ(flags.GetInt("top", 0), 3);
}

TEST(FlagParserTest, DefaultsWhenAbsent) {
  FlagParser flags = Parse({"generate"});
  EXPECT_EQ(flags.GetInt("length", 2000), 2000);
  EXPECT_EQ(flags.GetString("dataset", "etth1"), "etth1");
  EXPECT_FALSE(flags.Has("out"));
}

TEST(FlagParserTest, EmptyCommandLine) {
  FlagParser flags = Parse({});
  EXPECT_TRUE(flags.command().empty());
}

}  // namespace
}  // namespace timedrl::tools
