// TrainObserver sinks: ConsoleObserver's line format (the contract that
// preserved the old `verbose` output), MetricsObserver's registry writes,
// and MultiObserver fan-out.

#include "obs/observer.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace timedrl::obs {
namespace {

EpochStats MakeEpochStats() {
  EpochStats stats;
  stats.phase = "pretrain";
  stats.loss_label = "L";
  stats.epoch = 2;  // 0-based; printed as 3
  stats.num_epochs = 10;
  stats.steps = 5;
  stats.loss = 0.5;
  stats.grad_norm = 1.25;
  stats.learning_rate = 0.001f;
  stats.extra = {{"L_P", 0.25}, {"L_C", 0.125}};
  return stats;
}

TEST(ConsoleObserverTest, EpochLineMatchesLegacyVerboseFormat) {
  std::ostringstream out;
  ConsoleObserver observer(&out);
  observer.OnEpochEnd(MakeEpochStats());
  EXPECT_EQ(out.str(), "pretrain epoch 3/10 L=0.5 L_P=0.25 L_C=0.125\n");
}

TEST(ConsoleObserverTest, NoExtrasOmitsTrailingFields) {
  std::ostringstream out;
  ConsoleObserver observer(&out);
  EpochStats stats;
  stats.phase = "forecast head";
  stats.loss_label = "mse";
  stats.epoch = 0;
  stats.num_epochs = 1;
  stats.loss = 2.0;
  observer.OnEpochEnd(stats);
  EXPECT_EQ(out.str(), "forecast head epoch 1/1 mse=2\n");
}

TEST(ConsoleObserverTest, StepsAreSilent) {
  std::ostringstream out;
  ConsoleObserver observer(&out);
  observer.OnStep(StepStats{});
  EXPECT_TRUE(out.str().empty());
}

TEST(MetricsObserverTest, PublishesCountersGaugesAndStepHistogram) {
  MetricsObserver observer("unit_obs");
  Registry& registry = Registry::Global();
  registry.GetCounter("unit_obs.steps").Reset();
  registry.GetCounter("unit_obs.epochs").Reset();
  registry.GetHistogram("unit_obs.step_loss").Reset();

  StepStats step;
  step.loss = 0.75;
  observer.OnStep(step);
  step.loss = 0.25;
  observer.OnStep(step);
  observer.OnEpochEnd(MakeEpochStats());

  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.CounterValue("unit_obs.steps"), 2u);
  EXPECT_EQ(snapshot.CounterValue("unit_obs.epochs"), 1u);
  const HistogramStats* step_loss = snapshot.FindHistogram("unit_obs.step_loss");
  ASSERT_NE(step_loss, nullptr);
  EXPECT_EQ(step_loss->count, 2u);
  EXPECT_DOUBLE_EQ(step_loss->sum, 1.0);
  EXPECT_DOUBLE_EQ(snapshot.GaugeValue("unit_obs.loss"), 0.5);
  EXPECT_DOUBLE_EQ(snapshot.GaugeValue("unit_obs.grad_norm"), 1.25);
  EXPECT_NEAR(snapshot.GaugeValue("unit_obs.lr"), 0.001, 1e-9);
  // Extras become gauges under the observer's prefix.
  EXPECT_DOUBLE_EQ(snapshot.GaugeValue("unit_obs.L_P"), 0.25);
  EXPECT_DOUBLE_EQ(snapshot.GaugeValue("unit_obs.L_C"), 0.125);
}

TEST(MultiObserverTest, FansOutAndSkipsNullChildren) {
  struct CountingObserver : TrainObserver {
    int steps = 0;
    int epochs = 0;
    void OnStep(const StepStats&) override { ++steps; }
    void OnEpochEnd(const EpochStats&) override { ++epochs; }
  };
  CountingObserver first;
  CountingObserver second;
  MultiObserver multi({&first, nullptr, &second});

  multi.OnStep(StepStats{});
  multi.OnStep(StepStats{});
  multi.OnEpochEnd(EpochStats{});

  EXPECT_EQ(first.steps, 2);
  EXPECT_EQ(second.steps, 2);
  EXPECT_EQ(first.epochs, 1);
  EXPECT_EQ(second.epochs, 1);
}

}  // namespace
}  // namespace timedrl::obs
