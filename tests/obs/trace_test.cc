// Trace spans: nesting, enable/disable gating, cross-thread recording, and
// the chrome://tracing JSON export round-trip.

#include "obs/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace timedrl::obs {
namespace {

// Each test owns the global trace state: start empty and disabled, leave
// the same way.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetTraceEnabled(false);
    ClearTraceEvents();
  }
  void TearDown() override {
    SetTraceEnabled(false);
    ClearTraceEvents();
  }
};

const TraceEvent* FindByName(const std::vector<TraceEvent>& events,
                             const std::string& name) {
  for (const TraceEvent& event : events) {
    if (name == event.name) return &event;
  }
  return nullptr;
}

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  {
    TIMEDRL_TRACE_SCOPE("invisible");
  }
  EXPECT_EQ(TraceEventCount(), 0);
  EXPECT_TRUE(CollectTraceEvents().empty());
}

TEST_F(TraceTest, NestedSpansRecordContainment) {
  SetTraceEnabled(true);
  {
    TIMEDRL_TRACE_SCOPE_CAT("outer", "test");
    {
      TIMEDRL_TRACE_SCOPE_CAT("inner", "test");
    }
  }
  const std::vector<TraceEvent> events = CollectTraceEvents();
  ASSERT_EQ(events.size(), 2u);
  const TraceEvent* outer = FindByName(events, "outer");
  const TraceEvent* inner = FindByName(events, "inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  // The inner span closed first but must lie inside the outer one.
  EXPECT_GE(inner->start_ns, outer->start_ns);
  EXPECT_LE(inner->start_ns + inner->duration_ns,
            outer->start_ns + outer->duration_ns);
  EXPECT_LE(inner->duration_ns, outer->duration_ns);
  EXPECT_EQ(inner->thread_id, outer->thread_id);
}

TEST_F(TraceTest, SpanOpenAtDisableIsStillRecorded) {
  SetTraceEnabled(true);
  {
    TIMEDRL_TRACE_SCOPE("spans_the_switch");
    SetTraceEnabled(false);
  }
  EXPECT_EQ(TraceEventCount(), 1);
}

TEST_F(TraceTest, SpanOpenedWhileDisabledIsNotRecorded) {
  {
    TraceScope scope("opened_disabled");
    SetTraceEnabled(true);
  }
  SetTraceEnabled(false);
  EXPECT_EQ(TraceEventCount(), 0);
}

TEST_F(TraceTest, ThreadsGetDistinctIdsAndAllEventsSurvive) {
  SetTraceEnabled(true);
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 5000;  // spills past one 4096-event chunk
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        TIMEDRL_TRACE_SCOPE("worker_span");
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  // Buffers outlive their threads; every span must still be collectable.
  const std::vector<TraceEvent> events = CollectTraceEvents();
  EXPECT_EQ(events.size(),
            static_cast<size_t>(kThreads) * kSpansPerThread);

  std::vector<uint32_t> thread_ids;
  for (const TraceEvent& event : events) thread_ids.push_back(event.thread_id);
  std::sort(thread_ids.begin(), thread_ids.end());
  thread_ids.erase(std::unique(thread_ids.begin(), thread_ids.end()),
                   thread_ids.end());
  EXPECT_EQ(thread_ids.size(), static_cast<size_t>(kThreads));

  // Within one thread the chunked buffer must replay in chronological order.
  int64_t last_start = -1;
  for (const TraceEvent& event : events) {
    if (event.thread_id != events[0].thread_id) continue;
    EXPECT_GE(event.start_ns, last_start);
    last_start = event.start_ns;
  }
}

TEST_F(TraceTest, ChromeExportRoundTrip) {
  SetTraceEnabled(true);
  {
    TIMEDRL_TRACE_SCOPE_CAT("exported_span", "unit");
  }
  SetTraceEnabled(false);

  std::ostringstream json;
  WriteChromeTrace(json);
  const std::string out = json.str();

  // Structure checks (no JSON parser in-tree): the three export pillars are
  // the traceEvents array, complete events with our span, and the embedded
  // metrics snapshot.
  EXPECT_NE(out.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(out.find("\"name\":\"exported_span\""), std::string::npos);
  EXPECT_NE(out.find("\"cat\":\"unit\""), std::string::npos);
  EXPECT_NE(out.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(out.find("\"otherData\""), std::string::npos);
  EXPECT_NE(out.find("\"metrics\""), std::string::npos);
  // Balanced braces — cheap well-formedness proxy.
  EXPECT_EQ(std::count(out.begin(), out.end(), '{'),
            std::count(out.begin(), out.end(), '}'));
  EXPECT_EQ(std::count(out.begin(), out.end(), '['),
            std::count(out.begin(), out.end(), ']'));
}

TEST_F(TraceTest, ClearResetsCounts) {
  SetTraceEnabled(true);
  {
    TIMEDRL_TRACE_SCOPE("ephemeral");
  }
  SetTraceEnabled(false);
  EXPECT_EQ(TraceEventCount(), 1);
  ClearTraceEvents();
  EXPECT_EQ(TraceEventCount(), 0);
  EXPECT_TRUE(CollectTraceEvents().empty());
}

}  // namespace
}  // namespace timedrl::obs
