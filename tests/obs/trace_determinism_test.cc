// Regression contract: tracing is an observer, not a participant. Running
// the exact same seeded training steps with tracing enabled must produce
// bitwise-identical losses, gradients, and parameters to a run with tracing
// disabled — instrumentation may only read clocks and append to buffers.

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "core/config.h"
#include "core/model.h"
#include "obs/trace.h"
#include "optim/optimizer.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace timedrl {
namespace {

struct TrainResult {
  std::vector<float> losses;
  std::vector<std::pair<std::string, std::vector<float>>> grads;
  std::vector<std::pair<std::string, std::vector<float>>> params;
};

// Deterministic multi-step training run (same recipe as the pool
// steady-state test): fixed seeds for model, data, and dropout, so two runs
// differ only through the trace flag.
TrainResult TrainSteps(int steps) {
  core::TimeDrlConfig config;
  config.input_channels = 2;
  config.input_length = 32;
  config.patch_length = 8;
  config.patch_stride = 8;
  config.d_model = 16;
  config.num_heads = 2;
  config.ff_dim = 32;
  config.num_layers = 2;

  Rng rng(42);
  core::TimeDrlModel model(config, rng);
  model.Train();
  optim::AdamW optimizer(model.Parameters(), /*learning_rate=*/1e-3f,
                         /*weight_decay=*/1e-2f);
  Rng data_rng(7);

  TrainResult result;
  for (int i = 0; i < steps; ++i) {
    Tensor x = Tensor::Randn({4, config.input_length, config.input_channels},
                             data_rng);
    auto output = model.PretextStep(x);
    optimizer.ZeroGrad();
    output.total.Backward();
    optim::ClipGradNorm(optimizer.parameters(), /*max_norm=*/5.0f);
    optimizer.Step();
    result.losses.push_back(output.total.item());
  }
  for (const auto& [name, param] : model.NamedParameters()) {
    result.grads.emplace_back(
        name, param.has_grad() ? param.grad() : std::vector<float>{});
    result.params.emplace_back(name, param.data());
  }
  return result;
}

TEST(TraceDeterminismTest, LossesBitwiseIdenticalWithTracingOn) {
  obs::SetTraceEnabled(false);
  const TrainResult reference = TrainSteps(3);

  obs::SetTraceEnabled(true);
  const TrainResult traced = TrainSteps(3);
  obs::SetTraceEnabled(false);

  // The traced run must actually have recorded spans — otherwise this test
  // would pass vacuously with instrumentation compiled out.
  EXPECT_GT(obs::TraceEventCount(), 0);
  obs::ClearTraceEvents();

  ASSERT_EQ(reference.losses.size(), traced.losses.size());
  for (size_t i = 0; i < reference.losses.size(); ++i) {
    EXPECT_EQ(reference.losses[i], traced.losses[i]) << "loss at step " << i;
  }

  ASSERT_EQ(reference.grads.size(), traced.grads.size());
  ASSERT_FALSE(reference.grads.empty());
  for (size_t i = 0; i < reference.grads.size(); ++i) {
    EXPECT_EQ(reference.grads[i].second, traced.grads[i].second)
        << "gradient of " << reference.grads[i].first
        << " differs with tracing enabled";
    EXPECT_EQ(reference.params[i].second, traced.params[i].second)
        << "parameter " << reference.params[i].first
        << " differs with tracing enabled";
  }
}

}  // namespace
}  // namespace timedrl
