// Metrics registry: counter/gauge/histogram semantics, stability of
// returned references, concurrent increments (run under the TSan Sanitize
// recipe, see DESIGN.md §10), snapshot lookups, and JSON export.

#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace timedrl::obs {
namespace {

TEST(CounterTest, IncrementAndReset) {
  Counter counter;
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.value(), 42u);
  counter.Reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(CounterTest, ConcurrentIncrementsAllLand) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kIncrementsPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kIncrementsPerThread; ++i) counter.Increment();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.value(),
            static_cast<uint64_t>(kThreads) * kIncrementsPerThread);
}

TEST(GaugeTest, SetAddSetMax) {
  Gauge gauge;
  gauge.Set(10.0);
  gauge.Add(-4.0);
  EXPECT_DOUBLE_EQ(gauge.value(), 6.0);
  gauge.SetMax(3.0);  // below current: no-op
  EXPECT_DOUBLE_EQ(gauge.value(), 6.0);
  gauge.SetMax(9.0);
  EXPECT_DOUBLE_EQ(gauge.value(), 9.0);
}

TEST(GaugeTest, ConcurrentAddsSumExactly) {
  Gauge gauge;
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&gauge] {
      for (int i = 0; i < kAddsPerThread; ++i) gauge.Add(1.0);
    });
  }
  for (std::thread& thread : threads) thread.join();
  // Every CAS-looped add of 1.0 is exact in double, so no tolerance needed.
  EXPECT_DOUBLE_EQ(gauge.value(),
                   static_cast<double>(kThreads) * kAddsPerThread);
}

TEST(HistogramTest, StatsAndQuantiles) {
  Histogram histogram;
  for (int i = 1; i <= 100; ++i) histogram.Observe(static_cast<double>(i));
  const HistogramStats stats = histogram.Snapshot();
  EXPECT_EQ(stats.count, 100u);
  EXPECT_DOUBLE_EQ(stats.sum, 5050.0);
  EXPECT_DOUBLE_EQ(stats.min, 1.0);
  EXPECT_DOUBLE_EQ(stats.max, 100.0);
  EXPECT_DOUBLE_EQ(stats.mean(), 50.5);
  // Bucket-resolution quantiles: the p50 observation (50) falls in the
  // [32, 64) bucket, so the estimate is that bucket's upper bound.
  EXPECT_DOUBLE_EQ(stats.ApproxQuantile(0.5), 64.0);
  EXPECT_GE(stats.ApproxQuantile(0.99), 100.0);
}

TEST(HistogramTest, ConcurrentObservesCountEverything) {
  Histogram histogram;
  constexpr int kThreads = 8;
  constexpr int kObservationsPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t] {
      for (int i = 0; i < kObservationsPerThread; ++i) {
        histogram.Observe(static_cast<double>(t + 1));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const HistogramStats stats = histogram.Snapshot();
  EXPECT_EQ(stats.count,
            static_cast<uint64_t>(kThreads) * kObservationsPerThread);
  EXPECT_DOUBLE_EQ(stats.min, 1.0);
  EXPECT_DOUBLE_EQ(stats.max, static_cast<double>(kThreads));
}

TEST(RegistryTest, LookupsAreStableAndShared) {
  Registry registry;
  Counter& a = registry.GetCounter("unit.counter");
  Counter& b = registry.GetCounter("unit.counter");
  EXPECT_EQ(&a, &b) << "same name must map to the same counter";
  a.Increment(7);
  EXPECT_EQ(b.value(), 7u);
}

TEST(RegistryTest, ConcurrentLookupAndIncrementThroughRegistry) {
  // The registry is the synchronization point subsystems actually use:
  // threads race first-lookup creation AND the increments themselves.
  Registry registry;
  constexpr int kThreads = 8;
  constexpr int kIncrementsPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      Counter& counter = registry.GetCounter("unit.contended");
      for (int i = 0; i < kIncrementsPerThread; ++i) counter.Increment();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(registry.GetCounter("unit.contended").value(),
            static_cast<uint64_t>(kThreads) * kIncrementsPerThread);
}

TEST(RegistryTest, SnapshotFindsByName) {
  Registry registry;
  registry.GetCounter("unit.hits").Increment(3);
  registry.GetGauge("unit.level").Set(2.5);
  registry.GetHistogram("unit.latency").Observe(10.0);

  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.CounterValue("unit.hits"), 3u);
  EXPECT_DOUBLE_EQ(snapshot.GaugeValue("unit.level"), 2.5);
  const HistogramStats* latency = snapshot.FindHistogram("unit.latency");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->count, 1u);
  // Absent names degrade to zero / null, not UB.
  EXPECT_EQ(snapshot.CounterValue("unit.absent"), 0u);
  EXPECT_DOUBLE_EQ(snapshot.GaugeValue("unit.absent"), 0.0);
  EXPECT_EQ(snapshot.FindHistogram("unit.absent"), nullptr);
}

TEST(RegistryTest, ResetZeroesCountersAndHistogramsButNotGauges) {
  Registry registry;
  registry.GetCounter("unit.hits").Increment(3);
  registry.GetGauge("unit.bytes").Set(1024.0);
  registry.GetHistogram("unit.latency").Observe(10.0);

  registry.Reset();
  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.CounterValue("unit.hits"), 0u);
  EXPECT_EQ(snapshot.FindHistogram("unit.latency")->count, 0u);
  // Gauges track live state (e.g. pool bytes); reset must not falsify them.
  EXPECT_DOUBLE_EQ(snapshot.GaugeValue("unit.bytes"), 1024.0);
}

TEST(RegistryTest, WriteJsonContainsAllSections) {
  Registry registry;
  registry.GetCounter("unit.hits").Increment(3);
  registry.GetGauge("unit.level").Set(2.5);
  registry.GetHistogram("unit.latency").Observe(10.0);

  std::ostringstream json;
  registry.WriteJson(json);
  const std::string out = json.str();
  EXPECT_NE(out.find("\"counters\""), std::string::npos);
  EXPECT_NE(out.find("\"unit.hits\":3"), std::string::npos);
  EXPECT_NE(out.find("\"gauges\""), std::string::npos);
  EXPECT_NE(out.find("\"unit.level\""), std::string::npos);
  EXPECT_NE(out.find("\"histograms\""), std::string::npos);
  EXPECT_NE(out.find("\"unit.latency\""), std::string::npos);
  EXPECT_EQ(std::count(out.begin(), out.end(), '{'),
            std::count(out.begin(), out.end(), '}'));
}

TEST(RegistryTest, GlobalIsProcessWide) {
  Counter& counter = Registry::Global().GetCounter("unit.global_smoke");
  const uint64_t before = counter.value();
  Registry::Global().GetCounter("unit.global_smoke").Increment();
  EXPECT_EQ(counter.value(), before + 1);
}

}  // namespace
}  // namespace timedrl::obs
