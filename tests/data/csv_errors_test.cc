// Error-taxonomy tests for the hardened CSV loader: every failure mode has
// a distinct StatusCode and (where applicable) a 1-based row/column.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "data/csv.h"

namespace timedrl::data {
namespace {

class CsvErrorsTest : public ::testing::Test {
 protected:
  std::string WriteFile(const std::string& contents) {
    const std::string path =
        "/tmp/timedrl_csv_errors_" +
        std::string(::testing::UnitTest::GetInstance()
                        ->current_test_info()
                        ->name()) +
        ".csv";
    std::ofstream out(path);
    out << contents;
    paths_.push_back(path);
    return path;
  }

  void TearDown() override {
    for (const std::string& path : paths_) std::remove(path.c_str());
  }

  std::vector<std::string> paths_;
};

TEST_F(CsvErrorsTest, MissingFileIsIoError) {
  TimeSeries series;
  Status status = LoadCsv("/tmp/definitely_missing_timedrl.csv", &series);
  EXPECT_EQ(status.code(), StatusCode::kIoError);
}

TEST_F(CsvErrorsTest, EmptyFile) {
  TimeSeries series;
  Status status = LoadCsv(WriteFile(""), &series);
  EXPECT_EQ(status.code(), StatusCode::kEmptyFile);
}

TEST_F(CsvErrorsTest, HeaderOnlyFile) {
  TimeSeries series;
  Status status = LoadCsv(WriteFile("a,b,c\n"), &series);
  EXPECT_EQ(status.code(), StatusCode::kNoData);
}

TEST_F(CsvErrorsTest, RaggedRowReportsRow) {
  TimeSeries series;
  Status status = LoadCsv(WriteFile("a,b,c\n1,2,3\n4,5\n"), &series);
  EXPECT_EQ(status.code(), StatusCode::kRaggedRow);
  EXPECT_EQ(status.row(), 3);  // header is row 1
}

TEST_F(CsvErrorsTest, ExtraCellsAreAlsoRagged) {
  TimeSeries series;
  Status status = LoadCsv(WriteFile("a,b\n1,2\n3,4,5\n"), &series);
  EXPECT_EQ(status.code(), StatusCode::kRaggedRow);
  EXPECT_EQ(status.row(), 3);
}

TEST_F(CsvErrorsTest, NonNumericCellReportsRowAndColumn) {
  TimeSeries series;
  Status status = LoadCsv(WriteFile("a,b,c\n1,2,3\n4,oops,6\n"), &series);
  EXPECT_EQ(status.code(), StatusCode::kParseError);
  EXPECT_EQ(status.row(), 3);
  EXPECT_EQ(status.col(), 2);
}

TEST_F(CsvErrorsTest, PartiallyNumericCellIsParseError) {
  TimeSeries series;
  Status status = LoadCsv(WriteFile("a\n1.5x\n"), &series);
  EXPECT_EQ(status.code(), StatusCode::kParseError);
  EXPECT_EQ(status.row(), 2);
  EXPECT_EQ(status.col(), 1);
}

TEST_F(CsvErrorsTest, NanRejectedByDefault) {
  TimeSeries series;
  Status status = LoadCsv(WriteFile("a,b\n1,2\n3,nan\n"), &series);
  EXPECT_EQ(status.code(), StatusCode::kNonFiniteCell);
  EXPECT_EQ(status.row(), 3);
  EXPECT_EQ(status.col(), 2);
}

TEST_F(CsvErrorsTest, InfRejectedByDefault) {
  TimeSeries series;
  Status status = LoadCsv(WriteFile("a\n1\n-inf\n"), &series);
  EXPECT_EQ(status.code(), StatusCode::kNonFiniteCell);
  EXPECT_EQ(status.row(), 3);
  EXPECT_EQ(status.col(), 1);
}

TEST_F(CsvErrorsTest, DropRowPolicySkipsTheRow) {
  TimeSeries series;
  CsvReadOptions options;
  options.non_finite = NonFinitePolicy::kDropRow;
  Status status =
      LoadCsv(WriteFile("a,b\n1,2\n3,inf\n5,6\n"), &series, nullptr, options);
  ASSERT_TRUE(status);
  ASSERT_EQ(series.length(), 2);
  EXPECT_EQ(series.at(0, 0), 1.0f);
  EXPECT_EQ(series.at(1, 0), 5.0f);
  EXPECT_EQ(series.at(1, 1), 6.0f);
}

TEST_F(CsvErrorsTest, DropRowOnEveryRowIsNoData) {
  TimeSeries series;
  CsvReadOptions options;
  options.non_finite = NonFinitePolicy::kDropRow;
  Status status =
      LoadCsv(WriteFile("a\nnan\ninf\n"), &series, nullptr, options);
  EXPECT_EQ(status.code(), StatusCode::kNoData);
}

TEST_F(CsvErrorsTest, ForwardFillUsesPreviousRowSameColumn) {
  TimeSeries series;
  CsvReadOptions options;
  options.non_finite = NonFinitePolicy::kForwardFill;
  Status status = LoadCsv(WriteFile("a,b\n1,2\nnan,4\n5,inf\n"), &series,
                          nullptr, options);
  ASSERT_TRUE(status);
  ASSERT_EQ(series.length(), 3);
  EXPECT_EQ(series.at(1, 0), 1.0f);  // filled from row above
  EXPECT_EQ(series.at(1, 1), 4.0f);
  EXPECT_EQ(series.at(2, 0), 5.0f);
  EXPECT_EQ(series.at(2, 1), 4.0f);  // filled from row above
}

TEST_F(CsvErrorsTest, ForwardFillWithNoHistoryUsesZero) {
  TimeSeries series;
  CsvReadOptions options;
  options.non_finite = NonFinitePolicy::kForwardFill;
  Status status =
      LoadCsv(WriteFile("a\nnan\n2\n"), &series, nullptr, options);
  ASSERT_TRUE(status);
  ASSERT_EQ(series.length(), 2);
  EXPECT_EQ(series.at(0, 0), 0.0f);
  EXPECT_EQ(series.at(1, 0), 2.0f);
}

TEST_F(CsvErrorsTest, CrlfLineEndingsParse) {
  TimeSeries series;
  std::vector<std::string> header;
  Status status =
      LoadCsv(WriteFile("a,b\r\n1,2\r\n3,4\r\n"), &series, &header);
  ASSERT_TRUE(status);
  ASSERT_EQ(header.size(), 2u);
  EXPECT_EQ(header[1], "b");
  EXPECT_EQ(series.length(), 2);
}

TEST_F(CsvErrorsTest, TrailingEmptyCellIsRaggedNotDropped) {
  TimeSeries series;
  Status status = LoadCsv(WriteFile("a,b\n1,2\n3,\n"), &series);
  // "3," has an empty second cell -> parse error at row 3, col 2 (the cell
  // exists but holds no number).
  EXPECT_EQ(status.code(), StatusCode::kParseError);
  EXPECT_EQ(status.row(), 3);
  EXPECT_EQ(status.col(), 2);
}

}  // namespace
}  // namespace timedrl::data
