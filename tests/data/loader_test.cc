// data::DataLoader: prefetch-vs-synchronous bitwise equivalence, state
// capture/restore, source adapters, and shutdown behavior.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "data/loader.h"
#include "data/synthetic.h"
#include "data/time_series.h"
#include "data/windows.h"
#include "util/rng.h"

namespace timedrl::data {
namespace {

// A full epoch's worth of assembled batches, flattened for comparison.
struct EpochRecord {
  std::vector<std::vector<int64_t>> indices;
  std::vector<std::vector<float>> x;
  std::vector<std::vector<float>> y;
  std::vector<std::vector<float>> view1;
  std::vector<std::vector<float>> view2;

  bool operator==(const EpochRecord& other) const {
    return indices == other.indices && x == other.x && y == other.y &&
           view1 == other.view1 && view2 == other.view2;
  }
};

EpochRecord DrainEpoch(DataLoader& loader) {
  EpochRecord record;
  Batch batch;
  while (loader.Next(&batch)) {
    record.indices.push_back(batch.indices);
    record.x.push_back(batch.x.data());
    if (batch.y.defined()) record.y.push_back(batch.y.data());
    if (batch.has_views) {
      record.view1.push_back(batch.view1.data());
      record.view2.push_back(batch.view2.data());
    }
  }
  return record;
}

DataLoaderOptions AugmentedOptions(int64_t depth) {
  DataLoaderOptions options;
  options.batch_size = 8;
  options.shuffle = true;
  options.prefetch_depth = depth;
  options.augmentation = augment::Kind::kJitter;
  return options;
}

ForecastingWindows MakeWindows() {
  Rng rng(11);
  TimeSeries series = MakeEttLike(300, 24, 1, rng);
  return ForecastingWindows(series, /*input=*/16, /*horizon=*/4, /*stride=*/2);
}

// The determinism contract: every prefetch depth — including the
// synchronous depth-0 fallback — produces bitwise-identical batches,
// shuffle order AND augmentation draws, because the augment sub-stream is
// forked at claim time in batch order, never on the producer's schedule.
TEST(DataLoaderTest, PrefetchDepthsAreBitwiseIdentical) {
  ForecastingWindows windows = MakeWindows();
  ForecastingBatchSource source(&windows);

  Rng baseline_rng(77);
  DataLoader baseline(source, AugmentedOptions(0), baseline_rng);
  EpochRecord epoch1 = DrainEpoch(baseline);
  baseline.Reset();
  EpochRecord epoch2 = DrainEpoch(baseline);
  ASSERT_FALSE(epoch1.x.empty());
  ASSERT_FALSE(epoch1.view1.empty());
  EXPECT_FALSE(epoch1 == epoch2);  // shuffle advanced between epochs

  for (int64_t depth : {1, 2, 4}) {
    Rng rng(77);
    DataLoader loader(source, AugmentedOptions(depth), rng);
    EXPECT_TRUE(DrainEpoch(loader) == epoch1) << "depth " << depth;
    loader.Reset();
    EXPECT_TRUE(DrainEpoch(loader) == epoch2) << "depth " << depth;
  }
}

// CaptureState at a quiescent point fully determines future batches: a
// FRESH loader built from a different seed replays the captured run
// bitwise once the state is restored. Mirrors the pretrainer's usage —
// each epoch is Reset() then drain, and a restored state is followed by
// Reset() (the only operation that advances the shuffle stream).
TEST(DataLoaderTest, CaptureRestoreReplaysBitwise) {
  ForecastingWindows windows = MakeWindows();
  ForecastingBatchSource source(&windows);

  Rng rng(123);
  DataLoader loader(source, AugmentedOptions(2), rng);
  const DataLoader::State start = loader.CaptureState();
  loader.Reset();
  EpochRecord epoch1 = DrainEpoch(loader);
  const DataLoader::State after_epoch1 = loader.CaptureState();
  loader.Reset();
  EpochRecord epoch2 = DrainEpoch(loader);

  Rng other_rng(999);  // deliberately different seed
  DataLoader replay(source, AugmentedOptions(2), other_rng);
  ASSERT_TRUE(replay.RestoreState(start));
  replay.Reset();
  EXPECT_TRUE(DrainEpoch(replay) == epoch1);
  replay.Reset();
  EXPECT_TRUE(DrainEpoch(replay) == epoch2);

  ASSERT_TRUE(replay.RestoreState(after_epoch1));
  replay.Reset();
  EXPECT_TRUE(DrainEpoch(replay) == epoch2);
}

// Restoring mid-epoch cancels in-flight prefetched batches and rewinds:
// the next epoch replays from the restored streams, not from the queue.
TEST(DataLoaderTest, RestoreMidEpochDiscardsPrefetchedBatches) {
  ForecastingWindows windows = MakeWindows();
  ForecastingBatchSource source(&windows);

  Rng rng(5);
  DataLoader loader(source, AugmentedOptions(4), rng);
  const DataLoader::State start = loader.CaptureState();
  loader.Reset();
  EpochRecord full = DrainEpoch(loader);

  ASSERT_TRUE(loader.RestoreState(start));
  loader.Reset();
  Batch batch;
  ASSERT_TRUE(loader.Next(&batch));  // queue is now being refilled
  ASSERT_TRUE(loader.RestoreState(start));
  loader.Reset();
  EXPECT_TRUE(DrainEpoch(loader) == full);
}

TEST(DataLoaderTest, RestoreStateRejectsMalformedStreams) {
  ForecastingWindows windows = MakeWindows();
  ForecastingBatchSource source(&windows);
  Rng rng(5);
  DataLoader loader(source, AugmentedOptions(0), rng);

  const DataLoader::State good = loader.CaptureState();
  DataLoader::State bad = good;
  bad.shuffle_rng = "not an rng state";
  EXPECT_FALSE(loader.RestoreState(bad));
  bad = good;
  bad.augment_rng = "";
  EXPECT_FALSE(loader.RestoreState(bad));
  // The failed restores must not have corrupted the loader.
  ASSERT_TRUE(loader.RestoreState(good));
}

TEST(DataLoaderTest, ForecastingSourceFillsInputsAndTargets) {
  ForecastingWindows windows = MakeWindows();
  ForecastingBatchSource source(&windows);
  DataLoaderOptions options;
  options.batch_size = 4;
  options.prefetch_depth = 0;
  Rng rng(1);
  DataLoader loader(source, options, rng);

  Batch batch;
  ASSERT_TRUE(loader.Next(&batch));
  EXPECT_EQ(batch.x.shape(), (Shape{4, 16, windows.channels()}));
  EXPECT_EQ(batch.y.shape(), (Shape{4, 4, windows.channels()}));
  EXPECT_FALSE(batch.has_views);
  auto [x, y] = windows.GetBatch(batch.indices);
  EXPECT_EQ(batch.x.data(), x.data());
  EXPECT_EQ(batch.y.data(), y.data());
}

TEST(DataLoaderTest, ClassificationSourceFillsLabels) {
  ClassificationDataset dataset;
  dataset.window_length = 3;
  dataset.channels = 1;
  dataset.num_classes = 2;
  for (int64_t i = 0; i < 10; ++i) {
    dataset.windows.push_back({float(i), float(i) + 1, float(i) + 2});
    dataset.labels.push_back(i % 2);
  }
  ClassificationBatchSource source(&dataset);

  DataLoaderOptions options;
  options.batch_size = 4;
  options.prefetch_depth = 2;
  Rng rng(2);
  DataLoader loader(source, options, rng);

  Batch batch;
  int64_t total = 0;
  while (loader.Next(&batch)) {
    ASSERT_EQ(batch.labels.size(), batch.indices.size());
    for (int64_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(batch.labels[i], dataset.labels[batch.indices[i]]);
      EXPECT_FLOAT_EQ(batch.x.at({i, 0, 0}),
                      dataset.windows[batch.indices[i]][0]);
    }
    total += batch.size();
  }
  EXPECT_EQ(total, dataset.size());
}

// Destroying a loader mid-epoch with a deep queue must join the producer
// cleanly (no hang, no use-after-free of queued batches).
TEST(DataLoaderTest, EarlyDestructionMidEpochIsClean) {
  ForecastingWindows windows = MakeWindows();
  ForecastingBatchSource source(&windows);
  for (int repeat = 0; repeat < 10; ++repeat) {
    Rng rng(repeat);
    DataLoader loader(source, AugmentedOptions(4), rng);
    Batch batch;
    ASSERT_TRUE(loader.Next(&batch));
    // Loader destroyed here with up to 4 batches queued or in flight.
  }
}

TEST(DataLoaderTest, EmptyAfterDropLastYieldsNoBatches) {
  ForecastingWindows windows = MakeWindows();
  ForecastingBatchSource source(&windows);
  DataLoaderOptions options;
  options.batch_size = windows.size() + 1;
  options.drop_last = true;
  options.prefetch_depth = 2;
  Rng rng(3);
  DataLoader loader(source, options, rng);
  Batch batch;
  EXPECT_FALSE(loader.Next(&batch));
  EXPECT_EQ(loader.NumBatches(), 0);
}

}  // namespace
}  // namespace timedrl::data
