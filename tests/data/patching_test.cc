// Instance normalization, patching, channel independence (paper Eq. 1-2).

#include <gtest/gtest.h>

#include "data/patching.h"
#include "tensor/ops.h"
#include "testing/gradcheck.h"
#include "util/rng.h"

namespace timedrl::data {
namespace {

TEST(InstanceNormTest, PerSampleChannelStatistics) {
  Rng rng(1);
  Tensor x = Tensor::Randn({3, 20, 2}, rng, 4.0f, 2.0f);
  InstanceNormResult result = InstanceNormalize(x);
  EXPECT_EQ(result.normalized.shape(), x.shape());
  EXPECT_EQ(result.mean.shape(), (Shape{3, 1, 2}));
  EXPECT_EQ(result.std_dev.shape(), (Shape{3, 1, 2}));
  for (int64_t b = 0; b < 3; ++b) {
    for (int64_t c = 0; c < 2; ++c) {
      double mean = 0;
      for (int64_t t = 0; t < 20; ++t) mean += result.normalized.at({b, t, c});
      EXPECT_NEAR(mean / 20.0, 0.0, 1e-4);
    }
  }
}

TEST(InstanceNormTest, DenormalizationRecoversInput) {
  Rng rng(2);
  Tensor x = Tensor::Randn({2, 10, 3}, rng, -1.0f, 3.0f);
  InstanceNormResult result = InstanceNormalize(x);
  Tensor restored = result.normalized * result.std_dev + result.mean;
  for (int64_t i = 0; i < x.numel(); ++i) {
    EXPECT_NEAR(restored.data()[i], x.data()[i], 1e-3f);
  }
}

TEST(PatchifyTest, ShapeMatchesPaperFormula) {
  // T=48, P=8, S=8 -> T_p = 6, token dim C*P.
  Tensor x = Tensor::Zeros({4, 48, 3});
  Tensor patched = Patchify(x, 8, 8);
  EXPECT_EQ(patched.shape(), (Shape{4, 6, 24}));
  EXPECT_EQ(NumPatches(48, 8, 8), 6);
}

TEST(PatchifyTest, OverlappingStride) {
  Tensor x = Tensor::Zeros({1, 16, 1});
  EXPECT_EQ(Patchify(x, 8, 4).shape(), (Shape{1, 3, 8}));
  EXPECT_EQ(NumPatches(16, 8, 4), 3);
}

TEST(PatchifyTest, ValuesLayout) {
  // Channel-major inside each patch token: [c0 patch values..., c1 ...].
  Tensor x = Tensor::FromVector(
      {1, 4, 2}, {0, 10, 1, 11, 2, 12, 3, 13});  // x[t,c] = 10c + t
  Tensor patched = Patchify(x, 2, 2);
  EXPECT_EQ(patched.shape(), (Shape{1, 2, 4}));
  // Patch 0: channel 0 -> {0, 1}, channel 1 -> {10, 11}.
  EXPECT_EQ(patched.data(),
            (std::vector<float>{0, 1, 10, 11, 2, 3, 12, 13}));
}

TEST(PatchifyTest, GradientsRouteBack) {
  Rng rng(3);
  auto result = testing::GradCheck(
      [](const std::vector<Tensor>& inputs) {
        return Patchify(inputs[0], 2, 2);
      },
      {Tensor::Rand({2, 6, 2}, rng, -1.0f, 1.0f, /*requires_grad=*/true)});
  EXPECT_TRUE(result.ok) << result.message;
}

TEST(InstanceNormTest, GradCheck) {
  Rng rng(4);
  auto result = testing::GradCheck(
      [](const std::vector<Tensor>& inputs) {
        return InstanceNormalize(inputs[0]).normalized;
      },
      {Tensor::Rand({2, 6, 2}, rng, -1.0f, 1.0f, /*requires_grad=*/true)});
  EXPECT_TRUE(result.ok) << result.message;
}

TEST(ChannelIndependenceTest, RoundTrip) {
  Rng rng(5);
  Tensor x = Tensor::Randn({3, 7, 4}, rng);
  Tensor independent = ToChannelIndependent(x);
  EXPECT_EQ(independent.shape(), (Shape{12, 7, 1}));
  Tensor restored = FromChannelIndependent(independent, 3, 4);
  EXPECT_EQ(restored.shape(), x.shape());
  EXPECT_EQ(restored.data(), x.data());
}

TEST(ChannelIndependenceTest, ChannelsBecomeRows) {
  Tensor x = Tensor::FromVector({1, 2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor independent = ToChannelIndependent(x);
  // Row 0 = channel 0 over time: {1, 4}; row 2 = channel 2: {3, 6}.
  EXPECT_FLOAT_EQ(independent.at({0, 0, 0}), 1.0f);
  EXPECT_FLOAT_EQ(independent.at({0, 1, 0}), 4.0f);
  EXPECT_FLOAT_EQ(independent.at({2, 0, 0}), 3.0f);
  EXPECT_FLOAT_EQ(independent.at({2, 1, 0}), 6.0f);
}

}  // namespace
}  // namespace timedrl::data
