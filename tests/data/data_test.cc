// Containers, splits, scalers, windows, loaders, CSV.

#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "data/csv.h"
#include "data/loader.h"
#include "data/scaler.h"
#include "data/time_series.h"
#include "data/windows.h"

namespace timedrl::data {
namespace {

TimeSeries Ramp(int64_t length, int64_t channels) {
  TimeSeries series(length, channels);
  for (int64_t t = 0; t < length; ++t) {
    for (int64_t c = 0; c < channels; ++c) {
      series.at(t, c) = static_cast<float>(t * channels + c);
    }
  }
  return series;
}

TEST(TimeSeriesTest, BasicAccessors) {
  TimeSeries series = Ramp(5, 2);
  EXPECT_EQ(series.length(), 5);
  EXPECT_EQ(series.channels, 2);
  EXPECT_FLOAT_EQ(series.at(3, 1), 7.0f);
  Tensor t = series.ToTensor();
  EXPECT_EQ(t.shape(), (Shape{5, 2}));
}

TEST(TimeSeriesTest, RangeAndChannel) {
  TimeSeries series = Ramp(6, 2);
  TimeSeries middle = series.Range(2, 3);
  EXPECT_EQ(middle.length(), 3);
  EXPECT_FLOAT_EQ(middle.at(0, 0), 4.0f);
  TimeSeries col = series.Channel(1);
  EXPECT_EQ(col.channels, 1);
  EXPECT_FLOAT_EQ(col.at(5, 0), 11.0f);
}

TEST(SplitTest, ChronologicalFractionsAndOrder) {
  TimeSeries series = Ramp(100, 1);
  ForecastingSplits splits = ChronologicalSplit(series, 0.6, 0.2);
  EXPECT_EQ(splits.train.length(), 60);
  EXPECT_EQ(splits.val.length(), 20);
  EXPECT_EQ(splits.test.length(), 20);
  // No leakage: test strictly follows val strictly follows train.
  EXPECT_FLOAT_EQ(splits.train.at(59, 0), 59.0f);
  EXPECT_FLOAT_EQ(splits.val.at(0, 0), 60.0f);
  EXPECT_FLOAT_EQ(splits.test.at(0, 0), 80.0f);
}

TEST(SplitTest, StratifiedPreservesClassBalance) {
  ClassificationDataset dataset;
  dataset.window_length = 2;
  dataset.channels = 1;
  dataset.num_classes = 2;
  for (int64_t i = 0; i < 100; ++i) {
    dataset.windows.push_back({0.0f, 1.0f});
    dataset.labels.push_back(i < 80 ? 0 : 1);  // 80/20 imbalance
  }
  Rng rng(1);
  ClassificationSplits splits = StratifiedSplit(dataset, 0.75, rng);
  int64_t train_class1 = 0;
  for (int64_t label : splits.train.labels) train_class1 += label;
  int64_t test_class1 = 0;
  for (int64_t label : splits.test.labels) test_class1 += label;
  EXPECT_EQ(splits.train.size(), 75);
  EXPECT_EQ(splits.test.size(), 25);
  EXPECT_EQ(train_class1, 15);  // 75% of 20
  EXPECT_EQ(test_class1, 5);
}

TEST(ScalerTest, TransformThenInverseRoundTrips) {
  Rng rng(2);
  TimeSeries series(50, 3);
  for (float& v : series.values) v = rng.Normal(10.0f, 5.0f);
  StandardScaler scaler;
  scaler.Fit(series);
  TimeSeries transformed = scaler.Transform(series);
  TimeSeries restored = scaler.InverseTransform(transformed);
  for (size_t i = 0; i < series.values.size(); ++i) {
    EXPECT_NEAR(restored.values[i], series.values[i], 1e-3f);
  }
}

TEST(ScalerTest, TransformedTrainHasZeroMeanUnitVar) {
  Rng rng(3);
  TimeSeries series(500, 2);
  for (float& v : series.values) v = rng.Normal(-4.0f, 2.0f);
  StandardScaler scaler;
  scaler.Fit(series);
  TimeSeries z = scaler.Transform(series);
  for (int64_t c = 0; c < 2; ++c) {
    double mean = 0;
    double var = 0;
    for (int64_t t = 0; t < 500; ++t) mean += z.at(t, c);
    mean /= 500;
    for (int64_t t = 0; t < 500; ++t) {
      var += (z.at(t, c) - mean) * (z.at(t, c) - mean);
    }
    var /= 500;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

TEST(ScalerTest, ConstantChannelPassesThrough) {
  TimeSeries series(10, 1);
  for (float& v : series.values) v = 7.0f;
  StandardScaler scaler;
  scaler.Fit(series);
  TimeSeries z = scaler.Transform(series);
  for (float v : z.values) EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(WindowsTest, CountsAndContents) {
  TimeSeries series = Ramp(20, 1);
  ForecastingWindows windows(series, /*input=*/5, /*horizon=*/3, /*stride=*/2);
  // usable = 20 - 5 - 3 = 12 -> 12/2 + 1 = 7 samples
  EXPECT_EQ(windows.size(), 7);
  auto [x, y] = windows.GetBatch({0, 1});
  EXPECT_EQ(x.shape(), (Shape{2, 5, 1}));
  EXPECT_EQ(y.shape(), (Shape{2, 3, 1}));
  // Sample 1 starts at t=2.
  EXPECT_FLOAT_EQ(x.at({1, 0, 0}), 2.0f);
  // Its target starts right after the input window.
  EXPECT_FLOAT_EQ(y.at({1, 0, 0}), 7.0f);
}

TEST(WindowsTest, ZeroHorizonForPretraining) {
  TimeSeries series = Ramp(10, 2);
  ForecastingWindows windows(series, 4, /*horizon=*/0, /*stride=*/1);
  EXPECT_EQ(windows.size(), 7);
  Tensor x = windows.GetInputs({6});
  EXPECT_EQ(x.shape(), (Shape{1, 4, 2}));
  EXPECT_FLOAT_EQ(x.at({0, 0, 0}), 12.0f);
  EXPECT_DEATH(windows.GetBatch({0}), "without a horizon");
}

TEST(WindowsTest, TooShortSeriesYieldsNoSamples) {
  TimeSeries series = Ramp(5, 1);
  ForecastingWindows windows(series, 10, 2, 1);
  EXPECT_EQ(windows.size(), 0);
}

// The loader populates batch->indices itself; a source with nothing to
// gather is enough to test the batching semantics.
class IndexOnlySource : public BatchSource {
 public:
  explicit IndexOnlySource(int64_t n) : n_(n) {}
  int64_t size() const override { return n_; }
  void Fill(const std::vector<int64_t>&, Batch*) const override {}

 private:
  int64_t n_;
};

DataLoaderOptions SyncOptions(int64_t batch_size, bool shuffle,
                              bool drop_last = false) {
  DataLoaderOptions options;
  options.batch_size = batch_size;
  options.shuffle = shuffle;
  options.drop_last = drop_last;
  options.prefetch_depth = 0;
  return options;
}

TEST(DataLoaderTest, CoversEveryIndexOnce) {
  Rng rng(4);
  IndexOnlySource source(10);
  DataLoader loader(source, SyncOptions(3, /*shuffle=*/true), rng);
  Batch batch;
  std::set<int64_t> seen;
  int64_t batches = 0;
  while (loader.Next(&batch)) {
    for (int64_t index : batch.indices) {
      EXPECT_TRUE(seen.insert(index).second) << "duplicate " << index;
    }
    ++batches;
  }
  EXPECT_EQ(seen.size(), 10u);
  EXPECT_EQ(batches, 4);  // 3+3+3+1
  EXPECT_EQ(loader.NumBatches(), 4);
}

TEST(DataLoaderTest, DropLastSkipsShortTail) {
  Rng rng(4);
  IndexOnlySource source(10);
  DataLoader loader(source, SyncOptions(3, /*shuffle=*/false, /*drop_last=*/true),
                    rng);
  Batch batch;
  int64_t batches = 0;
  while (loader.Next(&batch)) {
    EXPECT_EQ(batch.size(), 3);
    ++batches;
  }
  EXPECT_EQ(batches, 3);
  EXPECT_EQ(loader.NumBatches(), 3);
}

TEST(DataLoaderTest, ShuffleChangesOrderAcrossEpochs) {
  Rng rng(5);
  IndexOnlySource source(64);
  DataLoader loader(source, SyncOptions(64, /*shuffle=*/true), rng);
  Batch batch;
  ASSERT_TRUE(loader.Next(&batch));
  std::vector<int64_t> first = batch.indices;
  loader.Reset();
  ASSERT_TRUE(loader.Next(&batch));
  EXPECT_NE(first, batch.indices);
}

TEST(DataLoaderTest, NoShuffleIsSequential) {
  Rng rng(5);
  IndexOnlySource source(5);
  DataLoader loader(source, SyncOptions(2, /*shuffle=*/false), rng);
  Batch batch;
  ASSERT_TRUE(loader.Next(&batch));
  EXPECT_EQ(batch.indices, (std::vector<int64_t>{0, 1}));
}

TEST(ClassificationDatasetTest, GetBatchShapesAndLabels) {
  ClassificationDataset dataset;
  dataset.window_length = 3;
  dataset.channels = 2;
  dataset.num_classes = 2;
  dataset.windows = {{0, 1, 2, 3, 4, 5}, {6, 7, 8, 9, 10, 11}};
  dataset.labels = {0, 1};
  auto [x, labels] = dataset.GetBatch({1, 0});
  EXPECT_EQ(x.shape(), (Shape{2, 3, 2}));
  EXPECT_EQ(labels, (std::vector<int64_t>{1, 0}));
  EXPECT_FLOAT_EQ(x.at({0, 0, 0}), 6.0f);
}

TEST(CsvTest, SaveLoadRoundTrip) {
  TimeSeries series = Ramp(7, 3);
  const char* path = "/tmp/timedrl_csv_test.csv";
  ASSERT_TRUE(SaveCsv(series, path, {"a", "b", "c"}));
  TimeSeries loaded;
  std::vector<std::string> header;
  ASSERT_TRUE(LoadCsv(path, &loaded, &header));
  EXPECT_EQ(header, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(loaded.length(), 7);
  EXPECT_EQ(loaded.channels, 3);
  for (size_t i = 0; i < series.values.size(); ++i) {
    EXPECT_FLOAT_EQ(loaded.values[i], series.values[i]);
  }
  std::remove(path);
}

TEST(CsvTest, MissingFileFails) {
  TimeSeries series;
  EXPECT_FALSE(LoadCsv("/tmp/does_not_exist_timedrl.csv", &series));
}

}  // namespace
}  // namespace timedrl::data
