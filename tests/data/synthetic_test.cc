// Synthetic dataset generators: shapes, determinism, class structure.

#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.h"

namespace timedrl::data {
namespace {

TEST(SyntheticForecastTest, EttLikeShapeAndVariantDiffer) {
  Rng rng_a(1);
  TimeSeries a = MakeEttLike(300, 24, 1, rng_a);
  EXPECT_EQ(a.length(), 300);
  EXPECT_EQ(a.channels, 7);
  Rng rng_b(1);
  TimeSeries b = MakeEttLike(300, 24, 2, rng_b);
  EXPECT_NE(a.values, b.values);
}

TEST(SyntheticForecastTest, GeneratorsAreDeterministic) {
  Rng rng_a(9);
  Rng rng_b(9);
  EXPECT_EQ(MakeEttLike(200, 24, 1, rng_a).values,
            MakeEttLike(200, 24, 1, rng_b).values);
  EXPECT_EQ(MakeExchangeLike(200, rng_a).values,
            MakeExchangeLike(200, rng_b).values);
  EXPECT_EQ(MakeWeatherLike(200, rng_a).values,
            MakeWeatherLike(200, rng_b).values);
}

TEST(SyntheticForecastTest, ExchangeIsNearRandomWalk) {
  Rng rng(2);
  TimeSeries series = MakeExchangeLike(2000, rng);
  EXPECT_EQ(series.channels, 8);
  // Increment autocorrelation should be near zero for a random walk.
  for (int64_t c = 0; c < 2; ++c) {
    std::vector<double> increments;
    for (int64_t t = 1; t < series.length(); ++t) {
      increments.push_back(series.at(t, c) - series.at(t - 1, c));
    }
    double mean = 0;
    for (double d : increments) mean += d;
    mean /= increments.size();
    double num = 0;
    double den = 0;
    for (size_t i = 1; i < increments.size(); ++i) {
      num += (increments[i] - mean) * (increments[i - 1] - mean);
      den += (increments[i] - mean) * (increments[i] - mean);
    }
    EXPECT_LT(std::abs(num / den), 0.1);
  }
}

TEST(SyntheticForecastTest, EttHasDailySeasonality) {
  Rng rng(3);
  const int64_t period = 24;
  TimeSeries series = MakeEttLike(2400, period, 1, rng);
  // Autocorrelation of channel 0 at lag = period should be clearly positive.
  double mean = 0;
  for (int64_t t = 0; t < series.length(); ++t) mean += series.at(t, 0);
  mean /= series.length();
  double num = 0;
  double den = 0;
  for (int64_t t = period; t < series.length(); ++t) {
    num += (series.at(t, 0) - mean) * (series.at(t - period, 0) - mean);
  }
  for (int64_t t = 0; t < series.length(); ++t) {
    den += (series.at(t, 0) - mean) * (series.at(t, 0) - mean);
  }
  EXPECT_GT(num / den, 0.3);
}

TEST(SyntheticClassifyTest, ShapesAndLabelBalance) {
  Rng rng(4);
  struct Case {
    ClassificationDataset dataset;
    int64_t channels;
    int64_t classes;
  };
  std::vector<Case> cases;
  cases.push_back({MakeHarLike(120, 32, rng), 9, 6});
  cases.push_back({MakeWisdmLike(120, 32, rng), 3, 6});
  cases.push_back({MakeEpilepsyLike(120, 64, rng), 1, 2});
  cases.push_back({MakePenDigitsLike(120, rng), 2, 10});
  cases.push_back({MakeFingerMovementsLike(120, 32, rng), 28, 2});
  for (const Case& c : cases) {
    EXPECT_EQ(c.dataset.size(), 120);
    EXPECT_EQ(c.dataset.channels, c.channels);
    EXPECT_EQ(c.dataset.num_classes, c.classes);
    // Balanced: every class appears 120 / classes times.
    std::vector<int64_t> counts(c.classes, 0);
    for (int64_t label : c.dataset.labels) ++counts[label];
    for (int64_t count : counts) EXPECT_EQ(count, 120 / c.classes);
  }
}

TEST(SyntheticClassifyTest, PenDigitsClassesAreGeometricallySeparated) {
  Rng rng(5);
  ClassificationDataset dataset = MakePenDigitsLike(400, rng);
  // Mean trajectory of digit 0 differs from digit 1 substantially.
  std::vector<double> mean0(16, 0.0);
  std::vector<double> mean1(16, 0.0);
  int64_t n0 = 0;
  int64_t n1 = 0;
  for (int64_t i = 0; i < dataset.size(); ++i) {
    if (dataset.labels[i] == 0) {
      for (int64_t j = 0; j < 16; ++j) mean0[j] += dataset.windows[i][j];
      ++n0;
    } else if (dataset.labels[i] == 1) {
      for (int64_t j = 0; j < 16; ++j) mean1[j] += dataset.windows[i][j];
      ++n1;
    }
  }
  double distance = 0;
  for (int64_t j = 0; j < 16; ++j) {
    const double d = mean0[j] / n0 - mean1[j] / n1;
    distance += d * d;
  }
  EXPECT_GT(std::sqrt(distance), 0.3);
}

TEST(SyntheticClassifyTest, EpilepsyClassesShareBurstCount) {
  // Per the anti-shortcut design: both classes have the same expected number
  // of bursts; only the arrangement differs.
  Rng rng(6);
  ClassificationDataset dataset = MakeEpilepsyLike(300, 96, rng);
  auto count_bursts = [](const std::vector<float>& window) {
    int64_t bursts = 0;
    for (float v : window) {
      if (v > 1.8f) ++bursts;
    }
    return bursts;
  };
  double mean_bursts[2] = {0, 0};
  int64_t counts[2] = {0, 0};
  for (int64_t i = 0; i < dataset.size(); ++i) {
    mean_bursts[dataset.labels[i]] += count_bursts(dataset.windows[i]);
    ++counts[dataset.labels[i]];
  }
  mean_bursts[0] /= counts[0];
  mean_bursts[1] /= counts[1];
  EXPECT_NEAR(mean_bursts[0], mean_bursts[1], 2.0);
  EXPECT_GT(mean_bursts[0], 3.0);  // bursts are actually present
}

TEST(SuiteTest, ForecastingSuiteContents) {
  Rng rng(7);
  auto suite = StandardForecastingSuite(0.1, rng);
  ASSERT_EQ(suite.size(), 6u);
  EXPECT_EQ(suite[0].name, "ETTh1");
  EXPECT_EQ(suite[4].name, "Exchange");
  EXPECT_EQ(suite[4].series.channels, 8);
  EXPECT_EQ(suite[5].series.channels, 21);
  for (const auto& dataset : suite) {
    EXPECT_EQ(dataset.horizons.size(), 5u);
    EXPECT_GT(dataset.series.length(), 0);
    EXPECT_LT(dataset.target_channel, dataset.series.channels);
  }
}

TEST(SuiteTest, ClassificationSuiteContents) {
  Rng rng(8);
  auto suite = StandardClassificationSuite(0.1, rng);
  ASSERT_EQ(suite.size(), 5u);
  EXPECT_EQ(suite[0].name, "FingerMovements");
  EXPECT_EQ(suite[1].name, "PenDigits");
  EXPECT_EQ(suite[1].dataset.window_length, 8);
  EXPECT_EQ(suite[2].name, "HAR");
  EXPECT_EQ(suite[3].name, "Epilepsy");
  EXPECT_EQ(suite[4].name, "WISDM");
}

}  // namespace
}  // namespace timedrl::data
