// The bitwise half of the DESIGN.md §16 contract: within ONE dispatch path
// (scalar or any vector ISA), every dispatched kernel produces bitwise
// identical results for thread counts {1, 2, 4}. Shapes are chosen so the
// parallel tiling actually varies across thread counts AND every tail case
// is live: partial kMr row tiles, multiple kKc blocks, ragged column
// panels, and partial feature groups in the column reductions.

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "tensor/kernels/dispatch.h"
#include "util/thread_pool.h"

namespace timedrl::kernels::simd {
namespace {

std::vector<float> RandomVec(int64_t n, uint32_t seed) {
  std::mt19937 gen(seed);
  std::normal_distribution<float> dist(0.0f, 1.0f);
  std::vector<float> v(n);
  for (auto& x : v) x = dist(gen);
  return v;
}

std::vector<Isa> AllAvailableIsas() {
  std::vector<Isa> isas = {Isa::kScalar};
  for (Isa isa : {Isa::kAvx2, Isa::kAvx512, Isa::kNeon}) {
    if (Available(isa)) isas.push_back(isa);
  }
  return isas;
}

// Runs every dispatched kernel once through `table` and returns all output
// buffers, concatenated in a fixed order.
std::vector<std::vector<float>> RunAllKernels(const KernelTable* table) {
  std::vector<std::vector<float>> outputs;

  // GEMM: m=23 (3 full kMr tiles + a 5-row tail), k=300 (2 kKc blocks),
  // n=61 (ragged against W=8 and W=16).
  constexpr int64_t m = 23, k = 300, n = 61;
  const auto a = RandomVec(m * k, 100);
  const auto b = RandomVec(k * n, 101);
  const auto at = RandomVec(k * m, 102);   // [k x m]: TN's untransposed A
  const auto ant = RandomVec(m * n, 104);  // [m x n]: NT's A
  for (bool accumulate : {false, true}) {
    std::vector<float> c_nn = RandomVec(m * n, 105);
    table->gemm_nn(a.data(), b.data(), c_nn.data(), m, k, n, accumulate);
    outputs.push_back(std::move(c_nn));
    std::vector<float> c_nt = RandomVec(m * k, 106);
    table->gemm_nt(ant.data(), b.data(), c_nt.data(), m, n, k, accumulate);
    outputs.push_back(std::move(c_nt));
    // TN reduces over its first argument's rows — k of them here, so the
    // k > kKc multi-block path is live: C[m x n] = at^T[m x k] * b[k x n].
    std::vector<float> c_tn = RandomVec(m * n, 107);
    table->gemm_tn(at.data(), b.data(), c_tn.data(), k, m, n, accumulate);
    outputs.push_back(std::move(c_tn));
  }

  // Fused kernels: enough rows that ParallelFor actually splits, features
  // ragged against both vector widths (so the partial feature group in the
  // column reductions is live).
  constexpr int64_t rows = 64, features = 61;
  const auto x = RandomVec(rows * features, 108);
  const auto gamma = RandomVec(features, 109);
  const auto beta = RandomVec(features, 110);
  const auto g = RandomVec(rows * features, 111);
  std::vector<float> y(rows * features), mean(rows), rstd(rows);
  table->layer_norm_fwd(x.data(), gamma.data(), beta.data(), 1e-5f, y.data(),
                        mean.data(), rstd.data(), rows, features);
  std::vector<float> dx(rows * features, 0.0f), dgamma(features, 0.0f),
      dbeta(features, 0.0f);
  table->layer_norm_bwd(g.data(), x.data(), gamma.data(), mean.data(),
                        rstd.data(), dx.data(), dgamma.data(), dbeta.data(),
                        rows, features);
  outputs.push_back(y);
  outputs.push_back(mean);
  outputs.push_back(rstd);
  outputs.push_back(std::move(dx));
  outputs.push_back(std::move(dgamma));
  outputs.push_back(std::move(dbeta));

  constexpr int64_t mask_rows = 16;
  std::vector<float> mask(mask_rows * features, 0.0f);
  for (size_t i = 0; i < mask.size(); i += 3) mask[i] = 1.0f;
  std::vector<float> sm(rows * features);
  table->softmax_fwd(x.data(), mask.data(), mask_rows, 0.5f, -1e9f,
                     sm.data(), rows, features);
  std::vector<float> dsm(rows * features, 0.0f);
  table->softmax_bwd(g.data(), sm.data(), 0.5f, dsm.data(), rows, features);
  outputs.push_back(std::move(sm));
  outputs.push_back(std::move(dsm));

  std::vector<float> bg(rows * features);
  table->bias_gelu_fwd(x.data(), beta.data(), bg.data(), rows, features);
  std::vector<float> dbg(rows * features, 0.0f), dbias(features, 0.0f),
      scratch(rows * features);
  table->bias_gelu_bwd(g.data(), x.data(), beta.data(), dbg.data(),
                       dbias.data(), scratch.data(), rows, features);
  outputs.push_back(std::move(bg));
  outputs.push_back(std::move(dbg));
  outputs.push_back(std::move(dbias));

  auto nf = RandomVec(10007, 112);
  nf[3] = std::numeric_limits<float>::quiet_NaN();
  outputs.push_back({static_cast<float>(
      table->count_nonfinite(nf.data(), static_cast<int64_t>(nf.size())))});

  return outputs;
}

TEST(SimdDeterminism, EveryKernelBitwiseStableAcrossThreadCounts) {
  const int original_threads = NumThreads();
  for (Isa isa : AllAvailableIsas()) {
    const KernelTable* table = TableFor(isa);
    ASSERT_NE(table, nullptr);
    SetNumThreads(1);
    const auto reference = RunAllKernels(table);
    for (int threads : {2, 4}) {
      SetNumThreads(threads);
      const auto repeat = RunAllKernels(table);
      ASSERT_EQ(reference.size(), repeat.size());
      for (size_t i = 0; i < reference.size(); ++i) {
        ASSERT_EQ(reference[i].size(), repeat[i].size());
        for (size_t j = 0; j < reference[i].size(); ++j) {
          // Bitwise: EQ on floats, deliberately not NEAR. (NaN never
          // reaches an output buffer in these fixtures.)
          ASSERT_EQ(reference[i][j], repeat[i][j])
              << IsaName(isa) << " buffer " << i << " index " << j << " with "
              << threads << " threads";
        }
      }
    }
  }
  SetNumThreads(original_threads);
}

}  // namespace
}  // namespace timedrl::kernels::simd
