// Fused transformer hot-path ops (tensor/ops_fused.h): finite-difference
// gradchecks against the composed references, forward/backward equivalence
// between the fused kernels and the TIMEDRL_FUSION_DISABLE fallback, and
// bitwise determinism across thread counts.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "nn/transformer.h"
#include "tensor/kernels/dispatch.h"
#include "tensor/ops.h"
#include "tensor/ops_fused.h"
#include "tensor/tensor.h"
#include "testing/gradcheck.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace timedrl {
namespace {

// Pins the kernel dispatch path for the duration of a test. The fused-vs-
// composed BITWISE assertions below only hold on the scalar path: the
// composed fallback is built from elementwise ops that never dispatch, so
// against a vector ISA the comparison is tolerance-only (see
// kernels/dispatch.h and the simd-labeled equivalence suite).
class IsaGuard {
 public:
  explicit IsaGuard(kernels::simd::Isa isa)
      : previous_(kernels::simd::ActiveIsa()) {
    kernels::simd::SetIsa(isa);
  }
  ~IsaGuard() { kernels::simd::SetIsa(previous_); }

 private:
  kernels::simd::Isa previous_;
};

// Restores the fusion flag (and optionally the thread count) on scope exit
// so one test cannot leak configuration into the next.
class FusionGuard {
 public:
  explicit FusionGuard(bool enabled) : previous_(fusion::Enabled()) {
    fusion::SetEnabled(enabled);
  }
  ~FusionGuard() { fusion::SetEnabled(previous_); }

 private:
  bool previous_;
};

Tensor RandomTensor(const Shape& shape, uint64_t seed,
                    bool requires_grad = false) {
  Rng rng(seed);
  return Tensor::Randn(shape, rng, 0.0f, 1.0f, requires_grad);
}

Tensor CausalMask(int64_t t) {
  std::vector<float> mask(t * t, 0.0f);
  for (int64_t i = 0; i < t; ++i) {
    for (int64_t j = i + 1; j < t; ++j) mask[i * t + j] = 1.0f;
  }
  return Tensor::FromVector({t, t}, std::move(mask));
}

void ExpectAllClose(const std::vector<float>& a, const std::vector<float>& b,
                    float rtol, float atol = 1e-6f) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    const float scale = std::max(std::fabs(a[i]), std::fabs(b[i]));
    ASSERT_NEAR(a[i], b[i], atol + rtol * scale) << "at index " << i;
  }
}

void ExpectBitwiseEqual(const std::vector<float>& a,
                        const std::vector<float>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "at index " << i;
  }
}

// ---- Forward equivalence: fused vs composed fallback -------------------------

TEST(FusedLayerNorm, ForwardMatchesComposed) {
  Tensor x = RandomTensor({4, 6, 16}, 1);
  Tensor gamma = RandomTensor({16}, 2);
  Tensor beta = RandomTensor({16}, 3);
  Tensor fused, composed;
  {
    FusionGuard on(true);
    fused = FusedLayerNorm(x, gamma, beta, 1e-5f);
  }
  {
    FusionGuard off(false);
    composed = FusedLayerNorm(x, gamma, beta, 1e-5f);
  }
  // Welford vs two-pass statistics round differently; agreement is to float
  // precision, not bitwise.
  ExpectAllClose(fused.data(), composed.data(), 1e-5f);
}

TEST(FusedSoftmax, ForwardBitwiseMatchesComposed) {
  IsaGuard scalar_path(kernels::simd::Isa::kScalar);
  Tensor x = RandomTensor({2, 3, 4, 4}, 4);
  Tensor mask = CausalMask(4);
  const float scale = 0.5f;
  Tensor fused, composed;
  {
    FusionGuard on(true);
    fused = FusedAttentionSoftmax(x, scale, mask);
  }
  {
    FusionGuard off(false);
    composed = FusedAttentionSoftmax(x, scale, mask);
  }
  // Same per-element operations in the same order: bitwise identical.
  ExpectBitwiseEqual(fused.data(), composed.data());
}

TEST(FusedSoftmax, UnmaskedForwardBitwiseMatchesComposed) {
  IsaGuard scalar_path(kernels::simd::Isa::kScalar);
  Tensor x = RandomTensor({3, 7}, 5);
  Tensor fused, composed;
  {
    FusionGuard on(true);
    fused = FusedAttentionSoftmax(x, 1.25f, Tensor());
  }
  {
    FusionGuard off(false);
    composed = FusedAttentionSoftmax(x, 1.25f, Tensor());
  }
  ExpectBitwiseEqual(fused.data(), composed.data());
  // Rows sum to 1.
  for (int64_t r = 0; r < 3; ++r) {
    float sum = 0.0f;
    for (int64_t d = 0; d < 7; ++d) sum += fused.data()[r * 7 + d];
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(FusedBiasGelu, ForwardBitwiseMatchesComposed) {
  IsaGuard scalar_path(kernels::simd::Isa::kScalar);
  Tensor x = RandomTensor({5, 12}, 6);
  Tensor bias = RandomTensor({12}, 7);
  Tensor fused, composed;
  {
    FusionGuard on(true);
    fused = FusedBiasGelu(x, bias);
  }
  {
    FusionGuard off(false);
    composed = FusedBiasGelu(x, bias);
  }
  ExpectBitwiseEqual(fused.data(), composed.data());
}

// ---- Finite-difference gradchecks (fusion on AND the disabled fallback) ------

TEST(FusedLayerNorm, GradCheckFusedAndComposed) {
  for (bool enabled : {true, false}) {
    FusionGuard guard(enabled);
    auto fn = [](const std::vector<Tensor>& xs) {
      return FusedLayerNorm(xs[0], xs[1], xs[2], 1e-5f);
    };
    auto result = testing::GradCheck(
        fn, {RandomTensor({3, 8}, 10, true), RandomTensor({8}, 11, true),
             RandomTensor({8}, 12, true)});
    EXPECT_TRUE(result.ok) << "fusion=" << enabled << ": " << result.message;
  }
}

TEST(FusedSoftmax, GradCheckFusedAndComposed) {
  Tensor mask = CausalMask(4);
  for (bool enabled : {true, false}) {
    FusionGuard guard(enabled);
    auto unmasked = [](const std::vector<Tensor>& xs) {
      return FusedAttentionSoftmax(xs[0], 0.7f, Tensor());
    };
    auto result =
        testing::GradCheck(unmasked, {RandomTensor({2, 3, 5}, 13, true)});
    EXPECT_TRUE(result.ok) << "fusion=" << enabled << ": " << result.message;

    auto masked = [&mask](const std::vector<Tensor>& xs) {
      return FusedAttentionSoftmax(xs[0], 0.7f, mask);
    };
    result = testing::GradCheck(masked, {RandomTensor({2, 4, 4}, 14, true)});
    EXPECT_TRUE(result.ok) << "fusion=" << enabled << " (masked): "
                           << result.message;
  }
}

TEST(FusedBiasGelu, GradCheckFusedAndComposed) {
  for (bool enabled : {true, false}) {
    FusionGuard guard(enabled);
    auto fn = [](const std::vector<Tensor>& xs) {
      return FusedBiasGelu(xs[0], xs[1]);
    };
    auto result = testing::GradCheck(
        fn, {RandomTensor({4, 6}, 15, true), RandomTensor({6}, 16, true)});
    EXPECT_TRUE(result.ok) << "fusion=" << enabled << ": " << result.message;
  }
}

// ---- Backward equivalence: fused gradients vs the composed fallback's -------

TEST(FusedLayerNorm, GradientsMatchComposed) {
  std::vector<std::vector<float>> grads[2];
  int which = 0;
  for (bool enabled : {true, false}) {
    FusionGuard guard(enabled);
    Tensor x = RandomTensor({4, 6, 16}, 20, true);
    Tensor gamma = RandomTensor({16}, 21, true);
    Tensor beta = RandomTensor({16}, 22, true);
    Sum(FusedLayerNorm(x, gamma, beta, 1e-5f)).Backward();
    grads[which] = {x.grad(), gamma.grad(), beta.grad()};
    ++which;
  }
  for (int i = 0; i < 3; ++i) {
    ExpectAllClose(grads[0][i], grads[1][i], 1e-4f, 1e-5f);
  }
}

TEST(FusedSoftmax, GradientsMatchComposed) {
  std::vector<float> grads[2];
  Tensor mask = CausalMask(6);
  int which = 0;
  for (bool enabled : {true, false}) {
    FusionGuard guard(enabled);
    Tensor x = RandomTensor({2, 4, 6, 6}, 23, true);
    // A non-uniform upstream gradient (Sum would feed all-ones).
    Tensor weight = RandomTensor({2, 4, 6, 6}, 24);
    Sum(FusedAttentionSoftmax(x, 0.4f, mask) * weight).Backward();
    grads[which++] = x.grad();
  }
  ExpectAllClose(grads[0], grads[1], 1e-4f, 1e-6f);
}

TEST(FusedBiasGelu, GradientsMatchComposed) {
  std::vector<std::vector<float>> grads[2];
  int which = 0;
  for (bool enabled : {true, false}) {
    FusionGuard guard(enabled);
    Tensor x = RandomTensor({8, 10}, 25, true);
    Tensor bias = RandomTensor({10}, 26, true);
    Sum(FusedBiasGelu(x, bias)).Backward();
    grads[which++] = {x.grad(), bias.grad()};
  }
  for (int i = 0; i < 2; ++i) {
    ExpectAllClose(grads[0][i], grads[1][i], 1e-4f, 1e-6f);
  }
}

// ---- Bitwise determinism across thread counts --------------------------------

// Runs forward + backward of all three fused ops and returns every output
// and gradient buffer produced.
std::vector<std::vector<float>> RunFusedOnce() {
  std::vector<std::vector<float>> buffers;

  Tensor x = RandomTensor({4, 8, 16}, 30, true);
  Tensor gamma = RandomTensor({16}, 31, true);
  Tensor beta = RandomTensor({16}, 32, true);
  Tensor ln = FusedLayerNorm(x, gamma, beta, 1e-5f);
  Sum(ln).Backward();
  buffers.push_back(ln.data());
  buffers.push_back(x.grad());
  buffers.push_back(gamma.grad());
  buffers.push_back(beta.grad());

  Tensor scores = RandomTensor({2, 4, 8, 8}, 33, true);
  Tensor weight = RandomTensor({2, 4, 8, 8}, 34);
  Tensor sm = FusedAttentionSoftmax(scores, 0.35f, CausalMask(8));
  Sum(sm * weight).Backward();
  buffers.push_back(sm.data());
  buffers.push_back(scores.grad());

  Tensor h = RandomTensor({16, 24}, 35, true);
  Tensor bias = RandomTensor({24}, 36, true);
  Tensor bg = FusedBiasGelu(h, bias);
  Sum(bg).Backward();
  buffers.push_back(bg.data());
  buffers.push_back(h.grad());
  buffers.push_back(bias.grad());

  return buffers;
}

TEST(FusedOps, BitwiseDeterministicAcrossThreadCounts) {
  FusionGuard guard(true);
  const int original_threads = NumThreads();
  SetNumThreads(1);
  const auto reference = RunFusedOnce();
  for (int threads : {2, 3, 5}) {
    SetNumThreads(threads);
    const auto repeat = RunFusedOnce();
    ASSERT_EQ(reference.size(), repeat.size());
    for (size_t i = 0; i < reference.size(); ++i) {
      ExpectBitwiseEqual(reference[i], repeat[i]);
    }
  }
  SetNumThreads(original_threads);
}

// ---- Graph-free inference path ----------------------------------------------

TEST(FusedOps, InferenceModeIsGraphFree) {
  FusionGuard guard(true);
  Tensor x = RandomTensor({3, 4, 8}, 40, true);
  Tensor gamma = RandomTensor({8}, 41, true);
  Tensor beta = RandomTensor({8}, 42, true);
  Tensor recorded = FusedLayerNorm(x, gamma, beta, 1e-5f);
  EXPECT_TRUE(recorded.requires_grad());

  const int64_t nodes_before = GraphNodesCreated();
  Tensor ln, sm, bg;
  {
    InferenceModeGuard inference;
    ln = FusedLayerNorm(x, gamma, beta, 1e-5f);
    sm = FusedAttentionSoftmax(RandomTensor({2, 4, 4}, 43, true), 0.5f,
                               CausalMask(4));
    bg = FusedBiasGelu(RandomTensor({4, 8}, 44, true), RandomTensor({8}, 45));
  }
  EXPECT_EQ(GraphNodesCreated() - nodes_before, 0);
  EXPECT_FALSE(ln.requires_grad());
  EXPECT_FALSE(sm.requires_grad());
  EXPECT_FALSE(bg.requires_grad());
  ExpectBitwiseEqual(recorded.data(), ln.data());
}

// ---- End-to-end: a transformer block fused vs unfused ------------------------

TEST(FusedOps, TransformerBlockMatchesUnfused) {
  std::vector<float> outputs[2];
  std::vector<std::vector<float>> grads[2];
  int which = 0;
  for (bool enabled : {true, false}) {
    FusionGuard guard(enabled);
    Rng rng(99);
    nn::TransformerBlock block(/*d_model=*/8, /*num_heads=*/2, /*ff_dim=*/16,
                               /*dropout=*/0.0f, rng, /*causal=*/true);
    block.Train();
    Tensor out = block.Forward(RandomTensor({2, 4, 8}, 50));
    Sum(out).Backward();
    outputs[which] = out.data();
    for (const Tensor& p : block.Parameters()) {
      grads[which].push_back(p.has_grad()
                                 ? p.grad()
                                 : std::vector<float>(p.numel(), 0.0f));
    }
    ++which;
  }
  ExpectAllClose(outputs[0], outputs[1], 1e-4f, 1e-5f);
  ASSERT_EQ(grads[0].size(), grads[1].size());
  for (size_t i = 0; i < grads[0].size(); ++i) {
    ExpectAllClose(grads[0][i], grads[1][i], 1e-3f, 1e-4f);
  }
}

}  // namespace
}  // namespace timedrl
