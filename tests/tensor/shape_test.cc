#include "tensor/shape.h"

#include <gtest/gtest.h>

namespace timedrl {
namespace {

TEST(ShapeTest, NumElements) {
  EXPECT_EQ(NumElements({}), 1);
  EXPECT_EQ(NumElements({3}), 3);
  EXPECT_EQ(NumElements({2, 3, 4}), 24);
  EXPECT_EQ(NumElements({5, 0, 2}), 0);
}

TEST(ShapeTest, RowMajorStrides) {
  EXPECT_EQ(RowMajorStrides({2, 3, 4}), (std::vector<int64_t>{12, 4, 1}));
  EXPECT_EQ(RowMajorStrides({7}), (std::vector<int64_t>{1}));
  EXPECT_TRUE(RowMajorStrides({}).empty());
}

TEST(ShapeTest, BroadcastCompatible) {
  EXPECT_TRUE(BroadcastCompatible({2, 3}, {2, 3}));
  EXPECT_TRUE(BroadcastCompatible({2, 3}, {3}));
  EXPECT_TRUE(BroadcastCompatible({2, 1, 4}, {3, 1}));
  EXPECT_TRUE(BroadcastCompatible({1}, {5, 6}));
  EXPECT_FALSE(BroadcastCompatible({2, 3}, {2, 4}));
  EXPECT_FALSE(BroadcastCompatible({3, 2}, {2, 3}));
}

TEST(ShapeTest, BroadcastShape) {
  EXPECT_EQ(BroadcastShape({2, 1, 4}, {3, 1}), (Shape{2, 3, 4}));
  EXPECT_EQ(BroadcastShape({1}, {5}), (Shape{5}));
  EXPECT_EQ(BroadcastShape({4, 5}, {4, 5}), (Shape{4, 5}));
}

TEST(ShapeTest, BroadcastStrides) {
  // [3] broadcast into [2, 3]: the vector repeats along dim 0.
  EXPECT_EQ(BroadcastStrides({3}, {2, 3}), (std::vector<int64_t>{0, 1}));
  // [2, 1] broadcast into [2, 3]: column vector repeats along dim 1.
  EXPECT_EQ(BroadcastStrides({2, 1}, {2, 3}), (std::vector<int64_t>{1, 0}));
  // Identity case.
  EXPECT_EQ(BroadcastStrides({2, 3}, {2, 3}), (std::vector<int64_t>{3, 1}));
}

TEST(ShapeTest, NormalizeDim) {
  EXPECT_EQ(NormalizeDim(0, 3), 0);
  EXPECT_EQ(NormalizeDim(-1, 3), 2);
  EXPECT_EQ(NormalizeDim(-3, 3), 0);
}

TEST(ShapeTest, ShapeToString) {
  EXPECT_EQ(ShapeToString({2, 3}), "[2, 3]");
  EXPECT_EQ(ShapeToString({}), "[]");
}

TEST(ShapeDeathTest, NormalizeDimOutOfRange) {
  EXPECT_DEATH(NormalizeDim(3, 3), "CHECK FAILED");
  EXPECT_DEATH(NormalizeDim(-4, 3), "CHECK FAILED");
}

TEST(ShapeDeathTest, IncompatibleBroadcast) {
  EXPECT_DEATH(BroadcastShape({2, 3}, {4, 5}), "CHECK FAILED");
}

}  // namespace
}  // namespace timedrl
