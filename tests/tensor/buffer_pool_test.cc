// Unit tests for the size-bucketed tensor buffer pool: bucket rounding,
// recycle hits, the zero-fill contract, cross-thread release, the disable
// flag, and the allocation-stats counters.

#include "tensor/buffer_pool.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace timedrl::pool {
namespace {

// Pool statistics now live in the process-wide metrics registry; this shim
// reads them back into a struct so the assertions below stay direct.
struct Stats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t returned = 0;
  uint64_t dropped = 0;
  int64_t bytes_live = 0;
  int64_t bytes_pooled = 0;
  int64_t high_water_bytes = 0;
};

Stats GetStats() {
  const obs::MetricsSnapshot snap = obs::Registry::Global().Snapshot();
  Stats stats;
  stats.hits = snap.CounterValue("pool.hits");
  stats.misses = snap.CounterValue("pool.misses");
  stats.returned = snap.CounterValue("pool.returned");
  stats.dropped = snap.CounterValue("pool.dropped");
  stats.bytes_live = static_cast<int64_t>(snap.GaugeValue("pool.bytes_live"));
  stats.bytes_pooled =
      static_cast<int64_t>(snap.GaugeValue("pool.bytes_pooled"));
  stats.high_water_bytes =
      static_cast<int64_t>(snap.GaugeValue("pool.high_water_bytes"));
  return stats;
}

void ResetStats() {
  obs::Registry& registry = obs::Registry::Global();
  registry.GetCounter("pool.hits").Reset();
  registry.GetCounter("pool.misses").Reset();
  registry.GetCounter("pool.returned").Reset();
  registry.GetCounter("pool.dropped").Reset();
  registry.GetGauge("pool.high_water_bytes")
      .Set(registry.GetGauge("pool.bytes_live").value() +
           registry.GetGauge("pool.bytes_pooled").value());
}

// Every test starts from an empty, enabled pool with clean counters and
// leaves the pool in that state, so tests compose in any order.
class BufferPoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetEnabled(true);
    Clear();
    ResetStats();
  }
  void TearDown() override {
    SetEnabled(true);
    Clear();
    ResetStats();
  }
};

TEST_F(BufferPoolTest, AcquireRoundsCapacityToPowerOfTwo) {
  std::vector<float> buffer = Acquire(100);
  EXPECT_EQ(buffer.size(), 100u);
  EXPECT_EQ(buffer.capacity(), 128u);

  std::vector<float> exact = Acquire(256);
  EXPECT_EQ(exact.size(), 256u);
  EXPECT_EQ(exact.capacity(), 256u);

  Release(std::move(buffer));
  Release(std::move(exact));
}

TEST_F(BufferPoolTest, AcquireIsZeroFilledEvenWhenRecycled) {
  std::vector<float> buffer = Acquire(64);
  for (float& v : buffer) v = 123.0f;
  Release(std::move(buffer));

  std::vector<float> recycled = Acquire(64);
  ASSERT_EQ(recycled.size(), 64u);
  for (float v : recycled) EXPECT_EQ(v, 0.0f);
  EXPECT_EQ(GetStats().hits, 1u);
  Release(std::move(recycled));
}

TEST_F(BufferPoolTest, ReleaseThenAcquireHitsSameBucket) {
  // 100 and 65 both round to the 128-float bucket.
  std::vector<float> buffer = Acquire(100);
  Release(std::move(buffer));

  const Stats before = GetStats();
  EXPECT_EQ(before.returned, 1u);

  std::vector<float> recycled = AcquireUninit(65);
  EXPECT_EQ(recycled.size(), 65u);
  EXPECT_EQ(recycled.capacity(), 128u);
  const Stats after = GetStats();
  EXPECT_EQ(after.hits, before.hits + 1);
  EXPECT_EQ(after.misses, before.misses);
  Release(std::move(recycled));
}

TEST_F(BufferPoolTest, MissesCountFreshAllocations) {
  std::vector<float> a = Acquire(32);
  std::vector<float> b = Acquire(32);
  const Stats stats = GetStats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.hits, 0u);
  Release(std::move(a));
  Release(std::move(b));
}

TEST_F(BufferPoolTest, DisableFlagBypassesPool) {
  SetEnabled(false);
  EXPECT_FALSE(Enabled());

  std::vector<float> buffer = Acquire(64);
  EXPECT_EQ(buffer.size(), 64u);
  for (float v : buffer) EXPECT_EQ(v, 0.0f);
  Release(std::move(buffer));

  // Disabled acquires/releases never touch the pool or its counters.
  const Stats stats = GetStats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.returned, 0u);
  EXPECT_EQ(stats.bytes_pooled, 0);

  SetEnabled(true);
  std::vector<float> fresh = Acquire(64);
  EXPECT_EQ(GetStats().misses, 1u) << "disabled release must not seed the pool";
  Release(std::move(fresh));
}

TEST_F(BufferPoolTest, ForeignCapacityIsDroppedNotPooled) {
  // A vector whose capacity is not a power of two (e.g. from plain reserve)
  // can't be bucketed; Release must refuse it rather than misfile it.
  std::vector<float> foreign;
  foreign.reserve(100);
  foreign.resize(100);
  Release(std::move(foreign));

  const Stats stats = GetStats();
  EXPECT_EQ(stats.dropped, 1u);
  EXPECT_EQ(stats.returned, 0u);
  EXPECT_EQ(stats.bytes_pooled, 0);
}

TEST_F(BufferPoolTest, CrossThreadReleaseReachesOtherThreads) {
  // A worker thread acquires and releases; after its thread cache flushes
  // (explicitly here, and implicitly at thread exit), the main thread's next
  // acquire of that bucket must hit.
  std::thread worker([] {
    std::vector<float> buffer = Acquire(512);
    Release(std::move(buffer));
    FlushThreadCache();
  });
  worker.join();

  const Stats before = GetStats();
  std::vector<float> recycled = Acquire(512);
  const Stats after = GetStats();
  EXPECT_EQ(after.hits, before.hits + 1)
      << "buffer released on another thread was not visible";
  Release(std::move(recycled));
}

TEST_F(BufferPoolTest, ThreadExitFlushesCacheWithoutExplicitFlush) {
  std::thread worker([] {
    std::vector<float> buffer = Acquire(1024);
    Release(std::move(buffer));
    // No FlushThreadCache(): the cache destructor must hand the buffer to
    // the global pool when the thread dies.
  });
  worker.join();

  std::vector<float> recycled = Acquire(1024);
  EXPECT_EQ(GetStats().hits, 1u);
  Release(std::move(recycled));
}

TEST_F(BufferPoolTest, StatsTrackLiveAndPooledBytes) {
  const int64_t bucket_bytes = 128 * static_cast<int64_t>(sizeof(float));
  const Stats base = GetStats();

  std::vector<float> buffer = Acquire(100);
  Stats stats = GetStats();
  EXPECT_EQ(stats.bytes_live, base.bytes_live + bucket_bytes);
  EXPECT_EQ(stats.bytes_pooled, base.bytes_pooled);
  EXPECT_GE(stats.high_water_bytes, base.bytes_live + bucket_bytes);

  Release(std::move(buffer));
  stats = GetStats();
  EXPECT_EQ(stats.bytes_live, base.bytes_live);
  EXPECT_EQ(stats.bytes_pooled, base.bytes_pooled + bucket_bytes);

  Clear();
  stats = GetStats();
  EXPECT_EQ(stats.bytes_pooled, 0);
}

TEST_F(BufferPoolTest, ZeroAndNegativeSizesYieldEmptyBuffers) {
  EXPECT_TRUE(Acquire(0).empty());
  EXPECT_TRUE(AcquireUninit(0).empty());
  EXPECT_TRUE(Acquire(-4).empty());
  const Stats stats = GetStats();
  EXPECT_EQ(stats.hits + stats.misses, 0u);
}

}  // namespace
}  // namespace timedrl::pool
