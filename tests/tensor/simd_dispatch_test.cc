// The runtime ISA dispatch registry (tensor/kernels/dispatch.h): request
// parsing, compiled/supported/available consistency, programmatic override,
// and the guarantee that the registry never selects a path the machine
// cannot execute.

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "tensor/kernels/dispatch.h"

namespace timedrl::kernels::simd {
namespace {

class IsaGuard {
 public:
  IsaGuard() : previous_(ActiveIsa()) {}
  ~IsaGuard() { SetIsa(previous_); }

 private:
  Isa previous_;
};

TEST(SimdDispatch, ParseRequestCoversTheDocumentedValues) {
  EXPECT_EQ(ParseRequest("auto"), Request::kAuto);
  EXPECT_EQ(ParseRequest(""), Request::kAuto);
  EXPECT_EQ(ParseRequest("scalar"), Request::kScalar);
  EXPECT_EQ(ParseRequest("avx2"), Request::kAvx2);
  EXPECT_EQ(ParseRequest("avx512"), Request::kAvx512);
  EXPECT_EQ(ParseRequest("neon"), Request::kNeon);
  EXPECT_EQ(ParseRequest("AVX2"), Request::kInvalid);
  EXPECT_EQ(ParseRequest("sse"), Request::kInvalid);
  EXPECT_EQ(ParseRequest("bogus"), Request::kInvalid);
}

TEST(SimdDispatch, ScalarBackendIsAlwaysAvailable) {
  EXPECT_TRUE(Compiled(Isa::kScalar));
  EXPECT_TRUE(CpuSupports(Isa::kScalar));
  EXPECT_TRUE(Available(Isa::kScalar));
  const KernelTable* table = TableFor(Isa::kScalar);
  ASSERT_NE(table, nullptr);
  EXPECT_STREQ(table->name, "scalar");
  EXPECT_NE(table->gemm_nn, nullptr);
  EXPECT_NE(table->count_nonfinite, nullptr);
}

TEST(SimdDispatch, AvailableImpliesCompiledAndSupported) {
  for (Isa isa :
       {Isa::kScalar, Isa::kAvx2, Isa::kAvx512, Isa::kNeon}) {
    EXPECT_EQ(Available(isa), Compiled(isa) && CpuSupports(isa))
        << IsaName(isa);
    if (Available(isa)) {
      const KernelTable* table = TableFor(isa);
      ASSERT_NE(table, nullptr) << IsaName(isa);
      EXPECT_STREQ(table->name, IsaName(isa));
    } else {
      EXPECT_EQ(TableFor(isa), nullptr) << IsaName(isa);
    }
  }
}

TEST(SimdDispatch, ActiveMatchesActiveIsaAndIsExecutable) {
  const Isa isa = ActiveIsa();
  EXPECT_TRUE(Available(isa)) << "registry selected " << IsaName(isa)
                              << " which this machine cannot run";
  EXPECT_STREQ(Active().name, IsaName(isa));
}

TEST(SimdDispatch, BestAvailableIsAvailableAndBeatsScalarWhenVectorExists) {
  const Isa best = BestAvailable();
  EXPECT_TRUE(Available(best));
  const bool any_vector = Available(Isa::kAvx2) || Available(Isa::kAvx512) ||
                          Available(Isa::kNeon);
  if (any_vector) {
    EXPECT_NE(best, Isa::kScalar)
        << "a vector backend is available but BestAvailable chose scalar";
  }
  if (Available(Isa::kAvx512)) EXPECT_EQ(best, Isa::kAvx512);
}

TEST(SimdDispatch, SetIsaOverridesAndRefusesUnavailable) {
  IsaGuard restore;
  ASSERT_TRUE(SetIsa(Isa::kScalar));
  EXPECT_EQ(ActiveIsa(), Isa::kScalar);
  EXPECT_STREQ(Active().name, "scalar");
  for (Isa isa : {Isa::kAvx2, Isa::kAvx512, Isa::kNeon}) {
    if (Available(isa)) {
      EXPECT_TRUE(SetIsa(isa));
      EXPECT_EQ(ActiveIsa(), isa);
    } else {
      const Isa before = ActiveIsa();
      EXPECT_FALSE(SetIsa(isa)) << IsaName(isa);
      EXPECT_EQ(ActiveIsa(), before)
          << "failed SetIsa must not change the active path";
    }
  }
}

TEST(SimdDispatch, CpuFeatureStringIsNonEmptyAndConsistent) {
  const std::string features = CpuFeatureString();
  EXPECT_FALSE(features.empty());
  // If cpuid says AVX2+FMA, the feature string must mention avx2 — the
  // bench JSONs rely on this field to explain perf numbers.
  if (CpuSupports(Isa::kAvx2)) {
    EXPECT_NE(features.find("avx2"), std::string::npos) << features;
    EXPECT_NE(features.find("fma"), std::string::npos) << features;
  }
  if (CpuSupports(Isa::kAvx512)) {
    EXPECT_NE(features.find("avx512f"), std::string::npos) << features;
  }
}

}  // namespace
}  // namespace timedrl::kernels::simd
