// Verifies the kernel layer's determinism contract: forward losses and all
// parameter gradients of a TimeDRL pretext step are bitwise identical no
// matter how many threads the global pool runs (see util/thread_pool.h —
// partitioning only decides WHICH thread computes an output row, never the
// order of the additions inside it).

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "core/config.h"
#include "core/model.h"
#include "tensor/tensor.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace timedrl {
namespace {

struct StepResult {
  float total_loss;
  float predictive_loss;
  float contrastive_loss;
  std::vector<std::pair<std::string, std::vector<float>>> grads;
};

// Builds a fresh model + input from fixed seeds and runs one pretext
// forward/backward. Model construction (including the dropout streams forked
// from the rng) is identical across calls, so any divergence between runs
// must come from the kernels.
StepResult RunPretextStep() {
  core::TimeDrlConfig config;
  config.input_channels = 2;
  config.input_length = 32;
  config.patch_length = 8;
  config.patch_stride = 8;
  config.d_model = 16;
  config.num_heads = 2;
  config.ff_dim = 32;
  config.num_layers = 2;

  Rng rng(42);
  core::TimeDrlModel model(config, rng);
  model.Train();

  Rng data_rng(7);
  Tensor x = Tensor::Randn({4, config.input_length, config.input_channels},
                           data_rng);

  auto output = model.PretextStep(x);
  output.total.Backward();

  StepResult result;
  result.total_loss = output.total.item();
  result.predictive_loss = output.predictive.item();
  result.contrastive_loss = output.contrastive.item();
  for (const auto& [name, param] : model.NamedParameters()) {
    result.grads.emplace_back(
        name, param.has_grad() ? param.grad() : std::vector<float>{});
  }
  return result;
}

TEST(ParallelDeterminismTest, PretextStepBitwiseIdenticalAcrossThreadCounts) {
  SetNumThreads(1);
  const StepResult baseline = RunPretextStep();
  ASSERT_FALSE(baseline.grads.empty());

  for (int threads : {2, 8}) {
    SetNumThreads(threads);
    const StepResult run = RunPretextStep();

    // Bitwise float equality, deliberately not EXPECT_NEAR.
    EXPECT_EQ(baseline.total_loss, run.total_loss) << threads << " threads";
    EXPECT_EQ(baseline.predictive_loss, run.predictive_loss);
    EXPECT_EQ(baseline.contrastive_loss, run.contrastive_loss);

    ASSERT_EQ(baseline.grads.size(), run.grads.size());
    for (size_t i = 0; i < baseline.grads.size(); ++i) {
      EXPECT_EQ(baseline.grads[i].first, run.grads[i].first);
      EXPECT_EQ(baseline.grads[i].second, run.grads[i].second)
          << "gradient of " << baseline.grads[i].first << " diverges with "
          << threads << " threads";
    }
  }
  SetNumThreads(1);
}

}  // namespace
}  // namespace timedrl
