#include "tensor/ops.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tensor/tensor.h"

namespace timedrl {
namespace {

TEST(OpsTest, AddSameShape) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::FromVector({2, 2}, {10, 20, 30, 40});
  Tensor c = a + b;
  EXPECT_EQ(c.data(), (std::vector<float>{11, 22, 33, 44}));
}

TEST(OpsTest, BroadcastRowVector) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector({3}, {10, 20, 30});
  Tensor c = a + b;
  EXPECT_EQ(c.data(), (std::vector<float>{11, 22, 33, 14, 25, 36}));
}

TEST(OpsTest, BroadcastColumnVector) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector({2, 1}, {100, 200});
  Tensor c = a + b;
  EXPECT_EQ(c.data(), (std::vector<float>{101, 102, 103, 204, 205, 206}));
}

TEST(OpsTest, BroadcastGradientReduces) {
  // Broadcasting a bias over a batch: its grad should sum over the batch.
  Tensor a = Tensor::Zeros({4, 3}, /*requires_grad=*/true);
  Tensor b = Tensor::Zeros({3}, /*requires_grad=*/true);
  Sum(a + b).Backward();
  for (float g : b.grad()) EXPECT_FLOAT_EQ(g, 4.0f);
  for (float g : a.grad()) EXPECT_FLOAT_EQ(g, 1.0f);
}

TEST(OpsTest, ScalarOps) {
  Tensor a = Tensor::FromVector({3}, {1, 2, 3});
  EXPECT_EQ((a * 2.0f).data(), (std::vector<float>{2, 4, 6}));
  EXPECT_EQ((a + 1.0f).data(), (std::vector<float>{2, 3, 4}));
  EXPECT_EQ((1.0f - a).data(), (std::vector<float>{0, -1, -2}));
  EXPECT_EQ((6.0f / a).data(), (std::vector<float>{6, 3, 2}));
  EXPECT_EQ((-a).data(), (std::vector<float>{-1, -2, -3}));
}

TEST(OpsTest, UnaryValues) {
  Tensor a = Tensor::FromVector({3}, {-1.0f, 0.0f, 2.0f});
  EXPECT_EQ(Relu(a).data(), (std::vector<float>{0, 0, 2}));
  EXPECT_EQ(Abs(a).data(), (std::vector<float>{1, 0, 2}));
  Tensor e = Exp(Tensor::Scalar(1.0f));
  EXPECT_NEAR(e.item(), std::exp(1.0f), 1e-5);
  EXPECT_NEAR(Log(Tensor::Scalar(std::exp(2.0f))).item(), 2.0f, 1e-5);
  EXPECT_NEAR(Sigmoid(Tensor::Scalar(0.0f)).item(), 0.5f, 1e-6);
  EXPECT_NEAR(Tanh(Tensor::Scalar(0.0f)).item(), 0.0f, 1e-6);
  EXPECT_NEAR(Sqrt(Tensor::Scalar(16.0f)).item(), 4.0f, 1e-6);
  EXPECT_NEAR(Pow(Tensor::Scalar(2.0f), 3.0f).item(), 8.0f, 1e-5);
  EXPECT_NEAR(Gelu(Tensor::Scalar(0.0f)).item(), 0.0f, 1e-6);
  // GELU is close to identity for large positive x.
  EXPECT_NEAR(Gelu(Tensor::Scalar(5.0f)).item(), 5.0f, 1e-3);
}

TEST(OpsTest, ExtraActivationValues) {
  EXPECT_NEAR(Softplus(Tensor::Scalar(0.0f)).item(), std::log(2.0f), 1e-5);
  EXPECT_NEAR(Softplus(Tensor::Scalar(30.0f)).item(), 30.0f, 1e-3);
  EXPECT_NEAR(Softplus(Tensor::Scalar(-30.0f)).item(), 0.0f, 1e-3);
  EXPECT_FLOAT_EQ(LeakyRelu(Tensor::Scalar(-2.0f), 0.1f).item(), -0.2f);
  EXPECT_FLOAT_EQ(LeakyRelu(Tensor::Scalar(3.0f), 0.1f).item(), 3.0f);
  EXPECT_NEAR(Silu(Tensor::Scalar(0.0f)).item(), 0.0f, 1e-6);
  EXPECT_NEAR(Silu(Tensor::Scalar(10.0f)).item(), 10.0f, 1e-3);
  EXPECT_FLOAT_EQ(Elu(Tensor::Scalar(2.0f)).item(), 2.0f);
  EXPECT_NEAR(Elu(Tensor::Scalar(-30.0f)).item(), -1.0f, 1e-4);
}

TEST(OpsTest, ClampMin) {
  Tensor a = Tensor::FromVector({3}, {-2.0f, 0.5f, 3.0f});
  EXPECT_EQ(ClampMin(a, 0.0f).data(), (std::vector<float>{0.0f, 0.5f, 3.0f}));
}

TEST(OpsTest, MaximumElementwise) {
  Tensor a = Tensor::FromVector({3}, {1, 5, 2});
  Tensor b = Tensor::FromVector({3}, {4, 2, 2});
  EXPECT_EQ(Maximum(a, b).data(), (std::vector<float>{4, 5, 2}));
}

TEST(OpsTest, Reshape) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Reshape(a, {3, 2});
  EXPECT_EQ(b.shape(), (Shape{3, 2}));
  EXPECT_EQ(b.data(), a.data());
  Tensor c = Reshape(a, {-1});
  EXPECT_EQ(c.shape(), (Shape{6}));
  Tensor d = Reshape(a, {3, -1});
  EXPECT_EQ(d.shape(), (Shape{3, 2}));
}

TEST(OpsTest, TransposeTwoD) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Transpose(a, 0, 1);
  EXPECT_EQ(b.shape(), (Shape{3, 2}));
  EXPECT_EQ(b.data(), (std::vector<float>{1, 4, 2, 5, 3, 6}));
}

TEST(OpsTest, PermuteThreeD) {
  Tensor a = Tensor::FromVector({2, 1, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Permute(a, {2, 0, 1});
  EXPECT_EQ(b.shape(), (Shape{3, 2, 1}));
  EXPECT_EQ(b.at({0, 0, 0}), 1);
  EXPECT_EQ(b.at({0, 1, 0}), 4);
  EXPECT_EQ(b.at({2, 1, 0}), 6);
}

TEST(OpsTest, SliceAndConcatRoundTrip) {
  Tensor a = Tensor::FromVector({2, 4}, {1, 2, 3, 4, 5, 6, 7, 8});
  Tensor left = Slice(a, 1, 0, 2);
  Tensor right = Slice(a, 1, 2, 2);
  EXPECT_EQ(left.data(), (std::vector<float>{1, 2, 5, 6}));
  EXPECT_EQ(right.data(), (std::vector<float>{3, 4, 7, 8}));
  Tensor joined = Concat({left, right}, 1);
  EXPECT_EQ(joined.data(), a.data());
}

TEST(OpsTest, ConcatDimZero) {
  Tensor a = Tensor::FromVector({1, 2}, {1, 2});
  Tensor b = Tensor::FromVector({2, 2}, {3, 4, 5, 6});
  Tensor c = Concat({a, b}, 0);
  EXPECT_EQ(c.shape(), (Shape{3, 2}));
  EXPECT_EQ(c.data(), (std::vector<float>{1, 2, 3, 4, 5, 6}));
}

TEST(OpsTest, Stack) {
  Tensor a = Tensor::FromVector({2}, {1, 2});
  Tensor b = Tensor::FromVector({2}, {3, 4});
  Tensor s = Stack({a, b}, 0);
  EXPECT_EQ(s.shape(), (Shape{2, 2}));
  EXPECT_EQ(s.data(), (std::vector<float>{1, 2, 3, 4}));
}

TEST(OpsTest, BroadcastTo) {
  Tensor a = Tensor::FromVector({1, 3}, {1, 2, 3});
  Tensor b = BroadcastTo(a, {2, 3});
  EXPECT_EQ(b.data(), (std::vector<float>{1, 2, 3, 1, 2, 3}));
}

TEST(OpsTest, MatMulTwoD) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 2}));
  EXPECT_EQ(c.data(), (std::vector<float>{58, 64, 139, 154}));
}

TEST(OpsTest, MatMulBatched) {
  Tensor a = Tensor::FromVector({2, 1, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::FromVector({2, 2, 1}, {1, 1, 2, 2});
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 1, 1}));
  EXPECT_EQ(c.data(), (std::vector<float>{3, 14}));
}

TEST(OpsTest, MatMulSharedWeight) {
  // [B, T, D] x [D, E] with shared rank-2 weight.
  Tensor a = Tensor::FromVector({2, 2, 2}, {1, 0, 0, 1, 2, 0, 0, 2});
  Tensor w = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor c = MatMul(a, w);
  EXPECT_EQ(c.shape(), (Shape{2, 2, 3}));
  EXPECT_EQ(c.at({0, 0, 0}), 1);
  EXPECT_EQ(c.at({0, 1, 1}), 5);
  EXPECT_EQ(c.at({1, 0, 2}), 6);
}

TEST(OpsTest, MatMulSharedWeightGradAccumulatesOverBatch) {
  Tensor a = Tensor::Ones({3, 2, 2});
  Tensor w = Tensor::Zeros({2, 2}, /*requires_grad=*/true);
  Sum(MatMul(a, w)).Backward();
  // Each weight entry is used by 3 batches x 2 rows.
  for (float g : w.grad()) EXPECT_FLOAT_EQ(g, 6.0f);
}

TEST(OpsTest, MatMulBroadcastBatchDims) {
  // [2,1,2,3] x [1,3,3,2] -> [2,3,2,2]: both batch dims broadcast.
  Tensor a = Tensor::FromVector({2, 1, 2, 3}, {1, 0, 0, 0, 1, 0,    // A0
                                               0, 0, 1, 1, 1, 1});  // A1
  Tensor b = Tensor::FromVector(
      {1, 3, 3, 2}, {1, 2, 3, 4, 5, 6,          // B0
                     7, 8, 9, 10, 11, 12,       // B1
                     13, 14, 15, 16, 17, 18});  // B2
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 3, 2, 2}));
  // Block [i][j] of the output is A_i x B_j.
  EXPECT_EQ(c.data(),
            (std::vector<float>{1,  2,  3,  4,   7,  8,  9,  10,
                                13, 14, 15, 16,  5,  6,  9,  12,
                                11, 12, 27, 30,  17, 18, 45, 48}));
}

TEST(OpsTest, MatMulBroadcastBatchGradAccumulates) {
  Tensor a = Tensor::Ones({2, 1, 2, 3}, /*requires_grad=*/true);
  Tensor b = Tensor::Ones({1, 3, 3, 2}, /*requires_grad=*/true);
  Sum(MatMul(a, b)).Backward();
  // Each a entry is read by 3 broadcast heads x 2 output columns.
  for (float g : a.grad()) EXPECT_FLOAT_EQ(g, 6.0f);
  // Each b entry is read by 2 broadcast batches x 2 output rows.
  for (float g : b.grad()) EXPECT_FLOAT_EQ(g, 4.0f);
}

TEST(OpsTest, MatMulBroadcastMiddleOnes) {
  // [3,1,1,2] x [1,1,2,4] -> [3,1,1,4]: rhs shared across the batch.
  Tensor a = Tensor::FromVector({3, 1, 1, 2}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector({1, 1, 2, 4},
                                {1, 0, 0, 1, 0, 1, 1, 0});
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.shape(), (Shape{3, 1, 1, 4}));
  EXPECT_EQ(c.data(), (std::vector<float>{1, 2, 2, 1, 3, 4, 4, 3, 5, 6, 6, 5}));
}

TEST(OpsTest, SumAll) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  EXPECT_FLOAT_EQ(Sum(a).item(), 10.0f);
  EXPECT_FLOAT_EQ(Mean(a).item(), 2.5f);
}

TEST(OpsTest, SumAlongDims) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor s0 = Sum(a, {0});
  EXPECT_EQ(s0.shape(), (Shape{3}));
  EXPECT_EQ(s0.data(), (std::vector<float>{5, 7, 9}));
  Tensor s1 = Sum(a, {1}, /*keepdim=*/true);
  EXPECT_EQ(s1.shape(), (Shape{2, 1}));
  EXPECT_EQ(s1.data(), (std::vector<float>{6, 15}));
  Tensor s01 = Sum(a, {0, 1});
  EXPECT_EQ(s01.shape(), (Shape{1}));
  EXPECT_FLOAT_EQ(s01.item(), 21.0f);
}

TEST(OpsTest, MeanAlongDims) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Tensor m = Mean(a, {0});
  EXPECT_EQ(m.data(), (std::vector<float>{2, 3}));
}

TEST(OpsTest, MaxAlongDim) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 9, 3, 7, 5, 6});
  Tensor m = Max(a, 1);
  EXPECT_EQ(m.shape(), (Shape{2}));
  EXPECT_EQ(m.data(), (std::vector<float>{9, 7}));
  Tensor mk = Max(a, 0, /*keepdim=*/true);
  EXPECT_EQ(mk.shape(), (Shape{1, 3}));
  EXPECT_EQ(mk.data(), (std::vector<float>{7, 9, 6}));
}

TEST(OpsTest, MaxGradientGoesToArgmax) {
  Tensor a =
      Tensor::FromVector({2, 2}, {1, 5, 7, 2}, /*requires_grad=*/true);
  Sum(Max(a, 1)).Backward();
  EXPECT_EQ(a.grad(), (std::vector<float>{0, 1, 1, 0}));
}

TEST(OpsTest, ArgMax) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 9, 3, 7, 5, 6});
  EXPECT_EQ(ArgMax(a, 1), (std::vector<int64_t>{1, 0}));
  EXPECT_EQ(ArgMax(a, 0), (std::vector<int64_t>{1, 0, 1}));
}

TEST(OpsTest, SoftmaxRowsSumToOne) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, -1, 0, 1});
  Tensor s = Softmax(a, 1);
  for (int64_t r = 0; r < 2; ++r) {
    float total = 0;
    for (int64_t c = 0; c < 3; ++c) total += s.at({r, c});
    EXPECT_NEAR(total, 1.0f, 1e-5);
  }
  // Softmax is shift invariant: both rows differ by a constant shift.
  EXPECT_NEAR(s.at({0, 0}), s.at({1, 0}), 1e-5);
}

TEST(OpsTest, SoftmaxNumericalStability) {
  Tensor a = Tensor::FromVector({1, 2}, {1000.0f, 1001.0f});
  Tensor s = Softmax(a, 1);
  EXPECT_FALSE(std::isnan(s.at({0, 0})));
  EXPECT_NEAR(s.at({0, 0}) + s.at({0, 1}), 1.0f, 1e-5);
}

TEST(OpsTest, LogSoftmaxMatchesLogOfSoftmax) {
  Tensor a = Tensor::FromVector({2, 3}, {0.5f, -1.0f, 2.0f, 3.0f, 0.0f, 1.0f});
  Tensor ls = LogSoftmax(a, 1);
  Tensor s = Softmax(a, 1);
  for (int64_t i = 0; i < a.numel(); ++i) {
    EXPECT_NEAR(ls.data()[i], std::log(s.data()[i]), 1e-5);
  }
}

TEST(OpsTest, CrossEntropyUniformLogits) {
  Tensor logits = Tensor::Zeros({4, 3});
  Tensor loss = CrossEntropy(logits, {0, 1, 2, 0});
  EXPECT_NEAR(loss.item(), std::log(3.0f), 1e-5);
}

TEST(OpsTest, CrossEntropyPerfectPrediction) {
  Tensor logits = Tensor::FromVector({2, 2}, {100.0f, 0.0f, 0.0f, 100.0f});
  Tensor loss = CrossEntropy(logits, {0, 1});
  EXPECT_NEAR(loss.item(), 0.0f, 1e-4);
}

TEST(OpsTest, MseAndL1Loss) {
  Tensor p = Tensor::FromVector({2}, {1.0f, 3.0f});
  Tensor t = Tensor::FromVector({2}, {0.0f, 1.0f});
  EXPECT_NEAR(MseLoss(p, t).item(), (1.0f + 4.0f) / 2.0f, 1e-6);
  EXPECT_NEAR(L1Loss(p, t).item(), (1.0f + 2.0f) / 2.0f, 1e-6);
}

TEST(OpsTest, MaskedFill) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Tensor mask = Tensor::FromVector({2, 2}, {0, 1, 0, 1});
  Tensor b = MaskedFill(a, mask, -99.0f);
  EXPECT_EQ(b.data(), (std::vector<float>{1, -99, 3, -99}));
}

TEST(OpsTest, MaskedFillBlocksGradAtMask) {
  Tensor a = Tensor::Ones({4}, /*requires_grad=*/true);
  Tensor mask = Tensor::FromVector({4}, {1, 0, 0, 1});
  Sum(MaskedFill(a, mask, 0.0f)).Backward();
  EXPECT_EQ(a.grad(), (std::vector<float>{0, 1, 1, 0}));
}

TEST(OpsTest, Conv1dIdentityKernel) {
  Tensor x = Tensor::FromVector({1, 1, 4}, {1, 2, 3, 4});
  Tensor w = Tensor::FromVector({1, 1, 1}, {1.0f});
  Tensor y = Conv1d(x, w, Tensor());
  EXPECT_EQ(y.shape(), (Shape{1, 1, 4}));
  EXPECT_EQ(y.data(), x.data());
}

TEST(OpsTest, Conv1dMovingSum) {
  Tensor x = Tensor::FromVector({1, 1, 4}, {1, 2, 3, 4});
  Tensor w = Tensor::FromVector({1, 1, 2}, {1.0f, 1.0f});
  Tensor y = Conv1d(x, w, Tensor());
  EXPECT_EQ(y.shape(), (Shape{1, 1, 3}));
  EXPECT_EQ(y.data(), (std::vector<float>{3, 5, 7}));
}

TEST(OpsTest, Conv1dPaddingAndBias) {
  Tensor x = Tensor::FromVector({1, 1, 3}, {1, 2, 3});
  Tensor w = Tensor::FromVector({1, 1, 3}, {1, 1, 1});
  Tensor b = Tensor::FromVector({1}, {10.0f});
  Tensor y = Conv1d(x, w, b, /*stride=*/1, /*padding=*/1);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 3}));
  EXPECT_EQ(y.data(), (std::vector<float>{13, 16, 15}));
}

TEST(OpsTest, Conv1dDilation) {
  Tensor x = Tensor::FromVector({1, 1, 5}, {1, 2, 3, 4, 5});
  Tensor w = Tensor::FromVector({1, 1, 2}, {1, 1});
  Tensor y = Conv1d(x, w, Tensor(), /*stride=*/1, /*padding=*/0,
                    /*dilation=*/2);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 3}));
  EXPECT_EQ(y.data(), (std::vector<float>{4, 6, 8}));
}

TEST(OpsTest, Conv1dStride) {
  Tensor x = Tensor::FromVector({1, 1, 6}, {1, 2, 3, 4, 5, 6});
  Tensor w = Tensor::FromVector({1, 1, 2}, {1, 1});
  Tensor y = Conv1d(x, w, Tensor(), /*stride=*/2);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 3}));
  EXPECT_EQ(y.data(), (std::vector<float>{3, 7, 11}));
}

TEST(OpsTest, Conv1dMultiChannel) {
  // Two input channels summed by a single output channel.
  Tensor x = Tensor::FromVector({1, 2, 3}, {1, 2, 3, 10, 20, 30});
  Tensor w = Tensor::FromVector({1, 2, 1}, {1.0f, 1.0f});
  Tensor y = Conv1d(x, w, Tensor());
  EXPECT_EQ(y.data(), (std::vector<float>{11, 22, 33}));
}

TEST(OpsTest, MaxPool1d) {
  Tensor x = Tensor::FromVector({1, 1, 4}, {1, 3, 2, 5});
  Tensor y = MaxPool1d(x, 2, 2);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 2}));
  EXPECT_EQ(y.data(), (std::vector<float>{3, 5}));
}

TEST(OpsTest, AvgPool1d) {
  Tensor x = Tensor::FromVector({1, 1, 4}, {1, 3, 2, 6});
  Tensor y = AvgPool1d(x, 2, 2);
  EXPECT_EQ(y.data(), (std::vector<float>{2, 4}));
}

}  // namespace
}  // namespace timedrl
