// Scalar-vs-SIMD equivalence for every dispatched kernel (the tolerance
// half of the DESIGN.md §16 contract): each available vector backend is run
// directly through its TableFor() pointers against the scalar reference on
// shapes chosen to exercise full vector panels, the single-W panel, and
// ragged tails. Also: the masked-softmax exact-zero contract, the exactness
// of CountNonFinite, and fused-op gradchecks with the scalar path forced via
// SetIsa (the TIMEDRL_SIMD=scalar configuration).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <vector>

#include "tensor/kernels/dispatch.h"
#include "tensor/ops.h"
#include "tensor/ops_fused.h"
#include "tensor/tensor.h"
#include "testing/gradcheck.h"
#include "util/rng.h"

namespace timedrl::kernels::simd {
namespace {

std::vector<float> RandomVec(int64_t n, uint32_t seed, float scale = 1.0f) {
  std::mt19937 gen(seed);
  std::normal_distribution<float> dist(0.0f, scale);
  std::vector<float> v(n);
  for (auto& x : v) x = dist(gen);
  return v;
}

void ExpectAllClose(const std::vector<float>& a, const std::vector<float>& b,
                    float rtol, float atol, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    const float scale = std::max(std::fabs(a[i]), std::fabs(b[i]));
    ASSERT_NEAR(a[i], b[i], atol + rtol * scale)
        << what << " at index " << i;
  }
}

std::vector<Isa> VectorIsas() {
  std::vector<Isa> isas;
  for (Isa isa : {Isa::kAvx2, Isa::kAvx512, Isa::kNeon}) {
    if (Available(isa)) isas.push_back(isa);
  }
  return isas;
}

// Shapes with ragged tails relative to every vector width in play (8/16):
// m exercises partial kMr row tiles, k spans two kKc blocks, n covers full
// 2W panels plus a single-W panel plus a ragged tail.
constexpr int64_t kM = 23;
constexpr int64_t kK = 300;
constexpr int64_t kN = 61;

TEST(SimdEquivalence, GemmNN) {
  const KernelTable* ref = TableFor(Isa::kScalar);
  const auto a = RandomVec(kM * kK, 1);
  const auto b = RandomVec(kK * kN, 2);
  for (bool accumulate : {false, true}) {
    std::vector<float> expected = RandomVec(kM * kN, 3);
    std::vector<float> seed_c = expected;
    ref->gemm_nn(a.data(), b.data(), expected.data(), kM, kK, kN, accumulate);
    for (Isa isa : VectorIsas()) {
      std::vector<float> actual = seed_c;
      TableFor(isa)->gemm_nn(a.data(), b.data(), actual.data(), kM, kK, kN,
                             accumulate);
      // k = 300 terms of O(1) magnitude: sums are O(sqrt(k)), so a relative
      // tolerance on the element magnitude plus a small absolute floor for
      // cancellation covers the FMA/lane-tree reassociation.
      ExpectAllClose(expected, actual, 1e-4f, 1e-4f, IsaName(isa));
    }
  }
}

TEST(SimdEquivalence, GemmNT) {
  const KernelTable* ref = TableFor(Isa::kScalar);
  const auto a = RandomVec(kM * kN, 4);
  const auto b = RandomVec(kK * kN, 5);
  for (bool accumulate : {false, true}) {
    std::vector<float> expected = RandomVec(kM * kK, 6);
    std::vector<float> seed_c = expected;
    ref->gemm_nt(a.data(), b.data(), expected.data(), kM, kN, kK, accumulate);
    for (Isa isa : VectorIsas()) {
      std::vector<float> actual = seed_c;
      TableFor(isa)->gemm_nt(a.data(), b.data(), actual.data(), kM, kN, kK,
                             accumulate);
      ExpectAllClose(expected, actual, 1e-4f, 1e-4f, IsaName(isa));
    }
  }
}

TEST(SimdEquivalence, GemmTN) {
  const KernelTable* ref = TableFor(Isa::kScalar);
  const auto a = RandomVec(kM * kK, 7);
  const auto b = RandomVec(kM * kN, 8);
  for (bool accumulate : {false, true}) {
    std::vector<float> expected = RandomVec(kK * kN, 9);
    std::vector<float> seed_c = expected;
    ref->gemm_tn(a.data(), b.data(), expected.data(), kM, kK, kN, accumulate);
    for (Isa isa : VectorIsas()) {
      std::vector<float> actual = seed_c;
      TableFor(isa)->gemm_tn(a.data(), b.data(), actual.data(), kM, kK, kN,
                             accumulate);
      ExpectAllClose(expected, actual, 1e-4f, 1e-4f, IsaName(isa));
    }
  }
}

TEST(SimdEquivalence, LayerNormForward) {
  constexpr int64_t rows = 17;
  constexpr int64_t features = 61;  // ragged for W = 8 and 16
  const KernelTable* ref = TableFor(Isa::kScalar);
  const auto x = RandomVec(rows * features, 10);
  const auto gamma = RandomVec(features, 11);
  const auto beta = RandomVec(features, 12);
  std::vector<float> y_ref(rows * features), mean_ref(rows), rstd_ref(rows);
  ref->layer_norm_fwd(x.data(), gamma.data(), beta.data(), 1e-5f,
                      y_ref.data(), mean_ref.data(), rstd_ref.data(), rows,
                      features);
  for (Isa isa : VectorIsas()) {
    std::vector<float> y(rows * features), mean(rows), rstd(rows);
    TableFor(isa)->layer_norm_fwd(x.data(), gamma.data(), beta.data(), 1e-5f,
                                  y.data(), mean.data(), rstd.data(), rows,
                                  features);
    ExpectAllClose(y_ref, y, 1e-4f, 1e-5f, IsaName(isa));
    ExpectAllClose(mean_ref, mean, 1e-5f, 1e-6f, IsaName(isa));
    ExpectAllClose(rstd_ref, rstd, 1e-4f, 1e-5f, IsaName(isa));
  }
}

TEST(SimdEquivalence, LayerNormBackward) {
  constexpr int64_t rows = 17;
  constexpr int64_t features = 61;
  const KernelTable* ref = TableFor(Isa::kScalar);
  const auto x = RandomVec(rows * features, 13);
  const auto gamma = RandomVec(features, 14);
  const auto beta = RandomVec(features, 15);
  const auto g = RandomVec(rows * features, 16);
  std::vector<float> y(rows * features), mean(rows), rstd(rows);
  ref->layer_norm_fwd(x.data(), gamma.data(), beta.data(), 1e-5f, y.data(),
                      mean.data(), rstd.data(), rows, features);
  std::vector<float> dx_ref(rows * features), dgamma_ref(features),
      dbeta_ref(features);
  ref->layer_norm_bwd(g.data(), x.data(), gamma.data(), mean.data(),
                      rstd.data(), dx_ref.data(), dgamma_ref.data(),
                      dbeta_ref.data(), rows, features);
  for (Isa isa : VectorIsas()) {
    std::vector<float> dx(rows * features), dgamma(features), dbeta(features);
    TableFor(isa)->layer_norm_bwd(g.data(), x.data(), gamma.data(),
                                  mean.data(), rstd.data(), dx.data(),
                                  dgamma.data(), dbeta.data(), rows,
                                  features);
    ExpectAllClose(dx_ref, dx, 1e-4f, 1e-5f, IsaName(isa));
    ExpectAllClose(dgamma_ref, dgamma, 1e-4f, 1e-4f, IsaName(isa));
    ExpectAllClose(dbeta_ref, dbeta, 1e-4f, 1e-4f, IsaName(isa));
  }
}

TEST(SimdEquivalence, SoftmaxForwardMaskedAndUnmasked) {
  constexpr int64_t rows = 24;
  constexpr int64_t dim = 37;
  constexpr int64_t mask_rows = 12;
  const KernelTable* ref = TableFor(Isa::kScalar);
  const auto x = RandomVec(rows * dim, 17, 2.0f);
  std::vector<float> mask(mask_rows * dim, 0.0f);
  std::mt19937 gen(18);
  std::bernoulli_distribution coin(0.3);
  for (auto& m : mask) m = coin(gen) ? 1.0f : 0.0f;
  for (bool use_mask : {false, true}) {
    const float* mask_ptr = use_mask ? mask.data() : nullptr;
    std::vector<float> y_ref(rows * dim);
    ref->softmax_fwd(x.data(), mask_ptr, mask_rows, 0.5f, -1e9f,
                     y_ref.data(), rows, dim);
    for (Isa isa : VectorIsas()) {
      std::vector<float> y(rows * dim);
      TableFor(isa)->softmax_fwd(x.data(), mask_ptr, mask_rows, 0.5f, -1e9f,
                                 y.data(), rows, dim);
      ExpectAllClose(y_ref, y, 1e-5f, 1e-7f, IsaName(isa));
      if (mask_ptr != nullptr) {
        // Masked positions must be EXACTLY zero on every path (the vector
        // Exp flushes below the underflow cutoff instead of producing
        // denormals) — the softmax backward relies on y == 0 there.
        for (int64_t r = 0; r < rows; ++r) {
          for (int64_t d = 0; d < dim; ++d) {
            if (mask[(r % mask_rows) * dim + d] != 0.0f) {
              ASSERT_EQ(y[r * dim + d], 0.0f)
                  << IsaName(isa) << " row " << r << " dim " << d;
            }
          }
        }
      }
    }
  }
}

TEST(SimdEquivalence, SoftmaxBackward) {
  constexpr int64_t rows = 24;
  constexpr int64_t dim = 37;
  const KernelTable* ref = TableFor(Isa::kScalar);
  const auto x = RandomVec(rows * dim, 19, 2.0f);
  const auto g = RandomVec(rows * dim, 20);
  std::vector<float> y(rows * dim);
  ref->softmax_fwd(x.data(), nullptr, 1, 0.5f, -1e9f, y.data(), rows, dim);
  std::vector<float> dx_ref(rows * dim);
  ref->softmax_bwd(g.data(), y.data(), 0.5f, dx_ref.data(), rows, dim);
  for (Isa isa : VectorIsas()) {
    std::vector<float> dx(rows * dim);
    TableFor(isa)->softmax_bwd(g.data(), y.data(), 0.5f, dx.data(), rows,
                               dim);
    ExpectAllClose(dx_ref, dx, 1e-5f, 1e-7f, IsaName(isa));
  }
}

TEST(SimdEquivalence, BiasGeluForwardAndBackward) {
  constexpr int64_t rows = 21;
  constexpr int64_t features = 53;
  const KernelTable* ref = TableFor(Isa::kScalar);
  const auto x = RandomVec(rows * features, 21, 2.0f);
  const auto bias = RandomVec(features, 22);
  const auto g = RandomVec(rows * features, 23);
  for (const float* bias_ptr : {static_cast<const float*>(nullptr),
                                bias.data()}) {
    std::vector<float> y_ref(rows * features);
    ref->bias_gelu_fwd(x.data(), bias_ptr, y_ref.data(), rows, features);
    std::vector<float> dx_ref(rows * features), dbias_ref(features),
        scratch(rows * features);
    ref->bias_gelu_bwd(g.data(), x.data(), bias_ptr, dx_ref.data(),
                       dbias_ref.data(), scratch.data(), rows, features);
    for (Isa isa : VectorIsas()) {
      std::vector<float> y(rows * features);
      TableFor(isa)->bias_gelu_fwd(x.data(), bias_ptr, y.data(), rows,
                                   features);
      ExpectAllClose(y_ref, y, 1e-5f, 1e-6f, IsaName(isa));
      std::vector<float> dx(rows * features), dbias(features),
          scratch2(rows * features);
      TableFor(isa)->bias_gelu_bwd(g.data(), x.data(), bias_ptr, dx.data(),
                                   dbias.data(), scratch2.data(), rows,
                                   features);
      ExpectAllClose(dx_ref, dx, 1e-4f, 1e-5f, IsaName(isa));
      ExpectAllClose(dbias_ref, dbias, 1e-4f, 1e-4f, IsaName(isa));
    }
  }
}

TEST(SimdEquivalence, CountNonFiniteIsExactOnEveryPath) {
  constexpr int64_t n = 10007;  // prime: ragged against every width
  auto x = RandomVec(n, 24);
  x[0] = std::numeric_limits<float>::infinity();
  x[7] = -std::numeric_limits<float>::infinity();
  x[500] = std::numeric_limits<float>::quiet_NaN();
  x[n - 1] = std::numeric_limits<float>::quiet_NaN();
  x[n - 2] = std::numeric_limits<float>::denorm_min();  // finite
  const int64_t expected =
      TableFor(Isa::kScalar)->count_nonfinite(x.data(), n);
  EXPECT_EQ(expected, 4);
  for (Isa isa : VectorIsas()) {
    EXPECT_EQ(TableFor(isa)->count_nonfinite(x.data(), n), expected)
        << IsaName(isa);
  }
}

// ---- Forced-scalar gradchecks (the TIMEDRL_SIMD=scalar configuration) ----

class ScalarIsaGuard {
 public:
  ScalarIsaGuard() : previous_(ActiveIsa()) { SetIsa(Isa::kScalar); }
  ~ScalarIsaGuard() { SetIsa(previous_); }

 private:
  Isa previous_;
};

Tensor RandomTensor(const Shape& shape, uint64_t seed) {
  Rng rng(seed);
  return Tensor::Randn(shape, rng, 0.0f, 1.0f, /*requires_grad=*/true);
}

TEST(SimdForcedScalar, FusedOpGradChecksPassOnTheScalarPath) {
  ScalarIsaGuard scalar_path;
  ASSERT_EQ(ActiveIsa(), Isa::kScalar);

  auto ln = [](const std::vector<Tensor>& xs) {
    return FusedLayerNorm(xs[0], xs[1], xs[2], 1e-5f);
  };
  auto ln_result = testing::GradCheck(
      ln, {RandomTensor({3, 8}, 30), RandomTensor({8}, 31),
           RandomTensor({8}, 32)});
  EXPECT_TRUE(ln_result.ok) << ln_result.message;

  auto sm = [](const std::vector<Tensor>& xs) {
    return FusedAttentionSoftmax(xs[0], 0.7f, Tensor());
  };
  auto sm_result = testing::GradCheck(sm, {RandomTensor({2, 3, 5}, 33)});
  EXPECT_TRUE(sm_result.ok) << sm_result.message;

  auto bg = [](const std::vector<Tensor>& xs) {
    return FusedBiasGelu(xs[0], xs[1]);
  };
  auto bg_result = testing::GradCheck(
      bg, {RandomTensor({4, 6}, 34), RandomTensor({6}, 35)});
  EXPECT_TRUE(bg_result.ok) << bg_result.message;
}

// And the same gradchecks on the best vector path, so the polynomial
// Exp/Tanh error budget is covered by finite differences too.
TEST(SimdVectorPath, FusedOpGradChecksPassOnTheActivePath) {
  if (VectorIsas().empty()) GTEST_SKIP() << "no vector backend available";
  ASSERT_TRUE(SetIsa(BestAvailable()));

  auto ln = [](const std::vector<Tensor>& xs) {
    return FusedLayerNorm(xs[0], xs[1], xs[2], 1e-5f);
  };
  auto ln_result = testing::GradCheck(
      ln, {RandomTensor({3, 24}, 40), RandomTensor({24}, 41),
           RandomTensor({24}, 42)});
  EXPECT_TRUE(ln_result.ok) << ln_result.message;

  auto bg = [](const std::vector<Tensor>& xs) {
    return FusedBiasGelu(xs[0], xs[1]);
  };
  auto bg_result = testing::GradCheck(
      bg, {RandomTensor({4, 18}, 43), RandomTensor({18}, 44)});
  EXPECT_TRUE(bg_result.ok) << bg_result.message;
}

}  // namespace
}  // namespace timedrl::kernels::simd
