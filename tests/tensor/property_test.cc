// Property-style sweeps over shapes: op results checked against naive
// reference implementations.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace timedrl {
namespace {

// ---- MatMul vs naive triple loop, swept over sizes --------------------------------

using MatMulDims = std::tuple<int64_t, int64_t, int64_t, int64_t>;  // b,m,k,n

class MatMulPropertyTest : public ::testing::TestWithParam<MatMulDims> {};

TEST_P(MatMulPropertyTest, MatchesNaiveReference) {
  auto [batch, m, k, n] = GetParam();
  Rng rng(17);
  Tensor a = Tensor::Randn({batch, m, k}, rng);
  Tensor b = Tensor::Randn({batch, k, n}, rng);
  Tensor c = MatMul(a, b);
  ASSERT_EQ(c.shape(), (Shape{batch, m, n}));
  for (int64_t batch_index = 0; batch_index < batch; ++batch_index) {
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        double acc = 0.0;
        for (int64_t p = 0; p < k; ++p) {
          acc += double{a.at({batch_index, i, p})} *
                 double{b.at({batch_index, p, j})};
        }
        EXPECT_NEAR(c.at({batch_index, i, j}), acc, 1e-3)
            << batch_index << "," << i << "," << j;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, MatMulPropertyTest,
    ::testing::Values(MatMulDims{1, 1, 1, 1}, MatMulDims{1, 3, 5, 2},
                      MatMulDims{2, 4, 4, 4}, MatMulDims{3, 1, 7, 2},
                      MatMulDims{2, 8, 3, 8}, MatMulDims{1, 16, 16, 16}));

// ---- Reductions vs naive loops over random dim subsets ------------------------------

struct ReduceCase {
  Shape shape;
  std::vector<int64_t> dims;
  bool keepdim;
};

class ReducePropertyTest : public ::testing::TestWithParam<ReduceCase> {};

TEST_P(ReducePropertyTest, SumMatchesNaive) {
  const ReduceCase& test_case = GetParam();
  Rng rng(23);
  Tensor x = Tensor::Randn(test_case.shape, rng);
  Tensor reduced = Sum(x, test_case.dims, test_case.keepdim);

  // Naive: accumulate into a map keyed by the kept coordinates.
  Shape kept_shape = test_case.shape;
  for (int64_t dim : test_case.dims) {
    kept_shape[NormalizeDim(dim, x.dim())] = 1;
  }
  std::vector<double> expected(NumElements(kept_shape), 0.0);
  const std::vector<int64_t> strides = BroadcastStrides(kept_shape,
                                                        test_case.shape);
  const std::vector<int64_t> out_strides = RowMajorStrides(test_case.shape);
  for (int64_t i = 0; i < x.numel(); ++i) {
    // Decompose i into coordinates, map to the accumulator slot.
    int64_t remainder = i;
    int64_t slot = 0;
    for (size_t d = 0; d < test_case.shape.size(); ++d) {
      const int64_t coordinate = remainder / out_strides[d];
      remainder %= out_strides[d];
      slot += coordinate * strides[d];
    }
    expected[slot] += x.data()[i];
  }
  ASSERT_EQ(reduced.numel(), static_cast<int64_t>(expected.size()));
  for (int64_t i = 0; i < reduced.numel(); ++i) {
    EXPECT_NEAR(reduced.data()[i], expected[i], 1e-3);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ReducePropertyTest,
    ::testing::Values(ReduceCase{{4, 5}, {0}, false},
                      ReduceCase{{4, 5}, {1}, true},
                      ReduceCase{{2, 3, 4}, {1}, false},
                      ReduceCase{{2, 3, 4}, {0, 2}, false},
                      ReduceCase{{2, 3, 4}, {-1}, true},
                      ReduceCase{{6}, {0}, false}));

// ---- Softmax properties over shapes ------------------------------------------------

class SoftmaxPropertyTest
    : public ::testing::TestWithParam<std::pair<Shape, int64_t>> {};

TEST_P(SoftmaxPropertyTest, SumsToOneAndPreservesOrder) {
  auto [shape, dim] = GetParam();
  Rng rng(29);
  Tensor x = Tensor::Randn(shape, rng, 0.0f, 3.0f);
  Tensor y = Softmax(x, dim);
  Tensor sums = Sum(y, {dim});
  for (float s : sums.data()) EXPECT_NEAR(s, 1.0f, 1e-4);
  for (float v : y.data()) {
    EXPECT_GT(v, 0.0f);
    EXPECT_LT(v, 1.0f);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SoftmaxPropertyTest,
    ::testing::Values(std::pair<Shape, int64_t>{{3, 5}, 1},
                      std::pair<Shape, int64_t>{{3, 5}, 0},
                      std::pair<Shape, int64_t>{{2, 3, 4}, 2},
                      std::pair<Shape, int64_t>{{2, 3, 4}, 1}));

// ---- Conv1d identity/associativity-style checks -------------------------------------

TEST(ConvPropertyTest, StrideOneKernelOnePaddingZeroIsChannelMix) {
  // K=1 conv equals a per-position linear map across channels.
  Rng rng(31);
  Tensor x = Tensor::Randn({2, 3, 5}, rng);
  Tensor w = Tensor::Randn({4, 3, 1}, rng);
  Tensor y = Conv1d(x, w, Tensor());
  ASSERT_EQ(y.shape(), (Shape{2, 4, 5}));
  for (int64_t b = 0; b < 2; ++b) {
    for (int64_t co = 0; co < 4; ++co) {
      for (int64_t l = 0; l < 5; ++l) {
        double acc = 0;
        for (int64_t ci = 0; ci < 3; ++ci) {
          acc += double{w.at({co, ci, 0})} * double{x.at({b, ci, l})};
        }
        EXPECT_NEAR(y.at({b, co, l}), acc, 1e-4);
      }
    }
  }
}

TEST(ConvPropertyTest, LinearityInInput) {
  Rng rng(37);
  Tensor x1 = Tensor::Randn({1, 2, 8}, rng);
  Tensor x2 = Tensor::Randn({1, 2, 8}, rng);
  Tensor w = Tensor::Randn({3, 2, 3}, rng);
  Tensor lhs = Conv1d(x1 + x2, w, Tensor(), 1, 1);
  Tensor rhs = Conv1d(x1, w, Tensor(), 1, 1) + Conv1d(x2, w, Tensor(), 1, 1);
  for (int64_t i = 0; i < lhs.numel(); ++i) {
    EXPECT_NEAR(lhs.data()[i], rhs.data()[i], 1e-4);
  }
}

// ---- Backward determinism across repeated graphs ------------------------------------

TEST(AutogradPropertyTest, RepeatedBackwardIsDeterministic) {
  Rng rng(41);
  Tensor w = Tensor::Randn({4, 4}, rng, 0.0f, 1.0f, /*requires_grad=*/true);
  Tensor x = Tensor::Randn({2, 4}, rng);
  auto run = [&] {
    w.ZeroGrad();
    Tensor loss = Mean(Tanh(MatMul(x, w)));
    loss.Backward();
    return w.grad();
  };
  std::vector<float> first = run();
  std::vector<float> second = run();
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace timedrl
