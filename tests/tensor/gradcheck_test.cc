// Property-based verification of every differentiable op against
// central-finite-difference gradients.

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "testing/gradcheck.h"
#include "util/rng.h"

namespace timedrl {
namespace {

using testing::GradCheck;

// A named differentiable expression over generated inputs.
struct GradCase {
  std::string name;
  std::function<Tensor(const std::vector<Tensor>&)> fn;
  // Shapes of the inputs to generate.
  std::vector<Shape> input_shapes;
  // Keeps inputs away from non-differentiable kinks / singularities.
  float input_lo = -2.0f;
  float input_hi = 2.0f;
};

class GradCheckTest : public ::testing::TestWithParam<GradCase> {};

TEST_P(GradCheckTest, MatchesNumericGradient) {
  const GradCase& test_case = GetParam();
  Rng rng(12345);
  std::vector<Tensor> inputs;
  for (const Shape& shape : test_case.input_shapes) {
    inputs.push_back(Tensor::Rand(shape, rng, test_case.input_lo,
                                  test_case.input_hi,
                                  /*requires_grad=*/true));
  }
  auto result = GradCheck(test_case.fn, inputs);
  EXPECT_TRUE(result.ok) << test_case.name << ": " << result.message;
}

std::vector<GradCase> MakeCases() {
  std::vector<GradCase> cases;
  auto add = [&](std::string name,
                 std::function<Tensor(const std::vector<Tensor>&)> fn,
                 std::vector<Shape> shapes, float lo = -2.0f,
                 float hi = 2.0f) {
    cases.push_back({std::move(name), std::move(fn), std::move(shapes), lo, hi});
  };

  using Inputs = std::vector<Tensor>;

  // Binary elementwise with and without broadcasting.
  add("add", [](const Inputs& x) { return x[0] + x[1]; }, {{2, 3}, {2, 3}});
  add("add_broadcast", [](const Inputs& x) { return x[0] + x[1]; },
      {{2, 3}, {3}});
  add("add_broadcast_col", [](const Inputs& x) { return x[0] + x[1]; },
      {{2, 3}, {2, 1}});
  add("sub", [](const Inputs& x) { return x[0] - x[1]; }, {{4}, {4}});
  add("mul", [](const Inputs& x) { return x[0] * x[1]; }, {{2, 3}, {2, 3}});
  add("mul_broadcast", [](const Inputs& x) { return x[0] * x[1]; },
      {{2, 2, 2}, {2}});
  add("div", [](const Inputs& x) { return x[0] / x[1]; }, {{3, 2}, {3, 2}},
      0.5f, 2.0f);
  // Keep Maximum away from its kink (a == b) by comparing against constants
  // outside the sampled range.
  add("maximum_wins",
      [](const Inputs& x) { return Maximum(x[0], Tensor::Full({5}, -5.0f)); },
      {{5}});
  add("maximum_loses",
      [](const Inputs& x) { return Maximum(x[0], Tensor::Full({5}, 5.0f)); },
      {{5}});

  // Unary.
  add("neg", [](const Inputs& x) { return -x[0]; }, {{3, 3}});
  add("abs_positive", [](const Inputs& x) { return Abs(x[0]); }, {{4}}, 0.5f,
      2.0f);
  add("abs_negative", [](const Inputs& x) { return Abs(x[0]); }, {{4}}, -2.0f,
      -0.5f);
  add("exp", [](const Inputs& x) { return Exp(x[0]); }, {{3, 2}}, -1.0f, 1.0f);
  add("log", [](const Inputs& x) { return Log(x[0]); }, {{4}}, 0.5f, 3.0f);
  add("sqrt", [](const Inputs& x) { return Sqrt(x[0]); }, {{4}}, 0.5f, 3.0f);
  add("tanh", [](const Inputs& x) { return Tanh(x[0]); }, {{3, 3}});
  add("sigmoid", [](const Inputs& x) { return Sigmoid(x[0]); }, {{3, 3}});
  add("relu_positive", [](const Inputs& x) { return Relu(x[0]); }, {{4}}, 0.5f,
      2.0f);
  add("relu_negative", [](const Inputs& x) { return Relu(x[0]); }, {{4}},
      -2.0f, -0.5f);
  add("gelu", [](const Inputs& x) { return Gelu(x[0]); }, {{3, 3}});
  add("leaky_relu_pos", [](const Inputs& x) { return LeakyRelu(x[0], 0.1f); },
      {{4}}, 0.5f, 2.0f);
  add("leaky_relu_neg", [](const Inputs& x) { return LeakyRelu(x[0], 0.1f); },
      {{4}}, -2.0f, -0.5f);
  add("softplus", [](const Inputs& x) { return Softplus(x[0]); }, {{3, 3}});
  add("silu", [](const Inputs& x) { return Silu(x[0]); }, {{3, 3}});
  add("elu_pos", [](const Inputs& x) { return Elu(x[0]); }, {{4}}, 0.5f, 2.0f);
  add("elu_neg", [](const Inputs& x) { return Elu(x[0]); }, {{4}}, -2.0f,
      -0.5f);
  add("pow", [](const Inputs& x) { return Pow(x[0], 3.0f); }, {{4}}, 0.5f,
      2.0f);
  add("clamp_min_above", [](const Inputs& x) { return ClampMin(x[0], 0.0f); },
      {{4}}, 0.5f, 2.0f);

  // Shape ops.
  add("reshape", [](const Inputs& x) { return Reshape(x[0], {3, 2}); },
      {{2, 3}});
  add("transpose", [](const Inputs& x) { return Transpose(x[0], 0, 1); },
      {{2, 4}});
  add("permute",
      [](const Inputs& x) {
        return Permute(x[0], {2, 0, 1});
      },
      {{2, 3, 4}});
  add("slice", [](const Inputs& x) { return Slice(x[0], 1, 1, 2); }, {{2, 4}});
  add("concat", [](const Inputs& x) { return Concat({x[0], x[1]}, 0); },
      {{2, 3}, {1, 3}});
  add("stack", [](const Inputs& x) { return Stack({x[0], x[1]}, 1); },
      {{2, 3}, {2, 3}});
  add("broadcast_to",
      [](const Inputs& x) { return BroadcastTo(x[0], {4, 2, 3}); }, {{2, 3}});

  // Matmul variants.
  add("matmul_2d", [](const Inputs& x) { return MatMul(x[0], x[1]); },
      {{3, 4}, {4, 2}});
  add("matmul_batched", [](const Inputs& x) { return MatMul(x[0], x[1]); },
      {{2, 3, 4}, {2, 4, 2}});
  add("matmul_shared_rhs", [](const Inputs& x) { return MatMul(x[0], x[1]); },
      {{2, 3, 4}, {4, 2}});
  add("matmul_shared_lhs", [](const Inputs& x) { return MatMul(x[0], x[1]); },
      {{3, 4}, {2, 4, 2}});
  add("matmul_broadcast_batch",
      [](const Inputs& x) { return MatMul(x[0], x[1]); },
      {{2, 1, 3, 4}, {1, 3, 4, 2}});
  add("matmul_broadcast_lhs_batch",
      [](const Inputs& x) { return MatMul(x[0], x[1]); },
      {{1, 2, 3}, {4, 3, 2}});

  // Reductions.
  add("sum_all", [](const Inputs& x) { return Sum(x[0]); }, {{3, 4}});
  add("sum_dim0", [](const Inputs& x) { return Sum(x[0], {0}); }, {{3, 4}});
  add("sum_keepdim", [](const Inputs& x) { return Sum(x[0], {1}, true); },
      {{3, 4}});
  add("mean_all", [](const Inputs& x) { return Mean(x[0]); }, {{3, 4}});
  add("mean_dims", [](const Inputs& x) { return Mean(x[0], {0, 2}); },
      {{2, 3, 4}});
  add("max_dim", [](const Inputs& x) { return Max(x[0], 1); }, {{3, 5}});

  // Fused primitives.
  add("softmax", [](const Inputs& x) { return Softmax(x[0], 1); }, {{3, 4}});
  add("softmax_inner",
      [](const Inputs& x) { return Softmax(x[0], 1); }, {{2, 3, 2}});
  add("log_softmax", [](const Inputs& x) { return LogSoftmax(x[0], 1); },
      {{3, 4}});
  add("cross_entropy",
      [](const Inputs& x) { return CrossEntropy(x[0], {0, 2, 1}); }, {{3, 3}});
  add("mse_loss", [](const Inputs& x) { return MseLoss(x[0], x[1]); },
      {{3, 4}, {3, 4}});
  add("l1_loss", [](const Inputs& x) { return L1Loss(x[0], x[1]); },
      {{6}, {6}});

  // Convolution / pooling.
  add("conv1d_basic",
      [](const Inputs& x) { return Conv1d(x[0], x[1], x[2]); },
      {{2, 2, 6}, {3, 2, 3}, {3}});
  add("conv1d_padded",
      [](const Inputs& x) {
        return Conv1d(x[0], x[1], x[2], /*stride=*/1, /*padding=*/2);
      },
      {{1, 2, 5}, {2, 2, 3}, {2}});
  add("conv1d_strided_dilated",
      [](const Inputs& x) {
        return Conv1d(x[0], x[1], Tensor(), /*stride=*/2, /*padding=*/1,
                      /*dilation=*/2);
      },
      {{2, 1, 8}, {2, 1, 2}});
  add("max_pool1d", [](const Inputs& x) { return MaxPool1d(x[0], 2, 2); },
      {{2, 2, 6}});
  add("avg_pool1d", [](const Inputs& x) { return AvgPool1d(x[0], 3, 1); },
      {{2, 2, 6}});
  add("masked_fill",
      [](const Inputs& x) {
        Tensor mask = Tensor::FromVector({2, 3}, {0, 1, 0, 1, 0, 0});
        return MaskedFill(x[0], mask, 0.5f);
      },
      {{2, 3}});

  // Composite expressions exercising graph re-use and mixed ops.
  add("composite_mlp",
      [](const Inputs& x) {
        return MatMul(Relu(MatMul(x[0], x[1])), x[2]);
      },
      {{2, 3}, {3, 4}, {4, 2}});
  add("composite_diamond",
      [](const Inputs& x) {
        Tensor h = Tanh(x[0]);
        return h * h + Sigmoid(h);
      },
      {{3, 3}});
  add("composite_norm",
      [](const Inputs& x) {
        Tensor mu = Mean(x[0], {1}, true);
        Tensor centered = x[0] - mu;
        Tensor var = Mean(centered * centered, {1}, true);
        return centered / Sqrt(var + 0.1f);
      },
      {{3, 5}});
  add("composite_cosine",
      [](const Inputs& x) {
        Tensor dot = Sum(x[0] * x[1], {1});
        Tensor na = Sqrt(Sum(x[0] * x[0], {1}) + 1e-3f);
        Tensor nb = Sqrt(Sum(x[1] * x[1], {1}) + 1e-3f);
        return dot / (na * nb);
      },
      {{2, 4}, {2, 4}}, 0.5f, 2.0f);

  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, GradCheckTest, ::testing::ValuesIn(MakeCases()),
    [](const ::testing::TestParamInfo<GradCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace timedrl
