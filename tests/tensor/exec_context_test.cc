// The thread-local ExecContext and the graph-free op fast path.
//
// Op wrappers consult internal::Recording() BEFORE building autograd state,
// so a non-recording forward must produce plain leaves — no parents, no
// backward closure, no requires_grad propagation — and must not move the
// graph_nodes_created counter. These tests pin that contract for every
// wrapper family (elementwise, matmul, shape, reduce, conv) and for both
// controls (NoGradGuard and InferenceModeGuard), and check the fast path is
// numerically identical to the recording path.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace timedrl {
namespace {

// Exercises one op of every wrapper family over `a` and `b` (both
// [4, 8]) and returns the results for comparison.
std::vector<Tensor> RunAllFamilies(const Tensor& a, const Tensor& b) {
  std::vector<Tensor> results;
  results.push_back(Add(a, b));                      // elementwise binary
  results.push_back(Gelu(a));                        // elementwise unary
  results.push_back(MatMul(a, Transpose(b, 0, 1)));  // matmul (+permute)
  results.push_back(Reshape(a, {8, 4}));             // shape
  results.push_back(Slice(a, 1, 2, 3));              // shape
  results.push_back(Concat({a, b}, 0));              // shape, vector parents
  results.push_back(BroadcastTo(Slice(a, 0, 0, 1), {4, 8}));
  results.push_back(Sum(a, {1}, /*keepdim=*/true));  // reduce
  results.push_back(Softmax(a, 1));                  // reduce
  results.push_back(Max(a, 1, /*keepdim=*/false));   // reduce
  results.push_back(CrossEntropy(a, {0, 1, 2, 3}));  // fused loss
  Tensor conv_in = Reshape(a, {1, 4, 8});
  Tensor weight = Tensor::Ones({2, 4, 3}, a.requires_grad());
  results.push_back(Conv1d(conv_in, weight, Tensor(), 1, 0, 1));
  results.push_back(MaxPool1d(conv_in, 2, 2));
  results.push_back(AvgPool1d(conv_in, 2, 2));
  return results;
}

TEST(ExecContextTest, DefaultsToTrainingWithGradEnabled) {
  EXPECT_TRUE(GradEnabled());
  EXPECT_EQ(ThreadExecContext().mode, ExecMode::kTraining);
}

TEST(ExecContextTest, NoGradGuardStopsNodeCreation) {
  Rng rng(1);
  Tensor a = Tensor::Randn({4, 8}, rng, 0.0f, 1.0f, /*requires_grad=*/true);
  Tensor b = Tensor::Randn({4, 8}, rng, 0.0f, 1.0f, /*requires_grad=*/true);

  const int64_t before = GraphNodesCreated();
  NoGradGuard guard;
  std::vector<Tensor> results = RunAllFamilies(a, b);
  EXPECT_EQ(GraphNodesCreated(), before);
  for (const Tensor& result : results) {
    EXPECT_FALSE(result.requires_grad());
    EXPECT_TRUE(result.impl()->parents.empty());
    EXPECT_EQ(result.impl()->backward_fn, nullptr);
  }
}

TEST(ExecContextTest, InferenceModeGuardStopsNodeCreation) {
  Rng rng(2);
  Tensor a = Tensor::Randn({4, 8}, rng, 0.0f, 1.0f, /*requires_grad=*/true);
  Tensor b = Tensor::Randn({4, 8}, rng, 0.0f, 1.0f, /*requires_grad=*/true);

  const int64_t before = GraphNodesCreated();
  InferenceModeGuard guard;
  EXPECT_FALSE(GradEnabled());
  std::vector<Tensor> results = RunAllFamilies(a, b);
  EXPECT_EQ(GraphNodesCreated(), before);
  for (const Tensor& result : results) {
    EXPECT_FALSE(result.requires_grad());
    EXPECT_TRUE(result.impl()->parents.empty());
  }
}

TEST(ExecContextTest, DisabledInferenceModeGuardIsNoOp) {
  InferenceModeGuard guard(/*enable=*/false);
  EXPECT_TRUE(GradEnabled());
  EXPECT_EQ(ThreadExecContext().mode, ExecMode::kTraining);
}

TEST(ExecContextTest, GuardsRestoreOnExit) {
  {
    InferenceModeGuard outer;
    EXPECT_EQ(ThreadExecContext().mode, ExecMode::kInference);
    {
      InferenceModeGuard inner;
      EXPECT_EQ(ThreadExecContext().mode, ExecMode::kInference);
    }
    // Inference mode survives an inner NoGradGuard's destruction too: the
    // two controls are independent fields.
    { NoGradGuard no_grad; }
    EXPECT_EQ(ThreadExecContext().mode, ExecMode::kInference);
    EXPECT_FALSE(GradEnabled());
  }
  EXPECT_EQ(ThreadExecContext().mode, ExecMode::kTraining);
  EXPECT_TRUE(GradEnabled());
}

TEST(ExecContextTest, NonRequiresGradInputsAreGraphFreeInTraining) {
  Rng rng(3);
  Tensor a = Tensor::Randn({4, 8}, rng);  // requires_grad = false
  Tensor b = Tensor::Randn({4, 8}, rng);

  const int64_t before = GraphNodesCreated();
  std::vector<Tensor> results = RunAllFamilies(a, b);
  EXPECT_EQ(GraphNodesCreated(), before);
  for (const Tensor& result : results) {
    EXPECT_TRUE(result.impl()->parents.empty());
  }
}

TEST(ExecContextTest, RecordingPathStillBuildsTheGraph) {
  Rng rng(4);
  Tensor a = Tensor::Randn({4, 8}, rng, 0.0f, 1.0f, /*requires_grad=*/true);
  Tensor b = Tensor::Randn({4, 8}, rng, 0.0f, 1.0f, /*requires_grad=*/true);

  const int64_t before = GraphNodesCreated();
  Tensor sum = Add(a, b);
  EXPECT_EQ(GraphNodesCreated(), before + 1);
  EXPECT_TRUE(sum.requires_grad());
  ASSERT_EQ(sum.impl()->parents.size(), 2u);
  Mean(Mul(sum, sum)).Backward();
  EXPECT_TRUE(a.has_grad());
  EXPECT_TRUE(b.has_grad());
}

TEST(ExecContextTest, GraphFreePathIsBitwiseIdenticalToRecordingPath) {
  Rng rng(5);
  Tensor a = Tensor::Randn({4, 8}, rng, 0.0f, 1.0f, /*requires_grad=*/true);
  Tensor b = Tensor::Randn({4, 8}, rng, 0.0f, 1.0f, /*requires_grad=*/true);

  std::vector<Tensor> recorded = RunAllFamilies(a, b);
  std::vector<Tensor> graph_free;
  {
    InferenceModeGuard guard;
    graph_free = RunAllFamilies(a, b);
  }
  ASSERT_EQ(recorded.size(), graph_free.size());
  for (size_t i = 0; i < recorded.size(); ++i) {
    ASSERT_EQ(recorded[i].shape(), graph_free[i].shape()) << "op " << i;
    const std::vector<float>& expected = recorded[i].data();
    const std::vector<float>& actual = graph_free[i].data();
    for (size_t j = 0; j < expected.size(); ++j) {
      EXPECT_EQ(expected[j], actual[j]) << "op " << i << " element " << j;
    }
  }
}

}  // namespace
}  // namespace timedrl
