// Steady-state regression tests for the pooled training loop:
//  1. After a warmup pass has populated the pool, further full training
//     steps (forward + backward + clip + AdamW) allocate nothing new —
//     zero pool misses.
//  2. Training with the pool enabled is bitwise identical to training with
//     it disabled: same losses, same gradients, same updated parameters.
// Together these pin the pool's two contracts: it only RECYCLES memory
// (never changes what the kernels compute) and in steady state it serves
// every request from its free lists.

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "core/config.h"
#include "core/model.h"
#include "obs/metrics.h"
#include "optim/optimizer.h"
#include "tensor/buffer_pool.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace timedrl {
namespace {

core::TimeDrlConfig SmallConfig() {
  core::TimeDrlConfig config;
  config.input_channels = 2;
  config.input_length = 32;
  config.patch_length = 8;
  config.patch_stride = 8;
  config.d_model = 16;
  config.num_heads = 2;
  config.ff_dim = 32;
  config.num_layers = 2;
  return config;
}

struct TrainResult {
  std::vector<float> losses;
  std::vector<std::pair<std::string, std::vector<float>>> grads;
  std::vector<std::pair<std::string, std::vector<float>>> params;
};

// Deterministic multi-step training run: fixed seeds for model, data, and
// dropout, so two runs differ only through the allocator they use.
TrainResult TrainSteps(int steps) {
  const core::TimeDrlConfig config = SmallConfig();
  Rng rng(42);
  core::TimeDrlModel model(config, rng);
  model.Train();
  optim::AdamW optimizer(model.Parameters(), /*learning_rate=*/1e-3f,
                         /*weight_decay=*/1e-2f);
  Rng data_rng(7);

  TrainResult result;
  for (int i = 0; i < steps; ++i) {
    Tensor x = Tensor::Randn({4, config.input_length, config.input_channels},
                             data_rng);
    auto output = model.PretextStep(x);
    optimizer.ZeroGrad();
    output.total.Backward();
    optim::ClipGradNorm(optimizer.parameters(), /*max_norm=*/5.0f);
    optimizer.Step();
    result.losses.push_back(output.total.item());
  }
  for (const auto& [name, param] : model.NamedParameters()) {
    result.grads.emplace_back(
        name, param.has_grad() ? param.grad() : std::vector<float>{});
    result.params.emplace_back(name, param.data());
  }
  return result;
}

// Pool counters live in the metrics registry; this helper keeps the
// assertions below in delta form.
uint64_t PoolCounter(const char* name) {
  return obs::Registry::Global().GetCounter(name).value();
}

class PoolSteadyStateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    pool::SetEnabled(true);
    pool::Clear();
  }
  void TearDown() override {
    pool::SetEnabled(true);
    pool::Clear();
  }
};

TEST_F(PoolSteadyStateTest, ZeroMissesAfterWarmup) {
  const core::TimeDrlConfig config = SmallConfig();
  Rng rng(42);
  core::TimeDrlModel model(config, rng);
  model.Train();
  optim::AdamW optimizer(model.Parameters(), /*learning_rate=*/1e-3f,
                         /*weight_decay=*/1e-2f);
  Rng data_rng(7);

  auto step = [&]() {
    Tensor x = Tensor::Randn({4, config.input_length, config.input_channels},
                             data_rng);
    auto output = model.PretextStep(x);
    optimizer.ZeroGrad();
    output.total.Backward();
    optim::ClipGradNorm(optimizer.parameters(), /*max_norm=*/5.0f);
    optimizer.Step();
  };

  // Two warmup steps: the first allocates activations and grads, the second
  // covers buffers whose lifetime spans a step boundary.
  step();
  step();
  const uint64_t misses_before = PoolCounter("pool.misses");
  const uint64_t hits_before = PoolCounter("pool.hits");

  for (int i = 0; i < 4; ++i) step();

  EXPECT_EQ(PoolCounter("pool.misses"), misses_before)
      << "steady-state training still allocates fresh buffers";
  EXPECT_GT(PoolCounter("pool.hits"), hits_before);
}

TEST_F(PoolSteadyStateTest, TrainingBitwiseIdenticalWithPoolDisabled) {
  pool::SetEnabled(false);
  const TrainResult reference = TrainSteps(3);

  pool::SetEnabled(true);
  const TrainResult pooled = TrainSteps(3);

  // Bitwise float equality, deliberately not EXPECT_NEAR: recycling a
  // buffer must be indistinguishable from fresh allocation.
  ASSERT_EQ(reference.losses.size(), pooled.losses.size());
  for (size_t i = 0; i < reference.losses.size(); ++i) {
    EXPECT_EQ(reference.losses[i], pooled.losses[i]) << "loss at step " << i;
  }

  ASSERT_EQ(reference.grads.size(), pooled.grads.size());
  ASSERT_FALSE(reference.grads.empty());
  for (size_t i = 0; i < reference.grads.size(); ++i) {
    EXPECT_EQ(reference.grads[i].first, pooled.grads[i].first);
    EXPECT_EQ(reference.grads[i].second, pooled.grads[i].second)
        << "gradient of " << reference.grads[i].first
        << " differs with the pool enabled";
    EXPECT_EQ(reference.params[i].second, pooled.params[i].second)
        << "parameter " << reference.params[i].first
        << " differs with the pool enabled";
  }
}

}  // namespace
}  // namespace timedrl
