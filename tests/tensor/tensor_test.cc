#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include "tensor/ops.h"

namespace timedrl {
namespace {

TEST(TensorTest, Factories) {
  Tensor z = Tensor::Zeros({2, 3});
  EXPECT_EQ(z.shape(), (Shape{2, 3}));
  EXPECT_EQ(z.numel(), 6);
  for (float v : z.data()) EXPECT_EQ(v, 0.0f);

  Tensor ones = Tensor::Ones({4});
  for (float v : ones.data()) EXPECT_EQ(v, 1.0f);

  Tensor full = Tensor::Full({2, 2}, 3.5f);
  for (float v : full.data()) EXPECT_EQ(v, 3.5f);

  Tensor s = Tensor::Scalar(2.0f);
  EXPECT_EQ(s.item(), 2.0f);

  Tensor fv = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(fv.at({0, 1}), 2.0f);
  EXPECT_EQ(fv.at({1, 0}), 3.0f);
}

TEST(TensorTest, RandomFactoriesAreDeterministic) {
  Rng rng_a(7);
  Rng rng_b(7);
  Tensor a = Tensor::Randn({5, 5}, rng_a);
  Tensor b = Tensor::Randn({5, 5}, rng_b);
  EXPECT_EQ(a.data(), b.data());

  Rng rng_c(8);
  Tensor c = Tensor::Randn({5, 5}, rng_c);
  EXPECT_NE(a.data(), c.data());
}

TEST(TensorTest, CopyAliasesStorage) {
  Tensor a = Tensor::Ones({3});
  Tensor b = a;
  b.data()[0] = 9.0f;
  EXPECT_EQ(a.data()[0], 9.0f);
}

TEST(TensorTest, CloneIsDeep) {
  Tensor a = Tensor::Ones({3});
  Tensor b = a.Clone();
  b.data()[0] = 9.0f;
  EXPECT_EQ(a.data()[0], 1.0f);
}

TEST(TensorTest, SizeSupportsNegativeIndices) {
  Tensor a = Tensor::Zeros({2, 3, 4});
  EXPECT_EQ(a.size(-1), 4);
  EXPECT_EQ(a.size(-3), 2);
  EXPECT_EQ(a.size(1), 3);
}

TEST(TensorTest, SimpleBackward) {
  Tensor x = Tensor::FromVector({2}, {3.0f, 4.0f}, /*requires_grad=*/true);
  Tensor y = Sum(Mul(x, x));  // x0^2 + x1^2
  y.Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 6.0f);
  EXPECT_FLOAT_EQ(x.grad()[1], 8.0f);
}

TEST(TensorTest, GradAccumulatesAcrossBackwardCalls) {
  Tensor x = Tensor::Scalar(2.0f, /*requires_grad=*/true);
  Tensor y1 = Mul(x, 3.0f);
  y1.Backward();
  Tensor y2 = Mul(x, 3.0f);
  y2.Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 6.0f);
  x.ZeroGrad();
  Tensor y3 = Mul(x, 3.0f);
  y3.Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 3.0f);
}

TEST(TensorTest, DiamondGraphAccumulates) {
  // y = x*x + x*x should give dy/dx = 4x.
  Tensor x = Tensor::Scalar(3.0f, /*requires_grad=*/true);
  Tensor a = Mul(x, x);
  Tensor b = Mul(x, x);
  Tensor y = Add(a, b);
  y.Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 12.0f);
}

TEST(TensorTest, SharedSubexpressionBackpropagatesOnce) {
  // z = (x*2); y = z + z => dy/dx = 4.
  Tensor x = Tensor::Scalar(1.0f, /*requires_grad=*/true);
  Tensor z = Mul(x, 2.0f);
  Tensor y = Add(z, z);
  y.Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 4.0f);
}

TEST(TensorTest, DetachBlocksGradient) {
  Tensor x = Tensor::Scalar(5.0f, /*requires_grad=*/true);
  Tensor z = Mul(x, 2.0f).Detach();
  EXPECT_FALSE(z.requires_grad());
  Tensor w = Tensor::Scalar(1.0f, /*requires_grad=*/true);
  Tensor y = Mul(z, w);
  y.Backward();
  EXPECT_FALSE(x.has_grad());
  EXPECT_FLOAT_EQ(w.grad()[0], 10.0f);
}

TEST(TensorTest, NoGradGuardDisablesRecording) {
  Tensor x = Tensor::Scalar(2.0f, /*requires_grad=*/true);
  Tensor y;
  {
    NoGradGuard guard;
    y = Mul(x, x);
  }
  EXPECT_FALSE(y.requires_grad());
  EXPECT_FLOAT_EQ(y.item(), 4.0f);
}

TEST(TensorTest, NoGradGuardRestoresState) {
  EXPECT_TRUE(GradEnabled());
  {
    NoGradGuard outer;
    EXPECT_FALSE(GradEnabled());
    {
      NoGradGuard inner;
      EXPECT_FALSE(GradEnabled());
    }
    EXPECT_FALSE(GradEnabled());
  }
  EXPECT_TRUE(GradEnabled());
}

TEST(TensorTest, BackwardWithExplicitSeed) {
  Tensor x = Tensor::FromVector({2}, {1.0f, 2.0f}, /*requires_grad=*/true);
  Tensor y = Mul(x, x);
  y.Backward(Tensor::FromVector({2}, {1.0f, 10.0f}));
  EXPECT_FLOAT_EQ(x.grad()[0], 2.0f);
  EXPECT_FLOAT_EQ(x.grad()[1], 40.0f);
}

TEST(TensorTest, RequiresGradOnlyOnLeaves) {
  Tensor x = Tensor::Scalar(1.0f, /*requires_grad=*/true);
  Tensor y = Mul(x, 2.0f);
  EXPECT_TRUE(y.requires_grad());
  EXPECT_DEATH(y.set_requires_grad(false), "leaf");
}

TEST(TensorTest, ItemRequiresSingleElement) {
  Tensor x = Tensor::Zeros({2});
  EXPECT_DEATH(x.item(), "CHECK FAILED");
}

TEST(TensorTest, GradTensor) {
  Tensor x = Tensor::FromVector({2}, {1.0f, 2.0f}, /*requires_grad=*/true);
  Sum(Mul(x, 3.0f)).Backward();
  Tensor g = x.GradTensor();
  EXPECT_EQ(g.shape(), x.shape());
  EXPECT_FLOAT_EQ(g.data()[0], 3.0f);
  EXPECT_FLOAT_EQ(g.data()[1], 3.0f);
}

TEST(TensorTest, BackwardReleasesGraphByDefault) {
  Tensor x = Tensor::Scalar(2.0f, /*requires_grad=*/true);
  Tensor y = Mul(x, 3.0f);
  y.Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 3.0f);
  // The graph was released node-by-node during the first walk; a second
  // Backward() through it must fail loudly instead of silently no-opping.
  EXPECT_DEATH(y.Backward(), "retain_graph");
}

TEST(TensorTest, RetainGraphAllowsSecondBackward) {
  Tensor x = Tensor::Scalar(2.0f, /*requires_grad=*/true);
  Tensor y = Mul(x, 3.0f);
  y.Backward(/*retain_graph=*/true);
  EXPECT_FLOAT_EQ(x.grad()[0], 3.0f);
  // The retained graph keeps y's own grad too, so the second walk seeds
  // with an accumulated dL/dy of 2: x picks up another 2*3.
  y.Backward(/*retain_graph=*/true);
  EXPECT_FLOAT_EQ(x.grad()[0], 9.0f);
  // A final non-retaining walk (seed now 3) still works and releases the
  // graph.
  y.Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 18.0f);
}

}  // namespace
}  // namespace timedrl
