// serve::MicroBatcher contracts:
//  1. Correctness under concurrency: many client threads submitting windows
//     all receive the embedding their window would get from a direct
//     single-window session encode, bitwise.
//  2. Coalescing: with a delay budget, concurrent requests are served in
//     batches larger than one (observable via the serve.batch_size
//     histogram's max).
//  3. Lifecycle: shutdown drains in-flight requests; submits after Shutdown
//     resolve immediately with kUnavailable instead of aborting; options
//     come from the environment with sane fallbacks.
//  4. Hardening: deadlines expire queued requests with kDeadlineExceeded,
//     the bounded queue sheds with kResourceExhausted, the circuit breaker
//     opens on consecutive poisoned batches and recovers via canary probes,
//     and the stall watchdog fails a wedged batcher into kUnavailable.
//
// The test is also the TSan target for the serve label: every data path
// (submit queue, dispatcher, promise fan-out) runs under real contention.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/model.h"
#include "nn/serialize.h"
#include "obs/metrics.h"
#include "serve/inference_session.h"
#include "serve/micro_batcher.h"
#include "util/fault_inject.h"
#include "util/rng.h"
#include "util/status_or.h"

namespace timedrl::serve {
namespace {

core::TimeDrlConfig SmallConfig() {
  core::TimeDrlConfig config;
  config.input_channels = 2;
  config.input_length = 16;
  config.patch_length = 4;
  config.patch_stride = 4;
  config.d_model = 8;
  config.num_heads = 2;
  config.ff_dim = 16;
  config.num_layers = 1;
  return config;
}

/// Polls `condition` for up to `budget_ms`, returning whether it held.
template <typename Condition>
bool WaitFor(Condition condition, int64_t budget_ms = 5000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(budget_ms);
  while (!condition()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

class MicroBatcherTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const core::TimeDrlConfig config = SmallConfig();
    Rng rng(42);
    core::TimeDrlModel model(config, rng);
    // Per-test path: ctest runs each test as its own process in parallel,
    // so a shared file would race with another test's TearDown.
    path_ = ::testing::TempDir() + "micro_batcher_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".ckpt";
    ASSERT_TRUE(nn::SaveParameters(model, path_).ok());

    InferenceSessionConfig session_config;
    session_config.model = config;
    session_config.planned_batch_sizes = {1, 4, 8};
    ASSERT_TRUE(
        InferenceSession::Open(path_, session_config, &session_).ok());
  }

  void TearDown() override {
    fault::SetSpecForTest("");
    std::remove(path_.c_str());
  }

  std::vector<float> MakeWindow(uint64_t seed) const {
    const core::TimeDrlConfig& config = session_->model_config();
    Rng rng(seed);
    std::vector<float> window(config.input_length * config.input_channels);
    for (float& v : window) v = rng.Normal(0.0f, 1.0f);
    return window;
  }

  std::string path_;
  std::unique_ptr<InferenceSession> session_;
};

TEST_F(MicroBatcherTest, ConcurrentSubmittersGetBitwiseCorrectEmbeddings) {
  MicroBatcherOptions options;
  options.max_batch = 8;
  options.max_delay_us = 500;
  MicroBatcher batcher(session_.get(), options);

  constexpr int kThreads = 6;
  constexpr int kPerThread = 10;
  std::vector<std::vector<std::vector<float>>> got(kThreads);
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        got[t].push_back(batcher.Encode(MakeWindow(t * 100 + i)).value());
      }
    });
  }
  for (std::thread& client : clients) client.join();

  // Reference encodes run directly on the session after the batcher has
  // gone quiet (the session is single-threaded).
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      std::vector<float> expected =
          session_->EncodeWindow(MakeWindow(t * 100 + i));
      ASSERT_EQ(got[t][i].size(), expected.size());
      for (size_t d = 0; d < expected.size(); ++d) {
        ASSERT_EQ(got[t][i][d], expected[d])
            << "thread " << t << " request " << i << " dim " << d;
      }
    }
  }
}

TEST_F(MicroBatcherTest, CoalescesConcurrentRequests) {
  obs::Registry::Global().GetHistogram("serve.batch_size").Reset();
  MicroBatcherOptions options;
  options.max_batch = 8;
  options.max_delay_us = 20000;  // generous: let every burst coalesce
  MicroBatcher batcher(session_.get(), options);

  // Submit a burst of futures before waiting on any of them, so the
  // dispatcher sees a full queue.
  std::vector<std::future<util::StatusOr<Embedding>>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(batcher.Submit(MakeWindow(i)));
  }
  for (auto& future : futures) {
    EXPECT_FALSE(future.get().value().empty());
  }

  const obs::HistogramStats* stats = nullptr;
  obs::MetricsSnapshot snapshot = obs::Registry::Global().Snapshot();
  stats = snapshot.FindHistogram("serve.batch_size");
  ASSERT_NE(stats, nullptr);
  // Warmup encodes observe planned sizes too, so look at the maximum:
  // with 16 queued requests and max_batch 8 at least one batch must have
  // been larger than a single request.
  EXPECT_GT(stats->max, 1.0);
  // Queue-time metric moved for every coalesced request.
  EXPECT_GE(snapshot.FindHistogram("serve.queue_ns")->count, 16u);
}

TEST_F(MicroBatcherTest, ShutdownDrainsOutstandingRequests) {
  std::vector<std::future<util::StatusOr<Embedding>>> futures;
  {
    MicroBatcherOptions options;
    options.max_batch = 4;
    options.max_delay_us = 0;
    MicroBatcher batcher(session_.get(), options);
    for (int i = 0; i < 12; ++i) {
      futures.push_back(batcher.Submit(MakeWindow(i)));
    }
    batcher.Shutdown();
  }
  for (auto& future : futures) {
    EXPECT_EQ(future.get().value().size(),
              static_cast<size_t>(session_->embedding_dim()));
  }
}

// Regression: submitting after Shutdown used to die on a TIMEDRL_CHECK in
// the dispatcher teardown path; the contract is an immediately-failed
// kUnavailable future, never a process abort.
TEST_F(MicroBatcherTest, SubmitAfterShutdownReturnsUnavailable) {
  MicroBatcherOptions options;
  options.max_delay_us = 0;
  MicroBatcher batcher(session_.get(), options);
  EXPECT_TRUE(batcher.Encode(MakeWindow(1)).ok());
  batcher.Shutdown();

  util::StatusOr<Embedding> result = batcher.Encode(MakeWindow(2));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);

  // Still true after a second Shutdown (idempotent teardown).
  batcher.Shutdown();
  EXPECT_EQ(batcher.Encode(MakeWindow(3)).status().code(),
            StatusCode::kUnavailable);
}

TEST_F(MicroBatcherTest, MaxBatchIsClampedToSessionPlan) {
  MicroBatcherOptions options;
  options.max_batch = 1000;  // session only planned up to 8
  options.max_delay_us = 1000;
  MicroBatcher batcher(session_.get(), options);
  std::vector<std::future<util::StatusOr<Embedding>>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(batcher.Submit(MakeWindow(i)));
  }
  for (auto& future : futures) {
    EXPECT_FALSE(
        future.get().value().empty());  // would die on an unplanned batch
  }
}

TEST_F(MicroBatcherTest, WrongSizeWindowFailsWithoutReachingDispatcher) {
  MicroBatcher batcher(session_.get(), MicroBatcherOptions());
  util::StatusOr<Embedding> result =
      batcher.Encode(std::vector<float>(3, 0.0f));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kStructureMismatch);
}

TEST_F(MicroBatcherTest, QueuedRequestPastDeadlineFailsDeadlineExceeded) {
  MicroBatcherOptions options;
  options.max_batch = 8;
  options.max_delay_us = 100000;  // 100ms linger: the deadline passes first
  MicroBatcher batcher(session_.get(), options);

  SubmitOptions submit;
  submit.deadline_us = 1000;
  util::StatusOr<Embedding> result =
      batcher.Encode(MakeWindow(1), submit);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);

  // With no deadline the same request is served despite the linger.
  EXPECT_TRUE(batcher.Encode(MakeWindow(2)).ok());
}

TEST_F(MicroBatcherTest, FullQueueShedsNewestWithResourceExhausted) {
  // Hold the dispatcher inside an encode so submits pile up behind it.
  fault::SetSpecForTest("serve_slow_encode@1x*");
  MicroBatcherOptions options;
  options.max_batch = 1;
  options.max_delay_us = 0;
  options.max_queue = 2;
  MicroBatcher batcher(session_.get(), options);

  std::vector<std::future<util::StatusOr<Embedding>>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(batcher.Submit(MakeWindow(i)));
  }
  int rejected = 0;
  int served = 0;
  for (auto& future : futures) {
    util::StatusOr<Embedding> result = future.get();
    if (result.ok()) {
      ++served;
    } else {
      ASSERT_EQ(result.status().code(), StatusCode::kResourceExhausted);
      ++rejected;
    }
  }
  // At most 1 in flight + 2 queued can be admitted from a burst of 8, and
  // everything admitted is eventually served (Shutdown drains).
  EXPECT_GE(rejected, 5);
  EXPECT_EQ(served + rejected, 8);
  EXPECT_GE(served, 1);
}

TEST_F(MicroBatcherTest, BreakerOpensOnPoisonedBatchesAndRecovers) {
  // Open-ended poison: every batch and every canary probe is non-finite
  // until the spec is cleared, so the breaker deterministically stays open.
  fault::SetSpecForTest("serve_nan_embedding@1x*");
  MicroBatcherOptions options;
  options.max_delay_us = 0;
  options.breaker_threshold = 3;
  options.breaker_probe_ms = 2;
  MicroBatcher batcher(session_.get(), options);

  for (int i = 0; i < 3; ++i) {
    util::StatusOr<Embedding> result = batcher.Encode(MakeWindow(i));
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  }
  // The breaker flag is set by the dispatcher just after the third poisoned
  // promise resolves; give it a beat.
  ASSERT_TRUE(WaitFor([&] { return batcher.breaker_open(); }));

  // While open, submits shed without touching the session.
  util::StatusOr<Embedding> shed = batcher.Encode(MakeWindow(100));
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kUnavailable);

  // Heal the model: the next canary probe comes back finite and the
  // breaker closes without any client traffic.
  fault::SetSpecForTest("");
  ASSERT_TRUE(WaitFor([&] { return !batcher.breaker_open(); }));
  EXPECT_TRUE(batcher.Encode(MakeWindow(101)).ok());
}

TEST_F(MicroBatcherTest, StallWatchdogTripsBatcherIntoUnavailable) {
  // Every batch stalls 50ms; with a 5ms stall budget the second submit
  // observes a stale heartbeat with a batch in flight and trips the
  // watchdog.
  fault::SetSpecForTest("serve_slow_encode@1x*");
  MicroBatcherOptions options;
  options.max_delay_us = 0;
  options.stall_timeout_ms = 5;
  MicroBatcher batcher(session_.get(), options);

  std::future<util::StatusOr<Embedding>> first =
      batcher.Submit(MakeWindow(1));
  // Let the dispatcher take the batch and wedge inside the encode.
  std::this_thread::sleep_for(std::chrono::milliseconds(25));

  util::StatusOr<Embedding> second = batcher.Encode(MakeWindow(2));
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(batcher.unavailable());

  // The wedged batch still resolves (the encode eventually finished), and
  // the batcher stays terminal: later submits shed too.
  EXPECT_TRUE(first.get().ok());
  EXPECT_EQ(batcher.Encode(MakeWindow(3)).status().code(),
            StatusCode::kUnavailable);
}

TEST(MicroBatcherOptionsTest, FromEnvReadsOverridesAndIgnoresGarbage) {
  setenv("TIMEDRL_SERVE_MAX_BATCH", "16", 1);
  setenv("TIMEDRL_SERVE_MAX_DELAY_US", "750", 1);
  setenv("TIMEDRL_SERVE_MAX_QUEUE", "7", 1);
  setenv("TIMEDRL_SERVE_DEADLINE_US", "123", 1);
  setenv("TIMEDRL_SERVE_STALL_TIMEOUT_MS", "9", 1);
  setenv("TIMEDRL_SERVE_BREAKER_THRESHOLD", "2", 1);
  setenv("TIMEDRL_SERVE_BREAKER_PROBE_MS", "4", 1);
  MicroBatcherOptions options = MicroBatcherOptions::FromEnv();
  EXPECT_EQ(options.max_batch, 16);
  EXPECT_EQ(options.max_delay_us, 750);
  EXPECT_EQ(options.max_queue, 7);
  EXPECT_EQ(options.default_deadline_us, 123);
  EXPECT_EQ(options.stall_timeout_ms, 9);
  EXPECT_EQ(options.breaker_threshold, 2);
  EXPECT_EQ(options.breaker_probe_ms, 4);

  setenv("TIMEDRL_SERVE_MAX_BATCH", "not-a-number", 1);
  setenv("TIMEDRL_SERVE_MAX_DELAY_US", "-5", 1);
  setenv("TIMEDRL_SERVE_MAX_QUEUE", "0", 1);       // below the minimum of 1
  setenv("TIMEDRL_SERVE_DEADLINE_US", "-1", 1);    // below the minimum of 0
  setenv("TIMEDRL_SERVE_STALL_TIMEOUT_MS", "ten", 1);
  setenv("TIMEDRL_SERVE_BREAKER_THRESHOLD", "-3", 1);
  setenv("TIMEDRL_SERVE_BREAKER_PROBE_MS", "0", 1);
  options = MicroBatcherOptions::FromEnv();
  EXPECT_EQ(options.max_batch, MicroBatcherOptions().max_batch);
  EXPECT_EQ(options.max_delay_us, MicroBatcherOptions().max_delay_us);
  EXPECT_EQ(options.max_queue, MicroBatcherOptions().max_queue);
  EXPECT_EQ(options.default_deadline_us,
            MicroBatcherOptions().default_deadline_us);
  EXPECT_EQ(options.stall_timeout_ms, MicroBatcherOptions().stall_timeout_ms);
  EXPECT_EQ(options.breaker_threshold,
            MicroBatcherOptions().breaker_threshold);
  EXPECT_EQ(options.breaker_probe_ms, MicroBatcherOptions().breaker_probe_ms);

  for (const char* name :
       {"TIMEDRL_SERVE_MAX_BATCH", "TIMEDRL_SERVE_MAX_DELAY_US",
        "TIMEDRL_SERVE_MAX_QUEUE", "TIMEDRL_SERVE_DEADLINE_US",
        "TIMEDRL_SERVE_STALL_TIMEOUT_MS", "TIMEDRL_SERVE_BREAKER_THRESHOLD",
        "TIMEDRL_SERVE_BREAKER_PROBE_MS"}) {
    unsetenv(name);
  }
}

}  // namespace
}  // namespace timedrl::serve
