// serve::MicroBatcher contracts:
//  1. Correctness under concurrency: many client threads submitting windows
//     all receive the embedding their window would get from a direct
//     single-window session encode, bitwise.
//  2. Coalescing: with a delay budget, concurrent requests are served in
//     batches larger than one (observable via the serve.batch_size
//     histogram's max).
//  3. Lifecycle: shutdown drains in-flight requests; options come from the
//     environment with sane fallbacks.
//
// The test is also the TSan target for the serve label: every data path
// (submit queue, dispatcher, promise fan-out) runs under real contention.

#include <gtest/gtest.h>

#include <cstdlib>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/model.h"
#include "nn/serialize.h"
#include "obs/metrics.h"
#include "serve/inference_session.h"
#include "serve/micro_batcher.h"
#include "util/rng.h"

namespace timedrl::serve {
namespace {

core::TimeDrlConfig SmallConfig() {
  core::TimeDrlConfig config;
  config.input_channels = 2;
  config.input_length = 16;
  config.patch_length = 4;
  config.patch_stride = 4;
  config.d_model = 8;
  config.num_heads = 2;
  config.ff_dim = 16;
  config.num_layers = 1;
  return config;
}

class MicroBatcherTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const core::TimeDrlConfig config = SmallConfig();
    Rng rng(42);
    core::TimeDrlModel model(config, rng);
    // Per-test path: ctest runs each test as its own process in parallel,
    // so a shared file would race with another test's TearDown.
    path_ = ::testing::TempDir() + "micro_batcher_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".ckpt";
    ASSERT_TRUE(nn::SaveParameters(model, path_).ok());

    InferenceSessionConfig session_config;
    session_config.model = config;
    session_config.planned_batch_sizes = {1, 4, 8};
    ASSERT_TRUE(
        InferenceSession::Open(path_, session_config, &session_).ok());
  }

  void TearDown() override { std::remove(path_.c_str()); }

  std::vector<float> MakeWindow(uint64_t seed) const {
    const core::TimeDrlConfig& config = session_->model_config();
    Rng rng(seed);
    std::vector<float> window(config.input_length * config.input_channels);
    for (float& v : window) v = rng.Normal(0.0f, 1.0f);
    return window;
  }

  std::string path_;
  std::unique_ptr<InferenceSession> session_;
};

TEST_F(MicroBatcherTest, ConcurrentSubmittersGetBitwiseCorrectEmbeddings) {
  MicroBatcherOptions options;
  options.max_batch = 8;
  options.max_delay_us = 500;
  MicroBatcher batcher(session_.get(), options);

  constexpr int kThreads = 6;
  constexpr int kPerThread = 10;
  std::vector<std::vector<std::vector<float>>> got(kThreads);
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        got[t].push_back(batcher.Encode(MakeWindow(t * 100 + i)));
      }
    });
  }
  for (std::thread& client : clients) client.join();

  // Reference encodes run directly on the session after the batcher has
  // gone quiet (the session is single-threaded).
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      std::vector<float> expected =
          session_->EncodeWindow(MakeWindow(t * 100 + i));
      ASSERT_EQ(got[t][i].size(), expected.size());
      for (size_t d = 0; d < expected.size(); ++d) {
        ASSERT_EQ(got[t][i][d], expected[d])
            << "thread " << t << " request " << i << " dim " << d;
      }
    }
  }
}

TEST_F(MicroBatcherTest, CoalescesConcurrentRequests) {
  obs::Registry::Global().GetHistogram("serve.batch_size").Reset();
  MicroBatcherOptions options;
  options.max_batch = 8;
  options.max_delay_us = 20000;  // generous: let every burst coalesce
  MicroBatcher batcher(session_.get(), options);

  // Submit a burst of futures before waiting on any of them, so the
  // dispatcher sees a full queue.
  std::vector<std::future<std::vector<float>>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(batcher.Submit(MakeWindow(i)));
  }
  for (auto& future : futures) {
    EXPECT_FALSE(future.get().empty());
  }

  const obs::HistogramStats* stats = nullptr;
  obs::MetricsSnapshot snapshot = obs::Registry::Global().Snapshot();
  stats = snapshot.FindHistogram("serve.batch_size");
  ASSERT_NE(stats, nullptr);
  // Warmup encodes observe planned sizes too, so look at the maximum:
  // with 16 queued requests and max_batch 8 at least one batch must have
  // been larger than a single request.
  EXPECT_GT(stats->max, 1.0);
  // Queue-time metric moved for every coalesced request.
  EXPECT_GE(snapshot.FindHistogram("serve.queue_ns")->count, 16u);
}

TEST_F(MicroBatcherTest, ShutdownDrainsOutstandingRequests) {
  std::vector<std::future<std::vector<float>>> futures;
  {
    MicroBatcherOptions options;
    options.max_batch = 4;
    options.max_delay_us = 0;
    MicroBatcher batcher(session_.get(), options);
    for (int i = 0; i < 12; ++i) {
      futures.push_back(batcher.Submit(MakeWindow(i)));
    }
    batcher.Shutdown();
  }
  for (auto& future : futures) {
    EXPECT_EQ(future.get().size(),
              static_cast<size_t>(session_->embedding_dim()));
  }
}

TEST_F(MicroBatcherTest, MaxBatchIsClampedToSessionPlan) {
  MicroBatcherOptions options;
  options.max_batch = 1000;  // session only planned up to 8
  options.max_delay_us = 1000;
  MicroBatcher batcher(session_.get(), options);
  std::vector<std::future<std::vector<float>>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(batcher.Submit(MakeWindow(i)));
  }
  for (auto& future : futures) {
    EXPECT_FALSE(future.get().empty());  // would die on an unplanned batch
  }
}

TEST(MicroBatcherOptionsTest, FromEnvReadsOverridesAndIgnoresGarbage) {
  setenv("TIMEDRL_SERVE_MAX_BATCH", "16", 1);
  setenv("TIMEDRL_SERVE_MAX_DELAY_US", "750", 1);
  MicroBatcherOptions options = MicroBatcherOptions::FromEnv();
  EXPECT_EQ(options.max_batch, 16);
  EXPECT_EQ(options.max_delay_us, 750);

  setenv("TIMEDRL_SERVE_MAX_BATCH", "not-a-number", 1);
  setenv("TIMEDRL_SERVE_MAX_DELAY_US", "-5", 1);
  options = MicroBatcherOptions::FromEnv();
  EXPECT_EQ(options.max_batch, MicroBatcherOptions().max_batch);
  EXPECT_EQ(options.max_delay_us, MicroBatcherOptions().max_delay_us);

  unsetenv("TIMEDRL_SERVE_MAX_BATCH");
  unsetenv("TIMEDRL_SERVE_MAX_DELAY_US");
}

}  // namespace
}  // namespace timedrl::serve
