// Serving-path soak: many client threads × injected faults × a mid-traffic
// hot reload, all at once, against a deliberately small admission queue.
//
// The contract under test is the hardening invariant, not any particular
// outcome mix: the process must not hang or crash, every submitted future
// must resolve to an embedding or a typed error drawn from the documented
// taxonomy, and traffic must keep being served after the faults pass and
// the model swap lands. Run under TSan (serve label) this is also the race
// detector for the full submit/dispatch/reload/breaker surface.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/model.h"
#include "nn/serialize.h"
#include "serve/inference_session.h"
#include "serve/micro_batcher.h"
#include "util/fault_inject.h"
#include "util/rng.h"
#include "util/status_or.h"

namespace timedrl::serve {
namespace {

core::TimeDrlConfig SmallConfig() {
  core::TimeDrlConfig config;
  config.input_channels = 2;
  config.input_length = 16;
  config.patch_length = 4;
  config.patch_stride = 4;
  config.d_model = 8;
  config.num_heads = 2;
  config.ff_dim = 16;
  config.num_layers = 1;
  return config;
}

std::string SaveV1(const core::TimeDrlConfig& config, uint64_t seed,
                   const std::string& name) {
  Rng rng(seed);
  core::TimeDrlModel model(config, rng);
  const std::string path = ::testing::TempDir() + name;
  EXPECT_TRUE(nn::SaveParameters(model, path).ok());
  return path;
}

TEST(ServeSoakTest, FaultsShedsAndMidTrafficReloadNeverHangOrCorrupt) {
  const core::TimeDrlConfig config = SmallConfig();
  const std::string path_a = SaveV1(config, 42, "soak_a.ckpt");
  const std::string path_b = SaveV1(config, 43, "soak_b.ckpt");

  InferenceSessionConfig session_config;
  session_config.model = config;
  session_config.planned_batch_sizes = {1, 4};
  std::unique_ptr<InferenceSession> session;
  ASSERT_TRUE(
      InferenceSession::Open(path_a, session_config, &session).ok());

  // Slow batches early (so the queue backs up against max_queue) and two
  // poisoned batches later (enough to trip the threshold-2 breaker, which
  // then recovers via canary probes once the spec runs out).
  fault::SetSpecForTest("serve_slow_encode@2x3,serve_nan_embedding@8x2");

  MicroBatcherOptions options;
  options.max_batch = 4;
  options.max_delay_us = 200;
  options.max_queue = 8;  // far below the offered load: shedding is expected
  options.breaker_threshold = 2;
  options.breaker_probe_ms = 2;
  MicroBatcher batcher(session.get(), options);

  // Each thread pipelines a wave of futures before collecting any, so the
  // offered load (6 threads x 8 outstanding) genuinely exceeds max_queue
  // and admission control has something to shed.
  constexpr int kThreads = 6;
  constexpr int kWaves = 5;
  constexpr int kWaveSize = 8;
  constexpr int kPerThread = kWaves * kWaveSize;
  const int64_t row = config.input_length * config.input_channels;
  const size_t dim = static_cast<size_t>(session->embedding_dim());

  std::vector<std::map<StatusCode, int>> errors(kThreads);
  std::vector<int> ok_counts(kThreads, 0);
  std::atomic<bool> corrupt_payload{false};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      Rng rng(1000 + t);
      for (int wave = 0; wave < kWaves; ++wave) {
        std::vector<std::future<util::StatusOr<Embedding>>> futures;
        for (int i = 0; i < kWaveSize; ++i) {
          std::vector<float> window(row);
          for (float& v : window) v = rng.Normal(0.0f, 1.0f);
          SubmitOptions submit;
          // Every 4th request carries a tight deadline so expiry runs
          // under load; the rest wait as long as it takes.
          if (i % 4 == 3) submit.deadline_us = 1000;
          futures.push_back(batcher.Submit(std::move(window), submit));
        }
        for (auto& future : futures) {
          util::StatusOr<Embedding> result = future.get();
          if (result.ok()) {
            ++ok_counts[t];
            if (result.value().size() != dim) corrupt_payload.store(true);
          } else {
            ++errors[t][result.status().code()];
          }
        }
      }
    });
  }

  // Mid-traffic zero-downtime reload from another thread.
  std::thread reloader([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    Status status = session->Reload(path_b);
    EXPECT_TRUE(status.ok()) << status.ToString();
  });

  for (std::thread& client : clients) client.join();
  reloader.join();
  fault::SetSpecForTest("");

  // Every future resolved (the joins above would otherwise hang into the
  // ctest timeout) with either a correct-sized embedding or a typed error
  // from the documented set.
  int total_ok = 0;
  std::map<StatusCode, int> total_errors;
  for (int t = 0; t < kThreads; ++t) {
    total_ok += ok_counts[t];
    for (const auto& [code, count] : errors[t]) total_errors[code] += count;
  }
  EXPECT_FALSE(corrupt_payload.load());
  int total_failed = 0;
  for (const auto& [code, count] : total_errors) {
    EXPECT_TRUE(code == StatusCode::kDeadlineExceeded ||
                code == StatusCode::kUnavailable ||
                code == StatusCode::kResourceExhausted ||
                code == StatusCode::kInternal)
        << "unexpected code " << StatusCodeName(code);
    total_failed += count;
  }
  EXPECT_EQ(total_ok + total_failed, kThreads * kPerThread);
  // The path must have actually served through the chaos, and the small
  // queue against 6 threads of offered load must have shed something.
  EXPECT_GT(total_ok, 0);
  EXPECT_GT(total_failed, 0);

  // After the storm: with the fault spec cleared the next canary probe
  // closes the breaker (if the poisoned batches landed late enough to trip
  // it), the swap landed (or lands with the next encode), and plain
  // requests succeed again — zero downtime end to end.
  const auto recovery_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (batcher.breaker_open() &&
         std::chrono::steady_clock::now() < recovery_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_FALSE(batcher.breaker_open());
  EXPECT_TRUE(batcher.Encode(std::vector<float>(row, 0.5f)).ok());
  EXPECT_GE(session->reloads_applied(), 1u);
  EXPECT_FALSE(batcher.unavailable());

  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

}  // namespace
}  // namespace timedrl::serve
