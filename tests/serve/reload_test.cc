// serve::InferenceSession hot-reload contracts:
//  1. Interop: a session hot-swapped onto a checkpoint — v1 parameter-only
//     or v2 full training checkpoint — produces embeddings bitwise
//     identical to a fresh session opened on that same file. Reloading is
//     not a second code path with its own numerics.
//  2. Zero downtime: the swap is staged by Reload() and applied at the next
//     Encode; until then the old model keeps answering, and a rejected
//     candidate (unreadable file, corrupt canary) leaves the old model
//     serving bitwise-unchanged.
//  3. Validation: the canary gate turns a poisoned candidate into a typed
//     kInternal error ("serve_reload_corrupt" forces this) instead of
//     swapping garbage into the serving path.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "core/model.h"
#include "core/pretrainer.h"
#include "core/sources.h"
#include "data/synthetic.h"
#include "data/windows.h"
#include "nn/serialize.h"
#include "serve/inference_session.h"
#include "util/fault_inject.h"
#include "util/rng.h"

namespace timedrl::serve {
namespace {

namespace fs = std::filesystem;

core::TimeDrlConfig SmallConfig() {
  core::TimeDrlConfig config;
  config.input_channels = 2;
  config.input_length = 16;
  config.patch_length = 4;
  config.patch_stride = 4;
  config.d_model = 8;
  config.num_heads = 2;
  config.ff_dim = 16;
  config.num_layers = 1;
  return config;
}

Tensor TestBatch(int64_t batch, const core::TimeDrlConfig& config,
                 uint64_t seed) {
  Rng rng(seed);
  return Tensor::Randn({batch, config.input_length, config.input_channels},
                       rng);
}

void ExpectBitwise(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  for (int64_t i = 0; i < a.numel(); ++i) {
    ASSERT_EQ(a.data()[i], b.data()[i]) << "element " << i;
  }
}

/// Saves a freshly initialized model with `seed` as a v1 checkpoint.
std::string SaveV1(const core::TimeDrlConfig& config, uint64_t seed,
                   const std::string& name) {
  Rng rng(seed);
  core::TimeDrlModel model(config, rng);
  const std::string path = ::testing::TempDir() + name;
  EXPECT_TRUE(nn::SaveParameters(model, path).ok());
  return path;
}

std::unique_ptr<InferenceSession> OpenSession(
    const std::string& path, const core::TimeDrlConfig& config) {
  InferenceSessionConfig session_config;
  session_config.model = config;
  session_config.planned_batch_sizes = {1, 4};
  std::unique_ptr<InferenceSession> session;
  EXPECT_TRUE(InferenceSession::Open(path, session_config, &session).ok());
  return session;
}

TEST(ReloadTest, HotSwappedV1MatchesFreshSessionBitwise) {
  const core::TimeDrlConfig config = SmallConfig();
  const std::string path_a = SaveV1(config, 42, "reload_v1_a.ckpt");
  const std::string path_b = SaveV1(config, 43, "reload_v1_b.ckpt");

  std::unique_ptr<InferenceSession> session = OpenSession(path_a, config);
  std::unique_ptr<InferenceSession> fresh_a = OpenSession(path_a, config);
  std::unique_ptr<InferenceSession> fresh_b = OpenSession(path_b, config);

  Tensor x = TestBatch(4, config, /*seed=*/5);
  ExpectBitwise(fresh_a->Encode(x).instance, session->Encode(x).instance);

  // Stage the swap; it applies at the next Encode, not before.
  ASSERT_TRUE(session->Reload(path_b).ok());
  EXPECT_EQ(session->reloads_applied(), 0u);

  Embeddings after = session->Encode(x);
  EXPECT_EQ(session->reloads_applied(), 1u);
  ExpectBitwise(fresh_b->Encode(x).instance, after.instance);
  ExpectBitwise(fresh_b->Encode(x).timestamp, after.timestamp);

  fs::remove(path_a);
  fs::remove(path_b);
}

TEST(ReloadTest, HotSwappedV2TrainingCheckpointMatchesFreshSessionBitwise) {
  const std::string dir = ::testing::TempDir() + "reload_v2_ckpts";
  fs::remove_all(dir);
  core::TimeDrlConfig config = SmallConfig();
  config.input_channels = 1;  // channel-independent training below

  // Real pre-training run writing v2 checkpoints every epoch.
  Rng data_rng(1);
  data::TimeSeries series = data::MakeEttLike(200, 24, 1, data_rng);
  data::ForecastingWindows windows(series, config.input_length, 0, 4);
  core::ForecastingSource source(&windows, /*channel_independent=*/true);
  Rng model_rng(7);
  core::TimeDrlModel model(config, model_rng);
  core::PretrainConfig pretrain;
  pretrain.train.epochs = 1;
  pretrain.train.batch_size = 8;
  pretrain.train.checkpoint.directory = dir;
  Rng train_rng(99);
  core::Pretrain(&model, source, pretrain, train_rng);
  core::CheckpointManager manager(dir);
  std::vector<std::string> checkpoints = manager.ListCheckpoints();
  ASSERT_FALSE(checkpoints.empty());
  const std::string v2_path = checkpoints.back();

  // Session opened on an untrained v1 file, then hot-swapped to the trained
  // v2 checkpoint mid-life.
  const std::string v1_path = SaveV1(config, 42, "reload_v2_start.ckpt");
  std::unique_ptr<InferenceSession> session = OpenSession(v1_path, config);
  std::unique_ptr<InferenceSession> fresh = OpenSession(v2_path, config);

  ASSERT_TRUE(session->Reload(v2_path).ok());
  Tensor x = TestBatch(4, config, /*seed=*/6);
  Embeddings after = session->Encode(x);
  EXPECT_EQ(session->reloads_applied(), 1u);
  ExpectBitwise(fresh->Encode(x).instance, after.instance);
  ExpectBitwise(fresh->Encode(x).timestamp, after.timestamp);

  fs::remove(v1_path);
  fs::remove_all(dir);
}

TEST(ReloadTest, CorruptCanaryRejectsCandidateAndKeepsOldModelServing) {
  const core::TimeDrlConfig config = SmallConfig();
  const std::string path_a = SaveV1(config, 42, "reload_corrupt_a.ckpt");
  const std::string path_b = SaveV1(config, 43, "reload_corrupt_b.ckpt");

  std::unique_ptr<InferenceSession> session = OpenSession(path_a, config);
  std::unique_ptr<InferenceSession> fresh_a = OpenSession(path_a, config);
  Tensor x = TestBatch(1, config, /*seed=*/5);
  Embeddings before = session->Encode(x);

  fault::SetSpecForTest("serve_reload_corrupt@1");
  Status status = session->Reload(path_b);
  fault::SetSpecForTest("");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);

  // Nothing was staged: the old model answers bitwise-identically.
  Embeddings after = session->Encode(x);
  EXPECT_EQ(session->reloads_applied(), 0u);
  ExpectBitwise(before.instance, after.instance);
  ExpectBitwise(fresh_a->Encode(x).instance, after.instance);

  // A later clean reload of the same file succeeds.
  EXPECT_TRUE(session->Reload(path_b).ok());
  (void)session->Encode(x);
  EXPECT_EQ(session->reloads_applied(), 1u);

  fs::remove(path_a);
  fs::remove(path_b);
}

TEST(ReloadTest, UnreadableCheckpointReturnsLoaderErrorAndKeepsServing) {
  const core::TimeDrlConfig config = SmallConfig();
  const std::string path = SaveV1(config, 42, "reload_missing_base.ckpt");
  std::unique_ptr<InferenceSession> session = OpenSession(path, config);

  Tensor x = TestBatch(1, config, /*seed=*/5);
  Embeddings before = session->Encode(x);
  Status status =
      session->Reload(::testing::TempDir() + "reload_does_not_exist.ckpt");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(session->reloads_applied(), 0u);
  ExpectBitwise(before.instance, session->Encode(x).instance);
  fs::remove(path);
}

}  // namespace
}  // namespace timedrl::serve
