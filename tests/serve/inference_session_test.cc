// serve::InferenceSession contracts:
//  1. Checkpoint round-trip: embeddings from a frozen session are bitwise
//     identical to those of a trainer-side model holding the same weights —
//     for v1 parameter-only files and for v2 full training checkpoints
//     written (and resumed) by the real pre-training loop.
//  2. Steady state after warmup is allocation-free and graph-free: repeated
//     encodes of planned batch shapes cause zero pool misses and create
//     zero autograd nodes.
//  3. Unplanned batch sizes are padded up to a planned shape and sliced
//     back, matching the unpadded encode bitwise.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "core/model.h"
#include "core/pretrainer.h"
#include "core/sources.h"
#include "data/synthetic.h"
#include "data/windows.h"
#include "nn/serialize.h"
#include "obs/metrics.h"
#include "serve/inference_session.h"
#include "tensor/buffer_pool.h"
#include "util/rng.h"

namespace timedrl::serve {
namespace {

namespace fs = std::filesystem;

core::TimeDrlConfig SmallConfig() {
  core::TimeDrlConfig config;
  config.input_channels = 2;
  config.input_length = 16;
  config.patch_length = 4;
  config.patch_stride = 4;
  config.d_model = 8;
  config.num_heads = 2;
  config.ff_dim = 16;
  config.num_layers = 1;
  return config;
}

Tensor TestBatch(int64_t batch, const core::TimeDrlConfig& config,
                 uint64_t seed) {
  Rng rng(seed);
  return Tensor::Randn({batch, config.input_length, config.input_channels},
                       rng);
}

void ExpectBitwise(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  for (int64_t i = 0; i < a.numel(); ++i) {
    ASSERT_EQ(a.data()[i], b.data()[i]) << "element " << i;
  }
}

TEST(InferenceSessionTest, V1RoundTripMatchesTrainerBitwise) {
  const core::TimeDrlConfig config = SmallConfig();
  Rng rng(42);
  core::TimeDrlModel trained(config, rng);
  const std::string path = ::testing::TempDir() + "serve_v1.ckpt";
  ASSERT_TRUE(nn::SaveParameters(trained, path).ok());

  InferenceSessionConfig session_config;
  session_config.model = config;
  session_config.planned_batch_sizes = {1, 4};
  std::unique_ptr<InferenceSession> session;
  ASSERT_TRUE(InferenceSession::Open(path, session_config, &session).ok());

  // Trainer-side reference: same weights, eval mode.
  trained.Eval();
  Tensor x = TestBatch(4, config, /*seed=*/5);
  core::TimeDrlModel::Encoded expected = trained.Encode(x);
  Embeddings actual = session->Encode(x);

  ExpectBitwise(expected.instance, actual.instance);
  ExpectBitwise(expected.timestamp, actual.timestamp);
  fs::remove(path);
}

TEST(InferenceSessionTest, V2RoundTripMatchesResumedTrainerBitwise) {
  const std::string dir = ::testing::TempDir() + "serve_v2_ckpts";
  fs::remove_all(dir);
  core::TimeDrlConfig config = SmallConfig();
  config.input_channels = 1;  // channel-independent training below

  // Real pre-training run that writes v2 checkpoints every epoch.
  Rng data_rng(1);
  data::TimeSeries series = data::MakeEttLike(200, 24, 1, data_rng);
  data::ForecastingWindows windows(series, config.input_length, 0, 4);
  core::ForecastingSource source(&windows, /*channel_independent=*/true);
  Rng model_rng(7);
  core::TimeDrlModel model(config, model_rng);
  core::PretrainConfig pretrain;
  pretrain.train.epochs = 2;
  pretrain.train.batch_size = 8;
  pretrain.train.checkpoint.directory = dir;
  Rng train_rng(99);
  core::Pretrain(&model, source, pretrain, train_rng);

  core::CheckpointManager manager(dir);
  std::vector<std::string> checkpoints = manager.ListCheckpoints();
  ASSERT_FALSE(checkpoints.empty());

  // Resumed trainer: a fresh model restored through LoadLatest.
  Rng resumed_rng(8);
  core::TimeDrlModel resumed(config, resumed_rng);
  core::TrainingState state;
  ASSERT_TRUE(manager.LoadLatest(&resumed, &state).ok());
  resumed.Eval();

  // Frozen session on the newest checkpoint file (a v2 file).
  InferenceSessionConfig session_config;
  session_config.model = config;
  session_config.planned_batch_sizes = {1, 4};
  std::unique_ptr<InferenceSession> session;
  ASSERT_TRUE(
      InferenceSession::Open(checkpoints.back(), session_config, &session)
          .ok());

  Tensor x = TestBatch(4, config, /*seed=*/6);
  core::TimeDrlModel::Encoded expected = resumed.Encode(x);
  Embeddings actual = session->Encode(x);
  ExpectBitwise(expected.instance, actual.instance);
  ExpectBitwise(expected.timestamp, actual.timestamp);
  fs::remove_all(dir);
}

TEST(InferenceSessionTest, SteadyStateIsAllocationFreeAndGraphFree) {
  pool::SetEnabled(true);
  const core::TimeDrlConfig config = SmallConfig();
  Rng rng(42);
  core::TimeDrlModel trained(config, rng);
  const std::string path = ::testing::TempDir() + "serve_steady.ckpt";
  ASSERT_TRUE(nn::SaveParameters(trained, path).ok());

  InferenceSessionConfig session_config;
  session_config.model = config;
  session_config.planned_batch_sizes = {1, 4, 8};
  std::unique_ptr<InferenceSession> session;
  ASSERT_TRUE(InferenceSession::Open(path, session_config, &session).ok());

  // One post-warmup round with the exact request tensors, then the counters
  // must not move again.
  std::vector<Tensor> inputs;
  for (int64_t b : session_config.planned_batch_sizes) {
    inputs.push_back(TestBatch(b, config, /*seed=*/10 + b));
  }
  for (const Tensor& x : inputs) (void)session->Encode(x);

  const uint64_t misses_before =
      obs::Registry::Global().Snapshot().CounterValue("pool.misses");
  const int64_t nodes_before = GraphNodesCreated();
  for (int round = 0; round < 5; ++round) {
    for (const Tensor& x : inputs) {
      Embeddings embeddings = session->Encode(x);
      ASSERT_TRUE(embeddings.instance.defined());
    }
  }
  const uint64_t misses_after =
      obs::Registry::Global().Snapshot().CounterValue("pool.misses");
  EXPECT_EQ(misses_after, misses_before)
      << "steady-state encodes must not allocate";
  EXPECT_EQ(GraphNodesCreated(), nodes_before)
      << "inference encodes must not create autograd nodes";
  fs::remove(path);
}

TEST(InferenceSessionTest, UnplannedBatchIsPaddedAndSlicedCorrectly) {
  const core::TimeDrlConfig config = SmallConfig();
  Rng rng(42);
  core::TimeDrlModel trained(config, rng);
  const std::string path = ::testing::TempDir() + "serve_pad.ckpt";
  ASSERT_TRUE(nn::SaveParameters(trained, path).ok());

  InferenceSessionConfig session_config;
  session_config.model = config;
  session_config.planned_batch_sizes = {1, 8};
  std::unique_ptr<InferenceSession> session;
  ASSERT_TRUE(InferenceSession::Open(path, session_config, &session).ok());

  // A batch of 3 is padded to 8 internally; each row's embedding must
  // equal the same window encoded alone (instance normalization and the
  // transformer act per sample, so padding rows cannot leak across).
  Tensor batch = TestBatch(3, config, /*seed=*/11);
  Embeddings batched = session->Encode(batch);
  EXPECT_EQ(batched.instance.size(0), 3);
  EXPECT_EQ(batched.timestamp.size(0), 3);

  const int64_t row = config.input_length * config.input_channels;
  for (int64_t i = 0; i < 3; ++i) {
    std::vector<float> window(batch.data().begin() + i * row,
                              batch.data().begin() + (i + 1) * row);
    std::vector<float> single = session->EncodeWindow(window);
    for (int64_t d = 0; d < session->embedding_dim(); ++d) {
      EXPECT_EQ(single[d], batched.instance.at({i, d}))
          << "row " << i << " dim " << d;
    }
  }
  fs::remove(path);
}

TEST(InferenceSessionTest, OpenFailsCleanlyOnMissingFile) {
  InferenceSessionConfig session_config;
  session_config.model = SmallConfig();
  std::unique_ptr<InferenceSession> session;
  Status status = InferenceSession::Open(
      ::testing::TempDir() + "serve_does_not_exist.ckpt", session_config,
      &session);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(session, nullptr);
}

}  // namespace
}  // namespace timedrl::serve
