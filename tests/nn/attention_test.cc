#include "nn/attention.h"

#include <gtest/gtest.h>

#include "nn/transformer.h"
#include "tensor/ops.h"

namespace timedrl::nn {
namespace {

TEST(AttentionTest, PreservesShape) {
  Rng rng(1);
  MultiHeadSelfAttention attention(16, 4, 0.0f, rng);
  Tensor x = Tensor::Randn({2, 5, 16}, rng);
  EXPECT_EQ(attention.Forward(x).shape(), (Shape{2, 5, 16}));
}

TEST(AttentionTest, RejectsIndivisibleHeads) {
  Rng rng(1);
  EXPECT_DEATH(MultiHeadSelfAttention(10, 4, 0.0f, rng), "divisible");
}

TEST(AttentionTest, CausalMaskBlocksFuture) {
  // With causal attention, output at position i must not change when
  // inputs at positions > i change.
  Rng rng(2);
  MultiHeadSelfAttention attention(8, 2, 0.0f, rng, /*causal=*/true);
  attention.Eval();

  Tensor x = Tensor::Randn({1, 6, 8}, rng);
  Tensor y_before = attention.Forward(x);

  Tensor x2 = x.Clone();
  for (int64_t d = 0; d < 8; ++d) x2.at({0, 5, d}) += 100.0f;
  Tensor y_after = attention.Forward(x2);

  for (int64_t t = 0; t < 5; ++t) {
    for (int64_t d = 0; d < 8; ++d) {
      EXPECT_NEAR(y_before.at({0, t, d}), y_after.at({0, t, d}), 1e-4)
          << "position " << t << " leaked future information";
    }
  }
  // The last position must change (sanity that the test has power).
  bool changed = false;
  for (int64_t d = 0; d < 8; ++d) {
    if (std::abs(y_before.at({0, 5, d}) - y_after.at({0, 5, d})) > 1e-3) {
      changed = true;
    }
  }
  EXPECT_TRUE(changed);
}

TEST(AttentionTest, BidirectionalAttendsToFuture) {
  Rng rng(2);
  MultiHeadSelfAttention attention(8, 2, 0.0f, rng, /*causal=*/false);
  attention.Eval();
  Tensor x = Tensor::Randn({1, 4, 8}, rng);
  Tensor y_before = attention.Forward(x);
  Tensor x2 = x.Clone();
  for (int64_t d = 0; d < 8; ++d) x2.at({0, 3, d}) += 100.0f;
  Tensor y_after = attention.Forward(x2);
  // Early positions must change: they can see position 3.
  bool changed = false;
  for (int64_t d = 0; d < 8; ++d) {
    if (std::abs(y_before.at({0, 0, d}) - y_after.at({0, 0, d})) > 1e-3) {
      changed = true;
    }
  }
  EXPECT_TRUE(changed);
}

TEST(AttentionTest, GradientsReachAllProjections) {
  Rng rng(3);
  MultiHeadSelfAttention attention(8, 2, 0.0f, rng);
  Tensor x = Tensor::Randn({2, 3, 8}, rng);
  Sum(attention.Forward(x)).Backward();
  for (const auto& [name, parameter] : attention.NamedParameters()) {
    EXPECT_TRUE(parameter.has_grad()) << name;
  }
}

TEST(TransformerTest, EncoderPreservesShape) {
  Rng rng(4);
  TransformerConfig config;
  config.d_model = 16;
  config.num_heads = 2;
  config.ff_dim = 32;
  config.num_layers = 3;
  config.dropout = 0.0f;
  TransformerEncoder encoder(config, rng);
  Tensor x = Tensor::Randn({2, 7, 16}, rng);
  EXPECT_EQ(encoder.Encode(x).shape(), (Shape{2, 7, 16}));
}

TEST(TransformerTest, DropoutMakesTrainingStochastic) {
  Rng rng(5);
  TransformerConfig config;
  config.d_model = 16;
  config.num_heads = 2;
  config.ff_dim = 32;
  config.num_layers = 1;
  config.dropout = 0.2f;
  TransformerEncoder encoder(config, rng);
  Tensor x = Tensor::Randn({2, 4, 16}, rng);
  Tensor a = encoder.Encode(x);
  Tensor b = encoder.Encode(x);
  EXPECT_NE(a.data(), b.data());
  encoder.Eval();
  Tensor c = encoder.Encode(x);
  Tensor d = encoder.Encode(x);
  EXPECT_EQ(c.data(), d.data());
}

TEST(TransformerTest, CausalVariantIsCausal) {
  Rng rng(6);
  TransformerConfig config;
  config.d_model = 8;
  config.num_heads = 2;
  config.ff_dim = 16;
  config.num_layers = 2;
  config.dropout = 0.0f;
  config.causal = true;
  TransformerEncoder encoder(config, rng);
  encoder.Eval();
  Tensor x = Tensor::Randn({1, 5, 8}, rng);
  Tensor y_before = encoder.Encode(x);
  Tensor x2 = x.Clone();
  for (int64_t d = 0; d < 8; ++d) x2.at({0, 4, d}) = -7.0f;
  Tensor y_after = encoder.Encode(x2);
  for (int64_t t = 0; t < 4; ++t) {
    for (int64_t d = 0; d < 8; ++d) {
      EXPECT_NEAR(y_before.at({0, t, d}), y_after.at({0, t, d}), 1e-4);
    }
  }
}

TEST(TransformerTest, ParameterCountScalesWithLayers) {
  Rng rng(7);
  TransformerConfig one_layer;
  one_layer.d_model = 16;
  one_layer.num_layers = 1;
  TransformerConfig two_layers = one_layer;
  two_layers.num_layers = 2;
  TransformerEncoder a(one_layer, rng);
  TransformerEncoder b(two_layers, rng);
  EXPECT_EQ(b.NumParameters(), 2 * a.NumParameters());
}

}  // namespace
}  // namespace timedrl::nn
