// LSTM, TCN, ResNet backbones and the backbone factory.

#include <gtest/gtest.h>

#include "nn/backbone.h"
#include "nn/conv_encoders.h"
#include "nn/lstm.h"
#include "tensor/ops.h"

namespace timedrl::nn {
namespace {

TEST(LstmTest, OutputShape) {
  Rng rng(1);
  Lstm lstm(4, 6, rng);
  Tensor x = Tensor::Randn({2, 5, 4}, rng);
  EXPECT_EQ(lstm.Forward(x).shape(), (Shape{2, 5, 6}));
}

TEST(LstmTest, ForwardIsCausal) {
  // Hidden state at step t must not depend on inputs after t.
  Rng rng(2);
  Lstm lstm(3, 4, rng);
  Tensor x = Tensor::Randn({1, 6, 3}, rng);
  Tensor y_before = lstm.Forward(x);
  Tensor x2 = x.Clone();
  for (int64_t d = 0; d < 3; ++d) x2.at({0, 5, d}) = 50.0f;
  Tensor y_after = lstm.Forward(x2);
  for (int64_t t = 0; t < 5; ++t) {
    for (int64_t d = 0; d < 4; ++d) {
      EXPECT_FLOAT_EQ(y_before.at({0, t, d}), y_after.at({0, t, d}));
    }
  }
}

TEST(LstmTest, ReverseIsAnticausal) {
  Rng rng(3);
  Lstm lstm(3, 4, rng);
  Tensor x = Tensor::Randn({1, 6, 3}, rng);
  Tensor y_before = lstm.Forward(x, /*reverse=*/true);
  Tensor x2 = x.Clone();
  for (int64_t d = 0; d < 3; ++d) x2.at({0, 0, d}) = 50.0f;
  Tensor y_after = lstm.Forward(x2, /*reverse=*/true);
  // Positions after 0 (in time order) only see the future under reverse, so
  // they are unaffected by a change at t=0.
  for (int64_t t = 1; t < 6; ++t) {
    for (int64_t d = 0; d < 4; ++d) {
      EXPECT_FLOAT_EQ(y_before.at({0, t, d}), y_after.at({0, t, d}));
    }
  }
}

TEST(LstmTest, GradientsFlowThroughTime) {
  Rng rng(4);
  Lstm lstm(2, 3, rng);
  Tensor x = Tensor::Randn({2, 8, 2}, rng, 0.0f, 1.0f, /*requires_grad=*/true);
  Sum(lstm.Forward(x)).Backward();
  EXPECT_TRUE(x.has_grad());
  // The earliest timestep influences all later hidden states.
  float grad_magnitude = 0.0f;
  for (int64_t d = 0; d < 2; ++d) grad_magnitude += std::abs(x.grad()[d]);
  EXPECT_GT(grad_magnitude, 0.0f);
}

TEST(LstmEncoderTest, UniAndBiShapes) {
  Rng rng(5);
  LstmEncoder uni(8, /*bidirectional=*/false, rng);
  LstmEncoder bi(8, /*bidirectional=*/true, rng);
  Tensor x = Tensor::Randn({2, 5, 8}, rng);
  EXPECT_EQ(uni.Encode(x).shape(), (Shape{2, 5, 8}));
  EXPECT_EQ(bi.Encode(x).shape(), (Shape{2, 5, 8}));
}

TEST(LstmEncoderTest, BidirectionalSeesTheFutureUnidirectionalDoesNot) {
  Rng rng(6);
  LstmEncoder uni(8, false, rng);
  LstmEncoder bi(8, true, rng);
  Tensor x = Tensor::Randn({1, 5, 8}, rng);
  Tensor uni_before = uni.Encode(x);
  Tensor bi_before = bi.Encode(x);
  Tensor x2 = x.Clone();
  for (int64_t d = 0; d < 8; ++d) x2.at({0, 4, d}) = 9.0f;
  Tensor uni_after = uni.Encode(x2);
  Tensor bi_after = bi.Encode(x2);

  // First timestep: unchanged for uni, changed for bi.
  float uni_delta = 0.0f;
  float bi_delta = 0.0f;
  for (int64_t d = 0; d < 8; ++d) {
    uni_delta += std::abs(uni_before.at({0, 0, d}) - uni_after.at({0, 0, d}));
    bi_delta += std::abs(bi_before.at({0, 0, d}) - bi_after.at({0, 0, d}));
  }
  EXPECT_FLOAT_EQ(uni_delta, 0.0f);
  EXPECT_GT(bi_delta, 1e-4f);
}

TEST(TcnTest, BlocksAreCausalAndShapePreserving) {
  Rng rng(7);
  TcnBlock block(4, 4, /*kernel=*/3, /*dilation=*/2, /*dropout=*/0.0f, rng);
  block.Eval();
  Tensor x = Tensor::Randn({1, 4, 10}, rng);  // [B, C, L]
  Tensor y_before = block.Forward(x);
  EXPECT_EQ(y_before.shape(), x.shape());

  Tensor x2 = x.Clone();
  for (int64_t c = 0; c < 4; ++c) x2.at({0, c, 9}) = 25.0f;
  Tensor y_after = block.Forward(x2);
  for (int64_t c = 0; c < 4; ++c) {
    for (int64_t l = 0; l < 9; ++l) {
      EXPECT_NEAR(y_before.at({0, c, l}), y_after.at({0, c, l}), 1e-4);
    }
  }
}

TEST(TcnTest, ChannelChangeUsesResidualProjection) {
  Rng rng(8);
  TcnBlock block(3, 6, 3, 1, 0.0f, rng);
  Tensor x = Tensor::Randn({2, 3, 8}, rng);
  EXPECT_EQ(block.Forward(x).shape(), (Shape{2, 6, 8}));
}

TEST(TcnEncoderTest, ShapePreserving) {
  Rng rng(9);
  TcnEncoder encoder(8, /*num_blocks=*/3, /*kernel=*/3, 0.0f, rng);
  Tensor x = Tensor::Randn({2, 12, 8}, rng);
  EXPECT_EQ(encoder.Encode(x).shape(), (Shape{2, 12, 8}));
}

TEST(ResNetTest, BlockAndEncoderShapes) {
  Rng rng(10);
  ResNetBlock1d block(4, 3, rng);
  Tensor x = Tensor::Randn({2, 4, 9}, rng);
  EXPECT_EQ(block.Forward(x).shape(), x.shape());

  ResNetEncoder encoder(8, 2, rng);
  Tensor tokens = Tensor::Randn({2, 6, 8}, rng);
  EXPECT_EQ(encoder.Encode(tokens).shape(), (Shape{2, 6, 8}));
}

TEST(ResNetTest, RequiresOddKernel) {
  Rng rng(10);
  EXPECT_DEATH(ResNetBlock1d(4, 4, rng), "odd kernel");
}

class BackboneFactoryTest : public ::testing::TestWithParam<BackboneKind> {};

TEST_P(BackboneFactoryTest, ProducesShapePreservingEncoder) {
  Rng rng(11);
  BackboneConfig config;
  config.kind = GetParam();
  config.d_model = 16;
  config.num_layers = 2;
  config.num_heads = 2;
  config.ff_dim = 32;
  config.dropout = 0.0f;
  std::unique_ptr<SequenceEncoder> encoder = MakeBackbone(config, rng);
  ASSERT_NE(encoder, nullptr);
  Tensor x = Tensor::Randn({2, 6, 16}, rng);
  EXPECT_EQ(encoder->Encode(x).shape(), (Shape{2, 6, 16}));
  EXPECT_GT(encoder->NumParameters(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    AllBackbones, BackboneFactoryTest,
    ::testing::Values(BackboneKind::kTransformerEncoder,
                      BackboneKind::kTransformerDecoder, BackboneKind::kResNet,
                      BackboneKind::kTcn, BackboneKind::kLstm,
                      BackboneKind::kBiLstm),
    [](const ::testing::TestParamInfo<BackboneKind>& info) {
      std::string name = BackboneName(info.param);
      std::string out;
      for (char c : name) {
        if (c != ' ' && c != '-') out += c;
      }
      return out;
    });

}  // namespace
}  // namespace timedrl::nn
