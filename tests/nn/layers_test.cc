#include "nn/layers.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tensor/ops.h"

namespace timedrl::nn {
namespace {

TEST(LinearTest, ShapesAndBatchedInput) {
  Rng rng(3);
  Linear layer(4, 2, rng);
  Tensor x2d = Tensor::Ones({5, 4});
  EXPECT_EQ(layer.Forward(x2d).shape(), (Shape{5, 2}));
  Tensor x3d = Tensor::Ones({2, 3, 4});
  EXPECT_EQ(layer.Forward(x3d).shape(), (Shape{2, 3, 2}));
  Tensor x1d = Tensor::Ones({4});
  EXPECT_EQ(layer.Forward(x1d).shape(), (Shape{2}));
}

TEST(LinearTest, ComputesAffineMap) {
  Rng rng(3);
  Linear layer(2, 1, rng);
  // Overwrite weights with known values: y = 2*x0 + 3*x1 + 1. Tensor
  // handles share storage, so mutating a copy mutates the layer.
  Tensor weight = layer.weight();
  weight.data() = {2.0f, 3.0f};
  Tensor bias = layer.bias();
  bias.data() = {1.0f};
  Tensor y = layer.Forward(Tensor::FromVector({1, 2}, {10.0f, 100.0f}));
  EXPECT_FLOAT_EQ(y.item(), 2 * 10 + 3 * 100 + 1);
}

TEST(LinearTest, NoBiasOption) {
  Rng rng(3);
  Linear layer(3, 2, rng, /*bias=*/false);
  EXPECT_EQ(layer.Parameters().size(), 1u);
  EXPECT_FALSE(layer.bias().defined());
}

TEST(LinearTest, GradientsFlowToParameters) {
  Rng rng(3);
  Linear layer(3, 2, rng);
  Tensor x = Tensor::Ones({4, 3});
  Sum(layer.Forward(x)).Backward();
  EXPECT_TRUE(layer.weight().has_grad());
  EXPECT_TRUE(layer.bias().has_grad());
  // Bias grad: one per output unit per batch row.
  EXPECT_FLOAT_EQ(layer.bias().grad()[0], 4.0f);
}

TEST(DropoutTest, EvalModeIsIdentity) {
  Rng rng(5);
  Dropout dropout(0.5f, rng);
  dropout.Eval();
  Tensor x = Tensor::Ones({100});
  EXPECT_EQ(dropout.Forward(x).data(), x.data());
}

TEST(DropoutTest, TrainModeDropsAndRescales) {
  Rng rng(5);
  Dropout dropout(0.5f, rng);
  Tensor x = Tensor::Ones({10000});
  Tensor y = dropout.Forward(x);
  int64_t zeros = 0;
  double total = 0;
  for (float v : y.data()) {
    if (v == 0.0f) {
      ++zeros;
    } else {
      EXPECT_FLOAT_EQ(v, 2.0f);  // 1 / (1 - 0.5)
    }
    total += v;
  }
  // Roughly half dropped; mean preserved in expectation.
  EXPECT_NEAR(static_cast<double>(zeros) / 10000.0, 0.5, 0.05);
  EXPECT_NEAR(total / 10000.0, 1.0, 0.1);
}

TEST(DropoutTest, ConsecutiveCallsDiffer) {
  // TimeDRL's two views depend on this property.
  Rng rng(5);
  Dropout dropout(0.3f, rng);
  Tensor x = Tensor::Ones({256});
  Tensor a = dropout.Forward(x);
  Tensor b = dropout.Forward(x);
  EXPECT_NE(a.data(), b.data());
}

TEST(DropoutTest, ZeroProbabilityIsIdentityEvenInTraining) {
  Rng rng(5);
  Dropout dropout(0.0f, rng);
  Tensor x = Tensor::Ones({64});
  EXPECT_EQ(dropout.Forward(x).data(), x.data());
}

TEST(DropoutTest, EvalModeIsDeterministicAndPreservesRngStream) {
  // Eval forwards must be a true no-op: the same handle back (no copy) and
  // no RNG draw, so a train→eval→train sequence produces the same train
  // masks as train→train with the eval call deleted. Serving relies on
  // this for bitwise-reproducible embeddings.
  Rng rng(5);
  Dropout dropout(0.5f, rng);
  Tensor x = Tensor::Ones({256});

  dropout.Eval();
  Tensor a = dropout.Forward(x);
  Tensor b = dropout.Forward(x);
  EXPECT_EQ(a.impl(), x.impl());  // same handle, not merely equal values
  EXPECT_EQ(b.impl(), x.impl());

  // Interleaved eval calls must not advance the RNG stream.
  Rng rng_ref(7);
  Dropout reference(0.5f, rng_ref);
  Tensor first_ref = reference.Forward(x);
  Tensor second_ref = reference.Forward(x);

  Rng rng_mix(7);
  Dropout mixed(0.5f, rng_mix);
  Tensor first_mix = mixed.Forward(x);
  mixed.Eval();
  for (int i = 0; i < 3; ++i) (void)mixed.Forward(x);
  mixed.Train();
  Tensor second_mix = mixed.Forward(x);

  EXPECT_EQ(first_mix.data(), first_ref.data());
  EXPECT_EQ(second_mix.data(), second_ref.data());
}

TEST(LayerNormTest, NormalizesLastDimension) {
  LayerNorm norm(8);
  Rng rng(6);
  Tensor x = Tensor::Randn({4, 8}, rng, 5.0f, 3.0f);
  Tensor y = norm.Forward(x);
  for (int64_t r = 0; r < 4; ++r) {
    double mean = 0;
    double var = 0;
    for (int64_t c = 0; c < 8; ++c) mean += y.at({r, c});
    mean /= 8;
    for (int64_t c = 0; c < 8; ++c) {
      var += (y.at({r, c}) - mean) * (y.at({r, c}) - mean);
    }
    var /= 8;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(LayerNormTest, GammaBetaApplied) {
  LayerNorm norm(2);
  Tensor x = Tensor::FromVector({1, 2}, {-1.0f, 1.0f});
  Tensor base = norm.Forward(x);
  // Scale gamma by 2 and shift beta by 1; output transforms accordingly.
  for (auto& [name, parameter] : norm.NamedParameters()) {
    if (name == "gamma") {
      for (float& v : parameter.data()) v = 2.0f;
    } else {
      for (float& v : parameter.data()) v = 1.0f;
    }
  }
  Tensor scaled = norm.Forward(x);
  for (int64_t i = 0; i < 2; ++i) {
    EXPECT_NEAR(scaled.data()[i], 2.0f * base.data()[i] + 1.0f, 1e-5);
  }
}

TEST(BatchNormTest, TrainingNormalizesBatch) {
  BatchNorm1d bn(2);
  Tensor x = Tensor::FromVector({4, 2}, {1, 10, 2, 20, 3, 30, 4, 40});
  Tensor y = bn.Forward(x);
  for (int64_t c = 0; c < 2; ++c) {
    double mean = 0;
    for (int64_t r = 0; r < 4; ++r) mean += y.at({r, c});
    EXPECT_NEAR(mean / 4.0, 0.0, 1e-5);
  }
}

TEST(BatchNormTest, EvalUsesRunningStatistics) {
  BatchNorm1d bn(1);
  // Feed the same batch several times so running stats converge to it.
  Tensor x = Tensor::FromVector({4, 1}, {1, 2, 3, 4});
  for (int i = 0; i < 50; ++i) bn.Forward(x);
  bn.Eval();
  // In eval, an input equal to the running mean maps close to 0.
  Tensor probe = Tensor::FromVector({1, 1}, {2.5f});
  EXPECT_NEAR(bn.Forward(probe).item(), 0.0f, 0.05f);
}

TEST(BatchNormTest, TrainEvalOutputsDiffer) {
  BatchNorm1d bn(1);
  Tensor warm = Tensor::FromVector({4, 1}, {0, 1, 2, 3});
  bn.Forward(warm);
  Tensor x = Tensor::FromVector({2, 1}, {10.0f, 20.0f});
  Tensor train_out = bn.Forward(x);
  bn.Eval();
  Tensor eval_out = bn.Forward(x);
  EXPECT_NE(train_out.data(), eval_out.data());
}

TEST(PositionalEncodingTest, AddsPerPositionOffsets) {
  Rng rng(7);
  LearnablePositionalEncoding pe(10, 4, rng);
  Tensor zero = Tensor::Zeros({2, 5, 4});
  Tensor y = pe.Forward(zero);
  // Both batch rows receive identical offsets.
  for (int64_t t = 0; t < 5; ++t) {
    for (int64_t d = 0; d < 4; ++d) {
      EXPECT_FLOAT_EQ(y.at({0, t, d}), y.at({1, t, d}));
    }
  }
  // Different positions receive different offsets (with overwhelming
  // probability under random init).
  bool any_differ = false;
  for (int64_t d = 0; d < 4; ++d) {
    if (y.at({0, 0, d}) != y.at({0, 1, d})) any_differ = true;
  }
  EXPECT_TRUE(any_differ);
}

TEST(PositionalEncodingTest, RejectsTooLongSequence) {
  Rng rng(7);
  LearnablePositionalEncoding pe(4, 2, rng);
  Tensor x = Tensor::Zeros({1, 5, 2});
  EXPECT_DEATH(pe.Forward(x), "exceeds max_len");
}

}  // namespace
}  // namespace timedrl::nn
