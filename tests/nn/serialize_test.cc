#include "nn/serialize.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/model.h"
#include "nn/layers.h"
#include "tensor/ops.h"

namespace timedrl::nn {
namespace {

TEST(SerializeTest, RoundTripRestoresExactValues) {
  Rng rng_a(1);
  Linear source(4, 3, rng_a);
  const char* path = "/tmp/timedrl_ckpt_test.bin";
  ASSERT_TRUE(SaveParameters(source, path));

  Rng rng_b(2);
  Linear target(4, 3, rng_b);
  ASSERT_NE(target.weight().data(), source.weight().data());
  ASSERT_TRUE(LoadParameters(&target, path));
  EXPECT_EQ(target.weight().data(), source.weight().data());
  EXPECT_EQ(target.bias().data(), source.bias().data());
  std::remove(path);
}

TEST(SerializeTest, FullTimeDrlModelRoundTrip) {
  core::TimeDrlConfig config;
  config.input_channels = 2;
  config.input_length = 16;
  config.patch_length = 4;
  config.patch_stride = 4;
  config.d_model = 8;
  config.num_heads = 2;
  config.ff_dim = 16;
  config.num_layers = 1;

  Rng rng_a(3);
  core::TimeDrlModel source(config, rng_a);
  const char* path = "/tmp/timedrl_model_ckpt.bin";
  ASSERT_TRUE(SaveParameters(source, path));

  Rng rng_b(4);
  core::TimeDrlModel target(config, rng_b);
  ASSERT_TRUE(LoadParameters(&target, path));

  // Restored model reproduces the source's outputs exactly.
  source.Eval();
  target.Eval();
  Rng data_rng(5);
  Tensor x = Tensor::Randn({3, 16, 2}, data_rng);
  EXPECT_EQ(source.Encode(x).instance.data(),
            target.Encode(x).instance.data());
  std::remove(path);
}

TEST(SerializeTest, RejectsArchitectureMismatch) {
  Rng rng(6);
  Linear source(4, 3, rng);
  const char* path = "/tmp/timedrl_ckpt_mismatch.bin";
  ASSERT_TRUE(SaveParameters(source, path));

  Linear wrong_shape(4, 5, rng);
  Status status = LoadParameters(&wrong_shape, path);
  EXPECT_EQ(status.code(), StatusCode::kStructureMismatch);
  std::remove(path);
}

TEST(SerializeTest, DetectsTruncatedFinalTensor) {
  Rng rng(20);
  Linear source(4, 3, rng);
  const char* path = "/tmp/timedrl_ckpt_truncated.bin";
  ASSERT_TRUE(SaveParameters(source, path));
  // Chop 4 bytes off the last parameter's data: the short read must be
  // caught even though it is the final tensor in the file.
  std::filesystem::resize_file(path,
                               std::filesystem::file_size(path) - 4);

  Linear target(4, 3, rng);
  Status status = LoadParameters(&target, path);
  EXPECT_EQ(status.code(), StatusCode::kCorruptData);
  std::remove(path);
}

TEST(SerializeTest, DetectsTrailingGarbage) {
  Rng rng(21);
  Linear source(4, 3, rng);
  const char* path = "/tmp/timedrl_ckpt_trailing.bin";
  ASSERT_TRUE(SaveParameters(source, path));
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "extra bytes after the last tensor";
  }

  Linear target(4, 3, rng);
  Status status = LoadParameters(&target, path);
  EXPECT_EQ(status.code(), StatusCode::kCorruptData);
  std::remove(path);
}

TEST(SerializeTest, RejectsGarbageFile) {
  const char* path = "/tmp/timedrl_ckpt_garbage.bin";
  {
    std::FILE* f = std::fopen(path, "wb");
    std::fputs("not a checkpoint at all", f);
    std::fclose(f);
  }
  Rng rng(7);
  Linear module(2, 2, rng);
  EXPECT_FALSE(LoadParameters(&module, path));
  std::remove(path);
}

TEST(SerializeTest, MissingFileFails) {
  Rng rng(8);
  Linear module(2, 2, rng);
  Status status = LoadParameters(&module, "/tmp/definitely_missing_ckpt.bin");
  EXPECT_EQ(status.code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace timedrl::nn
