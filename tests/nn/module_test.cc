#include "nn/module.h"

#include <gtest/gtest.h>

#include "nn/layers.h"
#include "tensor/ops.h"

namespace timedrl::nn {
namespace {

class ToyModule : public Module {
 public:
  explicit ToyModule(Rng& rng) : child_(2, 3, rng) {
    weight_ = RegisterParameter("weight",
                                Tensor::Ones({4}, /*requires_grad=*/true));
    RegisterModule("child", &child_);
  }

  Linear child_;
  Tensor weight_;
};

TEST(ModuleTest, CollectsParametersRecursively) {
  Rng rng(1);
  ToyModule module(rng);
  // weight (4) + child weight (2*3) + child bias (3)
  EXPECT_EQ(module.NumParameters(), 4 + 6 + 3);
  EXPECT_EQ(module.Parameters().size(), 3u);
}

TEST(ModuleTest, NamedParametersUseDottedPaths) {
  Rng rng(1);
  ToyModule module(rng);
  std::vector<std::string> names;
  for (const auto& [name, tensor] : module.NamedParameters()) {
    names.push_back(name);
  }
  EXPECT_EQ(names[0], "weight");
  EXPECT_EQ(names[1], "child.weight");
  EXPECT_EQ(names[2], "child.bias");
}

TEST(ModuleTest, TrainEvalPropagatesToChildren) {
  Rng rng(1);
  ToyModule module(rng);
  EXPECT_TRUE(module.training());
  EXPECT_TRUE(module.child_.training());
  module.Eval();
  EXPECT_FALSE(module.training());
  EXPECT_FALSE(module.child_.training());
  module.Train();
  EXPECT_TRUE(module.child_.training());
}

TEST(ModuleTest, ZeroGradClearsAllParameterGrads) {
  Rng rng(1);
  ToyModule module(rng);
  Sum(module.weight_ * 2.0f).Backward();
  ASSERT_TRUE(module.weight_.has_grad());
  EXPECT_FLOAT_EQ(module.weight_.grad()[0], 2.0f);
  module.ZeroGrad();
  EXPECT_FLOAT_EQ(module.weight_.grad()[0], 0.0f);
}

TEST(ModuleTest, CopyParametersFrom) {
  Rng rng_a(1);
  Rng rng_b(2);
  ToyModule source(rng_a);
  ToyModule target(rng_b);
  // Different seeds -> different child weights.
  EXPECT_NE(target.child_.weight().data(), source.child_.weight().data());
  target.CopyParametersFrom(source);
  EXPECT_EQ(target.child_.weight().data(), source.child_.weight().data());
  EXPECT_EQ(target.weight_.data(), source.weight_.data());
  // Deep copy: mutating the source afterwards does not affect the target.
  Tensor w = source.child_.weight();
  w.data()[0] += 1.0f;
  EXPECT_NE(target.child_.weight().data(), source.child_.weight().data());
}

TEST(ModuleDeathTest, ParameterMustRequireGrad) {
  struct Bad : Module {
    Bad() { RegisterParameter("p", Tensor::Ones({1})); }
  };
  EXPECT_DEATH(Bad{}, "must require grad");
}

}  // namespace
}  // namespace timedrl::nn
