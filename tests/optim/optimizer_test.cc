#include "optim/optimizer.h"

#include <cmath>

#include <gtest/gtest.h>

#include "optim/lr_schedule.h"
#include "tensor/ops.h"

namespace timedrl::optim {
namespace {

// Minimizes f(x) = sum((x - target)^2) and returns the final x.
template <typename MakeOptimizer>
Tensor Minimize(MakeOptimizer make, int64_t steps) {
  Tensor x = Tensor::FromVector({2}, {5.0f, -3.0f}, /*requires_grad=*/true);
  Tensor target = Tensor::FromVector({2}, {1.0f, 2.0f});
  auto optimizer = make(std::vector<Tensor>{x});
  for (int64_t i = 0; i < steps; ++i) {
    Tensor diff = x - target;
    Tensor loss = Sum(diff * diff);
    optimizer->ZeroGrad();
    loss.Backward();
    optimizer->Step();
  }
  return x;
}

TEST(SgdTest, ConvergesOnQuadratic) {
  Tensor x = Minimize(
      [](std::vector<Tensor> parameters) {
        return std::make_unique<Sgd>(std::move(parameters), 0.1f);
      },
      100);
  EXPECT_NEAR(x.data()[0], 1.0f, 1e-3);
  EXPECT_NEAR(x.data()[1], 2.0f, 1e-3);
}

TEST(SgdTest, MomentumAcceleratesFirstSteps) {
  // After two steps with momentum, velocity compounds: the parameter moved
  // farther than with plain SGD.
  auto run = [](float momentum) {
    Tensor x = Tensor::Scalar(10.0f, /*requires_grad=*/true);
    Sgd optimizer({x}, 0.01f, momentum);
    for (int i = 0; i < 3; ++i) {
      Tensor loss = Sum(x * x);
      optimizer.ZeroGrad();
      loss.Backward();
      optimizer.Step();
    }
    return x.data()[0];
  };
  EXPECT_LT(run(0.9f), run(0.0f));
}

TEST(AdamTest, ConvergesOnQuadratic) {
  Tensor x = Minimize(
      [](std::vector<Tensor> parameters) {
        return std::make_unique<Adam>(std::move(parameters), 0.3f);
      },
      200);
  EXPECT_NEAR(x.data()[0], 1.0f, 1e-2);
  EXPECT_NEAR(x.data()[1], 2.0f, 1e-2);
}

TEST(AdamWTest, ConvergesOnQuadratic) {
  Tensor x = Minimize(
      [](std::vector<Tensor> parameters) {
        return std::make_unique<AdamW>(std::move(parameters), 0.3f,
                                       /*weight_decay=*/1e-3f);
      },
      200);
  EXPECT_NEAR(x.data()[0], 1.0f, 5e-2);
  EXPECT_NEAR(x.data()[1], 2.0f, 5e-2);
}

TEST(AdamWTest, DecayIsDecoupledFromAdaptiveScaling) {
  // With a large constant gradient, coupled L2 decay gets normalized away by
  // Adam's v-scaling while decoupled decay does not. Compare the shrink of a
  // weight under both when the loss gradient is zero for that weight:
  // decoupled decay still shrinks it; coupled decay does too but through the
  // adaptive scale. Simplest observable: with zero loss-gradient, AdamW step
  // reduces |w| multiplicatively by lr*wd exactly.
  Tensor w = Tensor::Scalar(2.0f, /*requires_grad=*/true);
  AdamW optimizer({w}, /*learning_rate=*/0.1f, /*weight_decay=*/0.5f);
  Tensor loss = Sum(w * 0.0f);  // gradient = 0
  optimizer.ZeroGrad();
  loss.Backward();
  optimizer.Step();
  // w <- w - lr*wd*w = 2 * (1 - 0.05) = 1.9 (Adam term is 0 with zero grad).
  EXPECT_NEAR(w.data()[0], 1.9f, 1e-5);
}

TEST(AdamTest, CoupledDecayDiffersFromDecoupled) {
  Tensor wa = Tensor::Scalar(2.0f, /*requires_grad=*/true);
  Tensor wb = Tensor::Scalar(2.0f, /*requires_grad=*/true);
  Adam coupled({wa}, 0.1f, 0.9f, 0.999f, 1e-8f, /*coupled_weight_decay=*/0.5f);
  AdamW decoupled({wb}, 0.1f, /*weight_decay=*/0.5f);
  for (int i = 0; i < 5; ++i) {
    Tensor loss_a = Sum(wa * 0.0f);
    coupled.ZeroGrad();
    loss_a.Backward();
    coupled.Step();
    Tensor loss_b = Sum(wb * 0.0f);
    decoupled.ZeroGrad();
    loss_b.Backward();
    decoupled.Step();
  }
  EXPECT_NE(wa.data()[0], wb.data()[0]);
}

TEST(OptimizerTest, SkipsParametersWithoutGradients) {
  Tensor used = Tensor::Scalar(1.0f, /*requires_grad=*/true);
  Tensor unused = Tensor::Scalar(1.0f, /*requires_grad=*/true);
  Sgd optimizer({used, unused}, 0.1f);
  Tensor loss = Sum(used * used);
  optimizer.ZeroGrad();
  loss.Backward();
  optimizer.Step();
  EXPECT_NE(used.data()[0], 1.0f);
  EXPECT_FLOAT_EQ(unused.data()[0], 1.0f);
}

TEST(ClipGradNormTest, ScalesLargeGradients) {
  Tensor x = Tensor::FromVector({2}, {3.0f, 4.0f}, /*requires_grad=*/true);
  Sum(x * x).Backward();  // grad = (6, 8), norm 10
  float norm = ClipGradNorm({x}, 5.0f);
  EXPECT_NEAR(norm, 10.0f, 1e-4);
  const float clipped =
      std::sqrt(x.grad()[0] * x.grad()[0] + x.grad()[1] * x.grad()[1]);
  EXPECT_NEAR(clipped, 5.0f, 1e-3);
}

TEST(ClipGradNormTest, LeavesSmallGradientsAlone) {
  Tensor x = Tensor::FromVector({2}, {0.3f, 0.4f}, /*requires_grad=*/true);
  Sum(x * x).Backward();  // norm 1
  ClipGradNorm({x}, 5.0f);
  EXPECT_NEAR(x.grad()[0], 0.6f, 1e-5);
  EXPECT_NEAR(x.grad()[1], 0.8f, 1e-5);
}

TEST(LrScheduleTest, StepDecay) {
  Tensor x = Tensor::Scalar(0.0f, /*requires_grad=*/true);
  Sgd optimizer({x}, 1.0f);
  StepDecaySchedule schedule(&optimizer, /*step_size=*/2, /*gamma=*/0.5f);
  schedule.Step();  // step 1: 1.0 * 0.5^0
  EXPECT_FLOAT_EQ(optimizer.learning_rate(), 1.0f);
  schedule.Step();  // step 2: 0.5
  EXPECT_FLOAT_EQ(optimizer.learning_rate(), 0.5f);
  schedule.Step();
  EXPECT_FLOAT_EQ(optimizer.learning_rate(), 0.5f);
  schedule.Step();  // step 4: 0.25
  EXPECT_FLOAT_EQ(optimizer.learning_rate(), 0.25f);
}

TEST(LrScheduleTest, CosineAnnealsToMinimum) {
  Tensor x = Tensor::Scalar(0.0f, /*requires_grad=*/true);
  Sgd optimizer({x}, 1.0f);
  CosineSchedule schedule(&optimizer, /*total_steps=*/10, /*min_lr=*/0.1f);
  float previous = 1.0f;
  for (int i = 0; i < 10; ++i) {
    schedule.Step();
    EXPECT_LE(optimizer.learning_rate(), previous + 1e-6f);
    previous = optimizer.learning_rate();
  }
  EXPECT_NEAR(optimizer.learning_rate(), 0.1f, 1e-4);
  // Past the end, the learning rate is pinned at the minimum.
  schedule.Step();
  EXPECT_NEAR(optimizer.learning_rate(), 0.1f, 1e-4);
}

}  // namespace
}  // namespace timedrl::optim
