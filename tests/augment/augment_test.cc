#include "augment/augment.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "tensor/tensor.h"

namespace timedrl::augment {
namespace {

Tensor TestBatch() {
  // [2, 8, 2] ramp: distinguishable values everywhere.
  std::vector<float> values(32);
  for (size_t i = 0; i < values.size(); ++i) values[i] = 1.0f + i;
  return Tensor::FromVector({2, 8, 2}, std::move(values));
}

TEST(AugmentTest, NoneIsIdentity) {
  Rng rng(1);
  Tensor x = TestBatch();
  Tensor y = Apply(Kind::kNone, x, AugmentConfig{}, rng);
  EXPECT_EQ(y.data(), x.data());
}

TEST(AugmentTest, JitterPerturbsEveryValueSlightly) {
  Rng rng(2);
  Tensor x = TestBatch();
  Tensor y = Jitter(x, 0.05f, rng);
  int64_t unchanged = 0;
  for (int64_t i = 0; i < x.numel(); ++i) {
    EXPECT_NEAR(y.data()[i], x.data()[i], 0.5f);
    if (y.data()[i] == x.data()[i]) ++unchanged;
  }
  EXPECT_EQ(unchanged, 0);
}

TEST(AugmentTest, ScalingIsPerSampleChannelMultiplicative) {
  Rng rng(3);
  Tensor x = TestBatch();
  Tensor y = Scaling(x, 0.5f, rng);
  // Within one (sample, channel), the ratio y/x is a single constant.
  for (int64_t b = 0; b < 2; ++b) {
    for (int64_t c = 0; c < 2; ++c) {
      const float ratio = y.at({b, 0, c}) / x.at({b, 0, c});
      for (int64_t t = 1; t < 8; ++t) {
        EXPECT_NEAR(y.at({b, t, c}) / x.at({b, t, c}), ratio, 1e-4);
      }
    }
  }
}

TEST(AugmentTest, RotationPermutesChannelsWithSigns) {
  Rng rng(4);
  Tensor x = TestBatch();
  Tensor y = Rotation(x, rng);
  // Every output channel equals +-(some input channel), consistently over t.
  for (int64_t b = 0; b < 2; ++b) {
    for (int64_t c = 0; c < 2; ++c) {
      bool matched = false;
      for (int64_t source = 0; source < 2 && !matched; ++source) {
        for (float sign : {1.0f, -1.0f}) {
          bool all = true;
          for (int64_t t = 0; t < 8; ++t) {
            if (std::abs(y.at({b, t, c}) - sign * x.at({b, t, source})) >
                1e-5) {
              all = false;
              break;
            }
          }
          if (all) matched = true;
        }
      }
      EXPECT_TRUE(matched) << "sample " << b << " channel " << c;
    }
  }
}

TEST(AugmentTest, PermutationPreservesMultisetOfValues) {
  Rng rng(5);
  Tensor x = TestBatch();
  Tensor y = Permutation(x, 4, rng);
  for (int64_t b = 0; b < 2; ++b) {
    std::vector<float> before;
    std::vector<float> after;
    for (int64_t t = 0; t < 8; ++t) {
      for (int64_t c = 0; c < 2; ++c) {
        before.push_back(x.at({b, t, c}));
        after.push_back(y.at({b, t, c}));
      }
    }
    std::sort(before.begin(), before.end());
    std::sort(after.begin(), after.end());
    EXPECT_EQ(before, after);
  }
}

TEST(AugmentTest, PermutationReordersTime) {
  Rng rng(6);
  Tensor x = TestBatch();
  bool any_moved = false;
  for (int attempt = 0; attempt < 5 && !any_moved; ++attempt) {
    Tensor y = Permutation(x, 4, rng);
    if (y.data() != x.data()) any_moved = true;
  }
  EXPECT_TRUE(any_moved);
}

TEST(AugmentTest, MaskingZeroesWholeTimesteps) {
  Rng rng(7);
  Tensor x = TestBatch();
  Tensor y = Masking(x, 0.4f, rng);
  int64_t masked = 0;
  for (int64_t b = 0; b < 2; ++b) {
    for (int64_t t = 0; t < 8; ++t) {
      const bool zero0 = y.at({b, t, 0}) == 0.0f;
      const bool zero1 = y.at({b, t, 1}) == 0.0f;
      EXPECT_EQ(zero0, zero1) << "masking must zero all channels at once";
      if (zero0) ++masked;
    }
  }
  EXPECT_GT(masked, 0);
  EXPECT_LT(masked, 16);
}

TEST(AugmentTest, CroppingZeroesMarginsOnly) {
  Rng rng(8);
  Tensor x = TestBatch();
  Tensor y = Cropping(x, 0.5f, rng);
  for (int64_t b = 0; b < 2; ++b) {
    // Zeros form a (possibly empty) prefix and suffix.
    int64_t first_nonzero = 8;
    int64_t last_nonzero = -1;
    for (int64_t t = 0; t < 8; ++t) {
      if (y.at({b, t, 0}) != 0.0f) {
        first_nonzero = std::min(first_nonzero, t);
        last_nonzero = std::max(last_nonzero, t);
      }
    }
    for (int64_t t = first_nonzero; t <= last_nonzero; ++t) {
      EXPECT_NE(y.at({b, t, 0}), 0.0f) << "hole inside the kept region";
    }
  }
}

TEST(AugmentTest, AllKindsRoundTripThroughApplyAndNames) {
  Rng rng(9);
  Tensor x = TestBatch();
  AugmentConfig config;
  for (Kind kind : AllKinds()) {
    Tensor y = Apply(kind, x, config, rng);
    EXPECT_EQ(y.shape(), x.shape()) << KindName(kind);
    EXPECT_FALSE(KindName(kind).empty());
  }
  EXPECT_EQ(AllKinds().size(), 7u);
  EXPECT_EQ(KindName(Kind::kRotation), "Rotation");
}

}  // namespace
}  // namespace timedrl::augment
