// TimeDRL model internals: CLS wiring, disentangled losses, stop-gradient,
// dropout views, pooling strategies.

#include "core/model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.h"

namespace timedrl::core {
namespace {

TimeDrlConfig SmallConfig() {
  TimeDrlConfig config;
  config.input_channels = 3;
  config.input_length = 16;
  config.patch_length = 4;
  config.patch_stride = 4;
  config.d_model = 8;
  config.num_heads = 2;
  config.ff_dim = 16;
  config.num_layers = 1;
  config.dropout = 0.1f;
  return config;
}

TEST(TimeDrlConfigTest, DerivedQuantities) {
  TimeDrlConfig config = SmallConfig();
  EXPECT_EQ(config.token_dim(), 12);  // C * P = 3 * 4
  EXPECT_EQ(config.num_patches(), 4);
  config.patch_stride = 2;
  EXPECT_EQ(config.num_patches(), 7);  // overlapping patches
}

TEST(TimeDrlModelTest, EncodeShapes) {
  Rng rng(1);
  TimeDrlModel model(SmallConfig(), rng);
  model.Eval();
  Tensor x = Tensor::Randn({5, 16, 3}, rng);
  TimeDrlModel::Encoded encoded = model.Encode(x);
  EXPECT_EQ(encoded.instance.shape(), (Shape{5, 8}));
  EXPECT_EQ(encoded.timestamp.shape(), (Shape{5, 4, 8}));
  EXPECT_EQ(encoded.mean.shape(), (Shape{5, 1, 3}));
  EXPECT_EQ(encoded.std_dev.shape(), (Shape{5, 1, 3}));
}

TEST(TimeDrlModelTest, EvalEncodingIsDeterministic) {
  Rng rng(2);
  TimeDrlModel model(SmallConfig(), rng);
  model.Eval();
  Tensor x = Tensor::Randn({2, 16, 3}, rng);
  Tensor a = model.Encode(x).instance;
  Tensor b = model.Encode(x).instance;
  EXPECT_EQ(a.data(), b.data());
}

TEST(TimeDrlModelTest, TrainEncodingVariesThroughDropout) {
  Rng rng(3);
  TimeDrlModel model(SmallConfig(), rng);
  model.Train();
  Tensor x = Tensor::Randn({2, 16, 3}, rng);
  Tensor a = model.Encode(x).instance;
  Tensor b = model.Encode(x).instance;
  EXPECT_NE(a.data(), b.data());
}

TEST(TimeDrlModelTest, InstanceEmbeddingDependsOnInput) {
  Rng rng(4);
  TimeDrlModel model(SmallConfig(), rng);
  model.Eval();
  Tensor x1 = Tensor::Randn({1, 16, 3}, rng);
  Tensor x2 = Tensor::Randn({1, 16, 3}, rng);
  EXPECT_NE(model.Encode(x1).instance.data(),
            model.Encode(x2).instance.data());
}

TEST(TimeDrlModelTest, PretextStepProducesFiniteDisentangledLosses) {
  Rng rng(5);
  TimeDrlModel model(SmallConfig(), rng);
  Tensor x = Tensor::Randn({4, 16, 3}, rng);
  TimeDrlModel::PretextOutput output = model.PretextStep(x);
  EXPECT_TRUE(std::isfinite(output.total.item()));
  EXPECT_TRUE(std::isfinite(output.predictive.item()));
  EXPECT_TRUE(std::isfinite(output.contrastive.item()));
  // Contrastive loss is a negative mean cosine similarity: in [-1, 1].
  EXPECT_GE(output.contrastive.item(), -1.0f - 1e-5f);
  EXPECT_LE(output.contrastive.item(), 1.0f + 1e-5f);
  // Predictive loss is an MSE: non-negative.
  EXPECT_GE(output.predictive.item(), 0.0f);
}

TEST(TimeDrlModelTest, LambdaScalesContrastiveTerm) {
  Rng rng(6);
  TimeDrlConfig config = SmallConfig();
  config.dropout = 0.0f;  // deterministic views so losses are comparable
  config.lambda_weight = 2.0f;
  TimeDrlModel model(config, rng);
  Tensor x = Tensor::Randn({4, 16, 3}, rng);
  TimeDrlModel::PretextOutput output = model.PretextStep(x);
  EXPECT_NEAR(output.total.item(),
              output.predictive.item() + 2.0f * output.contrastive.item(),
              1e-5f);
}

TEST(TimeDrlModelTest, PretextStepRequiresTrainingMode) {
  Rng rng(7);
  TimeDrlModel model(SmallConfig(), rng);
  model.Eval();
  Tensor x = Tensor::Randn({4, 16, 3}, rng);
  EXPECT_DEATH(model.PretextStep(x), "training mode");
}

TEST(TimeDrlModelTest, LossesAreDisentangledAcrossHeads) {
  // Disentanglement (paper Section IV): each pretext loss optimizes its own
  // head. L_P must send no gradient into the contrastive head c, and L_C
  // must send no gradient into the predictive head p. (Both still update
  // the shared encoder — including the [CLS] token via attention.)
  Rng rng(8);
  TimeDrlModel model(SmallConfig(), rng);
  Tensor x = Tensor::Randn({4, 16, 3}, rng);

  auto head_grad_magnitude = [&](const std::string& prefix) {
    double total = 0.0;
    for (const auto& [name, parameter] : model.NamedParameters()) {
      if (name.rfind(prefix, 0) == 0 && parameter.has_grad()) {
        for (float g : parameter.grad()) total += std::abs(g);
      }
    }
    return total;
  };

  TimeDrlModel::PretextOutput predictive_pass = model.PretextStep(x);
  model.ZeroGrad();
  predictive_pass.predictive.Backward();
  EXPECT_EQ(head_grad_magnitude("contrastive_"), 0.0);
  EXPECT_GT(head_grad_magnitude("predictive_head"), 0.0);

  TimeDrlModel::PretextOutput contrastive_pass = model.PretextStep(x);
  model.ZeroGrad();
  contrastive_pass.contrastive.Backward();
  EXPECT_EQ(head_grad_magnitude("predictive_head"), 0.0);
  EXPECT_GT(head_grad_magnitude("contrastive_"), 0.0);
}

TEST(TimeDrlModelTest, ContrastiveLossDoesTrainClsToken) {
  Rng rng(9);
  TimeDrlModel model(SmallConfig(), rng);
  Tensor x = Tensor::Randn({4, 16, 3}, rng);
  TimeDrlModel::PretextOutput output = model.PretextStep(x);
  model.ZeroGrad();
  output.contrastive.Backward();
  bool cls_has_nonzero_grad = false;
  for (const auto& [name, parameter] : model.NamedParameters()) {
    if (name == "cls_token" && parameter.has_grad()) {
      for (float g : parameter.grad()) {
        if (g != 0.0f) cls_has_nonzero_grad = true;
      }
    }
  }
  EXPECT_TRUE(cls_has_nonzero_grad);
}

TEST(TimeDrlModelTest, PoolingShapes) {
  Rng rng(10);
  TimeDrlModel model(SmallConfig(), rng);
  model.Eval();
  Tensor x = Tensor::Randn({3, 16, 3}, rng);
  TimeDrlModel::Encoded encoded = model.Encode(x);
  EXPECT_EQ(model.PooledInstance(encoded, Pooling::kCls).shape(),
            (Shape{3, 8}));
  EXPECT_EQ(model.PooledInstance(encoded, Pooling::kLast).shape(),
            (Shape{3, 8}));
  EXPECT_EQ(model.PooledInstance(encoded, Pooling::kGap).shape(),
            (Shape{3, 8}));
  EXPECT_EQ(model.PooledInstance(encoded, Pooling::kAll).shape(),
            (Shape{3, 32}));
  EXPECT_EQ(model.PooledDim(Pooling::kCls), 8);
  EXPECT_EQ(model.PooledDim(Pooling::kAll), 32);
}

TEST(TimeDrlModelTest, PoolingSemantics) {
  Rng rng(11);
  TimeDrlModel model(SmallConfig(), rng);
  model.Eval();
  Tensor x = Tensor::Randn({2, 16, 3}, rng);
  TimeDrlModel::Encoded encoded = model.Encode(x);
  Tensor last = model.PooledInstance(encoded, Pooling::kLast);
  Tensor gap = model.PooledInstance(encoded, Pooling::kGap);
  // Last equals the final timestamp row.
  for (int64_t d = 0; d < 8; ++d) {
    EXPECT_FLOAT_EQ(last.at({0, d}), encoded.timestamp.at({0, 3, d}));
  }
  // GAP equals the mean over timestamps.
  for (int64_t d = 0; d < 8; ++d) {
    float mean = 0;
    for (int64_t t = 0; t < 4; ++t) mean += encoded.timestamp.at({0, t, d});
    EXPECT_NEAR(gap.at({0, d}), mean / 4.0f, 1e-5f);
  }
}

TEST(NegativeCosineTest, HandValues) {
  Tensor a = Tensor::FromVector({1, 2}, {1.0f, 0.0f});
  Tensor b = Tensor::FromVector({1, 2}, {1.0f, 0.0f});
  EXPECT_NEAR(NegativeCosineSimilarity(a, b).item(), -1.0f, 1e-4f);
  Tensor c = Tensor::FromVector({1, 2}, {-1.0f, 0.0f});
  EXPECT_NEAR(NegativeCosineSimilarity(a, c).item(), 1.0f, 1e-4f);
  Tensor d = Tensor::FromVector({1, 2}, {0.0f, 1.0f});
  EXPECT_NEAR(NegativeCosineSimilarity(a, d).item(), 0.0f, 1e-4f);
}

TEST(NegativeCosineTest, ScaleInvariant) {
  Rng rng(12);
  Tensor a = Tensor::Randn({4, 8}, rng);
  Tensor b = Tensor::Randn({4, 8}, rng);
  const float base = NegativeCosineSimilarity(a, b).item();
  EXPECT_NEAR(NegativeCosineSimilarity(a * 5.0f, b * 0.2f).item(), base,
              1e-4f);
}

TEST(StopGradientTest, BlocksTargetBranchGradients) {
  // With stop_gradient on, the contrastive target is detached: backprop of
  // L_C1 = -cos(p1, sg(z2)) sends no gradient through the z2 branch. We
  // check the aggregate effect: gradients still reach encoder parameters
  // (through the prediction branch) in both settings, but the computation
  // differs — verify by comparing grads with/without SG on identical
  // dropout-free models.
  Rng rng_a(13);
  Rng rng_b(13);
  TimeDrlConfig config = SmallConfig();
  config.dropout = 0.0f;
  config.stop_gradient = true;
  TimeDrlModel with_sg(config, rng_a);
  config.stop_gradient = false;
  TimeDrlModel without_sg(config, rng_b);

  Rng data_rng(14);
  Tensor x = Tensor::Randn({4, 16, 3}, data_rng);

  with_sg.ZeroGrad();
  with_sg.PretextStep(x).contrastive.Backward();
  without_sg.ZeroGrad();
  without_sg.PretextStep(x).contrastive.Backward();

  // Same initialization (same seed) but different gradient paths.
  auto grads = [](TimeDrlModel& model) {
    double total = 0.0;
    for (const Tensor& parameter : model.Parameters()) {
      if (!parameter.has_grad()) continue;
      for (float g : parameter.grad()) total += std::abs(g);
    }
    return total;
  };
  const double g_with = grads(with_sg);
  const double g_without = grads(without_sg);
  EXPECT_GT(g_with, 0.0);
  EXPECT_GT(g_without, 0.0);
  EXPECT_NE(g_with, g_without);
}

TEST(TimeDrlModelTest, EvalEncodeIsGraphFreeByConstruction) {
  // Encode/ReconstructionError install an InferenceModeGuard when the model
  // is in eval mode, so a frozen model builds zero autograd state even
  // though its parameters require grad — no caller-side NoGradGuard needed.
  Rng rng(21);
  TimeDrlModel model(SmallConfig(), rng);
  model.Eval();
  Tensor x = Tensor::Randn({3, 16, 3}, rng);

  const int64_t before = GraphNodesCreated();
  TimeDrlModel::Encoded encoded = model.Encode(x);
  Tensor error = model.ReconstructionError(x);
  EXPECT_EQ(GraphNodesCreated(), before);
  EXPECT_FALSE(encoded.instance.requires_grad());
  EXPECT_TRUE(encoded.instance.impl()->parents.empty());
  EXPECT_FALSE(error.requires_grad());

  // Back in training mode the same calls must record again — the guard is
  // conditional on training(), not unconditional.
  model.Train();
  EXPECT_EQ(GraphNodesCreated(), before);
  Tensor recorded = model.Encode(x).instance;
  EXPECT_GT(GraphNodesCreated(), before);
  EXPECT_TRUE(recorded.requires_grad());
}

}  // namespace
}  // namespace timedrl::core
