// Downstream pipelines: shapes, de-normalization, frozen-vs-finetuned
// behavior, and the pre-training loop.

#include "core/pipelines.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/pretrainer.h"
#include "core/sources.h"
#include "data/synthetic.h"
#include "data/windows.h"
#include "tensor/ops.h"

namespace timedrl::core {
namespace {

TimeDrlConfig CiConfig() {
  TimeDrlConfig config;
  config.input_channels = 1;
  config.input_length = 16;
  config.patch_length = 4;
  config.patch_stride = 4;
  config.d_model = 8;
  config.num_heads = 2;
  config.ff_dim = 16;
  config.num_layers = 1;
  return config;
}

data::TimeSeries SineSeries(int64_t length, int64_t channels) {
  data::TimeSeries series(length, channels);
  for (int64_t t = 0; t < length; ++t) {
    for (int64_t c = 0; c < channels; ++c) {
      series.at(t, c) = std::sin(0.3f * t + c) + 0.1f * c;
    }
  }
  return series;
}

TEST(ForecastingPipelineTest, PredictShape) {
  Rng rng(1);
  TimeDrlModel model(CiConfig(), rng);
  model.Eval();
  ForecastingPipeline pipeline(&model, /*horizon=*/4, /*channels=*/3,
                               /*channel_independent=*/true, rng);
  Tensor x = Tensor::Randn({5, 16, 3}, rng);
  Tensor prediction = pipeline.Predict(x, /*with_grad=*/false);
  EXPECT_EQ(prediction.shape(), (Shape{5, 4, 3}));
}

TEST(ForecastingPipelineTest, PredictionsAreDenormalized) {
  // An untrained head outputs near-zero in normalized space; after RevIN
  // de-normalization predictions should sit near the input window's mean,
  // not near zero — here windows have a large offset.
  Rng rng(2);
  TimeDrlModel model(CiConfig(), rng);
  model.Eval();
  ForecastingPipeline pipeline(&model, 4, 1, true, rng);
  Tensor x = Tensor::Full({2, 16, 1}, 100.0f);
  // Add tiny variation so instance-norm std is well-defined.
  for (int64_t t = 0; t < 16; ++t) x.at({0, t, 0}) += 0.01f * t;
  for (int64_t t = 0; t < 16; ++t) x.at({1, t, 0}) += 0.02f * t;
  Tensor prediction = pipeline.Predict(x, false);
  for (float v : prediction.data()) {
    EXPECT_NEAR(v, 100.0f, 10.0f);
  }
}

TEST(ForecastingPipelineTest, LinearEvalFreezesEncoder) {
  Rng rng(3);
  TimeDrlModel model(CiConfig(), rng);
  std::vector<std::vector<float>> before;
  for (const Tensor& parameter : model.Parameters()) {
    before.push_back(parameter.data());
  }

  data::TimeSeries series = SineSeries(120, 3);
  data::ForecastingWindows train(series, 16, 4, 2);
  ForecastingPipeline pipeline(&model, 4, 3, true, rng);
  DownstreamConfig config;
  config.train.epochs = 2;
  config.train.batch_size = 8;
  pipeline.Train(train, config, rng);

  std::vector<Tensor> after = model.Parameters();
  for (size_t i = 0; i < after.size(); ++i) {
    EXPECT_EQ(after[i].data(), before[i]) << "encoder changed in linear eval";
  }
}

TEST(ForecastingPipelineTest, FineTuneUpdatesEncoder) {
  Rng rng(4);
  TimeDrlModel model(CiConfig(), rng);
  std::vector<std::vector<float>> before;
  for (const Tensor& parameter : model.Parameters()) {
    before.push_back(parameter.data());
  }

  data::TimeSeries series = SineSeries(120, 3);
  data::ForecastingWindows train(series, 16, 4, 2);
  ForecastingPipeline pipeline(&model, 4, 3, true, rng);
  DownstreamConfig config;
  config.train.epochs = 2;
  config.train.batch_size = 8;
  config.fine_tune_encoder = true;
  pipeline.Train(train, config, rng);

  bool any_changed = false;
  std::vector<Tensor> after = model.Parameters();
  for (size_t i = 0; i < after.size(); ++i) {
    if (after[i].data() != before[i]) any_changed = true;
  }
  EXPECT_TRUE(any_changed);
}

TEST(ForecastingPipelineTest, LearnsPredictableSignal) {
  // A clean sinusoid is learnable even by the tiny test model: fine-tuned
  // MSE must be far below the signal variance (~0.5).
  Rng rng(5);
  TimeDrlModel model(CiConfig(), rng);
  data::TimeSeries series = SineSeries(300, 2);
  data::ForecastingWindows train(series, 16, 4, 1);
  ForecastingPipeline pipeline(&model, 4, 2, true, rng);
  DownstreamConfig config;
  config.train.epochs = 10;
  config.train.batch_size = 16;
  config.fine_tune_encoder = true;
  pipeline.Train(train, config, rng);
  ForecastMetrics metrics = pipeline.Evaluate(train);
  EXPECT_LT(metrics.mse, 0.2);
}

TEST(ClassificationPipelineTest, LogitsShapeAndPredictions) {
  Rng rng(6);
  TimeDrlConfig config = CiConfig();
  config.input_channels = 2;
  TimeDrlModel model(config, rng);
  model.Eval();
  ClassificationPipeline pipeline(&model, /*num_classes=*/4, Pooling::kCls,
                                  rng);
  Tensor x = Tensor::Randn({5, 16, 2}, rng);
  EXPECT_EQ(pipeline.Logits(x, false).shape(), (Shape{5, 4}));
}

TEST(ClassificationPipelineTest, EvaluateReportsAllThreeMetrics) {
  Rng rng(7);
  data::ClassificationDataset dataset = data::MakePenDigitsLike(100, rng);
  TimeDrlConfig config;
  config.input_channels = 2;
  config.input_length = 8;
  config.patch_length = 2;
  config.patch_stride = 2;
  config.d_model = 8;
  config.num_heads = 2;
  config.ff_dim = 16;
  config.num_layers = 1;
  TimeDrlModel model(config, rng);
  ClassificationPipeline pipeline(&model, dataset.num_classes, Pooling::kCls,
                                  rng);
  DownstreamConfig downstream;
  downstream.train.epochs = 5;
  downstream.train.batch_size = 16;
  downstream.fine_tune_encoder = true;
  pipeline.Train(dataset, downstream, rng);
  ClassificationMetrics metrics = pipeline.Evaluate(dataset);
  EXPECT_GE(metrics.accuracy, 0.0);
  EXPECT_LE(metrics.accuracy, 1.0);
  EXPECT_GE(metrics.macro_f1, 0.0);
  EXPECT_LE(metrics.macro_f1, 1.0);
  EXPECT_GE(metrics.kappa, -1.0);
  EXPECT_LE(metrics.kappa, 1.0);
  EXPECT_EQ(pipeline.Predict(dataset).size(), 100u);
}

TEST(PretrainerTest, LossesDecreaseAndModelEndsInEval) {
  Rng rng(8);
  data::TimeSeries series = SineSeries(240, 3);
  data::ForecastingWindows windows(series, 16, 0, 2);
  ForecastingSource source(&windows, /*channel_independent=*/true);

  TimeDrlModel model(CiConfig(), rng);
  PretrainConfig config;
  config.train.epochs = 4;
  config.train.batch_size = 16;
  PretrainHistory history = Pretrain(&model, source, config, rng);
  ASSERT_EQ(history.total.size(), 4u);
  EXPECT_LT(history.total.back(), history.total.front());
  EXPECT_LT(history.predictive.back(), history.predictive.front());
  EXPECT_LT(history.contrastive.back(), history.contrastive.front());
  EXPECT_FALSE(model.training());
}

TEST(PretrainerTest, AugmentationPathRuns) {
  Rng rng(9);
  data::TimeSeries series = SineSeries(160, 2);
  data::ForecastingWindows windows(series, 16, 0, 2);
  ForecastingSource source(&windows, true);
  TimeDrlModel model(CiConfig(), rng);
  PretrainConfig config;
  config.train.epochs = 2;
  config.train.batch_size = 16;
  config.augmentation = augment::Kind::kJitter;
  PretrainHistory history = Pretrain(&model, source, config, rng);
  EXPECT_TRUE(std::isfinite(history.total.back()));
}

TEST(SourcesTest, ChannelIndependenceExpandsBatch) {
  data::TimeSeries series = SineSeries(60, 3);
  data::ForecastingWindows windows(series, 16, 0, 2);
  ForecastingSource independent(&windows, true);
  ForecastingSource mixed(&windows, false);
  EXPECT_EQ(independent.GetWindows({0, 1}).shape(), (Shape{6, 16, 1}));
  EXPECT_EQ(mixed.GetWindows({0, 1}).shape(), (Shape{2, 16, 3}));
}

}  // namespace
}  // namespace timedrl::core
