// AnomalyGuard state machine (skip -> rollback -> abort) and its
// integration with Pretrain via the pretrain_nan_loss fault-injection
// point, observable through the train.anomaly.* metrics.

#include "core/anomaly_guard.h"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <limits>
#include <memory>
#include <string>

#include "core/checkpoint.h"
#include "core/model.h"
#include "core/pretrainer.h"
#include "core/sources.h"
#include "data/synthetic.h"
#include "data/windows.h"
#include "obs/metrics.h"
#include "util/fault_inject.h"

namespace timedrl::core {
namespace {

namespace fs = std::filesystem;

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr float kInf = std::numeric_limits<float>::infinity();

using Action = AnomalyGuard::Action;

TEST(AnomalyGuardTest, FiniteValuesProceed) {
  AnomalyGuard guard(AnomalyGuardConfig{});
  EXPECT_EQ(guard.CheckValues(0.5, 1.0f), Action::kProceed);
  EXPECT_EQ(guard.consecutive_skips(), 0);
}

TEST(AnomalyGuardTest, SkipsUntilStreakThreshold) {
  AnomalyGuardConfig config;
  config.max_consecutive_skips = 3;
  AnomalyGuard guard(config);
  EXPECT_EQ(guard.CheckValues(kNan, 1.0f), Action::kSkip);
  EXPECT_EQ(guard.CheckValues(kNan, 1.0f), Action::kSkip);
  EXPECT_EQ(guard.CheckValues(kNan, 1.0f), Action::kRollback);
}

TEST(AnomalyGuardTest, FiniteStepResetsTheStreak) {
  AnomalyGuardConfig config;
  config.max_consecutive_skips = 2;
  AnomalyGuard guard(config);
  EXPECT_EQ(guard.CheckValues(kNan, 1.0f), Action::kSkip);
  EXPECT_EQ(guard.CheckValues(0.5, 1.0f), Action::kProceed);
  EXPECT_EQ(guard.CheckValues(kNan, 1.0f), Action::kSkip);  // streak restarted
}

TEST(AnomalyGuardTest, NonFiniteGradNormAloneTriggers) {
  AnomalyGuardConfig config;
  config.max_consecutive_skips = 1;
  AnomalyGuard guard(config);
  EXPECT_EQ(guard.CheckValues(0.5, kInf), Action::kRollback);
}

TEST(AnomalyGuardTest, AbortsWhenRollbackBudgetExhausted) {
  AnomalyGuardConfig config;
  config.max_consecutive_skips = 1;
  config.max_rollbacks = 2;
  AnomalyGuard guard(config);
  EXPECT_EQ(guard.CheckValues(kNan, 1.0f), Action::kRollback);
  guard.OnRollback();
  EXPECT_EQ(guard.CheckValues(kNan, 1.0f), Action::kRollback);
  guard.OnRollback();
  EXPECT_EQ(guard.rollbacks(), 2);
  EXPECT_EQ(guard.CheckValues(kNan, 1.0f), Action::kAbort);
  EXPECT_FALSE(guard.abort_reason().empty());
}

TEST(AnomalyGuardTest, DisabledGuardAlwaysProceeds) {
  AnomalyGuardConfig config;
  config.enabled = false;
  AnomalyGuard guard(config);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(guard.CheckValues(kNan, kInf), Action::kProceed);
  }
}

TEST(AnomalyGuardTest, TensorOverloadScansAllElements) {
  AnomalyGuardConfig config;
  config.max_consecutive_skips = 1;
  AnomalyGuard guard(config);
  Tensor clean = Tensor::Full({4}, 1.0f);
  EXPECT_EQ(guard.Check(clean, 1.0f), Action::kProceed);
  Tensor poisoned = Tensor::Full({4}, 1.0f);
  poisoned.data()[2] = kInf;
  EXPECT_EQ(guard.Check(poisoned, 1.0f), Action::kRollback);
}

TEST(AnomalyGuardTest, TransitionsAreCountedInMetrics) {
  auto& registry = obs::Registry::Global();
  const uint64_t nonfinite_before =
      registry.GetCounter("train.anomaly.nonfinite").value();
  const uint64_t skips_before =
      registry.GetCounter("train.anomaly.skipped_steps").value();
  const uint64_t rollbacks_before =
      registry.GetCounter("train.anomaly.rollbacks").value();
  const uint64_t aborts_before =
      registry.GetCounter("train.anomaly.aborts").value();

  AnomalyGuardConfig config;
  config.max_consecutive_skips = 2;
  config.max_rollbacks = 1;
  AnomalyGuard guard(config);
  EXPECT_EQ(guard.CheckValues(kNan, 1.0f), Action::kSkip);
  EXPECT_EQ(guard.CheckValues(kNan, 1.0f), Action::kRollback);
  guard.OnRollback();
  EXPECT_EQ(guard.CheckValues(kNan, 1.0f), Action::kSkip);
  EXPECT_EQ(guard.CheckValues(kNan, 1.0f), Action::kAbort);

  EXPECT_EQ(registry.GetCounter("train.anomaly.nonfinite").value(),
            nonfinite_before + 4);
  EXPECT_EQ(registry.GetCounter("train.anomaly.skipped_steps").value(),
            skips_before + 2);
  EXPECT_EQ(registry.GetCounter("train.anomaly.rollbacks").value(),
            rollbacks_before + 1);
  EXPECT_EQ(registry.GetCounter("train.anomaly.aborts").value(),
            aborts_before + 1);
}

// ---- Pretrain integration via fault injection -----------------------------------

TimeDrlConfig SmallConfig() {
  TimeDrlConfig config;
  config.input_channels = 1;
  config.input_length = 16;
  config.patch_length = 4;
  config.patch_stride = 4;
  config.d_model = 8;
  config.num_heads = 2;
  config.ff_dim = 16;
  config.num_layers = 1;
  return config;
}

class PretrainAnomalyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = "/tmp/timedrl_anomaly_" +
           std::string(::testing::UnitTest::GetInstance()
                           ->current_test_info()
                           ->name());
    fs::remove_all(dir_);
  }

  void TearDown() override {
    fault::SetSpecForTest("");
    fs::remove_all(dir_);
  }

  PretrainHistory RunPretrain(const PretrainConfig& config,
                              std::unique_ptr<TimeDrlModel>* model_out) {
    Rng rng(42);
    data::TimeSeries series = data::MakeEttLike(220, 24, 1, rng);
    data::ForecastingWindows windows(series, 16, 0, /*stride=*/4);
    ForecastingSource source(&windows, /*channel_independent=*/true);
    Rng model_rng(7);
    *model_out = std::make_unique<TimeDrlModel>(SmallConfig(), model_rng);
    Rng train_rng(99);
    return Pretrain(model_out->get(), source, config, train_rng);
  }

  std::string dir_;
};

TEST_F(PretrainAnomalyTest, InjectedNanSkipsOneStep) {
  const uint64_t skips_before = obs::Registry::Global()
                                    .GetCounter("train.anomaly.skipped_steps")
                                    .value();
  fault::SetSpecForTest("pretrain_nan_loss@2");

  PretrainConfig config;
  config.train.epochs = 2;
  config.train.batch_size = 8;
  std::unique_ptr<TimeDrlModel> model;
  PretrainHistory history = RunPretrain(config, &model);

  EXPECT_FALSE(history.aborted);
  EXPECT_EQ(history.total.size(), 2u);
  EXPECT_EQ(obs::Registry::Global()
                .GetCounter("train.anomaly.skipped_steps")
                .value(),
            skips_before + 1);
}

TEST_F(PretrainAnomalyTest, PersistentNanRollsBackAndHalvesLearningRate) {
  const uint64_t rollbacks_before =
      obs::Registry::Global().GetCounter("train.anomaly.rollbacks").value();
  // Three consecutive poisoned steps = the default skip threshold.
  fault::SetSpecForTest("pretrain_nan_loss@4x3");

  PretrainConfig config;
  config.train.epochs = 2;
  config.train.batch_size = 8;
  config.train.checkpoint.directory = dir_;
  std::unique_ptr<TimeDrlModel> model;
  PretrainHistory history = RunPretrain(config, &model);

  EXPECT_FALSE(history.aborted) << history.abort_reason;
  EXPECT_EQ(history.total.size(), 2u);
  EXPECT_EQ(obs::Registry::Global()
                .GetCounter("train.anomaly.rollbacks")
                .value(),
            rollbacks_before + 1);

  // The halved learning rate is persisted: the final checkpoint's cursor
  // records lr * 0.5.
  CheckpointManager manager(dir_);
  std::vector<std::string> files = manager.ListCheckpoints();
  ASSERT_FALSE(files.empty());
  CheckpointInfo info;
  ASSERT_TRUE(CheckpointManager::Inspect(files.back(), &info));
  EXPECT_EQ(info.learning_rate, config.train.learning_rate * 0.5f);
}

TEST_F(PretrainAnomalyTest, UnrecoverableNanAbortsWithStructuredReason) {
  const uint64_t aborts_before =
      obs::Registry::Global().GetCounter("train.anomaly.aborts").value();
  fault::SetSpecForTest("pretrain_nan_loss@1x*");  // every step is poisoned

  PretrainConfig config;
  config.train.epochs = 2;
  config.train.batch_size = 8;
  config.train.checkpoint.directory = dir_;
  config.train.anomaly.max_consecutive_skips = 2;
  config.train.anomaly.max_rollbacks = 1;
  std::unique_ptr<TimeDrlModel> model;
  PretrainHistory history = RunPretrain(config, &model);

  EXPECT_TRUE(history.aborted);
  EXPECT_FALSE(history.abort_reason.empty());
  EXPECT_TRUE(history.total.empty());
  EXPECT_EQ(obs::Registry::Global().GetCounter("train.anomaly.aborts").value(),
            aborts_before + 1);
}

TEST_F(PretrainAnomalyTest, RollbackWithoutCheckpointsAborts) {
  fault::SetSpecForTest("pretrain_nan_loss@1x*");

  PretrainConfig config;
  config.train.epochs = 2;
  config.train.batch_size = 8;
  // No checkpoint directory: the guard has nowhere to roll back to.
  config.train.anomaly.max_consecutive_skips = 2;
  std::unique_ptr<TimeDrlModel> model;
  PretrainHistory history = RunPretrain(config, &model);

  EXPECT_TRUE(history.aborted);
  EXPECT_NE(history.abort_reason.find("no checkpoint"), std::string::npos)
      << history.abort_reason;
}

TEST_F(PretrainAnomalyTest, ShortAnomalousEpochAbortsInsteadOfCrashing) {
  fault::SetSpecForTest("pretrain_nan_loss@1x*");

  PretrainConfig config;
  config.train.epochs = 1;
  config.train.batch_size = 8;
  // Threshold too high to ever trigger a rollback: the epoch runs dry and
  // must surface a structured abort, not a divide-by-zero or CHECK crash.
  config.train.anomaly.max_consecutive_skips = 1 << 20;
  std::unique_ptr<TimeDrlModel> model;
  PretrainHistory history = RunPretrain(config, &model);

  EXPECT_TRUE(history.aborted);
  EXPECT_NE(history.abort_reason.find("no finite steps"), std::string::npos)
      << history.abort_reason;
}

}  // namespace
}  // namespace timedrl::core
