// Every Table-VIII backbone must support the full TimeDRL training loop:
// gradients reach all parameters and the pretext loss decreases.

#include <gtest/gtest.h>

#include <cmath>

#include "core/model.h"
#include "core/pretrainer.h"
#include "core/sources.h"
#include "data/windows.h"
#include "optim/optimizer.h"

namespace timedrl::core {
namespace {

class BackboneIntegrationTest
    : public ::testing::TestWithParam<nn::BackboneKind> {};

TimeDrlConfig ConfigFor(nn::BackboneKind kind) {
  TimeDrlConfig config;
  config.backbone = kind;
  config.input_channels = 2;
  config.input_length = 16;
  config.patch_length = 4;
  config.patch_stride = 4;
  config.d_model = 8;
  config.num_heads = 2;
  config.ff_dim = 16;
  config.num_layers = 1;
  return config;
}

TEST_P(BackboneIntegrationTest, GradientsReachEveryParameter) {
  Rng rng(1);
  TimeDrlModel model(ConfigFor(GetParam()), rng);
  Tensor x = Tensor::Randn({4, 16, 2}, rng);
  TimeDrlModel::PretextOutput output = model.PretextStep(x);
  model.ZeroGrad();
  output.total.Backward();
  int64_t with_grad = 0;
  int64_t total = 0;
  for (const auto& [name, parameter] : model.NamedParameters()) {
    ++total;
    if (!parameter.has_grad()) continue;
    double magnitude = 0.0;
    for (float g : parameter.grad()) magnitude += std::abs(g);
    if (magnitude > 0.0) ++with_grad;
  }
  // Every parameter except at most a couple of degenerate corners (e.g. a
  // bias shadowed by normalization) must receive gradient.
  EXPECT_GE(with_grad, total - 2)
      << nn::BackboneName(GetParam()) << ": only " << with_grad << "/"
      << total << " parameters received gradients";
}

TEST_P(BackboneIntegrationTest, PretextLossDecreases) {
  Rng rng(2);
  // Learnable structure: smooth two-channel sinusoids.
  data::TimeSeries series(240, 2);
  for (int64_t t = 0; t < 240; ++t) {
    series.at(t, 0) = std::sin(0.3f * t);
    series.at(t, 1) = std::cos(0.17f * t);
  }
  data::ForecastingWindows windows(series, 16, 0, 2);
  ForecastingSource source(&windows, /*channel_independent=*/false);

  TimeDrlModel model(ConfigFor(GetParam()), rng);
  PretrainConfig config;
  config.train.epochs = 3;
  config.train.batch_size = 16;
  PretrainHistory history = Pretrain(&model, source, config, rng);
  EXPECT_LT(history.total.back(), history.total.front())
      << nn::BackboneName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllBackbones, BackboneIntegrationTest,
    ::testing::Values(nn::BackboneKind::kTransformerEncoder,
                      nn::BackboneKind::kTransformerDecoder,
                      nn::BackboneKind::kResNet, nn::BackboneKind::kTcn,
                      nn::BackboneKind::kLstm, nn::BackboneKind::kBiLstm),
    [](const ::testing::TestParamInfo<nn::BackboneKind>& info) {
      std::string name = nn::BackboneName(info.param);
      std::string out;
      for (char c : name) {
        if (c != ' ' && c != '-') out += c;
      }
      return out;
    });

}  // namespace
}  // namespace timedrl::core
