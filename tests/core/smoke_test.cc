// End-to-end smoke: pretext losses decrease and probes run.

#include <gtest/gtest.h>

#include "core/model.h"
#include "core/pipelines.h"
#include "core/pretrainer.h"
#include "core/sources.h"
#include "data/synthetic.h"
#include "data/windows.h"

namespace timedrl::core {
namespace {

TEST(CoreSmokeTest, PretrainAndForecastProbe) {
  Rng rng(1);
  data::TimeSeries series = data::MakeEttLike(600, 24, 1, rng);
  data::ForecastingSplits splits = data::ChronologicalSplit(series);
  data::ForecastingWindows train(splits.train, /*input=*/48, /*horizon=*/12,
                                 /*stride=*/4);
  data::ForecastingWindows test(splits.test, 48, 12, /*stride=*/4);
  ASSERT_GT(train.size(), 0);
  ASSERT_GT(test.size(), 0);

  TimeDrlConfig config;
  config.input_channels = 1;  // channel independence
  config.input_length = 48;
  config.patch_length = 8;
  config.patch_stride = 8;
  config.d_model = 16;
  config.num_heads = 2;
  config.ff_dim = 32;
  config.num_layers = 1;
  TimeDrlModel model(config, rng);

  ForecastingSource source(&train, /*channel_independent=*/true);
  PretrainConfig pretrain_config;
  pretrain_config.train.epochs = 2;
  pretrain_config.train.batch_size = 8;
  PretrainHistory history = Pretrain(&model, source, pretrain_config, rng);
  ASSERT_EQ(history.total.size(), 2u);
  EXPECT_LT(history.total.back(), history.total.front());

  ForecastingPipeline pipeline(&model, /*horizon=*/12, /*channels=*/7,
                               /*channel_independent=*/true, rng);
  DownstreamConfig downstream;
  downstream.train.epochs = 2;
  downstream.train.batch_size = 8;
  pipeline.Train(train, downstream, rng);
  ForecastMetrics metrics = pipeline.Evaluate(test);
  EXPECT_GT(metrics.mse, 0.0);
  EXPECT_TRUE(std::isfinite(metrics.mse));
  EXPECT_TRUE(std::isfinite(metrics.mae));
}

TEST(CoreSmokeTest, PretrainAndClassifyProbe) {
  Rng rng(2);
  data::ClassificationDataset dataset = data::MakeHarLike(240, 32, rng);
  data::ClassificationSplits splits = data::StratifiedSplit(dataset, 0.7, rng);

  TimeDrlConfig config;
  config.input_channels = 9;
  config.input_length = 32;
  config.patch_length = 8;
  config.patch_stride = 8;
  config.d_model = 32;
  config.num_heads = 4;
  config.ff_dim = 64;
  config.num_layers = 2;
  TimeDrlModel model(config, rng);

  ClassificationSource source(&splits.train);
  PretrainConfig pretrain_config;
  pretrain_config.train.epochs = 12;
  pretrain_config.train.batch_size = 16;
  Pretrain(&model, source, pretrain_config, rng);

  ClassificationPipeline pipeline(&model, dataset.num_classes, Pooling::kCls,
                                  rng);
  DownstreamConfig downstream;
  downstream.train.epochs = 30;
  downstream.train.batch_size = 16;
  downstream.train.learning_rate = 3e-3f;
  pipeline.Train(splits.train, downstream, rng);
  ClassificationMetrics metrics = pipeline.Evaluate(splits.test);
  // 6 classes, chance = 1/6; the linear probe on SSL features must clearly
  // beat chance.
  EXPECT_GT(metrics.accuracy, 0.3);
}

TEST(CoreSmokeTest, SupervisedFineTuneLearnsHarLike) {
  Rng rng(3);
  data::ClassificationDataset dataset = data::MakeHarLike(200, 32, rng);
  data::ClassificationSplits splits = data::StratifiedSplit(dataset, 0.7, rng);

  TimeDrlConfig config;
  config.input_channels = 9;
  config.input_length = 32;
  config.patch_length = 8;
  config.patch_stride = 8;
  config.d_model = 32;
  config.num_heads = 4;
  config.ff_dim = 64;
  config.num_layers = 2;
  TimeDrlModel model(config, rng);

  ClassificationPipeline pipeline(&model, dataset.num_classes, Pooling::kCls,
                                  rng);
  DownstreamConfig downstream;
  downstream.train.epochs = 15;
  downstream.train.batch_size = 16;
  downstream.fine_tune_encoder = true;
  pipeline.Train(splits.train, downstream, rng);
  ClassificationMetrics metrics = pipeline.Evaluate(splits.test);
  EXPECT_GT(metrics.accuracy, 0.8);
}

}  // namespace
}  // namespace timedrl::core
