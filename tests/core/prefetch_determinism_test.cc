// The prefetching data pipeline must be invisible to training numerics:
// any prefetch depth — including the synchronous depth-0 fallback — gives
// bitwise-identical pre-training, kill-and-resume with prefetch enabled
// replays an uninterrupted run exactly, and an aborted run drains the
// producer queue instead of hanging or leaking.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>

#include "core/checkpoint.h"
#include "core/model.h"
#include "core/pretrainer.h"
#include "core/sources.h"
#include "data/synthetic.h"
#include "data/windows.h"
#include "util/fault_inject.h"

namespace timedrl::core {
namespace {

namespace fs = std::filesystem;

TimeDrlConfig SmallConfig() {
  TimeDrlConfig config;
  config.input_channels = 1;
  config.input_length = 16;
  config.patch_length = 4;
  config.patch_stride = 4;
  config.d_model = 8;
  config.num_heads = 2;
  config.ff_dim = 16;
  config.num_layers = 1;
  return config;
}

// Fresh objects every run, exactly as a new process would build them.
PretrainHistory RunPretrainOnce(int64_t epochs, int64_t prefetch_depth,
                                const std::string& checkpoint_dir, bool resume,
                                std::unique_ptr<TimeDrlModel>* model_out) {
  Rng rng(42);
  data::TimeSeries series = data::MakeEttLike(220, 24, 1, rng);
  data::ForecastingWindows windows(series, /*input=*/16, /*horizon=*/0,
                                   /*stride=*/4);
  ForecastingSource source(&windows, /*channel_independent=*/true);

  Rng model_rng(7);
  *model_out = std::make_unique<TimeDrlModel>(SmallConfig(), model_rng);

  PretrainConfig config;
  config.train.epochs = epochs;
  config.train.batch_size = 8;
  config.train.prefetch_depth = prefetch_depth;
  // Jitter views exercise the augment sub-stream forking, the part of the
  // pipeline most exposed to prefetch reordering.
  config.augmentation = augment::Kind::kJitter;
  config.train.checkpoint.directory = checkpoint_dir;
  config.train.checkpoint.resume = resume;
  Rng train_rng(99);
  return Pretrain(model_out->get(), source, config, train_rng);
}

void ExpectBitwiseEqual(TimeDrlModel& a, TimeDrlModel& b) {
  auto params_a = a.NamedParameters();
  auto params_b = b.NamedParameters();
  ASSERT_EQ(params_a.size(), params_b.size());
  for (size_t i = 0; i < params_a.size(); ++i) {
    EXPECT_EQ(params_a[i].second.data(), params_b[i].second.data())
        << "parameter " << params_a[i].first << " diverged";
  }
}

TEST(PrefetchDeterminismTest, PretrainIsBitwiseIdenticalAcrossDepths) {
  std::unique_ptr<TimeDrlModel> baseline;
  PretrainHistory baseline_history = RunPretrainOnce(
      /*epochs=*/3, /*prefetch_depth=*/0, /*checkpoint_dir=*/"",
      /*resume=*/false, &baseline);
  ASSERT_FALSE(baseline_history.aborted);
  ASSERT_EQ(baseline_history.total.size(), 3u);

  for (int64_t depth : {1, 2, 4}) {
    std::unique_ptr<TimeDrlModel> model;
    PretrainHistory history = RunPretrainOnce(3, depth, "", false, &model);
    ASSERT_FALSE(history.aborted);
    EXPECT_EQ(history.total, baseline_history.total) << "depth " << depth;
    EXPECT_EQ(history.predictive, baseline_history.predictive)
        << "depth " << depth;
    EXPECT_EQ(history.contrastive, baseline_history.contrastive)
        << "depth " << depth;
    ExpectBitwiseEqual(*baseline, *model);
  }
}

// Kill-and-resume with the producer thread running: train half the epochs
// with prefetch, throw every object away (the process boundary), resume
// from the checkpoint — still bitwise equal to an uninterrupted
// synchronous run.
TEST(PrefetchDeterminismTest, KillAndResumeWithPrefetchIsBitwise) {
  const std::string dir = "/tmp/timedrl_prefetch_resume";
  fs::remove_all(dir);
  constexpr int64_t kEpochs = 6;
  constexpr int64_t kHalf = 3;

  std::unique_ptr<TimeDrlModel> straight;
  PretrainHistory straight_history = RunPretrainOnce(
      kEpochs, /*prefetch_depth=*/0, /*checkpoint_dir=*/"",
      /*resume=*/false, &straight);
  ASSERT_FALSE(straight_history.aborted);

  {
    std::unique_ptr<TimeDrlModel> first_half;
    PretrainHistory h = RunPretrainOnce(kHalf, /*prefetch_depth=*/2, dir,
                                        /*resume=*/false, &first_half);
    ASSERT_EQ(h.total.size(), static_cast<size_t>(kHalf));
  }

  std::unique_ptr<TimeDrlModel> resumed;
  PretrainHistory resumed_history =
      RunPretrainOnce(kEpochs, /*prefetch_depth=*/2, dir, /*resume=*/true,
                      &resumed);

  ASSERT_FALSE(resumed_history.aborted);
  EXPECT_EQ(resumed_history.total, straight_history.total);
  EXPECT_EQ(resumed_history.predictive, straight_history.predictive);
  EXPECT_EQ(resumed_history.contrastive, straight_history.contrastive);
  ExpectBitwiseEqual(*straight, *resumed);

  fs::remove_all(dir);
}

// An anomaly-guard abort exits the epoch early with batches still queued
// and possibly in flight; loader teardown must drain them cleanly. The
// test completing (no deadlock, no crash under sanitizers) is the assert.
TEST(PrefetchDeterminismTest, AbortWithPrefetchedBatchesDrainsQueue) {
  fault::SetSpecForTest("pretrain_nan_loss@1x*");  // every step poisoned

  std::unique_ptr<TimeDrlModel> model;
  Rng rng(42);
  data::TimeSeries series = data::MakeEttLike(220, 24, 1, rng);
  data::ForecastingWindows windows(series, 16, 0, /*stride=*/4);
  ForecastingSource source(&windows, /*channel_independent=*/true);
  Rng model_rng(7);
  model = std::make_unique<TimeDrlModel>(SmallConfig(), model_rng);

  PretrainConfig config;
  config.train.epochs = 2;
  config.train.batch_size = 8;
  config.train.prefetch_depth = 4;
  // No checkpoint directory: the first rollback request becomes an abort.
  config.train.anomaly.max_consecutive_skips = 2;
  Rng train_rng(99);
  PretrainHistory history = Pretrain(model.get(), source, config, train_rng);

  EXPECT_TRUE(history.aborted);
  EXPECT_FALSE(history.abort_reason.empty());
  fault::SetSpecForTest("");
}

}  // namespace
}  // namespace timedrl::core
