// ReconstructionError: the anomaly-scoring use of the predictive head.

#include <gtest/gtest.h>

#include <cmath>

#include "core/model.h"
#include "core/pretrainer.h"
#include "core/sources.h"
#include "data/windows.h"

namespace timedrl::core {
namespace {

TEST(ReconstructionErrorTest, ShapeAndNonNegativity) {
  Rng rng(1);
  TimeDrlConfig config;
  config.input_channels = 2;
  config.input_length = 16;
  config.patch_length = 4;
  config.patch_stride = 4;
  config.d_model = 8;
  config.num_heads = 2;
  config.ff_dim = 16;
  config.num_layers = 1;
  TimeDrlModel model(config, rng);
  model.Eval();
  NoGradGuard guard;
  Tensor x = Tensor::Randn({3, 16, 2}, rng);
  Tensor errors = model.ReconstructionError(x);
  EXPECT_EQ(errors.shape(), (Shape{3, 4}));
  for (float e : errors.data()) EXPECT_GE(e, 0.0f);
}

TEST(ReconstructionErrorTest, PretrainedModelFlagsStructuralBreaks) {
  // Pre-train on smooth sinusoids; a window with an injected spike should
  // score higher than a clean one.
  Rng rng(2);
  const int64_t length = 400;
  data::TimeSeries series(length, 1);
  for (int64_t t = 0; t < length; ++t) {
    series.at(t, 0) = std::sin(0.4f * t);
  }
  data::ForecastingWindows windows(series, 32, 0, 2);
  ForecastingSource source(&windows, /*channel_independent=*/false);

  TimeDrlConfig config;
  config.input_channels = 1;
  config.input_length = 32;
  config.patch_length = 8;
  config.patch_stride = 8;
  config.d_model = 16;
  config.num_heads = 2;
  config.ff_dim = 32;
  config.num_layers = 1;
  TimeDrlModel model(config, rng);

  PretrainConfig pretrain;
  pretrain.train.epochs = 12;
  pretrain.train.batch_size = 16;
  Pretrain(&model, source, pretrain, rng);

  NoGradGuard guard;
  Tensor clean = windows.GetInputs({0});
  Tensor corrupted = clean.Clone();
  corrupted.at({0, 20, 0}) += 6.0f;  // spike in patch 2

  auto max_error = [&](const Tensor& x) {
    Tensor errors = model.ReconstructionError(x);
    float best = 0.0f;
    for (float e : errors.data()) best = std::max(best, e);
    return best;
  };
  EXPECT_GT(max_error(corrupted), 2.0f * max_error(clean));
}

}  // namespace
}  // namespace timedrl::core
