// ConcatSource: multi-dataset pre-training support.

#include <gtest/gtest.h>

#include "core/model.h"
#include "core/pretrainer.h"
#include "core/sources.h"
#include "data/synthetic.h"
#include "data/windows.h"

namespace timedrl::core {
namespace {

TEST(ConcatSourceTest, SizeAndDispatch) {
  Rng rng(1);
  data::TimeSeries series_a = data::MakeEttLike(120, 24, 1, rng);
  data::TimeSeries series_b = data::MakeEttLike(90, 24, 2, rng);
  data::ForecastingWindows windows_a(series_a, 16, 0, 4);
  data::ForecastingWindows windows_b(series_b, 16, 0, 4);
  ForecastingSource source_a(&windows_a, /*channel_independent=*/false);
  ForecastingSource source_b(&windows_b, /*channel_independent=*/false);

  ConcatSource combined({&source_a, &source_b});
  EXPECT_EQ(combined.size(), source_a.size() + source_b.size());

  // First region maps to source A, second to source B.
  Tensor from_a = combined.GetWindows({0});
  EXPECT_EQ(from_a.data(), source_a.GetWindows({0}).data());
  Tensor from_b = combined.GetWindows({source_a.size()});
  EXPECT_EQ(from_b.data(), source_b.GetWindows({0}).data());

  // Mixed batch keeps request order.
  Tensor mixed = combined.GetWindows({source_a.size(), 0});
  EXPECT_EQ(mixed.shape(), (Shape{2, 16, 7}));
  for (int64_t t = 0; t < 16; ++t) {
    EXPECT_FLOAT_EQ(mixed.at({1, t, 0}), from_a.at({0, t, 0}));
  }
}

TEST(ConcatSourceTest, PretrainingAcrossDatasetsRuns) {
  // Foundation-model style: one encoder pre-trained on the union of two
  // different (same-geometry) series.
  Rng rng(2);
  data::TimeSeries series_a = data::MakeEttLike(200, 24, 1, rng);
  data::TimeSeries series_b = data::MakeWeatherLike(200, rng);
  data::ForecastingWindows windows_a(series_a, 16, 0, 4);
  data::ForecastingWindows windows_b(series_b, 16, 0, 4);
  // Channel independence maps both to [*, 16, 1]: geometry-compatible.
  ForecastingSource source_a(&windows_a, /*channel_independent=*/true);
  ForecastingSource source_b(&windows_b, /*channel_independent=*/true);
  ConcatSource combined({&source_a, &source_b});

  TimeDrlConfig config;
  config.input_channels = 1;
  config.input_length = 16;
  config.patch_length = 4;
  config.patch_stride = 4;
  config.d_model = 8;
  config.num_heads = 2;
  config.ff_dim = 16;
  config.num_layers = 1;
  TimeDrlModel model(config, rng);

  PretrainConfig pretrain;
  pretrain.train.epochs = 2;
  pretrain.train.batch_size = 16;
  PretrainHistory history = Pretrain(&model, combined, pretrain, rng);
  EXPECT_LT(history.total.back(), history.total.front());
}

}  // namespace
}  // namespace timedrl::core
