// Kill-and-resume determinism: pre-training for N epochs straight must be
// bitwise identical to training N/2 epochs, discarding every in-memory
// object (the process-boundary simulation), and resuming from the
// checkpoint for the remaining epochs. This exercises the full state
// capture: model parameters, AdamW moments and step count, batch-shuffle
// and augmentation RNG streams, dropout RNGs, batch-norm running
// statistics, the epoch cursor, and the loss history.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>

#include "core/checkpoint.h"
#include "core/model.h"
#include "core/pretrainer.h"
#include "core/sources.h"
#include "data/synthetic.h"
#include "data/windows.h"

namespace timedrl::core {
namespace {

namespace fs = std::filesystem;

constexpr int64_t kEpochs = 6;
constexpr int64_t kHalf = 3;

TimeDrlConfig SmallConfig() {
  TimeDrlConfig config;
  config.input_channels = 1;
  config.input_length = 16;
  config.patch_length = 4;
  config.patch_stride = 4;
  config.d_model = 8;
  config.num_heads = 2;
  config.ff_dim = 16;
  config.num_layers = 1;
  return config;
}

// Each run builds every object from scratch (model, windows, source, RNG),
// exactly as a fresh process would after a crash.
PretrainHistory RunPretrainOnce(int64_t epochs, const std::string& checkpoint_dir,
                    bool resume, std::unique_ptr<TimeDrlModel>* model_out) {
  Rng rng(42);
  data::TimeSeries series = data::MakeEttLike(220, 24, 1, rng);
  data::ForecastingWindows windows(series, /*input=*/16, /*horizon=*/0,
                                   /*stride=*/4);
  ForecastingSource source(&windows, /*channel_independent=*/true);

  Rng model_rng(7);
  *model_out = std::make_unique<TimeDrlModel>(SmallConfig(), model_rng);

  PretrainConfig config;
  config.train.epochs = epochs;
  config.train.batch_size = 8;
  config.train.checkpoint.directory = checkpoint_dir;
  config.train.checkpoint.resume = resume;
  Rng train_rng(99);
  return Pretrain(model_out->get(), source, config, train_rng);
}

void ExpectBitwiseEqual(TimeDrlModel& a, TimeDrlModel& b) {
  auto params_a = a.NamedParameters();
  auto params_b = b.NamedParameters();
  ASSERT_EQ(params_a.size(), params_b.size());
  for (size_t i = 0; i < params_a.size(); ++i) {
    EXPECT_EQ(params_a[i].second.data(), params_b[i].second.data())
        << "parameter " << params_a[i].first << " diverged";
  }
}

TEST(ResumeDeterminismTest, SplitRunMatchesStraightRunBitwise) {
  const std::string dir = "/tmp/timedrl_resume_determinism";
  fs::remove_all(dir);

  std::unique_ptr<TimeDrlModel> straight;
  PretrainHistory straight_history =
      RunPretrainOnce(kEpochs, /*checkpoint_dir=*/"", /*resume=*/false, &straight);
  ASSERT_EQ(straight_history.total.size(),
            static_cast<size_t>(kEpochs));
  ASSERT_FALSE(straight_history.aborted);

  // First half: train, checkpoint, then throw everything away.
  {
    std::unique_ptr<TimeDrlModel> first_half;
    PretrainHistory h = RunPretrainOnce(kHalf, dir, /*resume=*/false, &first_half);
    ASSERT_EQ(h.total.size(), static_cast<size_t>(kHalf));
  }

  // Second half in a "new process": fresh objects, resume from disk.
  std::unique_ptr<TimeDrlModel> resumed;
  PretrainHistory resumed_history =
      RunPretrainOnce(kEpochs, dir, /*resume=*/true, &resumed);

  ASSERT_FALSE(resumed_history.aborted);
  ASSERT_EQ(resumed_history.total.size(), static_cast<size_t>(kEpochs));
  // Loss history is bitwise identical — including the first-half epochs,
  // which the resumed run restored from the checkpoint rather than reran.
  EXPECT_EQ(resumed_history.total, straight_history.total);
  EXPECT_EQ(resumed_history.predictive, straight_history.predictive);
  EXPECT_EQ(resumed_history.contrastive, straight_history.contrastive);
  ExpectBitwiseEqual(*straight, *resumed);

  fs::remove_all(dir);
}

TEST(ResumeDeterminismTest, ResumeAfterCompletionIsANoOp) {
  const std::string dir = "/tmp/timedrl_resume_complete";
  fs::remove_all(dir);

  std::unique_ptr<TimeDrlModel> finished;
  PretrainHistory first = RunPretrainOnce(kHalf, dir, /*resume=*/false, &finished);
  ASSERT_EQ(first.total.size(), static_cast<size_t>(kHalf));

  // Same epoch budget, resume: nothing left to train, state is untouched.
  std::unique_ptr<TimeDrlModel> reloaded;
  PretrainHistory second = RunPretrainOnce(kHalf, dir, /*resume=*/true, &reloaded);
  EXPECT_EQ(second.total, first.total);
  ExpectBitwiseEqual(*finished, *reloaded);

  fs::remove_all(dir);
}

TEST(ResumeDeterminismTest, CheckpointFilesRespectRetention) {
  const std::string dir = "/tmp/timedrl_resume_retention";
  fs::remove_all(dir);

  std::unique_ptr<TimeDrlModel> model;
  RunPretrainOnce(kEpochs, dir, /*resume=*/false, &model);
  CheckpointManager manager(dir);
  // Default keep_last = 3 caps the directory regardless of epoch count.
  EXPECT_LE(manager.ListCheckpoints().size(), 3u);

  fs::remove_all(dir);
}

}  // namespace
}  // namespace timedrl::core
