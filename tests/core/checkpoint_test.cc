// CheckpointManager: v2 round-trip, retention, corrupt-tail fallback,
// fault-injected truncation, inspection, and v1 backward compatibility.

#include "core/checkpoint.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/model.h"
#include "nn/serialize.h"
#include "util/fault_inject.h"
#include "util/rng.h"

namespace timedrl::core {
namespace {

namespace fs = std::filesystem;

core::TimeDrlConfig SmallConfig() {
  TimeDrlConfig config;
  config.input_channels = 1;
  config.input_length = 16;
  config.patch_length = 4;
  config.patch_stride = 4;
  config.d_model = 8;
  config.num_heads = 2;
  config.ff_dim = 16;
  config.num_layers = 1;
  return config;
}

TrainingState SampleState(int64_t epoch) {
  TrainingState state;
  state.epoch = epoch;
  state.global_step = 37 * epoch;
  state.learning_rate = 5e-4f;
  state.optimizer.type = "adamw";
  state.optimizer.step_count = 37 * epoch;
  state.optimizer.slots = {{1.0f, 2.0f, 3.0f}, {4.0f, 5.0f}};
  state.rng_streams = {{"loop.batches", Rng(7).Serialize()},
                       {"loop.augment", Rng(8).Serialize()}};
  state.history = {{"total", {1.0, 0.5}}, {"predictive", {0.7, 0.3}}};
  return state;
}

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = "/tmp/timedrl_ckpt_mgr_" +
           std::string(::testing::UnitTest::GetInstance()
                           ->current_test_info()
                           ->name());
    fs::remove_all(dir_);
  }

  void TearDown() override {
    fault::SetSpecForTest("");
    fs::remove_all(dir_);
  }

  std::string dir_;
};

TEST_F(CheckpointTest, RoundTripRestoresEverything) {
  Rng rng_a(1);
  TimeDrlModel source(SmallConfig(), rng_a);
  CheckpointManager manager(dir_);
  ASSERT_TRUE(manager.Save(source, SampleState(4)));

  Rng rng_b(2);
  TimeDrlModel target(SmallConfig(), rng_b);
  TrainingState restored;
  ASSERT_TRUE(manager.LoadLatest(&target, &restored));

  // Parameters are bitwise identical.
  auto source_params = source.NamedParameters();
  auto target_params = target.NamedParameters();
  ASSERT_EQ(source_params.size(), target_params.size());
  for (size_t i = 0; i < source_params.size(); ++i) {
    EXPECT_EQ(source_params[i].second.data(), target_params[i].second.data())
        << source_params[i].first;
  }

  const TrainingState expected = SampleState(4);
  EXPECT_EQ(restored.epoch, expected.epoch);
  EXPECT_EQ(restored.global_step, expected.global_step);
  EXPECT_EQ(restored.learning_rate, expected.learning_rate);
  EXPECT_EQ(restored.optimizer.type, expected.optimizer.type);
  EXPECT_EQ(restored.optimizer.step_count, expected.optimizer.step_count);
  EXPECT_EQ(restored.optimizer.slots, expected.optimizer.slots);
  EXPECT_EQ(restored.rng_streams, expected.rng_streams);
  EXPECT_EQ(restored.history, expected.history);
}

TEST_F(CheckpointTest, EmptyDirectoryIsNotFound) {
  Rng rng(3);
  TimeDrlModel model(SmallConfig(), rng);
  CheckpointManager manager(dir_);
  TrainingState state;
  Status status = manager.LoadLatest(&model, &state);
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST_F(CheckpointTest, KeepLastPrunesOldest) {
  Rng rng(4);
  TimeDrlModel model(SmallConfig(), rng);
  CheckpointManager manager(dir_, /*keep_last=*/2);
  for (int64_t epoch = 1; epoch <= 5; ++epoch) {
    ASSERT_TRUE(manager.Save(model, SampleState(epoch)));
  }
  std::vector<std::string> remaining = manager.ListCheckpoints();
  ASSERT_EQ(remaining.size(), 2u);
  EXPECT_NE(remaining[0].find("checkpoint-4"), std::string::npos);
  EXPECT_NE(remaining[1].find("checkpoint-5"), std::string::npos);
}

TEST_F(CheckpointTest, CorruptTailFallsBackToOlderCheckpoint) {
  Rng rng(5);
  TimeDrlModel model(SmallConfig(), rng);
  CheckpointManager manager(dir_);
  ASSERT_TRUE(manager.Save(model, SampleState(1)));
  ASSERT_TRUE(manager.Save(model, SampleState(2)));

  // Tear the tail off the newest checkpoint, as a crash mid-write (on a
  // filesystem without atomic rename guarantees) would.
  std::vector<std::string> files = manager.ListCheckpoints();
  ASSERT_EQ(files.size(), 2u);
  const auto size = fs::file_size(files[1]);
  fs::resize_file(files[1], size - 16);

  TrainingState state;
  ASSERT_TRUE(manager.LoadLatest(&model, &state));
  EXPECT_EQ(state.epoch, 1);
}

TEST_F(CheckpointTest, FaultInjectedTruncationFailsCrc) {
  Rng rng(6);
  TimeDrlModel model(SmallConfig(), rng);
  CheckpointManager manager(dir_);

  fault::SetSpecForTest("truncate_checkpoint@1");
  ASSERT_TRUE(manager.Save(model, SampleState(1)));
  fault::SetSpecForTest("");

  // The truncated file exists but fails validation -> nothing to restore.
  ASSERT_EQ(manager.ListCheckpoints().size(), 1u);
  TrainingState state;
  EXPECT_EQ(manager.LoadLatest(&model, &state).code(), StatusCode::kNotFound);

  // A healthy save afterwards restores normal operation.
  ASSERT_TRUE(manager.Save(model, SampleState(2)));
  ASSERT_TRUE(manager.LoadLatest(&model, &state));
  EXPECT_EQ(state.epoch, 2);
}

TEST_F(CheckpointTest, InspectReportsMetadata) {
  Rng rng(7);
  TimeDrlModel model(SmallConfig(), rng);
  CheckpointManager manager(dir_);
  ASSERT_TRUE(manager.Save(model, SampleState(3)));

  CheckpointInfo info;
  ASSERT_TRUE(CheckpointManager::Inspect(manager.ListCheckpoints()[0], &info));
  EXPECT_EQ(info.version, nn::kVersionTrainingState);
  EXPECT_TRUE(info.has_crc);
  EXPECT_TRUE(info.crc_valid);
  EXPECT_EQ(info.parameters.size(), model.NamedParameters().size());
  EXPECT_EQ(info.optimizer_type, "adamw");
  EXPECT_EQ(info.optimizer_step_count, 111);
  EXPECT_EQ(info.optimizer_slot_sizes, (std::vector<uint64_t>{3, 2}));
  EXPECT_EQ(info.epoch, 3);
  EXPECT_EQ(info.learning_rate, 5e-4f);
  ASSERT_EQ(info.history_sizes.size(), 2u);
  EXPECT_EQ(info.history_sizes[0].first, "total");
  EXPECT_EQ(info.history_sizes[0].second, 2u);
}

TEST_F(CheckpointTest, InspectFlagsCorruptFile) {
  Rng rng(8);
  TimeDrlModel model(SmallConfig(), rng);
  CheckpointManager manager(dir_);
  ASSERT_TRUE(manager.Save(model, SampleState(1)));
  const std::string path = manager.ListCheckpoints()[0];
  fs::resize_file(path, fs::file_size(path) - 8);

  CheckpointInfo info;
  ASSERT_TRUE(CheckpointManager::Inspect(path, &info));
  EXPECT_TRUE(info.has_crc);
  EXPECT_FALSE(info.crc_valid);
}

TEST_F(CheckpointTest, VersionOneFilesStillLoad) {
  Rng rng_a(9);
  TimeDrlModel source(SmallConfig(), rng_a);
  fs::create_directories(dir_);
  const std::string path = dir_ + "/params_only.ckpt";
  ASSERT_TRUE(nn::SaveParameters(source, path));

  Rng rng_b(10);
  TimeDrlModel target(SmallConfig(), rng_b);
  TrainingState state;
  ASSERT_TRUE(CheckpointManager::LoadFile(path, &target, &state));
  EXPECT_EQ(source.NamedParameters()[0].second.data(),
            target.NamedParameters()[0].second.data());
  EXPECT_EQ(state.epoch, 0);  // untouched: v1 carries no cursor

  CheckpointInfo info;
  ASSERT_TRUE(CheckpointManager::Inspect(path, &info));
  EXPECT_EQ(info.version, nn::kVersionParamsOnly);
  EXPECT_FALSE(info.has_crc);
  EXPECT_EQ(info.epoch, -1);
}

TEST_F(CheckpointTest, TempFilesAreNotListed) {
  Rng rng(11);
  TimeDrlModel model(SmallConfig(), rng);
  CheckpointManager manager(dir_);
  ASSERT_TRUE(manager.Save(model, SampleState(1)));
  {
    std::ofstream leftover(dir_ + "/checkpoint-9.tdrl.tmp");
    leftover << "torn";
  }
  EXPECT_EQ(manager.ListCheckpoints().size(), 1u);
}

}  // namespace
}  // namespace timedrl::core
