#include "metrics/metrics.h"

#include <gtest/gtest.h>

namespace timedrl::metrics {
namespace {

TEST(RegressionMetricsTest, MseMaeHandValues) {
  Tensor p = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Tensor t = Tensor::FromVector({2, 2}, {1, 0, 6, 4});
  EXPECT_DOUBLE_EQ(Mse(p, t), (0.0 + 4.0 + 9.0 + 0.0) / 4.0);
  EXPECT_DOUBLE_EQ(Mae(p, t), (0.0 + 2.0 + 3.0 + 0.0) / 4.0);
}

TEST(RegressionMetricsTest, PerfectPrediction) {
  Tensor p = Tensor::FromVector({3}, {1, 2, 3});
  EXPECT_DOUBLE_EQ(Mse(p, p), 0.0);
  EXPECT_DOUBLE_EQ(Mae(p, p), 0.0);
}

TEST(ConfusionMatrixTest, Layout) {
  // true:      0  0  1  1  2
  // predicted: 0  1  1  1  0
  std::vector<int64_t> cm =
      ConfusionMatrix({0, 1, 1, 1, 0}, {0, 0, 1, 1, 2}, 3);
  EXPECT_EQ(cm[0 * 3 + 0], 1);  // true 0 -> pred 0
  EXPECT_EQ(cm[0 * 3 + 1], 1);  // true 0 -> pred 1
  EXPECT_EQ(cm[1 * 3 + 1], 2);  // true 1 -> pred 1
  EXPECT_EQ(cm[2 * 3 + 0], 1);  // true 2 -> pred 0
  EXPECT_EQ(cm[2 * 3 + 2], 0);
}

TEST(AccuracyTest, HandValues) {
  EXPECT_DOUBLE_EQ(Accuracy({1, 0, 1, 1}, {1, 0, 0, 1}), 0.75);
  EXPECT_DOUBLE_EQ(Accuracy({0}, {0}), 1.0);
}

TEST(MacroF1Test, BinaryHandValue) {
  // predictions: 1 1 0 0; labels: 1 0 0 0.
  // class 0: tp=2, fp=0, fn=1 -> F1 = 4/5.
  // class 1: tp=1, fp=1, fn=0 -> F1 = 2/3.
  const double expected = 0.5 * (4.0 / 5.0 + 2.0 / 3.0);
  EXPECT_NEAR(MacroF1({1, 1, 0, 0}, {1, 0, 0, 0}, 2), expected, 1e-12);
}

TEST(MacroF1Test, AbsentClassContributesZero) {
  // Class 2 never appears; its F1 counts as 0 in the macro average.
  const double f1 = MacroF1({0, 1}, {0, 1}, 3);
  EXPECT_NEAR(f1, (1.0 + 1.0 + 0.0) / 3.0, 1e-12);
}

TEST(CohenKappaTest, PerfectAgreementIsOne) {
  EXPECT_NEAR(CohenKappa({0, 1, 2, 0}, {0, 1, 2, 0}, 3), 1.0, 1e-12);
}

TEST(CohenKappaTest, ChanceLevelIsZero) {
  // Predictions independent of labels with identical marginals:
  // labels half 0 half 1; predictions half 0 half 1, agreeing on half.
  const double kappa = CohenKappa({0, 1, 0, 1}, {0, 0, 1, 1}, 2);
  EXPECT_NEAR(kappa, 0.0, 1e-12);
}

TEST(CohenKappaTest, WorseThanChanceIsNegative) {
  // Systematic disagreement.
  const double kappa = CohenKappa({1, 1, 0, 0}, {0, 0, 1, 1}, 2);
  EXPECT_LT(kappa, 0.0);
}

TEST(CohenKappaTest, MatchesPaperFormulaOnBinaryExample) {
  // Binary case checked directly against Eq. 26-27.
  // predictions: 1 1 1 0 0 0 ; labels: 1 1 0 0 0 1
  // TP=2 FN=1 FP=1 TN=2, ACC=4/6.
  // p_e = ((TP+FN)(TP+FP) + (FP+TN)(FN+TN)) / N^2 = (3*3 + 3*3)/36 = 0.5
  // kappa = (2/3 - 1/2) / (1 - 1/2) = 1/3.
  const double kappa = CohenKappa({1, 1, 1, 0, 0, 0}, {1, 1, 0, 0, 0, 1}, 2);
  EXPECT_NEAR(kappa, 1.0 / 3.0, 1e-12);
}

TEST(MetricsDeathTest, MismatchedSizes) {
  EXPECT_DEATH(Accuracy({0, 1}, {0}), "CHECK FAILED");
  Tensor a = Tensor::Zeros({2});
  Tensor b = Tensor::Zeros({3});
  EXPECT_DEATH(Mse(a, b), "CHECK FAILED");
}

}  // namespace
}  // namespace timedrl::metrics
