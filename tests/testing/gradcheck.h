// Numeric gradient checking for autograd verification.
//
// Compares analytic gradients (reverse-mode autograd) against central-finite-
// difference estimates. Tolerances are sized for float32 arithmetic.

#ifndef TIMEDRL_TESTS_TESTING_GRADCHECK_H_
#define TIMEDRL_TESTS_TESTING_GRADCHECK_H_

#include <cmath>
#include <functional>
#include <string>
#include <vector>

#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace timedrl::testing {

struct GradCheckResult {
  bool ok = true;
  double max_abs_error = 0.0;
  std::string message;
};

/// Checks d(sum(fn(inputs)))/d(inputs) against finite differences.
///
/// `fn` must be a pure function of the input tensors (it is re-invoked many
/// times with perturbed values). Each input must have requires_grad set.
inline GradCheckResult GradCheck(
    const std::function<Tensor(const std::vector<Tensor>&)>& fn,
    std::vector<Tensor> inputs, float eps = 1e-2f, float atol = 2e-2f,
    float rtol = 5e-2f) {
  GradCheckResult result;

  // Analytic pass.
  for (Tensor& input : inputs) input.ZeroGrad();
  Tensor out = fn(inputs);
  Tensor loss = Sum(out);
  loss.Backward();

  auto scalar_loss = [&](const std::vector<Tensor>& xs) {
    NoGradGuard guard;
    Tensor y = fn(xs);
    double total = 0.0;
    for (float v : y.data()) total += v;
    return total;
  };

  for (size_t which = 0; which < inputs.size(); ++which) {
    Tensor& input = inputs[which];
    if (!input.requires_grad()) continue;
    const std::vector<float> analytic =
        input.has_grad() ? input.grad() : std::vector<float>(input.numel(), 0);
    for (int64_t i = 0; i < input.numel(); ++i) {
      const float original = input.data()[i];
      input.data()[i] = original + eps;
      const double plus = scalar_loss(inputs);
      input.data()[i] = original - eps;
      const double minus = scalar_loss(inputs);
      input.data()[i] = original;
      const double numeric = (plus - minus) / (2.0 * eps);
      const double abs_error = std::fabs(numeric - analytic[i]);
      const double scale =
          std::max(std::fabs(numeric), std::fabs(double{analytic[i]}));
      result.max_abs_error = std::max(result.max_abs_error, abs_error);
      if (abs_error > atol + rtol * scale) {
        result.ok = false;
        result.message = "input " + std::to_string(which) + " element " +
                         std::to_string(i) + ": analytic " +
                         std::to_string(analytic[i]) + " vs numeric " +
                         std::to_string(numeric);
        return result;
      }
    }
  }
  return result;
}

}  // namespace timedrl::testing

#endif  // TIMEDRL_TESTS_TESTING_GRADCHECK_H_
