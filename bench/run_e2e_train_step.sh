#!/usr/bin/env bash
# Runs the end-to-end training-step benchmark and records its JSON output at
# the repo root as BENCH_train_step.json. Build first:
#   cmake -B build -S . && cmake --build build -j --target e2e_train_step
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
bench_bin="${repo_root}/build/bench/e2e_train_step"

if [[ ! -x "${bench_bin}" ]]; then
  echo "error: ${bench_bin} not built; run:" >&2
  echo "  cmake -B build -S . && cmake --build build -j --target e2e_train_step" >&2
  exit 1
fi

out="${repo_root}/BENCH_train_step.json"
"${bench_bin}" | tee "${out}"
echo "wrote ${out}" >&2
