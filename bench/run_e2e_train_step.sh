#!/usr/bin/env bash
# Runs the end-to-end training-step benchmark and records its JSON output at
# the repo root as BENCH_train_step.json. The benchmark also times a
# trace-enabled phase (instrumentation overhead appears in the JSON as
# trace_overhead_pct) and exports a chrome://tracing file; by default that
# trace lands in the build tree, overridable via TIMEDRL_TRACE_OUT. A
# fusion phase times the pooled step with the fused transformer kernels on
# vs off (fused_ms_per_step / fusion_speedup keys) and checks the fused
# losses against the unfused path and across thread counts. A prefetch
# phase times the data pipeline with the background producer
# (TIMEDRL_PREFETCH_DEPTH, default 2) against the synchronous depth-0
# fallback (prefetch_ms_per_step / prefetch_speedup keys) and fails unless
# both arms end at bitwise-equal losses with zero steady-state pool misses.
# A final serve phase times frozen-session embedding encodes for batch
# sizes {1, 8, 32}
# (p50/p99 latency + throughput under the "serve" and "serve_unfused" JSON
# keys) and fails if the graph-free path allocates or records autograd
# state in steady state.
# Build first:
#   cmake -B build -S . && cmake --build build -j --target e2e_train_step
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
bench_bin="${repo_root}/build/bench/e2e_train_step"

if [[ ! -x "${bench_bin}" ]]; then
  echo "error: ${bench_bin} not built; run:" >&2
  echo "  cmake -B build -S . && cmake --build build -j --target e2e_train_step" >&2
  exit 1
fi

trace_out="${TIMEDRL_TRACE_OUT:-${repo_root}/build/trace_train_step.json}"

out="${repo_root}/BENCH_train_step.json"
TIMEDRL_TRACE_OUT="${trace_out}" "${bench_bin}" | tee "${out}"
echo "wrote ${out}" >&2
echo "trace: ${trace_out} (open at chrome://tracing or ui.perfetto.dev)" >&2
