// Extra ablation (not a paper table): the patch length P, the design choice
// DESIGN.md highlights as TimeDRL's efficiency mechanism. Sweeps P and
// reports forecasting MSE together with pre-training wall-clock, exposing
// the accuracy/cost trade-off the paper's Section IV-A describes
// qualitatively (context length L -> L/P + 1 tokens).

#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

namespace timedrl::bench {
namespace {

void Run() {
  Settings settings = Settings::FromEnv();
  Rng rng(20240615);
  std::printf("== Extra: patching ablation (patch length P, stride = P) ==\n");
  std::printf("Tokens per window = L/P + 1 (with L=%lld); smaller P means a "
              "longer Transformer context.\n\n",
              static_cast<long long>(settings.input_length));
  Stopwatch total;

  std::vector<ForecastData> suite =
      PrepareForecastSuite(settings, /*univariate=*/false, rng);
  const ForecastData& data = suite[0];  // ETTh1-like
  const int64_t horizon = data.horizons[2];

  TablePrinter table({"P", "Tokens", "Pretrain s", "MSE", "MAE"});
  for (int64_t patch : {2, 4, 8, 16, 24}) {
    if (settings.input_length % patch != 0) continue;
    Settings local = settings;
    local.patch_length = patch;
    local.patch_stride = patch;

    Rng local_rng(77);
    Stopwatch stopwatch;
    std::unique_ptr<core::TimeDrlModel> model =
        PretrainTimeDrlForecast(data, local, local_rng);
    const double pretrain_seconds = stopwatch.ElapsedSeconds();
    ForecastCell cell =
        EvalTimeDrlForecast(model.get(), data, horizon, local, local_rng);

    table.AddRow({std::to_string(patch),
                  std::to_string(settings.input_length / patch + 1),
                  TablePrinter::Num(pretrain_seconds, 1),
                  TablePrinter::Num(cell.mse), TablePrinter::Num(cell.mae)});
  }
  table.Print();
  std::printf("\nExpected: pre-training cost falls sharply as P grows "
              "(quadratic attention over fewer tokens); accuracy is flat "
              "through moderate P and degrades once patches blur the "
              "dynamics. Wall clock %.1fs\n",
              total.ElapsedSeconds());
}

}  // namespace
}  // namespace timedrl::bench

int main() {
  timedrl::bench::Run();
  return 0;
}
