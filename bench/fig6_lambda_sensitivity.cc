// Reproduces paper Fig. 6: sensitivity to lambda, the weight balancing the
// timestamp-predictive loss L_P and instance-contrastive loss L_C in
// L = L_P + lambda * L_C.

#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

namespace timedrl::bench {
namespace {

const std::vector<float> kLambdas = {0.001f, 0.01f, 0.1f, 1.0f,
                                     10.0f,  100.0f, 1000.0f};

void Run() {
  Settings settings = Settings::FromEnv();
  // lambda only shapes the *pre-training* objective; differences surface
  // once the encoder has actually specialized, so this bench trains longer
  // than the big tables.
  settings.ssl_epochs = 12;
  Rng rng(20240610);
  std::printf("== Fig. 6: sensitivity analysis on lambda ==\n");
  std::printf("Small lambda ~= predictive-only; large lambda ~= "
              "contrastive-only.\n\n");
  Stopwatch stopwatch;

  // Forecasting side (paper: ETTh1 MSE).
  std::vector<ForecastData> forecast_suite =
      PrepareForecastSuite(settings, /*univariate=*/false, rng);
  const ForecastData& forecast_data = forecast_suite.front();
  const int64_t horizon = forecast_data.horizons.back();

  // Classification side (paper: HAR accuracy).
  std::vector<ClassifyData> classify_suite =
      PrepareClassifySuite(settings, rng);
  const ClassifyData* har = nullptr;
  for (const auto& dataset : classify_suite) {
    if (dataset.name == "HAR") har = &dataset;
  }

  TablePrinter table({"lambda", "ETTh1-like MSE (T=" + std::to_string(horizon)
                                    + ")",
                      "HAR-like ACC"});
  double best_mse = 1e30;
  float best_mse_lambda = 0;
  double best_acc = -1;
  float best_acc_lambda = 0;

  for (float lambda : kLambdas) {
    // Forecasting with this lambda.
    Rng forecast_rng(101);
    core::TimeDrlConfig config = MakeTimeDrlConfig(
        settings, /*input_channels=*/1, settings.input_length);
    config.lambda_weight = lambda;
    auto forecast_model =
        std::make_unique<core::TimeDrlModel>(config, forecast_rng);
    data::ForecastingWindows pretrain_windows =
        forecast_data.PretrainWindows(settings);
    core::ForecastingSource source(&pretrain_windows,
                                   /*channel_independent=*/true);
    core::PretrainConfig pretrain_config;
    pretrain_config.train.epochs = settings.SslEpochs();
    pretrain_config.train.batch_size = settings.batch_size;
    core::Pretrain(forecast_model.get(), source, pretrain_config,
                   forecast_rng);
    ForecastCell cell = EvalTimeDrlForecast(forecast_model.get(),
                                            forecast_data, horizon, settings,
                                            forecast_rng);

    // Classification with this lambda.
    Rng classify_rng(102);
    std::unique_ptr<core::TimeDrlModel> classify_model =
        PretrainTimeDrlClassify(*har, settings, classify_rng, lambda,
                                /*stop_gradient=*/true);
    core::ClassificationMetrics metrics =
        EvalTimeDrlClassify(classify_model.get(), *har, core::Pooling::kCls,
                            settings, classify_rng);

    if (cell.mse < best_mse) {
      best_mse = cell.mse;
      best_mse_lambda = lambda;
    }
    if (metrics.accuracy > best_acc) {
      best_acc = metrics.accuracy;
      best_acc_lambda = lambda;
    }
    table.AddRow({TablePrinter::Num(lambda, 3), TablePrinter::Num(cell.mse),
                  TablePrinter::Num(metrics.accuracy * 100, 2)});
  }

  table.Print();
  std::printf("\nBest MSE at lambda=%g; best ACC at lambda=%g.\n",
              best_mse_lambda, best_acc_lambda);
  std::printf("Paper's shape: both extremes degrade; balanced lambda (~1) "
              "performs best on both tasks. Wall clock %.1fs\n",
              stopwatch.ElapsedSeconds());
}

}  // namespace
}  // namespace timedrl::bench

int main() {
  timedrl::bench::Run();
  return 0;
}
