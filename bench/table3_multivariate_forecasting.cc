// Reproduces paper Table III: linear evaluation on multivariate forecasting.

#include "bench/forecast_table.h"

int main() {
  timedrl::bench::RunForecastTable(/*univariate=*/false, "Table III");
  return 0;
}
