// Reproduces paper Table VIII: ablation on the backbone encoder
// architecture (Transformer encoder/decoder, ResNet, TCN, LSTM, Bi-LSTM).

#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

namespace timedrl::bench {
namespace {

double RunWithBackbone(const ForecastData& data, nn::BackboneKind kind,
                       int64_t horizon, const Settings& settings) {
  Rng rng(121);
  core::TimeDrlConfig config =
      MakeTimeDrlConfig(settings, /*input_channels=*/1, settings.input_length);
  config.backbone = kind;
  auto model = std::make_unique<core::TimeDrlModel>(config, rng);

  data::ForecastingWindows windows = data.PretrainWindows(settings);
  core::ForecastingSource source(&windows, /*channel_independent=*/true);
  core::PretrainConfig pretrain_config;
  pretrain_config.train.epochs = settings.SslEpochs();
  pretrain_config.train.batch_size = settings.batch_size;
  core::Pretrain(model.get(), source, pretrain_config, rng);

  return EvalTimeDrlForecast(model.get(), data, horizon, settings, rng).mse;
}

void Run() {
  Settings settings = Settings::FromEnv();
  Rng rng(20240613);
  std::printf("== Table VIII: ablation on the backbone encoder (MSE) ==\n\n");
  Stopwatch stopwatch;

  std::vector<ForecastData> suite =
      PrepareForecastSuite(settings, /*univariate=*/false, rng);
  const ForecastData* etth1 = nullptr;
  const ForecastData* exchange = nullptr;
  for (const auto& data : suite) {
    if (data.name == "ETTh1") etth1 = &data;
    if (data.name == "Exchange") exchange = &data;
  }
  const int64_t horizon_ett = etth1->horizons.back();
  const int64_t horizon_exchange = exchange->horizons.back();

  const std::vector<nn::BackboneKind> kinds = {
      nn::BackboneKind::kTransformerEncoder,
      nn::BackboneKind::kTransformerDecoder,
      nn::BackboneKind::kResNet,
      nn::BackboneKind::kTcn,
      nn::BackboneKind::kLstm,
      nn::BackboneKind::kBiLstm,
  };

  TablePrinter table({"Backbone", "ETTh1-like", "Exchange-like"});
  double base_ett = 0.0;
  double base_exchange = 0.0;
  for (nn::BackboneKind kind : kinds) {
    const double mse_ett =
        RunWithBackbone(*etth1, kind, horizon_ett, settings);
    const double mse_exchange =
        RunWithBackbone(*exchange, kind, horizon_exchange, settings);
    std::string name = nn::BackboneName(kind);
    if (kind == nn::BackboneKind::kTransformerEncoder) {
      name += " (Ours)";
      base_ett = mse_ett;
      base_exchange = mse_exchange;
      table.AddRow({name, TablePrinter::Num(mse_ett),
                    TablePrinter::Num(mse_exchange)});
    } else {
      table.AddRow(
          {name,
           TablePrinter::Num(mse_ett) + " (" +
               TablePrinter::Pct(mse_ett / base_ett - 1.0) + ")",
           TablePrinter::Num(mse_exchange) + " (" +
               TablePrinter::Pct(mse_exchange / base_exchange - 1.0) + ")"});
    }
  }
  table.Print();
  std::printf("\nPaper's shape: Transformer encoder best; the causal decoder "
              "trails it (bidirectionality matters); Bi-LSTM > LSTM. "
              "Wall clock %.1fs\n",
              stopwatch.ElapsedSeconds());
}

}  // namespace
}  // namespace timedrl::bench

int main() {
  timedrl::bench::Run();
  return 0;
}
