#include "bench/forecast_table.h"

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

namespace timedrl::bench {

void RunForecastTable(bool univariate, const char* table_name) {
  Settings settings = Settings::FromEnv();
  Rng rng(20240607);

  std::printf("== %s: linear evaluation on %s time-series forecasting ==\n",
              table_name, univariate ? "univariate" : "multivariate");
  std::printf(
      "(synthetic stand-ins for the paper's datasets; shapes, not absolute "
      "values, are the reproduction target)\n\n");

  const std::vector<std::string> ssl_names = SslForecastBaselineNames();
  const std::vector<std::string> e2e_names = {"Informer", "TCN"};

  std::vector<std::string> header = {"Dataset", "T"};
  for (const std::string& method :
       std::vector<std::string>{"TimeDRL", "SimTS", "TS2Vec", "TNC", "CoST",
                                "Informer", "TCN"}) {
    header.push_back(method + " MSE");
    header.push_back(method + " MAE");
  }
  TablePrinter table(header);

  int64_t cells = 0;
  int64_t timedrl_best_mse = 0;
  Stopwatch stopwatch;

  std::vector<ForecastData> suite =
      PrepareForecastSuite(settings, univariate, rng);
  for (const ForecastData& data : suite) {
    // SSL encoders are horizon-independent: pre-train once per dataset.
    std::unique_ptr<core::TimeDrlModel> timedrl =
        PretrainTimeDrlForecast(data, settings, rng);
    std::map<std::string, std::unique_ptr<baselines::SslBaseline>> ssl;
    for (const std::string& name : ssl_names) {
      ssl[name] = PretrainBaselineForecast(name, data, settings, rng);
    }

    for (int64_t horizon : data.horizons) {
      std::vector<std::string> row = {data.name, std::to_string(horizon)};
      std::vector<double> mses;

      ForecastCell ours =
          EvalTimeDrlForecast(timedrl.get(), data, horizon, settings, rng);
      row.push_back(TablePrinter::Num(ours.mse));
      row.push_back(TablePrinter::Num(ours.mae));
      mses.push_back(ours.mse);

      for (const std::string& name : ssl_names) {
        ForecastCell cell =
            EvalBaselineForecast(ssl[name].get(), data, horizon, settings,
                                 rng);
        row.push_back(TablePrinter::Num(cell.mse));
        row.push_back(TablePrinter::Num(cell.mae));
        mses.push_back(cell.mse);
      }
      for (const std::string& name : e2e_names) {
        ForecastCell cell =
            EvalEndToEndForecast(name, data, horizon, settings, rng);
        row.push_back(TablePrinter::Num(cell.mse));
        row.push_back(TablePrinter::Num(cell.mae));
        mses.push_back(cell.mse);
      }

      bool ours_best = true;
      for (size_t m = 1; m < mses.size(); ++m) {
        if (mses[m] < mses[0]) ours_best = false;
      }
      ++cells;
      if (ours_best) ++timedrl_best_mse;
      table.AddRow(row);
    }
    table.AddSeparator();
  }

  table.Print();
  std::printf(
      "\nTimeDRL best-in-row (MSE): %lld / %lld cells  |  wall clock %.1fs\n",
      static_cast<long long>(timedrl_best_mse), static_cast<long long>(cells),
      stopwatch.ElapsedSeconds());
  std::printf("Paper's shape: TimeDRL best or tied-best in nearly all cells "
              "(avg MSE improvement %s).\n",
              univariate ? "29.09%" : "58.02%");
}

}  // namespace timedrl::bench
