// Reproduces paper Fig. 4: pre-training wall-clock time of TimeDRL vs the
// two strongest baselines (SimTS, TS2Vec) on the forecasting datasets.
//
// Matches the paper's protocol at bench scale: fixed batch size 32, one
// timed epoch, sequence length 128 (scaled from the paper's 512). TimeDRL's
// patching shrinks its Transformer context to 128/8 + 1 = 17 tokens, which
// is what keeps it within range of the convolutional encoders.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "bench/harness.h"
#include "data/loader.h"
#include "optim/optimizer.h"

namespace timedrl::bench {
namespace {

constexpr int64_t kSequenceLength = 128;
constexpr int64_t kBatchSize = 32;

Settings Fig4Settings() {
  Settings settings = Settings::FromEnv();
  settings.input_length = kSequenceLength;
  settings.batch_size = kBatchSize;
  // The long timing window (T=128) needs longer series than the accuracy
  // benches so the splits can still host at least one horizon.
  settings.data_scale *= 2.5;
  return settings;
}

/// One pre-training epoch of TimeDRL (channel-independent, as in the
/// forecasting experiments).
void BM_TimeDRL(benchmark::State& state, const std::string& dataset_name) {
  Settings settings = Fig4Settings();
  Rng rng(7);
  std::vector<ForecastData> suite =
      PrepareForecastSuite(settings, /*univariate=*/false, rng);
  const ForecastData* data = nullptr;
  for (const auto& candidate : suite) {
    if (candidate.name == dataset_name) data = &candidate;
  }
  core::TimeDrlConfig config =
      MakeTimeDrlConfig(settings, /*input_channels=*/1, kSequenceLength);
  core::TimeDrlModel model(config, rng);
  data::ForecastingWindows windows = data->PretrainWindows(settings);
  core::ForecastingSource source(&windows, /*channel_independent=*/true);
  core::PretrainConfig pretrain_config;
  pretrain_config.train.epochs = 1;
  pretrain_config.train.batch_size = kBatchSize;

  for (auto _ : state) {
    core::Pretrain(&model, source, pretrain_config, rng);
  }
}

/// One pre-training epoch of a conv-encoder SSL baseline.
void BM_Baseline(benchmark::State& state, const std::string& method,
                 const std::string& dataset_name) {
  Settings settings = Fig4Settings();
  Rng rng(7);
  std::vector<ForecastData> suite =
      PrepareForecastSuite(settings, /*univariate=*/false, rng);
  const ForecastData* data = nullptr;
  for (const auto& candidate : suite) {
    if (candidate.name == dataset_name) data = &candidate;
  }
  std::unique_ptr<baselines::SslBaseline> model =
      MakeSslBaseline(method, data->channels, /*num_classes=*/0, settings,
                      rng);
  data::ForecastingWindows windows = data->PretrainWindows(settings);
  core::ForecastingSource source(&windows, /*channel_independent=*/false);
  core::PretrainConfig pretrain_config;
  pretrain_config.train.epochs = 1;
  pretrain_config.train.batch_size = kBatchSize;

  for (auto _ : state) {
    baselines::TrainSslBaseline(model.get(), source, pretrain_config, rng);
  }
}

void RegisterAll() {
  const std::vector<std::string> datasets = {"ETTh1", "ETTh2",   "ETTm1",
                                             "ETTm2", "Exchange", "Weather"};
  for (const std::string& dataset : datasets) {
    benchmark::RegisterBenchmark(("TimeDRL/" + dataset).c_str(),
                                 [dataset](benchmark::State& state) {
                                   BM_TimeDRL(state, dataset);
                                 })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    for (const std::string method : {"SimTS", "TS2Vec"}) {
      benchmark::RegisterBenchmark(
          (method + "/" + dataset).c_str(),
          [method, dataset](benchmark::State& state) {
            BM_Baseline(state, method, dataset);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

}  // namespace
}  // namespace timedrl::bench

int main(int argc, char** argv) {
  std::printf("== Fig. 4: pre-training time per epoch (batch 32, T=%lld) ==\n",
              static_cast<long long>(timedrl::bench::kSequenceLength));
  std::printf("Paper's shape: conv baselines fastest; TimeDRL's patching "
              "keeps the Transformer within the same order of magnitude.\n\n");
  timedrl::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
