// End-to-end training-step benchmark: one full TimeDRL pretext step
// (forward + backward + grad clip + AdamW update) per iteration, timed in
// two modes:
//
//   baseline — pre-pool allocation behavior: the buffer pool is disabled
//     (every tensor buffer comes fresh from the system allocator) and
//     Backward() retains the autograd graph, so activation storage for the
//     whole graph stays live until the step's tensors go out of scope.
//   pooled — the shipped configuration: all storage recycles through the
//     buffer pool and Backward() releases graph nodes eagerly, returning
//     activation buffers mid-walk.
//
// Both modes run identical kernels in identical order from identical seeds,
// so the final losses must match bitwise; the benchmark aborts if they
// diverge. The two modes are interleaved in alternating segments and
// compared on per-segment medians, which cancels machine-level drift (CPU
// frequency, noisy neighbors) that a run-A-then-run-B layout bakes into the
// comparison. Results are printed as JSON on stdout (see
// bench/run_e2e_train_step.sh, which captures them into
// BENCH_train_step.json at the repo root).
//
// A fusion phase times the same pooled step with the fused transformer
// kernels (tensor/ops_fused.h) on vs off (TIMEDRL_FUSION_DISABLE
// fallback), interleaved like the pool comparison, and verifies that the
// fused losses stay within 1e-4 relative of the unfused path and are
// bitwise identical across thread counts.
//
// A simd phase times the same pooled fused step with the runtime-dispatched
// vector backend (tensor/kernels/dispatch.h) against the forced-scalar
// reference path, interleaved per segment, and verifies the vector losses
// stay within 1e-5 relative of scalar. The detected CPU feature string and
// the auto-selected ISA are recorded so the numbers are interpretable on
// any machine.
//
// A final serve phase freezes a model into a checkpoint, opens a
// serve::InferenceSession on it, and times graph-free Encode() calls for
// each planned batch size — fusion on (steady state must show zero pool
// misses and zero autograd nodes) and fusion off ("serve_unfused") —
// reporting p50/p99 latency and throughput under the "serve" /
// "serve_unfused" keys of the same JSON object.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "augment/augment.h"
#include "core/config.h"
#include "core/model.h"
#include "core/pretrainer.h"
#include "core/sources.h"
#include "data/loader.h"
#include "data/synthetic.h"
#include "data/windows.h"
#include "nn/serialize.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "optim/optimizer.h"
#include "serve/inference_session.h"
#include "tensor/buffer_pool.h"
#include "tensor/kernels/dispatch.h"
#include "tensor/ops_fused.h"
#include "tensor/tensor.h"
#include "util/env.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace timedrl {
namespace {

// Sized so activation tensors are tens to hundreds of KB — the regime a
// real pre-training run lives in, where allocator churn (zero-init passes,
// mmap/munmap round trips) is a visible slice of step time. Fine patching
// of a long series gives 128 patch tokens, so the transformer's attention
// maps, not just its projections, carry real weight.
constexpr int64_t kBatch = 8;
constexpr int kWarmupSteps = 3;
constexpr int kSegments = 5;
constexpr int kStepsPerSegment = 8;

core::TimeDrlConfig BenchConfig() {
  core::TimeDrlConfig config;
  config.input_channels = 8;
  config.input_length = 1024;
  config.patch_length = 8;
  config.patch_stride = 8;
  config.d_model = 32;
  config.num_heads = 4;
  config.ff_dim = 64;
  config.num_layers = 2;
  return config;
}

// One independent training run: model + optimizer + data stream from fixed
// seeds. Both modes get their own state, built from the SAME seeds, so step
// t of one mode is numerically the same work as step t of the other.
struct TrainState {
  core::TimeDrlConfig config = BenchConfig();
  Rng rng{42};
  core::TimeDrlModel model{config, rng};
  optim::AdamW optimizer{model.Parameters(), /*learning_rate=*/1e-3f,
                         /*weight_decay=*/1e-2f};
  Rng data_rng{7};
  float last_loss = 0.0f;

  // `retain_graph` models the pre-release behavior (see file comment).
  void Step(bool retain_graph) {
    Tensor x = Tensor::Randn({kBatch, config.input_length,
                              config.input_channels},
                             data_rng);
    auto output = model.PretextStep(x);
    optimizer.ZeroGrad();
    output.total.Backward(retain_graph);
    optim::ClipGradNorm(optimizer.parameters(), /*max_norm=*/5.0f);
    optimizer.Step();
    last_loss = output.total.item();
  }

  TrainState() { model.Train(); }
};

double Median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

// One independent data-pipeline training run for the prefetch phase:
// channel-independent forecasting windows with two jittered views per batch,
// so batch assembly (gather + reshape + augmentation draws) carries real
// latency for the producer thread to hide. Both arms (depth 0 and depth N)
// are built from the SAME seeds; the loader forks each batch's augment
// sub-stream at claim time, so the arms see bitwise-identical batches and
// their losses must match bitwise.
struct PrefetchState {
  core::TimeDrlConfig config;
  Rng data_rng{21};
  data::TimeSeries series;
  data::ForecastingWindows windows;
  core::ForecastingSource source;
  Rng model_rng{42};
  core::TimeDrlModel model;
  optim::AdamW optimizer;
  Rng loader_rng{7};
  data::DataLoader loader;
  data::Batch batch;
  float last_loss = 0.0f;

  static core::TimeDrlConfig PrefetchConfig() {
    core::TimeDrlConfig config;
    config.input_channels = 1;  // channel-independent
    config.input_length = 128;
    config.patch_length = 8;
    config.patch_stride = 8;
    config.d_model = 16;
    config.num_heads = 4;
    config.ff_dim = 32;
    config.num_layers = 1;
    return config;
  }

  static data::DataLoaderOptions Options(int64_t depth) {
    data::DataLoaderOptions options;
    options.batch_size = 16;
    options.shuffle = true;
    options.prefetch_depth = depth;
    options.augmentation = augment::Kind::kJitter;
    return options;
  }

  explicit PrefetchState(int64_t depth)
      : config(PrefetchConfig()),
        series(data::MakeEttLike(/*length=*/2048, /*period=*/24,
                                 /*variant=*/1, data_rng)),
        windows(series, config.input_length, /*horizon=*/0, /*stride=*/2),
        source(&windows, /*channel_independent=*/true),
        model(config, model_rng),
        optimizer(model.Parameters(), /*learning_rate=*/1e-3f,
                  /*weight_decay=*/1e-2f),
        loader(source, Options(depth), loader_rng) {
    model.Train();
  }

  void Step() {
    if (!loader.Next(&batch)) {
      loader.Reset();
      if (!loader.Next(&batch)) return;
    }
    auto output = model.PretextStepViews(batch.view1, batch.view2);
    optimizer.ZeroGrad();
    output.total.Backward();
    optim::ClipGradNorm(optimizer.parameters(), /*max_norm=*/5.0f);
    optimizer.Step();
    last_loss = output.total.item();
  }
};

double TimedPrefetchSegment(PrefetchState& state) {
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kStepsPerSegment; ++i) state.Step();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(stop - start).count() /
         kStepsPerSegment;
}

// Runs one timed segment of `state` in the given pool mode and returns
// ms/step. The pool flag is global, so each segment sets it for its mode.
double TimedSegment(TrainState& state, bool pooled) {
  pool::SetEnabled(pooled);
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kStepsPerSegment; ++i) {
    state.Step(/*retain_graph=*/!pooled);
  }
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(stop - start).count() /
         kStepsPerSegment;
}

int Main() {
  // Both states are constructed and warmed up in their own pool mode.
  pool::SetEnabled(false);
  auto baseline = std::make_unique<TrainState>();
  for (int i = 0; i < kWarmupSteps; ++i) baseline->Step(true);

  pool::SetEnabled(true);
  auto pooled = std::make_unique<TrainState>();
  for (int i = 0; i < kWarmupSteps; ++i) pooled->Step(false);
  const uint64_t misses_before =
      obs::Registry::Global().GetCounter("pool.misses").value();

  std::vector<double> baseline_ms;
  std::vector<double> pooled_ms;
  for (int segment = 0; segment < kSegments; ++segment) {
    baseline_ms.push_back(TimedSegment(*baseline, /*pooled=*/false));
    pooled_ms.push_back(TimedSegment(*pooled, /*pooled=*/true));
  }
  const uint64_t steady_misses =
      obs::Registry::Global().GetCounter("pool.misses").value() -
      misses_before;

  if (baseline->last_loss != pooled->last_loss) {
    std::fprintf(stderr,
                 "FATAL: pooled loss %.9g != baseline loss %.9g — pooling "
                 "changed numerics\n",
                 double{pooled->last_loss}, double{baseline->last_loss});
    return 1;
  }

  const double baseline_med = Median(baseline_ms);
  const double pooled_med = Median(pooled_ms);
  const double speedup = baseline_med / pooled_med;
  const double improvement_pct = (1.0 - pooled_med / baseline_med) * 100.0;

  // ---- Fusion phase --------------------------------------------------------
  // The pooled configuration with the fused transformer kernels on vs off,
  // interleaved per segment like the pool comparison. Both states run from
  // the same seeds; the fused LayerNorm's Welford statistics round
  // differently from the composed two-pass mean/var, so losses are compared
  // within 1e-4 relative rather than bitwise.
  const bool fusion_was_enabled = fusion::Enabled();
  fusion::SetEnabled(false);
  auto unfused = std::make_unique<TrainState>();
  for (int i = 0; i < kWarmupSteps; ++i) unfused->Step(false);
  fusion::SetEnabled(true);
  auto fused = std::make_unique<TrainState>();
  for (int i = 0; i < kWarmupSteps; ++i) fused->Step(false);

  std::vector<double> unfused_ms;
  std::vector<double> fused_ms;
  for (int segment = 0; segment < kSegments; ++segment) {
    fusion::SetEnabled(false);
    unfused_ms.push_back(TimedSegment(*unfused, /*pooled=*/true));
    fusion::SetEnabled(true);
    fused_ms.push_back(TimedSegment(*fused, /*pooled=*/true));
  }
  const double loss_scale = std::max(std::fabs(double{fused->last_loss}),
                                     std::fabs(double{unfused->last_loss}));
  const double fusion_loss_rel_diff =
      loss_scale == 0.0
          ? 0.0
          : std::fabs(double{fused->last_loss} -
                      double{unfused->last_loss}) / loss_scale;
  if (fusion_loss_rel_diff > 1e-4) {
    std::fprintf(stderr,
                 "FATAL: fused loss %.9g vs unfused loss %.9g (rel diff "
                 "%.3g > 1e-4) — fusion changed numerics\n",
                 double{fused->last_loss}, double{unfused->last_loss},
                 fusion_loss_rel_diff);
    return 1;
  }

  // Fused training must be a pure function of the seeds, independent of the
  // thread count: rerun a few fused steps at several pool sizes and demand
  // bitwise-equal losses.
  const int original_threads = NumThreads();
  float thread_losses[3] = {0.0f, 0.0f, 0.0f};
  {
    const int thread_counts[3] = {1, 2, 4};
    for (int t = 0; t < 3; ++t) {
      SetNumThreads(thread_counts[t]);
      TrainState state;
      for (int i = 0; i < 2; ++i) state.Step(/*retain_graph=*/false);
      thread_losses[t] = state.last_loss;
    }
    SetNumThreads(original_threads);
  }
  const bool fusion_thread_bitwise = thread_losses[0] == thread_losses[1] &&
                                     thread_losses[1] == thread_losses[2];
  if (!fusion_thread_bitwise) {
    std::fprintf(stderr,
                 "FATAL: fused losses diverge across thread counts: %.9g / "
                 "%.9g / %.9g\n",
                 double{thread_losses[0]}, double{thread_losses[1]},
                 double{thread_losses[2]});
    return 1;
  }

  const double unfused_med = Median(unfused_ms);
  const double fused_med = Median(fused_ms);
  const double fusion_speedup = unfused_med / fused_med;
  const double fusion_improvement_pct =
      (1.0 - fused_med / unfused_med) * 100.0;
  unfused.reset();
  fused.reset();

  // ---- SIMD phase ----------------------------------------------------------
  // The pooled fused step on the auto-selected vector backend vs the
  // forced-scalar reference, interleaved per segment like the other phases.
  // On a machine with no vector ISA both arms run the same scalar path and
  // the speedup is noise around 1.0; simd_isa says which case this was.
  // Cross-path losses are tolerance-compared, not bitwise: the vector
  // kernels reassociate lane reductions and use polynomial exp/tanh.
  namespace simd = kernels::simd;
  const simd::Isa simd_isa = simd::ActiveIsa();
  double simd_scalar_med = 0.0;
  double simd_med = 0.0;
  double simd_loss_rel_diff = 0.0;
  {
    simd::SetIsa(simd::Isa::kScalar);
    auto scalar_state = std::make_unique<TrainState>();
    for (int i = 0; i < kWarmupSteps; ++i) scalar_state->Step(false);
    simd::SetIsa(simd_isa);
    auto vector_state = std::make_unique<TrainState>();
    for (int i = 0; i < kWarmupSteps; ++i) vector_state->Step(false);

    std::vector<double> scalar_ms;
    std::vector<double> vector_ms;
    for (int segment = 0; segment < kSegments; ++segment) {
      simd::SetIsa(simd::Isa::kScalar);
      scalar_ms.push_back(TimedSegment(*scalar_state, /*pooled=*/true));
      simd::SetIsa(simd_isa);
      vector_ms.push_back(TimedSegment(*vector_state, /*pooled=*/true));
    }
    simd_scalar_med = Median(scalar_ms);
    simd_med = Median(vector_ms);
    const double simd_loss_scale =
        std::max(std::fabs(double{vector_state->last_loss}),
                 std::fabs(double{scalar_state->last_loss}));
    simd_loss_rel_diff =
        simd_loss_scale == 0.0
            ? 0.0
            : std::fabs(double{vector_state->last_loss} -
                        double{scalar_state->last_loss}) / simd_loss_scale;
    if (simd_loss_rel_diff > 1e-5) {
      std::fprintf(stderr,
                   "FATAL: %s loss %.9g vs scalar loss %.9g (rel diff %.3g > "
                   "1e-5) — the vector backend changed numerics\n",
                   simd::IsaName(simd_isa),
                   double{vector_state->last_loss},
                   double{scalar_state->last_loss}, simd_loss_rel_diff);
      return 1;
    }
  }
  const double simd_speedup = simd_scalar_med / simd_med;
  const double simd_improvement_pct =
      (1.0 - simd_med / simd_scalar_med) * 100.0;

  // ---- Prefetch phase ------------------------------------------------------
  // The data pipeline's background producer (TIMEDRL_PREFETCH_DEPTH,
  // default 2) vs the synchronous depth-0 fallback, interleaved per segment
  // like the other phases. The depth-N arm must be bitwise-equal to the
  // depth-0 arm and must hold the pool's zero-miss steady state.
  const int64_t prefetch_depth =
      util::Env::GetInt("TIMEDRL_PREFETCH_DEPTH", 2, /*min_value=*/0,
                        /*max_value=*/1024);
  double prefetch_sync_med = 0.0;
  double prefetch_med = 0.0;
  uint64_t prefetch_steady_misses = 0;
  float prefetch_losses[2] = {0.0f, 0.0f};
  {
    pool::SetEnabled(true);
    PrefetchState sync_state(/*depth=*/0);
    PrefetchState prefetch_state(prefetch_depth);
    for (int i = 0; i < 2 * kWarmupSteps; ++i) sync_state.Step();
    for (int i = 0; i < 2 * kWarmupSteps; ++i) prefetch_state.Step();
    const uint64_t prefetch_misses_before =
        obs::Registry::Global().GetCounter("pool.misses").value();
    std::vector<double> sync_ms;
    std::vector<double> prefetch_ms;
    for (int segment = 0; segment < kSegments; ++segment) {
      sync_ms.push_back(TimedPrefetchSegment(sync_state));
      prefetch_ms.push_back(TimedPrefetchSegment(prefetch_state));
    }
    prefetch_steady_misses =
        obs::Registry::Global().GetCounter("pool.misses").value() -
        prefetch_misses_before;
    prefetch_sync_med = Median(sync_ms);
    prefetch_med = Median(prefetch_ms);
    prefetch_losses[0] = sync_state.last_loss;
    prefetch_losses[1] = prefetch_state.last_loss;
  }
  if (prefetch_losses[0] != prefetch_losses[1]) {
    std::fprintf(stderr,
                 "FATAL: prefetch loss %.9g != synchronous loss %.9g — "
                 "prefetching changed numerics\n",
                 double{prefetch_losses[1]}, double{prefetch_losses[0]});
    return 1;
  }
  if (prefetch_steady_misses != 0) {
    std::fprintf(stderr,
                 "FATAL: prefetch steady state not clean: %llu pool misses\n",
                 static_cast<unsigned long long>(prefetch_steady_misses));
    return 1;
  }
  const double prefetch_speedup = prefetch_sync_med / prefetch_med;
  const double prefetch_improvement_pct =
      (1.0 - prefetch_med / prefetch_sync_med) * 100.0;
  // Overlap needs a core for the producer: on a single-CPU host the two
  // arms time-slice and the speedup is noise around 1.0. Recorded so the
  // JSON is interpretable wherever it was produced.
  const unsigned prefetch_cores = std::thread::hardware_concurrency();
  double prefetch_assemble_ms = 0.0;
  double prefetch_wait_ms = 0.0;
  {
    const obs::MetricsSnapshot snapshot = obs::Registry::Global().Snapshot();
    for (const auto& [name, stats] : snapshot.histograms) {
      if (stats.count == 0) continue;
      if (name == "prefetch.assemble_ns") {
        prefetch_assemble_ms = stats.mean() / 1e6;
      } else if (name == "prefetch.queue_wait_ns") {
        prefetch_wait_ms = stats.mean() / 1e6;
      }
    }
  }

  // Instrumentation-overhead phase: the same pooled configuration with
  // tracing toggled per segment, interleaved so machine drift cancels.
  // Trace spans accumulate only in the traced segments.
  const bool trace_was_enabled = obs::TraceEnabled();
  std::vector<double> untraced_ms;
  std::vector<double> traced_ms;
  for (int segment = 0; segment < kSegments; ++segment) {
    obs::SetTraceEnabled(false);
    untraced_ms.push_back(TimedSegment(*pooled, /*pooled=*/true));
    obs::SetTraceEnabled(true);
    traced_ms.push_back(TimedSegment(*pooled, /*pooled=*/true));
  }

  // A short pre-training run while tracing is still on, so the exported
  // trace shows the full hierarchy: epoch/step spans over autograd ops over
  // kernels, next to pool and optimizer activity.
  {
    Rng trace_rng(11);
    data::TimeSeries series = data::MakeEttLike(400, 24, 1, trace_rng);
    data::ForecastingWindows windows(series, 32, 0, 4);
    core::ForecastingSource source(&windows, /*channel_independent=*/true);
    core::TimeDrlConfig small;
    small.input_channels = 1;
    small.input_length = 32;
    small.patch_length = 8;
    small.patch_stride = 8;
    small.d_model = 16;
    small.num_heads = 2;
    small.ff_dim = 32;
    small.num_layers = 1;
    core::TimeDrlModel trace_model(small, trace_rng);
    core::PretrainConfig pretrain;
    pretrain.train.epochs = 2;
    pretrain.train.batch_size = 16;
    core::Pretrain(&trace_model, source, pretrain, trace_rng);
  }
  obs::SetTraceEnabled(trace_was_enabled);

  const std::string trace_file =
      util::Env::GetString("TIMEDRL_TRACE_OUT", "trace_train_step.json");
  const bool trace_written = obs::WriteChromeTraceFile(trace_file);
  const uint64_t trace_events = obs::TraceEventCount();

  const double untraced_med = Median(untraced_ms);
  const double traced_med = Median(traced_ms);
  const double trace_overhead_pct =
      (traced_med / untraced_med - 1.0) * 100.0;

  // ---- Serve phase ---------------------------------------------------------
  // Frozen-session embedding latency for each planned batch size, plus the
  // two steady-state invariants of the graph-free inference path: zero pool
  // misses and zero autograd nodes across all timed encodes.
  std::string serve_json;
  std::string serve_unfused_json;
  uint64_t serve_misses = 0;
  int64_t serve_graph_nodes = 0;
  {
    pool::SetEnabled(true);
    core::TimeDrlConfig serve_config;
    serve_config.input_channels = 4;
    serve_config.input_length = 64;
    serve_config.patch_length = 8;
    serve_config.patch_stride = 8;
    serve_config.d_model = 32;
    serve_config.num_heads = 4;
    serve_config.ff_dim = 64;
    serve_config.num_layers = 2;
    Rng serve_rng(3);
    core::TimeDrlModel serve_model(serve_config, serve_rng);
    const char* ckpt_path = "bench_serve.ckpt";
    Status save_status = nn::SaveParameters(serve_model, ckpt_path);
    if (!save_status.ok()) {
      std::fprintf(stderr, "FATAL: %s\n", save_status.ToString().c_str());
      return 1;
    }
    serve::InferenceSessionConfig session_config;
    session_config.model = serve_config;
    session_config.planned_batch_sizes = {1, 8, 32};
    std::unique_ptr<serve::InferenceSession> session;
    Status open_status =
        serve::InferenceSession::Open(ckpt_path, session_config, &session);
    std::remove(ckpt_path);
    if (!open_status.ok()) {
      std::fprintf(stderr, "FATAL: %s\n", open_status.ToString().c_str());
      return 1;
    }

    constexpr int kServeIters = 50;
    // Times kServeIters encodes per planned batch size and returns the
    // per-batch JSON lines. Reused for the fused and unfused passes.
    auto time_batches = [&](Rng& rng) {
      std::string json;
      for (int64_t b : session_config.planned_batch_sizes) {
        Tensor x = Tensor::Randn({b, serve_config.input_length,
                                  serve_config.input_channels},
                                 rng);
        std::vector<double> latency_us;
        latency_us.reserve(kServeIters);
        const auto loop_start = std::chrono::steady_clock::now();
        for (int i = 0; i < kServeIters; ++i) {
          const auto start = std::chrono::steady_clock::now();
          serve::Embeddings embeddings = session->Encode(x);
          latency_us.push_back(std::chrono::duration<double, std::micro>(
                                   std::chrono::steady_clock::now() - start)
                                   .count());
        }
        const double elapsed_s =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          loop_start)
                .count();
        std::sort(latency_us.begin(), latency_us.end());
        char line[256];
        std::snprintf(line, sizeof(line),
                      "    \"batch_%lld\": {\"p50_us\": %.1f, \"p99_us\": "
                      "%.1f, \"throughput_rps\": %.1f},\n",
                      static_cast<long long>(b),
                      latency_us[latency_us.size() / 2],
                      latency_us[static_cast<size_t>(
                          0.99 * (latency_us.size() - 1))],
                      static_cast<double>(b) * kServeIters / elapsed_s);
        json += line;
      }
      return json;
    };

    // Open() already warmed each planned shape; one more round with the
    // request tensors' exact allocation pattern, then snapshot the
    // steady-state counters the timed loops must not move.
    for (int64_t b : session_config.planned_batch_sizes) {
      (void)session->Encode(
          Tensor::Randn({b, serve_config.input_length,
                         serve_config.input_channels},
                        serve_rng));
    }
    const uint64_t misses_at_steady =
        obs::Registry::Global().GetCounter("pool.misses").value();
    const int64_t nodes_at_steady = GraphNodesCreated();

    serve_json = "{\n" + time_batches(serve_rng);
    serve_misses =
        obs::Registry::Global().GetCounter("pool.misses").value() -
        misses_at_steady;
    serve_graph_nodes = GraphNodesCreated() - nodes_at_steady;
    char tail[160];
    std::snprintf(tail, sizeof(tail),
                  "    \"steady_state_pool_misses\": %llu,\n"
                  "    \"steady_state_graph_nodes\": %lld\n  }",
                  static_cast<unsigned long long>(serve_misses),
                  static_cast<long long>(serve_graph_nodes));
    serve_json += tail;

    // Unfused serve pass: same session and batch sizes with the composed
    // fallback ops, so the JSON shows what fusion buys the serve path. The
    // composed path materializes extra intermediates the fused warmup never
    // allocated, so it gets its own warmup round and is exempt from the
    // zero-miss steady-state invariant (the shipped configuration is fused).
    fusion::SetEnabled(false);
    for (int64_t b : session_config.planned_batch_sizes) {
      (void)session->Encode(
          Tensor::Randn({b, serve_config.input_length,
                         serve_config.input_channels},
                        serve_rng));
    }
    serve_unfused_json = "{\n" + time_batches(serve_rng);
    // Trim the trailing ",\n" left by the last batch line.
    serve_unfused_json.resize(serve_unfused_json.size() - 2);
    serve_unfused_json += "\n  }";
    fusion::SetEnabled(true);
  }
  if (serve_misses != 0 || serve_graph_nodes != 0) {
    std::fprintf(stderr,
                 "FATAL: serve steady state not clean: %llu pool misses, "
                 "%lld autograd nodes\n",
                 static_cast<unsigned long long>(serve_misses),
                 static_cast<long long>(serve_graph_nodes));
    return 1;
  }
  fusion::SetEnabled(fusion_was_enabled);

  std::printf(
      "{\n"
      "  \"benchmark\": \"e2e_train_step\",\n"
      "  \"config\": {\"batch\": %lld, \"input_length\": 1024, "
      "\"channels\": 8, \"patch\": 8, \"d_model\": 32, \"layers\": 2},\n"
      "  \"warmup_steps\": %d,\n"
      "  \"segments\": %d,\n"
      "  \"steps_per_segment\": %d,\n"
      "  \"baseline_ms_per_step\": %.4f,\n"
      "  \"pooled_ms_per_step\": %.4f,\n"
      "  \"speedup\": %.4f,\n"
      "  \"improvement_pct\": %.2f,\n"
      "  \"steady_state_pool_misses\": %llu,\n"
      "  \"losses_bitwise_equal\": true,\n"
      "  \"final_loss\": %.9g,\n"
      "  \"unfused_ms_per_step\": %.4f,\n"
      "  \"fused_ms_per_step\": %.4f,\n"
      "  \"fusion_speedup\": %.4f,\n"
      "  \"fusion_improvement_pct\": %.2f,\n"
      "  \"fusion_loss_rel_diff\": %.3g,\n"
      "  \"fusion_losses_bitwise_equal_across_threads\": true,\n"
      "  \"cpu_features\": \"%s\",\n"
      "  \"simd_isa\": \"%s\",\n"
      "  \"simd_scalar_ms_per_step\": %.4f,\n"
      "  \"simd_ms_per_step\": %.4f,\n"
      "  \"simd_speedup\": %.4f,\n"
      "  \"simd_improvement_pct\": %.2f,\n"
      "  \"simd_loss_rel_diff\": %.3g,\n"
      "  \"prefetch_depth\": %lld,\n"
      "  \"prefetch_sync_ms_per_step\": %.4f,\n"
      "  \"prefetch_ms_per_step\": %.4f,\n"
      "  \"prefetch_speedup\": %.4f,\n"
      "  \"prefetch_improvement_pct\": %.2f,\n"
      "  \"prefetch_steady_pool_misses\": %llu,\n"
      "  \"prefetch_losses_bitwise_equal\": true,\n"
      "  \"prefetch_cores\": %u,\n"
      "  \"prefetch_assemble_ms\": %.4f,\n"
      "  \"prefetch_queue_wait_ms\": %.4f,\n"
      "  \"untraced_ms_per_step\": %.4f,\n"
      "  \"traced_ms_per_step\": %.4f,\n"
      "  \"trace_overhead_pct\": %.2f,\n"
      "  \"trace_events\": %llu,\n"
      "  \"trace_file\": \"%s\",\n"
      "  \"trace_written\": %s,\n"
      "  \"serve\": %s,\n"
      "  \"serve_unfused\": %s\n"
      "}\n",
      static_cast<long long>(kBatch), kWarmupSteps, kSegments,
      kStepsPerSegment, baseline_med, pooled_med, speedup, improvement_pct,
      static_cast<unsigned long long>(steady_misses),
      double{pooled->last_loss}, unfused_med, fused_med, fusion_speedup,
      fusion_improvement_pct, fusion_loss_rel_diff,
      simd::CpuFeatureString().c_str(), simd::IsaName(simd_isa),
      simd_scalar_med, simd_med, simd_speedup, simd_improvement_pct,
      simd_loss_rel_diff,
      static_cast<long long>(prefetch_depth), prefetch_sync_med, prefetch_med,
      prefetch_speedup, prefetch_improvement_pct,
      static_cast<unsigned long long>(prefetch_steady_misses), prefetch_cores,
      prefetch_assemble_ms, prefetch_wait_ms, untraced_med,
      traced_med, trace_overhead_pct,
      static_cast<unsigned long long>(trace_events), trace_file.c_str(),
      trace_written ? "true" : "false", serve_json.c_str(),
      serve_unfused_json.c_str());
  return 0;
}

}  // namespace
}  // namespace timedrl

int main() { return timedrl::Main(); }
