// Reproduces paper Table IV: linear evaluation on univariate forecasting
// (target channel only).

#include "bench/forecast_table.h"

int main() {
  timedrl::bench::RunForecastTable(/*univariate=*/true, "Table IV");
  return 0;
}
