// Reproduces paper Table IX: ablation on the stop-gradient operation in the
// instance-contrastive task. Removing it allows representational collapse.

#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

namespace timedrl::bench {
namespace {

void Run() {
  Settings settings = Settings::FromEnv();
  Rng rng(20240614);
  std::printf("== Table IX: ablation on the stop-gradient operation "
              "(accuracy) ==\n\n");
  Stopwatch stopwatch;

  std::vector<ClassifyData> suite = PrepareClassifySuite(settings, rng);
  const ClassifyData* finger = nullptr;
  const ClassifyData* epilepsy = nullptr;
  for (const auto& data : suite) {
    if (data.name == "FingerMovements") finger = &data;
    if (data.name == "Epilepsy") epilepsy = &data;
  }

  auto run = [&](const ClassifyData& data, bool stop_gradient) {
    Rng local_rng(131);
    std::unique_ptr<core::TimeDrlModel> model = PretrainTimeDrlClassify(
        data, settings, local_rng, /*lambda_weight=*/1.0f, stop_gradient);
    return EvalTimeDrlClassify(model.get(), data, core::Pooling::kCls,
                               settings, local_rng)
               .accuracy *
           100.0;
  };

  const double with_sg_finger = run(*finger, true);
  const double with_sg_epilepsy = run(*epilepsy, true);
  const double without_sg_finger = run(*finger, false);
  const double without_sg_epilepsy = run(*epilepsy, false);

  TablePrinter table(
      {"Stop Gradient", "FingerMovements-like", "Epilepsy-like"});
  table.AddRow({"w/ SG (Ours)", TablePrinter::Num(with_sg_finger, 2),
                TablePrinter::Num(with_sg_epilepsy, 2)});
  table.AddRow(
      {"w/o SG",
       TablePrinter::Num(without_sg_finger, 2) + " (" +
           TablePrinter::Pct(without_sg_finger / with_sg_finger - 1.0) + ")",
       TablePrinter::Num(without_sg_epilepsy, 2) + " (" +
           TablePrinter::Pct(without_sg_epilepsy / with_sg_epilepsy - 1.0) +
           ")"});
  table.Print();
  std::printf("\nPaper's shape: removing stop-gradient lets the siamese "
              "branches collapse, dropping accuracy. Wall clock %.1fs\n",
              stopwatch.ElapsedSeconds());
}

}  // namespace
}  // namespace timedrl::bench

int main() {
  timedrl::bench::Run();
  return 0;
}
