// Reproduces paper Table VII: ablation on pooling methods for deriving the
// instance-level embedding ([CLS] vs Last vs GAP vs All).

#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

namespace timedrl::bench {
namespace {

void Run() {
  Settings settings = Settings::FromEnv();
  // This ablation is cheap (pooling only changes the probe), so run it at a
  // larger scale than the big tables: more data, longer pre-training, and
  // probe results averaged over seeds.
  settings.data_scale *= 2.0;
  settings.ssl_epochs *= 5;
  settings.probe_epochs *= 3;
  Rng rng(20240612);
  std::printf("== Table VII: ablation on pooling methods (accuracy) ==\n\n");
  Stopwatch stopwatch;

  std::vector<ClassifyData> suite = PrepareClassifySuite(settings, rng);
  const ClassifyData* finger = nullptr;
  const ClassifyData* epilepsy = nullptr;
  for (const auto& data : suite) {
    if (data.name == "FingerMovements") finger = &data;
    if (data.name == "Epilepsy") epilepsy = &data;
  }

  // Pooling only affects the probe, so one pre-training per dataset serves
  // all four pooling strategies — exactly the paper's controlled comparison.
  std::unique_ptr<core::TimeDrlModel> finger_model =
      PretrainTimeDrlClassify(*finger, settings, rng);
  std::unique_ptr<core::TimeDrlModel> epilepsy_model =
      PretrainTimeDrlClassify(*epilepsy, settings, rng);

  struct PoolingRow {
    const char* name;
    core::Pooling pooling;
  };
  const std::vector<PoolingRow> rows = {
      {"[CLS] (Ours)", core::Pooling::kCls},
      {"Last", core::Pooling::kLast},
      {"GAP", core::Pooling::kGap},
      {"All", core::Pooling::kAll},
  };

  TablePrinter table({"Pooling Method", "FingerMovements-like",
                      "Epilepsy-like"});
  double cls_finger = 0.0;
  double cls_epilepsy = 0.0;
  constexpr int kProbeSeeds = 3;
  for (const PoolingRow& row : rows) {
    double acc_finger = 0.0;
    double acc_epilepsy = 0.0;
    for (int seed = 0; seed < kProbeSeeds; ++seed) {
      Rng probe_rng(1000 + seed);
      acc_finger += EvalTimeDrlClassify(finger_model.get(), *finger,
                                        row.pooling, settings, probe_rng)
                        .accuracy *
                    100.0 / kProbeSeeds;
      acc_epilepsy += EvalTimeDrlClassify(epilepsy_model.get(), *epilepsy,
                                          row.pooling, settings, probe_rng)
                          .accuracy *
                      100.0 / kProbeSeeds;
    }
    if (row.pooling == core::Pooling::kCls) {
      cls_finger = acc_finger;
      cls_epilepsy = acc_epilepsy;
      table.AddRow({row.name, TablePrinter::Num(acc_finger, 2),
                    TablePrinter::Num(acc_epilepsy, 2)});
    } else {
      table.AddRow(
          {row.name,
           TablePrinter::Num(acc_finger, 2) + " (" +
               TablePrinter::Pct(acc_finger / cls_finger - 1.0) + ")",
           TablePrinter::Num(acc_epilepsy, 2) + " (" +
               TablePrinter::Pct(acc_epilepsy / cls_epilepsy - 1.0) + ")"});
    }
  }
  table.Print();
  std::printf("\nPaper's shape: the dedicated [CLS] token beats Last/GAP/All "
              "(GAP suffers most from anisotropy). Wall clock %.1fs\n",
              stopwatch.ElapsedSeconds());
}

}  // namespace
}  // namespace timedrl::bench

int main() {
  timedrl::bench::Run();
  return 0;
}
