// Shared driver for the Table III (multivariate) and Table IV (univariate)
// forecasting benches.

#ifndef TIMEDRL_BENCH_FORECAST_TABLE_H_
#define TIMEDRL_BENCH_FORECAST_TABLE_H_

namespace timedrl::bench {

/// Reproduces one of the paper's linear-evaluation forecasting tables:
/// every dataset x horizon x {TimeDRL, SimTS, TS2Vec, TNC, CoST, Informer,
/// TCN}, reporting MSE/MAE. Prints paper-style rows plus a summary of how
/// often TimeDRL wins.
void RunForecastTable(bool univariate, const char* table_name);

}  // namespace timedrl::bench

#endif  // TIMEDRL_BENCH_FORECAST_TABLE_H_
