// Microbenchmarks for the raw kernel layer (tensor/kernels/*): GEMM in all
// three transpose variants, im2col conv1d, and elementwise maps, each at
// serial (1 thread) and pooled (4 threads) settings.
//
//   ./bench/micro_kernels --benchmark_filter=GemmNN
//
// BM_SeedGemmNN is a faithful copy of the pre-kernel-layer matmul loop
// (naive triple loop with a per-element sparsity branch) kept here as the
// baseline the tiled kernels are measured against.
//
// A second mode compares the SIMD dispatch backends (kernels/dispatch.h):
//
//   ./bench/micro_kernels --json   # emit BENCH_micro_kernels.json content
//
// runs every dispatched kernel through every available backend's TableFor()
// pointers at 1 thread and prints a JSON document with per-kernel GFLOP/s
// and each vector ISA's speedup over the scalar reference, plus the CPU
// feature string so numbers are comparable across machines (see
// bench/run_micro_kernels.sh).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <random>
#include <string>
#include <vector>

#include "tensor/kernels/conv1d.h"
#include "tensor/kernels/dispatch.h"
#include "tensor/kernels/elementwise.h"
#include "tensor/kernels/gemm.h"
#include "util/thread_pool.h"

namespace timedrl {
namespace {

std::vector<float> RandomVector(int64_t n, uint32_t seed) {
  std::mt19937 gen(seed);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  std::vector<float> v(n);
  for (float& x : v) x = dist(gen);
  return v;
}

// The seed repo's dense matmul inner loop, verbatim: serial, row-major
// triple loop, with the `av == 0` skip that the tiled kernels dropped.
void SeedGemmNN(const float* a, const float* b, float* c, int64_t m, int64_t k,
                int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t p = 0; p < k; ++p) {
      const float av = a[i * k + p];
      if (av == 0.0f) continue;
      const float* b_row = b + p * n;
      float* c_row = c + i * n;
      for (int64_t j = 0; j < n; ++j) c_row[j] += av * b_row[j];
    }
  }
}

// The acceptance-size GEMM: [256 x 64] x [64 x 256].
constexpr int64_t kM = 256;
constexpr int64_t kK = 64;
constexpr int64_t kN = 256;

void BM_SeedGemmNN(benchmark::State& state) {
  const auto a = RandomVector(kM * kK, 1);
  const auto b = RandomVector(kK * kN, 2);
  std::vector<float> c(kM * kN, 0.0f);
  for (auto _ : state) {
    SeedGemmNN(a.data(), b.data(), c.data(), kM, kK, kN);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * kM * kK * kN);
}
BENCHMARK(BM_SeedGemmNN);

void BM_GemmNN(benchmark::State& state) {
  SetNumThreads(static_cast<int>(state.range(0)));
  const auto a = RandomVector(kM * kK, 1);
  const auto b = RandomVector(kK * kN, 2);
  std::vector<float> c(kM * kN, 0.0f);
  for (auto _ : state) {
    kernels::GemmNN(a.data(), b.data(), c.data(), kM, kK, kN);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * kM * kK * kN);
  SetNumThreads(1);
}
BENCHMARK(BM_GemmNN)->Arg(1)->Arg(4);

void BM_GemmNT(benchmark::State& state) {
  SetNumThreads(static_cast<int>(state.range(0)));
  const auto a = RandomVector(kM * kN, 1);
  const auto b = RandomVector(kK * kN, 2);
  std::vector<float> c(kM * kK, 0.0f);
  for (auto _ : state) {
    kernels::GemmNT(a.data(), b.data(), c.data(), kM, kN, kK);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * kM * kK * kN);
  SetNumThreads(1);
}
BENCHMARK(BM_GemmNT)->Arg(1)->Arg(4);

void BM_GemmTN(benchmark::State& state) {
  SetNumThreads(static_cast<int>(state.range(0)));
  const auto a = RandomVector(kM * kK, 1);
  const auto b = RandomVector(kM * kN, 2);
  std::vector<float> c(kK * kN, 0.0f);
  for (auto _ : state) {
    kernels::GemmTN(a.data(), b.data(), c.data(), kM, kK, kN);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * kM * kK * kN);
  SetNumThreads(1);
}
BENCHMARK(BM_GemmTN)->Arg(1)->Arg(4);

// Token-embedding shape from the default TimeDRL config: a batch of 32
// windows, 9 tokens each (8 patches + CLS), C*P = 8 features -> d_model 64.
void BM_GemmNN_TokenProjection(benchmark::State& state) {
  SetNumThreads(static_cast<int>(state.range(0)));
  const int64_t m = 32 * 9, k = 64, n = 64;
  const auto a = RandomVector(m * k, 1);
  const auto b = RandomVector(k * n, 2);
  std::vector<float> c(m * n, 0.0f);
  for (auto _ : state) {
    kernels::GemmNN(a.data(), b.data(), c.data(), m, k, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * m * k * n);
  SetNumThreads(1);
}
BENCHMARK(BM_GemmNN_TokenProjection)->Arg(1)->Arg(4);

// ConvNet-backbone-shaped conv: [32, 64, 64] x [64, 64, 3], padding 1.
void BM_Conv1dForward(benchmark::State& state) {
  SetNumThreads(static_cast<int>(state.range(0)));
  kernels::Conv1dGeometry geom;
  geom.batch = 32;
  geom.c_in = 64;
  geom.length = 64;
  geom.c_out = 64;
  geom.kernel = 3;
  geom.stride = 1;
  geom.padding = 1;
  geom.dilation = 1;
  geom.out_length = 64;
  const auto x = RandomVector(geom.batch * geom.c_in * geom.length, 1);
  const auto w = RandomVector(geom.c_out * geom.c_in * geom.kernel, 2);
  const auto bias = RandomVector(geom.c_out, 3);
  std::vector<float> out(geom.batch * geom.c_out * geom.out_length);
  for (auto _ : state) {
    kernels::Conv1dForward(x.data(), w.data(), bias.data(), out.data(), geom);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * geom.batch * geom.c_out *
                          geom.out_length * 2 * geom.c_in * geom.kernel);
  SetNumThreads(1);
}
BENCHMARK(BM_Conv1dForward)->Arg(1)->Arg(4);

void BM_ElementwiseGelu(benchmark::State& state) {
  SetNumThreads(static_cast<int>(state.range(0)));
  constexpr int64_t kCount = 1 << 18;
  const auto a = RandomVector(kCount, 1);
  std::vector<float> out(kCount);
  constexpr float kAlpha = 0.7978845608028654f;
  for (auto _ : state) {
    kernels::Map(a.data(), out.data(), kCount, [](float x) {
      return 0.5f * x * (1.0f + std::tanh(kAlpha * (x + 0.044715f * x * x * x)));
    });
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * kCount);
  SetNumThreads(1);
}
BENCHMARK(BM_ElementwiseGelu)->Arg(1)->Arg(4);

// --------------------------------------------------------------------------
// --json mode: per-ISA kernel comparison through the dispatch tables.
// --------------------------------------------------------------------------

// One dispatched kernel under measurement. `flops` is the NOMINAL flop count
// per call — fixed per kernel, identical across ISAs, so the reported
// speedups are exact time ratios even where the per-element op count of the
// vector path differs from scalar (polynomial exp/tanh).
struct JsonKernel {
  const char* name;
  double flops;
  std::function<void(const kernels::simd::KernelTable*)> run;
};

// Fused-kernel shape for the JSON suite: one encoder-block activation,
// [batch*tokens x d_model] with the repo's default-config sizes scaled up
// enough that per-call time is measurable.
constexpr int64_t kJsonRows = 1024;
constexpr int64_t kJsonFeatures = 256;
constexpr int64_t kJsonCount = 1 << 20;

std::vector<JsonKernel> BuildJsonKernels() {
  namespace ks = kernels::simd;
  const double gemm_flops = 2.0 * kM * kK * kN;
  const double rf = static_cast<double>(kJsonRows * kJsonFeatures);

  // Shared inputs, sized for the largest consumer of each slot. Static so
  // the lambdas can capture by reference without lifetime headaches.
  static const auto a = RandomVector(kM * kK, 11);
  static const auto b = RandomVector(kK * kN, 12);
  static const auto ant = RandomVector(kM * kN, 13);  // NT's A: [m x n]
  static const auto atn = RandomVector(kM * kK, 14);  // TN's A: [m x k]
  static const auto btn = RandomVector(kM * kN, 15);  // TN's B: [m x n]
  static std::vector<float> c_nn(kM * kN), c_nt(kM * kK), c_tn(kK * kN);
  static const auto x = RandomVector(kJsonRows * kJsonFeatures, 16);
  static const auto g = RandomVector(kJsonRows * kJsonFeatures, 17);
  static const auto gamma = RandomVector(kJsonFeatures, 18);
  static const auto beta = RandomVector(kJsonFeatures, 19);
  static std::vector<float> y(kJsonRows * kJsonFeatures), mean(kJsonRows),
      rstd(kJsonRows), dx(kJsonRows * kJsonFeatures), dgamma(kJsonFeatures),
      dbeta(kJsonFeatures), scratch(kJsonRows * kJsonFeatures);
  static std::vector<float> mask = [] {
    std::vector<float> m(kJsonRows * kJsonFeatures, 0.0f);
    for (size_t i = 0; i < m.size(); i += 3) m[i] = 1.0f;
    return m;
  }();
  static const auto nf = RandomVector(kJsonCount, 20);

  return {
      {"gemm_nn", gemm_flops,
       [&](const ks::KernelTable* t) {
         t->gemm_nn(a.data(), b.data(), c_nn.data(), kM, kK, kN, false);
       }},
      {"gemm_nt", gemm_flops,
       [&](const ks::KernelTable* t) {
         t->gemm_nt(ant.data(), b.data(), c_nt.data(), kM, kN, kK, false);
       }},
      {"gemm_tn", gemm_flops,
       [&](const ks::KernelTable* t) {
         t->gemm_tn(atn.data(), btn.data(), c_tn.data(), kM, kK, kN, false);
       }},
      {"layer_norm_fwd", rf * 8,
       [&](const ks::KernelTable* t) {
         t->layer_norm_fwd(x.data(), gamma.data(), beta.data(), 1e-5f,
                           y.data(), mean.data(), rstd.data(), kJsonRows,
                           kJsonFeatures);
       }},
      {"layer_norm_bwd", rf * 12,
       [&](const ks::KernelTable* t) {
         t->layer_norm_bwd(g.data(), x.data(), gamma.data(), mean.data(),
                           rstd.data(), dx.data(), dgamma.data(),
                           dbeta.data(), kJsonRows, kJsonFeatures);
       }},
      {"softmax_fwd", rf * 8,
       [&](const ks::KernelTable* t) {
         t->softmax_fwd(x.data(), mask.data(), kJsonRows, 0.125f, -1e9f,
                        y.data(), kJsonRows, kJsonFeatures);
       }},
      {"softmax_bwd", rf * 6,
       [&](const ks::KernelTable* t) {
         t->softmax_bwd(g.data(), y.data(), 0.125f, dx.data(), kJsonRows,
                        kJsonFeatures);
       }},
      {"bias_gelu_fwd", rf * 15,
       [&](const ks::KernelTable* t) {
         t->bias_gelu_fwd(x.data(), beta.data(), y.data(), kJsonRows,
                          kJsonFeatures);
       }},
      {"bias_gelu_bwd", rf * 25,
       [&](const ks::KernelTable* t) {
         t->bias_gelu_bwd(g.data(), x.data(), beta.data(), dx.data(),
                          dbeta.data(), scratch.data(), kJsonRows,
                          kJsonFeatures);
       }},
      {"count_nonfinite", static_cast<double>(kJsonCount),
       [&](const ks::KernelTable* t) {
         benchmark::DoNotOptimize(
             t->count_nonfinite(nf.data(), kJsonCount));
       }},
  };
}

// Median-of-repeats self-timer: calibrates an iteration count to ~20 ms,
// then takes the best of 5 timed repeats (min filters scheduler noise).
double MeasureMsPerCall(const JsonKernel& k,
                        const kernels::simd::KernelTable* table) {
  using Clock = std::chrono::steady_clock;
  k.run(table);  // warm up caches and the pool's scratch freelist
  int64_t iters = 1;
  for (;;) {
    const auto t0 = Clock::now();
    for (int64_t i = 0; i < iters; ++i) k.run(table);
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    if (ms >= 20.0 || iters >= (1 << 20)) break;
    iters *= 2;
  }
  double best_ms = 1e300;
  for (int rep = 0; rep < 5; ++rep) {
    const auto t0 = Clock::now();
    for (int64_t i = 0; i < iters; ++i) k.run(table);
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    best_ms = std::min(best_ms, ms / static_cast<double>(iters));
  }
  return best_ms;
}

int RunJsonMode() {
  namespace ks = kernels::simd;
  SetNumThreads(1);  // single-thread: measures the kernels, not the pool

  std::vector<ks::Isa> isas = {ks::Isa::kScalar};
  for (ks::Isa isa : {ks::Isa::kAvx2, ks::Isa::kAvx512, ks::Isa::kNeon}) {
    if (ks::Available(isa)) isas.push_back(isa);
  }

  const auto json_kernels = BuildJsonKernels();
  std::printf("{\n");
  std::printf("  \"benchmark\": \"micro_kernels\",\n");
  std::printf("  \"threads\": 1,\n");
  std::printf("  \"cpu_features\": \"%s\",\n", ks::CpuFeatureString().c_str());
  std::printf("  \"simd_isa\": \"%s\",\n", ks::IsaName(ks::ActiveIsa()));
  std::printf("  \"isas\": [");
  for (size_t i = 0; i < isas.size(); ++i) {
    std::printf("%s\"%s\"", i ? ", " : "", ks::IsaName(isas[i]));
  }
  std::printf("],\n");
  std::printf("  \"kernels\": {\n");
  for (size_t ki = 0; ki < json_kernels.size(); ++ki) {
    const JsonKernel& k = json_kernels[ki];
    std::printf("    \"%s\": {\n", k.name);
    std::printf("      \"flops_per_call\": %.0f,\n", k.flops);
    double scalar_ms = 0.0;
    for (size_t i = 0; i < isas.size(); ++i) {
      const ks::KernelTable* table = ks::TableFor(isas[i]);
      const double ms = MeasureMsPerCall(k, table);
      if (isas[i] == ks::Isa::kScalar) scalar_ms = ms;
      const double gflops = k.flops / (ms * 1e6);
      std::printf(
          "      \"%s\": {\"ms_per_call\": %.6f, \"gflops\": %.3f, "
          "\"speedup_vs_scalar\": %.3f}%s\n",
          ks::IsaName(isas[i]), ms, gflops, scalar_ms / ms,
          i + 1 < isas.size() ? "," : "");
    }
    std::printf("    }%s\n", ki + 1 < json_kernels.size() ? "," : "");
  }
  std::printf("  }\n");
  std::printf("}\n");
  return 0;
}

}  // namespace
}  // namespace timedrl

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) return timedrl::RunJsonMode();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
