// Microbenchmarks for the raw kernel layer (tensor/kernels/*): GEMM in all
// three transpose variants, im2col conv1d, and elementwise maps, each at
// serial (1 thread) and pooled (4 threads) settings.
//
//   ./bench/micro_kernels --benchmark_filter=GemmNN
//
// BM_SeedGemmNN is a faithful copy of the pre-kernel-layer matmul loop
// (naive triple loop with a per-element sparsity branch) kept here as the
// baseline the tiled kernels are measured against.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include "tensor/kernels/conv1d.h"
#include "tensor/kernels/elementwise.h"
#include "tensor/kernels/gemm.h"
#include "util/thread_pool.h"

namespace timedrl {
namespace {

std::vector<float> RandomVector(int64_t n, uint32_t seed) {
  std::mt19937 gen(seed);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  std::vector<float> v(n);
  for (float& x : v) x = dist(gen);
  return v;
}

// The seed repo's dense matmul inner loop, verbatim: serial, row-major
// triple loop, with the `av == 0` skip that the tiled kernels dropped.
void SeedGemmNN(const float* a, const float* b, float* c, int64_t m, int64_t k,
                int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t p = 0; p < k; ++p) {
      const float av = a[i * k + p];
      if (av == 0.0f) continue;
      const float* b_row = b + p * n;
      float* c_row = c + i * n;
      for (int64_t j = 0; j < n; ++j) c_row[j] += av * b_row[j];
    }
  }
}

// The acceptance-size GEMM: [256 x 64] x [64 x 256].
constexpr int64_t kM = 256;
constexpr int64_t kK = 64;
constexpr int64_t kN = 256;

void BM_SeedGemmNN(benchmark::State& state) {
  const auto a = RandomVector(kM * kK, 1);
  const auto b = RandomVector(kK * kN, 2);
  std::vector<float> c(kM * kN, 0.0f);
  for (auto _ : state) {
    SeedGemmNN(a.data(), b.data(), c.data(), kM, kK, kN);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * kM * kK * kN);
}
BENCHMARK(BM_SeedGemmNN);

void BM_GemmNN(benchmark::State& state) {
  SetNumThreads(static_cast<int>(state.range(0)));
  const auto a = RandomVector(kM * kK, 1);
  const auto b = RandomVector(kK * kN, 2);
  std::vector<float> c(kM * kN, 0.0f);
  for (auto _ : state) {
    kernels::GemmNN(a.data(), b.data(), c.data(), kM, kK, kN);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * kM * kK * kN);
  SetNumThreads(1);
}
BENCHMARK(BM_GemmNN)->Arg(1)->Arg(4);

void BM_GemmNT(benchmark::State& state) {
  SetNumThreads(static_cast<int>(state.range(0)));
  const auto a = RandomVector(kM * kN, 1);
  const auto b = RandomVector(kK * kN, 2);
  std::vector<float> c(kM * kK, 0.0f);
  for (auto _ : state) {
    kernels::GemmNT(a.data(), b.data(), c.data(), kM, kN, kK);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * kM * kK * kN);
  SetNumThreads(1);
}
BENCHMARK(BM_GemmNT)->Arg(1)->Arg(4);

void BM_GemmTN(benchmark::State& state) {
  SetNumThreads(static_cast<int>(state.range(0)));
  const auto a = RandomVector(kM * kK, 1);
  const auto b = RandomVector(kM * kN, 2);
  std::vector<float> c(kK * kN, 0.0f);
  for (auto _ : state) {
    kernels::GemmTN(a.data(), b.data(), c.data(), kM, kK, kN);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * kM * kK * kN);
  SetNumThreads(1);
}
BENCHMARK(BM_GemmTN)->Arg(1)->Arg(4);

// Token-embedding shape from the default TimeDRL config: a batch of 32
// windows, 9 tokens each (8 patches + CLS), C*P = 8 features -> d_model 64.
void BM_GemmNN_TokenProjection(benchmark::State& state) {
  SetNumThreads(static_cast<int>(state.range(0)));
  const int64_t m = 32 * 9, k = 64, n = 64;
  const auto a = RandomVector(m * k, 1);
  const auto b = RandomVector(k * n, 2);
  std::vector<float> c(m * n, 0.0f);
  for (auto _ : state) {
    kernels::GemmNN(a.data(), b.data(), c.data(), m, k, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * m * k * n);
  SetNumThreads(1);
}
BENCHMARK(BM_GemmNN_TokenProjection)->Arg(1)->Arg(4);

// ConvNet-backbone-shaped conv: [32, 64, 64] x [64, 64, 3], padding 1.
void BM_Conv1dForward(benchmark::State& state) {
  SetNumThreads(static_cast<int>(state.range(0)));
  kernels::Conv1dGeometry geom;
  geom.batch = 32;
  geom.c_in = 64;
  geom.length = 64;
  geom.c_out = 64;
  geom.kernel = 3;
  geom.stride = 1;
  geom.padding = 1;
  geom.dilation = 1;
  geom.out_length = 64;
  const auto x = RandomVector(geom.batch * geom.c_in * geom.length, 1);
  const auto w = RandomVector(geom.c_out * geom.c_in * geom.kernel, 2);
  const auto bias = RandomVector(geom.c_out, 3);
  std::vector<float> out(geom.batch * geom.c_out * geom.out_length);
  for (auto _ : state) {
    kernels::Conv1dForward(x.data(), w.data(), bias.data(), out.data(), geom);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * geom.batch * geom.c_out *
                          geom.out_length * 2 * geom.c_in * geom.kernel);
  SetNumThreads(1);
}
BENCHMARK(BM_Conv1dForward)->Arg(1)->Arg(4);

void BM_ElementwiseGelu(benchmark::State& state) {
  SetNumThreads(static_cast<int>(state.range(0)));
  constexpr int64_t kCount = 1 << 18;
  const auto a = RandomVector(kCount, 1);
  std::vector<float> out(kCount);
  constexpr float kAlpha = 0.7978845608028654f;
  for (auto _ : state) {
    kernels::Map(a.data(), out.data(), kCount, [](float x) {
      return 0.5f * x * (1.0f + std::tanh(kAlpha * (x + 0.044715f * x * x * x)));
    });
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * kCount);
  SetNumThreads(1);
}
BENCHMARK(BM_ElementwiseGelu)->Arg(1)->Arg(4);

}  // namespace
}  // namespace timedrl

BENCHMARK_MAIN();
