#include "bench/harness.h"

#include <cstdlib>

#include "baselines/clustering.h"
#include "baselines/contrastive_cv.h"
#include "baselines/cost.h"
#include "baselines/end_to_end.h"
#include "baselines/simts.h"
#include "baselines/tloss.h"
#include "baselines/tnc.h"
#include "baselines/ts2vec.h"
#include "baselines/tstcc.h"
#include "util/check.h"
#include "util/env.h"

namespace timedrl::bench {
Settings Settings::FromEnv() {
  Settings settings;
  settings.data_scale *= util::Env::GetDouble("TIMEDRL_BENCH_SCALE", 1.0);
  settings.epoch_scale *= util::Env::GetDouble("TIMEDRL_BENCH_EPOCHS", 1.0);
  return settings;
}

data::ForecastingWindows ForecastData::TrainWindows(
    int64_t horizon, const Settings& settings) const {
  return data::ForecastingWindows(train, settings.input_length, horizon,
                                  settings.window_stride);
}

data::ForecastingWindows ForecastData::TestWindows(
    int64_t horizon, const Settings& settings) const {
  return data::ForecastingWindows(test, settings.input_length, horizon,
                                  settings.window_stride);
}

data::ForecastingWindows ForecastData::PretrainWindows(
    const Settings& settings) const {
  return data::ForecastingWindows(train, settings.input_length, /*horizon=*/0,
                                  settings.window_stride);
}

ForecastData PrepareForecast(const data::ForecastingBenchDataset& dataset,
                             const Settings& settings, bool univariate) {
  data::TimeSeries series =
      univariate ? dataset.series.Channel(dataset.target_channel)
                 : dataset.series;
  data::ForecastingSplits splits = data::ChronologicalSplit(series);

  data::StandardScaler scaler;
  scaler.Fit(splits.train);

  ForecastData prepared;
  prepared.name = dataset.name;
  prepared.channels = series.channels;
  // Clamp horizons to what the scaled test split can support.
  const int64_t max_horizon =
      splits.test.length() - settings.input_length - 8;
  for (int64_t horizon : dataset.horizons) {
    if (horizon <= max_horizon) prepared.horizons.push_back(horizon);
  }
  TIMEDRL_CHECK(!prepared.horizons.empty())
      << dataset.name << ": test split too short for any horizon";
  prepared.train = scaler.Transform(splits.train);
  prepared.test = scaler.Transform(splits.test);
  return prepared;
}

std::vector<ForecastData> PrepareForecastSuite(const Settings& settings,
                                               bool univariate, Rng& rng) {
  std::vector<ForecastData> prepared;
  for (const auto& dataset :
       data::StandardForecastingSuite(settings.data_scale, rng)) {
    prepared.push_back(PrepareForecast(dataset, settings, univariate));
  }
  return prepared;
}

// ---- TimeDRL -------------------------------------------------------------------

core::TimeDrlConfig MakeTimeDrlConfig(const Settings& settings,
                                      int64_t input_channels,
                                      int64_t input_length) {
  core::TimeDrlConfig config;
  config.input_channels = input_channels;
  config.input_length = input_length;
  config.patch_length = settings.patch_length;
  config.patch_stride = settings.patch_stride;
  config.d_model = settings.d_model;
  config.num_heads = settings.num_heads;
  config.ff_dim = settings.ff_dim;
  config.num_layers = settings.num_layers;
  return config;
}

std::unique_ptr<core::TimeDrlModel> PretrainTimeDrlForecast(
    const ForecastData& data, const Settings& settings, Rng& rng) {
  core::TimeDrlConfig config =
      MakeTimeDrlConfig(settings, /*input_channels=*/1, settings.input_length);
  auto model = std::make_unique<core::TimeDrlModel>(config, rng);

  data::ForecastingWindows windows = data.PretrainWindows(settings);
  core::ForecastingSource source(&windows, /*channel_independent=*/true);
  core::PretrainConfig pretrain_config;
  pretrain_config.train.epochs = settings.SslEpochs();
  pretrain_config.train.batch_size = settings.batch_size;
  core::Pretrain(model.get(), source, pretrain_config, rng);
  return model;
}

ForecastCell EvalTimeDrlForecast(core::TimeDrlModel* model,
                                 const ForecastData& data, int64_t horizon,
                                 const Settings& settings, Rng& rng) {
  core::ForecastingPipeline pipeline(model, horizon, data.channels,
                                     /*channel_independent=*/true, rng);
  core::DownstreamConfig config;
  config.train.epochs = settings.ProbeEpochs();
  config.train.batch_size = settings.batch_size;
  data::ForecastingWindows train = data.TrainWindows(horizon, settings);
  data::ForecastingWindows test = data.TestWindows(horizon, settings);
  pipeline.Train(train, config, rng);
  core::ForecastMetrics metrics = pipeline.Evaluate(test);
  return {metrics.mse, metrics.mae};
}

// ---- Baselines ------------------------------------------------------------------

std::vector<std::string> SslForecastBaselineNames() {
  return {"SimTS", "TS2Vec", "TNC", "CoST"};
}

std::vector<std::string> SslClassifyBaselineNames() {
  return {"MHCCL", "CCL", "SimCLR", "BYOL", "TS2Vec", "TS-TCC", "T-Loss"};
}

std::unique_ptr<baselines::SslBaseline> MakeSslBaseline(
    const std::string& name, int64_t channels, int64_t num_classes,
    const Settings& settings, Rng& rng) {
  const int64_t hidden = settings.baseline_hidden;
  const int64_t blocks = settings.baseline_blocks;
  if (name == "SimTS") {
    return std::make_unique<baselines::SimTs>(channels, hidden, blocks, rng);
  }
  if (name == "TS2Vec") {
    return std::make_unique<baselines::Ts2Vec>(channels, hidden, blocks, rng);
  }
  if (name == "TNC") {
    return std::make_unique<baselines::Tnc>(channels, hidden, blocks, rng);
  }
  if (name == "CoST") {
    return std::make_unique<baselines::CoSt>(channels, hidden, blocks, rng);
  }
  if (name == "SimCLR") {
    return std::make_unique<baselines::SimClr>(channels, hidden, blocks, rng);
  }
  if (name == "BYOL") {
    return std::make_unique<baselines::Byol>(channels, hidden, blocks, rng);
  }
  if (name == "TS-TCC") {
    return std::make_unique<baselines::TsTcc>(channels, hidden, blocks, rng);
  }
  if (name == "T-Loss") {
    return std::make_unique<baselines::TLoss>(channels, hidden, blocks, rng);
  }
  if (name == "CCL") {
    return std::make_unique<baselines::Ccl>(channels, hidden, blocks,
                                            num_classes, rng);
  }
  if (name == "MHCCL") {
    return std::make_unique<baselines::MhcclLite>(channels, hidden, blocks,
                                                  num_classes, rng);
  }
  TIMEDRL_CHECK(false) << "unknown baseline: " << name;
  return nullptr;
}

std::unique_ptr<baselines::SslBaseline> PretrainBaselineForecast(
    const std::string& name, const ForecastData& data,
    const Settings& settings, Rng& rng) {
  std::unique_ptr<baselines::SslBaseline> model =
      MakeSslBaseline(name, data.channels, /*num_classes=*/0, settings, rng);
  data::ForecastingWindows windows = data.PretrainWindows(settings);
  core::ForecastingSource source(&windows, /*channel_independent=*/false);
  core::PretrainConfig config;
  config.train.epochs = settings.SslEpochs();
  config.train.batch_size = settings.batch_size;
  baselines::TrainSslBaseline(model.get(), source, config, rng);
  return model;
}

ForecastCell EvalBaselineForecast(baselines::SslBaseline* model,
                                  const ForecastData& data, int64_t horizon,
                                  const Settings& settings, Rng& rng) {
  baselines::BaselineForecastProbe probe(model, horizon, data.channels, rng);
  core::DownstreamConfig config;
  config.train.epochs = settings.ProbeEpochs();
  config.train.batch_size = settings.batch_size;
  data::ForecastingWindows train = data.TrainWindows(horizon, settings);
  data::ForecastingWindows test = data.TestWindows(horizon, settings);
  probe.Train(train, config, rng);
  core::ForecastMetrics metrics = probe.Evaluate(test);
  return {metrics.mse, metrics.mae};
}

ForecastCell EvalEndToEndForecast(const std::string& name,
                                  const ForecastData& data, int64_t horizon,
                                  const Settings& settings, Rng& rng) {
  std::unique_ptr<baselines::EndToEndForecaster> model;
  if (name == "Informer") {
    model = std::make_unique<baselines::InformerLite>(
        data.channels, horizon, settings.d_model, settings.num_layers, rng);
  } else if (name == "TCN") {
    model = std::make_unique<baselines::TcnForecaster>(
        data.channels, horizon, settings.baseline_hidden,
        settings.baseline_blocks, rng);
  } else {
    TIMEDRL_CHECK(false) << "unknown end-to-end baseline: " << name;
  }
  core::DownstreamConfig config;
  config.train.epochs = settings.E2eEpochs();
  config.train.batch_size = settings.batch_size;
  data::ForecastingWindows train = data.TrainWindows(horizon, settings);
  data::ForecastingWindows test = data.TestWindows(horizon, settings);
  baselines::TrainEndToEnd(model.get(), train, config, rng);
  core::ForecastMetrics metrics = baselines::EvaluateEndToEnd(model.get(),
                                                              test);
  return {metrics.mse, metrics.mae};
}

// ---- Classification --------------------------------------------------------------

std::vector<ClassifyData> PrepareClassifySuite(const Settings& settings,
                                               Rng& rng) {
  std::vector<ClassifyData> prepared;
  for (auto& dataset :
       data::StandardClassificationSuite(settings.data_scale * 4.0, rng)) {
    data::ClassificationSplits splits =
        data::StratifiedSplit(dataset.dataset, 0.7, rng);
    prepared.push_back(
        {dataset.name, std::move(splits.train), std::move(splits.test)});
  }
  return prepared;
}

std::unique_ptr<core::TimeDrlModel> PretrainTimeDrlClassify(
    const ClassifyData& data, const Settings& settings, Rng& rng,
    float lambda_weight, bool stop_gradient) {
  core::TimeDrlConfig config = MakeTimeDrlConfig(
      settings, data.train.channels, data.train.window_length);
  // Short windows (e.g. PenDigits' 8 points) need a smaller patch.
  while (config.patch_length > data.train.window_length) {
    config.patch_length /= 2;
    config.patch_stride = config.patch_length;
  }
  config.lambda_weight = lambda_weight;
  config.stop_gradient = stop_gradient;
  auto model = std::make_unique<core::TimeDrlModel>(config, rng);

  core::ClassificationSource source(&data.train);
  core::PretrainConfig pretrain_config;
  pretrain_config.train.epochs = settings.SslEpochs();
  pretrain_config.train.batch_size = settings.batch_size;
  core::Pretrain(model.get(), source, pretrain_config, rng);
  return model;
}

core::ClassificationMetrics EvalTimeDrlClassify(core::TimeDrlModel* model,
                                                const ClassifyData& data,
                                                core::Pooling pooling,
                                                const Settings& settings,
                                                Rng& rng) {
  core::ClassificationPipeline pipeline(model, data.train.num_classes,
                                        pooling, rng);
  core::DownstreamConfig config;
  config.train.epochs = settings.ProbeEpochs();
  config.train.batch_size = settings.batch_size;
  pipeline.Train(data.train, config, rng);
  return pipeline.Evaluate(data.test);
}

core::ClassificationMetrics EvalBaselineClassify(const std::string& name,
                                                 const ClassifyData& data,
                                                 const Settings& settings,
                                                 Rng& rng) {
  std::unique_ptr<baselines::SslBaseline> model = MakeSslBaseline(
      name, data.train.channels, data.train.num_classes, settings, rng);
  core::ClassificationSource source(&data.train);
  core::PretrainConfig pretrain_config;
  pretrain_config.train.epochs = settings.SslEpochs();
  pretrain_config.train.batch_size = settings.batch_size;
  baselines::TrainSslBaseline(model.get(), source, pretrain_config, rng);

  baselines::BaselineClassifyProbe probe(model.get(), data.train.num_classes,
                                         rng);
  core::DownstreamConfig config;
  config.train.epochs = settings.ProbeEpochs();
  config.train.batch_size = settings.batch_size;
  probe.Train(data.train, config, rng);
  return probe.Evaluate(data.test);
}

}  // namespace timedrl::bench
