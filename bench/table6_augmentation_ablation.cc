// Reproduces paper Table VI: ablation on data augmentation. TimeDRL uses no
// augmentation by design; this bench quantifies the inductive-bias penalty
// of adding each classic time-series augmentation to its pre-training.

#include <cstdio>
#include <vector>

#include "augment/augment.h"
#include "bench/harness.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

namespace timedrl::bench {
namespace {

double RunWithAugmentation(const ForecastData& data, augment::Kind kind,
                           int64_t horizon, const Settings& settings) {
  Rng rng(111);
  core::TimeDrlConfig config =
      MakeTimeDrlConfig(settings, /*input_channels=*/1, settings.input_length);
  auto model = std::make_unique<core::TimeDrlModel>(config, rng);

  data::ForecastingWindows windows = data.PretrainWindows(settings);
  core::ForecastingSource source(&windows, /*channel_independent=*/true);
  core::PretrainConfig pretrain_config;
  pretrain_config.train.epochs = settings.SslEpochs();
  pretrain_config.train.batch_size = settings.batch_size;
  pretrain_config.augmentation = kind;
  core::Pretrain(model.get(), source, pretrain_config, rng);

  return EvalTimeDrlForecast(model.get(), data, horizon, settings, rng).mse;
}

void Run() {
  Settings settings = Settings::FromEnv();
  // Augmentations act on pre-training only; a longer schedule lets their
  // inductive bias actually shape the encoder.
  settings.ssl_epochs = 12;
  Rng rng(20240611);
  std::printf("== Table VI: ablation on data augmentation (MSE) ==\n");
  std::printf("Paper protocol: prediction length 168 on ETTh1/Exchange; here "
              "the longest scaled horizon on their synthetic stand-ins.\n\n");
  Stopwatch stopwatch;

  std::vector<ForecastData> suite =
      PrepareForecastSuite(settings, /*univariate=*/false, rng);
  const ForecastData* etth1 = nullptr;
  const ForecastData* exchange = nullptr;
  for (const auto& data : suite) {
    if (data.name == "ETTh1") etth1 = &data;
    if (data.name == "Exchange") exchange = &data;
  }
  const int64_t horizon_ett = etth1->horizons.back();
  const int64_t horizon_exchange = exchange->horizons.back();

  TablePrinter table({"Data Augmentation", "ETTh1-like", "Exchange-like"});
  double baseline_ett = 0.0;
  double baseline_exchange = 0.0;
  for (augment::Kind kind : augment::AllKinds()) {
    const double mse_ett =
        RunWithAugmentation(*etth1, kind, horizon_ett, settings);
    const double mse_exchange =
        RunWithAugmentation(*exchange, kind, horizon_exchange, settings);
    std::string name = augment::KindName(kind);
    if (kind == augment::Kind::kNone) {
      name += " (Ours)";
      baseline_ett = mse_ett;
      baseline_exchange = mse_exchange;
      table.AddRow({name, TablePrinter::Num(mse_ett),
                    TablePrinter::Num(mse_exchange)});
    } else {
      table.AddRow(
          {name,
           TablePrinter::Num(mse_ett) + " (" +
               TablePrinter::Pct(mse_ett / baseline_ett - 1.0) + ")",
           TablePrinter::Num(mse_exchange) + " (" +
               TablePrinter::Pct(mse_exchange / baseline_exchange - 1.0) +
               ")"});
    }
  }
  table.Print();
  std::printf("\nPaper's shape: every augmentation hurts; Rotation degrades "
              "most, Jitter/Masking least. Wall clock %.1fs\n",
              stopwatch.ElapsedSeconds());
}

}  // namespace
}  // namespace timedrl::bench

int main() {
  timedrl::bench::Run();
  return 0;
}
