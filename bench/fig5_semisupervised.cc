// Reproduces paper Fig. 5: semi-supervised learning. At each label fraction,
// compare purely supervised training (labeled subset only) against TimeDRL
// pre-trained on ALL unlabeled training data then fine-tuned on the labeled
// subset ("TimeDRL (FT)").

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

namespace timedrl::bench {
namespace {

const std::vector<double> kLabelFractions = {0.05, 0.10, 0.25, 0.50, 1.00};

/// Labeled subset of a window set: the first fraction of training windows
/// (time-ordered, mirroring how labels would accrue in practice).
std::vector<int64_t> HeldInIndices(int64_t total, double fraction) {
  int64_t count = static_cast<int64_t>(total * fraction);
  if (count < 4) count = std::min<int64_t>(4, total);
  std::vector<int64_t> indices(count);
  for (int64_t i = 0; i < count; ++i) indices[i] = i;
  return indices;
}

void RunForecasting(const Settings& settings, Rng& rng, TablePrinter* table) {
  std::vector<ForecastData> suite =
      PrepareForecastSuite(settings, /*univariate=*/false, rng);
  // Fig. 5(a-c): three forecasting datasets.
  for (size_t i = 0; i < 3 && i < suite.size(); ++i) {
    const ForecastData& data = suite[i];
    const int64_t horizon = data.horizons.front();
    data::ForecastingWindows test = data.TestWindows(horizon, settings);

    // Pre-train once on the full unlabeled training split; each fraction
    // fine-tunes a fresh copy of these weights.
    Rng pretrain_rng(92);
    std::unique_ptr<core::TimeDrlModel> pretrained =
        PretrainTimeDrlForecast(data, settings, pretrain_rng);

    for (double fraction : kLabelFractions) {
      // Labeled subset: a shorter training series prefix.
      const int64_t labeled_length = std::max<int64_t>(
          static_cast<int64_t>(data.train.length() * fraction),
          settings.input_length + horizon + 8);
      data::TimeSeries labeled_series = data.train.Range(0, labeled_length);
      data::ForecastingWindows labeled(labeled_series, settings.input_length,
                                       horizon, settings.window_stride);

      core::DownstreamConfig finetune;
      finetune.train.epochs = settings.FinetuneEpochs();
      finetune.train.batch_size = settings.batch_size;
      finetune.fine_tune_encoder = true;

      // Supervised-only: same architecture, random init, labeled data only.
      Rng supervised_rng(91);
      core::TimeDrlConfig config = MakeTimeDrlConfig(
          settings, /*input_channels=*/1, settings.input_length);
      core::TimeDrlModel supervised_model(config, supervised_rng);
      core::ForecastingPipeline supervised(&supervised_model, horizon,
                                           data.channels,
                                           /*channel_independent=*/true,
                                           supervised_rng);
      supervised.Train(labeled, finetune, supervised_rng);
      double supervised_mse = supervised.Evaluate(test).mse;

      // TimeDRL (FT): fork the pre-trained weights, fine-tune on the
      // labeled subset.
      Rng finetune_rng(95);
      core::TimeDrlModel model(
          MakeTimeDrlConfig(settings, /*input_channels=*/1,
                            settings.input_length),
          finetune_rng);
      model.CopyParametersFrom(*pretrained);
      core::ForecastingPipeline ours(&model, horizon, data.channels,
                                     /*channel_independent=*/true,
                                     finetune_rng);
      ours.Train(labeled, finetune, finetune_rng);
      double ours_mse = ours.Evaluate(test).mse;

      table->AddRow({data.name + " (MSE)",
                     TablePrinter::Num(fraction * 100, 0) + "%",
                     TablePrinter::Num(supervised_mse),
                     TablePrinter::Num(ours_mse),
                     ours_mse <= supervised_mse ? "TimeDRL(FT)" : "Supervised"});
    }
    table->AddSeparator();
  }
}

void RunClassification(const Settings& settings, Rng& rng,
                       TablePrinter* table) {
  std::vector<ClassifyData> suite = PrepareClassifySuite(settings, rng);
  // Fig. 5(d-f): three classification datasets (HAR, Epilepsy, WISDM).
  for (const ClassifyData& data : suite) {
    if (data.name != "HAR" && data.name != "Epilepsy" && data.name != "WISDM") {
      continue;
    }
    Rng pretrain_rng(96);
    std::unique_ptr<core::TimeDrlModel> pretrained =
        PretrainTimeDrlClassify(data, settings, pretrain_rng);

    for (double fraction : kLabelFractions) {
      std::vector<int64_t> labeled_indices =
          HeldInIndices(data.train.size(), fraction);
      data::ClassificationDataset labeled = data.train.Subset(labeled_indices);

      core::DownstreamConfig finetune;
      finetune.train.epochs = settings.FinetuneEpochs();
      finetune.train.batch_size = settings.batch_size;
      finetune.fine_tune_encoder = true;

      // Supervised-only.
      Rng supervised_rng(93);
      core::TimeDrlConfig config = MakeTimeDrlConfig(
          settings, data.train.channels, data.train.window_length);
      while (config.patch_length > data.train.window_length) {
        config.patch_length /= 2;
        config.patch_stride = config.patch_length;
      }
      core::TimeDrlModel supervised_model(config, supervised_rng);
      core::ClassificationPipeline supervised(
          &supervised_model, data.train.num_classes, core::Pooling::kCls,
          supervised_rng);
      supervised.Train(labeled, finetune, supervised_rng);
      double supervised_acc = supervised.Evaluate(data.test).accuracy;

      // TimeDRL (FT): fork the pre-trained weights, fine-tune on the
      // labeled subset.
      Rng finetune_rng(94);
      core::TimeDrlModel model(config, finetune_rng);
      model.CopyParametersFrom(*pretrained);
      core::ClassificationPipeline ours(&model, data.train.num_classes,
                                        core::Pooling::kCls, finetune_rng);
      ours.Train(labeled, finetune, finetune_rng);
      double ours_acc = ours.Evaluate(data.test).accuracy;

      table->AddRow({data.name + " (ACC)",
                     TablePrinter::Num(fraction * 100, 0) + "%",
                     TablePrinter::Num(supervised_acc * 100, 2),
                     TablePrinter::Num(ours_acc * 100, 2),
                     ours_acc >= supervised_acc ? "TimeDRL(FT)" : "Supervised"});
    }
    table->AddSeparator();
  }
}

void Run() {
  Settings settings = Settings::FromEnv();
  Rng rng(20240609);
  std::printf("== Fig. 5: semi-supervised learning ==\n");
  std::printf("Supervised uses only the labeled fraction; TimeDRL (FT) "
              "pre-trains on all unlabeled data then fine-tunes on the "
              "labeled fraction.\n\n");
  Stopwatch stopwatch;
  TablePrinter table(
      {"Dataset (metric)", "Labels", "Supervised", "TimeDRL (FT)", "Winner"});
  RunForecasting(settings, rng, &table);
  RunClassification(settings, rng, &table);
  table.Print();
  std::printf("\nPaper's shape: TimeDRL (FT) wins at every fraction, with "
              "the gap widening as labels shrink. Wall clock %.1fs\n",
              stopwatch.ElapsedSeconds());
}

}  // namespace
}  // namespace timedrl::bench

int main() {
  timedrl::bench::Run();
  return 0;
}
