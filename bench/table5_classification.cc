// Reproduces paper Table V: linear evaluation on time-series classification
// across five datasets and eight methods (ACC / MF1 / Cohen's kappa).

#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

namespace timedrl::bench {
namespace {

void Run() {
  Settings settings = Settings::FromEnv();
  // The Transformer needs a longer self-supervised schedule than the conv
  // baselines to reach its asymptote; every method gets the same budget.
  settings.ssl_epochs = 20;
  settings.probe_epochs = 12;
  settings.data_scale *= 0.75;
  Rng rng(20240608);

  std::printf("== Table V: linear evaluation on time-series classification ==\n");
  std::printf(
      "(synthetic stand-ins for the paper's datasets; shapes, not absolute "
      "values, are the reproduction target)\n\n");

  const std::vector<std::string> baseline_names = SslClassifyBaselineNames();
  std::vector<std::string> header = {"Dataset", "Metric", "TimeDRL"};
  for (const std::string& name : baseline_names) header.push_back(name);
  TablePrinter table(header);

  Stopwatch stopwatch;
  int64_t datasets = 0;
  int64_t timedrl_best_acc = 0;

  for (const ClassifyData& data : PrepareClassifySuite(settings, rng)) {
    std::unique_ptr<core::TimeDrlModel> model =
        PretrainTimeDrlClassify(data, settings, rng);
    core::ClassificationMetrics ours =
        EvalTimeDrlClassify(model.get(), data, core::Pooling::kCls, settings,
                            rng);

    std::vector<core::ClassificationMetrics> results;
    for (const std::string& name : baseline_names) {
      results.push_back(EvalBaselineClassify(name, data, settings, rng));
    }

    auto add_metric_row = [&](const std::string& metric,
                              auto select) {
      std::vector<std::string> row = {data.name, metric,
                                      TablePrinter::Num(select(ours) * 100.0,
                                                        2)};
      for (const auto& result : results) {
        row.push_back(TablePrinter::Num(select(result) * 100.0, 2));
      }
      table.AddRow(row);
    };
    add_metric_row("ACC", [](const core::ClassificationMetrics& m) {
      return m.accuracy;
    });
    add_metric_row("MF1", [](const core::ClassificationMetrics& m) {
      return m.macro_f1;
    });
    add_metric_row("KAPPA", [](const core::ClassificationMetrics& m) {
      return m.kappa;
    });
    table.AddSeparator();

    ++datasets;
    bool best = true;
    for (const auto& result : results) {
      if (result.accuracy > ours.accuracy) best = false;
    }
    if (best) ++timedrl_best_acc;
  }

  table.Print();
  std::printf(
      "\nTimeDRL best accuracy on %lld / %lld datasets  |  wall clock %.1fs\n",
      static_cast<long long>(timedrl_best_acc),
      static_cast<long long>(datasets), stopwatch.ElapsedSeconds());
  std::printf("Paper's shape: TimeDRL top-tier on all five, with the largest "
              "margin on FingerMovements.\n");
}

}  // namespace
}  // namespace timedrl::bench

int main() {
  timedrl::bench::Run();
  return 0;
}
