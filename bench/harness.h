// Shared experiment harness for the paper-reproduction benches.
//
// Each bench binary (one per paper table/figure) composes these runners.
// Scale knobs come from the environment so the same binaries serve both
// quick smoke runs and fuller reproductions:
//   TIMEDRL_BENCH_SCALE  - multiplies dataset sizes   (default 1.0)
//   TIMEDRL_BENCH_EPOCHS - multiplies epoch counts    (default 1.0)

#ifndef TIMEDRL_BENCH_HARNESS_H_
#define TIMEDRL_BENCH_HARNESS_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/common.h"
#include "core/model.h"
#include "core/pipelines.h"
#include "core/pretrainer.h"
#include "data/scaler.h"
#include "data/synthetic.h"
#include "data/windows.h"
#include "util/rng.h"

namespace timedrl::bench {

/// Global knobs for all bench binaries.
struct Settings {
  double data_scale = 0.15;
  double epoch_scale = 1.0;

  int64_t input_length = 48;   // lookback window L
  int64_t window_stride = 3;   // stride between training windows
  int64_t batch_size = 32;

  // TimeDRL model size.
  int64_t d_model = 32;
  int64_t num_heads = 4;
  int64_t ff_dim = 64;
  int64_t num_layers = 2;
  int64_t patch_length = 8;
  int64_t patch_stride = 8;

  // Baseline conv encoders.
  int64_t baseline_hidden = 32;
  int64_t baseline_blocks = 3;

  int64_t ssl_epochs = 6;
  int64_t probe_epochs = 8;
  int64_t e2e_epochs = 8;
  int64_t finetune_epochs = 8;

  /// Reads TIMEDRL_BENCH_SCALE / TIMEDRL_BENCH_EPOCHS from the environment.
  static Settings FromEnv();

  int64_t SslEpochs() const { return ScaledEpochs(ssl_epochs); }
  int64_t ProbeEpochs() const { return ScaledEpochs(probe_epochs); }
  int64_t E2eEpochs() const { return ScaledEpochs(e2e_epochs); }
  int64_t FinetuneEpochs() const { return ScaledEpochs(finetune_epochs); }

 private:
  int64_t ScaledEpochs(int64_t base) const {
    const int64_t scaled = static_cast<int64_t>(base * epoch_scale);
    return scaled < 1 ? 1 : scaled;
  }
};

/// One (MSE, MAE) table cell.
struct ForecastCell {
  double mse = 0.0;
  double mae = 0.0;
};

/// A forecasting dataset prepared for benching: scaled splits in
/// train-statistics z-score space.
struct ForecastData {
  std::string name;
  int64_t channels = 0;
  std::vector<int64_t> horizons;
  data::TimeSeries train;
  data::TimeSeries test;

  data::ForecastingWindows TrainWindows(int64_t horizon,
                                        const Settings& settings) const;
  data::ForecastingWindows TestWindows(int64_t horizon,
                                       const Settings& settings) const;
  /// Horizon-free windows for SSL pre-training.
  data::ForecastingWindows PretrainWindows(const Settings& settings) const;
};

/// Scales, splits (60/20/20; val merged into train for probes) and z-scores
/// a suite dataset. `univariate` keeps only the target channel (Table IV).
ForecastData PrepareForecast(const data::ForecastingBenchDataset& dataset,
                             const Settings& settings, bool univariate);

/// The paper's six forecasting datasets, prepared.
std::vector<ForecastData> PrepareForecastSuite(const Settings& settings,
                                               bool univariate, Rng& rng);

// ---- TimeDRL runners -----------------------------------------------------------

/// TimeDRL config for forecasting (channel-independent) or classification.
core::TimeDrlConfig MakeTimeDrlConfig(const Settings& settings,
                                      int64_t input_channels,
                                      int64_t input_length);

/// Pre-trains TimeDRL on a forecasting dataset (channel independence on).
std::unique_ptr<core::TimeDrlModel> PretrainTimeDrlForecast(
    const ForecastData& data, const Settings& settings, Rng& rng);

/// Linear probe + evaluation for one horizon.
ForecastCell EvalTimeDrlForecast(core::TimeDrlModel* model,
                                 const ForecastData& data, int64_t horizon,
                                 const Settings& settings, Rng& rng);

// ---- Baseline runners ------------------------------------------------------------

/// SSL forecasting baselines of Table III/IV: SimTS, TS2Vec, TNC, CoST.
std::vector<std::string> SslForecastBaselineNames();

std::unique_ptr<baselines::SslBaseline> MakeSslBaseline(
    const std::string& name, int64_t channels, int64_t num_classes,
    const Settings& settings, Rng& rng);

/// Pre-trains one SSL baseline on a forecasting dataset.
std::unique_ptr<baselines::SslBaseline> PretrainBaselineForecast(
    const std::string& name, const ForecastData& data,
    const Settings& settings, Rng& rng);

ForecastCell EvalBaselineForecast(baselines::SslBaseline* model,
                                  const ForecastData& data, int64_t horizon,
                                  const Settings& settings, Rng& rng);

/// End-to-end baselines (Informer, TCN): trained per horizon.
ForecastCell EvalEndToEndForecast(const std::string& name,
                                  const ForecastData& data, int64_t horizon,
                                  const Settings& settings, Rng& rng);

// ---- Classification runners ---------------------------------------------------------

/// Train/test split of one classification suite dataset.
struct ClassifyData {
  std::string name;
  data::ClassificationDataset train;
  data::ClassificationDataset test;
};

std::vector<ClassifyData> PrepareClassifySuite(const Settings& settings,
                                               Rng& rng);

/// Pre-trains TimeDRL on classification windows (no channel independence).
std::unique_ptr<core::TimeDrlModel> PretrainTimeDrlClassify(
    const ClassifyData& data, const Settings& settings, Rng& rng,
    float lambda_weight = 1.0f, bool stop_gradient = true);

core::ClassificationMetrics EvalTimeDrlClassify(core::TimeDrlModel* model,
                                                const ClassifyData& data,
                                                core::Pooling pooling,
                                                const Settings& settings,
                                                Rng& rng);

/// SSL classification baselines of Table V.
std::vector<std::string> SslClassifyBaselineNames();

core::ClassificationMetrics EvalBaselineClassify(const std::string& name,
                                                 const ClassifyData& data,
                                                 const Settings& settings,
                                                 Rng& rng);

}  // namespace timedrl::bench

#endif  // TIMEDRL_BENCH_HARNESS_H_
