#!/usr/bin/env bash
# Runs the micro-kernel benchmark in --json mode and records its output at
# the repo root as BENCH_micro_kernels.json: per-kernel GFLOP/s through every
# available SIMD dispatch backend (scalar / avx2 / avx512 / neon) at one
# thread, each vector ISA's speedup over the scalar reference, plus the
# detected CPU feature string and the auto-selected ISA so numbers are
# comparable across machines. The classic google-benchmark mode (no flag)
# is unaffected.
# Build first:
#   cmake -B build -S . && cmake --build build -j --target micro_kernels
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
bench_bin="${repo_root}/build/bench/micro_kernels"

if [[ ! -x "${bench_bin}" ]]; then
  echo "error: ${bench_bin} not built; run:" >&2
  echo "  cmake -B build -S . && cmake --build build -j --target micro_kernels" >&2
  exit 1
fi

out="${repo_root}/BENCH_micro_kernels.json"
"${bench_bin}" --json | tee "${out}"
echo "wrote ${out}" >&2
