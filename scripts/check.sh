#!/usr/bin/env bash
# Full pre-merge check: build and test all three preset configurations.
#
#   scripts/check.sh            # default + sanitize + tsan
#   scripts/check.sh default    # just one preset
#
# default  — Release build, full ctest suite (the tier-1 gate)
# sanitize — ASan+UBSan build, full ctest suite
# tsan     — TSan build, threaded suites only (label-filtered; single-
#            threaded numeric suites add hours under TSan for no signal)
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
presets=("$@")
if [ "${#presets[@]}" -eq 0 ]; then
  presets=(default sanitize tsan)
fi

for preset in "${presets[@]}"; do
  echo "==> configure: ${preset}"
  cmake --preset "${preset}"
  echo "==> build: ${preset}"
  cmake --build --preset "${preset}" -j "${jobs}"
  echo "==> test: ${preset}"
  ctest --preset "${preset}" -j "${jobs}"
done

echo "All checks passed: ${presets[*]}"
