#!/usr/bin/env bash
# Full pre-merge check: build and test all three preset configurations.
#
#   scripts/check.sh            # default + sanitize + tsan
#   scripts/check.sh default    # just one preset
#
# default  — Release build, full ctest suite (the tier-1 gate)
# sanitize — ASan+UBSan build, full ctest suite
# tsan     — TSan build, threaded suites only (label-filtered; single-
#            threaded numeric suites add hours under TSan for no signal)
#
# Each preset's suite then reruns with TIMEDRL_SIMD=scalar, so the scalar
# reference kernels stay green even on hardware where auto-dispatch never
# picks them. Finally, on x86 machines whose cpuid advertises AVX2, the
# script fails if `timedrl simd` reports a scalar active path — that means
# the vector TUs silently fell out of the build.
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
presets=("$@")
if [ "${#presets[@]}" -eq 0 ]; then
  presets=(default sanitize tsan)
fi

declare -A build_dirs=(
  [default]=build [sanitize]=build-asan [tsan]=build-tsan
)

for preset in "${presets[@]}"; do
  echo "==> configure: ${preset}"
  cmake --preset "${preset}"
  echo "==> build: ${preset}"
  cmake --build --preset "${preset}" -j "${jobs}"
  echo "==> test: ${preset}"
  ctest --preset "${preset}" -j "${jobs}"
  echo "==> test (forced scalar): ${preset}"
  TIMEDRL_SIMD=scalar ctest --preset "${preset}" -j "${jobs}"
done

# Dispatch-regression guard: a machine that advertises AVX2 must not end up
# on the scalar path unless the user forced it.
if grep -qw avx2 /proc/cpuinfo 2>/dev/null; then
  for preset in "${presets[@]}"; do
    cli="${build_dirs[${preset}]}/tools/timedrl"
    [ -x "${cli}" ] || continue
    active="$("${cli}" simd | awk '/^active_isa:/ {print $2}')"
    echo "==> simd dispatch (${preset}): active_isa=${active}"
    if [ "${active}" = "scalar" ]; then
      echo "FAIL: cpuid advertises AVX2 but ${preset} selected the scalar" \
           "path — vector TUs missing from the build?" >&2
      exit 1
    fi
  done
fi

echo "All checks passed: ${presets[*]}"
