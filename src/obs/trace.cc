#include "obs/trace.h"

#include "util/env.h"

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <ostream>

#include "obs/metrics.h"

namespace timedrl::obs {
namespace internal {

std::atomic<bool> g_trace_enabled{false};

}  // namespace internal

namespace {

// Spans are appended to fixed-size chunks linked newest-first. The owning
// thread is the only writer; readers walk head->prev chains and trust only
// the event counts they acquire, so no lock guards the record path.
struct Chunk {
  static constexpr int64_t kCapacity = 4096;
  std::atomic<int64_t> count{0};
  Chunk* prev = nullptr;  // fully set before the chunk is published
  TraceEvent events[kCapacity];
};

// Caps a runaway traced loop at ~256 MB of events per thread.
constexpr int64_t kMaxChunksPerThread = 2048;

struct ThreadTraceBuffer {
  std::atomic<Chunk*> head{nullptr};
  int64_t num_chunks = 0;            // written only by the owning thread
  std::atomic<int64_t> dropped{0};
  uint32_t thread_id = 0;
};

struct TraceState {
  std::mutex mutex;
  std::vector<ThreadTraceBuffer*> buffers;  // leaked: outlive their threads
  uint32_t next_thread_id = 0;
};

// Leaked on purpose: spans can be recorded from worker threads that die
// during static destruction, and the atexit export runs after main().
TraceState& trace_state() {
  static TraceState* state = new TraceState;
  return *state;
}

ThreadTraceBuffer& LocalBuffer() {
  thread_local ThreadTraceBuffer* buffer = [] {
    auto* fresh = new ThreadTraceBuffer;
    TraceState& state = trace_state();
    std::lock_guard<std::mutex> lock(state.mutex);
    fresh->thread_id = state.next_thread_id++;
    state.buffers.push_back(fresh);
    return fresh;
  }();
  return *buffer;
}

std::chrono::steady_clock::time_point TraceEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

void ExportAtExit() {
  WriteChromeTraceFile(
      util::Env::GetString("TIMEDRL_TRACE_OUT", "timedrl_trace.json"));
}

// Dynamic initializer: seeds the enabled flag from TIMEDRL_TRACE, anchors
// the epoch, and arranges the end-of-process export for env-driven runs.
const bool g_env_initialized = [] {
  TraceEpoch();
  if (util::Env::GetBool("TIMEDRL_TRACE", false)) {
    internal::g_trace_enabled.store(true, std::memory_order_relaxed);
    std::atexit(ExportAtExit);
  }
  return true;
}();

// Minimal JSON string escaping (names are literals, but be safe).
void WriteEscaped(std::ostream& os, const char* s) {
  for (; *s != '\0'; ++s) {
    if (*s == '"' || *s == '\\') os << '\\';
    os << *s;
  }
}

}  // namespace

void SetTraceEnabled(bool enabled) {
  internal::g_trace_enabled.store(enabled, std::memory_order_relaxed);
}

int64_t TraceNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - TraceEpoch())
      .count();
}

void RecordSpan(const char* name, const char* category, int64_t start_ns,
                int64_t duration_ns) {
  ThreadTraceBuffer& buffer = LocalBuffer();
  Chunk* chunk = buffer.head.load(std::memory_order_relaxed);
  if (chunk == nullptr ||
      chunk->count.load(std::memory_order_relaxed) == Chunk::kCapacity) {
    if (buffer.num_chunks >= kMaxChunksPerThread) {
      buffer.dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    Chunk* fresh = new Chunk;
    fresh->prev = chunk;
    ++buffer.num_chunks;
    // Publish with count 0: readers that see the chunk see no events yet.
    buffer.head.store(fresh, std::memory_order_release);
    chunk = fresh;
  }
  const int64_t slot = chunk->count.load(std::memory_order_relaxed);
  chunk->events[slot].name = name;
  chunk->events[slot].category = category;
  chunk->events[slot].start_ns = start_ns;
  chunk->events[slot].duration_ns = duration_ns;
  chunk->events[slot].thread_id = buffer.thread_id;
  // The slot write must be visible before the count that covers it.
  chunk->count.store(slot + 1, std::memory_order_release);
}

std::vector<TraceEvent> CollectTraceEvents() {
  std::vector<TraceEvent> events;
  TraceState& state = trace_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  for (ThreadTraceBuffer* buffer : state.buffers) {
    // Chunks link newest-first; gather then reverse into recording order.
    std::vector<const Chunk*> chunks;
    for (const Chunk* chunk = buffer->head.load(std::memory_order_acquire);
         chunk != nullptr; chunk = chunk->prev) {
      chunks.push_back(chunk);
    }
    for (auto it = chunks.rbegin(); it != chunks.rend(); ++it) {
      const int64_t count = (*it)->count.load(std::memory_order_acquire);
      for (int64_t i = 0; i < count; ++i) events.push_back((*it)->events[i]);
    }
  }
  return events;
}

int64_t TraceEventCount() {
  int64_t total = 0;
  TraceState& state = trace_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  for (ThreadTraceBuffer* buffer : state.buffers) {
    for (const Chunk* chunk = buffer->head.load(std::memory_order_acquire);
         chunk != nullptr; chunk = chunk->prev) {
      total += chunk->count.load(std::memory_order_acquire);
    }
  }
  return total;
}

int64_t TraceDroppedCount() {
  int64_t total = 0;
  TraceState& state = trace_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  for (ThreadTraceBuffer* buffer : state.buffers) {
    total += buffer->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

void ClearTraceEvents() {
  TraceState& state = trace_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  for (ThreadTraceBuffer* buffer : state.buffers) {
    Chunk* chunk = buffer->head.exchange(nullptr, std::memory_order_acq_rel);
    while (chunk != nullptr) {
      Chunk* prev = chunk->prev;
      delete chunk;
      chunk = prev;
    }
    buffer->num_chunks = 0;
    buffer->dropped.store(0, std::memory_order_relaxed);
  }
}

void WriteChromeTrace(std::ostream& os) {
  const std::vector<TraceEvent> events = CollectTraceEvents();
  os << "{\"traceEvents\":[";
  os << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":1,"
        "\"args\":{\"name\":\"timedrl\"}}";
  for (const TraceEvent& event : events) {
    os << ",\n{\"name\":\"";
    WriteEscaped(os, event.name);
    os << "\",\"cat\":\"";
    WriteEscaped(os, event.category);
    os << "\",\"ph\":\"X\",\"ts\":" << event.start_ns / 1e3
       << ",\"dur\":" << event.duration_ns / 1e3
       << ",\"pid\":1,\"tid\":" << event.thread_id << "}";
  }
  os << "],\n\"displayTimeUnit\":\"ms\",\n\"otherData\":{\"metrics\":";
  Registry::Global().WriteJson(os);
  os << "}}\n";
}

bool WriteChromeTraceFile(const std::string& path) {
  std::ofstream file(path);
  if (!file.is_open()) return false;
  WriteChromeTrace(file);
  return file.good();
}

}  // namespace timedrl::obs
