// Observer-based progress reporting for training loops.
//
// Training loops used to report progress through a `bool verbose` flag and
// hard-coded log lines. They now publish structured per-step and per-epoch
// statistics to a TrainObserver, and callers choose the sink: console
// logging (ConsoleObserver), the metrics registry (MetricsObserver), both
// (MultiObserver), or anything custom. A null observer is silent — the old
// verbose=false behavior.

#ifndef TIMEDRL_OBS_OBSERVER_H_
#define TIMEDRL_OBS_OBSERVER_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace timedrl::obs {

/// Statistics of one optimizer step.
struct StepStats {
  int64_t epoch = 0;       // 0-based
  int64_t step = 0;        // 0-based within the epoch
  int64_t batch_size = 0;  // actual rows in this batch
  double loss = 0.0;
  double grad_norm = 0.0;  // global L2 norm before clipping
  float learning_rate = 0.0f;
};

/// Statistics of one finished epoch (means over its steps).
struct EpochStats {
  /// Which loop is reporting, e.g. "pretrain", "forecast head", "ts2vec".
  std::string phase;
  /// Label for the loss in console output, e.g. "L", "mse", "ce".
  std::string loss_label = "loss";
  int64_t epoch = 0;       // 0-based
  int64_t num_epochs = 0;
  int64_t steps = 0;
  double loss = 0.0;       // mean over the epoch's steps
  double grad_norm = 0.0;  // mean pre-clip global gradient norm
  float learning_rate = 0.0f;
  /// Additional named values, e.g. {"L_P", ...}, {"L_C", ...}.
  std::vector<std::pair<std::string, double>> extra;
};

/// Receives training progress. Callbacks run on the training thread,
/// between steps — keep them cheap. Default implementations are no-ops so
/// subclasses override only what they need.
class TrainObserver {
 public:
  virtual ~TrainObserver() = default;
  virtual void OnStep(const StepStats& stats) { (void)stats; }
  virtual void OnEpochEnd(const EpochStats& stats) { (void)stats; }
};

/// Logs one line per epoch, matching the output the `verbose` flag used to
/// produce: "<phase> epoch <e>/<N> <label>=<loss> [<name>=<value> ...]".
class ConsoleObserver : public TrainObserver {
 public:
  /// Default: emit through the INFO log. With `os`, write plain lines to
  /// the given stream instead (tests, file capture).
  explicit ConsoleObserver(std::ostream* os = nullptr) : os_(os) {}

  void OnEpochEnd(const EpochStats& stats) override;

 private:
  std::ostream* os_;
};

/// Feeds the metrics registry: per-epoch gauges `<prefix>.loss`,
/// `<prefix>.grad_norm`, `<prefix>.lr` (plus one gauge per `extra` entry),
/// counters `<prefix>.epochs` / `<prefix>.steps`, and a `<prefix>.step_loss`
/// histogram.
class MetricsObserver : public TrainObserver {
 public:
  explicit MetricsObserver(std::string prefix = "train");

  void OnStep(const StepStats& stats) override;
  void OnEpochEnd(const EpochStats& stats) override;

 private:
  std::string prefix_;
};

/// Fans callbacks out to several observers (e.g. console + metrics).
class MultiObserver : public TrainObserver {
 public:
  explicit MultiObserver(std::vector<TrainObserver*> children)
      : children_(std::move(children)) {}

  void OnStep(const StepStats& stats) override;
  void OnEpochEnd(const EpochStats& stats) override;

 private:
  std::vector<TrainObserver*> children_;
};

}  // namespace timedrl::obs

#endif  // TIMEDRL_OBS_OBSERVER_H_
