// Minimal leveled logging to stderr.

#ifndef TIMEDRL_OBS_LOGGING_H_
#define TIMEDRL_OBS_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string>

namespace timedrl {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Messages below this level are discarded. Defaults to kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Buffers a log line and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace timedrl

#define TIMEDRL_LOG_DEBUG                                          \
  ::timedrl::internal::LogMessage(::timedrl::LogLevel::kDebug,     \
                                  __FILE__, __LINE__)
#define TIMEDRL_LOG_INFO                                           \
  ::timedrl::internal::LogMessage(::timedrl::LogLevel::kInfo,      \
                                  __FILE__, __LINE__)
#define TIMEDRL_LOG_WARNING                                        \
  ::timedrl::internal::LogMessage(::timedrl::LogLevel::kWarning,   \
                                  __FILE__, __LINE__)
#define TIMEDRL_LOG_ERROR                                          \
  ::timedrl::internal::LogMessage(::timedrl::LogLevel::kError,     \
                                  __FILE__, __LINE__)

#endif  // TIMEDRL_OBS_LOGGING_H_
