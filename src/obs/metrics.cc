#include "obs/metrics.h"

#include <cmath>
#include <ostream>

namespace timedrl::obs {
namespace {

/// Bucket for value v: 0 for v < 1, else 1 + floor(log2(v)), clamped.
int BucketIndex(double v) {
  if (!(v >= 1.0)) return 0;  // also catches NaN
  int b = 1;
  while (b < Histogram::kNumBuckets - 1 && std::ldexp(1.0, b) <= v) ++b;
  return b;
}

void AtomicAdd(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>& target, double v) {
  double current = target.load(std::memory_order_relaxed);
  while (v < current && !target.compare_exchange_weak(
                            current, v, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>& target, double v) {
  double current = target.load(std::memory_order_relaxed);
  while (v > current && !target.compare_exchange_weak(
                            current, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

double HistogramStats::ApproxQuantile(double q) const {
  if (count == 0) return 0.0;
  if (q <= 0.0) return min;
  if (q >= 1.0) return max;
  const uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count));
  uint64_t seen = 0;
  for (size_t b = 0; b < buckets.size(); ++b) {
    seen += buckets[b];
    if (seen > rank) {
      return std::min(max, std::ldexp(1.0, static_cast<int>(b)));
    }
  }
  return max;
}

void Histogram::Observe(double v) {
  const uint64_t seen = count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(sum_, v);
  if (seen == 0) {
    // First observation seeds min (otherwise min would stick at 0). A
    // concurrent first observation is resolved by the CAS loops below.
    min_.store(v, std::memory_order_relaxed);
  }
  AtomicMin(min_, v);
  AtomicMax(max_, v);
  buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
}

HistogramStats Histogram::Snapshot() const {
  HistogramStats stats;
  stats.count = count_.load(std::memory_order_relaxed);
  stats.sum = sum_.load(std::memory_order_relaxed);
  stats.min = min_.load(std::memory_order_relaxed);
  stats.max = max_.load(std::memory_order_relaxed);
  stats.buckets.resize(kNumBuckets);
  for (int b = 0; b < kNumBuckets; ++b) {
    stats.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  return stats;
}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
  for (int b = 0; b < kNumBuckets; ++b) {
    buckets_[b].store(0, std::memory_order_relaxed);
  }
}

uint64_t MetricsSnapshot::CounterValue(std::string_view name) const {
  for (const auto& [key, value] : counters) {
    if (key == name) return value;
  }
  return 0;
}

double MetricsSnapshot::GaugeValue(std::string_view name) const {
  for (const auto& [key, value] : gauges) {
    if (key == name) return value;
  }
  return 0.0;
}

const HistogramStats* MetricsSnapshot::FindHistogram(
    std::string_view name) const {
  for (const auto& [key, value] : histograms) {
    if (key == name) return &value;
  }
  return nullptr;
}

Registry& Registry::Global() {
  // Leaked on purpose: metrics are touched from thread and static
  // destructors (pool flushes, worker exits) after function-local statics
  // would have been destroyed.
  static Registry* registry = new Registry;
  return *registry;
}

Counter& Registry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

MetricsSnapshot Registry::Snapshot() const {
  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mutex_);
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace_back(name, counter->value());
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.emplace_back(name, gauge->value());
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms.emplace_back(name, histogram->Snapshot());
  }
  return snapshot;
}

void Registry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, counter] : counters_) counter->Reset();
  for (const auto& [name, histogram] : histograms_) histogram->Reset();
}

void Registry::WriteJson(std::ostream& os) const {
  const MetricsSnapshot snapshot = Snapshot();
  os << "{\"counters\":{";
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    if (i > 0) os << ",";
    os << "\"" << snapshot.counters[i].first
       << "\":" << snapshot.counters[i].second;
  }
  os << "},\"gauges\":{";
  for (size_t i = 0; i < snapshot.gauges.size(); ++i) {
    if (i > 0) os << ",";
    os << "\"" << snapshot.gauges[i].first
       << "\":" << snapshot.gauges[i].second;
  }
  os << "},\"histograms\":{";
  for (size_t i = 0; i < snapshot.histograms.size(); ++i) {
    if (i > 0) os << ",";
    const HistogramStats& stats = snapshot.histograms[i].second;
    os << "\"" << snapshot.histograms[i].first << "\":{\"count\":"
       << stats.count << ",\"sum\":" << stats.sum << ",\"min\":" << stats.min
       << ",\"max\":" << stats.max << ",\"mean\":" << stats.mean()
       << ",\"p50\":" << stats.ApproxQuantile(0.5)
       << ",\"p99\":" << stats.ApproxQuantile(0.99) << "}";
  }
  os << "}}";
}

}  // namespace timedrl::obs
