#include "obs/logging.h"

#include <atomic>

namespace timedrl {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level));
}

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_log_level.load()); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >= g_log_level.load()) {
  if (enabled_) {
    const char* basename = file;
    for (const char* p = file; *p != '\0'; ++p) {
      if (*p == '/') basename = p + 1;
    }
    stream_ << "[" << LevelName(level) << " " << basename << ":" << line
            << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) std::cerr << stream_.str() << std::endl;
}

}  // namespace internal
}  // namespace timedrl
