#include "obs/observer.h"

#include <ostream>
#include <sstream>

#include "obs/logging.h"
#include "obs/metrics.h"

namespace timedrl::obs {

void ConsoleObserver::OnEpochEnd(const EpochStats& stats) {
  std::ostringstream line;
  line << stats.phase << " epoch " << stats.epoch + 1 << "/"
       << stats.num_epochs << " " << stats.loss_label << "=" << stats.loss;
  for (const auto& [name, value] : stats.extra) {
    line << " " << name << "=" << value;
  }
  if (os_ != nullptr) {
    *os_ << line.str() << "\n";
  } else {
    TIMEDRL_LOG_INFO << line.str();
  }
}

MetricsObserver::MetricsObserver(std::string prefix)
    : prefix_(std::move(prefix)) {}

void MetricsObserver::OnStep(const StepStats& stats) {
  Registry& registry = Registry::Global();
  registry.GetCounter(prefix_ + ".steps").Increment();
  registry.GetHistogram(prefix_ + ".step_loss").Observe(stats.loss);
}

void MetricsObserver::OnEpochEnd(const EpochStats& stats) {
  Registry& registry = Registry::Global();
  registry.GetCounter(prefix_ + ".epochs").Increment();
  registry.GetGauge(prefix_ + ".loss").Set(stats.loss);
  registry.GetGauge(prefix_ + ".grad_norm").Set(stats.grad_norm);
  registry.GetGauge(prefix_ + ".lr").Set(stats.learning_rate);
  for (const auto& [name, value] : stats.extra) {
    registry.GetGauge(prefix_ + "." + name).Set(value);
  }
}

void MultiObserver::OnStep(const StepStats& stats) {
  for (TrainObserver* child : children_) {
    if (child != nullptr) child->OnStep(stats);
  }
}

void MultiObserver::OnEpochEnd(const EpochStats& stats) {
  for (TrainObserver* child : children_) {
    if (child != nullptr) child->OnEpochEnd(stats);
  }
}

}  // namespace timedrl::obs
