// Scoped trace spans with per-thread lock-free event buffers.
//
// Tracing answers "where did this training step spend its time" at every
// layer of the stack: epoch loops, autograd walks, optimizer updates, the
// thread pool, the buffer pool's slow paths, and individual kernels. A
// span is recorded by placing TIMEDRL_TRACE_SCOPE("name") at the top of a
// scope; the destructor stamps the duration.
//
// Cost model: tracing is DISABLED by default and a disabled span costs one
// relaxed atomic load plus a branch — cheap enough to leave scopes inside
// kernels that run thousands of times per step. When enabled (set the
// TIMEDRL_TRACE=1 environment variable, or call SetTraceEnabled(true)),
// each span costs two steady_clock reads and one append to a buffer owned
// by the recording thread.
//
// Concurrency: every thread appends to its own chunked buffer; no lock is
// taken on the record path. Publication uses a release store of the chunk's
// event count, which CollectTraceEvents()/WriteChromeTrace() pair with
// acquire loads, so exporting while other threads keep recording is safe
// (the export simply cuts off at the counts it observed). Buffers outlive
// their threads so a trace can be exported after workers have exited.
// ClearTraceEvents() is the one exception: it frees chunks and must not
// run concurrently with recording threads.
//
// Export: WriteChromeTrace() emits the chrome://tracing / Perfetto JSON
// format ("traceEvents" with ph:"X" complete events) and embeds a metrics
// registry snapshot under "otherData". When tracing was enabled from the
// environment, an atexit hook writes the trace to TIMEDRL_TRACE_OUT
// (default "timedrl_trace.json") so any binary can be traced without code
// changes.

#ifndef TIMEDRL_OBS_TRACE_H_
#define TIMEDRL_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace timedrl::obs {

namespace internal {
// Defined in trace.cc; read inline so a disabled span pays only this load.
extern std::atomic<bool> g_trace_enabled;
}  // namespace internal

/// One completed span. `name` and `category` must be string literals (or
/// otherwise outlive the trace); events store the pointers, not copies.
struct TraceEvent {
  const char* name = nullptr;
  const char* category = nullptr;
  int64_t start_ns = 0;     // relative to the process trace epoch
  int64_t duration_ns = 0;
  uint32_t thread_id = 0;   // dense id in recording order, 0 = first thread
};

/// Whether spans are being recorded. Seeded from TIMEDRL_TRACE at startup.
inline bool TraceEnabled() {
  return internal::g_trace_enabled.load(std::memory_order_relaxed);
}

/// Programmatic override of TIMEDRL_TRACE (benchmarks, tests, tools).
void SetTraceEnabled(bool enabled);

/// Nanoseconds since the process trace epoch (monotonic).
int64_t TraceNowNs();

/// Appends a completed span to the calling thread's buffer. Recorded even
/// when tracing is disabled mid-span (the scope checked at entry).
void RecordSpan(const char* name, const char* category, int64_t start_ns,
                int64_t duration_ns);

/// Snapshot of every recorded span across all threads, in per-thread order
/// (threads are concatenated, each thread's events chronological).
std::vector<TraceEvent> CollectTraceEvents();

/// Total recorded spans (cheaper than CollectTraceEvents().size()).
int64_t TraceEventCount();

/// Spans dropped because a thread hit its buffer cap.
int64_t TraceDroppedCount();

/// Frees all recorded spans. Must not race with recording threads.
void ClearTraceEvents();

/// Writes the trace as chrome://tracing JSON, with a metrics registry
/// snapshot embedded under "otherData.metrics".
void WriteChromeTrace(std::ostream& os);

/// WriteChromeTrace to a file. Returns false if the file cannot be opened.
bool WriteChromeTraceFile(const std::string& path);

/// RAII span: stamps start at construction, records at destruction. The
/// enabled check happens once, at entry — a span opened while tracing is on
/// is recorded even if tracing is switched off before it closes.
class TraceScope {
 public:
  explicit TraceScope(const char* name, const char* category = "op")
      : name_(name),
        category_(category),
        start_ns_(TraceEnabled() ? TraceNowNs() : kDisabled) {}

  ~TraceScope() {
    if (start_ns_ != kDisabled) {
      RecordSpan(name_, category_, start_ns_, TraceNowNs() - start_ns_);
    }
  }

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  static constexpr int64_t kDisabled = -1;
  const char* name_;
  const char* category_;
  int64_t start_ns_;
};

/// Feeds a duration histogram while tracing is enabled (the enabled check
/// happens once, at entry — same contract as TraceScope). Pays only a
/// relaxed load + branch when tracing is off, so per-op timing histograms
/// can live on hot paths.
class ScopedHistogramTimer {
 public:
  explicit ScopedHistogramTimer(Histogram& histogram)
      : histogram_(histogram),
        start_ns_(TraceEnabled() ? TraceNowNs() : kDisabled) {}

  ~ScopedHistogramTimer() {
    if (start_ns_ != kDisabled) {
      histogram_.Observe(static_cast<double>(TraceNowNs() - start_ns_));
    }
  }

  ScopedHistogramTimer(const ScopedHistogramTimer&) = delete;
  ScopedHistogramTimer& operator=(const ScopedHistogramTimer&) = delete;

 private:
  static constexpr int64_t kDisabled = -1;
  Histogram& histogram_;
  int64_t start_ns_;
};

}  // namespace timedrl::obs

#define TIMEDRL_TRACE_CONCAT_INNER_(a, b) a##b
#define TIMEDRL_TRACE_CONCAT_(a, b) TIMEDRL_TRACE_CONCAT_INNER_(a, b)

/// Times the enclosing scope under `name` (a string literal).
#define TIMEDRL_TRACE_SCOPE(name)                                     \
  ::timedrl::obs::TraceScope TIMEDRL_TRACE_CONCAT_(timedrl_trace_scope_, \
                                                   __LINE__)(name)

/// Like TIMEDRL_TRACE_SCOPE with an explicit category (chrome trace "cat").
#define TIMEDRL_TRACE_SCOPE_CAT(name, category)                          \
  ::timedrl::obs::TraceScope TIMEDRL_TRACE_CONCAT_(timedrl_trace_scope_, \
                                                   __LINE__)(name, category)

/// Autograd-op instrumentation: a trace span (category "op") plus a
/// registry duration histogram "op.<name>.ns". `name` must be a string
/// literal. The histogram reference is resolved once per call site.
#define TIMEDRL_TRACE_OP(name)                                               \
  TIMEDRL_TRACE_SCOPE_CAT(name, "op");                                       \
  static ::timedrl::obs::Histogram& TIMEDRL_TRACE_CONCAT_(                   \
      timedrl_op_histogram_, __LINE__) =                                     \
      ::timedrl::obs::Registry::Global().GetHistogram("op." name ".ns");     \
  ::timedrl::obs::ScopedHistogramTimer TIMEDRL_TRACE_CONCAT_(                \
      timedrl_op_timer_, __LINE__)(TIMEDRL_TRACE_CONCAT_(                    \
      timedrl_op_histogram_, __LINE__))

#endif  // TIMEDRL_OBS_TRACE_H_
