// Process-wide metrics registry: named counters, gauges, and histograms.
//
// The registry is the one place run-time statistics live. Subsystems that
// used to keep private counters (the tensor buffer pool, the kernel thread
// pool) register theirs here instead, so one snapshot shows allocator
// behavior, scheduler activity, and training progress side by side, and
// the chrome trace export (obs/trace.h) embeds the same snapshot.
//
// Usage: look a metric up once and cache the reference — GetCounter() takes
// a lock, but the returned object has a stable address for the process
// lifetime and its mutators are relaxed atomics, safe to hit from any
// thread (including kernel workers) without further synchronization.
//
//   static obs::Counter& hits =
//       obs::Registry::Global().GetCounter("pool.hits");
//   hits.Increment();
//
// Naming convention: dotted lowercase paths, subsystem first — "pool.hits",
// "threadpool.chunks", "train.loss", "optim.steps".

#ifndef TIMEDRL_OBS_METRICS_H_
#define TIMEDRL_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace timedrl::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-written level (loss, learning rate, live bytes). Add() supports
/// up/down tracking; SetMax() keeps a high-water mark.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }

  void Add(double delta) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }

  void SetMax(double v) {
    double current = value_.load(std::memory_order_relaxed);
    while (current < v && !value_.compare_exchange_weak(
                              current, v, std::memory_order_relaxed)) {
    }
  }

  double value() const { return value_.load(std::memory_order_relaxed); }

  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

 private:
  std::atomic<double> value_{0.0};
};

/// Aggregated view of a histogram at snapshot time.
struct HistogramStats {
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  /// Counts per power-of-two bucket: bucket b holds values in [2^(b-1), 2^b)
  /// (bucket 0: values < 1).
  std::vector<uint64_t> buckets;

  double mean() const { return count == 0 ? 0.0 : sum / count; }

  /// Bucket-resolution quantile estimate (upper bound of the bucket holding
  /// the q-th observation). q in [0, 1].
  double ApproxQuantile(double q) const;
};

/// Distribution of a non-negative quantity (durations in ns, sizes) in
/// power-of-two buckets. All mutators are lock-free and thread-safe.
class Histogram {
 public:
  static constexpr int kNumBuckets = 64;

  void Observe(double v);
  HistogramStats Snapshot() const;
  void Reset();

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
};

/// Point-in-time copy of every registered metric.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramStats>> histograms;

  /// Value lookups by exact name; 0 / nullptr when absent.
  uint64_t CounterValue(std::string_view name) const;
  double GaugeValue(std::string_view name) const;
  const HistogramStats* FindHistogram(std::string_view name) const;
};

/// Name -> metric map. Metrics are created on first lookup and never
/// removed; references stay valid for the process lifetime.
class Registry {
 public:
  static Registry& Global();

  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name);

  MetricsSnapshot Snapshot() const;

  /// Zeroes every counter and histogram. Gauges are left untouched: they
  /// track live state (e.g. pool bytes) that a reset must not falsify.
  void Reset();

  /// Snapshot as a JSON object: {"counters":{...},"gauges":{...},
  /// "histograms":{name:{"count":..,"sum":..,"min":..,"max":..,"mean":..}}}.
  void WriteJson(std::ostream& os) const;

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace timedrl::obs

#endif  // TIMEDRL_OBS_METRICS_H_
