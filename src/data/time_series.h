// Core dataset containers for multivariate time-series.

#ifndef TIMEDRL_DATA_TIME_SERIES_H_
#define TIMEDRL_DATA_TIME_SERIES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace timedrl::data {

/// A single multivariate series stored row-major as [length, channels].
struct TimeSeries {
  int64_t channels = 0;
  std::vector<float> values;

  TimeSeries() = default;
  TimeSeries(int64_t length, int64_t channels_in)
      : channels(channels_in),
        values(static_cast<size_t>(length * channels_in), 0.0f) {}

  int64_t length() const {
    return channels == 0 ? 0 : static_cast<int64_t>(values.size()) / channels;
  }

  float& at(int64_t t, int64_t c) { return values[t * channels + c]; }
  float at(int64_t t, int64_t c) const { return values[t * channels + c]; }

  /// Copy of rows [start, start+len).
  TimeSeries Range(int64_t start, int64_t len) const;

  /// A single-channel view (copy) of column `c`.
  TimeSeries Channel(int64_t c) const;

  /// Whole series as a [length, channels] tensor.
  Tensor ToTensor() const;
};

/// A labeled set of fixed-length windows for classification.
/// Windows are stored row-major as [length, channels] each.
struct ClassificationDataset {
  int64_t window_length = 0;
  int64_t channels = 0;
  int64_t num_classes = 0;
  std::vector<std::vector<float>> windows;
  std::vector<int64_t> labels;

  int64_t size() const { return static_cast<int64_t>(windows.size()); }

  /// Materializes the selected windows as [B, T, C] plus their labels.
  std::pair<Tensor, std::vector<int64_t>> GetBatch(
      const std::vector<int64_t>& indices) const;

  /// Subset by index list.
  ClassificationDataset Subset(const std::vector<int64_t>& indices) const;
};

/// Chronological (train, val, test) split of a series.
struct ForecastingSplits {
  TimeSeries train;
  TimeSeries val;
  TimeSeries test;
};

/// Splits a series 60/20/20 (or custom fractions) preserving time order —
/// the split the paper uses when no predefined split exists.
ForecastingSplits ChronologicalSplit(const TimeSeries& series,
                                     double train_fraction = 0.6,
                                     double val_fraction = 0.2);

/// Stratified (train, test) split of a classification dataset.
struct ClassificationSplits {
  ClassificationDataset train;
  ClassificationDataset test;
};

/// Splits per-class so label proportions are preserved. Deterministic given
/// the rng state.
ClassificationSplits StratifiedSplit(const ClassificationDataset& dataset,
                                     double train_fraction, Rng& rng);

}  // namespace timedrl::data

#endif  // TIMEDRL_DATA_TIME_SERIES_H_
