#include "data/csv.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

namespace timedrl::data {
namespace {

// Parses one float cell without exceptions. The whole cell (modulo
// surrounding whitespace) must be consumed — "1.5x" is a parse error, not
// the number 1.5.
bool ParseCell(const std::string& cell, float* value) {
  const char* begin = cell.c_str();
  char* end = nullptr;
  *value = std::strtof(begin, &end);
  if (end == begin) return false;
  while (*end == ' ' || *end == '\t') ++end;
  return *end == '\0';
}

void SplitRow(const std::string& line, std::vector<std::string>* cells) {
  cells->clear();
  std::stringstream row(line);
  std::string cell;
  while (std::getline(row, cell, ',')) cells->push_back(std::move(cell));
  // "a,b," has three cells, the last one empty — getline drops it.
  if (!line.empty() && line.back() == ',') cells->emplace_back();
}

// Strips a trailing '\r' so CRLF files parse like LF files.
void ChompCarriageReturn(std::string* line) {
  if (!line->empty() && line->back() == '\r') line->pop_back();
}

}  // namespace

Status SaveCsv(const TimeSeries& series, const std::string& path,
               const std::vector<std::string>& header) {
  std::ofstream out(path);
  if (!out) {
    return Status::Error(StatusCode::kIoError,
                         "cannot open " + path + " for writing");
  }
  for (int64_t c = 0; c < series.channels; ++c) {
    if (c > 0) out << ",";
    if (c < static_cast<int64_t>(header.size())) {
      out << header[c];
    } else {
      out << "c" << c;
    }
  }
  out << "\n";
  for (int64_t t = 0; t < series.length(); ++t) {
    for (int64_t c = 0; c < series.channels; ++c) {
      if (c > 0) out << ",";
      out << series.at(t, c);
    }
    out << "\n";
  }
  if (!out) {
    return Status::Error(StatusCode::kIoError, "write failed for " + path);
  }
  return Status::Ok();
}

Status LoadCsv(const std::string& path, TimeSeries* series,
               std::vector<std::string>* header,
               const CsvReadOptions& options) {
  std::ifstream in(path);
  if (!in) {
    return Status::Error(StatusCode::kIoError, "cannot open " + path);
  }
  std::string line;
  if (!std::getline(in, line)) {
    return Status::Error(StatusCode::kEmptyFile, path + " is empty");
  }
  ChompCarriageReturn(&line);

  std::vector<std::string> columns;
  SplitRow(line, &columns);
  if (columns.empty()) {
    return Status::Error(StatusCode::kEmptyFile,
                         path + " has an empty header line");
  }
  if (header != nullptr) *header = columns;

  const int64_t channels = static_cast<int64_t>(columns.size());
  std::vector<float> values;
  std::vector<float> row_values(static_cast<size_t>(channels));
  std::vector<std::string> cells;
  int64_t row_number = 1;  // 1-based file line numbers; row 1 is the header
  while (std::getline(in, line)) {
    ++row_number;
    ChompCarriageReturn(&line);
    if (line.empty()) continue;
    SplitRow(line, &cells);
    if (static_cast<int64_t>(cells.size()) != channels) {
      std::ostringstream message;
      message << "expected " << channels << " cells, found " << cells.size()
              << " in " << path;
      return Status::Error(StatusCode::kRaggedRow, message.str())
          .WithLocation(row_number);
    }
    bool drop_row = false;
    for (int64_t c = 0; c < channels; ++c) {
      float value = 0.0f;
      if (!ParseCell(cells[static_cast<size_t>(c)], &value)) {
        return Status::Error(StatusCode::kParseError,
                             "bad numeric cell '" +
                                 cells[static_cast<size_t>(c)] + "' in " +
                                 path)
            .WithLocation(row_number, c + 1);
      }
      if (!std::isfinite(value)) {
        switch (options.non_finite) {
          case NonFinitePolicy::kReject:
            return Status::Error(StatusCode::kNonFiniteCell,
                                 "non-finite cell '" +
                                     cells[static_cast<size_t>(c)] + "' in " +
                                     path)
                .WithLocation(row_number, c + 1);
          case NonFinitePolicy::kDropRow:
            drop_row = true;
            break;
          case NonFinitePolicy::kForwardFill: {
            // Last kept value of this column sits `channels` floats back.
            const size_t n = values.size();
            value = n >= static_cast<size_t>(channels)
                        ? values[n - static_cast<size_t>(channels) +
                                 static_cast<size_t>(c)]
                        : 0.0f;
            break;
          }
        }
      }
      if (drop_row) break;
      row_values[static_cast<size_t>(c)] = value;
    }
    if (drop_row) continue;
    values.insert(values.end(), row_values.begin(), row_values.end());
  }
  if (in.bad()) {
    return Status::Error(StatusCode::kIoError, "read failed for " + path);
  }
  if (values.empty()) {
    return Status::Error(StatusCode::kNoData, path + " has no data rows");
  }
  series->channels = channels;
  series->values = std::move(values);
  return Status::Ok();
}

}  // namespace timedrl::data
