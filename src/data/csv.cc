#include "data/csv.h"

#include <fstream>
#include <sstream>

#include "obs/logging.h"

namespace timedrl::data {

bool SaveCsv(const TimeSeries& series, const std::string& path,
             const std::vector<std::string>& header) {
  std::ofstream out(path);
  if (!out) {
    TIMEDRL_LOG_ERROR << "cannot open " << path << " for writing";
    return false;
  }
  for (int64_t c = 0; c < series.channels; ++c) {
    if (c > 0) out << ",";
    if (c < static_cast<int64_t>(header.size())) {
      out << header[c];
    } else {
      out << "c" << c;
    }
  }
  out << "\n";
  for (int64_t t = 0; t < series.length(); ++t) {
    for (int64_t c = 0; c < series.channels; ++c) {
      if (c > 0) out << ",";
      out << series.at(t, c);
    }
    out << "\n";
  }
  return static_cast<bool>(out);
}

bool LoadCsv(const std::string& path, TimeSeries* series,
             std::vector<std::string>* header) {
  std::ifstream in(path);
  if (!in) {
    TIMEDRL_LOG_ERROR << "cannot open " << path;
    return false;
  }
  std::string line;
  if (!std::getline(in, line)) return false;

  std::vector<std::string> columns;
  {
    std::stringstream row(line);
    std::string cell;
    while (std::getline(row, cell, ',')) columns.push_back(cell);
  }
  if (columns.empty()) return false;
  if (header != nullptr) *header = columns;

  const int64_t channels = static_cast<int64_t>(columns.size());
  std::vector<float> values;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::stringstream row(line);
    std::string cell;
    int64_t count = 0;
    while (std::getline(row, cell, ',')) {
      try {
        values.push_back(std::stof(cell));
      } catch (...) {
        TIMEDRL_LOG_ERROR << "bad numeric cell '" << cell << "' in " << path;
        return false;
      }
      ++count;
    }
    if (count != channels) {
      TIMEDRL_LOG_ERROR << "ragged row in " << path;
      return false;
    }
  }
  series->channels = channels;
  series->values = std::move(values);
  return true;
}

}  // namespace timedrl::data
