#include "data/patching.h"

#include "tensor/ops.h"
#include "util/check.h"

namespace timedrl::data {

InstanceNormResult InstanceNormalize(const Tensor& x, float eps) {
  TIMEDRL_CHECK_EQ(x.dim(), 3) << "expects [B, T, C]";
  InstanceNormResult result;
  result.mean = Mean(x, {1}, /*keepdim=*/true);
  Tensor centered = x - result.mean;
  result.std_dev =
      Sqrt(Mean(centered * centered, {1}, /*keepdim=*/true) + eps);
  result.normalized = centered / result.std_dev;
  return result;
}

int64_t NumPatches(int64_t series_length, int64_t patch_length,
                   int64_t patch_stride) {
  TIMEDRL_CHECK_GE(series_length, patch_length);
  return (series_length - patch_length) / patch_stride + 1;
}

Tensor Patchify(const Tensor& x, int64_t patch_length, int64_t patch_stride) {
  TIMEDRL_CHECK_EQ(x.dim(), 3) << "expects [B, T, C]";
  TIMEDRL_CHECK_GT(patch_length, 0);
  TIMEDRL_CHECK_GT(patch_stride, 0);
  const int64_t batch = x.size(0);
  const int64_t series_length = x.size(1);
  const int64_t channels = x.size(2);
  const int64_t num_patches =
      NumPatches(series_length, patch_length, patch_stride);

  std::vector<float> out(batch * num_patches * channels * patch_length);
  const std::vector<float>& in = x.data();
  // Captured by value: these are reused inside the backward closure, which
  // outlives this stack frame.
  auto in_index = [=](int64_t b, int64_t t, int64_t c) {
    return (b * series_length + t) * channels + c;
  };
  auto out_index = [=](int64_t b, int64_t p, int64_t c, int64_t k) {
    return (b * num_patches + p) * channels * patch_length + c * patch_length +
           k;
  };
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t p = 0; p < num_patches; ++p) {
      for (int64_t c = 0; c < channels; ++c) {
        for (int64_t k = 0; k < patch_length; ++k) {
          out[out_index(b, p, c, k)] =
              in[in_index(b, p * patch_stride + k, c)];
        }
      }
    }
  }

  auto x_impl = x.impl();
  auto backward = [x_impl, batch, series_length, channels, num_patches,
                   patch_length, patch_stride, in_index,
                   out_index](TensorImpl& node) {
    if (!x_impl->requires_grad) return;
    std::vector<float>& gx = x_impl->MutableGrad();
    const std::vector<float>& g = node.grad;
    for (int64_t b = 0; b < batch; ++b) {
      for (int64_t p = 0; p < num_patches; ++p) {
        for (int64_t c = 0; c < channels; ++c) {
          for (int64_t k = 0; k < patch_length; ++k) {
            gx[in_index(b, p * patch_stride + k, c)] +=
                g[out_index(b, p, c, k)];
          }
        }
      }
    }
  };
  return internal::MakeOpResult({batch, num_patches, channels * patch_length},
                                std::move(out), {x.impl()},
                                std::move(backward));
}

Tensor ToChannelIndependent(const Tensor& x) {
  TIMEDRL_CHECK_EQ(x.dim(), 3) << "expects [B, T, C]";
  const int64_t batch = x.size(0);
  const int64_t length = x.size(1);
  const int64_t channels = x.size(2);
  return Reshape(Permute(x, {0, 2, 1}), {batch * channels, length, 1});
}

Tensor FromChannelIndependent(const Tensor& x, int64_t batch,
                              int64_t channels) {
  TIMEDRL_CHECK_EQ(x.dim(), 3);
  TIMEDRL_CHECK_EQ(x.size(0), batch * channels);
  TIMEDRL_CHECK_EQ(x.size(2), 1);
  const int64_t length = x.size(1);
  return Permute(Reshape(x, {batch, channels, length}), {0, 2, 1});
}

}  // namespace timedrl::data
