// The paper's input pipeline transforms: instance normalization (Eq. 1),
// patching (PatchTST-style), and the channel-independence mapping.

#ifndef TIMEDRL_DATA_PATCHING_H_
#define TIMEDRL_DATA_PATCHING_H_

#include <cstdint>

#include "tensor/tensor.h"

namespace timedrl::data {

/// Result of instance normalization; mean/std are kept for de-normalization
/// of model outputs (RevIN without the learnable affine).
struct InstanceNormResult {
  Tensor normalized;  // [B, T, C]
  Tensor mean;        // [B, 1, C]
  Tensor std_dev;     // [B, 1, C]
};

/// Normalizes each (sample, channel) series to zero mean / unit variance
/// across the time axis. Differentiable.
InstanceNormResult InstanceNormalize(const Tensor& x, float eps = 1e-5f);

/// Number of patches produced by Patchify for a given length.
int64_t NumPatches(int64_t series_length, int64_t patch_length,
                   int64_t patch_stride);

/// Aggregates adjacent timesteps into patch tokens (paper Eq. 1):
/// [B, T, C] -> [B, T_p, C*P], with T_p = (T - P)/S + 1.
/// out[b, p, c*P + k] = x[b, p*S + k, c]. Differentiable.
Tensor Patchify(const Tensor& x, int64_t patch_length, int64_t patch_stride);

/// PatchTST channel independence: [B, T, C] -> [B*C, T, 1]; each channel
/// becomes an independent univariate sample sharing model weights.
Tensor ToChannelIndependent(const Tensor& x);

/// Inverse of ToChannelIndependent for model outputs:
/// [B*C, H, 1] -> [B, H, C].
Tensor FromChannelIndependent(const Tensor& x, int64_t batch,
                              int64_t channels);

}  // namespace timedrl::data

#endif  // TIMEDRL_DATA_PATCHING_H_
