#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "util/check.h"

namespace timedrl::data {
namespace {

constexpr float kTwoPi = 6.28318530717958647692f;

/// First-order autoregressive noise: x_t = phi * x_{t-1} + sigma * eps_t.
class Ar1 {
 public:
  Ar1(float phi, float sigma, Rng& rng) : phi_(phi), sigma_(sigma), rng_(rng) {}
  float Next() {
    state_ = phi_ * state_ + sigma_ * rng_.Normal();
    return state_;
  }

 private:
  float phi_;
  float sigma_;
  Rng& rng_;
  float state_ = 0.0f;
};

}  // namespace

// ---- Forecasting ----------------------------------------------------------------

TimeSeries MakeEttLike(int64_t length, int64_t period, int variant, Rng& rng) {
  TIMEDRL_CHECK_GT(length, 0);
  TIMEDRL_CHECK_GT(period, 1);
  constexpr int64_t kChannels = 7;  // 6 loads + oil temperature target
  TimeSeries series(length, kChannels);

  // Per-variant phases and couplings.
  std::vector<float> phase(6), daily_amp(6), weekly_amp(6), trend(6);
  std::vector<Ar1> noise;
  noise.reserve(7);
  for (int64_t c = 0; c < 6; ++c) {
    phase[c] = rng.Uniform(0.0f, kTwoPi) + 0.37f * static_cast<float>(variant);
    daily_amp[c] = rng.Uniform(0.6f, 1.4f);
    weekly_amp[c] = rng.Uniform(0.15f, 0.35f);
    trend[c] = rng.Uniform(-0.15f, 0.15f);
    noise.emplace_back(0.8f, 0.25f, rng);
  }
  noise.emplace_back(0.7f, 0.1f, rng);  // oil-temperature noise

  // Secondary slow cycle. At bench scale the series covers only a few
  // "weeks", so the real 7x ratio would leave the slow cycle unobservable
  // (pure level drift across the chronological split); 3.5x keeps several
  // full cycles inside every split.
  const float weekly_period = static_cast<float>(period) * 3.5f;
  for (int64_t t = 0; t < length; ++t) {
    const float day = kTwoPi * static_cast<float>(t) / period;
    const float week = kTwoPi * static_cast<float>(t) / weekly_period;
    const float progress = static_cast<float>(t) / length;
    for (int64_t c = 0; c < 6; ++c) {
      series.at(t, c) = daily_amp[c] * std::sin(day + phase[c]) +
                        weekly_amp[c] * std::sin(week + 0.5f * phase[c]) +
                        trend[c] * progress + noise[c].Next();
    }
  }
  // Oil temperature: smoothed lagged combination of the loads + slow cycle.
  const int64_t lag = period / 4 + 1;
  float oil = 0.0f;
  for (int64_t t = 0; t < length; ++t) {
    float load_sum = 0.0f;
    for (int64_t c = 0; c < 6; ++c) {
      load_sum += series.at(std::max<int64_t>(0, t - lag), c);
    }
    // Mostly intra-window (daily) dynamics with a mild weekly component, as
    // in the real OT channel: keeps the series predictable from a lookback
    // window rather than from absolute calendar position.
    const float drive = 0.12f * load_sum +
                        0.25f * std::sin(kTwoPi * t / weekly_period + 1.1f) +
                        0.9f * std::sin(kTwoPi * t / period + 0.7f);
    oil = 0.9f * oil + 0.1f * drive;
    series.at(t, 6) = oil + noise[6].Next();
  }
  return series;
}

TimeSeries MakeExchangeLike(int64_t length, Rng& rng) {
  constexpr int64_t kChannels = 8;
  TimeSeries series(length, kChannels);
  // One global market factor plus idiosyncratic shocks gives correlated
  // near-random walks, like co-moving currencies.
  std::vector<float> level(kChannels);
  std::vector<float> beta(kChannels);
  std::vector<float> drift(kChannels);
  for (int64_t c = 0; c < kChannels; ++c) {
    level[c] = rng.Uniform(0.5f, 1.5f);
    beta[c] = rng.Uniform(0.3f, 1.0f);
    drift[c] = rng.Normal(0.0f, 2e-5f);
  }
  for (int64_t t = 0; t < length; ++t) {
    const float market = rng.Normal(0.0f, 0.004f);
    for (int64_t c = 0; c < kChannels; ++c) {
      level[c] += drift[c] + beta[c] * market + rng.Normal(0.0f, 0.003f);
      series.at(t, c) = level[c];
    }
  }
  return series;
}

TimeSeries MakeWeatherLike(int64_t length, Rng& rng) {
  constexpr int64_t kChannels = 21;
  constexpr int64_t kFactors = 3;
  TimeSeries series(length, kChannels);

  // Latent seasonal drivers (e.g. temperature, pressure, humidity cycles).
  // Periods sized so the dominant cycle fits inside bench lookback windows.
  std::vector<float> factor_period = {48.0f, 336.0f, 16.0f};
  std::vector<float> factor_phase(kFactors);
  for (int64_t f = 0; f < kFactors; ++f) {
    factor_phase[f] = rng.Uniform(0.0f, kTwoPi);
  }
  std::vector<std::vector<float>> loading(
      kChannels, std::vector<float>(kFactors));
  std::vector<Ar1> noise;
  noise.reserve(kChannels);
  for (int64_t c = 0; c < kChannels; ++c) {
    for (int64_t f = 0; f < kFactors; ++f) {
      loading[c][f] = rng.Normal(0.0f, 0.7f);
    }
    noise.emplace_back(0.7f, 0.2f, rng);
  }

  // Regime switching: noise variance doubles in sporadic stormy stretches.
  bool stormy = false;
  for (int64_t t = 0; t < length; ++t) {
    if (rng.Bernoulli(0.002f)) stormy = !stormy;
    const float noise_scale = stormy ? 2.0f : 1.0f;
    for (int64_t c = 0; c < kChannels; ++c) {
      float value = 0.0f;
      for (int64_t f = 0; f < kFactors; ++f) {
        value += loading[c][f] *
                 std::sin(kTwoPi * t / factor_period[f] + factor_phase[f]);
      }
      series.at(t, c) = value + noise_scale * noise[c].Next();
    }
  }
  return series;
}

// ---- Classification ------------------------------------------------------------

namespace {

/// Allocates a balanced dataset shell and invokes `fill(sample, label)`.
ClassificationDataset MakeBalanced(
    int64_t samples, int64_t window_length, int64_t channels,
    int64_t num_classes, Rng& rng,
    const std::function<void(std::vector<float>&, int64_t, Rng&)>& fill) {
  ClassificationDataset dataset;
  dataset.window_length = window_length;
  dataset.channels = channels;
  dataset.num_classes = num_classes;
  dataset.windows.reserve(samples);
  dataset.labels.reserve(samples);
  for (int64_t i = 0; i < samples; ++i) {
    const int64_t label = i % num_classes;
    std::vector<float> window(window_length * channels, 0.0f);
    fill(window, label, rng);
    dataset.windows.push_back(std::move(window));
    dataset.labels.push_back(label);
  }
  // Randomize ordering so contiguous batches are label-mixed.
  std::vector<int64_t> order = rng.Permutation(samples);
  return dataset.Subset(order);
}

}  // namespace

ClassificationDataset MakeHarLike(int64_t samples, int64_t window_length,
                                  Rng& rng) {
  constexpr int64_t kChannels = 9;
  constexpr int64_t kClasses = 6;
  return MakeBalanced(
      samples, window_length, kChannels, kClasses, rng,
      [window_length](std::vector<float>& window, int64_t label, Rng& rng) {
        // Activity signature: class-specific base frequency & amplitude.
        const float freq = 0.03f + 0.035f * static_cast<float>(label);
        const float amp = 0.5f + 0.25f * static_cast<float>(label % 3);
        const float phase = rng.Uniform(0.0f, kTwoPi);
        for (int64_t c = 0; c < kChannels; ++c) {
          // Gyro channels (6..8) carry a harmonic; accel carry the base.
          const float mult = c < 6 ? 1.0f : 2.0f;
          const float channel_gain = 0.6f + 0.1f * static_cast<float>(c % 3);
          const float gravity = c % 3 == 2 ? 1.0f : 0.0f;
          for (int64_t t = 0; t < window_length; ++t) {
            window[t * kChannels + c] =
                gravity +
                amp * channel_gain *
                    std::sin(kTwoPi * freq * mult * t + phase) +
                rng.Normal(0.0f, 0.25f);
          }
        }
      });
}

ClassificationDataset MakeWisdmLike(int64_t samples, int64_t window_length,
                                    Rng& rng) {
  constexpr int64_t kChannels = 3;
  constexpr int64_t kClasses = 6;
  return MakeBalanced(
      samples, window_length, kChannels, kClasses, rng,
      [window_length](std::vector<float>& window, int64_t label, Rng& rng) {
        // Class-specific gait frequency; channel harmonics stay well below
        // Nyquist. Smartwatch data is messier than HAR: more noise and
        // occasional sensor dropouts.
        const float freq = 0.025f + 0.02f * static_cast<float>(label);
        const float amp = 0.6f + 0.2f * static_cast<float>(label % 3);
        const float phase = rng.Uniform(0.0f, kTwoPi);
        for (int64_t c = 0; c < kChannels; ++c) {
          const float mult = 1.0f + 0.5f * static_cast<float>(c);
          for (int64_t t = 0; t < window_length; ++t) {
            float value = amp * std::sin(kTwoPi * freq * mult * t + phase) +
                          rng.Normal(0.0f, 0.3f);
            if (rng.Bernoulli(0.005f)) value = 0.0f;  // sensor dropout
            window[t * kChannels + c] = value;
          }
        }
      });
}

ClassificationDataset MakeEpilepsyLike(int64_t samples, int64_t window_length,
                                       Rng& rng) {
  return MakeBalanced(
      samples, window_length, /*channels=*/1, /*num_classes=*/2, rng,
      [window_length](std::vector<float>& window, int64_t label, Rng& rng) {
        Ar1 background(0.9f, 0.3f, rng);
        for (int64_t t = 0; t < window_length; ++t) {
          window[t] = background.Next();
        }
        // Both classes carry the same number of identical spike-wave bursts;
        // only the temporal arrangement differs. Epileptic windows (label 1)
        // show the classic *rhythmic* spike-wave train, healthy windows show
        // the same transients at irregular times. This makes the class
        // signal a global property of the window (how bursts are arranged),
        // not a local property of any patch.
        const float burst_amp = rng.Uniform(2.0f, 3.0f);
        const int64_t burst_period = 8 + rng.UniformInt(0, 3);
        const int64_t num_bursts = window_length / burst_period;
        std::vector<int64_t> positions;
        if (label == 1) {
          const int64_t offset = rng.UniformInt(0, burst_period - 1);
          for (int64_t k = 0; k < num_bursts; ++k) {
            positions.push_back(offset + k * burst_period);
          }
        } else {
          // Irregular but non-colliding: bursts keep a minimum separation so
          // no patch-local cue (e.g. merged double spikes) leaks the label.
          std::vector<bool> taken(window_length, false);
          for (int64_t k = 0; k < num_bursts; ++k) {
            for (int64_t attempt = 0; attempt < 32; ++attempt) {
              const int64_t t = rng.UniformInt(0, window_length - 2);
              bool clear = true;
              for (int64_t d = -3; d <= 3; ++d) {
                const int64_t u = t + d;
                if (u >= 0 && u < window_length && taken[u]) clear = false;
              }
              if (clear) {
                taken[t] = true;
                positions.push_back(t);
                break;
              }
            }
          }
        }
        for (int64_t t : positions) {
          if (t + 1 >= window_length) continue;
          window[t] += burst_amp;
          window[t + 1] -= 0.6f * burst_amp;
        }
      });
}

ClassificationDataset MakePenDigitsLike(int64_t samples, Rng& rng) {
  constexpr int64_t kPoints = 8;
  // Hand-laid 8-point stroke skeletons for the digits 0-9 in [0, 1]^2.
  static const float kStrokes[10][kPoints][2] = {
      // 0: closed oval
      {{0.5f, 0.9f}, {0.2f, 0.75f}, {0.15f, 0.4f}, {0.35f, 0.1f},
       {0.65f, 0.1f}, {0.85f, 0.4f}, {0.8f, 0.75f}, {0.5f, 0.9f}},
      // 1: downstroke
      {{0.35f, 0.75f}, {0.5f, 0.9f}, {0.5f, 0.78f}, {0.5f, 0.62f},
       {0.5f, 0.46f}, {0.5f, 0.3f}, {0.5f, 0.18f}, {0.5f, 0.1f}},
      // 2: top curl, diagonal, base
      {{0.2f, 0.75f}, {0.45f, 0.9f}, {0.75f, 0.8f}, {0.7f, 0.55f},
       {0.45f, 0.35f}, {0.2f, 0.15f}, {0.5f, 0.1f}, {0.85f, 0.1f}},
      // 3: double bump
      {{0.2f, 0.85f}, {0.6f, 0.9f}, {0.75f, 0.7f}, {0.45f, 0.5f},
       {0.75f, 0.35f}, {0.6f, 0.12f}, {0.3f, 0.1f}, {0.2f, 0.2f}},
      // 4: diagonal, crossbar, downstroke
      {{0.6f, 0.9f}, {0.35f, 0.6f}, {0.15f, 0.4f}, {0.5f, 0.4f},
       {0.85f, 0.4f}, {0.6f, 0.6f}, {0.6f, 0.3f}, {0.6f, 0.1f}},
      // 5: top bar, down, belly
      {{0.8f, 0.9f}, {0.3f, 0.9f}, {0.28f, 0.6f}, {0.55f, 0.55f},
       {0.8f, 0.4f}, {0.7f, 0.15f}, {0.4f, 0.1f}, {0.2f, 0.2f}},
      // 6: sweep down into loop
      {{0.7f, 0.9f}, {0.4f, 0.7f}, {0.22f, 0.45f}, {0.25f, 0.2f},
       {0.5f, 0.1f}, {0.75f, 0.25f}, {0.6f, 0.45f}, {0.3f, 0.4f}},
      // 7: top bar then diagonal
      {{0.15f, 0.9f}, {0.5f, 0.9f}, {0.85f, 0.9f}, {0.7f, 0.65f},
       {0.55f, 0.45f}, {0.45f, 0.3f}, {0.38f, 0.18f}, {0.32f, 0.1f}},
      // 8: double loop
      {{0.5f, 0.9f}, {0.25f, 0.72f}, {0.6f, 0.55f}, {0.8f, 0.35f},
       {0.5f, 0.1f}, {0.2f, 0.32f}, {0.45f, 0.52f}, {0.72f, 0.72f}},
      // 9: loop then tail
      {{0.72f, 0.65f}, {0.45f, 0.85f}, {0.25f, 0.68f}, {0.4f, 0.5f},
       {0.68f, 0.55f}, {0.68f, 0.35f}, {0.62f, 0.2f}, {0.55f, 0.1f}},
  };
  return MakeBalanced(
      samples, kPoints, /*channels=*/2, /*num_classes=*/10, rng,
      [](std::vector<float>& window, int64_t label, Rng& rng) {
        // Writer variability: random shift/scale plus per-point jitter.
        const float scale = rng.Uniform(0.85f, 1.15f);
        const float dx = rng.Normal(0.0f, 0.04f);
        const float dy = rng.Normal(0.0f, 0.04f);
        for (int64_t p = 0; p < kPoints; ++p) {
          window[p * 2 + 0] = scale * kStrokes[label][p][0] + dx +
                              rng.Normal(0.0f, 0.025f);
          window[p * 2 + 1] = scale * kStrokes[label][p][1] + dy +
                              rng.Normal(0.0f, 0.025f);
        }
      });
}

ClassificationDataset MakeFingerMovementsLike(int64_t samples,
                                              int64_t window_length,
                                              Rng& rng) {
  constexpr int64_t kChannels = 28;
  return MakeBalanced(
      samples, window_length, kChannels, /*num_classes=*/2, rng,
      [window_length](std::vector<float>& window, int64_t label, Rng& rng) {
        // Readiness potential: a weak drift over the final 40% of the
        // window, lateralized by upcoming movement side. SNR is deliberately
        // low; the real dataset keeps most methods near chance.
        const int64_t onset = window_length * 3 / 5;
        const float drift = rng.Uniform(0.1f, 0.22f);
        for (int64_t c = 0; c < kChannels; ++c) {
          Ar1 background(0.85f, 0.5f, rng);
          const bool drifting =
              label == 0 ? c < kChannels / 2 : c >= kChannels / 2;
          for (int64_t t = 0; t < window_length; ++t) {
            float value = background.Next();
            if (drifting && t >= onset) {
              value -= drift * static_cast<float>(t - onset) /
                       static_cast<float>(window_length - onset);
            }
            window[t * kChannels + c] = value;
          }
        }
      });
}

// ---- Suites ----------------------------------------------------------------------

std::vector<ForecastingBenchDataset> StandardForecastingSuite(
    double length_scale, Rng& rng) {
  auto scaled = [length_scale](int64_t n) {
    return std::max<int64_t>(256, static_cast<int64_t>(n * length_scale));
  };
  std::vector<ForecastingBenchDataset> suite;
  // Horizons follow the paper's ratios, scaled to the synthetic lengths:
  // {24, 48, 168, 336, 720} for hourly-like and {24, 48, 96, 288, 672} for
  // minute-like data, compressed to keep CPU runs tractable.
  const std::vector<int64_t> hourly = {6, 12, 24, 36, 48};
  const std::vector<int64_t> minute = {6, 12, 24, 48, 72};
  suite.push_back(
      {"ETTh1", MakeEttLike(scaled(4096), /*period=*/24, /*variant=*/1, rng),
       6, hourly});
  suite.push_back(
      {"ETTh2", MakeEttLike(scaled(4096), /*period=*/24, /*variant=*/2, rng),
       6, hourly});
  suite.push_back(
      {"ETTm1", MakeEttLike(scaled(6144), /*period=*/48, /*variant=*/1, rng),
       6, minute});
  suite.push_back(
      {"ETTm2", MakeEttLike(scaled(6144), /*period=*/48, /*variant=*/2, rng),
       6, minute});
  suite.push_back({"Exchange", MakeExchangeLike(scaled(4096), rng),
                   /*target=*/7, hourly});
  suite.push_back({"Weather", MakeWeatherLike(scaled(4096), rng),
                   /*target=*/20, hourly});
  return suite;
}

std::vector<ClassificationBenchDataset> StandardClassificationSuite(
    double sample_scale, Rng& rng) {
  auto scaled = [sample_scale](int64_t n) {
    return std::max<int64_t>(40, static_cast<int64_t>(n * sample_scale));
  };
  std::vector<ClassificationBenchDataset> suite;
  suite.push_back({"FingerMovements",
                   MakeFingerMovementsLike(scaled(416), /*window=*/32, rng)});
  suite.push_back({"PenDigits", MakePenDigitsLike(scaled(1200), rng)});
  suite.push_back({"HAR", MakeHarLike(scaled(1200), /*window=*/64, rng)});
  suite.push_back(
      {"Epilepsy", MakeEpilepsyLike(scaled(1200), /*window=*/96, rng)});
  suite.push_back({"WISDM", MakeWisdmLike(scaled(800), /*window=*/96, rng)});
  return suite;
}

}  // namespace timedrl::data
