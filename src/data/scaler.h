// Per-channel standardization fit on training data.

#ifndef TIMEDRL_DATA_SCALER_H_
#define TIMEDRL_DATA_SCALER_H_

#include <vector>

#include "data/time_series.h"

namespace timedrl::data {

/// z-score scaler: fit per-channel mean/std on the training split, apply to
/// all splits, invert for reporting in original units.
class StandardScaler {
 public:
  StandardScaler() = default;

  /// Computes per-channel statistics from `series`.
  void Fit(const TimeSeries& series);

  /// (x - mean) / std per channel. Requires Fit().
  TimeSeries Transform(const TimeSeries& series) const;

  /// x * std + mean per channel. Requires Fit().
  TimeSeries InverseTransform(const TimeSeries& series) const;

  bool fitted() const { return !mean_.empty(); }
  const std::vector<float>& mean() const { return mean_; }
  const std::vector<float>& std_dev() const { return std_; }

 private:
  std::vector<float> mean_;
  std::vector<float> std_;
};

}  // namespace timedrl::data

#endif  // TIMEDRL_DATA_SCALER_H_
