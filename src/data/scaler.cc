#include "data/scaler.h"

#include <cmath>

#include "util/check.h"

namespace timedrl::data {

void StandardScaler::Fit(const TimeSeries& series) {
  const int64_t n = series.length();
  const int64_t channels = series.channels;
  TIMEDRL_CHECK_GT(n, 1) << "scaler needs at least 2 rows";
  mean_.assign(channels, 0.0f);
  std_.assign(channels, 0.0f);
  for (int64_t t = 0; t < n; ++t) {
    for (int64_t c = 0; c < channels; ++c) mean_[c] += series.at(t, c);
  }
  for (int64_t c = 0; c < channels; ++c) mean_[c] /= static_cast<float>(n);
  for (int64_t t = 0; t < n; ++t) {
    for (int64_t c = 0; c < channels; ++c) {
      const float d = series.at(t, c) - mean_[c];
      std_[c] += d * d;
    }
  }
  for (int64_t c = 0; c < channels; ++c) {
    std_[c] = std::sqrt(std_[c] / static_cast<float>(n));
    if (std_[c] < 1e-8f) std_[c] = 1.0f;  // constant channel: pass through
  }
}

TimeSeries StandardScaler::Transform(const TimeSeries& series) const {
  TIMEDRL_CHECK(fitted());
  TIMEDRL_CHECK_EQ(series.channels, static_cast<int64_t>(mean_.size()));
  TimeSeries out = series;
  for (int64_t t = 0; t < out.length(); ++t) {
    for (int64_t c = 0; c < out.channels; ++c) {
      out.at(t, c) = (out.at(t, c) - mean_[c]) / std_[c];
    }
  }
  return out;
}

TimeSeries StandardScaler::InverseTransform(const TimeSeries& series) const {
  TIMEDRL_CHECK(fitted());
  TIMEDRL_CHECK_EQ(series.channels, static_cast<int64_t>(mean_.size()));
  TimeSeries out = series;
  for (int64_t t = 0; t < out.length(); ++t) {
    for (int64_t c = 0; c < out.channels; ++c) {
      out.at(t, c) = out.at(t, c) * std_[c] + mean_[c];
    }
  }
  return out;
}

}  // namespace timedrl::data
