#include "data/loader.h"

#include <algorithm>

#include "tensor/buffer_pool.h"
#include "util/check.h"

namespace timedrl::data {

std::vector<float> AcquireBatchStorage(int64_t numel) {
  return pool::AcquireUninit(numel);
}

BatchIterator::BatchIterator(int64_t dataset_size, int64_t batch_size,
                             bool shuffle, Rng& rng, bool drop_last)
    : dataset_size_(dataset_size),
      batch_size_(batch_size),
      shuffle_(shuffle),
      drop_last_(drop_last),
      rng_(rng.Fork()) {
  TIMEDRL_CHECK_GE(dataset_size, 0);
  TIMEDRL_CHECK_GT(batch_size, 0);
  order_.resize(dataset_size);
  for (int64_t i = 0; i < dataset_size; ++i) order_[i] = i;
  Reset();
}

void BatchIterator::Reset() {
  cursor_ = 0;
  if (shuffle_) {
    // Shuffle from the identity permutation so the epoch's order is a pure
    // function of the RNG state. An in-place shuffle would also depend on
    // the previous epoch's order — state a checkpoint does not carry — and
    // break bitwise resume determinism.
    for (int64_t i = 0; i < dataset_size_; ++i) order_[i] = i;
    rng_.Shuffle(order_);
  }
}

bool BatchIterator::Next(std::vector<int64_t>* batch) {
  batch->clear();
  if (cursor_ >= dataset_size_) return false;
  const int64_t remaining = dataset_size_ - cursor_;
  const int64_t take = std::min(batch_size_, remaining);
  if (drop_last_ && take < batch_size_) return false;
  batch->assign(order_.begin() + cursor_, order_.begin() + cursor_ + take);
  cursor_ += take;
  return true;
}

int64_t BatchIterator::NumBatches() const {
  if (drop_last_) return dataset_size_ / batch_size_;
  return (dataset_size_ + batch_size_ - 1) / batch_size_;
}

}  // namespace timedrl::data
