#include "data/loader.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/buffer_pool.h"
#include "util/check.h"
#include "util/env.h"

namespace timedrl::data {
namespace {

// Prefetch instrumentation. The histograms are fed unconditionally (unlike
// the trace-gated op timers): a couple of clock reads per *batch* is noise
// next to assembly itself, and the bench/tests read them with tracing off.
obs::Counter& BatchesCounter() {
  static obs::Counter& counter =
      obs::Registry::Global().GetCounter("prefetch.batches");
  return counter;
}

obs::Histogram& AssembleHistogram() {
  static obs::Histogram& histogram =
      obs::Registry::Global().GetHistogram("prefetch.assemble_ns");
  return histogram;
}

obs::Histogram& QueueWaitHistogram() {
  static obs::Histogram& histogram =
      obs::Registry::Global().GetHistogram("prefetch.queue_wait_ns");
  return histogram;
}

}  // namespace

std::vector<float> AcquireBatchStorage(int64_t numel) {
  return pool::AcquireUninit(numel);
}

DataLoader::DataLoader(const BatchSource& source,
                       const DataLoaderOptions& options, Rng& rng)
    : source_(&source),
      options_(options),
      dataset_size_(source.size()),
      // Fork order (shuffle, then augment) is part of the determinism
      // contract: it matches the draws the pre-loader code made, so seeds
      // reproduce historical runs.
      shuffle_rng_(rng.Fork()),
      augment_rng_(rng.Fork()) {
  TIMEDRL_CHECK_GE(dataset_size_, 0);
  TIMEDRL_CHECK_GT(options_.batch_size, 0);
  limit_ = options_.drop_last
               ? (dataset_size_ / options_.batch_size) * options_.batch_size
               : dataset_size_;
  depth_ = options_.prefetch_depth >= 0
               ? options_.prefetch_depth
               : util::Env::GetInt("TIMEDRL_PREFETCH_DEPTH", 2,
                                   /*min_value=*/0, /*max_value=*/1024);
  obs::Registry::Global().GetGauge("prefetch.depth").Set(
      static_cast<double>(depth_));
  order_.resize(dataset_size_);
  for (int64_t i = 0; i < dataset_size_; ++i) order_[i] = i;
  Reset();
  if (depth_ > 0 && limit_ > 0) {
    producer_ = std::thread([this] { ProducerLoop(); });
  }
}

DataLoader::~DataLoader() {
  if (producer_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      shutdown_ = true;
      ++generation_;
    }
    producer_wake_.notify_all();
    producer_.join();
  }
}

void DataLoader::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  CancelLocked();
  if (options_.shuffle) {
    // Shuffle from the identity permutation so the epoch's order is a pure
    // function of the RNG state. An in-place shuffle would also depend on
    // the previous epoch's order — state a checkpoint does not carry — and
    // break bitwise resume determinism.
    for (int64_t i = 0; i < dataset_size_; ++i) order_[i] = i;
    shuffle_rng_.Shuffle(order_);
  }
}

void DataLoader::CancelLocked() {
  ++generation_;
  started_ = false;
  cursor_ = 0;
  // Drain queued batches into the spare pool: an abandoned epoch (anomaly
  // rollback, early destruction) must not leak its prefetched storage.
  while (!queue_.empty()) {
    spare_.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
}

bool DataLoader::TakeClaimLocked(Claim* claim) {
  if (cursor_ >= limit_) return false;
  const int64_t take = std::min(options_.batch_size, limit_ - cursor_);
  if (!spare_.empty()) {
    claim->shell = std::move(spare_.back());
    spare_.pop_back();
  }
  claim->shell.indices.assign(order_.begin() + cursor_,
                              order_.begin() + cursor_ + take);
  cursor_ += take;
  if (options_.augmentation != augment::Kind::kNone) {
    // Pre-fork the per-batch augmentation sub-stream here, in batch order,
    // under the lock — the only place the augment stream advances. Assembly
    // (possibly concurrent, possibly out of order relative to consumption)
    // then draws from the private sub-stream, so depth and thread timing
    // cannot change any draw.
    claim->augment = augment_rng_.Fork();
    claim->has_augment = true;
  }
  claim->generation = generation_;
  return true;
}

void DataLoader::Assemble(Claim* claim) const {
  TIMEDRL_TRACE_SCOPE_CAT("data/prefetch", "data");
  const int64_t start_ns = obs::TraceNowNs();
  // Batch tensors are plain leaves: no autograd graph, bitwise-identical
  // forward, and trivially destructible on whichever thread drops them.
  NoGradGuard guard;
  Batch& shell = claim->shell;
  // Release the recycled shell's previous tensors first: their buffers land
  // in this thread's pool cache and the refill below re-acquires the same
  // geometry without touching the global pool.
  shell.x = Tensor();
  shell.y = Tensor();
  shell.view1 = Tensor();
  shell.view2 = Tensor();
  shell.has_views = false;
  shell.labels.clear();
  source_->Fill(shell.indices, &shell);
  if (claim->has_augment) {
    // Two independent draws from the batch's private sub-stream — the
    // Table VI ablation contract (each view is its own transformation).
    shell.view1 = augment::Apply(options_.augmentation, shell.x,
                                 options_.augment_config, claim->augment);
    shell.view2 = augment::Apply(options_.augmentation, shell.x,
                                 options_.augment_config, claim->augment);
    shell.has_views = true;
  }
  AssembleHistogram().Observe(
      static_cast<double>(obs::TraceNowNs() - start_ns));
  BatchesCounter().Increment();
}

void DataLoader::RecycleLocked(Batch* batch) {
  spare_.push_back(std::move(*batch));
  *batch = Batch();
  // Callers that hand in a fresh Batch every epoch would otherwise grow the
  // pool without bound; past the circulating set, old shells can go.
  const size_t cap = static_cast<size_t>(depth_) + 2;
  if (spare_.size() > cap) spare_.erase(spare_.begin());
}

bool DataLoader::Next(Batch* out) {
  if (depth_ == 0) {
    // Synchronous fallback: the same claim + assemble path, inline.
    Claim claim;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      RecycleLocked(out);
      if (!TakeClaimLocked(&claim)) return false;
    }
    Assemble(&claim);
    *out = std::move(claim.shell);
    return true;
  }

  std::unique_lock<std::mutex> lock(mutex_);
  RecycleLocked(out);
  if (!started_ && cursor_ < limit_) {
    started_ = true;
    producer_wake_.notify_one();
  }
  const uint64_t gen = generation_;
  const int64_t wait_start_ns = obs::TraceNowNs();
  consumer_wake_.wait(lock, [&] {
    return generation_ != gen || !queue_.empty() ||
           (cursor_ >= limit_ && in_flight_ == 0);
  });
  QueueWaitHistogram().Observe(
      static_cast<double>(obs::TraceNowNs() - wait_start_ns));
  if (generation_ != gen || queue_.empty()) return false;
  *out = std::move(queue_.front());
  queue_.pop_front();
  producer_wake_.notify_one();
  return true;
}

void DataLoader::ProducerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    producer_wake_.wait(lock, [&] {
      return shutdown_ ||
             (started_ && cursor_ < limit_ &&
              static_cast<int64_t>(queue_.size()) + in_flight_ < depth_);
    });
    if (shutdown_) return;
    Claim claim;
    TakeClaimLocked(&claim);
    ++in_flight_;
    lock.unlock();
    Assemble(&claim);
    lock.lock();
    --in_flight_;
    if (claim.generation == generation_ && !shutdown_) {
      queue_.push_back(std::move(claim.shell));
    } else {
      // Stale result from a cancelled epoch: keep the storage, drop the
      // batch. The consumer may be waiting on the epoch-done predicate.
      spare_.push_back(std::move(claim.shell));
    }
    consumer_wake_.notify_one();
  }
}

int64_t DataLoader::NumBatches() const {
  if (options_.drop_last) return dataset_size_ / options_.batch_size;
  return (dataset_size_ + options_.batch_size - 1) / options_.batch_size;
}

DataLoader::State DataLoader::CaptureState() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {shuffle_rng_.Serialize(), augment_rng_.Serialize()};
}

bool DataLoader::RestoreState(const State& state) {
  Rng shuffle;
  Rng augment;
  if (!shuffle.Deserialize(state.shuffle_rng)) return false;
  if (!augment.Deserialize(state.augment_rng)) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  CancelLocked();
  shuffle_rng_ = shuffle;
  augment_rng_ = augment;
  return true;
}

}  // namespace timedrl::data
