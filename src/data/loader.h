// The data pipeline: batch sources, assembled batches, and a prefetching
// DataLoader that overlaps batch assembly with compute.
//
// A BatchSource materializes the payload for one index set; the DataLoader
// owns iteration order (optional shuffling), optional raw-input
// augmentation, and — when TIMEDRL_PREFETCH_DEPTH > 0 — a background
// producer thread that assembles up to `depth` batches ahead into a bounded
// queue while the training loop runs forward/backward on the previous one.
//
// Determinism contract (see DESIGN.md §14): every random draw the loader
// makes is a pure function of its two private RNG streams, independent of
// prefetch depth and thread timing. The shuffle stream is consumed only by
// Reset() on the calling thread; the augmentation stream is consumed only
// by forking one sub-stream per batch, in batch order, under the loader
// lock at claim time — the fork happens before assembly runs, so a producer
// racing ahead cannot reorder draws. Depth 0 runs the exact same claim +
// assemble code inline, which is why prefetch-on and prefetch-off runs are
// bitwise identical.
//
// Checkpoint/resume: CaptureState()/RestoreState() serialize the two
// streams. Capture at a quiescent point (after construction, or after
// Next() returned false); restoring cancels any in-flight production and
// rewinds both streams, and the following Reset() replays the captured
// run's order exactly.

#ifndef TIMEDRL_DATA_LOADER_H_
#define TIMEDRL_DATA_LOADER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "augment/augment.h"
#include "data/time_series.h"
#include "data/windows.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace timedrl::data {

/// Recycled storage for a batch tensor: a buffer of exactly `numel` floats
/// (contents unspecified — fill every element) drawn from the tensor buffer
/// pool. Hand the filled buffer to Tensor::FromVector; when the batch
/// tensor dies at the end of the step, the buffer returns to the pool, so a
/// steady-state epoch reuses one buffer per batch geometry instead of
/// allocating fresh storage every iteration.
std::vector<float> AcquireBatchStorage(int64_t numel);

/// One assembled minibatch. Which fields are populated depends on the
/// source (targets, labels) and the loader options (views).
struct Batch {
  /// Dataset indices this batch covers, in iteration order.
  std::vector<int64_t> indices;
  /// Inputs, [B, T, C] (after any source-side transform).
  Tensor x;
  /// Forecasting targets [B, H, C]; undefined for label/unlabeled sources.
  Tensor y;
  /// Classification labels; empty for other sources.
  std::vector<int64_t> labels;
  /// Two independently augmented views of `x` when the loader's
  /// augmentation is not kNone (the Table VI ablation path).
  Tensor view1;
  Tensor view2;
  bool has_views = false;

  int64_t size() const { return static_cast<int64_t>(indices.size()); }
};

/// A dataset the DataLoader can draw from: a size and a payload filler.
/// Fill() must be const-thread-safe — with prefetching it runs on the
/// producer thread while the training loop owns the previous batch — and
/// must populate the payload fields only (the loader manages `indices`,
/// views, and storage recycling).
class BatchSource {
 public:
  virtual ~BatchSource() = default;
  virtual int64_t size() const = 0;
  virtual void Fill(const std::vector<int64_t>& indices, Batch* batch) const = 0;
};

/// Forecasting windows as (x, y) batches.
class ForecastingBatchSource : public BatchSource {
 public:
  explicit ForecastingBatchSource(const ForecastingWindows* windows)
      : windows_(windows) {}

  int64_t size() const override { return windows_->size(); }

  void Fill(const std::vector<int64_t>& indices, Batch* batch) const override {
    auto [x, y] = windows_->GetBatch(indices);
    batch->x = x;
    batch->y = y;
  }

 private:
  const ForecastingWindows* windows_;
};

/// Labeled classification windows as (x, labels) batches.
class ClassificationBatchSource : public BatchSource {
 public:
  explicit ClassificationBatchSource(const ClassificationDataset* dataset)
      : dataset_(dataset) {}

  int64_t size() const override { return dataset_->size(); }

  void Fill(const std::vector<int64_t>& indices, Batch* batch) const override {
    auto [x, labels] = dataset_->GetBatch(indices);
    batch->x = x;
    batch->labels = std::move(labels);
  }

 private:
  const ClassificationDataset* dataset_;
};

struct DataLoaderOptions {
  int64_t batch_size = 32;
  /// Re-randomize iteration order at each Reset().
  bool shuffle = false;
  /// Drop the final short batch instead of yielding it.
  bool drop_last = false;
  /// Batches assembled ahead of the consumer. 0 = synchronous (no producer
  /// thread); < 0 = read TIMEDRL_PREFETCH_DEPTH (default 2).
  int64_t prefetch_depth = -1;
  /// Raw-input augmentation producing batch.view1/view2. kNone (the
  /// TimeDRL default) leaves the views undefined.
  augment::Kind augmentation = augment::Kind::kNone;
  augment::AugmentConfig augment_config;
};

/// Prefetching batch pipeline over a BatchSource. Single-consumer: Next()
/// and Reset() must be called from one thread at a time.
class DataLoader {
 public:
  /// Serialized shuffle + augmentation streams for checkpointing.
  struct State {
    std::string shuffle_rng;
    std::string augment_rng;
  };

  /// Forks the loader's two private streams from `rng` (shuffle first, then
  /// augmentation) and runs an initial Reset(). `source` is borrowed and
  /// must outlive the loader.
  DataLoader(const BatchSource& source, const DataLoaderOptions& options,
             Rng& rng);
  ~DataLoader();

  DataLoader(const DataLoader&) = delete;
  DataLoader& operator=(const DataLoader&) = delete;

  /// Starts a new epoch: cancels any in-flight production and reshuffles
  /// (when enabled) from the identity permutation, so the epoch's order is
  /// a pure function of the shuffle stream's state.
  void Reset();

  /// Produces the next batch; false at epoch end (`out` is left empty).
  /// The first call after Reset() starts background production.
  bool Next(Batch* out);

  /// Batches per epoch.
  int64_t NumBatches() const;

  /// Resolved prefetch depth (0 = synchronous).
  int64_t prefetch_depth() const { return depth_; }

  /// Snapshot of the shuffle + augmentation streams. Call at a quiescent
  /// point: after construction, or after Next() returned false — between
  /// those, prefetched claims may already have advanced the augment stream.
  State CaptureState() const;

  /// Rewinds both streams to a captured snapshot, cancelling in-flight
  /// production. False (and no state change) if either stream text is
  /// malformed. Call Reset() afterwards to start iterating.
  bool RestoreState(const State& state);

 private:
  /// A unit of work handed to assembly: the recycled batch shell (indices
  /// already filled) plus the pre-forked augmentation sub-stream.
  struct Claim {
    Batch shell;
    Rng augment;
    bool has_augment = false;
    uint64_t generation = 0;
  };

  bool TakeClaimLocked(Claim* claim);
  void Assemble(Claim* claim) const;
  void RecycleLocked(Batch* batch);
  void CancelLocked();
  void ProducerLoop();

  const BatchSource* source_;
  DataLoaderOptions options_;
  int64_t dataset_size_;
  /// Index count iterated per epoch (excludes a dropped tail).
  int64_t limit_;
  int64_t depth_;
  Rng shuffle_rng_;
  Rng augment_rng_;

  mutable std::mutex mutex_;
  std::condition_variable producer_wake_;
  std::condition_variable consumer_wake_;
  std::vector<int64_t> order_;
  int64_t cursor_ = 0;
  /// Bumped by Reset()/RestoreState()/shutdown; a producer finishing an
  /// assembly from an older generation recycles it instead of queueing it.
  uint64_t generation_ = 0;
  /// Production starts lazily at the first Next() after a Reset(), so a
  /// freshly constructed (or restored) loader is quiescent by construction.
  bool started_ = false;
  bool shutdown_ = false;
  /// Claims taken but not yet queued or discarded.
  int64_t in_flight_ = 0;
  std::deque<Batch> queue_;
  /// Consumed batch shells cycling back to assembly. Reusing a shell on the
  /// producer thread returns its tensor buffers to that thread's pool cache
  /// immediately before the refill acquires the same geometry — the
  /// double-buffering that keeps steady-state epochs at zero allocations.
  std::vector<Batch> spare_;
  std::thread producer_;
};

}  // namespace timedrl::data

#endif  // TIMEDRL_DATA_LOADER_H_
