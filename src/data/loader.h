// Minibatch index iteration with optional shuffling, plus recycled storage
// for assembling batch tensors.

#ifndef TIMEDRL_DATA_LOADER_H_
#define TIMEDRL_DATA_LOADER_H_

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace timedrl::data {

/// Recycled storage for a batch tensor: a buffer of exactly `numel` floats
/// (contents unspecified — fill every element) drawn from the tensor buffer
/// pool. Hand the filled buffer to Tensor::FromVector; when the batch
/// tensor dies at the end of the step, the buffer returns to the pool, so a
/// steady-state epoch reuses one buffer per batch geometry instead of
/// allocating fresh storage every iteration.
std::vector<float> AcquireBatchStorage(int64_t numel);

/// Yields index batches over [0, dataset_size). With `shuffle`, the order is
/// re-randomized by each Reset(). The final short batch is kept unless
/// `drop_last` is set.
class BatchIterator {
 public:
  BatchIterator(int64_t dataset_size, int64_t batch_size, bool shuffle,
                Rng& rng, bool drop_last = false);

  /// Starts a new epoch (reshuffles when enabled).
  void Reset();

  /// Fills `batch` with the next index set; false at epoch end.
  bool Next(std::vector<int64_t>* batch);

  /// Batches per epoch.
  int64_t NumBatches() const;

  /// The iterator's private shuffle stream (a fork of the constructor's
  /// rng). Exposed so checkpoints can capture and restore it — resuming a
  /// run must replay the exact shuffle order of the uninterrupted run.
  Rng& rng() { return rng_; }

 private:
  int64_t dataset_size_;
  int64_t batch_size_;
  bool shuffle_;
  bool drop_last_;
  Rng rng_;
  std::vector<int64_t> order_;
  int64_t cursor_ = 0;
};

}  // namespace timedrl::data

#endif  // TIMEDRL_DATA_LOADER_H_
