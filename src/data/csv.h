// CSV persistence for time-series (used by examples and round-trip tests).

#ifndef TIMEDRL_DATA_CSV_H_
#define TIMEDRL_DATA_CSV_H_

#include <string>
#include <vector>

#include "data/time_series.h"

namespace timedrl::data {

/// Writes `series` as CSV with one row per timestep. `header` (optional)
/// provides column names; defaults to c0, c1, ...
bool SaveCsv(const TimeSeries& series, const std::string& path,
             const std::vector<std::string>& header = {});

/// Reads a CSV written by SaveCsv (or any numeric CSV with a header row).
/// Returns false on I/O or parse failure.
bool LoadCsv(const std::string& path, TimeSeries* series,
             std::vector<std::string>* header = nullptr);

}  // namespace timedrl::data

#endif  // TIMEDRL_DATA_CSV_H_
