// CSV persistence for time-series (used by examples and round-trip tests).
//
// Loading is hardened: every failure mode maps to a distinct StatusCode
// with a 1-based row/column location (row 1 is the header line), so callers
// and tests can tell an unreadable file from a ragged row from a bad cell.
// Non-finite cells (nan/inf) are governed by an explicit policy instead of
// silently flowing into training.

#ifndef TIMEDRL_DATA_CSV_H_
#define TIMEDRL_DATA_CSV_H_

#include <string>
#include <vector>

#include "data/time_series.h"
#include "util/status.h"

namespace timedrl::data {

/// What LoadCsv does with a cell that parses as NaN or ±Inf.
enum class NonFinitePolicy {
  /// Fail with kNonFiniteCell and the cell's row/column (default).
  kReject,
  /// Discard the whole row containing the cell.
  kDropRow,
  /// Replace the cell with the last kept value of the same column
  /// (0 when the column has no earlier value).
  kForwardFill,
};

struct CsvReadOptions {
  NonFinitePolicy non_finite = NonFinitePolicy::kReject;
};

/// Writes `series` as CSV with one row per timestep. `header` (optional)
/// provides column names; defaults to c0, c1, ...
Status SaveCsv(const TimeSeries& series, const std::string& path,
               const std::vector<std::string>& header = {});

/// Reads a CSV written by SaveCsv (or any numeric CSV with a header row).
///
/// Error taxonomy: kIoError (unreadable file), kEmptyFile (no header line),
/// kNoData (header but no data rows, including when every row was dropped
/// by NonFinitePolicy::kDropRow), kRaggedRow (row with the wrong cell
/// count), kParseError (non-numeric cell), kNonFiniteCell (nan/inf under
/// NonFinitePolicy::kReject). Location-carrying codes set row() and col().
Status LoadCsv(const std::string& path, TimeSeries* series,
               std::vector<std::string>* header = nullptr,
               const CsvReadOptions& options = {});

}  // namespace timedrl::data

#endif  // TIMEDRL_DATA_CSV_H_
