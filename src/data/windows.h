// Sliding-window sampling for forecasting.

#ifndef TIMEDRL_DATA_WINDOWS_H_
#define TIMEDRL_DATA_WINDOWS_H_

#include <utility>
#include <vector>

#include "data/time_series.h"
#include "tensor/tensor.h"

namespace timedrl::data {

/// Enumerates (input window, future horizon) pairs over a series.
///
/// Sample i covers input rows [i*stride, i*stride + input_length) and target
/// rows [i*stride + input_length, ... + horizon).
class ForecastingWindows {
 public:
  ForecastingWindows(const TimeSeries& series, int64_t input_length,
                     int64_t horizon, int64_t stride = 1);

  /// Number of available samples.
  int64_t size() const { return count_; }
  int64_t input_length() const { return input_length_; }
  int64_t horizon() const { return horizon_; }
  int64_t channels() const { return series_.channels; }

  /// Materializes x: [B, input_length, C] and y: [B, horizon, C].
  std::pair<Tensor, Tensor> GetBatch(
      const std::vector<int64_t>& indices) const;

  /// Materializes only the inputs (for self-supervised pre-training).
  Tensor GetInputs(const std::vector<int64_t>& indices) const;

 private:
  TimeSeries series_;
  int64_t input_length_;
  int64_t horizon_;
  int64_t stride_;
  int64_t count_;
};

}  // namespace timedrl::data

#endif  // TIMEDRL_DATA_WINDOWS_H_
