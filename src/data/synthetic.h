// Synthetic stand-ins for the paper's benchmark datasets.
//
// The real CSVs (ETT, Exchange, Weather, HAR, WISDM, Epilepsy, PenDigits,
// FingerMovements) are not available offline; each generator below matches
// its dataset's channel count, class count and the statistical structure the
// evaluated methods exploit (see DESIGN.md §3). All generators are seeded and
// deterministic.

#ifndef TIMEDRL_DATA_SYNTHETIC_H_
#define TIMEDRL_DATA_SYNTHETIC_H_

#include <string>
#include <vector>

#include "data/time_series.h"
#include "util/rng.h"

namespace timedrl::data {

// ---- Forecasting (Table I analogues) ------------------------------------------

/// ETT-like electricity-transformer series: 6 load channels with daily +
/// weekly seasonality, slow trend and AR(1) noise, plus an oil-temperature
/// target channel driven by lagged loads. `period` controls the dominant
/// cycle length (24 for the hourly flavor, 96 for the 15-minute flavor);
/// `variant` varies phases/couplings (ETTx1 vs ETTx2).
TimeSeries MakeEttLike(int64_t length, int64_t period, int variant, Rng& rng);

/// Exchange-like: 8 correlated near-random-walk channels with tiny drift.
TimeSeries MakeExchangeLike(int64_t length, Rng& rng);

/// Weather-like: 21 channels coupled to 3 latent seasonal factors with
/// regime-switching heteroscedastic noise.
TimeSeries MakeWeatherLike(int64_t length, Rng& rng);

// ---- Classification (Table II analogues) ----------------------------------------

/// HAR-like: 9 IMU channels, 6 activity classes distinguished by
/// oscillation frequency/amplitude signatures.
ClassificationDataset MakeHarLike(int64_t samples, int64_t window_length,
                                  Rng& rng);

/// WISDM-like: 3 accelerometer channels, 6 classes, noisier than HAR.
ClassificationDataset MakeWisdmLike(int64_t samples, int64_t window_length,
                                    Rng& rng);

/// Epilepsy-like: single EEG channel, 2 classes; positives carry
/// spike-wave bursts on top of colored background noise.
ClassificationDataset MakeEpilepsyLike(int64_t samples, int64_t window_length,
                                       Rng& rng);

/// PenDigits-like: 2 channels (x, y pen coordinates), 10 classes, 8 points
/// per sample tracing digit-specific strokes.
ClassificationDataset MakePenDigitsLike(int64_t samples, Rng& rng);

/// FingerMovements-like: 28 EEG channels, 2 classes; the class signal is a
/// weak lateralized drift under heavy noise (intentionally hard, mirroring
/// the real dataset where most baselines sit near chance).
ClassificationDataset MakeFingerMovementsLike(int64_t samples,
                                              int64_t window_length, Rng& rng);

// ---- Benchmark suites ---------------------------------------------------------------

/// A named forecasting dataset plus the channel used for univariate runs
/// (the paper's "OT" / "Singapore" / "wet bulb" targets).
struct ForecastingBenchDataset {
  std::string name;
  TimeSeries series;
  int64_t target_channel = 0;
  /// Horizons to sweep for this dataset in Table III/IV runs.
  std::vector<int64_t> horizons;
};

/// The six forecasting datasets of Tables III/IV, with lengths scaled by
/// `length_scale` (1.0 = default bench size, smaller for tests).
std::vector<ForecastingBenchDataset> StandardForecastingSuite(
    double length_scale, Rng& rng);

/// A named classification dataset (Table V).
struct ClassificationBenchDataset {
  std::string name;
  ClassificationDataset dataset;
};

/// The five classification datasets of Table V, sample counts scaled by
/// `sample_scale`.
std::vector<ClassificationBenchDataset> StandardClassificationSuite(
    double sample_scale, Rng& rng);

}  // namespace timedrl::data

#endif  // TIMEDRL_DATA_SYNTHETIC_H_
