#include "data/time_series.h"

#include <algorithm>

#include "data/loader.h"
#include "util/check.h"

namespace timedrl::data {

TimeSeries TimeSeries::Range(int64_t start, int64_t len) const {
  TIMEDRL_CHECK(start >= 0 && len >= 0 && start + len <= length());
  TimeSeries out(len, channels);
  std::copy(values.begin() + start * channels,
            values.begin() + (start + len) * channels, out.values.begin());
  return out;
}

TimeSeries TimeSeries::Channel(int64_t c) const {
  TIMEDRL_CHECK(c >= 0 && c < channels);
  TimeSeries out(length(), 1);
  for (int64_t t = 0; t < length(); ++t) out.at(t, 0) = at(t, c);
  return out;
}

Tensor TimeSeries::ToTensor() const {
  return Tensor::FromVector({length(), channels}, values);
}

std::pair<Tensor, std::vector<int64_t>> ClassificationDataset::GetBatch(
    const std::vector<int64_t>& indices) const {
  const int64_t batch = static_cast<int64_t>(indices.size());
  const int64_t row_size = window_length * channels;
  std::vector<float> buffer = AcquireBatchStorage(batch * row_size);
  std::vector<int64_t> batch_labels;
  batch_labels.reserve(batch);
  int64_t row = 0;
  for (int64_t index : indices) {
    TIMEDRL_CHECK(index >= 0 && index < size());
    const std::vector<float>& window = windows[index];
    std::copy(window.begin(), window.end(), buffer.begin() + row * row_size);
    ++row;
    batch_labels.push_back(labels[index]);
  }
  return {Tensor::FromVector({batch, window_length, channels},
                             std::move(buffer)),
          std::move(batch_labels)};
}

ClassificationDataset ClassificationDataset::Subset(
    const std::vector<int64_t>& indices) const {
  ClassificationDataset out;
  out.window_length = window_length;
  out.channels = channels;
  out.num_classes = num_classes;
  for (int64_t index : indices) {
    TIMEDRL_CHECK(index >= 0 && index < size());
    out.windows.push_back(windows[index]);
    out.labels.push_back(labels[index]);
  }
  return out;
}

ForecastingSplits ChronologicalSplit(const TimeSeries& series,
                                     double train_fraction,
                                     double val_fraction) {
  TIMEDRL_CHECK(train_fraction > 0 && val_fraction >= 0 &&
                train_fraction + val_fraction < 1.0);
  const int64_t n = series.length();
  const int64_t train_len = static_cast<int64_t>(n * train_fraction);
  const int64_t val_len = static_cast<int64_t>(n * val_fraction);
  ForecastingSplits splits;
  splits.train = series.Range(0, train_len);
  splits.val = series.Range(train_len, val_len);
  splits.test = series.Range(train_len + val_len, n - train_len - val_len);
  return splits;
}

ClassificationSplits StratifiedSplit(const ClassificationDataset& dataset,
                                     double train_fraction, Rng& rng) {
  TIMEDRL_CHECK(train_fraction > 0 && train_fraction < 1.0);
  std::vector<std::vector<int64_t>> by_class(dataset.num_classes);
  for (int64_t i = 0; i < dataset.size(); ++i) {
    TIMEDRL_CHECK(dataset.labels[i] >= 0 &&
                  dataset.labels[i] < dataset.num_classes);
    by_class[dataset.labels[i]].push_back(i);
  }
  std::vector<int64_t> train_indices;
  std::vector<int64_t> test_indices;
  for (auto& members : by_class) {
    rng.Shuffle(members);
    const int64_t train_count =
        static_cast<int64_t>(members.size() * train_fraction);
    for (size_t j = 0; j < members.size(); ++j) {
      (static_cast<int64_t>(j) < train_count ? train_indices : test_indices)
          .push_back(members[j]);
    }
  }
  // Shuffle across classes so batches are not class-sorted.
  rng.Shuffle(train_indices);
  rng.Shuffle(test_indices);
  return {dataset.Subset(train_indices), dataset.Subset(test_indices)};
}

}  // namespace timedrl::data
