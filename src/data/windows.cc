#include "data/windows.h"

#include "util/check.h"

namespace timedrl::data {

ForecastingWindows::ForecastingWindows(const TimeSeries& series,
                                       int64_t input_length, int64_t horizon,
                                       int64_t stride)
    : series_(series),
      input_length_(input_length),
      horizon_(horizon),
      stride_(stride) {
  TIMEDRL_CHECK_GT(input_length, 0);
  TIMEDRL_CHECK_GE(horizon, 0);
  TIMEDRL_CHECK_GT(stride, 0);
  const int64_t usable = series.length() - input_length - horizon;
  count_ = usable >= 0 ? usable / stride + 1 : 0;
}

std::pair<Tensor, Tensor> ForecastingWindows::GetBatch(
    const std::vector<int64_t>& indices) const {
  TIMEDRL_CHECK_GT(horizon_, 0) << "dataset was built without a horizon";
  const int64_t batch = static_cast<int64_t>(indices.size());
  const int64_t channels = series_.channels;
  std::vector<float> x_buffer;
  x_buffer.reserve(batch * input_length_ * channels);
  std::vector<float> y_buffer;
  y_buffer.reserve(batch * horizon_ * channels);
  for (int64_t index : indices) {
    TIMEDRL_CHECK(index >= 0 && index < count_);
    const int64_t start = index * stride_;
    const float* base = series_.values.data() + start * channels;
    x_buffer.insert(x_buffer.end(), base, base + input_length_ * channels);
    const float* target = base + input_length_ * channels;
    y_buffer.insert(y_buffer.end(), target, target + horizon_ * channels);
  }
  return {Tensor::FromVector({batch, input_length_, channels},
                             std::move(x_buffer)),
          Tensor::FromVector({batch, horizon_, channels},
                             std::move(y_buffer))};
}

Tensor ForecastingWindows::GetInputs(
    const std::vector<int64_t>& indices) const {
  const int64_t batch = static_cast<int64_t>(indices.size());
  const int64_t channels = series_.channels;
  std::vector<float> buffer;
  buffer.reserve(batch * input_length_ * channels);
  for (int64_t index : indices) {
    TIMEDRL_CHECK(index >= 0 && index < count_);
    const float* base = series_.values.data() + index * stride_ * channels;
    buffer.insert(buffer.end(), base, base + input_length_ * channels);
  }
  return Tensor::FromVector({batch, input_length_, channels},
                            std::move(buffer));
}

}  // namespace timedrl::data
