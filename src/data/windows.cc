#include "data/windows.h"

#include <algorithm>

#include "data/loader.h"
#include "util/check.h"

namespace timedrl::data {

ForecastingWindows::ForecastingWindows(const TimeSeries& series,
                                       int64_t input_length, int64_t horizon,
                                       int64_t stride)
    : series_(series),
      input_length_(input_length),
      horizon_(horizon),
      stride_(stride) {
  TIMEDRL_CHECK_GT(input_length, 0);
  TIMEDRL_CHECK_GE(horizon, 0);
  TIMEDRL_CHECK_GT(stride, 0);
  const int64_t usable = series.length() - input_length - horizon;
  count_ = usable >= 0 ? usable / stride + 1 : 0;
}

std::pair<Tensor, Tensor> ForecastingWindows::GetBatch(
    const std::vector<int64_t>& indices) const {
  TIMEDRL_CHECK_GT(horizon_, 0) << "dataset was built without a horizon";
  const int64_t batch = static_cast<int64_t>(indices.size());
  const int64_t channels = series_.channels;
  const int64_t x_row = input_length_ * channels;
  const int64_t y_row = horizon_ * channels;
  std::vector<float> x_buffer = AcquireBatchStorage(batch * x_row);
  std::vector<float> y_buffer = AcquireBatchStorage(batch * y_row);
  int64_t row = 0;
  for (int64_t index : indices) {
    TIMEDRL_CHECK(index >= 0 && index < count_);
    const int64_t start = index * stride_;
    const float* base = series_.values.data() + start * channels;
    std::copy(base, base + x_row, x_buffer.begin() + row * x_row);
    std::copy(base + x_row, base + x_row + y_row,
              y_buffer.begin() + row * y_row);
    ++row;
  }
  return {Tensor::FromVector({batch, input_length_, channels},
                             std::move(x_buffer)),
          Tensor::FromVector({batch, horizon_, channels},
                             std::move(y_buffer))};
}

Tensor ForecastingWindows::GetInputs(
    const std::vector<int64_t>& indices) const {
  const int64_t batch = static_cast<int64_t>(indices.size());
  const int64_t channels = series_.channels;
  const int64_t row_size = input_length_ * channels;
  std::vector<float> buffer = AcquireBatchStorage(batch * row_size);
  int64_t row = 0;
  for (int64_t index : indices) {
    TIMEDRL_CHECK(index >= 0 && index < count_);
    const float* base = series_.values.data() + index * stride_ * channels;
    std::copy(base, base + row_size, buffer.begin() + row * row_size);
    ++row;
  }
  return Tensor::FromVector({batch, input_length_, channels},
                            std::move(buffer));
}

}  // namespace timedrl::data
