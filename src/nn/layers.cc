#include "nn/layers.h"

#include <cmath>

#include "nn/init.h"
#include "tensor/ops_fused.h"
#include "util/check.h"

namespace timedrl::nn {

// ---- Linear -----------------------------------------------------------------

Linear::Linear(int64_t in_features, int64_t out_features, Rng& rng, bool bias)
    : in_features_(in_features) {
  weight_ = RegisterParameter(
      "weight", KaimingUniform({in_features, out_features}, in_features, rng));
  if (bias) {
    bias_ = RegisterParameter(
        "bias", KaimingUniform({out_features}, in_features, rng));
  }
}

Tensor Linear::Forward(const Tensor& input) {
  TIMEDRL_CHECK_EQ(input.size(-1), in_features_)
      << "Linear expects last dim " << in_features_ << ", got "
      << ShapeToString(input.shape());
  Tensor out;
  if (input.dim() == 1) {
    out = MatMul(Reshape(input, {1, in_features_}), weight_);
    out = Reshape(out, {out.size(-1)});
  } else {
    out = MatMul(input, weight_);
  }
  if (bias_.defined()) out = out + bias_;
  return out;
}

// ---- Dropout ----------------------------------------------------------------

Dropout::Dropout(float p, Rng& rng) : p_(p), rng_(rng.Fork()) {
  TIMEDRL_CHECK(p >= 0.0f && p < 1.0f) << "dropout p=" << p;
}

Tensor Dropout::Forward(const Tensor& input) {
  // Eval mode is a true no-op: the input handle is returned unchanged — no
  // RNG draw, no copy — so repeated eval forwards are bitwise identical and
  // never perturb the layer's RNG stream.
  if (!training() || p_ == 0.0f) return input;
  const float scale = 1.0f / (1.0f - p_);
  std::vector<float> mask(input.numel());
  for (float& m : mask) m = rng_.Bernoulli(p_) ? 0.0f : scale;
  // Mask is a constant; multiplication routes gradients correctly.
  return input * Tensor::FromVector(input.shape(), std::move(mask));
}

// ---- LayerNorm ---------------------------------------------------------------

LayerNorm::LayerNorm(int64_t features, float eps)
    : features_(features), eps_(eps) {
  gamma_ = RegisterParameter("gamma",
                             Tensor::Ones({features}, /*requires_grad=*/true));
  beta_ = RegisterParameter("beta",
                            Tensor::Zeros({features}, /*requires_grad=*/true));
}

Tensor LayerNorm::Forward(const Tensor& input) {
  TIMEDRL_CHECK_EQ(input.size(-1), features_);
  // Single fused autograd node (Welford stats + normalize + affine); falls
  // back to the op composition under TIMEDRL_FUSION_DISABLE=1.
  return FusedLayerNorm(input, gamma_, beta_, eps_);
}

// ---- BatchNorm1d ----------------------------------------------------------------

BatchNorm1d::BatchNorm1d(int64_t features, float eps, float momentum)
    : features_(features), eps_(eps), momentum_(momentum) {
  gamma_ = RegisterParameter("gamma",
                             Tensor::Ones({features}, /*requires_grad=*/true));
  beta_ = RegisterParameter("beta",
                            Tensor::Zeros({features}, /*requires_grad=*/true));
  running_mean_ = Tensor::Zeros({features});
  running_var_ = Tensor::Ones({features});
}

Tensor BatchNorm1d::Forward(const Tensor& input) {
  TIMEDRL_CHECK_EQ(input.dim(), 2) << "BatchNorm1d expects [N, F]";
  TIMEDRL_CHECK_EQ(input.size(1), features_);
  if (training()) {
    const int64_t n = input.size(0);
    TIMEDRL_CHECK_GT(n, 1) << "BatchNorm1d training needs batch size > 1";
    Tensor mu = Mean(input, {0}, /*keepdim=*/true);
    Tensor centered = input - mu;
    Tensor var = Mean(centered * centered, {0}, /*keepdim=*/true);
    Tensor normalized = centered / Sqrt(var + eps_);

    // Update running statistics (EMA over detached batch stats, with the
    // unbiased variance correction PyTorch applies).
    {
      NoGradGuard guard;
      const float unbias = static_cast<float>(n) / static_cast<float>(n - 1);
      for (int64_t f = 0; f < features_; ++f) {
        float bm = mu.data()[f];
        float bv = var.data()[f] * unbias;
        if (!stats_initialized_) {
          running_mean_.data()[f] = bm;
          running_var_.data()[f] = bv;
        } else {
          running_mean_.data()[f] =
              (1.0f - momentum_) * running_mean_.data()[f] + momentum_ * bm;
          running_var_.data()[f] =
              (1.0f - momentum_) * running_var_.data()[f] + momentum_ * bv;
        }
      }
      stats_initialized_ = true;
    }
    return normalized * gamma_ + beta_;
  }
  Tensor normalized =
      (input - running_mean_) / Sqrt(running_var_ + eps_);
  return normalized * gamma_ + beta_;
}

// ---- LearnablePositionalEncoding ---------------------------------------------------

LearnablePositionalEncoding::LearnablePositionalEncoding(int64_t max_len,
                                                         int64_t dim, Rng& rng)
    : max_len_(max_len) {
  // Small-magnitude init, as in PatchTST's learnable positional embedding.
  table_ = RegisterParameter(
      "table", Tensor::Randn({max_len, dim}, rng, 0.0f, 0.02f,
                             /*requires_grad=*/true));
}

Tensor LearnablePositionalEncoding::Forward(const Tensor& input) {
  TIMEDRL_CHECK_EQ(input.dim(), 3) << "expects [B, T, D]";
  const int64_t seq_len = input.size(1);
  TIMEDRL_CHECK_LE(seq_len, max_len_)
      << "sequence length " << seq_len << " exceeds max_len " << max_len_;
  Tensor pe = Slice(table_, 0, 0, seq_len);  // [T, D] broadcasts over batch
  return input + pe;
}

}  // namespace timedrl::nn
