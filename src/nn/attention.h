// Multi-head self-attention.

#ifndef TIMEDRL_NN_ATTENTION_H_
#define TIMEDRL_NN_ATTENTION_H_

#include "nn/layers.h"
#include "nn/module.h"

namespace timedrl::nn {

/// Scaled dot-product multi-head self-attention over [B, T, D] sequences.
///
/// With `causal` set, position i attends only to positions <= i (the
/// "Transformer decoder" variant in the paper's backbone ablation).
class MultiHeadSelfAttention : public Module {
 public:
  MultiHeadSelfAttention(int64_t d_model, int64_t num_heads, float dropout,
                         Rng& rng, bool causal = false);

  Tensor Forward(const Tensor& input);

  int64_t num_heads() const { return num_heads_; }

 private:
  /// Upper-triangular [T, T] mask (1 above the diagonal), rebuilt only when
  /// the sequence length changes.
  const Tensor& CausalMask(int64_t seq_len);

  int64_t d_model_;
  int64_t num_heads_;
  int64_t head_dim_;
  bool causal_;
  Tensor causal_mask_;
  int64_t cached_mask_len_ = 0;
  Linear q_proj_;
  Linear k_proj_;
  Linear v_proj_;
  Linear out_proj_;
  Dropout attn_dropout_;
};

}  // namespace timedrl::nn

#endif  // TIMEDRL_NN_ATTENTION_H_
