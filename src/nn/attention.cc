#include "nn/attention.h"

#include <cmath>

#include "tensor/ops.h"
#include "tensor/ops_fused.h"
#include "util/check.h"

namespace timedrl::nn {

MultiHeadSelfAttention::MultiHeadSelfAttention(int64_t d_model,
                                               int64_t num_heads,
                                               float dropout, Rng& rng,
                                               bool causal)
    : d_model_(d_model),
      num_heads_(num_heads),
      head_dim_(d_model / num_heads),
      causal_(causal),
      q_proj_(d_model, d_model, rng),
      k_proj_(d_model, d_model, rng),
      v_proj_(d_model, d_model, rng),
      out_proj_(d_model, d_model, rng),
      attn_dropout_(dropout, rng) {
  TIMEDRL_CHECK_EQ(head_dim_ * num_heads, d_model)
      << "d_model must be divisible by num_heads";
  RegisterModule("q_proj", &q_proj_);
  RegisterModule("k_proj", &k_proj_);
  RegisterModule("v_proj", &v_proj_);
  RegisterModule("out_proj", &out_proj_);
  RegisterModule("attn_dropout", &attn_dropout_);
}

const Tensor& MultiHeadSelfAttention::CausalMask(int64_t seq_len) {
  if (cached_mask_len_ != seq_len) {
    std::vector<float> mask(seq_len * seq_len, 0.0f);
    for (int64_t i = 0; i < seq_len; ++i) {
      for (int64_t j = i + 1; j < seq_len; ++j) mask[i * seq_len + j] = 1.0f;
    }
    causal_mask_ = Tensor::FromVector({seq_len, seq_len}, std::move(mask));
    cached_mask_len_ = seq_len;
  }
  return causal_mask_;
}

Tensor MultiHeadSelfAttention::Forward(const Tensor& input) {
  TIMEDRL_CHECK_EQ(input.dim(), 3) << "attention expects [B, T, D]";
  TIMEDRL_CHECK_EQ(input.size(2), d_model_);
  const int64_t batch = input.size(0);
  const int64_t seq_len = input.size(1);

  auto split_heads = [&](const Tensor& t) {
    // [B, T, D] -> [B, H, T, head_dim]
    return Permute(Reshape(t, {batch, seq_len, num_heads_, head_dim_}),
                   {0, 2, 1, 3});
  };
  Tensor q = split_heads(q_proj_.Forward(input));
  Tensor k = split_heads(k_proj_.Forward(input));
  Tensor v = split_heads(v_proj_.Forward(input));

  // [B, H, T, T] raw scores; scale, causal mask, and softmax are one fused
  // autograd node (the attention epilogue).
  Tensor scores = MatMul(q, Transpose(k, -2, -1));
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  Tensor attn = attn_dropout_.Forward(FusedAttentionSoftmax(
      scores, scale, causal_ ? CausalMask(seq_len) : Tensor()));
  Tensor context = MatMul(attn, v);  // [B, H, T, head_dim]
  Tensor merged = Reshape(Permute(context, {0, 2, 1, 3}),
                          {batch, seq_len, d_model_});
  return out_proj_.Forward(merged);
}

}  // namespace timedrl::nn
