// Weight initialization schemes.

#ifndef TIMEDRL_NN_INIT_H_
#define TIMEDRL_NN_INIT_H_

#include "tensor/tensor.h"
#include "util/rng.h"

namespace timedrl::nn {

/// Kaiming/He uniform: U(-sqrt(1/fan_in), sqrt(1/fan_in)); the PyTorch
/// default for Linear and Conv layers.
Tensor KaimingUniform(const Shape& shape, int64_t fan_in, Rng& rng);

/// Xavier/Glorot uniform: U(-sqrt(6/(fan_in+fan_out)), +...).
Tensor XavierUniform(const Shape& shape, int64_t fan_in, int64_t fan_out,
                     Rng& rng);

}  // namespace timedrl::nn

#endif  // TIMEDRL_NN_INIT_H_
