// Interface for token-sequence backbones used by TimeDRL and baselines.

#ifndef TIMEDRL_NN_SEQUENCE_ENCODER_H_
#define TIMEDRL_NN_SEQUENCE_ENCODER_H_

#include "nn/module.h"
#include "tensor/tensor.h"

namespace timedrl::nn {

/// A shape-preserving sequence encoder: [B, T, D] -> [B, T, D].
///
/// All of the paper's backbone-ablation architectures (Transformer encoder /
/// decoder, ResNet, TCN, LSTM, Bi-LSTM) implement this interface so the
/// TimeDRL model can swap them freely.
class SequenceEncoder : public Module {
 public:
  virtual Tensor Encode(const Tensor& tokens) = 0;
};

}  // namespace timedrl::nn

#endif  // TIMEDRL_NN_SEQUENCE_ENCODER_H_
