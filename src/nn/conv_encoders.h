// Convolutional sequence backbones: a wrapped Conv1d layer, dilated-causal
// TCN blocks, and a norm-free 1-D ResNet.

#ifndef TIMEDRL_NN_CONV_ENCODERS_H_
#define TIMEDRL_NN_CONV_ENCODERS_H_

#include <memory>
#include <vector>

#include "nn/layers.h"
#include "nn/module.h"
#include "nn/sequence_encoder.h"

namespace timedrl::nn {

/// Conv1d with owned weights. Input [B, C_in, L] -> [B, C_out, L_out].
class Conv1dLayer : public Module {
 public:
  Conv1dLayer(int64_t in_channels, int64_t out_channels, int64_t kernel,
              Rng& rng, int64_t stride = 1, int64_t padding = 0,
              int64_t dilation = 1, bool bias = true);

  Tensor Forward(const Tensor& input);

  int64_t out_channels() const { return out_channels_; }

 private:
  int64_t out_channels_;
  int64_t stride_;
  int64_t padding_;
  int64_t dilation_;
  Tensor weight_;
  Tensor bias_;
};

/// Temporal convolutional network block (Bai et al. 2018): two dilated causal
/// convolutions with ReLU + dropout and a residual connection.
/// Shape-preserving on [B, C, L].
class TcnBlock : public Module {
 public:
  TcnBlock(int64_t in_channels, int64_t out_channels, int64_t kernel,
           int64_t dilation, float dropout, Rng& rng);

  Tensor Forward(const Tensor& input);

 private:
  /// Applies `conv` with left-only (causal) padding.
  Tensor CausalConv(Conv1dLayer& conv, const Tensor& input);

  int64_t kernel_;
  int64_t dilation_;
  Conv1dLayer conv1_;
  Conv1dLayer conv2_;
  std::unique_ptr<Conv1dLayer> residual_proj_;  // 1x1 when channels change
  Dropout dropout1_;
  Dropout dropout2_;
};

/// Shape-preserving TCN backbone: [B, T, D] -> [B, T, D], with exponentially
/// increasing dilation per block.
class TcnEncoder : public SequenceEncoder {
 public:
  TcnEncoder(int64_t d_model, int64_t num_blocks, int64_t kernel,
             float dropout, Rng& rng);

  Tensor Encode(const Tensor& tokens) override;

 private:
  std::vector<std::unique_ptr<TcnBlock>> blocks_;
};

/// Basic 1-D residual block: conv-ReLU-conv plus identity skip, then ReLU.
/// Norm-free (suits the tiny widths used here). Shape-preserving on [B, C, L].
class ResNetBlock1d : public Module {
 public:
  ResNetBlock1d(int64_t channels, int64_t kernel, Rng& rng);

  Tensor Forward(const Tensor& input);

 private:
  Conv1dLayer conv1_;
  Conv1dLayer conv2_;
};

/// Shape-preserving 1-D ResNet backbone: [B, T, D] -> [B, T, D].
class ResNetEncoder : public SequenceEncoder {
 public:
  ResNetEncoder(int64_t d_model, int64_t num_blocks, Rng& rng);

  Tensor Encode(const Tensor& tokens) override;

 private:
  std::vector<std::unique_ptr<ResNetBlock1d>> blocks_;
};

}  // namespace timedrl::nn

#endif  // TIMEDRL_NN_CONV_ENCODERS_H_
