// Transformer encoder stack (optionally causal, i.e. "decoder"-style).

#ifndef TIMEDRL_NN_TRANSFORMER_H_
#define TIMEDRL_NN_TRANSFORMER_H_

#include <memory>
#include <vector>

#include "nn/attention.h"
#include "nn/layers.h"
#include "nn/sequence_encoder.h"

namespace timedrl::nn {

/// One post-norm Transformer block: self-attention and a GELU feed-forward
/// network, each wrapped in residual + LayerNorm (as in torch.nn.
/// TransformerEncoderLayer with activation="gelu").
class TransformerBlock : public Module {
 public:
  TransformerBlock(int64_t d_model, int64_t num_heads, int64_t ff_dim,
                   float dropout, Rng& rng, bool causal = false);

  Tensor Forward(const Tensor& input);

 private:
  MultiHeadSelfAttention attention_;
  Linear ff1_;
  Linear ff2_;
  LayerNorm norm1_;
  LayerNorm norm2_;
  Dropout dropout1_;
  Dropout dropout2_;
  Dropout ff_dropout_;
};

/// Configuration for TransformerEncoder.
struct TransformerConfig {
  int64_t d_model = 64;
  int64_t num_heads = 4;
  int64_t ff_dim = 128;
  int64_t num_layers = 2;
  float dropout = 0.1f;
  /// When true every block uses masked (causal) self-attention; this is the
  /// "Transformer Decoder" variant of the paper's backbone ablation.
  bool causal = false;
};

/// A stack of TransformerBlocks; shape-preserving [B, T, D] -> [B, T, D].
class TransformerEncoder : public SequenceEncoder {
 public:
  TransformerEncoder(const TransformerConfig& config, Rng& rng);

  Tensor Encode(const Tensor& tokens) override;

  const TransformerConfig& config() const { return config_; }

 private:
  TransformerConfig config_;
  std::vector<std::unique_ptr<TransformerBlock>> blocks_;
};

}  // namespace timedrl::nn

#endif  // TIMEDRL_NN_TRANSFORMER_H_
