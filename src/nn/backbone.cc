#include "nn/backbone.h"

#include "nn/conv_encoders.h"
#include "nn/lstm.h"
#include "nn/transformer.h"
#include "util/check.h"

namespace timedrl::nn {

std::unique_ptr<SequenceEncoder> MakeBackbone(const BackboneConfig& config,
                                              Rng& rng) {
  switch (config.kind) {
    case BackboneKind::kTransformerEncoder:
    case BackboneKind::kTransformerDecoder: {
      TransformerConfig tc;
      tc.d_model = config.d_model;
      tc.num_heads = config.num_heads;
      tc.ff_dim = config.ff_dim;
      tc.num_layers = config.num_layers;
      tc.dropout = config.dropout;
      tc.causal = config.kind == BackboneKind::kTransformerDecoder;
      return std::make_unique<TransformerEncoder>(tc, rng);
    }
    case BackboneKind::kResNet:
      return std::make_unique<ResNetEncoder>(config.d_model,
                                             config.num_layers, rng);
    case BackboneKind::kTcn:
      return std::make_unique<TcnEncoder>(config.d_model, config.num_layers,
                                          /*kernel=*/3, config.dropout, rng);
    case BackboneKind::kLstm:
      return std::make_unique<LstmEncoder>(config.d_model,
                                           /*bidirectional=*/false, rng);
    case BackboneKind::kBiLstm:
      return std::make_unique<LstmEncoder>(config.d_model,
                                           /*bidirectional=*/true, rng);
  }
  TIMEDRL_CHECK(false) << "unknown backbone kind";
  return nullptr;
}

std::string BackboneName(BackboneKind kind) {
  switch (kind) {
    case BackboneKind::kTransformerEncoder:
      return "Transformer Encoder";
    case BackboneKind::kTransformerDecoder:
      return "Transformer Decoder";
    case BackboneKind::kResNet:
      return "ResNet";
    case BackboneKind::kTcn:
      return "TCN";
    case BackboneKind::kLstm:
      return "LSTM";
    case BackboneKind::kBiLstm:
      return "Bi-LSTM";
  }
  return "?";
}

}  // namespace timedrl::nn
