#include "nn/transformer.h"

#include <string>

#include "tensor/ops.h"
#include "tensor/ops_fused.h"

namespace timedrl::nn {

TransformerBlock::TransformerBlock(int64_t d_model, int64_t num_heads,
                                   int64_t ff_dim, float dropout, Rng& rng,
                                   bool causal)
    : attention_(d_model, num_heads, dropout, rng, causal),
      ff1_(d_model, ff_dim, rng),
      ff2_(ff_dim, d_model, rng),
      norm1_(d_model),
      norm2_(d_model),
      dropout1_(dropout, rng),
      dropout2_(dropout, rng),
      ff_dropout_(dropout, rng) {
  RegisterModule("attention", &attention_);
  RegisterModule("ff1", &ff1_);
  RegisterModule("ff2", &ff2_);
  RegisterModule("norm1", &norm1_);
  RegisterModule("norm2", &norm2_);
  RegisterModule("dropout1", &dropout1_);
  RegisterModule("dropout2", &dropout2_);
  RegisterModule("ff_dropout", &ff_dropout_);
}

Tensor TransformerBlock::Forward(const Tensor& input) {
  Tensor attended =
      norm1_.Forward(input + dropout1_.Forward(attention_.Forward(input)));
  // FFN up-projection without its bias epilogue: the bias add and GELU run
  // as one fused autograd node instead of two elementwise ops.
  Tensor up = MatMul(attended, ff1_.weight());
  Tensor ff =
      ff2_.Forward(ff_dropout_.Forward(FusedBiasGelu(up, ff1_.bias())));
  return norm2_.Forward(attended + dropout2_.Forward(ff));
}

TransformerEncoder::TransformerEncoder(const TransformerConfig& config,
                                       Rng& rng)
    : config_(config) {
  for (int64_t i = 0; i < config.num_layers; ++i) {
    blocks_.push_back(std::make_unique<TransformerBlock>(
        config.d_model, config.num_heads, config.ff_dim, config.dropout, rng,
        config.causal));
    RegisterModule("block" + std::to_string(i), blocks_.back().get());
  }
}

Tensor TransformerEncoder::Encode(const Tensor& tokens) {
  Tensor hidden = tokens;
  for (auto& block : blocks_) hidden = block->Forward(hidden);
  return hidden;
}

}  // namespace timedrl::nn
