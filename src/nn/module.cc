#include "nn/module.h"

#include "util/check.h"

namespace timedrl::nn {

std::vector<Tensor> Module::Parameters() const {
  std::vector<Tensor> params;
  for (const auto& [name, tensor] : NamedParameters()) params.push_back(tensor);
  return params;
}

std::vector<std::pair<std::string, Tensor>> Module::NamedParameters() const {
  std::vector<std::pair<std::string, Tensor>> out;
  CollectParameters("", &out);
  return out;
}

int64_t Module::NumParameters() const {
  int64_t total = 0;
  for (const Tensor& parameter : Parameters()) total += parameter.numel();
  return total;
}

void Module::ZeroGrad() {
  for (Tensor parameter : Parameters()) parameter.ZeroGrad();
}

void Module::CopyParametersFrom(const Module& source) {
  std::vector<std::pair<std::string, Tensor>> mine = NamedParameters();
  std::vector<std::pair<std::string, Tensor>> theirs =
      source.NamedParameters();
  TIMEDRL_CHECK_EQ(mine.size(), theirs.size())
      << "CopyParametersFrom: parameter count mismatch";
  for (size_t i = 0; i < mine.size(); ++i) {
    TIMEDRL_CHECK(mine[i].first == theirs[i].first)
        << "parameter name mismatch: " << mine[i].first << " vs "
        << theirs[i].first;
    TIMEDRL_CHECK(mine[i].second.shape() == theirs[i].second.shape())
        << "parameter shape mismatch for " << mine[i].first;
    mine[i].second.data() = theirs[i].second.data();
  }
}

MutableState Module::CollectMutableState() {
  MutableState state;
  CollectMutableStateImpl("", &state);
  return state;
}

void Module::CollectMutableStateImpl(const std::string& prefix,
                                     MutableState* out) {
  AppendMutableState(prefix, out);
  for (auto& [name, child] : children_) {
    child->CollectMutableStateImpl(
        prefix.empty() ? name : prefix + "." + name, out);
  }
}

Tensor Module::RegisterParameter(std::string name, Tensor parameter) {
  TIMEDRL_CHECK(parameter.defined());
  TIMEDRL_CHECK(parameter.requires_grad())
      << "parameter '" << name << "' must require grad";
  parameters_.emplace_back(std::move(name), parameter);
  return parameter;
}

void Module::RegisterModule(std::string name, Module* child) {
  TIMEDRL_CHECK(child != nullptr);
  children_.emplace_back(std::move(name), child);
}

void Module::SetTraining(bool training) {
  training_ = training;
  OnModeChange();
  for (auto& [name, child] : children_) {
    child->SetTraining(training);
  }
}

void Module::CollectParameters(
    const std::string& prefix,
    std::vector<std::pair<std::string, Tensor>>* out) const {
  for (const auto& [name, tensor] : parameters_) {
    out->emplace_back(prefix.empty() ? name : prefix + "." + name, tensor);
  }
  for (const auto& [name, child] : children_) {
    child->CollectParameters(prefix.empty() ? name : prefix + "." + name, out);
  }
}

}  // namespace timedrl::nn
