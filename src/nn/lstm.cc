#include "nn/lstm.h"

#include <vector>

#include "nn/init.h"
#include "tensor/ops.h"
#include "util/check.h"

namespace timedrl::nn {

Lstm::Lstm(int64_t input_size, int64_t hidden_size, Rng& rng)
    : input_size_(input_size), hidden_size_(hidden_size) {
  w_ih_ = RegisterParameter(
      "w_ih", KaimingUniform({input_size, 4 * hidden_size}, hidden_size, rng));
  w_hh_ = RegisterParameter(
      "w_hh",
      KaimingUniform({hidden_size, 4 * hidden_size}, hidden_size, rng));
  bias_ = RegisterParameter(
      "bias", KaimingUniform({4 * hidden_size}, hidden_size, rng));
}

Tensor Lstm::Forward(const Tensor& input, bool reverse) {
  TIMEDRL_CHECK_EQ(input.dim(), 3) << "LSTM expects [B, T, F]";
  TIMEDRL_CHECK_EQ(input.size(2), input_size_);
  const int64_t batch = input.size(0);
  const int64_t seq_len = input.size(1);
  const int64_t h = hidden_size_;

  Tensor hidden = Tensor::Zeros({batch, h});
  Tensor cell = Tensor::Zeros({batch, h});
  std::vector<Tensor> outputs(seq_len);
  for (int64_t step = 0; step < seq_len; ++step) {
    const int64_t t = reverse ? seq_len - 1 - step : step;
    Tensor x_t = Reshape(Slice(input, 1, t, 1), {batch, input_size_});
    Tensor gates = MatMul(x_t, w_ih_) + MatMul(hidden, w_hh_) + bias_;
    Tensor i_gate = Sigmoid(Slice(gates, 1, 0, h));
    Tensor f_gate = Sigmoid(Slice(gates, 1, h, h));
    Tensor g_gate = Tanh(Slice(gates, 1, 2 * h, h));
    Tensor o_gate = Sigmoid(Slice(gates, 1, 3 * h, h));
    cell = f_gate * cell + i_gate * g_gate;
    hidden = o_gate * Tanh(cell);
    outputs[t] = hidden;
  }
  return Stack(outputs, /*dim=*/1);  // [B, T, H]
}

LstmEncoder::LstmEncoder(int64_t d_model, bool bidirectional, Rng& rng)
    : bidirectional_(bidirectional),
      forward_(d_model, bidirectional ? d_model / 2 : d_model, rng) {
  if (bidirectional) {
    TIMEDRL_CHECK_EQ(d_model % 2, 0)
        << "bidirectional LSTM needs an even d_model";
    backward_ = std::make_unique<Lstm>(d_model, d_model / 2, rng);
    RegisterModule("backward", backward_.get());
  }
  RegisterModule("forward", &forward_);
}

Tensor LstmEncoder::Encode(const Tensor& tokens) {
  Tensor fwd = forward_.Forward(tokens, /*reverse=*/false);
  if (!bidirectional_) return fwd;
  Tensor bwd = backward_->Forward(tokens, /*reverse=*/true);
  return Concat({fwd, bwd}, /*dim=*/2);
}

}  // namespace timedrl::nn
