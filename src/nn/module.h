// Base class for neural network modules: parameter registration, recursive
// parameter collection, and train/eval mode propagation.

#ifndef TIMEDRL_NN_MODULE_H_
#define TIMEDRL_NN_MODULE_H_

#include <string>
#include <utility>
#include <vector>

#include "tensor/tensor.h"
#include "util/rng.h"

namespace timedrl::nn {

/// Non-parameter state that evolves during training and must therefore be
/// captured by a checkpoint for a resumed run to be bitwise-identical:
/// private RNG streams (dropout masks), running-statistic buffers (batch
/// norm), and their init flags. Pointers stay owned by the module and are
/// valid for its lifetime; names are dotted paths like NamedParameters().
struct MutableState {
  std::vector<std::pair<std::string, Rng*>> rngs;
  std::vector<std::pair<std::string, std::vector<float>*>> buffers;
  std::vector<std::pair<std::string, bool*>> flags;
};

/// Base class for all layers and models.
///
/// Subclasses register their trainable tensors with RegisterParameter() and
/// their child layers with RegisterModule(); Parameters() then walks the tree.
/// Modules are neither copyable nor movable: children are registered by
/// pointer-to-member, which moving would invalidate.
class Module {
 public:
  Module() = default;
  virtual ~Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All trainable parameters in this module and its children.
  std::vector<Tensor> Parameters() const;

  /// (dotted name, parameter) pairs, for inspection and tests.
  std::vector<std::pair<std::string, Tensor>> NamedParameters() const;

  /// Total number of trainable scalars.
  int64_t NumParameters() const;

  /// Switches this module and all children to training mode.
  void Train() { SetTraining(true); }
  /// Switches this module and all children to inference mode.
  void Eval() { SetTraining(false); }
  bool training() const { return training_; }

  /// Clears gradients of every parameter.
  void ZeroGrad();

  /// Copies parameter values from a structurally identical module (same
  /// architecture and registration order). Used to fork pre-trained weights
  /// into a fresh model before fine-tuning.
  void CopyParametersFrom(const Module& source);

  /// Mutable training state of this module and every child, in registration
  /// order with dotted names. Empty for purely functional modules.
  MutableState CollectMutableState();

 protected:
  /// Hook for stateful layers (dropout, batch norm): append local entries
  /// to `out`, naming them JoinStateName(prefix, "<local>").
  virtual void AppendMutableState(const std::string& prefix,
                                  MutableState* out) {
    (void)prefix;
    (void)out;
  }

  static std::string JoinStateName(const std::string& prefix,
                                   const char* local) {
    return prefix.empty() ? local : prefix + "." + local;
  }
  /// Registers `parameter` (must require grad) under `name`; returns it.
  Tensor RegisterParameter(std::string name, Tensor parameter);

  /// Registers a child module. `child` must outlive this module (it is
  /// normally a data member of the subclass).
  void RegisterModule(std::string name, Module* child);

  /// Hook for modules that need to react to mode changes.
  virtual void OnModeChange() {}

 private:
  void SetTraining(bool training);
  void CollectParameters(
      const std::string& prefix,
      std::vector<std::pair<std::string, Tensor>>* out) const;
  void CollectMutableStateImpl(const std::string& prefix, MutableState* out);

  bool training_ = true;
  std::vector<std::pair<std::string, Tensor>> parameters_;
  std::vector<std::pair<std::string, Module*>> children_;
};

}  // namespace timedrl::nn

#endif  // TIMEDRL_NN_MODULE_H_
