// Factory over the paper's backbone-ablation architectures (Table VIII).

#ifndef TIMEDRL_NN_BACKBONE_H_
#define TIMEDRL_NN_BACKBONE_H_

#include <memory>
#include <string>

#include "nn/sequence_encoder.h"
#include "util/rng.h"

namespace timedrl::nn {

/// The encoder architectures compared in the paper's Table VIII.
enum class BackboneKind {
  kTransformerEncoder,  // bidirectional self-attention (TimeDRL default)
  kTransformerDecoder,  // masked/causal self-attention
  kResNet,
  kTcn,
  kLstm,
  kBiLstm,
};

/// Hyperparameters shared by all backbones.
struct BackboneConfig {
  BackboneKind kind = BackboneKind::kTransformerEncoder;
  int64_t d_model = 64;
  int64_t num_layers = 2;
  /// Attention-only knobs (ignored by conv/recurrent backbones).
  int64_t num_heads = 4;
  int64_t ff_dim = 128;
  float dropout = 0.1f;
};

/// Builds the requested shape-preserving [B, T, D] -> [B, T, D] encoder.
std::unique_ptr<SequenceEncoder> MakeBackbone(const BackboneConfig& config,
                                              Rng& rng);

/// Display name matching the paper's Table VIII rows.
std::string BackboneName(BackboneKind kind);

}  // namespace timedrl::nn

#endif  // TIMEDRL_NN_BACKBONE_H_
