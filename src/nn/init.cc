#include "nn/init.h"

#include <cmath>

#include "util/check.h"

namespace timedrl::nn {

Tensor KaimingUniform(const Shape& shape, int64_t fan_in, Rng& rng) {
  TIMEDRL_CHECK_GT(fan_in, 0);
  const float bound = 1.0f / std::sqrt(static_cast<float>(fan_in));
  return Tensor::Rand(shape, rng, -bound, bound, /*requires_grad=*/true);
}

Tensor XavierUniform(const Shape& shape, int64_t fan_in, int64_t fan_out,
                     Rng& rng) {
  TIMEDRL_CHECK_GT(fan_in + fan_out, 0);
  const float bound = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return Tensor::Rand(shape, rng, -bound, bound, /*requires_grad=*/true);
}

}  // namespace timedrl::nn
