#include "nn/conv_encoders.h"

#include <string>

#include "nn/init.h"
#include "tensor/ops.h"
#include "util/check.h"

namespace timedrl::nn {

// ---- Conv1dLayer -------------------------------------------------------------

Conv1dLayer::Conv1dLayer(int64_t in_channels, int64_t out_channels,
                         int64_t kernel, Rng& rng, int64_t stride,
                         int64_t padding, int64_t dilation, bool bias)
    : out_channels_(out_channels),
      stride_(stride),
      padding_(padding),
      dilation_(dilation) {
  const int64_t fan_in = in_channels * kernel;
  weight_ = RegisterParameter(
      "weight",
      KaimingUniform({out_channels, in_channels, kernel}, fan_in, rng));
  if (bias) {
    bias_ = RegisterParameter("bias",
                              KaimingUniform({out_channels}, fan_in, rng));
  }
}

Tensor Conv1dLayer::Forward(const Tensor& input) {
  return Conv1d(input, weight_, bias_, stride_, padding_, dilation_);
}

// ---- TcnBlock ----------------------------------------------------------------

TcnBlock::TcnBlock(int64_t in_channels, int64_t out_channels, int64_t kernel,
                   int64_t dilation, float dropout, Rng& rng)
    : kernel_(kernel),
      dilation_(dilation),
      // Symmetric padding of (K-1)*d is applied by Conv1d; CausalConv() then
      // trims the future-looking tail so the block is strictly causal.
      conv1_(in_channels, out_channels, kernel, rng, /*stride=*/1,
             /*padding=*/(kernel - 1) * dilation, dilation),
      conv2_(out_channels, out_channels, kernel, rng, /*stride=*/1,
             /*padding=*/(kernel - 1) * dilation, dilation),
      dropout1_(dropout, rng),
      dropout2_(dropout, rng) {
  if (in_channels != out_channels) {
    residual_proj_ = std::make_unique<Conv1dLayer>(in_channels, out_channels,
                                                   /*kernel=*/1, rng);
    RegisterModule("residual_proj", residual_proj_.get());
  }
  RegisterModule("conv1", &conv1_);
  RegisterModule("conv2", &conv2_);
  RegisterModule("dropout1", &dropout1_);
  RegisterModule("dropout2", &dropout2_);
}

Tensor TcnBlock::CausalConv(Conv1dLayer& conv, const Tensor& input) {
  const int64_t length = input.size(2);
  Tensor padded = conv.Forward(input);  // length + (K-1)*d
  return Slice(padded, 2, 0, length);   // keep the causal prefix
}

Tensor TcnBlock::Forward(const Tensor& input) {
  Tensor h = dropout1_.Forward(Relu(CausalConv(conv1_, input)));
  h = dropout2_.Forward(Relu(CausalConv(conv2_, h)));
  Tensor skip = residual_proj_ ? residual_proj_->Forward(input) : input;
  return Relu(h + skip);
}

// ---- TcnEncoder ----------------------------------------------------------------

TcnEncoder::TcnEncoder(int64_t d_model, int64_t num_blocks, int64_t kernel,
                       float dropout, Rng& rng) {
  int64_t dilation = 1;
  for (int64_t i = 0; i < num_blocks; ++i) {
    blocks_.push_back(std::make_unique<TcnBlock>(d_model, d_model, kernel,
                                                 dilation, dropout, rng));
    RegisterModule("block" + std::to_string(i), blocks_.back().get());
    dilation *= 2;
  }
}

Tensor TcnEncoder::Encode(const Tensor& tokens) {
  Tensor h = Transpose(tokens, 1, 2);  // [B, D, T]
  for (auto& block : blocks_) h = block->Forward(h);
  return Transpose(h, 1, 2);
}

// ---- ResNet ----------------------------------------------------------------------

ResNetBlock1d::ResNetBlock1d(int64_t channels, int64_t kernel, Rng& rng)
    : conv1_(channels, channels, kernel, rng, /*stride=*/1,
             /*padding=*/(kernel - 1) / 2),
      conv2_(channels, channels, kernel, rng, /*stride=*/1,
             /*padding=*/(kernel - 1) / 2) {
  TIMEDRL_CHECK_EQ(kernel % 2, 1) << "ResNetBlock1d needs an odd kernel";
  RegisterModule("conv1", &conv1_);
  RegisterModule("conv2", &conv2_);
}

Tensor ResNetBlock1d::Forward(const Tensor& input) {
  Tensor h = conv2_.Forward(Relu(conv1_.Forward(input)));
  return Relu(h + input);
}

ResNetEncoder::ResNetEncoder(int64_t d_model, int64_t num_blocks, Rng& rng) {
  for (int64_t i = 0; i < num_blocks; ++i) {
    blocks_.push_back(
        std::make_unique<ResNetBlock1d>(d_model, /*kernel=*/3, rng));
    RegisterModule("block" + std::to_string(i), blocks_.back().get());
  }
}

Tensor ResNetEncoder::Encode(const Tensor& tokens) {
  Tensor h = Transpose(tokens, 1, 2);
  for (auto& block : blocks_) h = block->Forward(h);
  return Transpose(h, 1, 2);
}

}  // namespace timedrl::nn
