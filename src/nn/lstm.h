// LSTM recurrent layers (uni- and bi-directional).

#ifndef TIMEDRL_NN_LSTM_H_
#define TIMEDRL_NN_LSTM_H_

#include "nn/module.h"
#include "nn/sequence_encoder.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace timedrl::nn {

/// Single-direction LSTM cell unrolled over time.
/// Input [B, T, F] -> hidden sequence [B, T, H].
class Lstm : public Module {
 public:
  Lstm(int64_t input_size, int64_t hidden_size, Rng& rng);

  /// Runs the recurrence; `reverse` processes the sequence right-to-left
  /// (output remains in input time order).
  Tensor Forward(const Tensor& input, bool reverse = false);

  int64_t hidden_size() const { return hidden_size_; }

 private:
  int64_t input_size_;
  int64_t hidden_size_;
  Tensor w_ih_;  // [F, 4H] gate order: i, f, g, o
  Tensor w_hh_;  // [H, 4H]
  Tensor bias_;  // [4H]
};

/// Shape-preserving LSTM backbone: [B, T, D] -> [B, T, D].
/// Unidirectional uses hidden size D; bidirectional uses D/2 per direction
/// and concatenates, matching the output width.
class LstmEncoder : public SequenceEncoder {
 public:
  LstmEncoder(int64_t d_model, bool bidirectional, Rng& rng);

  Tensor Encode(const Tensor& tokens) override;

  bool bidirectional() const { return bidirectional_; }

 private:
  bool bidirectional_;
  Lstm forward_;
  // Only constructed for the bidirectional variant.
  std::unique_ptr<Lstm> backward_;
};

}  // namespace timedrl::nn

#endif  // TIMEDRL_NN_LSTM_H_
