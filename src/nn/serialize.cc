#include "nn/serialize.h"

#include <cstdint>
#include <cstring>
#include <fstream>

#include "obs/logging.h"

namespace timedrl::nn {
namespace {

constexpr char kMagic[4] = {'T', 'D', 'R', 'L'};
constexpr uint32_t kVersion = 1;

template <typename T>
void WriteScalar(std::ofstream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadScalar(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

}  // namespace

bool SaveParameters(const Module& module, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    TIMEDRL_LOG_ERROR << "cannot open " << path << " for writing";
    return false;
  }
  out.write(kMagic, sizeof(kMagic));
  WriteScalar(out, kVersion);

  const auto named = module.NamedParameters();
  WriteScalar(out, static_cast<uint64_t>(named.size()));
  for (const auto& [name, tensor] : named) {
    WriteScalar(out, static_cast<uint32_t>(name.size()));
    out.write(name.data(), static_cast<std::streamsize>(name.size()));
    const Shape& shape = tensor.shape();
    WriteScalar(out, static_cast<uint32_t>(shape.size()));
    for (int64_t dim : shape) WriteScalar(out, dim);
    const std::vector<float>& data = tensor.data();
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size() * sizeof(float)));
  }
  return static_cast<bool>(out);
}

bool LoadParameters(Module* module, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    TIMEDRL_LOG_ERROR << "cannot open " << path;
    return false;
  }
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    TIMEDRL_LOG_ERROR << path << " is not a TimeDRL checkpoint";
    return false;
  }
  uint32_t version = 0;
  if (!ReadScalar(in, &version) || version != kVersion) {
    TIMEDRL_LOG_ERROR << "unsupported checkpoint version " << version;
    return false;
  }

  auto named = module->NamedParameters();
  uint64_t count = 0;
  if (!ReadScalar(in, &count) || count != named.size()) {
    TIMEDRL_LOG_ERROR << "checkpoint has " << count << " parameters, module "
                      << "has " << named.size();
    return false;
  }
  for (auto& [name, tensor] : named) {
    uint32_t name_length = 0;
    if (!ReadScalar(in, &name_length)) return false;
    std::string stored_name(name_length, '\0');
    in.read(stored_name.data(), name_length);
    if (!in || stored_name != name) {
      TIMEDRL_LOG_ERROR << "parameter name mismatch: checkpoint '"
                        << stored_name << "' vs module '" << name << "'";
      return false;
    }
    uint32_t rank = 0;
    if (!ReadScalar(in, &rank)) return false;
    Shape shape(rank);
    for (uint32_t d = 0; d < rank; ++d) {
      if (!ReadScalar(in, &shape[d])) return false;
    }
    if (shape != tensor.shape()) {
      TIMEDRL_LOG_ERROR << "shape mismatch for " << name << ": checkpoint "
                        << ShapeToString(shape) << " vs module "
                        << ShapeToString(tensor.shape());
      return false;
    }
    std::vector<float>& data = tensor.data();
    in.read(reinterpret_cast<char*>(data.data()),
            static_cast<std::streamsize>(data.size() * sizeof(float)));
    if (!in) {
      TIMEDRL_LOG_ERROR << "truncated checkpoint at " << name;
      return false;
    }
  }
  return true;
}

}  // namespace timedrl::nn
