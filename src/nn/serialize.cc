#include "nn/serialize.h"

#include <cstring>
#include <fstream>
#include <sstream>

#include "util/binary_io.h"

namespace timedrl::nn {
namespace {

using io::ReadScalar;
using io::ReadString;
using io::WriteScalar;
using io::WriteString;

// A stored rank larger than this is certainly corruption, not a tensor.
constexpr uint32_t kMaxRank = 16;

Status Corrupt(const std::string& message) {
  return Status::Error(StatusCode::kCorruptData, message);
}

}  // namespace

void WriteParametersBody(std::ostream& out, const Module& module) {
  const auto named = module.NamedParameters();
  WriteScalar(out, static_cast<uint64_t>(named.size()));
  for (const auto& [name, tensor] : named) {
    WriteString(out, name);
    const Shape& shape = tensor.shape();
    WriteScalar(out, static_cast<uint32_t>(shape.size()));
    for (int64_t dim : shape) WriteScalar(out, dim);
    const std::vector<float>& data = tensor.data();
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size() * sizeof(float)));
  }
}

Status ReadParametersBody(std::istream& in, Module* module) {
  auto named = module->NamedParameters();
  uint64_t count = 0;
  if (!ReadScalar(in, &count)) return Corrupt("truncated parameter count");
  if (count != named.size()) {
    std::ostringstream message;
    message << "checkpoint has " << count << " parameters, module has "
            << named.size();
    return Status::Error(StatusCode::kStructureMismatch, message.str());
  }
  for (auto& [name, tensor] : named) {
    std::string stored_name;
    if (!ReadString(in, &stored_name)) {
      return Corrupt("truncated name for parameter '" + name + "'");
    }
    if (stored_name != name) {
      return Status::Error(StatusCode::kStructureMismatch,
                           "parameter name mismatch: checkpoint '" +
                               stored_name + "' vs module '" + name + "'");
    }
    uint32_t rank = 0;
    if (!ReadScalar(in, &rank) || rank > kMaxRank) {
      return Corrupt("bad rank for parameter '" + name + "'");
    }
    Shape shape(rank);
    for (uint32_t d = 0; d < rank; ++d) {
      if (!ReadScalar(in, &shape[d])) {
        return Corrupt("truncated shape for parameter '" + name + "'");
      }
    }
    if (shape != tensor.shape()) {
      return Status::Error(StatusCode::kStructureMismatch,
                           "shape mismatch for " + name + ": checkpoint " +
                               ShapeToString(shape) + " vs module " +
                               ShapeToString(tensor.shape()));
    }
    std::vector<float>& data = tensor.data();
    in.read(reinterpret_cast<char*>(data.data()),
            static_cast<std::streamsize>(data.size() * sizeof(float)));
    if (in.gcount() !=
        static_cast<std::streamsize>(data.size() * sizeof(float))) {
      return Corrupt("truncated data for parameter '" + name + "'");
    }
  }
  return Status::Ok();
}

void WriteMutableStateBody(std::ostream& out, Module& module) {
  MutableState state = module.CollectMutableState();
  WriteScalar(out, static_cast<uint64_t>(state.rngs.size()));
  for (const auto& [name, rng] : state.rngs) {
    WriteString(out, name);
    WriteString(out, rng->Serialize());
  }
  WriteScalar(out, static_cast<uint64_t>(state.buffers.size()));
  for (const auto& [name, buffer] : state.buffers) {
    WriteString(out, name);
    WriteScalar(out, static_cast<uint64_t>(buffer->size()));
    out.write(reinterpret_cast<const char*>(buffer->data()),
              static_cast<std::streamsize>(buffer->size() * sizeof(float)));
  }
  WriteScalar(out, static_cast<uint64_t>(state.flags.size()));
  for (const auto& [name, flag] : state.flags) {
    WriteString(out, name);
    WriteScalar(out, static_cast<uint8_t>(*flag ? 1 : 0));
  }
}

Status ReadMutableStateBody(std::istream& in, Module* module) {
  MutableState state = module->CollectMutableState();

  uint64_t num_rngs = 0;
  if (!ReadScalar(in, &num_rngs)) return Corrupt("truncated RNG count");
  if (num_rngs != state.rngs.size()) {
    return Status::Error(StatusCode::kStructureMismatch,
                         "RNG stream count mismatch");
  }
  for (auto& [name, rng] : state.rngs) {
    std::string stored_name;
    std::string stored_state;
    if (!ReadString(in, &stored_name) || !ReadString(in, &stored_state)) {
      return Corrupt("truncated RNG stream '" + name + "'");
    }
    if (stored_name != name) {
      return Status::Error(StatusCode::kStructureMismatch,
                           "RNG stream name mismatch: checkpoint '" +
                               stored_name + "' vs module '" + name + "'");
    }
    if (!rng->Deserialize(stored_state)) {
      return Corrupt("malformed RNG state for '" + name + "'");
    }
  }

  uint64_t num_buffers = 0;
  if (!ReadScalar(in, &num_buffers)) return Corrupt("truncated buffer count");
  if (num_buffers != state.buffers.size()) {
    return Status::Error(StatusCode::kStructureMismatch,
                         "state buffer count mismatch");
  }
  for (auto& [name, buffer] : state.buffers) {
    std::string stored_name;
    uint64_t size = 0;
    if (!ReadString(in, &stored_name) || !ReadScalar(in, &size)) {
      return Corrupt("truncated state buffer '" + name + "'");
    }
    if (stored_name != name || size != buffer->size()) {
      return Status::Error(StatusCode::kStructureMismatch,
                           "state buffer mismatch for '" + name + "'");
    }
    in.read(reinterpret_cast<char*>(buffer->data()),
            static_cast<std::streamsize>(size * sizeof(float)));
    if (in.gcount() != static_cast<std::streamsize>(size * sizeof(float))) {
      return Corrupt("truncated state buffer data for '" + name + "'");
    }
  }

  uint64_t num_flags = 0;
  if (!ReadScalar(in, &num_flags)) return Corrupt("truncated flag count");
  if (num_flags != state.flags.size()) {
    return Status::Error(StatusCode::kStructureMismatch,
                         "state flag count mismatch");
  }
  for (auto& [name, flag] : state.flags) {
    std::string stored_name;
    uint8_t value = 0;
    if (!ReadString(in, &stored_name) || !ReadScalar(in, &value)) {
      return Corrupt("truncated state flag '" + name + "'");
    }
    if (stored_name != name) {
      return Status::Error(StatusCode::kStructureMismatch,
                           "state flag name mismatch for '" + name + "'");
    }
    *flag = value != 0;
  }
  return Status::Ok();
}

Status SaveParameters(const Module& module, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::Error(StatusCode::kIoError,
                         "cannot open " + path + " for writing");
  }
  out.write(kCheckpointMagic, sizeof(kCheckpointMagic));
  WriteScalar(out, kVersionParamsOnly);
  WriteParametersBody(out, module);
  if (!out) {
    return Status::Error(StatusCode::kIoError, "write failed for " + path);
  }
  return Status::Ok();
}

Status LoadParameters(Module* module, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::Error(StatusCode::kIoError, "cannot open " + path);
  }
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kCheckpointMagic, sizeof(magic)) != 0) {
    return Corrupt(path + " is not a TimeDRL checkpoint");
  }
  uint32_t version = 0;
  if (!ReadScalar(in, &version)) return Corrupt("truncated version field");
  if (version != kVersionParamsOnly && version != kVersionTrainingState) {
    std::ostringstream message;
    message << "unsupported checkpoint version " << version;
    return Status::Error(StatusCode::kVersionMismatch, message.str());
  }

  Status status = ReadParametersBody(in, module);
  if (!status.ok()) return status;

  // A version-1 file ends at the last parameter; anything after it means
  // the writer and reader disagree about the format. Version-2 files carry
  // further sections (optimizer state, cursors) that the full checkpoint
  // loader owns — and validates with a CRC — so they are not an error here.
  if (version == kVersionParamsOnly) {
    in.peek();
    if (!in.eof()) {
      return Corrupt("trailing bytes after the last parameter in " + path);
    }
  }
  return Status::Ok();
}

}  // namespace timedrl::nn
