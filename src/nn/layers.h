// Basic layers: Linear, Dropout, LayerNorm, BatchNorm1d, and a learnable
// positional encoding.

#ifndef TIMEDRL_NN_LAYERS_H_
#define TIMEDRL_NN_LAYERS_H_

#include "nn/module.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace timedrl::nn {

/// Affine map y = x W + b applied to the last dimension.
/// x: [..., in_features] -> y: [..., out_features].
class Linear : public Module {
 public:
  Linear(int64_t in_features, int64_t out_features, Rng& rng,
         bool bias = true);

  Tensor Forward(const Tensor& input);

  const Tensor& weight() const { return weight_; }
  const Tensor& bias() const { return bias_; }

 private:
  int64_t in_features_;
  Tensor weight_;  // [in, out]
  Tensor bias_;    // [out] or undefined
};

/// Inverted dropout: active in training mode only. Keeps E[output] = input by
/// scaling surviving activations by 1/(1-p).
///
/// TimeDRL relies on this layer's randomness to form its two encoder views,
/// so Forward() with the same input yields different masks on each call.
class Dropout : public Module {
 public:
  /// `p` is the drop probability; `rng` seeds this layer's private stream.
  Dropout(float p, Rng& rng);

  Tensor Forward(const Tensor& input);

  float p() const { return p_; }

 protected:
  /// The mask stream advances every training forward, so checkpoints must
  /// capture it for resumed runs to draw identical masks.
  void AppendMutableState(const std::string& prefix,
                          MutableState* out) override {
    out->rngs.emplace_back(JoinStateName(prefix, "rng"), &rng_);
  }

 private:
  float p_;
  Rng rng_;
};

/// Layer normalization over the last dimension with learnable gain/bias.
class LayerNorm : public Module {
 public:
  explicit LayerNorm(int64_t features, float eps = 1e-5f);

  Tensor Forward(const Tensor& input);

 private:
  int64_t features_;
  float eps_;
  Tensor gamma_;
  Tensor beta_;
};

/// Batch normalization for [N, F] inputs with running statistics.
class BatchNorm1d : public Module {
 public:
  explicit BatchNorm1d(int64_t features, float eps = 1e-5f,
                       float momentum = 0.1f);

  /// Training mode: normalizes by batch stats and updates running stats.
  /// Eval mode: normalizes by running stats.
  Tensor Forward(const Tensor& input);

 protected:
  /// Running statistics are EMA state updated each training forward —
  /// without them a restored model's eval-mode outputs would drift.
  void AppendMutableState(const std::string& prefix,
                          MutableState* out) override {
    out->buffers.emplace_back(JoinStateName(prefix, "running_mean"),
                              &running_mean_.data());
    out->buffers.emplace_back(JoinStateName(prefix, "running_var"),
                              &running_var_.data());
    out->flags.emplace_back(JoinStateName(prefix, "stats_initialized"),
                            &stats_initialized_);
  }

 private:
  int64_t features_;
  float eps_;
  float momentum_;
  Tensor gamma_;
  Tensor beta_;
  Tensor running_mean_;  // buffers, not parameters
  Tensor running_var_;
  bool stats_initialized_ = false;
};

/// Learnable additive positional encoding for [B, T, D] token sequences.
class LearnablePositionalEncoding : public Module {
 public:
  LearnablePositionalEncoding(int64_t max_len, int64_t dim, Rng& rng);

  /// Adds PE[0:T] to the input ([B, T, D], T <= max_len).
  Tensor Forward(const Tensor& input);

 private:
  int64_t max_len_;
  Tensor table_;  // [max_len, dim]
};

}  // namespace timedrl::nn

#endif  // TIMEDRL_NN_LAYERS_H_
