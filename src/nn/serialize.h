// Checkpointing: save/load module parameters to a simple binary format.
//
// Version 1 file (params-only, written by SaveParameters):
//   magic "TDRL" | uint32 version=1 | <parameters body>
// where <parameters body> is:
//   uint64 count |
//   repeated: uint32 name_len | name bytes | uint32 rank | int64 dims[rank] |
//             float data[numel]
//
// Version 2 files are full training checkpoints (core/checkpoint.h); their
// first section after the header is the same <parameters body>, so
// LoadParameters can pull the model out of either version. The body
// helpers below are shared with the checkpoint writer.
//
// Loading is strict: names, order, and shapes must match the module exactly
// (catches architecture drift), short reads are rejected down to the last
// parameter, and a version-1 file with trailing bytes after the final
// tensor is treated as corrupt.

#ifndef TIMEDRL_NN_SERIALIZE_H_
#define TIMEDRL_NN_SERIALIZE_H_

#include <cstdint>
#include <iosfwd>
#include <string>

#include "nn/module.h"
#include "util/status.h"

namespace timedrl::nn {

/// File header shared by all checkpoint versions.
inline constexpr char kCheckpointMagic[4] = {'T', 'D', 'R', 'L'};
inline constexpr uint32_t kVersionParamsOnly = 1;
inline constexpr uint32_t kVersionTrainingState = 2;

/// Writes all named parameters of `module` to `path` (version 1).
Status SaveParameters(const Module& module, const std::string& path);

/// Reads parameters written by SaveParameters — or the parameter section of
/// a version-2 training checkpoint — into `module`.
Status LoadParameters(Module* module, const std::string& path);

// ---- Building blocks shared with core/checkpoint.cc ------------------------------

/// Serializes the parameters body (no header) to `out`.
void WriteParametersBody(std::ostream& out, const Module& module);

/// Parses a parameters body into `module`; strict structural validation.
Status ReadParametersBody(std::istream& in, Module* module);

/// Serializes the module's mutable training state (RNG streams, running
/// stats, flags; see Module::CollectMutableState) to `out`.
void WriteMutableStateBody(std::ostream& out, Module& module);

/// Restores state written by WriteMutableStateBody. Names, entry counts,
/// and buffer sizes must match the module exactly.
Status ReadMutableStateBody(std::istream& in, Module* module);

}  // namespace timedrl::nn

#endif  // TIMEDRL_NN_SERIALIZE_H_
