// Checkpointing: save/load module parameters to a simple binary format.
//
// Format (little-endian):
//   magic "TDRL" | uint32 version | uint64 count |
//   repeated: uint32 name_len | name bytes | uint32 rank | int64 dims[rank] |
//             float data[numel]
//
// Loading is strict: names, order, and shapes must match the module exactly,
// which catches architecture drift between save and load.

#ifndef TIMEDRL_NN_SERIALIZE_H_
#define TIMEDRL_NN_SERIALIZE_H_

#include <string>

#include "nn/module.h"

namespace timedrl::nn {

/// Writes all named parameters of `module` to `path`. Returns false on I/O
/// failure.
bool SaveParameters(const Module& module, const std::string& path);

/// Reads parameters written by SaveParameters into `module`. Returns false
/// on I/O failure or any structural mismatch (count, name, shape).
bool LoadParameters(Module* module, const std::string& path);

}  // namespace timedrl::nn

#endif  // TIMEDRL_NN_SERIALIZE_H_
