// T-Loss (Franceschi et al., NeurIPS 2019): triplet loss with time-based
// negative sampling over subseries.

#ifndef TIMEDRL_BASELINES_TLOSS_H_
#define TIMEDRL_BASELINES_TLOSS_H_

#include <string>

#include "baselines/common.h"
#include "baselines/conv_backbone.h"

namespace timedrl::baselines {

/// Compact T-Loss: the anchor is a random subseries of each window, the
/// positive a sub-subseries of the anchor, and negatives are subseries of
/// other windows in the batch. Representations are max-pooled encoder
/// outputs; loss = -log s(a*p) - sum_k log s(-a*n_k).
class TLoss : public SslBaseline {
 public:
  TLoss(int64_t in_channels, int64_t hidden_dim, int64_t num_blocks, Rng& rng);

  Tensor PretextLoss(const Tensor& x) override;
  Tensor EncodeSequence(const Tensor& x) override;
  Tensor EncodeInstance(const Tensor& x) override;
  int64_t representation_dim() const override {
    return encoder_.hidden_dim();
  }
  std::string name() const override { return "T-Loss"; }

 private:
  DilatedConvEncoder encoder_;
  int64_t num_negatives_ = 4;
  Rng sample_rng_;
};

}  // namespace timedrl::baselines

#endif  // TIMEDRL_BASELINES_TLOSS_H_
