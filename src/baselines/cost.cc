#include "baselines/cost.h"

#include <cmath>

#include "augment/augment.h"
#include "util/check.h"

namespace timedrl::baselines {

CoSt::CoSt(int64_t in_channels, int64_t hidden_dim, int64_t num_blocks,
           Rng& rng)
    : encoder_(in_channels, hidden_dim, num_blocks, rng),
      projector_(hidden_dim, hidden_dim, hidden_dim / 2, rng),
      view_rng_(rng.Fork()) {
  RegisterModule("encoder", &encoder_);
  RegisterModule("projector", &projector_);
}

Tensor CoSt::EncodeSequence(const Tensor& x) { return encoder_.Forward(x); }

Tensor CoSt::EncodeInstance(const Tensor& x) {
  return encoder_.PoolInstance(encoder_.Forward(x));
}

Tensor CoSt::AmplitudeSpectrum(const Tensor& z) {
  const int64_t length = z.size(1);
  const int64_t bins = length / 2 + 1;
  // Constant DFT bases [T, bins].
  std::vector<float> cos_values(length * bins);
  std::vector<float> sin_values(length * bins);
  for (int64_t t = 0; t < length; ++t) {
    for (int64_t f = 0; f < bins; ++f) {
      const float angle = -2.0f * 3.14159265358979f * t * f / length;
      cos_values[t * bins + f] = std::cos(angle);
      sin_values[t * bins + f] = std::sin(angle);
    }
  }
  Tensor cos_basis = Tensor::FromVector({length, bins}, std::move(cos_values));
  Tensor sin_basis = Tensor::FromVector({length, bins}, std::move(sin_values));
  Tensor zt = Transpose(z, 1, 2);  // [B, D, T]
  Tensor real = MatMul(zt, cos_basis);
  Tensor imaginary = MatMul(zt, sin_basis);
  return Sqrt(real * real + imaginary * imaginary + 1e-8f);
}

Tensor CoSt::PretextLoss(const Tensor& x) {
  TIMEDRL_CHECK(training());
  augment::AugmentConfig config;
  config.jitter_sigma = 0.1f;
  config.scaling_sigma = 0.2f;
  Tensor v1 = augment::Scaling(augment::Jitter(x, config.jitter_sigma,
                                               view_rng_),
                               config.scaling_sigma, view_rng_);
  Tensor v2 = augment::Scaling(augment::Jitter(x, config.jitter_sigma,
                                               view_rng_),
                               config.scaling_sigma, view_rng_);

  Tensor z1 = encoder_.Forward(v1);
  Tensor z2 = encoder_.Forward(v2);

  // Trend branch: NT-Xent over projected instance embeddings.
  Tensor time_loss =
      NtXentLoss(projector_.Forward(encoder_.PoolInstance(z1)),
                 projector_.Forward(encoder_.PoolInstance(z2)), temperature_);

  // Seasonal branch: amplitude-spectrum consistency across the two views.
  Tensor frequency_loss =
      MseLoss(AmplitudeSpectrum(z1), AmplitudeSpectrum(z2));

  return time_loss + frequency_weight_ * frequency_loss;
}

}  // namespace timedrl::baselines
