#include "baselines/tnc.h"

#include <algorithm>

#include "util/check.h"

namespace timedrl::baselines {

Tnc::Tnc(int64_t in_channels, int64_t hidden_dim, int64_t num_blocks,
         Rng& rng)
    : encoder_(in_channels, hidden_dim, num_blocks, rng),
      discriminator_(2 * hidden_dim, hidden_dim, 1, rng),
      sample_rng_(rng.Fork()) {
  RegisterModule("encoder", &encoder_);
  RegisterModule("discriminator", &discriminator_);
}

Tensor Tnc::EncodeSequence(const Tensor& x) { return encoder_.Forward(x); }

Tensor Tnc::EncodeInstance(const Tensor& x) {
  return encoder_.PoolInstance(encoder_.Forward(x));
}

Tensor Tnc::EncodeSubwindows(const Tensor& x,
                             const std::vector<int64_t>& starts,
                             int64_t sub_length) {
  std::vector<Tensor> rows;
  rows.reserve(starts.size());
  for (size_t b = 0; b < starts.size(); ++b) {
    Tensor row = Slice(x, 0, static_cast<int64_t>(b), 1);  // [1, T, C]
    rows.push_back(Slice(row, 1, starts[b], sub_length));
  }
  Tensor sub = Concat(rows, 0);  // [B, sub, C]
  return encoder_.PoolInstance(encoder_.Forward(sub));
}

Tensor Tnc::PretextLoss(const Tensor& x) {
  TIMEDRL_CHECK(training());
  const int64_t batch = x.size(0);
  const int64_t length = x.size(1);
  const int64_t sub_length = std::max<int64_t>(4, length / 4);
  const int64_t max_start = length - sub_length;
  TIMEDRL_CHECK_GT(max_start, 0) << "window too short for TNC sub-windows";

  std::vector<int64_t> anchor_starts(batch);
  std::vector<int64_t> neighbor_starts(batch);
  std::vector<int64_t> distant_starts(batch);
  for (int64_t b = 0; b < batch; ++b) {
    anchor_starts[b] = sample_rng_.UniformInt(0, max_start);
    // Neighbor: Gaussian jitter of about half a sub-window.
    const int64_t jitter = static_cast<int64_t>(
        sample_rng_.Normal(0.0f, static_cast<float>(sub_length) / 2.0f));
    neighbor_starts[b] =
        std::clamp<int64_t>(anchor_starts[b] + jitter, 0, max_start);
    distant_starts[b] = sample_rng_.UniformInt(0, max_start);
  }

  Tensor anchor = EncodeSubwindows(x, anchor_starts, sub_length);
  Tensor neighbor = EncodeSubwindows(x, neighbor_starts, sub_length);
  // Distant: sub-window of a *different* batch item (rotate by one).
  Tensor rotated =
      Concat({Slice(x, 0, 1, batch - 1), Slice(x, 0, 0, 1)}, 0);
  Tensor distant = EncodeSubwindows(rotated, distant_starts, sub_length);

  Tensor positive_logits =
      discriminator_.Forward(Concat({anchor, neighbor}, 1));
  Tensor unlabeled_logits =
      discriminator_.Forward(Concat({anchor, distant}, 1));

  // PU weighting: distant samples are mostly negatives but occasionally
  // belong to the same regime.
  return BceWithLogits(positive_logits, 1.0f) +
         (1.0f - pu_weight_) * BceWithLogits(unlabeled_logits, 0.0f) +
         pu_weight_ * BceWithLogits(unlabeled_logits, 1.0f);
}

}  // namespace timedrl::baselines
