// Clustering-based contrastive baselines: CCL and MHCCL-lite.

#ifndef TIMEDRL_BASELINES_CLUSTERING_H_
#define TIMEDRL_BASELINES_CLUSTERING_H_

#include <string>

#include "baselines/common.h"
#include "baselines/conv_backbone.h"

namespace timedrl::baselines {

/// Compact CCL (Sharma et al., 2020): per batch, k-means clusters the
/// (detached) instance embeddings; pseudo-labels then drive a prototype
/// softmax loss that pulls embeddings toward their cluster centroid.
class Ccl : public SslBaseline {
 public:
  Ccl(int64_t in_channels, int64_t hidden_dim, int64_t num_blocks,
      int64_t num_clusters, Rng& rng);

  Tensor PretextLoss(const Tensor& x) override;
  Tensor EncodeSequence(const Tensor& x) override;
  Tensor EncodeInstance(const Tensor& x) override;
  int64_t representation_dim() const override {
    return encoder_.hidden_dim();
  }
  std::string name() const override { return "CCL"; }

 protected:
  /// Prototype-softmax loss against k-means pseudo-labels computed on the
  /// batch; rows whose distance to their centroid is in the top
  /// `outlier_fraction` are dropped (0 disables masking).
  Tensor ClusterLoss(const Tensor& embeddings, int64_t num_clusters,
                     float outlier_fraction);

  DilatedConvEncoder encoder_;
  int64_t num_clusters_;
  float temperature_ = 0.2f;
  Rng cluster_rng_;
};

/// MHCCL-lite (Meng et al., AAAI 2023): adds a second, coarser clustering
/// level and masks outlier members when forming prototypes.
class MhcclLite : public Ccl {
 public:
  MhcclLite(int64_t in_channels, int64_t hidden_dim, int64_t num_blocks,
            int64_t num_clusters, Rng& rng);

  Tensor PretextLoss(const Tensor& x) override;
  std::string name() const override { return "MHCCL"; }
};

}  // namespace timedrl::baselines

#endif  // TIMEDRL_BASELINES_CLUSTERING_H_
