#include "baselines/ts2vec.h"

#include "augment/augment.h"
#include "util/check.h"

namespace timedrl::baselines {

Ts2Vec::Ts2Vec(int64_t in_channels, int64_t hidden_dim, int64_t num_blocks,
               Rng& rng)
    : encoder_(in_channels, hidden_dim, num_blocks, rng),
      view_rng_(rng.Fork()) {
  RegisterModule("encoder", &encoder_);
}

Tensor Ts2Vec::EncodeSequence(const Tensor& x) { return encoder_.Forward(x); }

Tensor Ts2Vec::EncodeInstance(const Tensor& x) {
  return encoder_.PoolInstance(encoder_.Forward(x));
}

Tensor Ts2Vec::HierarchicalLoss(Tensor z1, Tensor z2) {
  Tensor total = Tensor::Scalar(0.0f);
  int64_t scales = 0;
  while (true) {
    const int64_t batch = z1.size(0);
    const int64_t length = z1.size(1);

    // Instance-wise: at each timestamp, contrast across the batch.
    if (batch > 1) {
      Tensor a = Permute(z1, {1, 0, 2});  // [T, B, D]
      Tensor b = Permute(z2, {1, 0, 2});
      Tensor sims = MatMul(a, Transpose(b, -2, -1));  // [T, B, B]
      Tensor flat = Reshape(sims, {length * batch, batch});
      std::vector<int64_t> labels(length * batch);
      for (int64_t i = 0; i < length * batch; ++i) labels[i] = i % batch;
      Tensor fwd = CrossEntropy(flat, labels);
      Tensor bwd = CrossEntropy(
          Reshape(MatMul(b, Transpose(a, -2, -1)), {length * batch, batch}),
          labels);
      total = total + 0.5f * (fwd + bwd);
    }

    // Temporal: within each instance, contrast across timestamps.
    if (length > 1) {
      Tensor sims = MatMul(z1, Transpose(z2, -2, -1));  // [B, T, T]
      Tensor flat = Reshape(sims, {batch * length, length});
      std::vector<int64_t> labels(batch * length);
      for (int64_t i = 0; i < batch * length; ++i) labels[i] = i % length;
      Tensor fwd = CrossEntropy(flat, labels);
      Tensor bwd = CrossEntropy(
          Reshape(MatMul(z2, Transpose(z1, -2, -1)), {batch * length, length}),
          labels);
      total = total + 0.5f * (fwd + bwd);
    }

    ++scales;
    if (length <= 1) break;
    // Next scale: halve the temporal resolution.
    z1 = Transpose(MaxPool1d(Transpose(z1, 1, 2), 2, 2), 1, 2);
    z2 = Transpose(MaxPool1d(Transpose(z2, 1, 2), 2, 2), 1, 2);
  }
  return total * (1.0f / static_cast<float>(scales));
}

Tensor Ts2Vec::PretextLoss(const Tensor& x) {
  TIMEDRL_CHECK(training());
  const int64_t length = x.size(1);
  TIMEDRL_CHECK_GE(length, 8) << "window too short for cropping";

  // Two overlapping crops: left covers [0, c2), right covers [c1, T).
  const int64_t c1 = view_rng_.UniformInt(0, length / 4);
  const int64_t c2 =
      view_rng_.UniformInt(length - length / 4, length);
  Tensor left = Slice(x, 1, 0, c2);
  Tensor right = Slice(x, 1, c1, length - c1);

  // Timestamp masking on the crop inputs.
  augment::AugmentConfig config;
  config.masking_ratio = mask_ratio_;
  left = augment::Masking(left, mask_ratio_, view_rng_);
  right = augment::Masking(right, mask_ratio_, view_rng_);

  Tensor z_left = encoder_.Forward(left);
  Tensor z_right = encoder_.Forward(right);

  // Overlap region is [c1, c2).
  const int64_t overlap = c2 - c1;
  Tensor z1 = Slice(z_left, 1, c1, overlap);
  Tensor z2 = Slice(z_right, 1, 0, overlap);
  return HierarchicalLoss(z1, z2);
}

}  // namespace timedrl::baselines
