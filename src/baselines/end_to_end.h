// End-to-end forecasting baselines: Informer-lite and a TCN forecaster.

#ifndef TIMEDRL_BASELINES_END_TO_END_H_
#define TIMEDRL_BASELINES_END_TO_END_H_

#include <memory>
#include <string>

#include "baselines/common.h"
#include "nn/conv_encoders.h"
#include "nn/layers.h"
#include "nn/transformer.h"

namespace timedrl::baselines {

/// Informer-lite: an end-to-end Transformer forecaster. At this scale full
/// attention replaces ProbSparse attention (ProbSparse is an efficiency
/// approximation for very long sequences, not an accuracy mechanism) and a
/// linear readout from the final token replaces the generative decoder.
class InformerLite : public EndToEndForecaster {
 public:
  InformerLite(int64_t channels, int64_t horizon, int64_t d_model,
               int64_t num_layers, Rng& rng);

  Tensor Forecast(const Tensor& x) override;
  std::string name() const override { return "Informer"; }

 private:
  int64_t channels_;
  int64_t horizon_;
  int64_t d_model_;
  nn::Linear input_proj_;
  nn::LearnablePositionalEncoding positional_;
  std::unique_ptr<nn::TransformerEncoder> encoder_;
  nn::Linear head_;
};

/// End-to-end TCN forecaster (Bai et al., 2018): dilated causal conv stack,
/// linear readout from the last timestep.
class TcnForecaster : public EndToEndForecaster {
 public:
  TcnForecaster(int64_t channels, int64_t horizon, int64_t d_model,
                int64_t num_blocks, Rng& rng);

  Tensor Forecast(const Tensor& x) override;
  std::string name() const override { return "TCN"; }

 private:
  int64_t channels_;
  int64_t horizon_;
  int64_t d_model_;
  nn::Linear input_proj_;
  nn::TcnEncoder encoder_;
  nn::Linear head_;
};

}  // namespace timedrl::baselines

#endif  // TIMEDRL_BASELINES_END_TO_END_H_
