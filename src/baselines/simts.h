// SimTS (Zheng et al., 2023): predict the future in latent space from the
// past, siamese-style, without negative pairs.

#ifndef TIMEDRL_BASELINES_SIMTS_H_
#define TIMEDRL_BASELINES_SIMTS_H_

#include <string>

#include "baselines/common.h"
#include "baselines/conv_backbone.h"

namespace timedrl::baselines {

/// Compact SimTS: the window is split into history/future halves; a
/// predictor MLP maps the last history representation to the (stop-gradient)
/// pooled future representation; negative cosine similarity is minimized.
class SimTs : public SslBaseline {
 public:
  SimTs(int64_t in_channels, int64_t hidden_dim, int64_t num_blocks, Rng& rng);

  Tensor PretextLoss(const Tensor& x) override;
  Tensor EncodeSequence(const Tensor& x) override;
  Tensor EncodeInstance(const Tensor& x) override;
  int64_t representation_dim() const override {
    return encoder_.hidden_dim();
  }
  std::string name() const override { return "SimTS"; }

 private:
  DilatedConvEncoder encoder_;
  ProjectionMlp predictor_;
};

}  // namespace timedrl::baselines

#endif  // TIMEDRL_BASELINES_SIMTS_H_
