// SimCLR and BYOL adapted to time-series windows, as used in the paper's
// classification comparison (Table V).

#ifndef TIMEDRL_BASELINES_CONTRASTIVE_CV_H_
#define TIMEDRL_BASELINES_CONTRASTIVE_CV_H_

#include <memory>
#include <string>

#include "baselines/common.h"
#include "baselines/conv_backbone.h"

namespace timedrl::baselines {

/// SimCLR (Chen et al., 2020): two augmented views, projection head,
/// NT-Xent with in-batch negatives.
class SimClr : public SslBaseline {
 public:
  SimClr(int64_t in_channels, int64_t hidden_dim, int64_t num_blocks,
         Rng& rng);

  Tensor PretextLoss(const Tensor& x) override;
  Tensor EncodeSequence(const Tensor& x) override;
  Tensor EncodeInstance(const Tensor& x) override;
  int64_t representation_dim() const override {
    return encoder_.hidden_dim();
  }
  std::string name() const override { return "SimCLR"; }

 private:
  Tensor AugmentView(const Tensor& x);

  DilatedConvEncoder encoder_;
  ProjectionMlp projector_;
  float temperature_ = 0.2f;
  Rng view_rng_;
};

/// BYOL (Grill et al., 2020): online and EMA-target networks, predictor
/// head, no negatives.
class Byol : public SslBaseline {
 public:
  Byol(int64_t in_channels, int64_t hidden_dim, int64_t num_blocks, Rng& rng);

  Tensor PretextLoss(const Tensor& x) override;
  Tensor EncodeSequence(const Tensor& x) override;
  Tensor EncodeInstance(const Tensor& x) override;
  int64_t representation_dim() const override {
    return online_encoder_.hidden_dim();
  }
  /// The EMA target network is excluded from optimization.
  std::vector<Tensor> TrainableParameters() override;
  std::string name() const override { return "BYOL"; }

 private:
  Tensor AugmentView(const Tensor& x);
  /// target <- m*target + (1-m)*online for every parameter pair.
  void UpdateTarget();

  DilatedConvEncoder online_encoder_;
  ProjectionMlp online_projector_;
  ProjectionMlp predictor_;
  DilatedConvEncoder target_encoder_;
  ProjectionMlp target_projector_;
  float momentum_ = 0.99f;
  bool target_initialized_ = false;
  Rng view_rng_;
};

}  // namespace timedrl::baselines

#endif  // TIMEDRL_BASELINES_CONTRASTIVE_CV_H_
