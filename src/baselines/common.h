// Shared infrastructure for baseline methods: interfaces, the generic SSL
// pre-training loop, linear probes, and loss-building-block helpers.

#ifndef TIMEDRL_BASELINES_COMMON_H_
#define TIMEDRL_BASELINES_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "core/pipelines.h"
#include "core/pretrainer.h"
#include "core/sources.h"
#include "metrics/metrics.h"
#include "data/time_series.h"
#include "data/windows.h"
#include "nn/layers.h"
#include "nn/module.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace timedrl::baselines {

/// A representation model over raw windows: timestamp-level [B, T, D] and
/// instance-level [B, D] encodings.
class RepresentationModel : public nn::Module {
 public:
  virtual Tensor EncodeSequence(const Tensor& x) = 0;
  virtual Tensor EncodeInstance(const Tensor& x) = 0;
  virtual int64_t representation_dim() const = 0;
};

/// A self-supervised baseline: adds the method's pretext loss.
class SslBaseline : public RepresentationModel {
 public:
  /// One pretext loss over a raw batch x [B, T, C]. Stochastic (views,
  /// augmentations) and called in training mode.
  virtual Tensor PretextLoss(const Tensor& x) = 0;

  /// Called once at the end of each pre-training epoch (e.g. to refresh
  /// cluster assignments or EMA targets). Default: no-op.
  virtual void OnEpochEnd() {}

  /// Parameters the optimizer should update. Defaults to all parameters;
  /// BYOL overrides this to exclude its EMA target network.
  virtual std::vector<Tensor> TrainableParameters() { return Parameters(); }

  virtual std::string name() const = 0;
};

/// Generic SSL pre-training loop (mirrors core::Pretrain). Returns per-epoch
/// mean losses; leaves the model in eval mode.
std::vector<double> TrainSslBaseline(SslBaseline* model,
                                     const core::UnlabeledWindowSource& source,
                                     const core::PretrainConfig& config,
                                     Rng& rng);

/// An end-to-end forecaster (Informer-lite, TCN): maps x [B, L, C] directly
/// to predictions [B, H, C].
class EndToEndForecaster : public nn::Module {
 public:
  virtual Tensor Forecast(const Tensor& x) = 0;
  virtual std::string name() const = 0;
};

/// Supervised training of an end-to-end forecaster.
void TrainEndToEnd(EndToEndForecaster* model,
                   const data::ForecastingWindows& train,
                   const core::DownstreamConfig& config, Rng& rng);

/// MSE/MAE of an end-to-end forecaster over a window set.
core::ForecastMetrics EvaluateEndToEnd(EndToEndForecaster* model,
                                       const data::ForecastingWindows& test);

/// Linear probe for forecasting on a frozen baseline representation,
/// following the TS2Vec protocol: the last timestamp's representation feeds
/// a linear layer producing the full horizon.
class BaselineForecastProbe {
 public:
  BaselineForecastProbe(RepresentationModel* model, int64_t horizon,
                        int64_t channels, Rng& rng);

  void Train(const data::ForecastingWindows& train,
             const core::DownstreamConfig& config, Rng& rng);
  core::ForecastMetrics Evaluate(const data::ForecastingWindows& test);
  Tensor Predict(const Tensor& x);

 private:
  RepresentationModel* model_;
  int64_t horizon_;
  int64_t channels_;
  std::unique_ptr<nn::Linear> head_;
};

/// Linear probe for classification on a frozen baseline instance embedding.
class BaselineClassifyProbe {
 public:
  BaselineClassifyProbe(RepresentationModel* model, int64_t num_classes,
                        Rng& rng);

  void Train(const data::ClassificationDataset& train,
             const core::DownstreamConfig& config, Rng& rng);
  core::ClassificationMetrics Evaluate(
      const data::ClassificationDataset& test);

 private:
  RepresentationModel* model_;
  int64_t num_classes_;
  std::unique_ptr<nn::Linear> head_;
};

// ---- Loss building blocks ---------------------------------------------------------

/// Rows scaled to unit L2 norm. x: [N, D].
Tensor L2NormalizeRows(const Tensor& x);

/// NT-Xent (SimCLR) over two aligned views a, b: [B, D]. Positives are
/// (a_i, b_i); negatives are every other row of the concatenated 2B batch.
Tensor NtXentLoss(const Tensor& a, const Tensor& b, float temperature);

/// Numerically-stable binary cross-entropy with logits against a constant
/// target (0 or 1), averaged over elements.
Tensor BceWithLogits(const Tensor& logits, float target);

/// Dual-view softmax contrast along `dim` pairs: given similarity logits
/// [N, N] whose diagonal holds positives, returns mean CE toward the
/// diagonal (one direction).
Tensor DiagonalContrast(const Tensor& logits);

/// Lloyd's k-means on row vectors. Returns per-row assignments and writes
/// centroids [k, D] to `centroids` if non-null.
std::vector<int64_t> KMeans(const std::vector<std::vector<float>>& rows,
                            int64_t k, int64_t iterations, Rng& rng,
                            std::vector<std::vector<float>>* centroids);

}  // namespace timedrl::baselines

#endif  // TIMEDRL_BASELINES_COMMON_H_
