// TS2Vec (Yue et al., AAAI 2022): hierarchical contrastive learning over
// overlapping random crops with timestamp masking.

#ifndef TIMEDRL_BASELINES_TS2VEC_H_
#define TIMEDRL_BASELINES_TS2VEC_H_

#include <string>

#include "baselines/common.h"
#include "baselines/conv_backbone.h"

namespace timedrl::baselines {

/// Compact TS2Vec: dilated conv encoder; two overlapping crops of each
/// window are encoded and contrasted on their overlap, instance-wise (across
/// the batch at each timestamp) and temporally (across time within each
/// instance), at multiple max-pooled scales. Random timestamp masking is
/// applied to the crop inputs (the augmentations TimeDRL's Table VI calls
/// out as TS2Vec's residual inductive bias).
class Ts2Vec : public SslBaseline {
 public:
  Ts2Vec(int64_t in_channels, int64_t hidden_dim, int64_t num_blocks,
         Rng& rng);

  Tensor PretextLoss(const Tensor& x) override;
  Tensor EncodeSequence(const Tensor& x) override;
  Tensor EncodeInstance(const Tensor& x) override;
  int64_t representation_dim() const override {
    return encoder_.hidden_dim();
  }
  std::string name() const override { return "TS2Vec"; }

 private:
  /// Instance + temporal contrast of two aligned views, summed over
  /// max-pooled scales.
  Tensor HierarchicalLoss(Tensor z1, Tensor z2);

  DilatedConvEncoder encoder_;
  float mask_ratio_ = 0.15f;
  Rng view_rng_;
};

}  // namespace timedrl::baselines

#endif  // TIMEDRL_BASELINES_TS2VEC_H_
