#include "baselines/conv_backbone.h"

#include <string>

#include "tensor/ops.h"
#include "util/check.h"

namespace timedrl::baselines {

DilatedConvEncoder::DilatedConvEncoder(int64_t in_channels,
                                       int64_t hidden_dim, int64_t num_blocks,
                                       Rng& rng)
    : hidden_dim_(hidden_dim), input_proj_(in_channels, hidden_dim, rng) {
  RegisterModule("input_proj", &input_proj_);
  int64_t dilation = 1;
  for (int64_t i = 0; i < num_blocks; ++i) {
    // Same-length dilated conv: padding = dilation for kernel 3.
    convs_.push_back(std::make_unique<nn::Conv1dLayer>(
        hidden_dim, hidden_dim, /*kernel=*/3, rng, /*stride=*/1,
        /*padding=*/dilation, dilation));
    RegisterModule("conv" + std::to_string(i), convs_.back().get());
    dilation *= 2;
  }
}

Tensor DilatedConvEncoder::Forward(const Tensor& x) {
  TIMEDRL_CHECK_EQ(x.dim(), 3) << "expects [B, T, C]";
  Tensor h = Transpose(input_proj_.Forward(x), 1, 2);  // [B, D, T]
  for (auto& conv : convs_) {
    h = Gelu(conv->Forward(h)) + h;  // residual dilated block
  }
  return Transpose(h, 1, 2);  // [B, T, D]
}

Tensor DilatedConvEncoder::PoolInstance(const Tensor& sequence_repr) {
  TIMEDRL_CHECK_EQ(sequence_repr.dim(), 3);
  return Max(sequence_repr, /*dim=*/1);
}

ProjectionMlp::ProjectionMlp(int64_t in_dim, int64_t hidden_dim,
                             int64_t out_dim, Rng& rng)
    : fc1_(in_dim, hidden_dim, rng), fc2_(hidden_dim, out_dim, rng) {
  RegisterModule("fc1", &fc1_);
  RegisterModule("fc2", &fc2_);
}

Tensor ProjectionMlp::Forward(const Tensor& x) {
  return fc2_.Forward(Relu(fc1_.Forward(x)));
}

}  // namespace timedrl::baselines
