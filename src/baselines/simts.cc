#include "baselines/simts.h"

#include "core/model.h"
#include "util/check.h"

namespace timedrl::baselines {

SimTs::SimTs(int64_t in_channels, int64_t hidden_dim, int64_t num_blocks,
             Rng& rng)
    : encoder_(in_channels, hidden_dim, num_blocks, rng),
      predictor_(hidden_dim, hidden_dim / 2, hidden_dim, rng) {
  RegisterModule("encoder", &encoder_);
  RegisterModule("predictor", &predictor_);
}

Tensor SimTs::EncodeSequence(const Tensor& x) { return encoder_.Forward(x); }

Tensor SimTs::EncodeInstance(const Tensor& x) {
  return encoder_.PoolInstance(encoder_.Forward(x));
}

Tensor SimTs::PretextLoss(const Tensor& x) {
  TIMEDRL_CHECK(training());
  const int64_t length = x.size(1);
  TIMEDRL_CHECK_GE(length, 4);
  const int64_t half = length / 2;

  Tensor history = Slice(x, 1, 0, half);
  Tensor future = Slice(x, 1, half, length - half);

  // Last history timestamp summarizes the past.
  Tensor z_history = encoder_.Forward(history);
  Tensor last =
      Reshape(Slice(z_history, 1, half - 1, 1), {x.size(0), representation_dim()});
  Tensor predicted = predictor_.Forward(last);

  // Pooled future representation, gradient-stopped (target branch).
  Tensor z_future = encoder_.Forward(future);
  Tensor target = Mean(z_future, {1}).Detach();

  return core::NegativeCosineSimilarity(predicted, target);
}

}  // namespace timedrl::baselines
