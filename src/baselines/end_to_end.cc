#include "baselines/end_to_end.h"

#include "tensor/ops.h"
#include "util/check.h"

namespace timedrl::baselines {

InformerLite::InformerLite(int64_t channels, int64_t horizon, int64_t d_model,
                           int64_t num_layers, Rng& rng)
    : channels_(channels),
      horizon_(horizon),
      d_model_(d_model),
      input_proj_(channels, d_model, rng),
      positional_(/*max_len=*/2048, d_model, rng),
      head_(d_model, horizon * channels, rng) {
  nn::TransformerConfig config;
  config.d_model = d_model;
  config.num_heads = 4;
  config.ff_dim = 2 * d_model;
  config.num_layers = num_layers;
  config.dropout = 0.1f;
  encoder_ = std::make_unique<nn::TransformerEncoder>(config, rng);
  RegisterModule("input_proj", &input_proj_);
  RegisterModule("positional", &positional_);
  RegisterModule("encoder", encoder_.get());
  RegisterModule("head", &head_);
}

Tensor InformerLite::Forecast(const Tensor& x) {
  TIMEDRL_CHECK_EQ(x.dim(), 3);
  TIMEDRL_CHECK_EQ(x.size(2), channels_);
  const int64_t batch = x.size(0);
  Tensor tokens = positional_.Forward(input_proj_.Forward(x));
  Tensor encoded = encoder_->Encode(tokens);
  Tensor last = Reshape(Slice(encoded, 1, encoded.size(1) - 1, 1),
                        {batch, d_model_});
  return Reshape(head_.Forward(last), {batch, horizon_, channels_});
}

TcnForecaster::TcnForecaster(int64_t channels, int64_t horizon,
                             int64_t d_model, int64_t num_blocks, Rng& rng)
    : channels_(channels),
      horizon_(horizon),
      d_model_(d_model),
      input_proj_(channels, d_model, rng),
      encoder_(d_model, num_blocks, /*kernel=*/3, /*dropout=*/0.1f, rng),
      head_(d_model, horizon * channels, rng) {
  RegisterModule("input_proj", &input_proj_);
  RegisterModule("encoder", &encoder_);
  RegisterModule("head", &head_);
}

Tensor TcnForecaster::Forecast(const Tensor& x) {
  TIMEDRL_CHECK_EQ(x.dim(), 3);
  TIMEDRL_CHECK_EQ(x.size(2), channels_);
  const int64_t batch = x.size(0);
  Tensor encoded = encoder_.Encode(input_proj_.Forward(x));
  Tensor last = Reshape(Slice(encoded, 1, encoded.size(1) - 1, 1),
                        {batch, d_model_});
  return Reshape(head_.Forward(last), {batch, horizon_, channels_});
}

}  // namespace timedrl::baselines
