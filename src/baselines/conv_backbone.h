// The dilated convolutional encoder shared by the conv-based SSL baselines
// (TS2Vec, SimTS, TNC, CoST, T-Loss, TS-TCC, SimCLR, BYOL, CCL, MHCCL).

#ifndef TIMEDRL_BASELINES_CONV_BACKBONE_H_
#define TIMEDRL_BASELINES_CONV_BACKBONE_H_

#include <memory>
#include <vector>

#include "nn/conv_encoders.h"
#include "nn/layers.h"
#include "nn/module.h"
#include "util/rng.h"

namespace timedrl::baselines {

/// Input projection + stack of residual dilated conv blocks (GELU), the
/// standard encoder design of TS2Vec and its successors.
/// Maps [B, T, C] -> per-timestep representations [B, T, D].
class DilatedConvEncoder : public nn::Module {
 public:
  DilatedConvEncoder(int64_t in_channels, int64_t hidden_dim,
                     int64_t num_blocks, Rng& rng);

  /// Timestamp-level representations [B, T, D].
  Tensor Forward(const Tensor& x);

  /// Instance-level representation: max-pool over time (TS2Vec protocol).
  Tensor PoolInstance(const Tensor& sequence_repr);

  int64_t hidden_dim() const { return hidden_dim_; }

 private:
  int64_t hidden_dim_;
  nn::Linear input_proj_;
  std::vector<std::unique_ptr<nn::Conv1dLayer>> convs_;
};

/// Two-layer projection MLP used by SimCLR/BYOL-style heads.
class ProjectionMlp : public nn::Module {
 public:
  ProjectionMlp(int64_t in_dim, int64_t hidden_dim, int64_t out_dim, Rng& rng);

  Tensor Forward(const Tensor& x);

 private:
  nn::Linear fc1_;
  nn::Linear fc2_;
};

}  // namespace timedrl::baselines

#endif  // TIMEDRL_BASELINES_CONV_BACKBONE_H_
