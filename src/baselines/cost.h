// CoST (Woo et al., ICLR 2022): contrastive learning of seasonal-trend
// representations with time-domain and frequency-domain losses.

#ifndef TIMEDRL_BASELINES_COST_H_
#define TIMEDRL_BASELINES_COST_H_

#include <string>

#include "baselines/common.h"
#include "baselines/conv_backbone.h"

namespace timedrl::baselines {

/// Compact CoST: two jittered/scaled views of each window are encoded; the
/// trend branch contrasts pooled instance embeddings across the batch
/// (NT-Xent), and the seasonal branch enforces consistency of the DFT
/// amplitude spectra of the timestamp representations. The DFT is realized
/// as a pair of constant cos/sin matrices so it stays differentiable.
class CoSt : public SslBaseline {
 public:
  CoSt(int64_t in_channels, int64_t hidden_dim, int64_t num_blocks, Rng& rng);

  Tensor PretextLoss(const Tensor& x) override;
  Tensor EncodeSequence(const Tensor& x) override;
  Tensor EncodeInstance(const Tensor& x) override;
  int64_t representation_dim() const override {
    return encoder_.hidden_dim();
  }
  std::string name() const override { return "CoST"; }

 private:
  /// DFT amplitude spectrum of [B, T, D] along time -> [B, D, T/2+1].
  Tensor AmplitudeSpectrum(const Tensor& z);

  DilatedConvEncoder encoder_;
  ProjectionMlp projector_;
  float temperature_ = 0.2f;
  float frequency_weight_ = 0.5f;
  Rng view_rng_;
};

}  // namespace timedrl::baselines

#endif  // TIMEDRL_BASELINES_COST_H_
