#include "baselines/tloss.h"

#include <algorithm>

#include "util/check.h"

namespace timedrl::baselines {
namespace {

/// Per-row subseries (same length, per-row starts), concatenated back into a
/// batch.
Tensor SliceRows(const Tensor& x, const std::vector<int64_t>& starts,
                 int64_t length) {
  std::vector<Tensor> rows;
  rows.reserve(starts.size());
  for (size_t b = 0; b < starts.size(); ++b) {
    rows.push_back(Slice(Slice(x, 0, static_cast<int64_t>(b), 1), 1,
                         starts[b], length));
  }
  return Concat(rows, 0);
}

}  // namespace

TLoss::TLoss(int64_t in_channels, int64_t hidden_dim, int64_t num_blocks,
             Rng& rng)
    : encoder_(in_channels, hidden_dim, num_blocks, rng),
      sample_rng_(rng.Fork()) {
  RegisterModule("encoder", &encoder_);
}

Tensor TLoss::EncodeSequence(const Tensor& x) { return encoder_.Forward(x); }

Tensor TLoss::EncodeInstance(const Tensor& x) {
  return encoder_.PoolInstance(encoder_.Forward(x));
}

Tensor TLoss::PretextLoss(const Tensor& x) {
  TIMEDRL_CHECK(training());
  const int64_t batch = x.size(0);
  const int64_t length = x.size(1);
  TIMEDRL_CHECK_GE(length, 8);

  // Anchor subseries: one length for the batch, independent starts per row.
  const int64_t anchor_length = sample_rng_.UniformInt(length / 2, length);
  std::vector<int64_t> anchor_starts(batch);
  for (int64_t b = 0; b < batch; ++b) {
    anchor_starts[b] = sample_rng_.UniformInt(0, length - anchor_length);
  }
  Tensor anchor = SliceRows(x, anchor_starts, anchor_length);

  // Positive: sub-subseries of each anchor.
  const int64_t positive_length = std::max<int64_t>(2, anchor_length / 2);
  std::vector<int64_t> positive_starts(batch);
  for (int64_t b = 0; b < batch; ++b) {
    positive_starts[b] = anchor_starts[b] + sample_rng_.UniformInt(
                             0, anchor_length - positive_length);
  }
  Tensor positive = SliceRows(x, positive_starts, positive_length);

  Tensor anchor_repr = encoder_.PoolInstance(encoder_.Forward(anchor));
  Tensor positive_repr = encoder_.PoolInstance(encoder_.Forward(positive));

  // -log s(a*p)
  Tensor loss = BceWithLogits(Sum(anchor_repr * positive_repr, {1}), 1.0f);

  // Negatives: subseries of *other* windows (rotate the batch).
  for (int64_t k = 1; k <= num_negatives_; ++k) {
    const int64_t shift = 1 + (k - 1) % std::max<int64_t>(1, batch - 1);
    Tensor rotated = Concat(
        {Slice(x, 0, shift, batch - shift), Slice(x, 0, 0, shift)}, 0);
    std::vector<int64_t> negative_starts(batch);
    for (int64_t b = 0; b < batch; ++b) {
      negative_starts[b] =
          sample_rng_.UniformInt(0, length - positive_length);
    }
    Tensor negative = SliceRows(rotated, negative_starts, positive_length);
    Tensor negative_repr = encoder_.PoolInstance(encoder_.Forward(negative));
    // -log s(-a*n)
    loss = loss + BceWithLogits(Sum(anchor_repr * negative_repr, {1}), 0.0f);
  }
  return loss;
}

}  // namespace timedrl::baselines
