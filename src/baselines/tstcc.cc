#include "baselines/tstcc.h"

#include "augment/augment.h"
#include "util/check.h"

namespace timedrl::baselines {

TsTcc::TsTcc(int64_t in_channels, int64_t hidden_dim, int64_t num_blocks,
             Rng& rng)
    : encoder_(in_channels, hidden_dim, num_blocks, rng),
      summarizer_(hidden_dim, hidden_dim, hidden_dim, rng),
      future_predictor_(hidden_dim, hidden_dim, rng),
      view_rng_(rng.Fork()) {
  RegisterModule("encoder", &encoder_);
  RegisterModule("summarizer", &summarizer_);
  RegisterModule("future_predictor", &future_predictor_);
}

Tensor TsTcc::EncodeSequence(const Tensor& x) { return encoder_.Forward(x); }

Tensor TsTcc::EncodeInstance(const Tensor& x) {
  return encoder_.PoolInstance(encoder_.Forward(x));
}

Tensor TsTcc::Context(const Tensor& sequence_repr) {
  const int64_t half = sequence_repr.size(1) / 2;
  Tensor first_half = Slice(sequence_repr, 1, 0, half);
  return summarizer_.Forward(Mean(first_half, {1}));
}

Tensor TsTcc::PretextLoss(const Tensor& x) {
  TIMEDRL_CHECK(training());
  const int64_t length = x.size(1);
  TIMEDRL_CHECK_GE(length, 4);
  const int64_t half = length / 2;

  Tensor strong = augment::Jitter(augment::Permutation(x, 4, view_rng_), 0.1f,
                                  view_rng_);
  Tensor weak =
      augment::Jitter(augment::Scaling(x, 0.2f, view_rng_), 0.05f, view_rng_);

  Tensor z_strong = encoder_.Forward(strong);
  Tensor z_weak = encoder_.Forward(weak);
  Tensor c_strong = Context(z_strong);
  Tensor c_weak = Context(z_weak);

  // Temporal contrasting: each view's context predicts the *other* view's
  // future summary; in-batch items are the negatives.
  Tensor future_strong = Mean(Slice(z_strong, 1, half, length - half), {1});
  Tensor future_weak = Mean(Slice(z_weak, 1, half, length - half), {1});
  Tensor predicted_from_strong = future_predictor_.Forward(c_strong);
  Tensor predicted_from_weak = future_predictor_.Forward(c_weak);
  Tensor temporal_1 = DiagonalContrast(
      MatMul(L2NormalizeRows(predicted_from_strong),
             Transpose(L2NormalizeRows(future_weak), 0, 1)) *
      (1.0f / temperature_));
  Tensor temporal_2 = DiagonalContrast(
      MatMul(L2NormalizeRows(predicted_from_weak),
             Transpose(L2NormalizeRows(future_strong), 0, 1)) *
      (1.0f / temperature_));

  // Contextual contrasting between the two views' contexts.
  Tensor contextual = NtXentLoss(c_strong, c_weak, temperature_);

  return 0.5f * (temporal_1 + temporal_2) + contextual;
}

}  // namespace timedrl::baselines
