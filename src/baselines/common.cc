#include "baselines/common.h"

#include <cmath>
#include <limits>

#include "data/loader.h"
#include "obs/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "optim/optimizer.h"
#include "util/check.h"

namespace timedrl::baselines {

std::vector<double> TrainSslBaseline(SslBaseline* model,
                                     const core::UnlabeledWindowSource& source,
                                     const core::PretrainConfig& config,
                                     Rng& rng) {
  TIMEDRL_CHECK(model != nullptr);
  TIMEDRL_CHECK_GT(source.size(), 0);
  const core::TrainConfig& train = config.train;
  optim::AdamW optimizer(model->TrainableParameters(), train.learning_rate,
                         train.weight_decay);
  data::DataLoaderOptions loader_options;
  loader_options.batch_size = train.batch_size;
  loader_options.shuffle = true;
  loader_options.prefetch_depth = train.prefetch_depth;
  data::DataLoader loader(source, loader_options, rng);
  static obs::Counter& skipped_small = obs::Registry::Global().GetCounter(
      "train.batches_skipped_small");
  bool warned_small = false;
  std::vector<double> history;
  model->Train();
  data::Batch batch;
  for (int64_t epoch = 0; epoch < train.epochs; ++epoch) {
    TIMEDRL_TRACE_SCOPE_CAT("baseline/epoch", "train");
    double total = 0.0;
    double grad_norm_sum = 0.0;
    int64_t steps = 0;
    loader.Reset();
    while (loader.Next(&batch)) {
      // Batch-normalized baseline heads need >= 2 samples, like the
      // pretrainer; dropped batches are counted, not lost silently.
      if (batch.size() < 2) {
        skipped_small.Increment();
        if (!warned_small) {
          TIMEDRL_LOG_WARNING
              << "dropping a batch of " << batch.size()
              << " sample(s) (counted in train.batches_skipped_small)";
          warned_small = true;
        }
        continue;
      }
      TIMEDRL_TRACE_SCOPE_CAT("baseline/step", "train");
      Tensor loss = model->PretextLoss(batch.x);
      optimizer.ZeroGrad();
      loss.Backward();
      const float grad_norm =
          optim::ClipGradNorm(optimizer.parameters(), train.clip_norm);
      optimizer.Step();
      total += loss.item();
      grad_norm_sum += grad_norm;
      if (train.observer != nullptr) {
        obs::StepStats step_stats;
        step_stats.epoch = epoch;
        step_stats.step = steps;
        step_stats.batch_size = batch.size();
        step_stats.loss = loss.item();
        step_stats.grad_norm = grad_norm;
        step_stats.learning_rate = train.learning_rate;
        train.observer->OnStep(step_stats);
      }
      ++steps;
    }
    TIMEDRL_CHECK_GT(steps, 0);
    model->OnEpochEnd();
    history.push_back(total / steps);
    if (train.observer != nullptr) {
      obs::EpochStats epoch_stats;
      epoch_stats.phase = model->name();
      epoch_stats.loss_label = "loss";
      epoch_stats.epoch = epoch;
      epoch_stats.num_epochs = train.epochs;
      epoch_stats.steps = steps;
      epoch_stats.loss = history.back();
      epoch_stats.grad_norm = grad_norm_sum / steps;
      epoch_stats.learning_rate = train.learning_rate;
      train.observer->OnEpochEnd(epoch_stats);
    }
  }
  model->Eval();
  return history;
}

void TrainEndToEnd(EndToEndForecaster* model,
                   const data::ForecastingWindows& train,
                   const core::DownstreamConfig& config, Rng& rng) {
  const core::TrainConfig& tc = config.train;
  optim::AdamW optimizer(model->Parameters(), tc.learning_rate,
                         tc.weight_decay);
  data::ForecastingBatchSource batch_source(&train);
  data::DataLoaderOptions loader_options;
  loader_options.batch_size = tc.batch_size;
  loader_options.shuffle = true;
  loader_options.prefetch_depth = tc.prefetch_depth;
  data::DataLoader loader(batch_source, loader_options, rng);
  model->Train();
  data::Batch batch;
  for (int64_t epoch = 0; epoch < tc.epochs; ++epoch) {
    loader.Reset();
    while (loader.Next(&batch)) {
      Tensor loss = MseLoss(model->Forecast(batch.x), batch.y);
      optimizer.ZeroGrad();
      loss.Backward();
      optim::ClipGradNorm(optimizer.parameters(), tc.clip_norm);
      optimizer.Step();
    }
  }
  model->Eval();
}

core::ForecastMetrics EvaluateEndToEnd(EndToEndForecaster* model,
                                       const data::ForecastingWindows& test) {
  model->Eval();
  NoGradGuard guard;
  double squared = 0.0;
  double absolute = 0.0;
  int64_t count = 0;
  Rng throwaway(0);
  data::ForecastingBatchSource batch_source(&test);
  data::DataLoaderOptions loader_options;
  loader_options.batch_size = 64;
  data::DataLoader loader(batch_source, loader_options, throwaway);
  data::Batch batch;
  while (loader.Next(&batch)) {
    Tensor prediction = model->Forecast(batch.x);
    const std::vector<float>& p = prediction.data();
    const std::vector<float>& t = batch.y.data();
    for (size_t i = 0; i < p.size(); ++i) {
      const double d = double{p[i]} - double{t[i]};
      squared += d * d;
      absolute += std::abs(d);
    }
    count += static_cast<int64_t>(p.size());
  }
  TIMEDRL_CHECK_GT(count, 0);
  return {squared / count, absolute / count};
}

// ---- Probes ------------------------------------------------------------------------

BaselineForecastProbe::BaselineForecastProbe(RepresentationModel* model,
                                             int64_t horizon, int64_t channels,
                                             Rng& rng)
    : model_(model), horizon_(horizon), channels_(channels) {
  head_ = std::make_unique<nn::Linear>(model->representation_dim(),
                                       horizon * channels, rng);
}

Tensor BaselineForecastProbe::Predict(const Tensor& x) {
  Tensor features;
  {
    NoGradGuard guard;
    Tensor sequence = model_->EncodeSequence(x);  // [B, T, D]
    // TS2Vec linear-eval protocol: forecast from the final timestamp's
    // representation.
    features = Reshape(Slice(sequence, 1, sequence.size(1) - 1, 1),
                       {x.size(0), model_->representation_dim()});
  }
  return Reshape(head_->Forward(features), {x.size(0), horizon_, channels_});
}

void BaselineForecastProbe::Train(const data::ForecastingWindows& train,
                                  const core::DownstreamConfig& config,
                                  Rng& rng) {
  const core::TrainConfig& tc = config.train;
  optim::AdamW optimizer(head_->Parameters(), tc.learning_rate,
                         tc.weight_decay);
  data::ForecastingBatchSource batch_source(&train);
  data::DataLoaderOptions loader_options;
  loader_options.batch_size = tc.batch_size;
  loader_options.shuffle = true;
  loader_options.prefetch_depth = tc.prefetch_depth;
  data::DataLoader loader(batch_source, loader_options, rng);
  model_->Eval();
  head_->Train();
  data::Batch batch;
  for (int64_t epoch = 0; epoch < tc.epochs; ++epoch) {
    loader.Reset();
    while (loader.Next(&batch)) {
      Tensor loss = MseLoss(Predict(batch.x), batch.y);
      optimizer.ZeroGrad();
      loss.Backward();
      optimizer.Step();
    }
  }
  head_->Eval();
}

core::ForecastMetrics BaselineForecastProbe::Evaluate(
    const data::ForecastingWindows& test) {
  model_->Eval();
  head_->Eval();
  NoGradGuard guard;
  double squared = 0.0;
  double absolute = 0.0;
  int64_t count = 0;
  Rng throwaway(0);
  data::ForecastingBatchSource batch_source(&test);
  data::DataLoaderOptions loader_options;
  loader_options.batch_size = 64;
  data::DataLoader loader(batch_source, loader_options, throwaway);
  data::Batch batch;
  while (loader.Next(&batch)) {
    Tensor prediction = Predict(batch.x);
    const std::vector<float>& p = prediction.data();
    const std::vector<float>& t = batch.y.data();
    for (size_t i = 0; i < p.size(); ++i) {
      const double d = double{p[i]} - double{t[i]};
      squared += d * d;
      absolute += std::abs(d);
    }
    count += static_cast<int64_t>(p.size());
  }
  TIMEDRL_CHECK_GT(count, 0);
  return {squared / count, absolute / count};
}

BaselineClassifyProbe::BaselineClassifyProbe(RepresentationModel* model,
                                             int64_t num_classes, Rng& rng)
    : model_(model), num_classes_(num_classes) {
  head_ = std::make_unique<nn::Linear>(model->representation_dim(),
                                       num_classes, rng);
}

void BaselineClassifyProbe::Train(const data::ClassificationDataset& train,
                                  const core::DownstreamConfig& config,
                                  Rng& rng) {
  const core::TrainConfig& tc = config.train;
  optim::AdamW optimizer(head_->Parameters(), tc.learning_rate,
                         tc.weight_decay);
  data::ClassificationBatchSource batch_source(&train);
  data::DataLoaderOptions loader_options;
  loader_options.batch_size = tc.batch_size;
  loader_options.shuffle = true;
  loader_options.prefetch_depth = tc.prefetch_depth;
  data::DataLoader loader(batch_source, loader_options, rng);
  model_->Eval();
  head_->Train();
  data::Batch batch;
  for (int64_t epoch = 0; epoch < tc.epochs; ++epoch) {
    loader.Reset();
    while (loader.Next(&batch)) {
      Tensor features;
      {
        NoGradGuard guard;
        features = model_->EncodeInstance(batch.x);
      }
      Tensor loss = CrossEntropy(head_->Forward(features), batch.labels);
      optimizer.ZeroGrad();
      loss.Backward();
      optimizer.Step();
    }
  }
  head_->Eval();
}

core::ClassificationMetrics BaselineClassifyProbe::Evaluate(
    const data::ClassificationDataset& test) {
  model_->Eval();
  head_->Eval();
  NoGradGuard guard;
  std::vector<int64_t> predictions;
  Rng throwaway(0);
  data::ClassificationBatchSource batch_source(&test);
  data::DataLoaderOptions loader_options;
  loader_options.batch_size = 64;
  data::DataLoader loader(batch_source, loader_options, throwaway);
  data::Batch batch;
  while (loader.Next(&batch)) {
    std::vector<int64_t> batch_predictions =
        ArgMax(head_->Forward(model_->EncodeInstance(batch.x)), 1);
    predictions.insert(predictions.end(), batch_predictions.begin(),
                       batch_predictions.end());
  }
  core::ClassificationMetrics result;
  result.accuracy = metrics::Accuracy(predictions, test.labels);
  result.macro_f1 = metrics::MacroF1(predictions, test.labels, num_classes_);
  result.kappa = metrics::CohenKappa(predictions, test.labels, num_classes_);
  return result;
}

// ---- Loss helpers --------------------------------------------------------------------

Tensor L2NormalizeRows(const Tensor& x) {
  TIMEDRL_CHECK_EQ(x.dim(), 2);
  Tensor norm = Sqrt(Sum(x * x, {1}, /*keepdim=*/true) + 1e-8f);
  return x / norm;
}

Tensor DiagonalContrast(const Tensor& logits) {
  TIMEDRL_CHECK_EQ(logits.dim(), 2);
  TIMEDRL_CHECK_EQ(logits.size(0), logits.size(1));
  std::vector<int64_t> labels(logits.size(0));
  for (size_t i = 0; i < labels.size(); ++i) labels[i] = i;
  return CrossEntropy(logits, labels);
}

Tensor NtXentLoss(const Tensor& a, const Tensor& b, float temperature) {
  TIMEDRL_CHECK(a.shape() == b.shape());
  const int64_t batch = a.size(0);
  Tensor z = L2NormalizeRows(Concat({a, b}, 0));  // [2B, D]
  Tensor sims = MatMul(z, Transpose(z, 0, 1)) * (1.0f / temperature);

  // Remove self-similarity from the denominator.
  std::vector<float> eye(4 * batch * batch, 0.0f);
  for (int64_t i = 0; i < 2 * batch; ++i) eye[i * 2 * batch + i] = 1.0f;
  sims = MaskedFill(sims, Tensor::FromVector({2 * batch, 2 * batch}, eye),
                    -1e9f);

  std::vector<int64_t> labels(2 * batch);
  for (int64_t i = 0; i < batch; ++i) {
    labels[i] = batch + i;  // positive of a_i is b_i
    labels[batch + i] = i;
  }
  return CrossEntropy(sims, labels);
}

Tensor BceWithLogits(const Tensor& logits, float target) {
  // softplus(x) = max(x, 0) + log(1 + exp(-|x|)) is stable for both signs.
  Tensor softplus = ClampMin(logits, 0.0f) + Log(Exp(Neg(Abs(logits))) + 1.0f);
  // BCE(x, y) = softplus(x) - y*x for constant y.
  return Mean(softplus - target * logits);
}

std::vector<int64_t> KMeans(const std::vector<std::vector<float>>& rows,
                            int64_t k, int64_t iterations, Rng& rng,
                            std::vector<std::vector<float>>* centroids_out) {
  TIMEDRL_CHECK(!rows.empty());
  TIMEDRL_CHECK_GT(k, 0);
  const int64_t n = static_cast<int64_t>(rows.size());
  const int64_t dim = static_cast<int64_t>(rows[0].size());
  k = std::min(k, n);

  // Init centroids from distinct random rows.
  std::vector<int64_t> seeds = rng.Permutation(n);
  std::vector<std::vector<float>> centroids(k);
  for (int64_t c = 0; c < k; ++c) centroids[c] = rows[seeds[c]];

  std::vector<int64_t> assignment(n, 0);
  for (int64_t iteration = 0; iteration < iterations; ++iteration) {
    // Assign.
    for (int64_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::infinity();
      for (int64_t c = 0; c < k; ++c) {
        double distance = 0.0;
        for (int64_t d = 0; d < dim; ++d) {
          const double diff = double{rows[i][d]} - double{centroids[c][d]};
          distance += diff * diff;
        }
        if (distance < best) {
          best = distance;
          assignment[i] = c;
        }
      }
    }
    // Update.
    std::vector<std::vector<double>> sums(k, std::vector<double>(dim, 0.0));
    std::vector<int64_t> counts(k, 0);
    for (int64_t i = 0; i < n; ++i) {
      ++counts[assignment[i]];
      for (int64_t d = 0; d < dim; ++d) sums[assignment[i]][d] += rows[i][d];
    }
    for (int64_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        centroids[c] = rows[rng.UniformInt(0, n - 1)];  // re-seed empty
        continue;
      }
      for (int64_t d = 0; d < dim; ++d) {
        centroids[c][d] = static_cast<float>(sums[c][d] / counts[c]);
      }
    }
  }
  if (centroids_out != nullptr) *centroids_out = std::move(centroids);
  return assignment;
}

}  // namespace timedrl::baselines
