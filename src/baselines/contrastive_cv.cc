#include "baselines/contrastive_cv.h"

#include "augment/augment.h"
#include "core/model.h"
#include "util/check.h"

namespace timedrl::baselines {

// ---- SimCLR ------------------------------------------------------------------------

SimClr::SimClr(int64_t in_channels, int64_t hidden_dim, int64_t num_blocks,
               Rng& rng)
    : encoder_(in_channels, hidden_dim, num_blocks, rng),
      projector_(hidden_dim, hidden_dim, hidden_dim / 2, rng),
      view_rng_(rng.Fork()) {
  RegisterModule("encoder", &encoder_);
  RegisterModule("projector", &projector_);
}

Tensor SimClr::EncodeSequence(const Tensor& x) { return encoder_.Forward(x); }

Tensor SimClr::EncodeInstance(const Tensor& x) {
  return encoder_.PoolInstance(encoder_.Forward(x));
}

Tensor SimClr::AugmentView(const Tensor& x) {
  // The classic strong recipe transplanted to time-series: jitter + scaling
  // + segment permutation.
  Tensor view = augment::Jitter(x, 0.1f, view_rng_);
  view = augment::Scaling(view, 0.3f, view_rng_);
  return augment::Permutation(view, 4, view_rng_);
}

Tensor SimClr::PretextLoss(const Tensor& x) {
  TIMEDRL_CHECK(training());
  Tensor z1 = projector_.Forward(EncodeInstance(AugmentView(x)));
  Tensor z2 = projector_.Forward(EncodeInstance(AugmentView(x)));
  return NtXentLoss(z1, z2, temperature_);
}

// ---- BYOL --------------------------------------------------------------------------

Byol::Byol(int64_t in_channels, int64_t hidden_dim, int64_t num_blocks,
           Rng& rng)
    : online_encoder_(in_channels, hidden_dim, num_blocks, rng),
      online_projector_(hidden_dim, hidden_dim, hidden_dim / 2, rng),
      predictor_(hidden_dim / 2, hidden_dim, hidden_dim / 2, rng),
      target_encoder_(in_channels, hidden_dim, num_blocks, rng),
      target_projector_(hidden_dim, hidden_dim, hidden_dim / 2, rng),
      view_rng_(rng.Fork()) {
  RegisterModule("online_encoder", &online_encoder_);
  RegisterModule("online_projector", &online_projector_);
  RegisterModule("predictor", &predictor_);
  RegisterModule("target_encoder", &target_encoder_);
  RegisterModule("target_projector", &target_projector_);
}

Tensor Byol::EncodeSequence(const Tensor& x) {
  return online_encoder_.Forward(x);
}

Tensor Byol::EncodeInstance(const Tensor& x) {
  return online_encoder_.PoolInstance(online_encoder_.Forward(x));
}

std::vector<Tensor> Byol::TrainableParameters() {
  std::vector<Tensor> parameters = online_encoder_.Parameters();
  std::vector<Tensor> projector_parameters = online_projector_.Parameters();
  std::vector<Tensor> predictor_parameters = predictor_.Parameters();
  parameters.insert(parameters.end(), projector_parameters.begin(),
                    projector_parameters.end());
  parameters.insert(parameters.end(), predictor_parameters.begin(),
                    predictor_parameters.end());
  return parameters;
}

Tensor Byol::AugmentView(const Tensor& x) {
  Tensor view = augment::Jitter(x, 0.1f, view_rng_);
  return augment::Scaling(view, 0.3f, view_rng_);
}

void Byol::UpdateTarget() {
  auto blend = [this](nn::Module& online, nn::Module& target) {
    std::vector<Tensor> online_parameters = online.Parameters();
    std::vector<Tensor> target_parameters = target.Parameters();
    TIMEDRL_CHECK_EQ(online_parameters.size(), target_parameters.size());
    const float m = target_initialized_ ? momentum_ : 0.0f;
    for (size_t i = 0; i < online_parameters.size(); ++i) {
      std::vector<float>& target_values = target_parameters[i].data();
      const std::vector<float>& online_values = online_parameters[i].data();
      for (size_t j = 0; j < target_values.size(); ++j) {
        target_values[j] = m * target_values[j] + (1.0f - m) * online_values[j];
      }
    }
  };
  blend(online_encoder_, target_encoder_);
  blend(online_projector_, target_projector_);
  target_initialized_ = true;
}

Tensor Byol::PretextLoss(const Tensor& x) {
  TIMEDRL_CHECK(training());
  // EMA tracks the online network with a one-step lag (updated before the
  // loss is built, i.e. after the previous optimizer step has landed).
  UpdateTarget();

  Tensor v1 = AugmentView(x);
  Tensor v2 = AugmentView(x);

  auto online_branch = [this](const Tensor& view) {
    Tensor pooled = online_encoder_.PoolInstance(online_encoder_.Forward(view));
    return predictor_.Forward(online_projector_.Forward(pooled));
  };
  Tensor target1;
  Tensor target2;
  {
    NoGradGuard guard;
    target1 = target_projector_.Forward(
        target_encoder_.PoolInstance(target_encoder_.Forward(v1)));
    target2 = target_projector_.Forward(
        target_encoder_.PoolInstance(target_encoder_.Forward(v2)));
  }
  return core::NegativeCosineSimilarity(online_branch(v1), target2) +
         core::NegativeCosineSimilarity(online_branch(v2), target1);
}

}  // namespace timedrl::baselines
