#include "baselines/clustering.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace timedrl::baselines {

Ccl::Ccl(int64_t in_channels, int64_t hidden_dim, int64_t num_blocks,
         int64_t num_clusters, Rng& rng)
    : encoder_(in_channels, hidden_dim, num_blocks, rng),
      num_clusters_(num_clusters),
      cluster_rng_(rng.Fork()) {
  RegisterModule("encoder", &encoder_);
}

Tensor Ccl::EncodeSequence(const Tensor& x) { return encoder_.Forward(x); }

Tensor Ccl::EncodeInstance(const Tensor& x) {
  return encoder_.PoolInstance(encoder_.Forward(x));
}

Tensor Ccl::ClusterLoss(const Tensor& embeddings, int64_t num_clusters,
                        float outlier_fraction) {
  const int64_t batch = embeddings.size(0);
  const int64_t dim = embeddings.size(1);
  const int64_t k = std::min<int64_t>(num_clusters, batch / 2);
  TIMEDRL_CHECK_GE(k, 1);

  // k-means on the detached embeddings gives pseudo-labels + prototypes.
  std::vector<std::vector<float>> rows(batch, std::vector<float>(dim));
  const std::vector<float>& values = embeddings.data();
  for (int64_t b = 0; b < batch; ++b) {
    std::copy(values.begin() + b * dim, values.begin() + (b + 1) * dim,
              rows[b].begin());
  }
  std::vector<std::vector<float>> centroids;
  std::vector<int64_t> assignment =
      KMeans(rows, k, /*iterations=*/8, cluster_rng_, &centroids);

  // Optionally drop the farthest `outlier_fraction` of rows.
  std::vector<int64_t> keep;
  if (outlier_fraction > 0.0f) {
    std::vector<std::pair<double, int64_t>> by_distance;
    by_distance.reserve(batch);
    for (int64_t b = 0; b < batch; ++b) {
      double distance = 0.0;
      for (int64_t d = 0; d < dim; ++d) {
        const double diff =
            double{rows[b][d]} - double{centroids[assignment[b]][d]};
        distance += diff * diff;
      }
      by_distance.emplace_back(distance, b);
    }
    std::sort(by_distance.begin(), by_distance.end());
    const int64_t keep_count = std::max<int64_t>(
        2, batch - static_cast<int64_t>(outlier_fraction * batch));
    for (int64_t i = 0; i < keep_count; ++i) {
      keep.push_back(by_distance[i].second);
    }
    std::sort(keep.begin(), keep.end());
  } else {
    keep.resize(batch);
    for (int64_t b = 0; b < batch; ++b) keep[b] = b;
  }

  // Prototype logits: cosine similarity to the (constant) centroids.
  std::vector<float> centroid_values;
  centroid_values.reserve(k * dim);
  for (const auto& centroid : centroids) {
    centroid_values.insert(centroid_values.end(), centroid.begin(),
                           centroid.end());
  }
  Tensor prototypes = L2NormalizeRows(
      Tensor::FromVector({k, dim}, std::move(centroid_values)));

  std::vector<Tensor> kept_rows;
  std::vector<int64_t> kept_labels;
  kept_rows.reserve(keep.size());
  for (int64_t b : keep) {
    kept_rows.push_back(Slice(embeddings, 0, b, 1));
    kept_labels.push_back(assignment[b]);
  }
  Tensor kept = L2NormalizeRows(
      Reshape(Concat(kept_rows, 0), {static_cast<int64_t>(keep.size()), dim}));
  Tensor logits =
      MatMul(kept, Transpose(prototypes, 0, 1)) * (1.0f / temperature_);
  return CrossEntropy(logits, kept_labels);
}

Tensor Ccl::PretextLoss(const Tensor& x) {
  TIMEDRL_CHECK(training());
  Tensor embeddings = EncodeInstance(x);
  return ClusterLoss(embeddings, num_clusters_, /*outlier_fraction=*/0.0f);
}

MhcclLite::MhcclLite(int64_t in_channels, int64_t hidden_dim,
                     int64_t num_blocks, int64_t num_clusters, Rng& rng)
    : Ccl(in_channels, hidden_dim, num_blocks, num_clusters, rng) {}

Tensor MhcclLite::PretextLoss(const Tensor& x) {
  TIMEDRL_CHECK(training());
  Tensor embeddings = EncodeInstance(x);
  // Two granularity levels with upward masking of outlier members — the
  // "masked hierarchical" mechanism at bench scale.
  Tensor fine =
      ClusterLoss(embeddings, 2 * num_clusters_, /*outlier_fraction=*/0.1f);
  Tensor coarse =
      ClusterLoss(embeddings, num_clusters_, /*outlier_fraction=*/0.1f);
  return 0.5f * (fine + coarse);
}

}  // namespace timedrl::baselines
