// TNC (Tonekaboni et al., 2021): temporal neighborhood coding with a learned
// discriminator and Positive-Unlabeled weighting.

#ifndef TIMEDRL_BASELINES_TNC_H_
#define TIMEDRL_BASELINES_TNC_H_

#include <string>

#include "baselines/common.h"
#include "baselines/conv_backbone.h"

namespace timedrl::baselines {

/// Compact TNC: for each window, sample an anchor sub-window, a temporal
/// neighbor, and a distant sub-window (from another batch item). A
/// discriminator MLP is trained to tell neighbors from non-neighbors; PU
/// weighting (w) treats distant samples as unlabeled rather than negative.
/// (The paper selects the neighborhood radius with an ADF test; on fixed
/// windows we use a fixed radius, which plays the same role.)
class Tnc : public SslBaseline {
 public:
  Tnc(int64_t in_channels, int64_t hidden_dim, int64_t num_blocks, Rng& rng);

  Tensor PretextLoss(const Tensor& x) override;
  Tensor EncodeSequence(const Tensor& x) override;
  Tensor EncodeInstance(const Tensor& x) override;
  int64_t representation_dim() const override {
    return encoder_.hidden_dim();
  }
  std::string name() const override { return "TNC"; }

 private:
  /// Pooled representation of sub-windows starting at `starts`.
  Tensor EncodeSubwindows(const Tensor& x, const std::vector<int64_t>& starts,
                          int64_t sub_length);

  DilatedConvEncoder encoder_;
  ProjectionMlp discriminator_;  // on concatenated pair embeddings
  float pu_weight_ = 0.05f;
  Rng sample_rng_;
};

}  // namespace timedrl::baselines

#endif  // TIMEDRL_BASELINES_TNC_H_
