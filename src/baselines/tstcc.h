// TS-TCC (Eldele et al., IJCAI 2021): temporal and contextual contrasting
// over strong/weak augmented views.

#ifndef TIMEDRL_BASELINES_TSTCC_H_
#define TIMEDRL_BASELINES_TSTCC_H_

#include <string>

#include "baselines/common.h"
#include "baselines/conv_backbone.h"

namespace timedrl::baselines {

/// Compact TS-TCC: a strong view (permutation + jitter) and a weak view
/// (scaling + jitter) are encoded; a context vector summarizing each view's
/// first half cross-predicts the other view's second-half latents (temporal
/// contrasting, with in-batch negatives), and the two context vectors are
/// aligned with NT-Xent (contextual contrasting).
class TsTcc : public SslBaseline {
 public:
  TsTcc(int64_t in_channels, int64_t hidden_dim, int64_t num_blocks, Rng& rng);

  Tensor PretextLoss(const Tensor& x) override;
  Tensor EncodeSequence(const Tensor& x) override;
  Tensor EncodeInstance(const Tensor& x) override;
  int64_t representation_dim() const override {
    return encoder_.hidden_dim();
  }
  std::string name() const override { return "TS-TCC"; }

 private:
  /// Context of a view: mean of first-half latents through the summarizer.
  Tensor Context(const Tensor& sequence_repr);

  DilatedConvEncoder encoder_;
  ProjectionMlp summarizer_;
  nn::Linear future_predictor_;
  float temperature_ = 0.2f;
  Rng view_rng_;
};

}  // namespace timedrl::baselines

#endif  // TIMEDRL_BASELINES_TSTCC_H_
