// Typed environment-variable parsing with defaults and diagnostics.
//
// Every TIMEDRL_* toggle goes through this one reader instead of scattered
// std::getenv + hand-rolled strtol calls. A malformed or out-of-range value
// never silently half-applies: the fallback wins and a warning naming the
// variable, the rejected text, and the accepted form goes to the log.
//
// Header-only on purpose: timedrl_obs sits *below* timedrl_util in the link
// order (util links obs, not the other way around), yet obs/trace.cc needs
// the same parsing for TIMEDRL_TRACE / TIMEDRL_TRACE_OUT. Inline functions
// with no util .cc dependency keep the layering intact.

#ifndef TIMEDRL_UTIL_ENV_H_
#define TIMEDRL_UTIL_ENV_H_

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <string>

#include "obs/logging.h"

namespace timedrl::util {

/// Static-only reader for TIMEDRL_* environment variables.
struct Env {
  /// Raw value, or `fallback` when the variable is unset or empty.
  static std::string GetString(const char* name, const std::string& fallback) {
    const char* value = std::getenv(name);
    if (value == nullptr || value[0] == '\0') return fallback;
    return value;
  }

  /// Base-10 integer. Unset/empty keeps `fallback`; a value that does not
  /// parse in full or falls outside [min_value, max_value] keeps `fallback`
  /// with a warning.
  static int64_t GetInt(
      const char* name, int64_t fallback,
      int64_t min_value = std::numeric_limits<int64_t>::min(),
      int64_t max_value = std::numeric_limits<int64_t>::max()) {
    const char* value = std::getenv(name);
    if (value == nullptr || value[0] == '\0') return fallback;
    char* end = nullptr;
    errno = 0;
    const long long parsed = std::strtoll(value, &end, 10);
    if (end == value || *end != '\0' || errno == ERANGE) {
      TIMEDRL_LOG_WARNING << name << "=\"" << value
                          << "\" is not an integer; using " << fallback;
      return fallback;
    }
    if (parsed < min_value || parsed > max_value) {
      TIMEDRL_LOG_WARNING << name << "=" << parsed << " is outside ["
                          << min_value << ", " << max_value << "]; using "
                          << fallback;
      return fallback;
    }
    return static_cast<int64_t>(parsed);
  }

  /// Boolean flag. Unset/empty keeps `fallback`; "0"/"false"/"off"/"no" are
  /// false, "1"/"true"/"on"/"yes" are true (case-sensitive lowercase, the
  /// forms the README documents); anything else keeps `fallback` with a
  /// warning.
  static bool GetBool(const char* name, bool fallback) {
    const char* value = std::getenv(name);
    if (value == nullptr || value[0] == '\0') return fallback;
    const std::string text(value);
    if (text == "0" || text == "false" || text == "off" || text == "no") {
      return false;
    }
    if (text == "1" || text == "true" || text == "on" || text == "yes") {
      return true;
    }
    TIMEDRL_LOG_WARNING << name << "=\"" << text
                        << "\" is not a boolean (use 0/1/true/false); using "
                        << (fallback ? "true" : "false");
    return fallback;
  }

  /// Floating-point value. Unset/empty keeps `fallback`; a value that does
  /// not parse in full keeps `fallback` with a warning.
  static double GetDouble(const char* name, double fallback) {
    const char* value = std::getenv(name);
    if (value == nullptr || value[0] == '\0') return fallback;
    char* end = nullptr;
    errno = 0;
    const double parsed = std::strtod(value, &end);
    if (end == value || *end != '\0' || errno == ERANGE) {
      TIMEDRL_LOG_WARNING << name << "=\"" << value
                          << "\" is not a number; using " << fallback;
      return fallback;
    }
    return parsed;
  }
};

}  // namespace timedrl::util

#endif  // TIMEDRL_UTIL_ENV_H_
