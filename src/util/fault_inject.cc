#include "util/fault_inject.h"

#include "util/env.h"

#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>
#include <vector>

#include "obs/logging.h"

namespace timedrl::fault {
namespace {

struct Rule {
  std::string point;
  uint64_t start = 0;       // 1-based occurrence index
  uint64_t count = 1;       // number of consecutive firings
  bool open_ended = false;  // "x*": fire forever from start
};

struct State {
  std::mutex mutex;
  std::vector<Rule> rules;
  std::map<std::string, uint64_t, std::less<>> counters;
  std::map<std::string, std::string, std::less<>> registry;
};

std::atomic<bool> g_enabled{false};

// Every production fault::At call site must have a row here; the CLI's
// `fault-points` verb prints this table and ParseSpec warns about names
// missing from it.
constexpr struct {
  const char* name;
  const char* description;
} kBuiltinPoints[] = {
    {"pretrain_nan_loss",
     "flip the pre-training loss to NaN before the anomaly guard sees it"},
    {"truncate_checkpoint",
     "truncate the checkpoint payload before its atomic rename (torn write)"},
    {"serve_slow_encode",
     "sleep 50ms in the micro-batcher dispatcher before encoding a batch"},
    {"serve_nan_embedding",
     "poison a served batch's embeddings with NaN after the encode"},
    {"serve_reload_corrupt",
     "make the hot-reload canary non-finite so the model swap is rejected"},
};

State& GetState() {
  static State* state = [] {
    State* s = new State();
    for (const auto& point : kBuiltinPoints) {
      s->registry.emplace(point.name, point.description);
    }
    return s;
  }();
  return *state;
}

/// Parses a spec string. `state.mutex` must be held by the caller (the
/// registry is consulted for unknown-name warnings).
std::vector<Rule> ParseSpec(const State& state, const std::string& spec) {
  std::vector<Rule> rules;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) continue;

    const size_t at = entry.find('@');
    Rule rule;
    if (at == std::string::npos) {
      // Bare point name: fire on the first call.
      rule.point = entry;
      rule.start = 1;
    } else {
      rule.point = entry.substr(0, at);
      std::string occurrence = entry.substr(at + 1);
      const size_t x = occurrence.find('x');
      std::string count_text;
      if (x != std::string::npos) {
        count_text = occurrence.substr(x + 1);
        occurrence = occurrence.substr(0, x);
      }
      rule.start = std::strtoull(occurrence.c_str(), nullptr, 10);
      if (count_text == "*") {
        rule.open_ended = true;
      } else if (!count_text.empty()) {
        rule.count = std::strtoull(count_text.c_str(), nullptr, 10);
      }
    }
    if (rule.point.empty() || rule.start == 0) {
      TIMEDRL_LOG_ERROR << "ignoring malformed fault-inject entry '" << entry
                        << "'";
      continue;
    }
    if (state.registry.find(rule.point) == state.registry.end()) {
      TIMEDRL_LOG_WARNING
          << "fault-inject point '" << rule.point
          << "' is not registered (typo?); run `timedrl fault-points` for "
             "the known names. The rule is installed anyway.";
    }
    rules.push_back(std::move(rule));
  }
  return rules;
}

void EnsureEnvParsed() {
  static std::once_flag once;
  std::call_once(once, [] {
    const std::string spec = util::Env::GetString("TIMEDRL_FAULT_INJECT", "");
    if (spec.empty()) return;
    State& state = GetState();
    std::lock_guard<std::mutex> lock(state.mutex);
    state.rules = ParseSpec(state, spec);
    g_enabled.store(!state.rules.empty(), std::memory_order_release);
  });
}

}  // namespace

bool Enabled() {
  EnsureEnvParsed();
  return g_enabled.load(std::memory_order_acquire);
}

bool At(std::string_view point) {
  if (!Enabled()) return false;
  State& state = GetState();
  std::lock_guard<std::mutex> lock(state.mutex);
  auto [it, inserted] = state.counters.try_emplace(std::string(point), 0);
  const uint64_t call = ++it->second;  // 1-based occurrence index
  for (const Rule& rule : state.rules) {
    if (rule.point != point) continue;
    if (call < rule.start) continue;
    if (rule.open_ended || call < rule.start + rule.count) return true;
  }
  return false;
}

void SetSpecForTest(const std::string& spec) {
  EnsureEnvParsed();
  State& state = GetState();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.rules = ParseSpec(state, spec);
  state.counters.clear();
  g_enabled.store(!state.rules.empty(), std::memory_order_release);
}

void RegisterPoint(std::string_view point, std::string_view description) {
  State& state = GetState();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.registry[std::string(point)] = std::string(description);
}

bool IsRegisteredPoint(std::string_view point) {
  State& state = GetState();
  std::lock_guard<std::mutex> lock(state.mutex);
  return state.registry.find(point) != state.registry.end();
}

std::vector<FaultPointInfo> RegisteredPoints() {
  State& state = GetState();
  std::lock_guard<std::mutex> lock(state.mutex);
  std::vector<FaultPointInfo> points;
  points.reserve(state.registry.size());
  for (const auto& [name, description] : state.registry) {
    points.push_back({name, description});
  }
  return points;  // std::map iteration is already name-sorted
}

void ResetCounters() {
  State& state = GetState();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.counters.clear();
}

uint64_t CallCount(std::string_view point) {
  State& state = GetState();
  std::lock_guard<std::mutex> lock(state.mutex);
  auto it = state.counters.find(point);
  return it == state.counters.end() ? 0 : it->second;
}

}  // namespace timedrl::fault
