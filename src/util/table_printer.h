// ASCII table formatting for benchmark output.
//
// The bench binaries print rows in the same layout as the paper's tables;
// this helper keeps column alignment and numeric formatting consistent.

#ifndef TIMEDRL_UTIL_TABLE_PRINTER_H_
#define TIMEDRL_UTIL_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace timedrl {

/// Collects rows of string cells and renders an aligned ASCII table.
class TablePrinter {
 public:
  /// `header` defines the column count; later rows must match it.
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends a data row. Dies if the cell count mismatches the header.
  void AddRow(std::vector<std::string> row);

  /// Appends a horizontal separator line.
  void AddSeparator();

  /// Renders the full table.
  std::string ToString() const;

  /// Renders and writes to stdout.
  void Print() const;

  /// Formats a float with `digits` decimal places.
  static std::string Num(double value, int digits = 3);

  /// Formats a relative change as e.g. "+10.36%".
  static std::string Pct(double fraction, int digits = 2);

 private:
  std::vector<std::string> header_;
  // Separator rows are encoded as empty vectors.
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace timedrl

#endif  // TIMEDRL_UTIL_TABLE_PRINTER_H_
