// StatusOr<T>: a value or the typed Status explaining its absence.
//
// The serving path hands results across threads through futures; a bare
// value type would leave "the dispatcher shed your request" representable
// only as a broken promise or an exception. StatusOr makes every outcome a
// normal value: callers branch on ok() and read either value() or status(),
// and a promise can always be fulfilled — there is no exit path that has
// nothing meaningful to set.
//
// Accessing value() on a non-ok StatusOr is a programming error and dies
// via TIMEDRL_CHECK, mirroring the library's fail-fast stance everywhere
// else.

#ifndef TIMEDRL_UTIL_STATUS_OR_H_
#define TIMEDRL_UTIL_STATUS_OR_H_

#include <optional>
#include <utility>

#include "util/check.h"
#include "util/status.h"

namespace timedrl::util {

template <typename T>
class StatusOr {
 public:
  /// Default: a non-ok placeholder, so a default-constructed StatusOr can
  /// never masquerade as a success carrying a default value.
  StatusOr()
      : status_(Status::Error(StatusCode::kInternal,
                              "uninitialized StatusOr")) {}

  /// From an error Status. Dies if `status` is ok: an ok StatusOr must
  /// carry a value.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    TIMEDRL_CHECK(!status_.ok())
        << "StatusOr constructed from an OK status without a value";
  }

  /// From a value (implicit, so `return embedding;` works).
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return status_.ok(); }
  explicit operator bool() const { return ok(); }

  /// The status; Status::Ok() when a value is present.
  const Status& status() const { return status_; }

  const T& value() const& {
    TIMEDRL_CHECK(ok()) << "value() on error StatusOr: "
                        << status_.ToString();
    return *value_;
  }
  T& value() & {
    TIMEDRL_CHECK(ok()) << "value() on error StatusOr: "
                        << status_.ToString();
    return *value_;
  }
  T&& value() && {
    TIMEDRL_CHECK(ok()) << "value() on error StatusOr: "
                        << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;  // Ok iff value_ holds a value
  std::optional<T> value_;
};

}  // namespace timedrl::util

#endif  // TIMEDRL_UTIL_STATUS_OR_H_
