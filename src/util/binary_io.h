// Little-endian binary stream helpers shared by the checkpoint writers
// (nn/serialize.cc, core/checkpoint.cc).
//
// Readers are defensive: every primitive read reports failure instead of
// leaving garbage in the output, and length-prefixed strings enforce a cap
// so a corrupt length cannot trigger a huge allocation.

#ifndef TIMEDRL_UTIL_BINARY_IO_H_
#define TIMEDRL_UTIL_BINARY_IO_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <type_traits>

namespace timedrl::io {

template <typename T>
void WriteScalar(std::ostream& out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadScalar(std::istream& in, T* value) {
  static_assert(std::is_trivially_copyable_v<T>);
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

/// uint32 length prefix + raw bytes.
inline void WriteString(std::ostream& out, const std::string& text) {
  WriteScalar(out, static_cast<uint32_t>(text.size()));
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
}

/// Reads a string written by WriteString. False on short read or when the
/// stored length exceeds `max_length` (corrupt data guard).
inline bool ReadString(std::istream& in, std::string* text,
                       uint32_t max_length = (1u << 20)) {
  uint32_t length = 0;
  if (!ReadScalar(in, &length) || length > max_length) return false;
  text->resize(length);
  in.read(text->data(), length);
  return static_cast<bool>(in);
}

}  // namespace timedrl::io

#endif  // TIMEDRL_UTIL_BINARY_IO_H_
