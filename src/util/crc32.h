// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) over byte buffers.
//
// Used as the integrity footer of binary checkpoints: a crash or torn
// write that leaves a file with a damaged tail fails the CRC check, and
// the checkpoint manager falls back to the previous valid file.

#ifndef TIMEDRL_UTIL_CRC32_H_
#define TIMEDRL_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace timedrl {

/// CRC of `size` bytes. `seed` allows incremental computation: pass the
/// previous result to continue a running checksum.
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

}  // namespace timedrl

#endif  // TIMEDRL_UTIL_CRC32_H_
