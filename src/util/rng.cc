#include "util/rng.h"

#include <sstream>

namespace timedrl {

std::string Rng::Serialize() const {
  std::ostringstream out;
  out << engine_;
  return out.str();
}

bool Rng::Deserialize(const std::string& state) {
  std::istringstream in(state);
  std::mt19937_64 restored;
  in >> restored;
  if (in.fail()) return false;
  engine_ = restored;
  return true;
}

namespace {
Rng* GlobalRngInstance() {
  static Rng* rng = new Rng(42);
  return rng;
}
}  // namespace

Rng& GlobalRng() { return *GlobalRngInstance(); }

void SeedGlobalRng(uint64_t seed) { *GlobalRngInstance() = Rng(seed); }

}  // namespace timedrl
