#include "util/rng.h"

namespace timedrl {

namespace {
Rng* GlobalRngInstance() {
  static Rng* rng = new Rng(42);
  return rng;
}
}  // namespace

Rng& GlobalRng() { return *GlobalRngInstance(); }

void SeedGlobalRng(uint64_t seed) { *GlobalRngInstance() = Rng(seed); }

}  // namespace timedrl
