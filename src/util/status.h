// Structured error reporting for recoverable failures (I/O, parsing,
// checkpoint validation).
//
// The library stays fail-fast (TIMEDRL_CHECK) for programming errors, but
// failures caused by the outside world — a missing file, a ragged CSV row,
// a truncated checkpoint — are expected at a production boundary and must
// be distinguishable by the caller. Status carries an error code from a
// small taxonomy, a human-readable message, and (for tabular inputs) the
// 1-based row/column where the problem was found.
//
// A Status is contextually convertible to bool (true = ok), so existing
// `if (!LoadCsv(...))` call sites keep working.

#ifndef TIMEDRL_UTIL_STATUS_H_
#define TIMEDRL_UTIL_STATUS_H_

#include <cstdint>
#include <string>
#include <utility>

namespace timedrl {

enum class StatusCode {
  kOk = 0,
  /// The operating system failed us: open/read/write/rename errors.
  kIoError,
  /// Content exists but cannot be parsed (non-numeric cell, bad header).
  kParseError,
  /// A CSV row has a different number of cells than the header.
  kRaggedRow,
  /// A NaN/Inf cell was found and the active policy rejects them.
  kNonFiniteCell,
  /// The file has no content at all (not even a header row).
  kEmptyFile,
  /// A header was found but zero usable data rows.
  kNoData,
  /// Binary payload is damaged: bad magic, CRC mismatch, truncated tail,
  /// or trailing garbage after the last expected byte.
  kCorruptData,
  /// The format version is one this build does not understand.
  kVersionMismatch,
  /// The payload is well-formed but disagrees with the in-memory object
  /// (parameter count/name/shape mismatch, wrong optimizer type).
  kStructureMismatch,
  /// Nothing to load (e.g. no checkpoint exists in the directory yet).
  kNotFound,
  /// The request's deadline passed before the work was performed; the
  /// operation was never attempted (a serving queue expired it).
  kDeadlineExceeded,
  /// The subsystem is (possibly temporarily) refusing work: shutting down,
  /// circuit breaker open, or a stalled dispatcher. Safe to retry elsewhere.
  kUnavailable,
  /// Admission control rejected the request because a bounded queue or
  /// budget is full. Retrying immediately will likely fail again.
  kResourceExhausted,
  /// The system itself misbehaved (non-finite embedding, exception on the
  /// serving path). Unlike kUnavailable, retrying may return garbage again;
  /// the payload should not be trusted.
  kInternal,
};

/// Spells the code for logs and error messages, e.g. "RAGGED_ROW".
const char* StatusCodeName(StatusCode code);

class Status {
 public:
  /// Default-constructed Status is success.
  Status() = default;

  static Status Ok() { return Status(); }

  static Status Error(StatusCode code, std::string message) {
    Status status;
    status.code_ = code;
    status.message_ = std::move(message);
    return status;
  }

  /// Attaches a 1-based file location (row = physical line number including
  /// the header line; col = cell index within the row). -1 = not applicable.
  Status& WithLocation(int64_t row, int64_t col = -1) {
    row_ = row;
    col_ = col;
    return *this;
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  explicit operator bool() const { return ok(); }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }
  int64_t row() const { return row_; }
  int64_t col() const { return col_; }

  /// "RAGGED_ROW at row 7, col 3: expected 4 cells, got 3" (location parts
  /// appear only when set).
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
  int64_t row_ = -1;
  int64_t col_ = -1;
};

}  // namespace timedrl

#endif  // TIMEDRL_UTIL_STATUS_H_
