#include "util/status.h"

#include <sstream>

namespace timedrl {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kIoError:
      return "IO_ERROR";
    case StatusCode::kParseError:
      return "PARSE_ERROR";
    case StatusCode::kRaggedRow:
      return "RAGGED_ROW";
    case StatusCode::kNonFiniteCell:
      return "NON_FINITE_CELL";
    case StatusCode::kEmptyFile:
      return "EMPTY_FILE";
    case StatusCode::kNoData:
      return "NO_DATA";
    case StatusCode::kCorruptData:
      return "CORRUPT_DATA";
    case StatusCode::kVersionMismatch:
      return "VERSION_MISMATCH";
    case StatusCode::kStructureMismatch:
      return "STRUCTURE_MISMATCH";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::ostringstream out;
  out << StatusCodeName(code_);
  if (row_ >= 0) {
    out << " at row " << row_;
    if (col_ >= 0) out << ", col " << col_;
  }
  if (!message_.empty()) out << ": " << message_;
  return out.str();
}

}  // namespace timedrl
