#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/env.h"

namespace timedrl {
namespace {

// Set while a pool worker is executing a task; ParallelFor calls from such a
// thread run inline to avoid deadlock and unbounded nesting.
thread_local bool t_in_worker = false;

std::mutex g_global_mutex;
std::atomic<ThreadPool*> g_global_pool{nullptr};

/// Registry-backed scheduler statistics, looked up once.
struct PoolCounters {
  obs::Counter& parallel_fors =
      obs::Registry::Global().GetCounter("threadpool.parallel_fors");
  obs::Counter& inline_runs =
      obs::Registry::Global().GetCounter("threadpool.inline_runs");
  obs::Counter& chunks =
      obs::Registry::Global().GetCounter("threadpool.chunks");
  obs::Counter& helper_tasks =
      obs::Registry::Global().GetCounter("threadpool.helper_tasks");
};

PoolCounters& pool_counters() {
  // Leaked: workers may record during static destruction.
  static PoolCounters* c = new PoolCounters;
  return *c;
}

}  // namespace

// Shared bookkeeping of one ParallelFor call. Owned via shared_ptr so a
// helper task that is dequeued after the loop already finished can still
// touch it safely.
struct ThreadPool::ParallelState {
  std::function<void(int64_t, int64_t)> fn;
  int64_t end = 0;
  int64_t grain = 1;
  std::atomic<int64_t> cursor{0};
  // Entries (caller + helper tasks) currently executing chunks.
  std::atomic<int> active{0};
  std::mutex mutex;
  std::condition_variable done_cv;
  std::exception_ptr error;

  // Claims and runs chunks until the range is exhausted. Registered in
  // `active` for the whole scan so the caller can wait for quiescence.
  void RunChunks() {
    active.fetch_add(1, std::memory_order_acq_rel);
    int64_t chunks_run = 0;
    for (;;) {
      const int64_t chunk_begin = cursor.fetch_add(grain);
      if (chunk_begin >= end) break;
      const int64_t chunk_end = std::min(end, chunk_begin + grain);
      ++chunks_run;
      try {
        fn(chunk_begin, chunk_end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex);
        if (!error) error = std::current_exception();
        // Abort: make every subsequent claim see an exhausted range.
        cursor.store(end);
      }
    }
    if (chunks_run > 0) {
      pool_counters().chunks.Increment(static_cast<uint64_t>(chunks_run));
    }
    if (active.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(mutex);
      done_cv.notify_all();
    }
  }
};

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(1, num_threads)) {
  workers_.reserve(num_threads_ - 1);
  for (int i = 0; i < num_threads_ - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  t_in_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ && drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::ParallelFor(int64_t begin, int64_t end, int64_t grain,
                             const std::function<void(int64_t, int64_t)>& fn) {
  if (begin >= end) return;
  TIMEDRL_CHECK_GE(grain, 1);
  const int64_t range = end - begin;
  if (num_threads_ == 1 || range <= grain || t_in_worker) {
    pool_counters().inline_runs.Increment();
    fn(begin, end);
    return;
  }
  TIMEDRL_TRACE_SCOPE_CAT("parallel_for", "threadpool");
  pool_counters().parallel_fors.Increment();

  const int64_t num_chunks = (range + grain - 1) / grain;
  const int helpers = static_cast<int>(
      std::min<int64_t>(num_chunks, num_threads_) - 1);
  pool_counters().helper_tasks.Increment(static_cast<uint64_t>(helpers));

  auto state = std::make_shared<ParallelState>();
  state->fn = fn;
  state->end = end;
  state->grain = grain;
  state->cursor.store(begin);

  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (int i = 0; i < helpers; ++i) {
      tasks_.emplace([state] { state->RunChunks(); });
    }
  }
  if (helpers == 1) {
    wake_cv_.notify_one();
  } else {
    wake_cv_.notify_all();
  }

  state->RunChunks();  // The caller works too.

  {
    std::unique_lock<std::mutex> lock(state->mutex);
    state->done_cv.wait(lock, [&] {
      return state->cursor.load() >= end && state->active.load() == 0;
    });
    if (state->error) std::rethrow_exception(state->error);
  }
}

ThreadPool& ThreadPool::Global() {
  ThreadPool* pool = g_global_pool.load(std::memory_order_acquire);
  if (pool != nullptr) return *pool;
  std::lock_guard<std::mutex> lock(g_global_mutex);
  pool = g_global_pool.load(std::memory_order_relaxed);
  if (pool == nullptr) {
    pool = new ThreadPool(DefaultSize());
    g_global_pool.store(pool, std::memory_order_release);
  }
  return *pool;
}

int ThreadPool::DefaultSize() {
  const unsigned hardware = std::thread::hardware_concurrency();
  const int fallback = hardware == 0 ? 1 : static_cast<int>(hardware);
  return static_cast<int>(util::Env::GetInt("TIMEDRL_NUM_THREADS", fallback,
                                            /*min_value=*/1,
                                            /*max_value=*/256));
}

int NumThreads() { return ThreadPool::Global().size(); }

void SetNumThreads(int num_threads) {
  std::lock_guard<std::mutex> lock(g_global_mutex);
  ThreadPool* old_pool = g_global_pool.exchange(nullptr);
  delete old_pool;  // Joins its workers.
  g_global_pool.store(new ThreadPool(std::max(1, num_threads)),
                      std::memory_order_release);
}

void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn) {
  ThreadPool::Global().ParallelFor(begin, end, grain, fn);
}

}  // namespace timedrl
