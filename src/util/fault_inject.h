// Deterministic fault injection for fault-tolerance tests.
//
// Production code marks recoverable failure points with fault::At("name");
// normally every call returns false and costs one cached-bool branch. When
// TIMEDRL_FAULT_INJECT is set (or a spec is installed programmatically by a
// test), the named point fires at chosen occurrence indices, letting
// integration tests flip a loss to NaN at step N or truncate a checkpoint
// write without special test-only code paths.
//
// Spec grammar (comma-separated list):
//   <point>@<start>           fire on the <start>-th call (1-based), once
//   <point>@<start>x<count>   fire on calls start .. start+count-1
//   <point>@<start>x*         fire on every call from <start> on
//
// Example: TIMEDRL_FAULT_INJECT="pretrain_nan_loss@12x3,truncate_checkpoint@2"

// Every production fault point is registered (name + what firing does) in
// the built-in table in fault_inject.cc; specs naming an unknown point log
// a warning instead of silently never firing, and `timedrl fault-points`
// prints the table.

#ifndef TIMEDRL_UTIL_FAULT_INJECT_H_
#define TIMEDRL_UTIL_FAULT_INJECT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace timedrl::fault {

/// A registered injection point: its spec name and what firing it does.
struct FaultPointInfo {
  std::string name;
  std::string description;
};

/// True when any fault spec is active (env var or test-installed). Cheap:
/// one relaxed atomic bool load.
bool Enabled();

/// Increments the per-point call counter and reports whether the active
/// spec asks this occurrence to fail. Always false when no spec is active;
/// in that case the counter is not even tracked.
bool At(std::string_view point);

/// Installs `spec` (same grammar as the env var) for the current process,
/// replacing any active spec and zeroing all counters. An empty string
/// disables injection. Intended for tests; the env var is parsed once at
/// first use and this overrides it.
void SetSpecForTest(const std::string& spec);

/// Zeroes every per-point call counter without changing the spec.
void ResetCounters();

/// Calls seen so far for `point` (0 when injection is disabled). Test aid.
uint64_t CallCount(std::string_view point);

/// Adds `point` to the registry of known fault points (idempotent; a
/// re-registration updates the description). Production points live in the
/// built-in table in fault_inject.cc; this hook exists for tests and
/// downstream extensions.
void RegisterPoint(std::string_view point, std::string_view description);

/// True when `point` is a registered name. Spec parsing warns (but still
/// installs the rule) when this is false, so a typo'd TIMEDRL_FAULT_INJECT
/// is visible instead of silently inert.
bool IsRegisteredPoint(std::string_view point);

/// Every registered point, sorted by name. Backs `timedrl fault-points`.
std::vector<FaultPointInfo> RegisteredPoints();

}  // namespace timedrl::fault

#endif  // TIMEDRL_UTIL_FAULT_INJECT_H_
