// Deterministic fault injection for fault-tolerance tests.
//
// Production code marks recoverable failure points with fault::At("name");
// normally every call returns false and costs one cached-bool branch. When
// TIMEDRL_FAULT_INJECT is set (or a spec is installed programmatically by a
// test), the named point fires at chosen occurrence indices, letting
// integration tests flip a loss to NaN at step N or truncate a checkpoint
// write without special test-only code paths.
//
// Spec grammar (comma-separated list):
//   <point>@<start>           fire on the <start>-th call (1-based), once
//   <point>@<start>x<count>   fire on calls start .. start+count-1
//   <point>@<start>x*         fire on every call from <start> on
//
// Example: TIMEDRL_FAULT_INJECT="pretrain_nan_loss@12x3,truncate_checkpoint@2"

#ifndef TIMEDRL_UTIL_FAULT_INJECT_H_
#define TIMEDRL_UTIL_FAULT_INJECT_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace timedrl::fault {

/// True when any fault spec is active (env var or test-installed). Cheap:
/// one relaxed atomic bool load.
bool Enabled();

/// Increments the per-point call counter and reports whether the active
/// spec asks this occurrence to fail. Always false when no spec is active;
/// in that case the counter is not even tracked.
bool At(std::string_view point);

/// Installs `spec` (same grammar as the env var) for the current process,
/// replacing any active spec and zeroing all counters. An empty string
/// disables injection. Intended for tests; the env var is parsed once at
/// first use and this overrides it.
void SetSpecForTest(const std::string& spec);

/// Zeroes every per-point call counter without changing the spec.
void ResetCounters();

/// Calls seen so far for `point` (0 when injection is disabled). Test aid.
uint64_t CallCount(std::string_view point);

}  // namespace timedrl::fault

#endif  // TIMEDRL_UTIL_FAULT_INJECT_H_
