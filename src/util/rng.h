// Deterministic random number generation.
//
// Every stochastic component in the library (weight init, dropout, data
// generators, shuffling) draws from an explicitly passed `Rng` so that runs
// are reproducible bit-for-bit given a seed.

#ifndef TIMEDRL_UTIL_RNG_H_
#define TIMEDRL_UTIL_RNG_H_

#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace timedrl {

/// Seedable pseudo-random source used throughout the library.
///
/// Thin wrapper over std::mt19937_64 with convenience sampling helpers.
/// Copyable; copying forks the stream state.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0) : engine_(seed) {}

  /// Uniform float in [lo, hi).
  float Uniform(float lo = 0.0f, float hi = 1.0f) {
    std::uniform_real_distribution<float> dist(lo, hi);
    return dist(engine_);
  }

  /// Standard normal scaled to N(mean, stddev^2).
  float Normal(float mean = 0.0f, float stddev = 1.0f) {
    std::normal_distribution<float> dist(mean, stddev);
    return dist(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    std::uniform_int_distribution<int64_t> dist(lo, hi);
    return dist(engine_);
  }

  /// Bernoulli draw with probability `p` of true.
  bool Bernoulli(float p) { return Uniform() < p; }

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (int64_t i = static_cast<int64_t>(items.size()) - 1; i > 0; --i) {
      std::swap(items[i], items[UniformInt(0, i)]);
    }
  }

  /// A permutation of [0, n).
  std::vector<int64_t> Permutation(int64_t n) {
    std::vector<int64_t> perm(n);
    for (int64_t i = 0; i < n; ++i) perm[i] = i;
    Shuffle(perm);
    return perm;
  }

  /// Forks a child stream whose seed depends on this stream's state;
  /// useful for giving sub-components independent deterministic streams.
  Rng Fork() { return Rng(engine_()); }

  /// Engine state as text (std::mt19937_64 stream format). Restoring it
  /// with Deserialize resumes the stream bit-for-bit — the checkpoint layer
  /// uses this to make resumed runs identical to uninterrupted ones.
  std::string Serialize() const;

  /// Restores a state produced by Serialize. False if `state` is malformed
  /// (the engine is left untouched in that case).
  bool Deserialize(const std::string& state);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Process-wide default stream for components that do not take an explicit
/// Rng. Tests and benches should prefer explicit streams.
Rng& GlobalRng();

/// Reseeds the global stream (affects subsequent draws only).
void SeedGlobalRng(uint64_t seed);

}  // namespace timedrl

#endif  // TIMEDRL_UTIL_RNG_H_
