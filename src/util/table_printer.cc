#include "util/table_printer.h"

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <sstream>

#include "util/check.h"

namespace timedrl {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  TIMEDRL_CHECK_EQ(row.size(), header_.size())
      << "row has " << row.size() << " cells, header has " << header_.size();
  rows_.push_back(std::move(row));
}

void TablePrinter::AddSeparator() { rows_.emplace_back(); }

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_line = [&](const std::vector<std::string>& cells) {
    std::ostringstream out;
    out << "|";
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : "";
      out << " " << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    out << "\n";
    return out.str();
  };
  auto render_separator = [&] {
    std::ostringstream out;
    out << "+";
    for (size_t c = 0; c < widths.size(); ++c) {
      out << std::string(widths[c] + 2, '-') << "+";
    }
    out << "\n";
    return out.str();
  };

  std::ostringstream out;
  out << render_separator() << render_line(header_) << render_separator();
  for (const auto& row : rows_) {
    out << (row.empty() ? render_separator() : render_line(row));
  }
  out << render_separator();
  return out.str();
}

void TablePrinter::Print() const { std::cout << ToString() << std::flush; }

std::string TablePrinter::Num(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, value);
  return buffer;
}

std::string TablePrinter::Pct(double fraction, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%+.*f%%", digits, fraction * 100.0);
  return buffer;
}

}  // namespace timedrl
