// A persistent worker-thread pool with blocking data-parallel loops.
//
// This is the execution substrate of the tensor kernel layer
// (src/tensor/kernels/): kernels express *what* to compute per index range
// and ParallelFor decides *where* it runs.
//
// Determinism contract: ParallelFor only changes WHICH thread executes a
// contiguous subrange [chunk_begin, chunk_end); the work function must
// compute every output element entirely within one call, with a fixed
// internal loop order. Kernels that follow this rule (each thread owns a
// disjoint set of output rows) produce bitwise-identical results for every
// pool size, including size 1.

#ifndef TIMEDRL_UTIL_THREAD_POOL_H_
#define TIMEDRL_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace timedrl {

/// Fixed-size pool of persistent worker threads.
///
/// A pool of size N uses the calling thread plus N-1 workers, so
/// ThreadPool(1) is fully serial: ParallelFor runs inline on the caller and
/// never touches a lock.
class ThreadPool {
 public:
  /// Spawns `num_threads - 1` workers (clamped to at least 0).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism (workers + caller).
  int size() const { return num_threads_; }

  /// Splits [begin, end) into contiguous chunks of at least `grain` indices
  /// and runs fn(chunk_begin, chunk_end) across the pool, blocking until
  /// every chunk finished. The caller participates in the work. The first
  /// exception thrown by any chunk aborts the remaining chunks and is
  /// rethrown here. Calls from inside a worker run serially inline
  /// (reentrancy guard), so kernels may nest ParallelFor freely.
  void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                   const std::function<void(int64_t, int64_t)>& fn);

  /// The process-wide pool used by the tensor kernels. Created on first use
  /// with DefaultSize() threads.
  static ThreadPool& Global();

  /// Pool size requested by the environment: TIMEDRL_NUM_THREADS if set to a
  /// positive integer, otherwise std::thread::hardware_concurrency().
  static int DefaultSize();

 private:
  struct ParallelState;

  void WorkerLoop();

  int num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable wake_cv_;
  std::queue<std::function<void()>> tasks_;
  bool stopping_ = false;
};

/// Size of the global pool (ThreadPool::Global().size()).
int NumThreads();

/// Replaces the global pool with one of `num_threads` threads (clamped to
/// >= 1). Joins the old pool's workers first. Must not race with running
/// kernels; intended for program startup, benchmarks, and tests.
void SetNumThreads(int num_threads);

/// Convenience wrapper: ThreadPool::Global().ParallelFor(...).
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn);

}  // namespace timedrl

#endif  // TIMEDRL_UTIL_THREAD_POOL_H_
