// Wall-clock timing helper used by trainers and benches.

#ifndef TIMEDRL_UTIL_STOPWATCH_H_
#define TIMEDRL_UTIL_STOPWATCH_H_

#include <chrono>

namespace timedrl {

/// Measures elapsed wall-clock time from construction or the last Reset().
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction / last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace timedrl

#endif  // TIMEDRL_UTIL_STOPWATCH_H_
