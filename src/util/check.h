// Lightweight CHECK macros for invariant enforcement.
//
// The library follows a fail-fast philosophy: violated preconditions abort
// with a readable message rather than propagating exceptions (exceptions are
// disabled per the project style).

#ifndef TIMEDRL_UTIL_CHECK_H_
#define TIMEDRL_UTIL_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace timedrl::internal {

/// Accumulates a failure message and aborts when destroyed.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* condition) {
    stream_ << "[CHECK FAILED] " << file << ":" << line << ": " << condition
            << " ";
  }

  [[noreturn]] ~CheckFailure() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  CheckFailure& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace timedrl::internal

/// Aborts with a message when `condition` is false. Extra context can be
/// streamed: TIMEDRL_CHECK(a == b) << "a=" << a;
#define TIMEDRL_CHECK(condition)                                          \
  if (condition) {                                                        \
  } else                                                                  \
    ::timedrl::internal::CheckFailure(__FILE__, __LINE__, #condition)

#define TIMEDRL_CHECK_EQ(a, b) TIMEDRL_CHECK((a) == (b))
#define TIMEDRL_CHECK_NE(a, b) TIMEDRL_CHECK((a) != (b))
#define TIMEDRL_CHECK_LT(a, b) TIMEDRL_CHECK((a) < (b))
#define TIMEDRL_CHECK_LE(a, b) TIMEDRL_CHECK((a) <= (b))
#define TIMEDRL_CHECK_GT(a, b) TIMEDRL_CHECK((a) > (b))
#define TIMEDRL_CHECK_GE(a, b) TIMEDRL_CHECK((a) >= (b))

#endif  // TIMEDRL_UTIL_CHECK_H_
