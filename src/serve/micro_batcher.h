// Request coalescing in front of an InferenceSession.
//
// Concurrent callers submit single windows; a dispatcher thread collects
// them into one batch of up to `max_batch` requests (waiting at most
// `max_delay_us` for stragglers once the first request of a batch has
// arrived), runs a single InferenceSession::Encode over the coalesced
// batch — exercising the batched GEMM path instead of B separate
// batch-of-one forwards — and fans the per-row instance embeddings back
// out through futures.
//
// The dispatcher thread is the only thread that touches the session, so
// the session's single-threaded contract (and the thread-local buffer
// pool's zero-miss steady state) is preserved no matter how many client
// threads submit. The dispatcher warms the session up on its own thread
// before serving.
//
// Metrics (obs::Registry::Global()): serve.queue_ns histogram — time each
// request spent queued before its batch was dispatched. Batch composition
// lands in serve.batch_size via the session.

#ifndef TIMEDRL_SERVE_MICRO_BATCHER_H_
#define TIMEDRL_SERVE_MICRO_BATCHER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/inference_session.h"

namespace timedrl::serve {

struct MicroBatcherOptions {
  /// Largest coalesced batch; clamped to the session's max planned size.
  int64_t max_batch = 32;
  /// How long the dispatcher waits for more requests after the first one
  /// of a batch arrives. 0 = dispatch whatever is queued immediately.
  int64_t max_delay_us = 200;

  /// Reads overrides from TIMEDRL_SERVE_MAX_BATCH and
  /// TIMEDRL_SERVE_MAX_DELAY_US (unset/invalid values keep the defaults).
  static MicroBatcherOptions FromEnv();
};

class MicroBatcher {
 public:
  /// Starts the dispatcher thread. `session` must outlive the batcher.
  MicroBatcher(InferenceSession* session, MicroBatcherOptions options);
  ~MicroBatcher();

  MicroBatcher(const MicroBatcher&) = delete;
  MicroBatcher& operator=(const MicroBatcher&) = delete;

  /// Enqueues one window (input_length * input_channels values) and
  /// returns a future for its instance embedding. Thread-safe.
  std::future<std::vector<float>> Submit(std::vector<float> window);

  /// Submit + wait. Thread-safe.
  std::vector<float> Encode(std::vector<float> window);

  /// Drains the queue, then stops the dispatcher. Called by the
  /// destructor; safe to call more than once. Submit after Shutdown dies.
  void Shutdown();

 private:
  struct Request {
    std::vector<float> window;
    std::promise<std::vector<float>> promise;
    int64_t enqueue_ns = 0;
  };

  void DispatcherLoop();
  void RunBatch(std::vector<Request> batch);

  InferenceSession* session_;
  MicroBatcherOptions options_;

  std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<Request> queue_;
  bool shutdown_ = false;

  std::thread dispatcher_;
};

}  // namespace timedrl::serve

#endif  // TIMEDRL_SERVE_MICRO_BATCHER_H_
