// Request coalescing with production hardening in front of an
// InferenceSession.
//
// Concurrent callers submit single windows; a dispatcher thread collects
// them into one batch of up to `max_batch` requests (waiting at most
// `max_delay_us` for stragglers once the first request of a batch has
// arrived), runs a single InferenceSession::Encode over the coalesced
// batch — exercising the batched GEMM path instead of B separate
// batch-of-one forwards — and fans the per-row instance embeddings back
// out through futures.
//
// Every future resolves, on every exit path, to either an embedding or a
// typed Status:
//   kResourceExhausted  admission control: the bounded queue (max_queue)
//                       was full at submit; rejected immediately.
//   kDeadlineExceeded   the request's deadline passed while queued; the
//                       dispatcher expires it instead of encoding it.
//   kUnavailable        the batcher is not serving: shut down, circuit
//                       breaker open, or tripped into the terminal
//                       "unavailable" state by the stall watchdog.
//   kInternal           the encode ran but produced a non-finite embedding
//                       for this row (or the batch failed outright); the
//                       payload must not be trusted.
//
// Failure containment:
//   - Stall watchdog: while a batch is in flight the dispatcher publishes a
//     heartbeat (serve.dispatcher_heartbeat_ns gauge). If Submit observes a
//     heartbeat older than stall_timeout_ms with a batch still in flight,
//     the batcher fails into a draining "unavailable" state: queued
//     requests fail kUnavailable and new submits are rejected, so clients
//     never hang on a wedged session.
//   - Circuit breaker: each batch's embeddings are scanned with the
//     CountNonFinite kernel; poisoned rows fail kInternal, and
//     breaker_threshold consecutive poisoned batches open the breaker.
//     While open, submits shed with kUnavailable and the dispatcher
//     canary-probes the session every breaker_probe_ms; the first clean
//     probe closes the breaker.
//   - Shutdown: the queue drains (remaining requests are encoded); submits
//     after Shutdown return an immediately-failed kUnavailable future.
//
// The dispatcher thread is the only thread that touches the session for
// encoding, so the session's single-threaded contract (and the thread-local
// buffer pool's zero-miss steady state) is preserved no matter how many
// client threads submit. The dispatcher warms the session up on its own
// thread before serving. InferenceSession::Reload may run concurrently; the
// dispatcher applies the staged swap between batches.
//
// Metrics (obs::Registry::Global()):
//   serve.queue_ns          histogram — time requests spent queued
//   serve.deadline_exceeded counter   — requests expired before dispatch
//   serve.shed              counter   — requests rejected without encoding
//                                       (queue full, breaker, unavailable,
//                                       shutdown)
//   serve.breaker_state     gauge     — 0 closed, 1 open
//   serve.dispatcher_heartbeat_ns gauge — last dispatcher liveness mark

#ifndef TIMEDRL_SERVE_MICRO_BATCHER_H_
#define TIMEDRL_SERVE_MICRO_BATCHER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "serve/inference_session.h"
#include "util/status_or.h"

namespace timedrl::serve {

/// One instance embedding: embedding_dim() floats.
using Embedding = std::vector<float>;

struct MicroBatcherOptions {
  /// Largest coalesced batch; clamped to the session's max planned size.
  int64_t max_batch = 32;
  /// How long the dispatcher waits for more requests after the first one
  /// of a batch arrives. 0 = dispatch whatever is queued immediately.
  int64_t max_delay_us = 200;
  /// Admission control: largest number of queued (admitted, not yet
  /// dispatched) requests. Submits beyond this are rejected immediately
  /// with kResourceExhausted (reject-newest).
  int64_t max_queue = 1024;
  /// Default per-request deadline budget in microseconds, measured from
  /// submit. 0 disables deadlines. SubmitOptions::deadline_us overrides.
  int64_t default_deadline_us = 0;
  /// Stall watchdog: a batch in flight for longer than this trips the
  /// batcher into the terminal unavailable state. 0 disables the watchdog.
  int64_t stall_timeout_ms = 5000;
  /// Consecutive poisoned (non-finite / failed) batches before the circuit
  /// breaker opens.
  int64_t breaker_threshold = 3;
  /// While the breaker is open, a canary probe encode runs at this period.
  int64_t breaker_probe_ms = 50;

  /// Reads overrides from TIMEDRL_SERVE_MAX_BATCH, TIMEDRL_SERVE_MAX_DELAY_US,
  /// TIMEDRL_SERVE_MAX_QUEUE, TIMEDRL_SERVE_DEADLINE_US,
  /// TIMEDRL_SERVE_STALL_TIMEOUT_MS, TIMEDRL_SERVE_BREAKER_THRESHOLD, and
  /// TIMEDRL_SERVE_BREAKER_PROBE_MS, range-validated through util::Env
  /// (unset/invalid values keep the defaults with a warning).
  static MicroBatcherOptions FromEnv();
};

/// Per-call submit options.
struct SubmitOptions {
  /// Deadline budget in microseconds from submit time. -1 inherits
  /// MicroBatcherOptions::default_deadline_us; 0 = no deadline.
  int64_t deadline_us = -1;
};

class MicroBatcher {
 public:
  /// Starts the dispatcher thread. `session` must outlive the batcher.
  MicroBatcher(InferenceSession* session, MicroBatcherOptions options);
  ~MicroBatcher();

  MicroBatcher(const MicroBatcher&) = delete;
  MicroBatcher& operator=(const MicroBatcher&) = delete;

  /// Enqueues one window (input_length * input_channels values) and
  /// returns a future for its instance embedding. The future always
  /// resolves — to the embedding or to a typed error (see file comment).
  /// Thread-safe; never blocks beyond the queue mutex.
  std::future<util::StatusOr<Embedding>> Submit(std::vector<float> window,
                                                SubmitOptions submit = {});

  /// Submit + wait. Thread-safe.
  util::StatusOr<Embedding> Encode(std::vector<float> window,
                                   SubmitOptions submit = {});

  /// Drains the queue (every queued request resolves), then stops the
  /// dispatcher. Called by the destructor; safe to call more than once.
  /// Submit after Shutdown returns an immediately-failed kUnavailable
  /// future.
  void Shutdown();

  /// True once the stall watchdog tripped the batcher into its terminal
  /// draining state (all submits shed with kUnavailable).
  bool unavailable() const;

  /// True while the circuit breaker is open (submits shed, canary probes
  /// running).
  bool breaker_open() const;

 private:
  struct Request {
    std::vector<float> window;
    std::promise<util::StatusOr<Embedding>> promise;
    int64_t enqueue_ns = 0;
    int64_t deadline_ns = 0;  // absolute steady-clock ns; 0 = none
  };

  void DispatcherLoop();
  void RunBatch(std::vector<Request> batch);

  /// Encodes the session's canary while the breaker is open. True when the
  /// probe came back finite (breaker may close).
  bool ProbeSessionHealthy();

  /// Fails and removes every queued request. Caller holds mutex_.
  void FailQueuedLocked(StatusCode code, const char* message);

  /// Fails and removes queued requests whose deadline passed. Caller holds
  /// mutex_.
  void ExpireDeadlinesLocked(int64_t now_ns);

  InferenceSession* session_;
  MicroBatcherOptions options_;

  mutable std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<Request> queue_;
  bool shutdown_ = false;
  bool unavailable_ = false;    // terminal; set by the stall watchdog
  bool breaker_open_ = false;   // poisoned-output circuit breaker
  bool batch_in_flight_ = false;
  int64_t heartbeat_ns_ = 0;    // last dispatcher liveness mark
  int64_t consecutive_poisoned_ = 0;

  obs::Histogram& queue_ns_;
  obs::Counter& deadline_exceeded_;
  obs::Counter& shed_;
  obs::Gauge& breaker_state_;
  obs::Gauge& heartbeat_gauge_;

  std::thread dispatcher_;
};

}  // namespace timedrl::serve

#endif  // TIMEDRL_SERVE_MICRO_BATCHER_H_
