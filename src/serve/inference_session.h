// A frozen TimeDRL encoder serving embedding requests.
//
// InferenceSession is the deployment-side counterpart of the training
// pipelines: it loads a checkpoint (v1 parameter-only or v2 full state),
// freezes the model in eval mode, and answers Encode() calls on the
// graph-free inference path — no autograd nodes, no gradient buffers, and
// (after warmup) no heap allocation: every buffer an encode needs comes
// from the tensor buffer pool, pre-populated by running each planned batch
// shape once.
//
// Shape planning: the session is opened for a fixed window geometry
// (input_length x input_channels from the model config) and a small set of
// planned batch sizes. Encode() pads any batch up to the smallest planned
// size, so the backbone only ever sees planned shapes and the pool's
// steady-state zero-miss contract holds. Callers asking for more rows than
// the largest planned size must split the batch (MicroBatcher does).
//
// Threading: a session is NOT internally synchronized. One thread (or an
// external serializer such as serve::MicroBatcher) must own all Encode()
// calls; Warmup() must run on that serving thread, because the buffer pool
// caches buffers per thread. The one exception is Reload(): it may be
// called from any thread while the serving thread keeps encoding — the
// candidate model is loaded and canary-validated entirely on the side, and
// the pointer swap is deferred to the serving thread's next Encode().
//
// Hot reload protocol (zero downtime):
//   1. Reload(path) builds a fresh model and loads the checkpoint into it
//      on the calling thread. Load errors return the loader's Status; the
//      live model is untouched.
//   2. The candidate encodes the session's held canary window (on the
//      calling thread). If the output geometry disagrees with the declared
//      embedding_dim() or any value is non-finite, Reload returns
//      kInternal, counts serve.reload_failures, and the live model keeps
//      serving. Fault point "serve_reload_corrupt" forces this outcome.
//   3. A validated candidate is staged; the serving thread applies the
//      pointer swap at the start of its next Encode (between batches, so
//      no request ever sees half a model). serve.reloads counts applies.
//
// Metrics (obs::Registry::Global()): serve.requests (counter),
// serve.batch_size (histogram of pre-padding request sizes), serve.reloads
// (applied swaps), serve.reload_failures (rejected candidates). Each
// encode records a "serve/encode" trace span and each Reload a
// "serve/reload" span, both in category "serve".

#ifndef TIMEDRL_SERVE_INFERENCE_SESSION_H_
#define TIMEDRL_SERVE_INFERENCE_SESSION_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "core/config.h"
#include "core/model.h"
#include "obs/metrics.h"
#include "util/rng.h"
#include "util/status.h"

namespace timedrl::serve {

/// Static serving plan for one session.
struct InferenceSessionConfig {
  /// Model geometry; must match the checkpoint's parameter shapes.
  core::TimeDrlConfig model;
  /// Batch sizes to pre-plan (warm up) for; requests are padded up to the
  /// smallest planned size that fits. Must be non-empty and ascending.
  std::vector<int64_t> planned_batch_sizes = {1, 8, 32};
  /// How the instance-level embedding is pooled from the encoder output.
  core::Pooling pooling = core::Pooling::kCls;
};

/// Embeddings for one request batch (see core::TimeDrlModel::Encoded).
struct Embeddings {
  Tensor instance;   // [B, PooledDim(pooling)]
  Tensor timestamp;  // [B, T_p, D]
};

class InferenceSession {
 public:
  /// Loads `checkpoint_path` into a fresh model (v1 restores parameters
  /// only; v2 restores parameters + mutable state), freezes it in eval
  /// mode, and warms up every planned batch shape on the calling thread.
  static Status Open(const std::string& checkpoint_path,
                     const InferenceSessionConfig& config,
                     std::unique_ptr<InferenceSession>* out);

  /// Embeddings of a raw batch x [B, input_length, input_channels] with
  /// B <= max_batch(). Graph-free and allocation-free in steady state.
  Embeddings Encode(const Tensor& x);

  /// Instance embedding of a single window given as input_length *
  /// input_channels row-major values. Convenience for the CLI and batcher.
  std::vector<float> EncodeWindow(const std::vector<float>& window);

  /// Runs one encode per planned batch size, populating the calling
  /// thread's pool caches. Open() warms the opening thread; a serving
  /// thread other than the opener must call this itself before its
  /// steady state is allocation-free.
  void Warmup();

  /// Stages a zero-downtime model swap from `checkpoint_path` (see the
  /// reload protocol above). Returns the loader's Status for unreadable /
  /// mismatched checkpoints, kInternal when the canary encode fails
  /// geometry or finiteness validation, and Ok when the candidate is
  /// staged. Thread-safe; concurrent Reload calls serialize, last staged
  /// candidate wins.
  Status Reload(const std::string& checkpoint_path);

  /// Model swaps applied so far by the serving thread. A caller that saw
  /// Reload() return Ok can poll this to learn when the swap took effect.
  uint64_t reloads_applied() const {
    return reloads_applied_.load(std::memory_order_acquire);
  }

  /// Largest planned batch size.
  int64_t max_batch() const { return config_.planned_batch_sizes.back(); }

  /// Width of the instance embeddings Encode() returns.
  int64_t embedding_dim() const;

  const core::TimeDrlConfig& model_config() const { return config_.model; }
  const InferenceSessionConfig& config() const { return config_; }

 private:
  explicit InferenceSession(const InferenceSessionConfig& config);

  /// Smallest planned batch size >= n (dies if n exceeds max_batch()).
  int64_t PlannedBatch(int64_t n) const;

  /// The encode body, parameterized over which model runs it so a reload
  /// candidate can be canary-encoded without touching the live model.
  Embeddings EncodeWithModel(core::TimeDrlModel* model, const Tensor& x);

  /// Applies a staged reload candidate, if any. Called at the top of
  /// Encode on the serving thread.
  void MaybeApplyReload();

  InferenceSessionConfig config_;
  Rng rng_;  // consumed by model construction; the frozen model draws none
  std::unique_ptr<core::TimeDrlModel> model_;
  Tensor canary_;  // held reference window for reload validation

  // Reload staging: Reload() fills pending_model_ under reload_mutex_ and
  // raises reload_pending_; the serving thread consumes it in Encode.
  std::mutex reload_mutex_;
  std::unique_ptr<core::TimeDrlModel> pending_model_;
  std::atomic<bool> reload_pending_{false};
  std::atomic<uint64_t> reloads_applied_{0};

  obs::Counter& requests_;
  obs::Histogram& batch_size_;
  obs::Counter& reloads_;
  obs::Counter& reload_failures_;
};

}  // namespace timedrl::serve

#endif  // TIMEDRL_SERVE_INFERENCE_SESSION_H_
