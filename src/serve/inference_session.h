// A frozen TimeDRL encoder serving embedding requests.
//
// InferenceSession is the deployment-side counterpart of the training
// pipelines: it loads a checkpoint (v1 parameter-only or v2 full state),
// freezes the model in eval mode, and answers Encode() calls on the
// graph-free inference path — no autograd nodes, no gradient buffers, and
// (after warmup) no heap allocation: every buffer an encode needs comes
// from the tensor buffer pool, pre-populated by running each planned batch
// shape once.
//
// Shape planning: the session is opened for a fixed window geometry
// (input_length x input_channels from the model config) and a small set of
// planned batch sizes. Encode() pads any batch up to the smallest planned
// size, so the backbone only ever sees planned shapes and the pool's
// steady-state zero-miss contract holds. Callers asking for more rows than
// the largest planned size must split the batch (MicroBatcher does).
//
// Threading: a session is NOT internally synchronized. One thread (or an
// external serializer such as serve::MicroBatcher) must own all Encode()
// calls; Warmup() must run on that serving thread, because the buffer pool
// caches buffers per thread.
//
// Metrics (obs::Registry::Global()): serve.requests (counter),
// serve.batch_size (histogram of pre-padding request sizes). Each encode
// records a "serve/encode" trace span in category "serve".

#ifndef TIMEDRL_SERVE_INFERENCE_SESSION_H_
#define TIMEDRL_SERVE_INFERENCE_SESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "core/config.h"
#include "core/model.h"
#include "obs/metrics.h"
#include "util/rng.h"
#include "util/status.h"

namespace timedrl::serve {

/// Static serving plan for one session.
struct InferenceSessionConfig {
  /// Model geometry; must match the checkpoint's parameter shapes.
  core::TimeDrlConfig model;
  /// Batch sizes to pre-plan (warm up) for; requests are padded up to the
  /// smallest planned size that fits. Must be non-empty and ascending.
  std::vector<int64_t> planned_batch_sizes = {1, 8, 32};
  /// How the instance-level embedding is pooled from the encoder output.
  core::Pooling pooling = core::Pooling::kCls;
};

/// Embeddings for one request batch (see core::TimeDrlModel::Encoded).
struct Embeddings {
  Tensor instance;   // [B, PooledDim(pooling)]
  Tensor timestamp;  // [B, T_p, D]
};

class InferenceSession {
 public:
  /// Loads `checkpoint_path` into a fresh model (v1 restores parameters
  /// only; v2 restores parameters + mutable state), freezes it in eval
  /// mode, and warms up every planned batch shape on the calling thread.
  static Status Open(const std::string& checkpoint_path,
                     const InferenceSessionConfig& config,
                     std::unique_ptr<InferenceSession>* out);

  /// Embeddings of a raw batch x [B, input_length, input_channels] with
  /// B <= max_batch(). Graph-free and allocation-free in steady state.
  Embeddings Encode(const Tensor& x);

  /// Instance embedding of a single window given as input_length *
  /// input_channels row-major values. Convenience for the CLI and batcher.
  std::vector<float> EncodeWindow(const std::vector<float>& window);

  /// Runs one encode per planned batch size, populating the calling
  /// thread's pool caches. Open() warms the opening thread; a serving
  /// thread other than the opener must call this itself before its
  /// steady state is allocation-free.
  void Warmup();

  /// Largest planned batch size.
  int64_t max_batch() const { return config_.planned_batch_sizes.back(); }

  /// Width of the instance embeddings Encode() returns.
  int64_t embedding_dim() const;

  const core::TimeDrlConfig& model_config() const { return config_.model; }
  const InferenceSessionConfig& config() const { return config_; }

 private:
  explicit InferenceSession(const InferenceSessionConfig& config);

  /// Smallest planned batch size >= n (dies if n exceeds max_batch()).
  int64_t PlannedBatch(int64_t n) const;

  InferenceSessionConfig config_;
  Rng rng_;  // consumed by model construction; the frozen model draws none
  std::unique_ptr<core::TimeDrlModel> model_;
  obs::Counter& requests_;
  obs::Histogram& batch_size_;
};

}  // namespace timedrl::serve

#endif  // TIMEDRL_SERVE_INFERENCE_SESSION_H_
