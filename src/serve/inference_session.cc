#include "serve/inference_session.h"

#include <algorithm>
#include <utility>

#include "obs/logging.h"
#include "obs/trace.h"
#include "tensor/buffer_pool.h"
#include "tensor/kernels/nonfinite.h"
#include "tensor/ops.h"
#include "util/check.h"
#include "util/fault_inject.h"

namespace timedrl::serve {

InferenceSession::InferenceSession(const InferenceSessionConfig& config)
    : config_(config),
      rng_(/*seed=*/1),
      requests_(obs::Registry::Global().GetCounter("serve.requests")),
      batch_size_(obs::Registry::Global().GetHistogram("serve.batch_size")),
      reloads_(obs::Registry::Global().GetCounter("serve.reloads")),
      reload_failures_(
          obs::Registry::Global().GetCounter("serve.reload_failures")) {
  model_ = std::make_unique<core::TimeDrlModel>(config_.model, rng_);
  // The canary is a fixed, non-trivial window: reload candidates must map
  // it to finite embeddings of the declared geometry before they may swap
  // in. Deterministic so every session holds the same reference input.
  Rng canary_rng(/*seed=*/7);
  canary_ = Tensor::Randn(
      {1, config_.model.input_length, config_.model.input_channels},
      canary_rng);
}

Status InferenceSession::Open(const std::string& checkpoint_path,
                              const InferenceSessionConfig& config,
                              std::unique_ptr<InferenceSession>* out) {
  TIMEDRL_CHECK(!config.planned_batch_sizes.empty())
      << "InferenceSession needs at least one planned batch size";
  TIMEDRL_CHECK(std::is_sorted(config.planned_batch_sizes.begin(),
                               config.planned_batch_sizes.end()))
      << "planned_batch_sizes must be ascending";
  TIMEDRL_CHECK_GE(config.planned_batch_sizes.front(), 1);

  // Private constructor: cannot use make_unique.
  std::unique_ptr<InferenceSession> session(new InferenceSession(config));
  core::TrainingState state;  // untouched for v1 files; discarded either way
  Status status = core::CheckpointManager::LoadFile(
      checkpoint_path, session->model_.get(), &state);
  if (!status.ok()) return status;

  session->model_->Eval();
  session->Warmup();
  *out = std::move(session);
  return Status::Ok();
}

int64_t InferenceSession::embedding_dim() const {
  return model_->PooledDim(config_.pooling);
}

int64_t InferenceSession::PlannedBatch(int64_t n) const {
  for (int64_t planned : config_.planned_batch_sizes) {
    if (planned >= n) return planned;
  }
  TIMEDRL_CHECK(false) << "batch of " << n << " exceeds largest planned size "
                       << max_batch() << "; split the batch (see MicroBatcher)";
  return -1;
}

void InferenceSession::Warmup() {
  TIMEDRL_TRACE_SCOPE_CAT("serve/warmup", "serve");
  const int64_t window = config_.model.input_length;
  const int64_t channels = config_.model.input_channels;
  for (int64_t planned : config_.planned_batch_sizes) {
    Tensor x = Tensor::Zeros({planned, window, channels});
    (void)Encode(x);
  }
}

Status InferenceSession::Reload(const std::string& checkpoint_path) {
  TIMEDRL_TRACE_SCOPE_CAT("serve/reload", "serve");

  // Build and load the candidate entirely on the side; the live model_
  // keeps answering Encode calls on the serving thread throughout.
  Rng candidate_rng(/*seed=*/1);
  auto candidate =
      std::make_unique<core::TimeDrlModel>(config_.model, candidate_rng);
  core::TrainingState state;  // untouched for v1 files; discarded either way
  Status status = core::CheckpointManager::LoadFile(checkpoint_path,
                                                    candidate.get(), &state);
  if (!status.ok()) {
    reload_failures_.Increment();
    return status;
  }
  candidate->Eval();

  // Canary validation: the candidate must reproduce the declared output
  // geometry with finite values on the held reference window.
  Embeddings canary_out = EncodeWithModel(candidate.get(), canary_);
  const bool corrupt_injected =
      fault::Enabled() && fault::At("serve_reload_corrupt");
  const int64_t non_finite =
      kernels::CountNonFinite(canary_out.instance.data().data(),
                              canary_out.instance.numel()) +
      kernels::CountNonFinite(canary_out.timestamp.data().data(),
                              canary_out.timestamp.numel());
  if (canary_out.instance.size(0) != 1 ||
      canary_out.instance.size(1) != candidate->PooledDim(config_.pooling) ||
      candidate->PooledDim(config_.pooling) != embedding_dim()) {
    reload_failures_.Increment();
    return Status::Error(
        StatusCode::kInternal,
        "reload rejected: canary embedding geometry mismatch for " +
            checkpoint_path);
  }
  if (non_finite > 0 || corrupt_injected) {
    reload_failures_.Increment();
    TIMEDRL_LOG_WARNING << "reload of " << checkpoint_path
                        << " rejected: canary produced "
                        << (corrupt_injected ? "an injected corruption"
                                             : "non-finite embeddings")
                        << "; the previous model keeps serving";
    return Status::Error(StatusCode::kInternal,
                         "reload rejected: canary encode of " +
                             checkpoint_path +
                             " produced non-finite embeddings");
  }

  {
    std::lock_guard<std::mutex> lock(reload_mutex_);
    pending_model_ = std::move(candidate);
    reload_pending_.store(true, std::memory_order_release);
  }
  return Status::Ok();
}

void InferenceSession::MaybeApplyReload() {
  if (!reload_pending_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(reload_mutex_);
  if (pending_model_ != nullptr) {
    model_ = std::move(pending_model_);
    reloads_.Increment();
    reloads_applied_.fetch_add(1, std::memory_order_acq_rel);
  }
  reload_pending_.store(false, std::memory_order_release);
}

Embeddings InferenceSession::EncodeWithModel(core::TimeDrlModel* model,
                                             const Tensor& x) {
  TIMEDRL_CHECK_EQ(x.dim(), 3) << "Encode input must be [B, T, C]";
  TIMEDRL_CHECK_EQ(x.size(1), config_.model.input_length);
  TIMEDRL_CHECK_EQ(x.size(2), config_.model.input_channels);
  const int64_t batch = x.size(0);

  // Pad up to the nearest planned shape so the backbone (and the pool's
  // bucket population) only ever sees planned batch sizes.
  const int64_t planned = PlannedBatch(batch);
  Tensor input = x;
  if (planned != batch) {
    const int64_t row = x.size(1) * x.size(2);
    std::vector<float> padded = pool::AcquireUninit(planned * row);
    std::copy(x.data().begin(), x.data().end(), padded.begin());
    std::fill(padded.begin() + batch * row, padded.end(), 0.0f);
    input = Tensor::FromVector({planned, x.size(1), x.size(2)},
                               std::move(padded));
  }

  core::TimeDrlModel::Encoded encoded = model->Encode(input);
  Embeddings result;
  result.instance = model->PooledInstance(encoded, config_.pooling);
  result.timestamp = encoded.timestamp;
  if (planned != batch) {
    result.instance = Slice(result.instance, 0, 0, batch);
    result.timestamp = Slice(result.timestamp, 0, 0, batch);
  }
  return result;
}

Embeddings InferenceSession::Encode(const Tensor& x) {
  TIMEDRL_TRACE_SCOPE_CAT("serve/encode", "serve");
  MaybeApplyReload();
  requests_.Increment();
  batch_size_.Observe(static_cast<double>(x.size(0)));
  return EncodeWithModel(model_.get(), x);
}

std::vector<float> InferenceSession::EncodeWindow(
    const std::vector<float>& window) {
  const int64_t expected =
      config_.model.input_length * config_.model.input_channels;
  TIMEDRL_CHECK_EQ(static_cast<int64_t>(window.size()), expected)
      << "EncodeWindow expects input_length * input_channels values";
  std::vector<float> values = pool::AcquireUninit(expected);
  std::copy(window.begin(), window.end(), values.begin());
  Tensor x = Tensor::FromVector(
      {1, config_.model.input_length, config_.model.input_channels},
      std::move(values));
  Embeddings embeddings = Encode(x);
  const std::vector<float>& data = embeddings.instance.data();
  return std::vector<float>(data.begin(), data.end());
}

}  // namespace timedrl::serve
