#include "serve/micro_batcher.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <string>
#include <utility>

#include "obs/trace.h"
#include "tensor/buffer_pool.h"
#include "util/check.h"
#include "util/env.h"

namespace timedrl::serve {
MicroBatcherOptions MicroBatcherOptions::FromEnv() {
  MicroBatcherOptions options;
  options.max_batch = util::Env::GetInt("TIMEDRL_SERVE_MAX_BATCH",
                                        options.max_batch, /*min_value=*/1);
  options.max_delay_us = util::Env::GetInt(
      "TIMEDRL_SERVE_MAX_DELAY_US", options.max_delay_us, /*min_value=*/1);
  return options;
}

MicroBatcher::MicroBatcher(InferenceSession* session,
                           MicroBatcherOptions options)
    : session_(session), options_(options) {
  TIMEDRL_CHECK(session_ != nullptr);
  options_.max_batch =
      std::min(std::max<int64_t>(options_.max_batch, 1), session_->max_batch());
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
}

MicroBatcher::~MicroBatcher() { Shutdown(); }

std::future<std::vector<float>> MicroBatcher::Submit(
    std::vector<float> window) {
  Request request;
  request.window = std::move(window);
  request.enqueue_ns = obs::TraceNowNs();
  std::future<std::vector<float>> future = request.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    TIMEDRL_CHECK(!shutdown_) << "Submit after MicroBatcher::Shutdown";
    queue_.push_back(std::move(request));
  }
  wake_.notify_one();
  return future;
}

std::vector<float> MicroBatcher::Encode(std::vector<float> window) {
  return Submit(std::move(window)).get();
}

void MicroBatcher::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_ && !dispatcher_.joinable()) return;
    shutdown_ = true;
  }
  wake_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

void MicroBatcher::DispatcherLoop() {
  // The dispatcher owns all session calls, so the pool caches that make
  // encodes allocation-free live on this thread — warm them here, not on
  // the constructing thread.
  session_->Warmup();

  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    wake_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
    if (queue_.empty()) break;  // shutdown with a drained queue

    // First request of the batch has arrived; linger briefly for more.
    if (options_.max_delay_us > 0 &&
        static_cast<int64_t>(queue_.size()) < options_.max_batch &&
        !shutdown_) {
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::microseconds(options_.max_delay_us);
      wake_.wait_until(lock, deadline, [this] {
        return shutdown_ ||
               static_cast<int64_t>(queue_.size()) >= options_.max_batch;
      });
    }

    const int64_t take =
        std::min<int64_t>(static_cast<int64_t>(queue_.size()),
                          options_.max_batch);
    std::vector<Request> batch;
    batch.reserve(take);
    for (int64_t i = 0; i < take; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    lock.unlock();
    RunBatch(std::move(batch));
    lock.lock();
  }
}

void MicroBatcher::RunBatch(std::vector<Request> batch) {
  TIMEDRL_TRACE_SCOPE_CAT("serve/batch", "serve");
  static obs::Histogram& queue_ns =
      obs::Registry::Global().GetHistogram("serve.queue_ns");
  const int64_t dispatch_ns = obs::TraceNowNs();
  for (const Request& request : batch) {
    queue_ns.Observe(static_cast<double>(dispatch_ns - request.enqueue_ns));
  }

  const int64_t window = session_->model_config().input_length;
  const int64_t channels = session_->model_config().input_channels;
  const int64_t row = window * channels;
  const int64_t n = static_cast<int64_t>(batch.size());

  std::vector<float> values = pool::AcquireUninit(n * row);
  for (int64_t i = 0; i < n; ++i) {
    TIMEDRL_CHECK_EQ(static_cast<int64_t>(batch[i].window.size()), row)
        << "window must hold input_length * input_channels values";
    std::copy(batch[i].window.begin(), batch[i].window.end(),
              values.begin() + i * row);
  }
  Tensor x = Tensor::FromVector({n, window, channels}, std::move(values));

  Embeddings embeddings = session_->Encode(x);
  const std::vector<float>& instance = embeddings.instance.data();
  const int64_t dim = session_->embedding_dim();
  for (int64_t i = 0; i < n; ++i) {
    batch[i].promise.set_value(std::vector<float>(
        instance.begin() + i * dim, instance.begin() + (i + 1) * dim));
  }
}

}  // namespace timedrl::serve
