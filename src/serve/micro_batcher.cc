#include "serve/micro_batcher.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "obs/logging.h"
#include "obs/trace.h"
#include "tensor/buffer_pool.h"
#include "tensor/kernels/nonfinite.h"
#include "util/check.h"
#include "util/env.h"
#include "util/fault_inject.h"

namespace timedrl::serve {
namespace {

/// Steady-clock nanoseconds; the one clock used for enqueue stamps,
/// deadlines, and the dispatcher heartbeat so comparisons are meaningful.
int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

util::StatusOr<Embedding> ErrorResult(StatusCode code, std::string message) {
  return util::StatusOr<Embedding>(Status::Error(code, std::move(message)));
}

}  // namespace

MicroBatcherOptions MicroBatcherOptions::FromEnv() {
  MicroBatcherOptions options;
  options.max_batch = util::Env::GetInt("TIMEDRL_SERVE_MAX_BATCH",
                                        options.max_batch, /*min_value=*/1);
  options.max_delay_us = util::Env::GetInt(
      "TIMEDRL_SERVE_MAX_DELAY_US", options.max_delay_us, /*min_value=*/0);
  options.max_queue = util::Env::GetInt("TIMEDRL_SERVE_MAX_QUEUE",
                                        options.max_queue, /*min_value=*/1);
  options.default_deadline_us =
      util::Env::GetInt("TIMEDRL_SERVE_DEADLINE_US",
                        options.default_deadline_us, /*min_value=*/0);
  options.stall_timeout_ms =
      util::Env::GetInt("TIMEDRL_SERVE_STALL_TIMEOUT_MS",
                        options.stall_timeout_ms, /*min_value=*/0);
  options.breaker_threshold =
      util::Env::GetInt("TIMEDRL_SERVE_BREAKER_THRESHOLD",
                        options.breaker_threshold, /*min_value=*/1);
  options.breaker_probe_ms =
      util::Env::GetInt("TIMEDRL_SERVE_BREAKER_PROBE_MS",
                        options.breaker_probe_ms, /*min_value=*/1);
  return options;
}

MicroBatcher::MicroBatcher(InferenceSession* session,
                           MicroBatcherOptions options)
    : session_(session),
      options_(options),
      queue_ns_(obs::Registry::Global().GetHistogram("serve.queue_ns")),
      deadline_exceeded_(
          obs::Registry::Global().GetCounter("serve.deadline_exceeded")),
      shed_(obs::Registry::Global().GetCounter("serve.shed")),
      breaker_state_(obs::Registry::Global().GetGauge("serve.breaker_state")),
      heartbeat_gauge_(
          obs::Registry::Global().GetGauge("serve.dispatcher_heartbeat_ns")) {
  TIMEDRL_CHECK(session_ != nullptr);
  options_.max_batch =
      std::min(std::max<int64_t>(options_.max_batch, 1), session_->max_batch());
  options_.max_delay_us = std::max<int64_t>(options_.max_delay_us, 0);
  options_.max_queue = std::max<int64_t>(options_.max_queue, 1);
  options_.default_deadline_us =
      std::max<int64_t>(options_.default_deadline_us, 0);
  options_.stall_timeout_ms = std::max<int64_t>(options_.stall_timeout_ms, 0);
  options_.breaker_threshold =
      std::max<int64_t>(options_.breaker_threshold, 1);
  options_.breaker_probe_ms = std::max<int64_t>(options_.breaker_probe_ms, 1);
  breaker_state_.Set(0);
  heartbeat_ns_ = NowNs();
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
}

MicroBatcher::~MicroBatcher() { Shutdown(); }

std::future<util::StatusOr<Embedding>> MicroBatcher::Submit(
    std::vector<float> window, SubmitOptions submit) {
  Request request;
  request.window = std::move(window);
  request.enqueue_ns = NowNs();
  const int64_t deadline_us = submit.deadline_us < 0
                                  ? options_.default_deadline_us
                                  : submit.deadline_us;
  if (deadline_us > 0) {
    request.deadline_ns = request.enqueue_ns + deadline_us * 1000;
  }
  std::future<util::StatusOr<Embedding>> future =
      request.promise.get_future();

  const int64_t row = session_->model_config().input_length *
                      session_->model_config().input_channels;
  if (static_cast<int64_t>(request.window.size()) != row) {
    request.promise.set_value(ErrorResult(
        StatusCode::kStructureMismatch,
        "window must hold input_length * input_channels = " +
            std::to_string(row) + " values, got " +
            std::to_string(request.window.size())));
    return future;
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);

    // Stall watchdog: a batch that has been in flight past the timeout
    // means the dispatcher is wedged inside an encode. Fail the batcher
    // into its terminal unavailable state instead of letting clients queue
    // behind a hang.
    if (!unavailable_ && options_.stall_timeout_ms > 0 && batch_in_flight_ &&
        request.enqueue_ns - heartbeat_ns_ >
            options_.stall_timeout_ms * 1000000) {
      unavailable_ = true;
      TIMEDRL_LOG_ERROR
          << "serve dispatcher stalled (batch in flight for more than "
          << options_.stall_timeout_ms
          << "ms); batcher is now unavailable and shedding";
      FailQueuedLocked(StatusCode::kUnavailable,
                       "dispatcher stalled; batcher is unavailable");
    }

    if (shutdown_ || unavailable_) {
      shed_.Increment();
      request.promise.set_value(ErrorResult(
          StatusCode::kUnavailable,
          shutdown_ ? "MicroBatcher is shut down"
                    : "batcher unavailable: dispatcher stalled"));
      return future;
    }
    if (breaker_open_) {
      shed_.Increment();
      request.promise.set_value(ErrorResult(
          StatusCode::kUnavailable,
          "circuit breaker open: recent batches produced non-finite "
          "embeddings"));
      return future;
    }
    if (static_cast<int64_t>(queue_.size()) >= options_.max_queue) {
      shed_.Increment();
      request.promise.set_value(ErrorResult(
          StatusCode::kResourceExhausted,
          "serve queue full (max_queue=" +
              std::to_string(options_.max_queue) + ")"));
      return future;
    }
    queue_.push_back(std::move(request));
  }
  wake_.notify_one();
  return future;
}

util::StatusOr<Embedding> MicroBatcher::Encode(std::vector<float> window,
                                               SubmitOptions submit) {
  return Submit(std::move(window), submit).get();
}

void MicroBatcher::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_ && !dispatcher_.joinable()) return;
    shutdown_ = true;
  }
  wake_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

bool MicroBatcher::unavailable() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return unavailable_;
}

bool MicroBatcher::breaker_open() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return breaker_open_;
}

void MicroBatcher::FailQueuedLocked(StatusCode code, const char* message) {
  while (!queue_.empty()) {
    queue_.front().promise.set_value(
        ErrorResult(code, message));
    queue_.pop_front();
    shed_.Increment();
  }
}

void MicroBatcher::ExpireDeadlinesLocked(int64_t now_ns) {
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (it->deadline_ns != 0 && now_ns >= it->deadline_ns) {
      it->promise.set_value(ErrorResult(
          StatusCode::kDeadlineExceeded,
          "deadline expired before the request was dispatched"));
      deadline_exceeded_.Increment();
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
}

void MicroBatcher::DispatcherLoop() {
  // The dispatcher owns all session calls, so the pool caches that make
  // encodes allocation-free live on this thread — warm them here, not on
  // the constructing thread.
  session_->Warmup();

  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    heartbeat_ns_ = NowNs();
    heartbeat_gauge_.Set(static_cast<double>(heartbeat_ns_));

    if (unavailable_) {
      // Terminal draining state: nothing is served anymore; Submit sheds
      // at the gate, so just hold until shutdown.
      FailQueuedLocked(StatusCode::kUnavailable,
                       "dispatcher stalled; batcher is unavailable");
      wake_.wait(lock, [this] { return shutdown_; });
      FailQueuedLocked(StatusCode::kUnavailable,
                       "dispatcher stalled; batcher is unavailable");
      break;
    }

    if (breaker_open_) {
      // Shed anything admitted before the breaker opened, then probe the
      // session with the canary until it comes back finite.
      FailQueuedLocked(StatusCode::kUnavailable,
                       "circuit breaker open: recent batches produced "
                       "non-finite embeddings");
      wake_.wait_for(lock,
                     std::chrono::milliseconds(options_.breaker_probe_ms),
                     [this] { return shutdown_; });
      if (shutdown_) {
        FailQueuedLocked(StatusCode::kUnavailable,
                         "shutting down with circuit breaker open");
        break;
      }
      lock.unlock();
      const bool healthy = ProbeSessionHealthy();
      lock.lock();
      if (healthy) {
        breaker_open_ = false;
        consecutive_poisoned_ = 0;
        breaker_state_.Set(0);
        TIMEDRL_LOG_INFO << "serve circuit breaker closed after a clean "
                            "canary probe";
      }
      continue;
    }

    wake_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
    ExpireDeadlinesLocked(NowNs());
    if (queue_.empty()) {
      if (shutdown_) break;
      continue;
    }

    // First request of the batch has arrived; linger briefly for more.
    if (options_.max_delay_us > 0 &&
        static_cast<int64_t>(queue_.size()) < options_.max_batch &&
        !shutdown_) {
      const auto linger = std::chrono::steady_clock::now() +
                          std::chrono::microseconds(options_.max_delay_us);
      wake_.wait_until(lock, linger, [this] {
        return shutdown_ ||
               static_cast<int64_t>(queue_.size()) >= options_.max_batch;
      });
    }

    // Expire anything whose deadline passed while we lingered: encoding a
    // request its caller has already abandoned wastes a batch slot.
    ExpireDeadlinesLocked(NowNs());
    if (queue_.empty()) {
      if (shutdown_) break;
      continue;
    }

    const int64_t take = std::min<int64_t>(
        static_cast<int64_t>(queue_.size()), options_.max_batch);
    std::vector<Request> batch;
    batch.reserve(take);
    for (int64_t i = 0; i < take; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    batch_in_flight_ = true;
    heartbeat_ns_ = NowNs();
    heartbeat_gauge_.Set(static_cast<double>(heartbeat_ns_));
    lock.unlock();
    RunBatch(std::move(batch));
    lock.lock();
    batch_in_flight_ = false;
  }
}

void MicroBatcher::RunBatch(std::vector<Request> batch) {
  TIMEDRL_TRACE_SCOPE_CAT("serve/batch", "serve");
  const int64_t dispatch_ns = NowNs();
  for (const Request& request : batch) {
    queue_ns_.Observe(static_cast<double>(dispatch_ns - request.enqueue_ns));
  }

  // Fault point: a wedged/slow model server. Long enough for the stall
  // watchdog (with a test-sized timeout) and the soak test to observe it.
  if (fault::Enabled() && fault::At("serve_slow_encode")) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  const int64_t window = session_->model_config().input_length;
  const int64_t channels = session_->model_config().input_channels;
  const int64_t row = window * channels;
  const int64_t n = static_cast<int64_t>(batch.size());

  bool batch_failed = false;
  std::string failure;
  Embeddings embeddings;
  // Exceptions are not part of the library's style, but the promise-
  // fulfillment guarantee must survive whatever the standard library
  // throws (bad_alloc above all): a request that reached a batch resolves,
  // period.
  try {
    std::vector<float> values = pool::AcquireUninit(n * row);
    for (int64_t i = 0; i < n; ++i) {
      std::copy(batch[i].window.begin(), batch[i].window.end(),
                values.begin() + i * row);
    }
    Tensor x = Tensor::FromVector({n, window, channels}, std::move(values));
    embeddings = session_->Encode(x);
  } catch (const std::exception& e) {
    batch_failed = true;
    failure = e.what();
  } catch (...) {
    batch_failed = true;
    failure = "unknown exception";
  }

  bool any_poisoned = false;
  if (batch_failed) {
    any_poisoned = true;
    for (Request& request : batch) {
      request.promise.set_value(ErrorResult(
          StatusCode::kInternal, "batch encode failed: " + failure));
    }
  } else {
    // Output guard: scan each row with the anomaly guard's CountNonFinite
    // kernel; a poisoned row gets a typed error instead of silent garbage.
    const bool poison_injected =
        fault::Enabled() && fault::At("serve_nan_embedding");
    const std::vector<float>& instance = embeddings.instance.data();
    const int64_t dim = session_->embedding_dim();
    for (int64_t i = 0; i < n; ++i) {
      const float* row_values = instance.data() + i * dim;
      const bool poisoned =
          poison_injected || kernels::CountNonFinite(row_values, dim) > 0;
      if (poisoned) {
        any_poisoned = true;
        batch[i].promise.set_value(ErrorResult(
            StatusCode::kInternal,
            "encode produced a non-finite embedding for this request"));
      } else {
        batch[i].promise.set_value(Embedding(
            instance.begin() + i * dim, instance.begin() + (i + 1) * dim));
      }
    }
  }

  std::lock_guard<std::mutex> lock(mutex_);
  if (any_poisoned) {
    ++consecutive_poisoned_;
    if (consecutive_poisoned_ >= options_.breaker_threshold &&
        !breaker_open_) {
      breaker_open_ = true;
      breaker_state_.Set(1);
      TIMEDRL_LOG_ERROR << "serve circuit breaker opened after "
                        << consecutive_poisoned_
                        << " consecutive poisoned batches; shedding until a "
                           "canary probe succeeds";
    }
  } else {
    consecutive_poisoned_ = 0;
  }
}

bool MicroBatcher::ProbeSessionHealthy() {
  TIMEDRL_TRACE_SCOPE_CAT("serve/probe", "serve");
  const int64_t window = session_->model_config().input_length;
  const int64_t channels = session_->model_config().input_channels;
  Embeddings out;
  try {
    Tensor x = Tensor::Zeros({1, window, channels});
    out = session_->Encode(x);
  } catch (...) {
    return false;
  }
  // The probe sees the same poisoned world a real batch would: a pending
  // model reload is applied by Encode, and an open-ended nan-injection
  // spec keeps the probe failing too.
  if (fault::Enabled() && fault::At("serve_nan_embedding")) return false;
  return kernels::CountNonFinite(out.instance.data().data(),
                                 out.instance.numel()) == 0;
}

}  // namespace timedrl::serve
