#include "optim/optimizer.h"

#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace timedrl::optim {

// Update kernels below are fused single passes: each parameter buffer is
// read-modify-written exactly once per step, with no temporary tensors. They
// parallelize ACROSS parameters on the global thread pool — a parameter is
// updated entirely by one thread with a fixed inner loop order, so results
// are bitwise identical for every pool size (same contract as the tensor
// kernels; see util/thread_pool.h).

Optimizer::Optimizer(std::vector<Tensor> parameters, float learning_rate)
    : parameters_(std::move(parameters)), learning_rate_(learning_rate) {
  for (const Tensor& parameter : parameters_) {
    TIMEDRL_CHECK(parameter.defined() && parameter.requires_grad());
  }
}

namespace {

// Shared validation for SetState: type tag, slot count, and per-slot sizes
// must match. `expected_sizes` lists the element count of each slot in
// order.
Status ValidateState(const OptimizerState& state, const std::string& type,
                     const std::vector<size_t>& expected_sizes) {
  if (state.type != type) {
    return Status::Error(StatusCode::kStructureMismatch,
                         "optimizer type mismatch: checkpoint '" + state.type +
                             "' vs '" + type + "'");
  }
  if (state.slots.size() != expected_sizes.size()) {
    return Status::Error(StatusCode::kStructureMismatch,
                         "optimizer slot count mismatch");
  }
  for (size_t i = 0; i < state.slots.size(); ++i) {
    if (state.slots[i].size() != expected_sizes[i]) {
      return Status::Error(StatusCode::kStructureMismatch,
                           "optimizer slot size mismatch");
    }
  }
  return Status::Ok();
}

}  // namespace

Status Optimizer::SetState(const OptimizerState& state) {
  return ValidateState(state, "base", {});
}

void Optimizer::ZeroGrad() {
  TIMEDRL_TRACE_SCOPE_CAT("optimizer/zero_grad", "optim");
  ParallelFor(0, static_cast<int64_t>(parameters_.size()), 1,
              [&](int64_t begin, int64_t end) {
                for (int64_t i = begin; i < end; ++i) {
                  parameters_[i].ZeroGrad();
                }
              });
}

// ---- SGD ---------------------------------------------------------------------

Sgd::Sgd(std::vector<Tensor> parameters, float learning_rate, float momentum)
    : Optimizer(std::move(parameters), learning_rate), momentum_(momentum) {
  velocity_.resize(parameters_.size());
  for (size_t i = 0; i < parameters_.size(); ++i) {
    velocity_[i].assign(parameters_[i].numel(), 0.0f);
  }
}

void Sgd::Step() {
  TIMEDRL_TRACE_SCOPE_CAT("optimizer/sgd_step", "optim");
  static obs::Counter& steps =
      obs::Registry::Global().GetCounter("optim.steps");
  steps.Increment();
  ParallelFor(
      0, static_cast<int64_t>(parameters_.size()), 1,
      [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) {
          Tensor& parameter = parameters_[i];
          if (!parameter.has_grad()) continue;
          const std::vector<float>& grad = parameter.grad();
          std::vector<float>& value = parameter.data();
          std::vector<float>& velocity = velocity_[i];
          for (size_t j = 0; j < value.size(); ++j) {
            velocity[j] = momentum_ * velocity[j] + grad[j];
            value[j] -= learning_rate_ * velocity[j];
          }
        }
      });
}

OptimizerState Sgd::GetState() const {
  OptimizerState state;
  state.type = "sgd";
  state.slots = velocity_;
  return state;
}

Status Sgd::SetState(const OptimizerState& state) {
  std::vector<size_t> sizes;
  sizes.reserve(velocity_.size());
  for (const auto& v : velocity_) sizes.push_back(v.size());
  Status status = ValidateState(state, "sgd", sizes);
  if (!status.ok()) return status;
  velocity_ = state.slots;
  return Status::Ok();
}

// ---- Adam / AdamW ---------------------------------------------------------------

Adam::Adam(std::vector<Tensor> parameters, float learning_rate, float beta1,
           float beta2, float eps, float coupled_weight_decay)
    : Optimizer(std::move(parameters), learning_rate),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(coupled_weight_decay) {
  m_.resize(parameters_.size());
  v_.resize(parameters_.size());
  for (size_t i = 0; i < parameters_.size(); ++i) {
    m_[i].assign(parameters_[i].numel(), 0.0f);
    v_[i].assign(parameters_[i].numel(), 0.0f);
  }
}

void Adam::Step() {
  TIMEDRL_TRACE_SCOPE_CAT("optimizer/adam_step", "optim");
  static obs::Counter& steps =
      obs::Registry::Global().GetCounter("optim.steps");
  steps.Increment();
  ++step_count_;
  const float bias1 = 1.0f - std::pow(beta1_, static_cast<float>(step_count_));
  const float bias2 = 1.0f - std::pow(beta2_, static_cast<float>(step_count_));
  ParallelFor(
      0, static_cast<int64_t>(parameters_.size()), 1,
      [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) {
          Tensor& parameter = parameters_[i];
          if (!parameter.has_grad()) continue;
          const std::vector<float>& grad = parameter.grad();
          std::vector<float>& value = parameter.data();
          std::vector<float>& m = m_[i];
          std::vector<float>& v = v_[i];
          for (size_t j = 0; j < value.size(); ++j) {
            float g = grad[j];
            if (!decoupled_decay_ && weight_decay_ != 0.0f) {
              g += weight_decay_ * value[j];
            }
            m[j] = beta1_ * m[j] + (1.0f - beta1_) * g;
            v[j] = beta2_ * v[j] + (1.0f - beta2_) * g * g;
            const float m_hat = m[j] / bias1;
            const float v_hat = v[j] / bias2;
            if (decoupled_decay_ && weight_decay_ != 0.0f) {
              value[j] -= learning_rate_ * weight_decay_ * value[j];
            }
            value[j] -= learning_rate_ * m_hat / (std::sqrt(v_hat) + eps_);
          }
        }
      });
}

OptimizerState Adam::GetState() const {
  OptimizerState state;
  state.type = decoupled_decay_ ? "adamw" : "adam";
  state.step_count = step_count_;
  state.slots.reserve(m_.size() + v_.size());
  state.slots.insert(state.slots.end(), m_.begin(), m_.end());
  state.slots.insert(state.slots.end(), v_.begin(), v_.end());
  return state;
}

Status Adam::SetState(const OptimizerState& state) {
  std::vector<size_t> sizes;
  sizes.reserve(m_.size() + v_.size());
  for (const auto& m : m_) sizes.push_back(m.size());
  for (const auto& v : v_) sizes.push_back(v.size());
  Status status = ValidateState(
      state, decoupled_decay_ ? "adamw" : "adam", sizes);
  if (!status.ok()) return status;
  step_count_ = state.step_count;
  for (size_t i = 0; i < m_.size(); ++i) m_[i] = state.slots[i];
  for (size_t i = 0; i < v_.size(); ++i) v_[i] = state.slots[m_.size() + i];
  return Status::Ok();
}

AdamW::AdamW(std::vector<Tensor> parameters, float learning_rate,
             float weight_decay, float beta1, float beta2, float eps)
    : Adam(std::move(parameters), learning_rate, beta1, beta2, eps,
           /*coupled_weight_decay=*/0.0f) {
  weight_decay_ = weight_decay;
  decoupled_decay_ = true;
}

float ClipGradNorm(const std::vector<Tensor>& parameters, float max_norm) {
  TIMEDRL_TRACE_SCOPE_CAT("optimizer/clip_grad_norm", "optim");
  TIMEDRL_CHECK_GT(max_norm, 0.0f);
  double total_sq = 0.0;
  for (const Tensor& parameter : parameters) {
    if (!parameter.has_grad()) continue;
    for (float g : parameter.grad()) total_sq += double{g} * double{g};
  }
  const float norm = static_cast<float>(std::sqrt(total_sq));
  if (norm > max_norm) {
    const float scale = max_norm / (norm + 1e-6f);
    for (const Tensor& parameter : parameters) {
      if (!parameter.has_grad()) continue;
      // grad() is const-view; scale through the impl's buffer.
      auto& grad = const_cast<std::vector<float>&>(parameter.grad());
      for (float& g : grad) g *= scale;
    }
  }
  return norm;
}

}  // namespace timedrl::optim
