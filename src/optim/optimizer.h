// Gradient-descent optimizers: SGD (+momentum), Adam, AdamW.

#ifndef TIMEDRL_OPTIM_OPTIMIZER_H_
#define TIMEDRL_OPTIM_OPTIMIZER_H_

#include <string>
#include <vector>

#include "tensor/tensor.h"
#include "util/status.h"

namespace timedrl::optim {

/// Snapshot of optimizer internals for checkpointing. `slots` order is
/// optimizer-defined: Adam/AdamW store all first moments then all second
/// moments (one vector per parameter each); SGD stores momentum
/// velocities. Restoring into a mismatched optimizer fails.
struct OptimizerState {
  std::string type;  // "sgd", "adam", "adamw"
  int64_t step_count = 0;
  std::vector<std::vector<float>> slots;
};

/// Base optimizer over a fixed parameter list.
///
/// Usage per training step:
///   optimizer.ZeroGrad(); loss.Backward(); optimizer.Step();
class Optimizer {
 public:
  explicit Optimizer(std::vector<Tensor> parameters, float learning_rate);
  virtual ~Optimizer() = default;
  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update using the parameters' accumulated gradients.
  virtual void Step() = 0;

  /// Clears all parameter gradients.
  void ZeroGrad();

  float learning_rate() const { return learning_rate_; }
  void set_learning_rate(float lr) { learning_rate_ = lr; }

  const std::vector<Tensor>& parameters() const { return parameters_; }

  /// Internal state (moments, step counts) for checkpointing. The base
  /// optimizer is stateless.
  virtual OptimizerState GetState() const { return {"base", 0, {}}; }

  /// Restores state produced by GetState() on a structurally identical
  /// optimizer (same type, same parameter list).
  virtual Status SetState(const OptimizerState& state);

 protected:
  std::vector<Tensor> parameters_;
  float learning_rate_;
};

/// Stochastic gradient descent with optional classical momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Tensor> parameters, float learning_rate,
      float momentum = 0.0f);

  void Step() override;
  OptimizerState GetState() const override;
  Status SetState(const OptimizerState& state) override;

 private:
  float momentum_;
  std::vector<std::vector<float>> velocity_;
};

/// Adam (Kingma & Ba). `coupled_weight_decay` adds L2 into the gradient.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Tensor> parameters, float learning_rate,
       float beta1 = 0.9f, float beta2 = 0.999f, float eps = 1e-8f,
       float coupled_weight_decay = 0.0f);

  void Step() override;
  OptimizerState GetState() const override;
  Status SetState(const OptimizerState& state) override;

 protected:
  float beta1_;
  float beta2_;
  float eps_;
  float weight_decay_;
  int64_t step_count_ = 0;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;

  /// When true, decay is decoupled (AdamW); otherwise coupled (classic Adam).
  bool decoupled_decay_ = false;
};

/// AdamW (Loshchilov & Hutter): Adam with decoupled weight decay, the
/// optimizer the paper uses for all experiments.
class AdamW : public Adam {
 public:
  AdamW(std::vector<Tensor> parameters, float learning_rate,
        float weight_decay = 1e-4f, float beta1 = 0.9f, float beta2 = 0.999f,
        float eps = 1e-8f);
};

/// Scales gradients so their global L2 norm is at most `max_norm`.
/// Returns the pre-clip norm.
float ClipGradNorm(const std::vector<Tensor>& parameters, float max_norm);

}  // namespace timedrl::optim

#endif  // TIMEDRL_OPTIM_OPTIMIZER_H_
