// Learning-rate schedules.

#ifndef TIMEDRL_OPTIM_LR_SCHEDULE_H_
#define TIMEDRL_OPTIM_LR_SCHEDULE_H_

#include <cstdint>

#include "optim/optimizer.h"

namespace timedrl::optim {

/// Base schedule: call Step() once per epoch (or per iteration, by choice)
/// to update the attached optimizer's learning rate.
class LrSchedule {
 public:
  explicit LrSchedule(Optimizer* optimizer);
  virtual ~LrSchedule() = default;

  void Step();
  int64_t step_count() const { return step_count_; }

 protected:
  /// Learning rate to apply at `step` (0-based, incremented before use).
  virtual float LearningRateAt(int64_t step) = 0;

  Optimizer* optimizer_;
  float base_learning_rate_;

 private:
  int64_t step_count_ = 0;
};

/// Multiplies the learning rate by `gamma` every `step_size` steps.
class StepDecaySchedule : public LrSchedule {
 public:
  StepDecaySchedule(Optimizer* optimizer, int64_t step_size, float gamma);

 protected:
  float LearningRateAt(int64_t step) override;

 private:
  int64_t step_size_;
  float gamma_;
};

/// Cosine annealing from the base learning rate to `min_lr` over
/// `total_steps` steps.
class CosineSchedule : public LrSchedule {
 public:
  CosineSchedule(Optimizer* optimizer, int64_t total_steps,
                 float min_lr = 0.0f);

 protected:
  float LearningRateAt(int64_t step) override;

 private:
  int64_t total_steps_;
  float min_lr_;
};

}  // namespace timedrl::optim

#endif  // TIMEDRL_OPTIM_LR_SCHEDULE_H_
