#include "optim/lr_schedule.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace timedrl::optim {

LrSchedule::LrSchedule(Optimizer* optimizer)
    : optimizer_(optimizer),
      base_learning_rate_(optimizer->learning_rate()) {
  TIMEDRL_CHECK(optimizer != nullptr);
}

void LrSchedule::Step() {
  ++step_count_;
  optimizer_->set_learning_rate(LearningRateAt(step_count_));
}

StepDecaySchedule::StepDecaySchedule(Optimizer* optimizer, int64_t step_size,
                                     float gamma)
    : LrSchedule(optimizer), step_size_(step_size), gamma_(gamma) {
  TIMEDRL_CHECK_GT(step_size, 0);
}

float StepDecaySchedule::LearningRateAt(int64_t step) {
  return base_learning_rate_ *
         std::pow(gamma_, static_cast<float>(step / step_size_));
}

CosineSchedule::CosineSchedule(Optimizer* optimizer, int64_t total_steps,
                               float min_lr)
    : LrSchedule(optimizer), total_steps_(total_steps), min_lr_(min_lr) {
  TIMEDRL_CHECK_GT(total_steps, 0);
}

float CosineSchedule::LearningRateAt(int64_t step) {
  const float progress = std::min(
      1.0f, static_cast<float>(step) / static_cast<float>(total_steps_));
  const float cosine = 0.5f * (1.0f + std::cos(progress * 3.14159265358979f));
  return min_lr_ + (base_learning_rate_ - min_lr_) * cosine;
}

}  // namespace timedrl::optim
