// Differentiable tensor operations.
//
// All functions return fresh tensors and record autograd edges when gradient
// recording is active (see GradEnabled()). Binary elementwise ops broadcast
// with NumPy semantics.

#ifndef TIMEDRL_TENSOR_OPS_H_
#define TIMEDRL_TENSOR_OPS_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace timedrl {

// ---- Elementwise binary (broadcasting) ---------------------------------------

Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor Div(const Tensor& a, const Tensor& b);
/// Elementwise maximum of two tensors.
Tensor Maximum(const Tensor& a, const Tensor& b);

inline Tensor operator+(const Tensor& a, const Tensor& b) { return Add(a, b); }
inline Tensor operator-(const Tensor& a, const Tensor& b) { return Sub(a, b); }
inline Tensor operator*(const Tensor& a, const Tensor& b) { return Mul(a, b); }
inline Tensor operator/(const Tensor& a, const Tensor& b) { return Div(a, b); }

// Scalar-tensor conveniences (scalar is a constant, not a graph node).
Tensor Add(const Tensor& a, float b);
Tensor Sub(const Tensor& a, float b);
Tensor Sub(float a, const Tensor& b);
Tensor Mul(const Tensor& a, float b);
Tensor Div(const Tensor& a, float b);
Tensor Div(float a, const Tensor& b);

inline Tensor operator+(const Tensor& a, float b) { return Add(a, b); }
inline Tensor operator+(float a, const Tensor& b) { return Add(b, a); }
inline Tensor operator-(const Tensor& a, float b) { return Sub(a, b); }
inline Tensor operator-(float a, const Tensor& b) { return Sub(a, b); }
inline Tensor operator*(const Tensor& a, float b) { return Mul(a, b); }
inline Tensor operator*(float a, const Tensor& b) { return Mul(b, a); }
inline Tensor operator/(const Tensor& a, float b) { return Div(a, b); }
inline Tensor operator/(float a, const Tensor& b) { return Div(a, b); }

// ---- Elementwise unary --------------------------------------------------------

Tensor Neg(const Tensor& a);
inline Tensor operator-(const Tensor& a) { return Neg(a); }
Tensor Abs(const Tensor& a);
Tensor Exp(const Tensor& a);
/// Natural log; input must be positive.
Tensor Log(const Tensor& a);
Tensor Sqrt(const Tensor& a);
Tensor Tanh(const Tensor& a);
Tensor Sigmoid(const Tensor& a);
Tensor Relu(const Tensor& a);
/// Tanh-approximation GELU (as used by BERT/GPT implementations).
Tensor Gelu(const Tensor& a);
/// max(x, alpha*x) with alpha in (0, 1).
Tensor LeakyRelu(const Tensor& a, float alpha = 0.01f);
/// Numerically stable log(1 + exp(x)).
Tensor Softplus(const Tensor& a);
/// x * sigmoid(x) (SiLU / Swish).
Tensor Silu(const Tensor& a);
/// x for x >= 0, alpha*(exp(x)-1) otherwise.
Tensor Elu(const Tensor& a, float alpha = 1.0f);
/// Elementwise power with constant exponent.
Tensor Pow(const Tensor& a, float exponent);
/// max(a, floor) elementwise; gradient flows where a > floor.
Tensor ClampMin(const Tensor& a, float floor);

// ---- Shape ---------------------------------------------------------------------

/// Reinterprets the (contiguous) data with a new shape of equal numel.
/// One dimension may be -1 (inferred).
Tensor Reshape(const Tensor& a, Shape shape);
/// Generalized transpose: output dim i is input dim perm[i].
Tensor Permute(const Tensor& a, const std::vector<int64_t>& perm);
/// Swaps two dimensions.
Tensor Transpose(const Tensor& a, int64_t dim0, int64_t dim1);
/// Copies `len` entries of dimension `dim` starting at `start`.
Tensor Slice(const Tensor& a, int64_t dim, int64_t start, int64_t len);
/// Concatenates along `dim`; all other dims must match.
Tensor Concat(const std::vector<Tensor>& tensors, int64_t dim);
/// Stacks equal-shaped tensors along a new leading `dim`.
Tensor Stack(const std::vector<Tensor>& tensors, int64_t dim);
/// Materializes `a` broadcast to `shape`.
Tensor BroadcastTo(const Tensor& a, const Shape& shape);

// ---- Matmul --------------------------------------------------------------------

/// Batched matrix product: a [..., m, k] x b [..., k, n] -> [..., m, n].
/// Batch dims broadcast with NumPy semantics (e.g. [B,1,m,k] x [1,H,k,n]
/// -> [B,H,m,n]); a rank-2 operand is shared across all batches.
Tensor MatMul(const Tensor& a, const Tensor& b);

// ---- Reductions ------------------------------------------------------------------

/// Sum of all elements -> shape [1].
Tensor Sum(const Tensor& a);
/// Sum over `dims` (each unique); result keeps reduced dims as size-1 when
/// `keepdim`, otherwise drops them.
Tensor Sum(const Tensor& a, std::vector<int64_t> dims, bool keepdim = false);
Tensor Mean(const Tensor& a);
Tensor Mean(const Tensor& a, std::vector<int64_t> dims, bool keepdim = false);
/// Max over one dimension (values only; gradient routed to the argmax).
Tensor Max(const Tensor& a, int64_t dim, bool keepdim = false);
/// Argmax over one dimension; plain indices, no gradient.
std::vector<int64_t> ArgMax(const Tensor& a, int64_t dim);
/// Number of NaN/Inf entries in `a` (no gradient; reads data only). The
/// anomaly guard uses this to size up numerical blow-ups.
int64_t CountNonFinite(const Tensor& a);

// ---- Fused NN primitives ----------------------------------------------------------

/// Softmax along `dim` (numerically stabilized).
Tensor Softmax(const Tensor& a, int64_t dim);
/// Log-softmax along `dim`.
Tensor LogSoftmax(const Tensor& a, int64_t dim);
/// Mean negative log-likelihood of `labels` under softmax(logits).
/// logits: [N, K]; labels: N entries in [0, K).
Tensor CrossEntropy(const Tensor& logits, const std::vector<int64_t>& labels);
/// Mean squared error over all elements.
Tensor MseLoss(const Tensor& prediction, const Tensor& target);
/// Mean absolute error over all elements.
Tensor L1Loss(const Tensor& prediction, const Tensor& target);
/// Replaces entries where mask != 0 with `value` (mask is a constant).
Tensor MaskedFill(const Tensor& a, const Tensor& mask, float value);

// ---- Convolution / pooling ----------------------------------------------------------

/// 1-D convolution.
/// input [B, C_in, L], weight [C_out, C_in, K], optional bias [C_out].
/// Zero padding on both sides. Output length: (L + 2p - d*(K-1) - 1)/s + 1.
Tensor Conv1d(const Tensor& input, const Tensor& weight, const Tensor& bias,
              int64_t stride = 1, int64_t padding = 0, int64_t dilation = 1);
/// Max pooling over the last dimension of [B, C, L].
Tensor MaxPool1d(const Tensor& input, int64_t kernel, int64_t stride);
/// Average pooling over the last dimension of [B, C, L].
Tensor AvgPool1d(const Tensor& input, int64_t kernel, int64_t stride);

}  // namespace timedrl

#endif  // TIMEDRL_TENSOR_OPS_H_
