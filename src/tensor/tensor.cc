#include "obs/trace.h"
#include "tensor/tensor.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "tensor/buffer_pool.h"
#include "util/check.h"

namespace timedrl {

namespace {
thread_local ExecContext g_exec_context;
}  // namespace

ExecContext& ThreadExecContext() { return g_exec_context; }

bool GradEnabled() {
  return g_exec_context.grad_enabled &&
         g_exec_context.mode == ExecMode::kTraining;
}

int64_t GraphNodesCreated() { return g_exec_context.graph_nodes_created; }

NoGradGuard::NoGradGuard() : previous_(g_exec_context.grad_enabled) {
  g_exec_context.grad_enabled = false;
}

NoGradGuard::~NoGradGuard() { g_exec_context.grad_enabled = previous_; }

InferenceModeGuard::InferenceModeGuard(bool enable)
    : previous_(g_exec_context.mode) {
  if (enable) g_exec_context.mode = ExecMode::kInference;
}

InferenceModeGuard::~InferenceModeGuard() { g_exec_context.mode = previous_; }

TensorImpl::~TensorImpl() {
  pool::Release(std::move(data));
  pool::Release(std::move(grad));
}

std::vector<float>& TensorImpl::MutableGrad() {
  if (grad.empty()) grad = pool::Acquire(static_cast<int64_t>(data.size()));
  return grad;
}

// ---- Factories --------------------------------------------------------------

Tensor Tensor::Zeros(const Shape& shape, bool requires_grad) {
  return Full(shape, 0.0f, requires_grad);
}

Tensor Tensor::Ones(const Shape& shape, bool requires_grad) {
  return Full(shape, 1.0f, requires_grad);
}

Tensor Tensor::Full(const Shape& shape, float value, bool requires_grad) {
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = shape;
  if (value == 0.0f) {
    impl->data = pool::Acquire(NumElements(shape));
  } else {
    impl->data = pool::AcquireUninit(NumElements(shape));
    std::fill(impl->data.begin(), impl->data.end(), value);
  }
  impl->requires_grad = requires_grad;
  return Tensor(std::move(impl));
}

Tensor Tensor::FromVector(const Shape& shape, std::vector<float> values,
                          bool requires_grad) {
  TIMEDRL_CHECK_EQ(static_cast<int64_t>(values.size()), NumElements(shape))
      << "FromVector: " << values.size() << " values for shape "
      << ShapeToString(shape);
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = shape;
  impl->data = std::move(values);
  impl->requires_grad = requires_grad;
  return Tensor(std::move(impl));
}

Tensor Tensor::Scalar(float value, bool requires_grad) {
  return FromVector({1}, {value}, requires_grad);
}

Tensor Tensor::Randn(const Shape& shape, Rng& rng, float mean, float stddev,
                     bool requires_grad) {
  std::vector<float> values = pool::AcquireUninit(NumElements(shape));
  for (float& v : values) v = rng.Normal(mean, stddev);
  return FromVector(shape, std::move(values), requires_grad);
}

Tensor Tensor::Rand(const Shape& shape, Rng& rng, float lo, float hi,
                    bool requires_grad) {
  std::vector<float> values = pool::AcquireUninit(NumElements(shape));
  for (float& v : values) v = rng.Uniform(lo, hi);
  return FromVector(shape, std::move(values), requires_grad);
}

// ---- Introspection -----------------------------------------------------------

const Shape& Tensor::shape() const {
  TIMEDRL_CHECK(defined());
  return impl_->shape;
}

int64_t Tensor::numel() const {
  TIMEDRL_CHECK(defined());
  return impl_->numel();
}

int64_t Tensor::size(int64_t d) const {
  return shape()[NormalizeDim(d, dim())];
}

bool Tensor::requires_grad() const {
  TIMEDRL_CHECK(defined());
  return impl_->requires_grad;
}

void Tensor::set_requires_grad(bool value) {
  TIMEDRL_CHECK(defined());
  TIMEDRL_CHECK(impl_->parents.empty())
      << "requires_grad may only be toggled on leaf tensors";
  impl_->requires_grad = value;
}

std::vector<float>& Tensor::data() {
  TIMEDRL_CHECK(defined());
  return impl_->data;
}

const std::vector<float>& Tensor::data() const {
  TIMEDRL_CHECK(defined());
  return impl_->data;
}

const std::vector<float>& Tensor::grad() const {
  TIMEDRL_CHECK(defined());
  TIMEDRL_CHECK(!impl_->grad.empty()) << "tensor has no gradient";
  return impl_->grad;
}

bool Tensor::has_grad() const { return defined() && !impl_->grad.empty(); }

Tensor Tensor::GradTensor() const {
  const std::vector<float>& g = grad();
  std::vector<float> values = pool::AcquireUninit(numel());
  std::copy(g.begin(), g.end(), values.begin());
  return Tensor::FromVector(shape(), std::move(values));
}

float Tensor::item() const {
  TIMEDRL_CHECK_EQ(numel(), 1) << "item() on tensor of shape "
                               << ShapeToString(shape());
  return impl_->data[0];
}

namespace {
int64_t FlattenIndex(const Shape& shape,
                     std::initializer_list<int64_t> index) {
  TIMEDRL_CHECK_EQ(static_cast<int64_t>(index.size()),
                   static_cast<int64_t>(shape.size()));
  std::vector<int64_t> strides = RowMajorStrides(shape);
  int64_t flat = 0;
  size_t d = 0;
  for (int64_t i : index) {
    TIMEDRL_CHECK(i >= 0 && i < shape[d])
        << "index " << i << " out of bounds for dim " << d << " of "
        << ShapeToString(shape);
    flat += i * strides[d];
    ++d;
  }
  return flat;
}
}  // namespace

float Tensor::at(std::initializer_list<int64_t> index) const {
  return data()[FlattenIndex(shape(), index)];
}

float& Tensor::at(std::initializer_list<int64_t> index) {
  return data()[FlattenIndex(shape(), index)];
}

std::string Tensor::ToString() const {
  if (!defined()) return "Tensor(undefined)";
  std::ostringstream out;
  out << "Tensor" << ShapeToString(shape()) << " [";
  int64_t n = std::min<int64_t>(numel(), 16);
  for (int64_t i = 0; i < n; ++i) {
    if (i > 0) out << ", ";
    out << impl_->data[i];
  }
  if (numel() > n) out << ", ...";
  out << "]";
  return out.str();
}

// ---- Autograd ----------------------------------------------------------------

namespace {

/// Iterative post-order DFS producing a topological order of the autograd
/// graph rooted at `root` (parents appear before children in the result).
/// The order holds strong references: eager graph release severs the
/// child->parent edges mid-walk, and the order must keep not-yet-processed
/// parents alive until their own closures have run.
std::vector<std::shared_ptr<TensorImpl>> TopologicalOrder(
    const std::shared_ptr<TensorImpl>& root) {
  std::vector<std::shared_ptr<TensorImpl>> order;
  std::unordered_set<TensorImpl*> visited;
  struct Frame {
    std::shared_ptr<TensorImpl> node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  if (visited.insert(root.get()).second) stack.push_back({root, 0});
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next_parent < frame.node->parents.size()) {
      const std::shared_ptr<TensorImpl>& parent =
          frame.node->parents[frame.next_parent++];
      if (visited.insert(parent.get()).second) stack.push_back({parent, 0});
    } else {
      order.push_back(std::move(frame.node));
      stack.pop_back();
    }
  }
  return order;
}

}  // namespace

void Tensor::Backward(bool retain_graph) {
  TIMEDRL_CHECK_EQ(numel(), 1)
      << "Backward() without a seed requires a one-element tensor";
  Backward(Tensor::Ones(shape()), retain_graph);
}

void Tensor::Backward(const Tensor& grad_seed, bool retain_graph) {
  TIMEDRL_TRACE_SCOPE_CAT("backward", "autograd");
  TIMEDRL_CHECK(defined());
  TIMEDRL_CHECK(grad_seed.shape() == shape())
      << "grad seed shape " << ShapeToString(grad_seed.shape())
      << " != tensor shape " << ShapeToString(shape());
  TIMEDRL_CHECK(!impl_->graph_released)
      << "Backward() through an already-released graph; pass "
         "retain_graph=true to the first Backward() to keep it";

  std::vector<float>& seed = impl_->MutableGrad();
  const std::vector<float>& seed_values = grad_seed.data();
  for (size_t i = 0; i < seed.size(); ++i) seed[i] += seed_values[i];

  std::vector<std::shared_ptr<TensorImpl>> order = TopologicalOrder(impl_);
  // `order` is post-order (parents first); propagate children-to-parents by
  // walking it in reverse.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    TensorImpl* node = it->get();
    if (node->backward_fn && !node->grad.empty()) {
      node->backward_fn(*node);
    }
    if (!retain_graph) {
      // This node's closure has run and every child was processed earlier,
      // so its edges are dead weight. Dropping them (and our keep-alive
      // reference) lets intermediates with no outside Tensor handle be
      // destroyed right here, returning their buffers to the pool while the
      // rest of the backward still runs.
      if (node->backward_fn) {
        node->backward_fn = nullptr;
        node->graph_released = true;
      }
      node->parents.clear();
      it->reset();
    }
  }
}

void Tensor::ZeroGrad() {
  TIMEDRL_CHECK(defined());
  std::fill(impl_->grad.begin(), impl_->grad.end(), 0.0f);
}

Tensor Tensor::Detach() const {
  TIMEDRL_CHECK(defined());
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = impl_->shape;
  // Copy: a detached view must not alias grads/graph.
  impl->data = pool::AcquireUninit(impl_->numel());
  std::copy(impl_->data.begin(), impl_->data.end(), impl->data.begin());
  impl->requires_grad = false;
  return Tensor(std::move(impl));
}

Tensor Tensor::Clone() const {
  TIMEDRL_CHECK(defined());
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = impl_->shape;
  impl->data = pool::AcquireUninit(impl_->numel());
  std::copy(impl_->data.begin(), impl_->data.end(), impl->data.begin());
  impl->requires_grad = impl_->requires_grad;
  return Tensor(std::move(impl));
}

const std::shared_ptr<TensorImpl>& Tensor::impl() const {
  TIMEDRL_CHECK(defined());
  return impl_;
}

namespace internal {

Tensor MakeOpResult(Shape shape, std::vector<float> data,
                    std::vector<std::shared_ptr<TensorImpl>> parents,
                    std::function<void(TensorImpl&)> backward_fn) {
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = std::move(shape);
  impl->data = std::move(data);

  bool any_parent_requires_grad = false;
  for (const auto& parent : parents) {
    if (parent->requires_grad) {
      any_parent_requires_grad = true;
      break;
    }
  }
  if (GradEnabled() && any_parent_requires_grad) {
    impl->requires_grad = true;
    impl->parents = std::move(parents);
    impl->backward_fn = std::move(backward_fn);
    ++g_exec_context.graph_nodes_created;
  }
  return Tensor(std::move(impl));
}

Tensor MakeLeafResult(Shape shape, std::vector<float> data) {
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = std::move(shape);
  impl->data = std::move(data);
  return Tensor(std::move(impl));
}

bool Recording(const std::vector<Tensor>& tensors) {
  if (!GradEnabled()) return false;
  for (const Tensor& t : tensors) {
    if (t.requires_grad()) return true;
  }
  return false;
}

}  // namespace internal
}  // namespace timedrl
