// Shape and stride arithmetic shared by all tensor kernels.

#ifndef TIMEDRL_TENSOR_SHAPE_H_
#define TIMEDRL_TENSOR_SHAPE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace timedrl {

/// Dimension sizes of a tensor, outermost first. Tensors are always dense
/// and row-major; an empty shape denotes a scalar-like tensor of one element.
using Shape = std::vector<int64_t>;

/// Total element count of `shape` (1 for an empty shape).
int64_t NumElements(const Shape& shape);

/// Row-major strides of `shape` (same length as `shape`).
std::vector<int64_t> RowMajorStrides(const Shape& shape);

/// True when `a` and `b` can be broadcast together (NumPy semantics).
bool BroadcastCompatible(const Shape& a, const Shape& b);

/// The broadcast result shape of `a` and `b`. Dies if incompatible.
Shape BroadcastShape(const Shape& a, const Shape& b);

/// Strides for reading a tensor of shape `from` as if it had the broadcast
/// shape `to`: broadcast dimensions get stride 0. `to.size() >= from.size()`.
std::vector<int64_t> BroadcastStrides(const Shape& from, const Shape& to);

/// Human-readable form, e.g. "[2, 3, 4]".
std::string ShapeToString(const Shape& shape);

/// Normalizes a possibly negative dimension index; dies if out of range.
int64_t NormalizeDim(int64_t dim, int64_t rank);

}  // namespace timedrl

#endif  // TIMEDRL_TENSOR_SHAPE_H_
