#include "tensor/kernels/copy.h"

#include <algorithm>

#include "tensor/kernels/elementwise.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace timedrl::kernels {
namespace {

// Blocks per ParallelFor chunk, targeting ~kElementwiseGrain floats of work.
int64_t BlockGrain(int64_t block) {
  return std::max<int64_t>(1, kElementwiseGrain / std::max<int64_t>(1, block));
}

}  // namespace

void AddInto(const float* src, float* dst, int64_t n) {
  TIMEDRL_TRACE_SCOPE_CAT("add_into", "kernel");
  ParallelFor(0, n, kElementwiseGrain, [=](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) dst[i] += src[i];
  });
}

void CopyStridedBlocks(const float* src, float* dst, int64_t count,
                       int64_t block, int64_t src_stride, int64_t dst_stride) {
  TIMEDRL_TRACE_SCOPE_CAT("copy_strided", "kernel");
  ParallelFor(0, count, BlockGrain(block), [=](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      const float* s = src + i * src_stride;
      std::copy(s, s + block, dst + i * dst_stride);
    }
  });
}

void AccumulateStridedBlocks(const float* src, float* dst, int64_t count,
                             int64_t block, int64_t src_stride,
                             int64_t dst_stride) {
  TIMEDRL_TRACE_SCOPE_CAT("accumulate_strided", "kernel");
  ParallelFor(0, count, BlockGrain(block), [=](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      const float* s = src + i * src_stride;
      float* d = dst + i * dst_stride;
      for (int64_t j = 0; j < block; ++j) d[j] += s[j];
    }
  });
}

void GatherStrided(const Shape& out_shape,
                   const std::vector<int64_t>& strides, const float* src,
                   float* out) {
  TIMEDRL_TRACE_SCOPE_CAT("gather_strided", "kernel");
  const int64_t total = NumElements(out_shape);
  // Reuse the chunkable two-stride odometer with the second stride set
  // mirroring the first; the duplicate offset is ignored.
  ParallelFor(0, total, kElementwiseGrain, [&](int64_t begin, int64_t end) {
    ForEachBroadcast2Range(
        out_shape, strides, strides, begin, end,
        [&](int64_t i, int64_t oa, int64_t) { out[i] = src[oa]; });
  });
}

}  // namespace timedrl::kernels
