// 1-D convolution kernels: im2col/col2im plus whole-batch forward/backward
// entry points expressed as GEMMs over the unrolled patches.
//
// Shapes: x [batch, c_in, length], w [c_out, c_in, kernel],
// out [batch, c_out, out_length], col [c_in*kernel, out_length].
//
// Threading model (see util/thread_pool.h and kernels/gemm.h):
//  - Forward and the input gradient parallelize over the batch — each batch
//    element owns a disjoint slice of out / gx, so accumulation is race-free
//    and bitwise-identical for any pool size.
//  - The weight gradient accumulates into ONE shared gw buffer across the
//    whole batch, so its batch loop is serial and the per-batch GEMM
//    parallelizes internally over disjoint rows of gw instead.

#ifndef TIMEDRL_TENSOR_KERNELS_CONV1D_H_
#define TIMEDRL_TENSOR_KERNELS_CONV1D_H_

#include <cstdint>

namespace timedrl::kernels {

/// Geometry of one Conv1d call; out_length must already be validated by the
/// op layer: (length + 2*padding - dilation*(kernel-1) - 1) / stride + 1.
struct Conv1dGeometry {
  int64_t batch = 0;
  int64_t c_in = 0;
  int64_t length = 0;
  int64_t c_out = 0;
  int64_t kernel = 0;
  int64_t out_length = 0;
  int64_t stride = 1;
  int64_t padding = 0;
  int64_t dilation = 1;

  int64_t col_rows() const { return c_in * kernel; }
};

/// Unrolls one batch element x_b [c_in, length] into col [c_in*K, out_len];
/// out-of-range (padding) taps become 0.
void Im2Col(const float* x_b, const Conv1dGeometry& geom, float* col);

/// Accumulates col [c_in*K, out_len] back into gx_b [c_in, length],
/// reversing Im2Col (padding taps are dropped).
void Col2ImAccumulate(const float* col, const Conv1dGeometry& geom,
                      float* gx_b);

/// out = conv1d(x, w) + bias. `out` must be zero-filled; `bias` may be null.
/// Parallel over batch.
void Conv1dForward(const float* x, const float* w, const float* bias,
                   float* out, const Conv1dGeometry& geom);

/// gx += col2im(w^T * g_b) per batch element. Parallel over batch.
void Conv1dBackwardInput(const float* w, const float* g, float* gx,
                         const Conv1dGeometry& geom);

/// gw += sum_b g_b * col_b^T. Serial over batch (shared gw), GEMM-parallel
/// inside.
void Conv1dBackwardWeight(const float* x, const float* g, float* gw,
                          const Conv1dGeometry& geom);

/// gb[co] += sum_{b,l} g[b,co,l]. Parallel over c_out.
void Conv1dBackwardBias(const float* g, float* gb,
                        const Conv1dGeometry& geom);

}  // namespace timedrl::kernels

#endif  // TIMEDRL_TENSOR_KERNELS_CONV1D_H_
