// The scalar kernel backend — the portable reference implementations that
// back the kScalar dispatch path (kernels/dispatch.h) and the baseline the
// vector backends are verified against (tolerance contract, `simd` test
// label).
//
// These are the original kernel-layer implementations, unchanged: the
// definitions live where they always did (gemm.cc, fused.cc, nonfinite.cc)
// so their threading and determinism guarantees carry over verbatim; this
// header only names them so dispatch.cc can build the scalar KernelTable.
// Signatures and semantics match the public entry points in
// kernels/{gemm,fused,nonfinite}.h exactly.

#ifndef TIMEDRL_TENSOR_KERNELS_SCALAR_KERNELS_H_
#define TIMEDRL_TENSOR_KERNELS_SCALAR_KERNELS_H_

#include <cstdint>

namespace timedrl::kernels::scalar {

void GemmNN(const float* a, const float* b, float* c, int64_t m, int64_t k,
            int64_t n, bool accumulate);
void GemmNT(const float* a, const float* b, float* c, int64_t m, int64_t n,
            int64_t k, bool accumulate);
void GemmTN(const float* a, const float* b, float* c, int64_t m, int64_t k,
            int64_t n, bool accumulate);

void FusedLayerNormForward(const float* x, const float* gamma,
                           const float* beta, float eps, float* y,
                           float* mean, float* rstd, int64_t rows,
                           int64_t features);
void FusedLayerNormBackward(const float* g, const float* x,
                            const float* gamma, const float* mean,
                            const float* rstd, float* dx, float* dgamma,
                            float* dbeta, int64_t rows, int64_t features);
void FusedSoftmaxForward(const float* x, const float* mask, int64_t mask_rows,
                         float scale, float masked_value, float* y,
                         int64_t rows, int64_t dim);
void FusedSoftmaxBackward(const float* g, const float* y, float scale,
                          float* dx, int64_t rows, int64_t dim);
void FusedBiasGeluForward(const float* x, const float* bias, float* y,
                          int64_t rows, int64_t features);
void FusedBiasGeluBackward(const float* g, const float* x, const float* bias,
                           float* dx, float* dbias, float* scratch,
                           int64_t rows, int64_t features);

int64_t CountNonFinite(const float* x, int64_t n);

}  // namespace timedrl::kernels::scalar

#endif  // TIMEDRL_TENSOR_KERNELS_SCALAR_KERNELS_H_
