// Max/average pooling kernels over the last dim of [batch*channels, length]
// rows. Parallel over rows; forward writes and backward accumulations are
// disjoint per row, so results are identical for any pool size (see
// util/thread_pool.h).

#ifndef TIMEDRL_TENSOR_KERNELS_POOL_H_
#define TIMEDRL_TENSOR_KERNELS_POOL_H_

#include <cstdint>

namespace timedrl::kernels {

/// out[row, l] = max_k x[row, l*stride + k]; argmax records the winning
/// input position for the backward pass. `rows` = batch * channels.
void MaxPool1dForward(const float* x, float* out, int64_t* argmax,
                      int64_t rows, int64_t length, int64_t kernel,
                      int64_t stride, int64_t out_length);

/// gx[row, argmax[row, l]] += g[row, l].
void MaxPool1dBackwardAccumulate(const float* g, const int64_t* argmax,
                                 float* gx, int64_t rows, int64_t length,
                                 int64_t out_length);

/// out[row, l] = mean_k x[row, l*stride + k].
void AvgPool1dForward(const float* x, float* out, int64_t rows, int64_t length,
                      int64_t kernel, int64_t stride, int64_t out_length);

/// gx[row, l*stride + k] += g[row, l] / kernel for every tap k.
void AvgPool1dBackwardAccumulate(const float* g, float* gx, int64_t rows,
                                 int64_t length, int64_t kernel,
                                 int64_t stride, int64_t out_length);

}  // namespace timedrl::kernels

#endif  // TIMEDRL_TENSOR_KERNELS_POOL_H_
