// Fused transformer hot-path kernels over raw float buffers.
//
// Each kernel here collapses a 4–8 op composition (see tensor/ops_fused.h)
// into one or two sweeps over the data, so the memory-bound transformer
// blocks touch every activation once instead of materializing each
// intermediate through the buffer pool.
//
// Layout convention: all kernels view the input as [rows, features] (or
// [rows, dim] for softmax) where `rows` collapses every leading dimension.
// Rows are independent, so forward kernels and the dx half of the backward
// kernels parallelize over rows with each output element produced by
// exactly one thread. Cross-row parameter reductions (dgamma / dbeta /
// dbias) parallelize over FEATURE COLUMNS with a fixed inner loop over
// rows — the accumulation order per column never depends on the thread
// count, so results are bitwise identical for any pool size (the same
// determinism contract as util/thread_pool.h).

#ifndef TIMEDRL_TENSOR_KERNELS_FUSED_H_
#define TIMEDRL_TENSOR_KERNELS_FUSED_H_

#include <cstdint>

namespace timedrl::kernels {

/// y = (x - mean) * rstd * gamma + beta per row, with mean/var computed in
/// a single Welford pass over the row. When `mean`/`rstd` are non-null the
/// per-row statistics are saved for the backward pass (rstd = 1/sqrt(var +
/// eps), biased variance — matching the composed LayerNorm).
void FusedLayerNormForward(const float* x, const float* gamma,
                           const float* beta, float eps, float* y,
                           float* mean, float* rstd, int64_t rows,
                           int64_t features);

/// Single-sweep LayerNorm backward from the saved row statistics:
///   dx     += rstd * (g*gamma - mean_f(g*gamma) - xhat * mean_f(g*gamma*xhat))
///   dgamma += sum_rows g * xhat
///   dbeta  += sum_rows g
/// where xhat = (x - mean) * rstd. Any of dx/dgamma/dbeta may be null to
/// skip that gradient. dx parallelizes over rows; dgamma/dbeta over columns.
void FusedLayerNormBackward(const float* g, const float* x,
                            const float* gamma, const float* mean,
                            const float* rstd, float* dx, float* dgamma,
                            float* dbeta, int64_t rows, int64_t features);

/// y = softmax(scale * x + mask) per row (last-dim softmax). `mask` is an
/// optional [mask_rows, dim] tile: row r uses mask row (r % mask_rows), and
/// a nonzero mask entry replaces the scaled score with `masked_value`
/// (exactly the composed scale -> MaskedFill -> Softmax sequence, so the
/// fused forward is bitwise identical to it). Pass mask == nullptr for the
/// unmasked case.
void FusedSoftmaxForward(const float* x, const float* mask, int64_t mask_rows,
                         float scale, float masked_value, float* y,
                         int64_t rows, int64_t dim);

/// dx += scale * y * (g - sum_d(g*y)) per row — the one-pass backward of
/// FusedSoftmaxForward. Masked positions contribute zero automatically
/// (their y underflowed to 0 in the forward).
void FusedSoftmaxBackward(const float* g, const float* y, float scale,
                          float* dx, int64_t rows, int64_t dim);

/// y = gelu(x + bias) per row (tanh-approximation GELU, same constants as
/// the composed Gelu op). `bias` has `features` entries and broadcasts over
/// rows; bias == nullptr computes plain gelu(x).
void FusedBiasGeluForward(const float* x, const float* bias, float* y,
                          int64_t rows, int64_t features);

/// Backward of FusedBiasGeluForward:
///   du     = g * gelu'(x + bias)        (recomputed, not saved)
///   dx    += du
///   dbias += sum_rows du
/// Either of dx/dbias may be null. `scratch` must hold rows*features floats
/// when dbias is requested (the per-element du staging that makes the
/// column reduction deterministic); it may be null when dbias is null.
void FusedBiasGeluBackward(const float* g, const float* x, const float* bias,
                           float* dx, float* dbias, float* scratch,
                           int64_t rows, int64_t features);

}  // namespace timedrl::kernels

#endif  // TIMEDRL_TENSOR_KERNELS_FUSED_H_
