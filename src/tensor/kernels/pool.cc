#include "tensor/kernels/pool.h"

#include <limits>

#include "obs/trace.h"
#include "util/thread_pool.h"

namespace timedrl::kernels {
namespace {

constexpr int64_t kPoolRowGrain = 16;

}  // namespace

void MaxPool1dForward(const float* x, float* out, int64_t* argmax,
                      int64_t rows, int64_t length, int64_t kernel,
                      int64_t stride, int64_t out_length) {
  TIMEDRL_TRACE_SCOPE_CAT("maxpool1d_fwd", "kernel");
  ParallelFor(0, rows, kPoolRowGrain, [=](int64_t row_begin, int64_t row_end) {
    for (int64_t row = row_begin; row < row_end; ++row) {
      const float* xrow = x + row * length;
      for (int64_t l = 0; l < out_length; ++l) {
        float best = -std::numeric_limits<float>::infinity();
        int64_t best_pos = l * stride;
        for (int64_t kk = 0; kk < kernel; ++kk) {
          const int64_t pos = l * stride + kk;
          if (xrow[pos] > best) {
            best = xrow[pos];
            best_pos = pos;
          }
        }
        out[row * out_length + l] = best;
        argmax[row * out_length + l] = best_pos;
      }
    }
  });
}

void MaxPool1dBackwardAccumulate(const float* g, const int64_t* argmax,
                                 float* gx, int64_t rows, int64_t length,
                                 int64_t out_length) {
  TIMEDRL_TRACE_SCOPE_CAT("maxpool1d_bwd", "kernel");
  ParallelFor(0, rows, kPoolRowGrain, [=](int64_t row_begin, int64_t row_end) {
    for (int64_t row = row_begin; row < row_end; ++row) {
      for (int64_t l = 0; l < out_length; ++l) {
        gx[row * length + argmax[row * out_length + l]] +=
            g[row * out_length + l];
      }
    }
  });
}

void AvgPool1dForward(const float* x, float* out, int64_t rows, int64_t length,
                      int64_t kernel, int64_t stride, int64_t out_length) {
  TIMEDRL_TRACE_SCOPE_CAT("avgpool1d_fwd", "kernel");
  const float inv_kernel = 1.0f / static_cast<float>(kernel);
  ParallelFor(0, rows, kPoolRowGrain, [=](int64_t row_begin, int64_t row_end) {
    for (int64_t row = row_begin; row < row_end; ++row) {
      const float* xrow = x + row * length;
      for (int64_t l = 0; l < out_length; ++l) {
        float acc = 0.0f;
        for (int64_t kk = 0; kk < kernel; ++kk) acc += xrow[l * stride + kk];
        out[row * out_length + l] = acc * inv_kernel;
      }
    }
  });
}

void AvgPool1dBackwardAccumulate(const float* g, float* gx, int64_t rows,
                                 int64_t length, int64_t kernel,
                                 int64_t stride, int64_t out_length) {
  TIMEDRL_TRACE_SCOPE_CAT("avgpool1d_bwd", "kernel");
  const float inv_kernel = 1.0f / static_cast<float>(kernel);
  ParallelFor(0, rows, kPoolRowGrain, [=](int64_t row_begin, int64_t row_end) {
    for (int64_t row = row_begin; row < row_end; ++row) {
      for (int64_t l = 0; l < out_length; ++l) {
        const float gv = g[row * out_length + l] * inv_kernel;
        for (int64_t kk = 0; kk < kernel; ++kk) {
          gx[row * length + l * stride + kk] += gv;
        }
      }
    }
  });
}

}  // namespace timedrl::kernels
