// Elementwise map/zip kernels over raw float buffers.
//
// These templates hold every dense loop the elementwise autograd ops used to
// carry inline; src/tensor/ops_elementwise.cc now only does shape checking
// and autograd wiring around them.
//
// Threading model (see util/thread_pool.h): forward kernels and same-shape
// gradient kernels write disjoint indices per thread and run on the global
// pool; results are bitwise-identical for any pool size because each output
// element is produced by exactly one thread. Broadcast gradient
// accumulation (ZipGradBroadcastAccumulate) scatters many output indices
// into SHARED input slots and therefore runs serially — never parallelize a
// scatter whose destination rows are not owned by one thread.

#ifndef TIMEDRL_TENSOR_KERNELS_ELEMENTWISE_H_
#define TIMEDRL_TENSOR_KERNELS_ELEMENTWISE_H_

#include <cstdint>
#include <vector>

#include "tensor/shape.h"
#include "util/thread_pool.h"

namespace timedrl::kernels {

/// Elements per ParallelFor chunk for cheap elementwise work.
constexpr int64_t kElementwiseGrain = 1 << 13;

/// Walks out-linear indices [begin, end) of `out_shape`, calling
/// fn(i, a_offset, b_offset) where the offsets follow the broadcast strides
/// `sa` / `sb` (stride 0 on broadcast dims). Unlike the full-range odometer
/// in tensor/broadcast_iter.h this variant can start mid-range, which makes
/// broadcast iteration chunkable by ParallelFor.
template <typename Fn>
void ForEachBroadcast2Range(const Shape& out_shape,
                            const std::vector<int64_t>& sa,
                            const std::vector<int64_t>& sb, int64_t begin,
                            int64_t end, Fn&& fn) {
  const int64_t rank = static_cast<int64_t>(out_shape.size());
  if (begin >= end) return;
  std::vector<int64_t> coord(rank, 0);
  int64_t oa = 0;
  int64_t ob = 0;
  // Decompose `begin` into coordinates and the matching input offsets.
  int64_t remainder = begin;
  for (int64_t d = rank - 1; d >= 0; --d) {
    coord[d] = remainder % out_shape[d];
    remainder /= out_shape[d];
    oa += coord[d] * sa[d];
    ob += coord[d] * sb[d];
  }
  for (int64_t i = begin; i < end; ++i) {
    fn(i, oa, ob);
    for (int64_t d = rank - 1; d >= 0; --d) {
      ++coord[d];
      oa += sa[d];
      ob += sb[d];
      if (coord[d] < out_shape[d]) break;
      coord[d] = 0;
      oa -= sa[d] * out_shape[d];
      ob -= sb[d] * out_shape[d];
    }
  }
}

/// out[i] = f(a[i]) for i in [0, n). Parallel; disjoint writes.
template <typename F>
void Map(const float* a, float* out, int64_t n, F f) {
  ParallelFor(0, n, kElementwiseGrain, [=](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) out[i] = f(a[i]);
  });
}

/// ga[i] += g[i] * df(a[i], y[i]) for i in [0, n) — the unary-op backward
/// rule (y is the forward output). Parallel; each thread owns disjoint i.
template <typename F>
void MapGradAccumulate(const float* g, const float* a, const float* y,
                       float* ga, int64_t n, F df) {
  ParallelFor(0, n, kElementwiseGrain, [=](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) ga[i] += g[i] * df(a[i], y[i]);
  });
}

/// out[i] = f(a[i], b[i]) for same-shape operands. Parallel.
template <typename F>
void Zip(const float* a, const float* b, float* out, int64_t n, F f) {
  ParallelFor(0, n, kElementwiseGrain, [=](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) out[i] = f(a[i], b[i]);
  });
}

/// out[i] = f(a[oa(i)], b[ob(i)]) with broadcast strides. Parallel: output
/// writes are disjoint; inputs are only read.
template <typename F>
void ZipBroadcast(const Shape& out_shape, const std::vector<int64_t>& sa,
                  const std::vector<int64_t>& sb, const float* a,
                  const float* b, float* out, F f) {
  const int64_t total = NumElements(out_shape);
  ParallelFor(0, total, kElementwiseGrain, [&](int64_t begin, int64_t end) {
    ForEachBroadcast2Range(out_shape, sa, sb, begin, end,
                           [&](int64_t i, int64_t oa, int64_t ob) {
                             out[i] = f(a[oa], b[ob]);
                           });
  });
}

/// Same-shape binary backward: ga[i] += g[i]*dfa(...), gb[i] += g[i]*dfb(...).
/// Either gradient pointer may be null. Parallel; disjoint writes.
template <typename Fa, typename Fb>
void ZipGradAccumulate(const float* g, const float* a, const float* b,
                       const float* y, float* ga, float* gb, int64_t n, Fa dfa,
                       Fb dfb) {
  ParallelFor(0, n, kElementwiseGrain, [=](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      if (ga != nullptr) ga[i] += g[i] * dfa(a[i], b[i], y[i]);
      if (gb != nullptr) gb[i] += g[i] * dfb(a[i], b[i], y[i]);
    }
  });
}

/// Broadcast binary backward. SERIAL by design: broadcast dimensions fold
/// many output indices onto one input slot, so per-thread destinations
/// cannot be made disjoint without a reduction tree.
template <typename Fa, typename Fb>
void ZipGradBroadcastAccumulate(const Shape& out_shape,
                                const std::vector<int64_t>& sa,
                                const std::vector<int64_t>& sb, const float* g,
                                const float* a, const float* b, const float* y,
                                float* ga, float* gb, Fa dfa, Fb dfb) {
  ForEachBroadcast2Range(out_shape, sa, sb, 0, NumElements(out_shape),
                         [&](int64_t i, int64_t oa, int64_t ob) {
                           if (ga != nullptr)
                             ga[oa] += g[i] * dfa(a[oa], b[ob], y[i]);
                           if (gb != nullptr)
                             gb[ob] += g[i] * dfb(a[oa], b[ob], y[i]);
                         });
}

}  // namespace timedrl::kernels

#endif  // TIMEDRL_TENSOR_KERNELS_ELEMENTWISE_H_
