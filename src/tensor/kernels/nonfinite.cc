#include "tensor/kernels/nonfinite.h"

#include <atomic>
#include <cmath>

#include "obs/trace.h"
#include "tensor/kernels/dispatch.h"
#include "tensor/kernels/elementwise.h"
#include "tensor/kernels/scalar_kernels.h"
#include "util/thread_pool.h"

namespace timedrl::kernels {

namespace scalar {

int64_t CountNonFinite(const float* x, int64_t n) {
  std::atomic<int64_t> total{0};
  ParallelFor(0, n, kElementwiseGrain, [&](int64_t begin, int64_t end) {
    int64_t local = 0;
    for (int64_t i = begin; i < end; ++i) {
      if (!std::isfinite(x[i])) ++local;
    }
    if (local != 0) total.fetch_add(local, std::memory_order_relaxed);
  });
  return total.load(std::memory_order_relaxed);
}

}  // namespace scalar

int64_t CountNonFinite(const float* x, int64_t n) {
  TIMEDRL_TRACE_SCOPE_CAT("count_nonfinite", "kernel");
  return simd::Active().count_nonfinite(x, n);
}

}  // namespace timedrl::kernels
