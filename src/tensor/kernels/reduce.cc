#include "tensor/kernels/reduce.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "tensor/kernels/elementwise.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace timedrl::kernels {
namespace {

// Rows per chunk for the [outer, dim, inner] row kernels; one row costs
// O(dim) work, so the grain shrinks as rows get longer.
int64_t RowGrain(int64_t dim) {
  return std::max<int64_t>(1, kElementwiseGrain / std::max<int64_t>(1, dim));
}

// Runs fn(o, i) for every row, parallel over the flattened row index.
template <typename Fn>
void ForEachRow(int64_t outer, int64_t dim, int64_t inner, Fn fn) {
  ParallelFor(0, outer * inner, RowGrain(dim),
              [&](int64_t begin, int64_t end) {
                for (int64_t row = begin; row < end; ++row) {
                  fn(row / inner, row % inner);
                }
              });
}

}  // namespace

void ReduceAddStrided(const Shape& in_shape,
                      const std::vector<int64_t>& acc_strides, const float* in,
                      float* out) {
  TIMEDRL_TRACE_SCOPE_CAT("reduce_add", "kernel");
  const std::vector<int64_t> zero(in_shape.size(), 0);
  ForEachBroadcast2Range(in_shape, acc_strides, zero, 0, NumElements(in_shape),
                         [&](int64_t i, int64_t slot, int64_t) {
                           out[slot] += in[i];
                         });
}

void BroadcastAddStrided(const Shape& in_shape,
                         const std::vector<int64_t>& acc_strides,
                         const float* g, float* ga) {
  TIMEDRL_TRACE_SCOPE_CAT("broadcast_add", "kernel");
  const std::vector<int64_t> zero(in_shape.size(), 0);
  const int64_t total = NumElements(in_shape);
  ParallelFor(0, total, kElementwiseGrain, [&](int64_t begin, int64_t end) {
    ForEachBroadcast2Range(in_shape, acc_strides, zero, begin, end,
                           [&](int64_t i, int64_t slot, int64_t) {
                             ga[i] += g[slot];
                           });
  });
}

void SoftmaxForward(const float* x, float* y, int64_t outer, int64_t dim,
                    int64_t inner) {
  TIMEDRL_TRACE_SCOPE_CAT("softmax_fwd", "kernel");
  ForEachRow(outer, dim, inner, [=](int64_t o, int64_t i) {
    float max_value = -std::numeric_limits<float>::infinity();
    for (int64_t d = 0; d < dim; ++d) {
      max_value = std::max(max_value, x[(o * dim + d) * inner + i]);
    }
    float denom = 0.0f;
    for (int64_t d = 0; d < dim; ++d) {
      const int64_t idx = (o * dim + d) * inner + i;
      y[idx] = std::exp(x[idx] - max_value);
      denom += y[idx];
    }
    for (int64_t d = 0; d < dim; ++d) y[(o * dim + d) * inner + i] /= denom;
  });
}

void SoftmaxBackwardAccumulate(const float* g, const float* y, float* ga,
                               int64_t outer, int64_t dim, int64_t inner) {
  TIMEDRL_TRACE_SCOPE_CAT("softmax_bwd", "kernel");
  ForEachRow(outer, dim, inner, [=](int64_t o, int64_t i) {
    float dot = 0.0f;
    for (int64_t d = 0; d < dim; ++d) {
      const int64_t idx = (o * dim + d) * inner + i;
      dot += g[idx] * y[idx];
    }
    for (int64_t d = 0; d < dim; ++d) {
      const int64_t idx = (o * dim + d) * inner + i;
      ga[idx] += y[idx] * (g[idx] - dot);
    }
  });
}

void LogSoftmaxForward(const float* x, float* y, int64_t outer, int64_t dim,
                       int64_t inner) {
  TIMEDRL_TRACE_SCOPE_CAT("log_softmax_fwd", "kernel");
  ForEachRow(outer, dim, inner, [=](int64_t o, int64_t i) {
    float max_value = -std::numeric_limits<float>::infinity();
    for (int64_t d = 0; d < dim; ++d) {
      max_value = std::max(max_value, x[(o * dim + d) * inner + i]);
    }
    float denom = 0.0f;
    for (int64_t d = 0; d < dim; ++d) {
      denom += std::exp(x[(o * dim + d) * inner + i] - max_value);
    }
    const float log_denom = max_value + std::log(denom);
    for (int64_t d = 0; d < dim; ++d) {
      const int64_t idx = (o * dim + d) * inner + i;
      y[idx] = x[idx] - log_denom;
    }
  });
}

void LogSoftmaxBackwardAccumulate(const float* g, const float* y, float* ga,
                                  int64_t outer, int64_t dim, int64_t inner) {
  TIMEDRL_TRACE_SCOPE_CAT("log_softmax_bwd", "kernel");
  ForEachRow(outer, dim, inner, [=](int64_t o, int64_t i) {
    float g_sum = 0.0f;
    for (int64_t d = 0; d < dim; ++d) {
      g_sum += g[(o * dim + d) * inner + i];
    }
    for (int64_t d = 0; d < dim; ++d) {
      const int64_t idx = (o * dim + d) * inner + i;
      ga[idx] += g[idx] - std::exp(y[idx]) * g_sum;
    }
  });
}

void MaxForward(const float* x, float* y, int64_t* argmax, int64_t outer,
                int64_t dim, int64_t inner) {
  TIMEDRL_TRACE_SCOPE_CAT("max_fwd", "kernel");
  ForEachRow(outer, dim, inner, [=](int64_t o, int64_t i) {
    float best = -std::numeric_limits<float>::infinity();
    int64_t best_index = 0;
    for (int64_t d = 0; d < dim; ++d) {
      const float v = x[(o * dim + d) * inner + i];
      if (v > best) {
        best = v;
        best_index = d;
      }
    }
    y[o * inner + i] = best;
    argmax[o * inner + i] = best_index;
  });
}

void MaxBackwardAccumulate(const float* g, const int64_t* argmax, float* ga,
                           int64_t outer, int64_t dim, int64_t inner) {
  TIMEDRL_TRACE_SCOPE_CAT("max_bwd", "kernel");
  ForEachRow(outer, dim, inner, [=](int64_t o, int64_t i) {
    const int64_t d = argmax[o * inner + i];
    ga[(o * dim + d) * inner + i] += g[o * inner + i];
  });
}

void ArgMaxForward(const float* x, int64_t* argmax, int64_t outer, int64_t dim,
                   int64_t inner) {
  TIMEDRL_TRACE_SCOPE_CAT("argmax_fwd", "kernel");
  ForEachRow(outer, dim, inner, [=](int64_t o, int64_t i) {
    float best = -std::numeric_limits<float>::infinity();
    int64_t best_index = 0;
    for (int64_t d = 0; d < dim; ++d) {
      const float v = x[(o * dim + d) * inner + i];
      if (v > best) {
        best = v;
        best_index = d;
      }
    }
    argmax[o * inner + i] = best_index;
  });
}

float NllForward(const float* lp, const int64_t* labels, int64_t n, int64_t k) {
  float loss = 0.0f;
  for (int64_t i = 0; i < n; ++i) loss -= lp[i * k + labels[i]];
  return loss / static_cast<float>(n);
}

void NllBackwardAccumulate(float g, const int64_t* labels, float* g_lp,
                           int64_t n, int64_t k) {
  for (int64_t i = 0; i < n; ++i) {
    g_lp[i * k + labels[i]] -= g / static_cast<float>(n);
  }
}

}  // namespace timedrl::kernels
