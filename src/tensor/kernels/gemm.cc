#include "tensor/kernels/gemm.h"

#include <algorithm>

#include "obs/trace.h"
#include "tensor/kernels/dispatch.h"
#include "tensor/kernels/scalar_kernels.h"
#include "util/thread_pool.h"

namespace timedrl::kernels {
namespace {

// Output rows are handed to the pool in blocks sized so one chunk carries
// roughly this many multiply-adds; below that the dispatch overhead beats
// the parallelism (the pool runs the whole range inline in that case).
constexpr int64_t kGemmGrainFlops = int64_t{1} << 15;

// Rows of C computed together in the register-tiled fast path. Each B (or A)
// row loaded in the inner loop is then reused kRowTile times.
constexpr int64_t kRowTile = 4;

int64_t RowGrain(int64_t flops_per_row) {
  return std::max<int64_t>(1, kGemmGrainFlops / std::max<int64_t>(1, flops_per_row));
}

}  // namespace

// The scalar backend: the portable reference implementations behind the
// kScalar dispatch path (kernels/dispatch.h). The vector backends live in
// kernels/arch/simd_kernels.h.
namespace scalar {

void GemmNN(const float* a, const float* b, float* c, int64_t m, int64_t k,
            int64_t n, bool accumulate) {
  ParallelFor(0, m, RowGrain(k * n), [=](int64_t row_begin, int64_t row_end) {
    // Overwrite mode: zero this worker's rows just before accumulating into
    // them (cache-hot), instead of a cold zero-fill pass by the caller.
    if (!accumulate) {
      std::fill(c + row_begin * n, c + row_end * n, 0.0f);
    }
    int64_t i = row_begin;
    // Register tile: 4 rows of C share each streamed row of B. The per
    // element accumulation order (p ascending) matches the tail loop, so
    // results do not depend on where the tile boundary falls.
    for (; i + kRowTile <= row_end; i += kRowTile) {
      float* __restrict__ c0 = c + (i + 0) * n;
      float* __restrict__ c1 = c + (i + 1) * n;
      float* __restrict__ c2 = c + (i + 2) * n;
      float* __restrict__ c3 = c + (i + 3) * n;
      for (int64_t p = 0; p < k; ++p) {
        const float* __restrict__ brow = b + p * n;
        const float a0 = a[(i + 0) * k + p];
        const float a1 = a[(i + 1) * k + p];
        const float a2 = a[(i + 2) * k + p];
        const float a3 = a[(i + 3) * k + p];
        for (int64_t j = 0; j < n; ++j) {
          const float bv = brow[j];
          c0[j] += a0 * bv;
          c1[j] += a1 * bv;
          c2[j] += a2 * bv;
          c3[j] += a3 * bv;
        }
      }
    }
    for (; i < row_end; ++i) {
      float* __restrict__ crow = c + i * n;
      for (int64_t p = 0; p < k; ++p) {
        const float av = a[i * k + p];
        const float* __restrict__ brow = b + p * n;
        for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  });
}

void GemmNT(const float* a, const float* b, float* c, int64_t m, int64_t n,
            int64_t k, bool accumulate) {
  ParallelFor(0, m, RowGrain(n * k), [=](int64_t row_begin, int64_t row_end) {
    for (int64_t i = row_begin; i < row_end; ++i) {
      const float* __restrict__ arow = a + i * n;
      for (int64_t p = 0; p < k; ++p) {
        const float* __restrict__ brow = b + p * n;
        // Four partial sums break the serial dependence of a single
        // accumulator; the split is the same for every (i, p), so the
        // summation order is thread-count independent.
        float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
        int64_t j = 0;
        for (; j + 4 <= n; j += 4) {
          s0 += arow[j + 0] * brow[j + 0];
          s1 += arow[j + 1] * brow[j + 1];
          s2 += arow[j + 2] * brow[j + 2];
          s3 += arow[j + 3] * brow[j + 3];
        }
        float acc = (s0 + s1) + (s2 + s3);
        for (; j < n; ++j) acc += arow[j] * brow[j];
        // 0.0f + acc == acc bitwise here, so both modes agree exactly.
        if (accumulate) {
          c[i * k + p] += acc;
        } else {
          c[i * k + p] = acc;
        }
      }
    }
  });
}

void GemmTN(const float* a, const float* b, float* c, int64_t m, int64_t k,
            int64_t n, bool accumulate) {
  // Parallel over rows of C (index p in [0, k)); the reduction over rows of
  // A/B (index i) runs inside, so each thread's writes are disjoint.
  ParallelFor(0, k, RowGrain(m * n), [=](int64_t row_begin, int64_t row_end) {
    if (!accumulate) {
      std::fill(c + row_begin * n, c + row_end * n, 0.0f);
    }
    int64_t p = row_begin;
    for (; p + kRowTile <= row_end; p += kRowTile) {
      float* __restrict__ c0 = c + (p + 0) * n;
      float* __restrict__ c1 = c + (p + 1) * n;
      float* __restrict__ c2 = c + (p + 2) * n;
      float* __restrict__ c3 = c + (p + 3) * n;
      for (int64_t i = 0; i < m; ++i) {
        const float* __restrict__ brow = b + i * n;
        const float a0 = a[i * k + p + 0];
        const float a1 = a[i * k + p + 1];
        const float a2 = a[i * k + p + 2];
        const float a3 = a[i * k + p + 3];
        for (int64_t j = 0; j < n; ++j) {
          const float bv = brow[j];
          c0[j] += a0 * bv;
          c1[j] += a1 * bv;
          c2[j] += a2 * bv;
          c3[j] += a3 * bv;
        }
      }
    }
    for (; p < row_end; ++p) {
      float* __restrict__ crow = c + p * n;
      for (int64_t i = 0; i < m; ++i) {
        const float av = a[i * k + p];
        const float* __restrict__ brow = b + i * n;
        for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  });
}

}  // namespace scalar

// Public entry points: trace, then forward through the active dispatch
// table (scalar or the best vector ISA — see kernels/dispatch.h).

void GemmNN(const float* a, const float* b, float* c, int64_t m, int64_t k,
            int64_t n, bool accumulate) {
  TIMEDRL_TRACE_SCOPE_CAT("gemm_nn", "kernel");
  simd::Active().gemm_nn(a, b, c, m, k, n, accumulate);
}

void GemmNT(const float* a, const float* b, float* c, int64_t m, int64_t n,
            int64_t k, bool accumulate) {
  TIMEDRL_TRACE_SCOPE_CAT("gemm_nt", "kernel");
  simd::Active().gemm_nt(a, b, c, m, n, k, accumulate);
}

void GemmTN(const float* a, const float* b, float* c, int64_t m, int64_t k,
            int64_t n, bool accumulate) {
  TIMEDRL_TRACE_SCOPE_CAT("gemm_tn", "kernel");
  simd::Active().gemm_tn(a, b, c, m, k, n, accumulate);
}

}  // namespace timedrl::kernels
