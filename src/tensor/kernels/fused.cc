#include "tensor/kernels/fused.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/trace.h"
#include "tensor/kernels/dispatch.h"
#include "tensor/kernels/elementwise.h"
#include "tensor/kernels/scalar_kernels.h"
#include "util/thread_pool.h"

namespace timedrl::kernels {
namespace {

// Rows (or columns) per ParallelFor chunk when each unit costs O(span) work.
int64_t Grain(int64_t span) {
  return std::max<int64_t>(1, kElementwiseGrain / std::max<int64_t>(1, span));
}

// Same constants as the composed Gelu op in ops_elementwise.cc.
constexpr float kGeluAlpha = 0.7978845608028654f;  // sqrt(2/pi)
constexpr float kGeluBeta = 0.044715f;

inline float GeluValue(float x) {
  const float inner = kGeluAlpha * (x + kGeluBeta * x * x * x);
  return 0.5f * x * (1.0f + std::tanh(inner));
}

inline float GeluDerivative(float x) {
  const float inner = kGeluAlpha * (x + kGeluBeta * x * x * x);
  const float t = std::tanh(inner);
  const float dinner = kGeluAlpha * (1.0f + 3.0f * kGeluBeta * x * x);
  return 0.5f * (1.0f + t) + 0.5f * x * (1.0f - t * t) * dinner;
}

}  // namespace

// The scalar backend: the portable reference implementations behind the
// kScalar dispatch path (kernels/dispatch.h). The vector backends live in
// kernels/arch/simd_kernels.h.
namespace scalar {

void FusedLayerNormForward(const float* x, const float* gamma,
                           const float* beta, float eps, float* y,
                           float* mean, float* rstd, int64_t rows,
                           int64_t features) {
  ParallelFor(0, rows, Grain(features), [=](int64_t begin, int64_t end) {
    for (int64_t r = begin; r < end; ++r) {
      const float* row = x + r * features;
      // Welford single-pass mean/variance.
      float m = 0.0f;
      float m2 = 0.0f;
      for (int64_t f = 0; f < features; ++f) {
        const float v = row[f];
        const float delta = v - m;
        m += delta / static_cast<float>(f + 1);
        m2 += delta * (v - m);
      }
      const float var = m2 / static_cast<float>(features);
      const float rs = 1.0f / std::sqrt(var + eps);
      if (mean != nullptr) mean[r] = m;
      if (rstd != nullptr) rstd[r] = rs;
      float* out = y + r * features;
      for (int64_t f = 0; f < features; ++f) {
        out[f] = (row[f] - m) * rs * gamma[f] + beta[f];
      }
    }
  });
}

void FusedLayerNormBackward(const float* g, const float* x,
                            const float* gamma, const float* mean,
                            const float* rstd, float* dx, float* dgamma,
                            float* dbeta, int64_t rows, int64_t features) {
  if (dx != nullptr) {
    ParallelFor(0, rows, Grain(features), [=](int64_t begin, int64_t end) {
      for (int64_t r = begin; r < end; ++r) {
        const float* grow = g + r * features;
        const float* row = x + r * features;
        const float m = mean[r];
        const float rs = rstd[r];
        float c1 = 0.0f;  // mean_f(g*gamma)
        float c2 = 0.0f;  // mean_f(g*gamma*xhat)
        for (int64_t f = 0; f < features; ++f) {
          const float gg = grow[f] * gamma[f];
          c1 += gg;
          c2 += gg * (row[f] - m) * rs;
        }
        c1 /= static_cast<float>(features);
        c2 /= static_cast<float>(features);
        float* drow = dx + r * features;
        for (int64_t f = 0; f < features; ++f) {
          const float xhat = (row[f] - m) * rs;
          drow[f] += rs * (grow[f] * gamma[f] - c1 - xhat * c2);
        }
      }
    });
  }
  if (dgamma != nullptr || dbeta != nullptr) {
    // Column-parallel: each feature's accumulation walks rows in a fixed
    // order, so the sums are bitwise identical for any thread count.
    ParallelFor(0, features, Grain(rows), [=](int64_t begin, int64_t end) {
      for (int64_t f = begin; f < end; ++f) {
        float sum_g = 0.0f;
        float sum_gx = 0.0f;
        for (int64_t r = 0; r < rows; ++r) {
          const float gv = g[r * features + f];
          sum_g += gv;
          sum_gx += gv * (x[r * features + f] - mean[r]) * rstd[r];
        }
        if (dgamma != nullptr) dgamma[f] += sum_gx;
        if (dbeta != nullptr) dbeta[f] += sum_g;
      }
    });
  }
}

void FusedSoftmaxForward(const float* x, const float* mask, int64_t mask_rows,
                         float scale, float masked_value, float* y,
                         int64_t rows, int64_t dim) {
  ParallelFor(0, rows, Grain(dim), [=](int64_t begin, int64_t end) {
    for (int64_t r = begin; r < end; ++r) {
      const float* row = x + r * dim;
      const float* mask_row =
          mask != nullptr ? mask + (r % mask_rows) * dim : nullptr;
      float* out = y + r * dim;
      // Streaming pass: fold scale + mask into the row, tracking the max.
      float max_value = -std::numeric_limits<float>::infinity();
      for (int64_t d = 0; d < dim; ++d) {
        const float v = (mask_row != nullptr && mask_row[d] != 0.0f)
                            ? masked_value
                            : row[d] * scale;
        out[d] = v;
        max_value = std::max(max_value, v);
      }
      float denom = 0.0f;
      for (int64_t d = 0; d < dim; ++d) {
        out[d] = std::exp(out[d] - max_value);
        denom += out[d];
      }
      for (int64_t d = 0; d < dim; ++d) out[d] /= denom;
    }
  });
}

void FusedSoftmaxBackward(const float* g, const float* y, float scale,
                          float* dx, int64_t rows, int64_t dim) {
  ParallelFor(0, rows, Grain(dim), [=](int64_t begin, int64_t end) {
    for (int64_t r = begin; r < end; ++r) {
      const float* grow = g + r * dim;
      const float* yrow = y + r * dim;
      float dot = 0.0f;
      for (int64_t d = 0; d < dim; ++d) dot += grow[d] * yrow[d];
      float* drow = dx + r * dim;
      // Masked positions have yrow[d] == 0, so they receive no gradient —
      // exactly the composed MaskedFill's stop-gradient behavior.
      for (int64_t d = 0; d < dim; ++d) {
        drow[d] += scale * yrow[d] * (grow[d] - dot);
      }
    }
  });
}

void FusedBiasGeluForward(const float* x, const float* bias, float* y,
                          int64_t rows, int64_t features) {
  ParallelFor(0, rows, Grain(features), [=](int64_t begin, int64_t end) {
    for (int64_t r = begin; r < end; ++r) {
      const float* row = x + r * features;
      float* out = y + r * features;
      for (int64_t f = 0; f < features; ++f) {
        const float u = bias != nullptr ? row[f] + bias[f] : row[f];
        out[f] = GeluValue(u);
      }
    }
  });
}

void FusedBiasGeluBackward(const float* g, const float* x, const float* bias,
                           float* dx, float* dbias, float* scratch,
                           int64_t rows, int64_t features) {
  const int64_t n = rows * features;
  // Row pass: du = g * gelu'(x + bias), staged into scratch for the column
  // reduction and accumulated into dx. Disjoint writes; parallel.
  ParallelFor(0, n, kElementwiseGrain, [=](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      const float u =
          bias != nullptr ? x[i] + bias[i % features] : x[i];
      const float du = g[i] * GeluDerivative(u);
      if (scratch != nullptr) scratch[i] = du;
      if (dx != nullptr) dx[i] += du;
    }
  });
  if (dbias != nullptr) {
    ParallelFor(0, features, Grain(rows), [=](int64_t begin, int64_t end) {
      for (int64_t f = begin; f < end; ++f) {
        float sum = 0.0f;
        for (int64_t r = 0; r < rows; ++r) sum += scratch[r * features + f];
        dbias[f] += sum;
      }
    });
  }
}

}  // namespace scalar

// Public entry points: trace, then forward through the active dispatch
// table (scalar or the best vector ISA — see kernels/dispatch.h).

void FusedLayerNormForward(const float* x, const float* gamma,
                           const float* beta, float eps, float* y,
                           float* mean, float* rstd, int64_t rows,
                           int64_t features) {
  TIMEDRL_TRACE_SCOPE_CAT("fused_layer_norm_fwd", "kernel");
  simd::Active().layer_norm_fwd(x, gamma, beta, eps, y, mean, rstd, rows,
                                features);
}

void FusedLayerNormBackward(const float* g, const float* x,
                            const float* gamma, const float* mean,
                            const float* rstd, float* dx, float* dgamma,
                            float* dbeta, int64_t rows, int64_t features) {
  TIMEDRL_TRACE_SCOPE_CAT("fused_layer_norm_bwd", "kernel");
  simd::Active().layer_norm_bwd(g, x, gamma, mean, rstd, dx, dgamma, dbeta,
                                rows, features);
}

void FusedSoftmaxForward(const float* x, const float* mask, int64_t mask_rows,
                         float scale, float masked_value, float* y,
                         int64_t rows, int64_t dim) {
  TIMEDRL_TRACE_SCOPE_CAT("fused_softmax_fwd", "kernel");
  simd::Active().softmax_fwd(x, mask, mask_rows, scale, masked_value, y, rows,
                             dim);
}

void FusedSoftmaxBackward(const float* g, const float* y, float scale,
                          float* dx, int64_t rows, int64_t dim) {
  TIMEDRL_TRACE_SCOPE_CAT("fused_softmax_bwd", "kernel");
  simd::Active().softmax_bwd(g, y, scale, dx, rows, dim);
}

void FusedBiasGeluForward(const float* x, const float* bias, float* y,
                          int64_t rows, int64_t features) {
  TIMEDRL_TRACE_SCOPE_CAT("fused_bias_gelu_fwd", "kernel");
  simd::Active().bias_gelu_fwd(x, bias, y, rows, features);
}

void FusedBiasGeluBackward(const float* g, const float* x, const float* bias,
                           float* dx, float* dbias, float* scratch,
                           int64_t rows, int64_t features) {
  TIMEDRL_TRACE_SCOPE_CAT("fused_bias_gelu_bwd", "kernel");
  simd::Active().bias_gelu_bwd(g, x, bias, dx, dbias, scratch, rows, features);
}

}  // namespace timedrl::kernels
