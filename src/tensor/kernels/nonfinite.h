// Non-finite (NaN/Inf) detection kernel over raw float buffers.
//
// The anomaly guard scans losses and gradient buffers for numerical
// blow-ups every training step, so the scan must be as cheap as a read-only
// pass. The count is an integer reduction: per-chunk partial sums combine
// with integer addition, which is associative and commutative, so results
// are identical for any thread-pool size (see util/thread_pool.h).

#ifndef TIMEDRL_TENSOR_KERNELS_NONFINITE_H_
#define TIMEDRL_TENSOR_KERNELS_NONFINITE_H_

#include <cstdint>

namespace timedrl::kernels {

/// Number of values in x[0, n) that are NaN or +/-Inf. Parallel.
int64_t CountNonFinite(const float* x, int64_t n);

}  // namespace timedrl::kernels

#endif  // TIMEDRL_TENSOR_KERNELS_NONFINITE_H_
