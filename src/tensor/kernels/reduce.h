// Strided reduction and row-softmax kernels over raw float buffers.
//
// Layout convention: the row kernels view a tensor reduced over dimension
// `dim` as [outer, dim, inner] — `outer` collapses the leading dims, `inner`
// the trailing ones. A "row" is one (outer, inner) pair; rows are
// independent, so row kernels parallelize over the flattened row index with
// bitwise-identical results for any pool size (each row is produced by one
// thread; see util/thread_pool.h).
//
// Scatter-style kernels whose destination slots are shared across the
// iteration (ReduceAddStrided, NllBackwardAccumulate) run serially.

#ifndef TIMEDRL_TENSOR_KERNELS_REDUCE_H_
#define TIMEDRL_TENSOR_KERNELS_REDUCE_H_

#include <cstdint>
#include <vector>

#include "tensor/shape.h"

namespace timedrl::kernels {

/// out[slot(i)] += in[i], where slot follows `acc_strides` (stride 0 on the
/// reduced dims). SERIAL: many i share one slot.
void ReduceAddStrided(const Shape& in_shape,
                      const std::vector<int64_t>& acc_strides, const float* in,
                      float* out);

/// ga[i] += g[slot(i)] — the broadcast-back gradient of ReduceAddStrided.
/// Parallel: each i is written once.
void BroadcastAddStrided(const Shape& in_shape,
                         const std::vector<int64_t>& acc_strides,
                         const float* g, float* ga);

/// y = softmax(x) along the middle dim of [outer, dim, inner].
void SoftmaxForward(const float* x, float* y, int64_t outer, int64_t dim,
                    int64_t inner);

/// ga += y * (g - sum_d(g*y)) — softmax backward; y is the forward output.
void SoftmaxBackwardAccumulate(const float* g, const float* y, float* ga,
                               int64_t outer, int64_t dim, int64_t inner);

/// y = log_softmax(x) along the middle dim.
void LogSoftmaxForward(const float* x, float* y, int64_t outer, int64_t dim,
                       int64_t inner);

/// ga += g - exp(y) * sum_d(g) — log-softmax backward.
void LogSoftmaxBackwardAccumulate(const float* g, const float* y, float* ga,
                                  int64_t outer, int64_t dim, int64_t inner);

/// Row max and argmax along the middle dim: y/argmax have outer*inner
/// entries.
void MaxForward(const float* x, float* y, int64_t* argmax, int64_t outer,
                int64_t dim, int64_t inner);

/// ga[(o*dim + argmax[row])*inner + i] += g[row] — max backward.
void MaxBackwardAccumulate(const float* g, const int64_t* argmax, float* ga,
                           int64_t outer, int64_t dim, int64_t inner);

/// Argmax only (no gradient path).
void ArgMaxForward(const float* x, int64_t* argmax, int64_t outer, int64_t dim,
                   int64_t inner);

/// Mean negative log-likelihood of `labels` under row log-probs lp [n, k].
float NllForward(const float* lp, const int64_t* labels, int64_t n, int64_t k);

/// g_lp[i*k + labels[i]] -= g / n — NLL backward. SERIAL (cheap gather).
void NllBackwardAccumulate(float g, const int64_t* labels, float* g_lp,
                           int64_t n, int64_t k);

}  // namespace timedrl::kernels

#endif  // TIMEDRL_TENSOR_KERNELS_REDUCE_H_
