#include "tensor/kernels/dispatch.h"

#include <atomic>
#include <mutex>

#include "obs/logging.h"
#include "tensor/kernels/scalar_kernels.h"
#include "util/env.h"

namespace timedrl::kernels::simd {

// Each per-ISA TU (kernels/arch/kernels_<isa>.cc) defines its accessor
// unconditionally: it returns the table when the TU was compiled with the
// matching -m flags and nullptr otherwise. dispatch.cc itself is compiled
// with baseline flags only, so it never touches vector code — it just
// follows pointers.
namespace arch {
const KernelTable* Avx2Table();
const KernelTable* Avx512Table();
const KernelTable* NeonTable();
}  // namespace arch

namespace {

constexpr KernelTable kScalarTable = {
    "scalar",
    &scalar::GemmNN,
    &scalar::GemmNT,
    &scalar::GemmTN,
    &scalar::FusedLayerNormForward,
    &scalar::FusedLayerNormBackward,
    &scalar::FusedSoftmaxForward,
    &scalar::FusedSoftmaxBackward,
    &scalar::FusedBiasGeluForward,
    &scalar::FusedBiasGeluBackward,
    &scalar::CountNonFinite,
};

const KernelTable* CompiledTable(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return &kScalarTable;
    case Isa::kAvx2:
      return arch::Avx2Table();
    case Isa::kAvx512:
      return arch::Avx512Table();
    case Isa::kNeon:
      return arch::NeonTable();
  }
  return nullptr;
}

// The active selection: table + ISA published together so a reader never
// sees a mismatched pair.
struct Selection {
  Isa isa;
  const KernelTable* table;
};

constexpr int kIsaCount = 4;
// One static Selection per ISA; g_active flips between them atomically.
constexpr Selection kSelections[kIsaCount] = {
    {Isa::kScalar, nullptr},  // table pointers resolved lazily below
    {Isa::kAvx2, nullptr},
    {Isa::kAvx512, nullptr},
    {Isa::kNeon, nullptr},
};

std::atomic<const Selection*> g_active{nullptr};
std::once_flag g_init_once;

// kSelections must hold the actual table pointers before first publish;
// they cannot be constant-initialized because the arch accessors are
// functions. Resolved into this mutable mirror once.
Selection g_resolved[kIsaCount];

void ResolveTables() {
  for (int i = 0; i < kIsaCount; ++i) {
    g_resolved[i].isa = kSelections[i].isa;
    g_resolved[i].table = CompiledTable(kSelections[i].isa);
  }
}

Isa RequestToIsa(Request request) {
  switch (request) {
    case Request::kScalar:
      return Isa::kScalar;
    case Request::kAvx2:
      return Isa::kAvx2;
    case Request::kAvx512:
      return Isa::kAvx512;
    case Request::kNeon:
      return Isa::kNeon;
    default:
      return Isa::kScalar;
  }
}

void InitFromEnv() {
  ResolveTables();
  const std::string value = util::Env::GetString("TIMEDRL_SIMD", "auto");
  const Request request = ParseRequest(value);
  Isa chosen;
  if (request == Request::kInvalid) {
    TIMEDRL_LOG_WARNING << "TIMEDRL_SIMD=\"" << value
                        << "\" is not auto|scalar|avx2|avx512|neon; using "
                           "auto";
    chosen = BestAvailable();
  } else if (request == Request::kAuto) {
    chosen = BestAvailable();
  } else {
    chosen = RequestToIsa(request);
    if (!Available(chosen)) {
      const Isa fallback = BestAvailable();
      TIMEDRL_LOG_WARNING << "TIMEDRL_SIMD=" << IsaName(chosen) << " is not "
                          << (Compiled(chosen) ? "supported by this CPU"
                                               : "compiled into this binary")
                          << "; using " << IsaName(fallback);
      chosen = fallback;
    }
  }
  g_active.store(&g_resolved[static_cast<int>(chosen)],
                 std::memory_order_release);
}

const Selection& ActiveSelection() {
  const Selection* selection = g_active.load(std::memory_order_acquire);
  if (selection == nullptr) {
    std::call_once(g_init_once, InitFromEnv);
    selection = g_active.load(std::memory_order_acquire);
  }
  return *selection;
}

}  // namespace

Request ParseRequest(const std::string& text) {
  if (text.empty() || text == "auto") return Request::kAuto;
  if (text == "scalar") return Request::kScalar;
  if (text == "avx2") return Request::kAvx2;
  if (text == "avx512") return Request::kAvx512;
  if (text == "neon") return Request::kNeon;
  return Request::kInvalid;
}

const KernelTable& Active() { return *ActiveSelection().table; }

Isa ActiveIsa() { return ActiveSelection().isa; }

bool SetIsa(Isa isa) {
  ActiveSelection();  // ensure tables are resolved / env applied first
  if (!Available(isa)) return false;
  g_active.store(&g_resolved[static_cast<int>(isa)],
                 std::memory_order_release);
  return true;
}

bool Compiled(Isa isa) { return CompiledTable(isa) != nullptr; }

bool CpuSupports(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
      return false;
#endif
    case Isa::kAvx512:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx512f") &&
             __builtin_cpu_supports("avx512dq") &&
             __builtin_cpu_supports("avx512vl") &&
             __builtin_cpu_supports("avx512bw");
#else
      return false;
#endif
    case Isa::kNeon:
#if defined(__aarch64__)
      return true;  // NEON is baseline on AArch64
#else
      return false;
#endif
  }
  return false;
}

bool Available(Isa isa) { return Compiled(isa) && CpuSupports(isa); }

Isa BestAvailable() {
  if (Available(Isa::kAvx512)) return Isa::kAvx512;
  if (Available(Isa::kAvx2)) return Isa::kAvx2;
  if (Available(Isa::kNeon)) return Isa::kNeon;
  return Isa::kScalar;
}

const KernelTable* TableFor(Isa isa) {
  if (!Available(isa)) return nullptr;
  return CompiledTable(isa);
}

const char* IsaName(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kAvx512:
      return "avx512";
    case Isa::kNeon:
      return "neon";
  }
  return "unknown";
}

std::string CpuFeatureString() {
  std::string features;
  const auto append = [&features](const char* name) {
    if (!features.empty()) features += ' ';
    features += name;
  };
#if defined(__x86_64__) || defined(__i386__)
  if (__builtin_cpu_supports("sse2")) append("sse2");
  if (__builtin_cpu_supports("sse4.2")) append("sse4.2");
  if (__builtin_cpu_supports("avx")) append("avx");
  if (__builtin_cpu_supports("fma")) append("fma");
  if (__builtin_cpu_supports("avx2")) append("avx2");
  if (__builtin_cpu_supports("avx512f")) append("avx512f");
  if (__builtin_cpu_supports("avx512dq")) append("avx512dq");
  if (__builtin_cpu_supports("avx512vl")) append("avx512vl");
  if (__builtin_cpu_supports("avx512bw")) append("avx512bw");
#elif defined(__aarch64__)
  append("neon");
#endif
  if (features.empty()) features = "baseline";
  return features;
}

}  // namespace timedrl::kernels::simd
