// Runtime ISA dispatch for the hot kernels (GEMM, fused transformer ops,
// CountNonFinite).
//
// The kernel layer's public entry points (kernels/gemm.h, kernels/fused.h,
// kernels/nonfinite.h) forward through a per-process KernelTable of function
// pointers. The table is chosen once, on first use: the registry probes the
// CPU (cpuid via __builtin_cpu_supports on x86; NEON is baseline on
// AArch64), intersects that with the ISAs actually compiled into the binary
// (each lives in its own TU under kernels/arch/, built with the matching -m
// flags — see src/tensor/CMakeLists.txt), and picks the best. The
// TIMEDRL_SIMD environment variable overrides the choice:
//
//   TIMEDRL_SIMD=auto|scalar|avx2|avx512|neon
//
// Requesting an ISA the machine cannot run (or that was not compiled in)
// logs a warning and falls back to the best available one — the registry
// never selects a path the CPU cannot execute.
//
// Determinism contract (DESIGN.md §16): within one dispatch path, every
// kernel is bitwise deterministic across thread counts. Across paths
// (scalar vs a vector ISA) results agree to float tolerance only — vector
// kernels reassociate reductions lane-wise and use polynomial Exp/Tanh —
// which is the same class of contract the fusion layer already carries
// (~1e-6, verified by the `simd`-labeled equivalence suite and the
// scalar-vs-SIMD phase of bench/e2e_train_step).

#ifndef TIMEDRL_TENSOR_KERNELS_DISPATCH_H_
#define TIMEDRL_TENSOR_KERNELS_DISPATCH_H_

#include <cstdint>
#include <string>

namespace timedrl::kernels::simd {

enum class Isa : int { kScalar = 0, kAvx2 = 1, kAvx512 = 2, kNeon = 3 };

/// One dispatchable backend: an implementation of every hot kernel. The
/// signatures mirror the public entry points in kernels/{gemm,fused,
/// nonfinite}.h exactly; see those headers for parameter semantics.
struct KernelTable {
  const char* name;
  void (*gemm_nn)(const float* a, const float* b, float* c, int64_t m,
                  int64_t k, int64_t n, bool accumulate);
  void (*gemm_nt)(const float* a, const float* b, float* c, int64_t m,
                  int64_t n, int64_t k, bool accumulate);
  void (*gemm_tn)(const float* a, const float* b, float* c, int64_t m,
                  int64_t k, int64_t n, bool accumulate);
  void (*layer_norm_fwd)(const float* x, const float* gamma,
                         const float* beta, float eps, float* y, float* mean,
                         float* rstd, int64_t rows, int64_t features);
  void (*layer_norm_bwd)(const float* g, const float* x, const float* gamma,
                         const float* mean, const float* rstd, float* dx,
                         float* dgamma, float* dbeta, int64_t rows,
                         int64_t features);
  void (*softmax_fwd)(const float* x, const float* mask, int64_t mask_rows,
                      float scale, float masked_value, float* y, int64_t rows,
                      int64_t dim);
  void (*softmax_bwd)(const float* g, const float* y, float scale, float* dx,
                      int64_t rows, int64_t dim);
  void (*bias_gelu_fwd)(const float* x, const float* bias, float* y,
                        int64_t rows, int64_t features);
  void (*bias_gelu_bwd)(const float* g, const float* x, const float* bias,
                        float* dx, float* dbias, float* scratch, int64_t rows,
                        int64_t features);
  int64_t (*count_nonfinite)(const float* x, int64_t n);
};

/// What a TIMEDRL_SIMD value asks for. kInvalid values warn and behave as
/// kAuto.
enum class Request : int {
  kAuto = 0,
  kScalar,
  kAvx2,
  kAvx512,
  kNeon,
  kInvalid
};

/// Parses a TIMEDRL_SIMD value ("auto", "scalar", "avx2", "avx512",
/// "neon"); anything else is kInvalid. Pure function, exposed for tests.
Request ParseRequest(const std::string& text);

/// The table every public kernel entry point calls through. Initialized on
/// first use from cpuid + TIMEDRL_SIMD.
const KernelTable& Active();

/// The ISA behind Active().
Isa ActiveIsa();

/// Programmatic override (benchmarks, tests — mirrors fusion::SetEnabled).
/// Returns false and changes nothing if the ISA is not Available(). Must
/// not race with running kernels.
bool SetIsa(Isa isa);

/// Whether this binary contains a backend for `isa` (per-TU compilation —
/// always true for kScalar).
bool Compiled(Isa isa);

/// Whether the CPU we are running on can execute `isa`.
bool CpuSupports(Isa isa);

/// Compiled(isa) && CpuSupports(isa).
bool Available(Isa isa);

/// The best available ISA: avx512 > avx2 > neon > scalar.
Isa BestAvailable();

/// The table for a specific ISA, or nullptr unless Available(isa). Lets
/// tests and benchmarks call a backend directly without flipping the
/// process-wide active table.
const KernelTable* TableFor(Isa isa);

/// "scalar" / "avx2" / "avx512" / "neon".
const char* IsaName(Isa isa);

/// Space-separated summary of the SIMD-relevant CPU features cpuid
/// advertises (e.g. "sse2 sse4.2 avx fma avx2 avx512f ..."), recorded in
/// the bench JSONs so perf numbers are comparable across machines.
std::string CpuFeatureString();

}  // namespace timedrl::kernels::simd

#endif  // TIMEDRL_TENSOR_KERNELS_DISPATCH_H_
