#include "tensor/kernels/conv1d.h"

#include <vector>

#include "tensor/buffer_pool.h"
#include "tensor/kernels/gemm.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace timedrl::kernels {

void Im2Col(const float* x_b, const Conv1dGeometry& geom, float* col) {
  for (int64_t ci = 0; ci < geom.c_in; ++ci) {
    const float* xrow = x_b + ci * geom.length;
    for (int64_t kk = 0; kk < geom.kernel; ++kk) {
      float* crow = col + (ci * geom.kernel + kk) * geom.out_length;
      const int64_t offset = kk * geom.dilation - geom.padding;
      for (int64_t l = 0; l < geom.out_length; ++l) {
        const int64_t pos = l * geom.stride + offset;
        crow[l] = (pos >= 0 && pos < geom.length) ? xrow[pos] : 0.0f;
      }
    }
  }
}

void Col2ImAccumulate(const float* col, const Conv1dGeometry& geom,
                      float* gx_b) {
  for (int64_t ci = 0; ci < geom.c_in; ++ci) {
    float* gxrow = gx_b + ci * geom.length;
    for (int64_t kk = 0; kk < geom.kernel; ++kk) {
      const float* crow = col + (ci * geom.kernel + kk) * geom.out_length;
      const int64_t offset = kk * geom.dilation - geom.padding;
      for (int64_t l = 0; l < geom.out_length; ++l) {
        const int64_t pos = l * geom.stride + offset;
        if (pos >= 0 && pos < geom.length) gxrow[pos] += crow[l];
      }
    }
  }
}

void Conv1dForward(const float* x, const float* w, const float* bias,
                   float* out, const Conv1dGeometry& geom) {
  TIMEDRL_TRACE_SCOPE_CAT("conv1d_fwd", "kernel");
  ParallelFor(0, geom.batch, 1, [&](int64_t batch_begin, int64_t batch_end) {
    // Per-chunk im2col workspace; recycled through each worker's pool cache
    // (Im2Col overwrites every element, so stale contents are fine).
    std::vector<float> col =
        pool::AcquireUninit(geom.col_rows() * geom.out_length);
    for (int64_t b = batch_begin; b < batch_end; ++b) {
      Im2Col(x + b * geom.c_in * geom.length, geom, col.data());
      float* out_b = out + b * geom.c_out * geom.out_length;
      if (bias != nullptr) {
        // Bias pre-fill seeds the accumulation, so out_b is fully written
        // either way and the caller never needs to zero it.
        for (int64_t co = 0; co < geom.c_out; ++co) {
          float* orow = out_b + co * geom.out_length;
          for (int64_t l = 0; l < geom.out_length; ++l) orow[l] = bias[co];
        }
      }
      // out_b [c_out, out_len] = bias + w [c_out, c_in*K] * col [c_in*K,
      // out_len].
      GemmNN(w, col.data(), out_b, geom.c_out, geom.col_rows(),
             geom.out_length, /*accumulate=*/bias != nullptr);
    }
    pool::Release(std::move(col));
  });
}

void Conv1dBackwardInput(const float* w, const float* g, float* gx,
                         const Conv1dGeometry& geom) {
  TIMEDRL_TRACE_SCOPE_CAT("conv1d_bwd_input", "kernel");
  ParallelFor(0, geom.batch, 1, [&](int64_t batch_begin, int64_t batch_end) {
    // Fully overwritten by the overwrite-mode GEMM each batch iteration.
    std::vector<float> dcol =
        pool::AcquireUninit(geom.col_rows() * geom.out_length);
    for (int64_t b = batch_begin; b < batch_end; ++b) {
      // dcol [c_in*K, out_len] = w^T [c_in*K, c_out] * g_b [c_out, out_len].
      GemmTN(w, g + b * geom.c_out * geom.out_length, dcol.data(), geom.c_out,
             geom.col_rows(), geom.out_length, /*accumulate=*/false);
      Col2ImAccumulate(dcol.data(), geom, gx + b * geom.c_in * geom.length);
    }
    pool::Release(std::move(dcol));
  });
}

void Conv1dBackwardWeight(const float* x, const float* g, float* gw,
                          const Conv1dGeometry& geom) {
  TIMEDRL_TRACE_SCOPE_CAT("conv1d_bwd_weight", "kernel");
  std::vector<float> col =
      pool::AcquireUninit(geom.col_rows() * geom.out_length);
  for (int64_t b = 0; b < geom.batch; ++b) {
    Im2Col(x + b * geom.c_in * geom.length, geom, col.data());
    // gw [c_out, c_in*K] += g_b [c_out, out_len] * col^T [out_len, c_in*K].
    GemmNT(g + b * geom.c_out * geom.out_length, col.data(), gw, geom.c_out,
           geom.out_length, geom.col_rows());
  }
  pool::Release(std::move(col));
}

void Conv1dBackwardBias(const float* g, float* gb,
                        const Conv1dGeometry& geom) {
  TIMEDRL_TRACE_SCOPE_CAT("conv1d_bwd_bias", "kernel");
  ParallelFor(0, geom.c_out, 1, [&](int64_t co_begin, int64_t co_end) {
    for (int64_t co = co_begin; co < co_end; ++co) {
      float acc = 0.0f;
      for (int64_t b = 0; b < geom.batch; ++b) {
        const float* grow =
            g + (b * geom.c_out + co) * geom.out_length;
        for (int64_t l = 0; l < geom.out_length; ++l) acc += grow[l];
      }
      gb[co] += acc;
    }
  });
}

}  // namespace timedrl::kernels
