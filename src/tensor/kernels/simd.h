// Portable SIMD vector abstraction for the kernel backend.
//
// Each ISA is a traits struct (Avx2 / Avx512 / Neon) over a native register
// type, exposing the fixed op vocabulary the templated kernels in
// kernels/arch/simd_kernels.h are written against: unaligned load/store,
// arithmetic, FMA, compare/select, and FIXED-ORDER horizontal reductions.
// Traits are only defined when the matching ISA macros are set, so this
// header is safe to include from any TU — but vector code must only be
// INSTANTIATED inside the per-ISA TUs under kernels/arch/, which are the
// only TUs compiled with the matching -m flags (see src/tensor/CMakeLists).
// That per-TU isolation is what guarantees e.g. AVX-512 instructions never
// exist outside kernels_avx512.cc, so baseline hardware can run the binary
// and the dispatch registry (kernels/dispatch.h) alone decides what runs.
//
// Determinism: every horizontal reduction (ReduceAdd / ReduceMax) uses a
// fixed lane tree, and the transcendental helpers (Exp / Tanh) are pure
// polynomial pipelines — for a given ISA the result of any op sequence is a
// pure function of its inputs. Combined with the kernel-layer rule that
// which elements take the vector body vs the scalar tail depends only on
// the problem shape (never on thread-chunk boundaries), results within one
// dispatch path are bitwise identical for any thread count. Across ISAs
// (scalar vs avx2 vs avx512) results agree only to float tolerance: lane
// trees reassociate sums and Exp/Tanh round differently from libm.

#ifndef TIMEDRL_TENSOR_KERNELS_SIMD_H_
#define TIMEDRL_TENSOR_KERNELS_SIMD_H_

#include <cstdint>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#elif defined(__ARM_NEON)
#include <arm_neon.h>
#endif

namespace timedrl::kernels::simd {

#if defined(__AVX2__) && defined(__FMA__)

/// 8-lane single-precision AVX2+FMA.
struct Avx2 {
  static constexpr int kWidth = 8;
  using Reg = __m256;
  using Mask = __m256;  // all-ones / all-zeros lanes from a compare

  static Reg Load(const float* p) { return _mm256_loadu_ps(p); }
  static void Store(float* p, Reg v) { _mm256_storeu_ps(p, v); }
  static Reg Set1(float x) { return _mm256_set1_ps(x); }
  static Reg Zero() { return _mm256_setzero_ps(); }
  static Reg Add(Reg a, Reg b) { return _mm256_add_ps(a, b); }
  static Reg Sub(Reg a, Reg b) { return _mm256_sub_ps(a, b); }
  static Reg Mul(Reg a, Reg b) { return _mm256_mul_ps(a, b); }
  static Reg Div(Reg a, Reg b) { return _mm256_div_ps(a, b); }
  static Reg Max(Reg a, Reg b) { return _mm256_max_ps(a, b); }
  static Reg Min(Reg a, Reg b) { return _mm256_min_ps(a, b); }
  /// a * b + c with a single rounding (matches std::fma).
  static Reg Fma(Reg a, Reg b, Reg c) { return _mm256_fmadd_ps(a, b, c); }
  static Reg Round(Reg v) {
    return _mm256_round_ps(v, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  }
  /// 2^v for integral-valued v within the float exponent range.
  static Reg Pow2(Reg v) {
    __m256i n = _mm256_cvtps_epi32(v);
    n = _mm256_slli_epi32(_mm256_add_epi32(n, _mm256_set1_epi32(127)), 23);
    return _mm256_castsi256_ps(n);
  }
  static Mask CmpLt(Reg a, Reg b) { return _mm256_cmp_ps(a, b, _CMP_LT_OQ); }
  /// Lane-true where v != 0.0f (NaN counts as nonzero, like the scalar !=).
  static Mask CmpNeZero(Reg v) {
    return _mm256_cmp_ps(v, _mm256_setzero_ps(), _CMP_NEQ_UQ);
  }
  static Reg Select(Mask m, Reg if_true, Reg if_false) {
    return _mm256_blendv_ps(if_false, if_true, m);
  }
  static Reg Abs(Reg v) { return _mm256_andnot_ps(Set1(-0.0f), v); }
  static Reg CopySign(Reg magnitude, Reg sign_of) {
    const Reg sign_mask = Set1(-0.0f);
    return _mm256_or_ps(_mm256_andnot_ps(sign_mask, magnitude),
                        _mm256_and_ps(sign_mask, sign_of));
  }
  /// Fixed lane tree: ((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7)) shape.
  static float ReduceAdd(Reg v) {
    __m128 s = _mm_add_ps(_mm256_castps256_ps128(v),
                          _mm256_extractf128_ps(v, 1));
    s = _mm_add_ps(s, _mm_movehl_ps(s, s));
    s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x1));
    return _mm_cvtss_f32(s);
  }
  static float ReduceMax(Reg v) {
    __m128 s = _mm_max_ps(_mm256_castps256_ps128(v),
                          _mm256_extractf128_ps(v, 1));
    s = _mm_max_ps(s, _mm_movehl_ps(s, s));
    s = _mm_max_ss(s, _mm_shuffle_ps(s, s, 0x1));
    return _mm_cvtss_f32(s);
  }
  /// Lanes whose exponent field is all-ones (Inf or NaN).
  static int CountNonFinite(Reg v) {
    const __m256i exponent = _mm256_set1_epi32(0x7f800000);
    const __m256i masked =
        _mm256_and_si256(_mm256_castps_si256(v), exponent);
    const __m256i hit = _mm256_cmpeq_epi32(masked, exponent);
    return __builtin_popcount(
        _mm256_movemask_ps(_mm256_castsi256_ps(hit)));
  }
};

#endif  // __AVX2__ && __FMA__

#if defined(__AVX512F__) && defined(__AVX512DQ__) && defined(__AVX512VL__) && \
    defined(__AVX512BW__)

/// 16-lane single-precision AVX-512 (F+DQ+VL+BW feature set).
struct Avx512 {
  static constexpr int kWidth = 16;
  using Reg = __m512;
  using Mask = __mmask16;

  static Reg Load(const float* p) { return _mm512_loadu_ps(p); }
  static void Store(float* p, Reg v) { _mm512_storeu_ps(p, v); }
  static Reg Set1(float x) { return _mm512_set1_ps(x); }
  static Reg Zero() { return _mm512_setzero_ps(); }
  static Reg Add(Reg a, Reg b) { return _mm512_add_ps(a, b); }
  static Reg Sub(Reg a, Reg b) { return _mm512_sub_ps(a, b); }
  static Reg Mul(Reg a, Reg b) { return _mm512_mul_ps(a, b); }
  static Reg Div(Reg a, Reg b) { return _mm512_div_ps(a, b); }
  static Reg Max(Reg a, Reg b) { return _mm512_max_ps(a, b); }
  static Reg Min(Reg a, Reg b) { return _mm512_min_ps(a, b); }
  static Reg Fma(Reg a, Reg b, Reg c) { return _mm512_fmadd_ps(a, b, c); }
  static Reg Round(Reg v) {
    return _mm512_roundscale_ps(
        v, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  }
  static Reg Pow2(Reg v) {
    __m512i n = _mm512_cvtps_epi32(v);
    n = _mm512_slli_epi32(_mm512_add_epi32(n, _mm512_set1_epi32(127)), 23);
    return _mm512_castsi512_ps(n);
  }
  static Mask CmpLt(Reg a, Reg b) {
    return _mm512_cmp_ps_mask(a, b, _CMP_LT_OQ);
  }
  static Mask CmpNeZero(Reg v) {
    return _mm512_cmp_ps_mask(v, _mm512_setzero_ps(), _CMP_NEQ_UQ);
  }
  static Reg Select(Mask m, Reg if_true, Reg if_false) {
    return _mm512_mask_blend_ps(m, if_false, if_true);
  }
  static Reg Abs(Reg v) { return _mm512_abs_ps(v); }
  static Reg CopySign(Reg magnitude, Reg sign_of) {
    const Reg sign_mask = Set1(-0.0f);
    return _mm512_or_ps(_mm512_andnot_ps(sign_mask, magnitude),
                        _mm512_and_ps(sign_mask, sign_of));
  }
  /// Fixed tree: halves to 256, then the AVX2-shaped 128-bit tree.
  static float ReduceAdd(Reg v) {
    __m256 h = _mm256_add_ps(_mm512_castps512_ps256(v),
                             _mm512_extractf32x8_ps(v, 1));
    __m128 s = _mm_add_ps(_mm256_castps256_ps128(h),
                          _mm256_extractf128_ps(h, 1));
    s = _mm_add_ps(s, _mm_movehl_ps(s, s));
    s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x1));
    return _mm_cvtss_f32(s);
  }
  static float ReduceMax(Reg v) {
    __m256 h = _mm256_max_ps(_mm512_castps512_ps256(v),
                             _mm512_extractf32x8_ps(v, 1));
    __m128 s = _mm_max_ps(_mm256_castps256_ps128(h),
                          _mm256_extractf128_ps(h, 1));
    s = _mm_max_ps(s, _mm_movehl_ps(s, s));
    s = _mm_max_ss(s, _mm_shuffle_ps(s, s, 0x1));
    return _mm_cvtss_f32(s);
  }
  static int CountNonFinite(Reg v) {
    const __m512i exponent = _mm512_set1_epi32(0x7f800000);
    const __m512i masked =
        _mm512_and_si512(_mm512_castps_si512(v), exponent);
    return __builtin_popcount(static_cast<unsigned>(
        _mm512_cmpeq_epi32_mask(masked, exponent)));
  }
};

#endif  // AVX-512 F+DQ+VL+BW

#if defined(__ARM_NEON) && defined(__aarch64__)

/// 4-lane single-precision NEON (AArch64, where NEON is baseline).
struct Neon {
  static constexpr int kWidth = 4;
  using Reg = float32x4_t;
  using Mask = uint32x4_t;

  static Reg Load(const float* p) { return vld1q_f32(p); }
  static void Store(float* p, Reg v) { vst1q_f32(p, v); }
  static Reg Set1(float x) { return vdupq_n_f32(x); }
  static Reg Zero() { return vdupq_n_f32(0.0f); }
  static Reg Add(Reg a, Reg b) { return vaddq_f32(a, b); }
  static Reg Sub(Reg a, Reg b) { return vsubq_f32(a, b); }
  static Reg Mul(Reg a, Reg b) { return vmulq_f32(a, b); }
  static Reg Div(Reg a, Reg b) { return vdivq_f32(a, b); }
  static Reg Max(Reg a, Reg b) { return vmaxq_f32(a, b); }
  static Reg Min(Reg a, Reg b) { return vminq_f32(a, b); }
  static Reg Fma(Reg a, Reg b, Reg c) { return vfmaq_f32(c, a, b); }
  static Reg Round(Reg v) { return vrndnq_f32(v); }
  static Reg Pow2(Reg v) {
    int32x4_t n = vcvtnq_s32_f32(v);
    n = vshlq_n_s32(vaddq_s32(n, vdupq_n_s32(127)), 23);
    return vreinterpretq_f32_s32(n);
  }
  static Mask CmpLt(Reg a, Reg b) { return vcltq_f32(a, b); }
  static Mask CmpNeZero(Reg v) {
    return vmvnq_u32(vceqq_f32(v, Zero()));
  }
  static Reg Select(Mask m, Reg if_true, Reg if_false) {
    return vbslq_f32(m, if_true, if_false);
  }
  static Reg Abs(Reg v) { return vabsq_f32(v); }
  static Reg CopySign(Reg magnitude, Reg sign_of) {
    return vbslq_f32(vdupq_n_u32(0x80000000u), sign_of, magnitude);
  }
  /// Fixed tree: (l0+l2) + (l1+l3).
  static float ReduceAdd(Reg v) {
    float32x2_t s = vadd_f32(vget_low_f32(v), vget_high_f32(v));
    return vget_lane_f32(vpadd_f32(s, s), 0);
  }
  static float ReduceMax(Reg v) {
    float32x2_t s = vmax_f32(vget_low_f32(v), vget_high_f32(v));
    return vget_lane_f32(vpmax_f32(s, s), 0);
  }
  static int CountNonFinite(Reg v) {
    const uint32x4_t exponent = vdupq_n_u32(0x7f800000u);
    const uint32x4_t masked =
        vandq_u32(vreinterpretq_u32_f32(v), exponent);
    const uint32x4_t hit = vceqq_u32(masked, exponent);
    return static_cast<int>(vaddvq_u32(vshrq_n_u32(hit, 31)));
  }
};

#endif  // __ARM_NEON && __aarch64__

// ---------------------------------------------------------------------------
// Vector transcendentals, written once over the traits vocabulary.
// ---------------------------------------------------------------------------

/// e^x per lane. Cephes-style: n = round(x*log2e), Cody–Waite reduction to
/// r in [-ln2/2, ln2/2], degree-5 polynomial for e^r, scale by 2^n.
/// Relative error is a few ulps against libm; lanes below the flush cutoff
/// (where libm underflows toward denormals) return exactly 0.0f, so
/// softmax's masked positions stay exactly zero like the scalar path.
template <class V>
inline typename V::Reg Exp(typename V::Reg x) {
  using R = typename V::Reg;
  const R hi = V::Set1(88.3762626647949f);
  const R lo = V::Set1(-87.33654475055310f);
  const typename V::Mask flush = V::CmpLt(x, lo);
  R v = V::Max(V::Min(x, hi), lo);
  const R n = V::Round(V::Mul(v, V::Set1(1.44269504088896341f)));
  R r = V::Fma(n, V::Set1(-0.693359375f), v);
  r = V::Fma(n, V::Set1(2.12194440e-4f), r);
  R p = V::Set1(1.9875691500e-4f);
  p = V::Fma(p, r, V::Set1(1.3981999507e-3f));
  p = V::Fma(p, r, V::Set1(8.3334519073e-3f));
  p = V::Fma(p, r, V::Set1(4.1665795894e-2f));
  p = V::Fma(p, r, V::Set1(1.6666665459e-1f));
  p = V::Fma(p, r, V::Set1(5.0000001201e-1f));
  R y = V::Fma(V::Mul(r, r), p, V::Add(r, V::Set1(1.0f)));
  y = V::Mul(y, V::Pow2(n));
  return V::Select(flush, V::Zero(), y);
}

/// tanh(x) per lane via e^{-2|x|}: (1 - e) / (1 + e) with the sign of x.
/// Absolute error stays within a few float ulps of 1.0 across the range
/// (near zero the quotient's absolute error is ~1e-8, which is what the
/// GELU pipeline cares about since it adds 1 to the result).
template <class V>
inline typename V::Reg Tanh(typename V::Reg x) {
  using R = typename V::Reg;
  const R one = V::Set1(1.0f);
  const R e = Exp<V>(V::Mul(V::Abs(x), V::Set1(-2.0f)));
  const R r = V::Div(V::Sub(one, e), V::Add(one, e));
  return V::CopySign(r, x);
}

}  // namespace timedrl::kernels::simd

#endif  // TIMEDRL_TENSOR_KERNELS_SIMD_H_
