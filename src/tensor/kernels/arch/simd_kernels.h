// The vector kernel backend, written once over the simd.h traits vocabulary
// and instantiated per ISA by the TUs in this directory (kernels_avx2.cc,
// kernels_avx512.cc, kernels_neon.cc) — the only TUs compiled with the
// matching -m flags, so including this header elsewhere is safe as long as
// nothing instantiates the templates.
//
// Determinism rules these kernels follow (DESIGN.md §16):
//  * Which elements take the vector body vs the scalar tail is a pure
//    function of the problem shape — never of ParallelFor chunk boundaries.
//    Row-parallel kernels get this for free (vectorization lives inside a
//    fixed-length row); column-parallel reductions (dgamma/dbeta/dbias)
//    therefore parallelize over feature GROUPS of width V::kWidth rather
//    than raw feature indices.
//  * Every horizontal reduction uses the traits' fixed lane tree, and every
//    per-element accumulation order (k in GEMM, rows in column reductions)
//    is ascending regardless of tiling, so results within one ISA are
//    bitwise identical for any thread count.
//
// GEMM layout (the packed register-blocked path):
//  * C row tiles of kMr rows are the parallel unit; tiling is aligned to
//    kMr from row 0, so the tile map depends only on the shape.
//  * The inner dimension is blocked by kKc. Per block, each task packs the
//    B panel once into pool scratch: full 2W-wide column panels first, then
//    one W-wide panel if >= W columns remain, then one zero-padded W-wide
//    panel for the ragged tail. Panel p-rows are contiguous, so the
//    microkernel streams it linearly.
//  * The A tile (kMr x kKc, k-major) lives in a stack buffer and is
//    gathered per tile — the same pack routine serves NN (unit inner
//    stride) and TN (strided) via the two stride parameters.
//  * Microkernels keep a kMr x 2 register accumulator block (12 FMA
//    accumulators at kMr = 6), one dedicated accumulator per (row, lane)
//    for the whole k sweep: the reduction order per C element is k
//    ascending whatever the blocking, which is what makes the result
//    thread-count independent.

#ifndef TIMEDRL_TENSOR_KERNELS_ARCH_SIMD_KERNELS_H_
#define TIMEDRL_TENSOR_KERNELS_ARCH_SIMD_KERNELS_H_

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>

#include "tensor/kernels/arch/scratch.h"
#include "tensor/kernels/dispatch.h"
#include "tensor/kernels/elementwise.h"
#include "tensor/kernels/simd.h"
#include "util/thread_pool.h"

namespace timedrl::kernels::simd::arch {

// Mirrors the scalar kernel layer's grain policy (gemm.cc / fused.cc).
constexpr int64_t kGemmGrainFlops = int64_t{1} << 15;

inline int64_t Grain(int64_t span) {
  return std::max<int64_t>(1, kElementwiseGrain / std::max<int64_t>(1, span));
}

// Same constants as the scalar GELU in fused.cc / ops_elementwise.cc.
constexpr float kGeluAlpha = 0.7978845608028654f;  // sqrt(2/pi)
constexpr float kGeluBeta = 0.044715f;

// Scalar tails of the vector GELU loops. Same formulas as the scalar
// backend, so the tail only differs from it by libm rounding (i.e. not at
// all) — the vector body is what carries the polynomial tolerance.
inline float ScalarGeluValue(float x) {
  const float inner = kGeluAlpha * (x + kGeluBeta * x * x * x);
  return 0.5f * x * (1.0f + std::tanh(inner));
}

inline float ScalarGeluDerivative(float x) {
  const float inner = kGeluAlpha * (x + kGeluBeta * x * x * x);
  const float t = std::tanh(inner);
  const float dinner = kGeluAlpha * (1.0f + 3.0f * kGeluBeta * x * x);
  return 0.5f * (1.0f + t) + 0.5f * x * (1.0f - t * t) * dinner;
}

template <class V>
inline typename V::Reg GeluValueV(typename V::Reg u) {
  using R = typename V::Reg;
  const R u3 = V::Mul(u, V::Mul(u, u));
  const R inner =
      V::Mul(V::Set1(kGeluAlpha), V::Fma(V::Set1(kGeluBeta), u3, u));
  const R t = Tanh<V>(inner);
  return V::Mul(V::Mul(V::Set1(0.5f), u), V::Add(V::Set1(1.0f), t));
}

template <class V>
inline typename V::Reg GeluDerivativeV(typename V::Reg u) {
  using R = typename V::Reg;
  const R u3 = V::Mul(u, V::Mul(u, u));
  const R inner =
      V::Mul(V::Set1(kGeluAlpha), V::Fma(V::Set1(kGeluBeta), u3, u));
  const R t = Tanh<V>(inner);
  const R dinner = V::Mul(V::Set1(kGeluAlpha),
                          V::Fma(V::Set1(3.0f * kGeluBeta), V::Mul(u, u),
                                 V::Set1(1.0f)));
  const R half = V::Set1(0.5f);
  const R left = V::Mul(half, V::Add(V::Set1(1.0f), t));
  const R sech2 = V::Sub(V::Set1(1.0f), V::Mul(t, t));
  return V::Fma(V::Mul(half, u), V::Mul(sech2, dinner), left);
}

// ---------------------------------------------------------------------------
// Packed register-blocked GEMM.
// ---------------------------------------------------------------------------

/// Rows of C per microkernel tile.
constexpr int kMr = 6;
/// Inner-dimension block: the A tile (kMr x kKc floats) stays L1-resident.
constexpr int64_t kKc = 256;

/// Gathers an A tile into k-major layout: apack[p * mr + r] =
/// a[(row0 + r) * row_stride + (k0 + p) * inner_stride]. row_stride /
/// inner_stride express NN (k, 1) and TN (1, k) over the same buffer.
inline void PackA(float* apack, const float* a, int64_t row0, int64_t mr,
                  int64_t k0, int64_t kk, int64_t row_stride,
                  int64_t inner_stride) {
  for (int64_t r = 0; r < mr; ++r) {
    const float* src = a + (row0 + r) * row_stride + k0 * inner_stride;
    for (int64_t p = 0; p < kk; ++p) {
      apack[p * mr + r] = src[p * inner_stride];
    }
  }
}

/// Layout of one packed B block (see file comment): n2 full 2W panels, then
/// a W panel when >= W columns remain, then a zero-padded W panel for the
/// ragged tail. All panels are p-row contiguous.
struct BPanelLayout {
  int64_t n2;           // full 2W-wide panels
  bool has_single;      // one full W-wide panel after them
  int64_t tail;         // ragged columns in the zero-padded final panel
  int64_t packed_cols;  // total packed width (allocation unit per p-row)

  static BPanelLayout For(int64_t cols, int width) {
    BPanelLayout layout;
    const int64_t pw = 2 * width;
    layout.n2 = cols / pw;
    int64_t rem = cols - layout.n2 * pw;
    layout.has_single = rem >= width;
    if (layout.has_single) rem -= width;
    layout.tail = rem;
    layout.packed_cols = layout.n2 * pw + (layout.has_single ? width : 0) +
                         (layout.tail > 0 ? width : 0);
    return layout;
  }
  int64_t SingleBase(int64_t kk, int width) const {
    return n2 * 2 * width * kk;
  }
  int64_t TailBase(int64_t kk, int width) const {
    return SingleBase(kk, width) + (has_single ? width * kk : 0);
  }
};

template <class V>
inline void PackB(float* bpack, const float* b, int64_t k0, int64_t kk,
                  int64_t cols, const BPanelLayout& layout) {
  constexpr int W = V::kWidth;
  constexpr int64_t PW = 2 * W;
  const int64_t single_base = layout.SingleBase(kk, W);
  const int64_t tail_base = layout.TailBase(kk, W);
  for (int64_t p = 0; p < kk; ++p) {
    const float* src = b + (k0 + p) * cols;
    for (int64_t d = 0; d < layout.n2; ++d) {
      float* dst = bpack + d * PW * kk + p * PW;
      V::Store(dst, V::Load(src + d * PW));
      V::Store(dst + W, V::Load(src + d * PW + W));
    }
    const float* rest = src + layout.n2 * PW;
    if (layout.has_single) {
      V::Store(bpack + single_base + p * W, V::Load(rest));
      rest += W;
    }
    if (layout.tail > 0) {
      float* dst = bpack + tail_base + p * W;
      int64_t j = 0;
      for (; j < layout.tail; ++j) dst[j] = rest[j];
      for (; j < W; ++j) dst[j] = 0.0f;
    }
  }
}

/// MR x (NV*W) register block over one packed panel. One accumulator per
/// (row, lane) for the whole kk sweep; k ascending.
template <class V, int MR, int NV>
inline void MicroKernel(const float* apack, const float* bpanel, int64_t kk,
                        float* c, int64_t ldc, bool add_c) {
  using R = typename V::Reg;
  constexpr int W = V::kWidth;
  R acc[MR][NV];
  for (int r = 0; r < MR; ++r) {
    for (int v = 0; v < NV; ++v) acc[r][v] = V::Zero();
  }
  for (int64_t p = 0; p < kk; ++p) {
    R bv[NV];
    for (int v = 0; v < NV; ++v) bv[v] = V::Load(bpanel + p * NV * W + v * W);
    const float* arow = apack + p * MR;
    for (int r = 0; r < MR; ++r) {
      const R av = V::Set1(arow[r]);
      for (int v = 0; v < NV; ++v) acc[r][v] = V::Fma(av, bv[v], acc[r][v]);
    }
  }
  for (int r = 0; r < MR; ++r) {
    float* crow = c + r * ldc;
    for (int v = 0; v < NV; ++v) {
      if (add_c) {
        V::Store(crow + v * W, V::Add(V::Load(crow + v * W), acc[r][v]));
      } else {
        V::Store(crow + v * W, acc[r][v]);
      }
    }
  }
}

/// Ragged-column panel: the packed panel is zero-padded to W, so the
/// accumulators are exact; only the store is partial (via a bounce buffer —
/// no out-of-bounds C access).
template <class V, int MR>
inline void MicroKernelTail(const float* apack, const float* bpanel,
                            int64_t kk, float* c, int64_t ldc, int64_t cols,
                            bool add_c) {
  using R = typename V::Reg;
  constexpr int W = V::kWidth;
  R acc[MR];
  for (int r = 0; r < MR; ++r) acc[r] = V::Zero();
  for (int64_t p = 0; p < kk; ++p) {
    const R bv = V::Load(bpanel + p * W);
    const float* arow = apack + p * MR;
    for (int r = 0; r < MR; ++r) acc[r] = V::Fma(V::Set1(arow[r]), bv, acc[r]);
  }
  float bounce[W];
  for (int r = 0; r < MR; ++r) {
    V::Store(bounce, acc[r]);
    float* crow = c + r * ldc;
    if (add_c) {
      for (int64_t j = 0; j < cols; ++j) crow[j] += bounce[j];
    } else {
      for (int64_t j = 0; j < cols; ++j) crow[j] = bounce[j];
    }
  }
}

template <class V, int NV>
inline void RunPanel(int mr, const float* apack, const float* bpanel,
                     int64_t kk, float* c, int64_t ldc, bool add_c) {
  switch (mr) {
    case 1: MicroKernel<V, 1, NV>(apack, bpanel, kk, c, ldc, add_c); break;
    case 2: MicroKernel<V, 2, NV>(apack, bpanel, kk, c, ldc, add_c); break;
    case 3: MicroKernel<V, 3, NV>(apack, bpanel, kk, c, ldc, add_c); break;
    case 4: MicroKernel<V, 4, NV>(apack, bpanel, kk, c, ldc, add_c); break;
    case 5: MicroKernel<V, 5, NV>(apack, bpanel, kk, c, ldc, add_c); break;
    default: MicroKernel<V, 6, NV>(apack, bpanel, kk, c, ldc, add_c); break;
  }
}

template <class V>
inline void RunTailPanel(int mr, const float* apack, const float* bpanel,
                         int64_t kk, float* c, int64_t ldc, int64_t cols,
                         bool add_c) {
  switch (mr) {
    case 1: MicroKernelTail<V, 1>(apack, bpanel, kk, c, ldc, cols, add_c); break;
    case 2: MicroKernelTail<V, 2>(apack, bpanel, kk, c, ldc, cols, add_c); break;
    case 3: MicroKernelTail<V, 3>(apack, bpanel, kk, c, ldc, cols, add_c); break;
    case 4: MicroKernelTail<V, 4>(apack, bpanel, kk, c, ldc, cols, add_c); break;
    case 5: MicroKernelTail<V, 5>(apack, bpanel, kk, c, ldc, cols, add_c); break;
    default: MicroKernelTail<V, 6>(apack, bpanel, kk, c, ldc, cols, add_c); break;
  }
}

/// Shared driver for NN and TN: C[rows x cols] (+)= A' * B where
/// A'[r][p] = a[r * a_row_stride + p * a_inner_stride] and B is row-major
/// [inner x cols]. Parallel over kMr-aligned row tiles.
template <class V>
void GemmPacked(const float* a, int64_t a_row_stride, int64_t a_inner_stride,
                const float* b, float* c, int64_t rows, int64_t inner,
                int64_t cols, bool accumulate) {
  constexpr int W = V::kWidth;
  constexpr int64_t PW = 2 * W;
  if (rows <= 0 || cols <= 0) return;
  if (inner <= 0) {
    if (!accumulate) {
      ParallelFor(0, rows, Grain(cols), [=](int64_t begin, int64_t end) {
        std::fill(c + begin * cols, c + end * cols, 0.0f);
      });
    }
    return;
  }
  const BPanelLayout layout = BPanelLayout::For(cols, W);
  const int64_t tiles = (rows + kMr - 1) / kMr;
  const int64_t grain = std::max<int64_t>(
      1, kGemmGrainFlops / std::max<int64_t>(1, kMr * inner * cols));
  const int64_t kc = std::min<int64_t>(kKc, inner);
  ParallelFor(0, tiles, grain, [=](int64_t tile_begin, int64_t tile_end) {
    PoolScratch bpack(kc * layout.packed_cols);
    float apack[kMr * kKc];
    for (int64_t k0 = 0; k0 < inner; k0 += kKc) {
      const int64_t kk = std::min<int64_t>(kKc, inner - k0);
      PackB<V>(bpack.data(), b, k0, kk, cols, layout);
      const bool add_c = accumulate || k0 > 0;
      for (int64_t t = tile_begin; t < tile_end; ++t) {
        const int64_t row0 = t * kMr;
        const int mr = static_cast<int>(std::min<int64_t>(kMr, rows - row0));
        PackA(apack, a, row0, mr, k0, kk, a_row_stride, a_inner_stride);
        float* ctile = c + row0 * cols;
        for (int64_t d = 0; d < layout.n2; ++d) {
          RunPanel<V, 2>(mr, apack, bpack.data() + d * PW * kk, kk,
                         ctile + d * PW, cols, add_c);
        }
        if (layout.has_single) {
          RunPanel<V, 1>(mr, apack, bpack.data() + layout.SingleBase(kk, W),
                         kk, ctile + layout.n2 * PW, cols, add_c);
        }
        if (layout.tail > 0) {
          RunTailPanel<V>(mr, apack, bpack.data() + layout.TailBase(kk, W),
                          kk,
                          ctile + layout.n2 * PW +
                              (layout.has_single ? W : 0),
                          cols, layout.tail, add_c);
        }
      }
    }
  });
}

template <class V>
void GemmNN(const float* a, const float* b, float* c, int64_t m, int64_t k,
            int64_t n, bool accumulate) {
  GemmPacked<V>(a, /*a_row_stride=*/k, /*a_inner_stride=*/1, b, c, m, k, n,
                accumulate);
}

template <class V>
void GemmTN(const float* a, const float* b, float* c, int64_t m, int64_t k,
            int64_t n, bool accumulate) {
  // C[p][j] = sum_i a[i*k + p] * b[i*n + j]: rows of C index k, the inner
  // dimension indexes m, and A' strides are (1, k).
  GemmPacked<V>(a, /*a_row_stride=*/1, /*a_inner_stride=*/k, b, c, k, m, n,
                accumulate);
}

/// NT is a row of dot products — no packing wins here; two dedicated vector
/// accumulators (even/odd W chunks) break the FMA dependence chain, merged
/// through the fixed lane tree, scalar tail in order.
template <class V>
void GemmNT(const float* a, const float* b, float* c, int64_t m, int64_t n,
            int64_t k, bool accumulate) {
  using R = typename V::Reg;
  constexpr int W = V::kWidth;
  const int64_t grain = std::max<int64_t>(
      1, kGemmGrainFlops / std::max<int64_t>(1, n * k));
  ParallelFor(0, m, grain, [=](int64_t row_begin, int64_t row_end) {
    for (int64_t i = row_begin; i < row_end; ++i) {
      const float* arow = a + i * n;
      for (int64_t p = 0; p < k; ++p) {
        const float* brow = b + p * n;
        R acc0 = V::Zero();
        R acc1 = V::Zero();
        int64_t j = 0;
        for (; j + 2 * W <= n; j += 2 * W) {
          acc0 = V::Fma(V::Load(arow + j), V::Load(brow + j), acc0);
          acc1 = V::Fma(V::Load(arow + j + W), V::Load(brow + j + W), acc1);
        }
        if (j + W <= n) {
          acc0 = V::Fma(V::Load(arow + j), V::Load(brow + j), acc0);
          j += W;
        }
        float sum = V::ReduceAdd(V::Add(acc0, acc1));
        for (; j < n; ++j) sum += arow[j] * brow[j];
        if (accumulate) {
          c[i * k + p] += sum;
        } else {
          c[i * k + p] = sum;
        }
      }
    }
  });
}

// ---------------------------------------------------------------------------
// Fused transformer kernels.
// ---------------------------------------------------------------------------

template <class V>
void FusedLayerNormForward(const float* x, const float* gamma,
                           const float* beta, float eps, float* y,
                           float* mean, float* rstd, int64_t rows,
                           int64_t features) {
  using R = typename V::Reg;
  constexpr int W = V::kWidth;
  ParallelFor(0, rows, Grain(features), [=](int64_t begin, int64_t end) {
    for (int64_t r = begin; r < end; ++r) {
      const float* row = x + r * features;
      const int64_t ng = features / W;  // full vector groups
      float m;
      float m2;
      int64_t count;
      if (ng > 0) {
        // Per-lane Welford: lane L sees elements g*W + L, g ascending.
        R vmean = V::Zero();
        R vm2 = V::Zero();
        for (int64_t g = 0; g < ng; ++g) {
          const R v = V::Load(row + g * W);
          const R delta = V::Sub(v, vmean);
          vmean = V::Add(vmean,
                         V::Div(delta, V::Set1(static_cast<float>(g + 1))));
          vm2 = V::Fma(delta, V::Sub(v, vmean), vm2);
        }
        // Chan pairwise lane merge; counts are equal on both sides of every
        // merge, so the tree is fixed and exact-count weighted.
        float means[W];
        float m2s[W];
        V::Store(means, vmean);
        V::Store(m2s, vm2);
        float lane_count = static_cast<float>(ng);
        for (int half = W / 2; half >= 1; half /= 2) {
          for (int i = 0; i < half; ++i) {
            const float d = means[i + half] - means[i];
            means[i] += 0.5f * d;
            m2s[i] += m2s[i + half] + d * d * (0.5f * lane_count);
          }
          lane_count *= 2.0f;
        }
        m = means[0];
        m2 = m2s[0];
        count = ng * W;
      } else {
        m = 0.0f;
        m2 = 0.0f;
        count = 0;
      }
      // Scalar Welford continuation over the ragged tail.
      for (int64_t f = ng * W; f < features; ++f) {
        const float v = row[f];
        ++count;
        const float delta = v - m;
        m += delta / static_cast<float>(count);
        m2 += delta * (v - m);
      }
      const float var = m2 / static_cast<float>(features);
      const float rs = 1.0f / std::sqrt(var + eps);
      if (mean != nullptr) mean[r] = m;
      if (rstd != nullptr) rstd[r] = rs;
      float* out = y + r * features;
      const R vm = V::Set1(m);
      const R vrs = V::Set1(rs);
      int64_t f = 0;
      for (; f + W <= features; f += W) {
        const R xhat = V::Mul(V::Sub(V::Load(row + f), vm), vrs);
        V::Store(out + f, V::Fma(xhat, V::Load(gamma + f), V::Load(beta + f)));
      }
      for (; f < features; ++f) {
        out[f] = (row[f] - m) * rs * gamma[f] + beta[f];
      }
    }
  });
}

template <class V>
void FusedLayerNormBackward(const float* g, const float* x,
                            const float* gamma, const float* mean,
                            const float* rstd, float* dx, float* dgamma,
                            float* dbeta, int64_t rows, int64_t features) {
  using R = typename V::Reg;
  constexpr int W = V::kWidth;
  if (dx != nullptr) {
    ParallelFor(0, rows, Grain(features), [=](int64_t begin, int64_t end) {
      for (int64_t r = begin; r < end; ++r) {
        const float* grow = g + r * features;
        const float* row = x + r * features;
        const R vm = V::Set1(mean[r]);
        const R vrs = V::Set1(rstd[r]);
        R vc1 = V::Zero();
        R vc2 = V::Zero();
        int64_t f = 0;
        for (; f + W <= features; f += W) {
          const R gg = V::Mul(V::Load(grow + f), V::Load(gamma + f));
          vc1 = V::Add(vc1, gg);
          const R xhat = V::Mul(V::Sub(V::Load(row + f), vm), vrs);
          vc2 = V::Fma(gg, xhat, vc2);
        }
        float c1 = V::ReduceAdd(vc1);
        float c2 = V::ReduceAdd(vc2);
        const float m = mean[r];
        const float rs = rstd[r];
        for (; f < features; ++f) {
          const float gg = grow[f] * gamma[f];
          c1 += gg;
          c2 += gg * (row[f] - m) * rs;
        }
        c1 /= static_cast<float>(features);
        c2 /= static_cast<float>(features);
        float* drow = dx + r * features;
        const R vC1 = V::Set1(c1);
        const R vC2 = V::Set1(c2);
        f = 0;
        for (; f + W <= features; f += W) {
          const R gg = V::Mul(V::Load(grow + f), V::Load(gamma + f));
          const R xhat = V::Mul(V::Sub(V::Load(row + f), vm), vrs);
          const R d = V::Mul(vrs, V::Sub(V::Sub(gg, vC1), V::Mul(xhat, vC2)));
          V::Store(drow + f, V::Add(V::Load(drow + f), d));
        }
        for (; f < features; ++f) {
          const float xhat = (row[f] - m) * rs;
          drow[f] += rs * (grow[f] * gamma[f] - c1 - xhat * c2);
        }
      }
    });
  }
  if (dgamma != nullptr || dbeta != nullptr) {
    // Column reduction, parallel over W-wide feature groups so vector vs
    // scalar membership is shape-determined (see file comment). Each lane
    // accumulates its feature over rows ascending — the same order and
    // association as the scalar backend.
    const int64_t groups = (features + W - 1) / W;
    ParallelFor(0, groups, Grain(rows * W), [=](int64_t gb, int64_t ge) {
      for (int64_t gi = gb; gi < ge; ++gi) {
        const int64_t f0 = gi * W;
        if (f0 + W <= features) {
          R sum_g = V::Zero();
          R sum_gx = V::Zero();
          for (int64_t r = 0; r < rows; ++r) {
            const R gv = V::Load(g + r * features + f0);
            sum_g = V::Add(sum_g, gv);
            const R xhat = V::Mul(
                V::Sub(V::Load(x + r * features + f0), V::Set1(mean[r])),
                V::Set1(rstd[r]));
            sum_gx = V::Fma(gv, xhat, sum_gx);
          }
          if (dgamma != nullptr) {
            V::Store(dgamma + f0, V::Add(V::Load(dgamma + f0), sum_gx));
          }
          if (dbeta != nullptr) {
            V::Store(dbeta + f0, V::Add(V::Load(dbeta + f0), sum_g));
          }
        } else {
          for (int64_t f = f0; f < features; ++f) {
            float sum_g = 0.0f;
            float sum_gx = 0.0f;
            for (int64_t r = 0; r < rows; ++r) {
              const float gv = g[r * features + f];
              sum_g += gv;
              sum_gx += gv * (x[r * features + f] - mean[r]) * rstd[r];
            }
            if (dgamma != nullptr) dgamma[f] += sum_gx;
            if (dbeta != nullptr) dbeta[f] += sum_g;
          }
        }
      }
    });
  }
}

template <class V>
void FusedSoftmaxForward(const float* x, const float* mask, int64_t mask_rows,
                         float scale, float masked_value, float* y,
                         int64_t rows, int64_t dim) {
  using R = typename V::Reg;
  constexpr int W = V::kWidth;
  ParallelFor(0, rows, Grain(dim), [=](int64_t begin, int64_t end) {
    for (int64_t r = begin; r < end; ++r) {
      const float* row = x + r * dim;
      const float* mask_row =
          mask != nullptr ? mask + (r % mask_rows) * dim : nullptr;
      float* out = y + r * dim;
      const R vscale = V::Set1(scale);
      float max_value = -std::numeric_limits<float>::infinity();
      int64_t d = 0;
      if (dim >= W) {
        R vmax = V::Set1(max_value);
        if (mask_row != nullptr) {
          const R vmasked = V::Set1(masked_value);
          for (; d + W <= dim; d += W) {
            const R v = V::Select(V::CmpNeZero(V::Load(mask_row + d)),
                                  vmasked, V::Mul(V::Load(row + d), vscale));
            V::Store(out + d, v);
            vmax = V::Max(vmax, v);
          }
        } else {
          for (; d + W <= dim; d += W) {
            const R v = V::Mul(V::Load(row + d), vscale);
            V::Store(out + d, v);
            vmax = V::Max(vmax, v);
          }
        }
        max_value = V::ReduceMax(vmax);
      }
      for (; d < dim; ++d) {
        const float v = (mask_row != nullptr && mask_row[d] != 0.0f)
                            ? masked_value
                            : row[d] * scale;
        out[d] = v;
        max_value = std::max(max_value, v);
      }
      float denom = 0.0f;
      d = 0;
      if (dim >= W) {
        const R vm = V::Set1(max_value);
        R vden = V::Zero();
        for (; d + W <= dim; d += W) {
          const R e = Exp<V>(V::Sub(V::Load(out + d), vm));
          V::Store(out + d, e);
          vden = V::Add(vden, e);
        }
        denom = V::ReduceAdd(vden);
      }
      for (; d < dim; ++d) {
        out[d] = std::exp(out[d] - max_value);
        denom += out[d];
      }
      const R vdenom = V::Set1(denom);
      d = 0;
      for (; d + W <= dim; d += W) {
        V::Store(out + d, V::Div(V::Load(out + d), vdenom));
      }
      for (; d < dim; ++d) out[d] /= denom;
    }
  });
}

template <class V>
void FusedSoftmaxBackward(const float* g, const float* y, float scale,
                          float* dx, int64_t rows, int64_t dim) {
  using R = typename V::Reg;
  constexpr int W = V::kWidth;
  ParallelFor(0, rows, Grain(dim), [=](int64_t begin, int64_t end) {
    for (int64_t r = begin; r < end; ++r) {
      const float* grow = g + r * dim;
      const float* yrow = y + r * dim;
      float dot = 0.0f;
      int64_t d = 0;
      if (dim >= W) {
        R vdot = V::Zero();
        for (; d + W <= dim; d += W) {
          vdot = V::Fma(V::Load(grow + d), V::Load(yrow + d), vdot);
        }
        dot = V::ReduceAdd(vdot);
      }
      for (; d < dim; ++d) dot += grow[d] * yrow[d];
      float* drow = dx + r * dim;
      const R vscale = V::Set1(scale);
      const R vdot = V::Set1(dot);
      d = 0;
      for (; d + W <= dim; d += W) {
        const R t = V::Mul(V::Mul(vscale, V::Load(yrow + d)),
                           V::Sub(V::Load(grow + d), vdot));
        V::Store(drow + d, V::Add(V::Load(drow + d), t));
      }
      for (; d < dim; ++d) {
        drow[d] += scale * yrow[d] * (grow[d] - dot);
      }
    }
  });
}

template <class V>
void FusedBiasGeluForward(const float* x, const float* bias, float* y,
                          int64_t rows, int64_t features) {
  using R = typename V::Reg;
  constexpr int W = V::kWidth;
  ParallelFor(0, rows, Grain(features), [=](int64_t begin, int64_t end) {
    for (int64_t r = begin; r < end; ++r) {
      const float* row = x + r * features;
      float* out = y + r * features;
      int64_t f = 0;
      for (; f + W <= features; f += W) {
        R u = V::Load(row + f);
        if (bias != nullptr) u = V::Add(u, V::Load(bias + f));
        V::Store(out + f, GeluValueV<V>(u));
      }
      for (; f < features; ++f) {
        const float u = bias != nullptr ? row[f] + bias[f] : row[f];
        out[f] = ScalarGeluValue(u);
      }
    }
  });
}

template <class V>
void FusedBiasGeluBackward(const float* g, const float* x, const float* bias,
                           float* dx, float* dbias, float* scratch,
                           int64_t rows, int64_t features) {
  using R = typename V::Reg;
  constexpr int W = V::kWidth;
  // Row-parallel (the scalar backend chunks the flat range, but the vector
  // body must stay aligned to feature groups for bias indexing and for the
  // shape-determined tail rule, so rows are the parallel unit here).
  ParallelFor(0, rows, Grain(features), [=](int64_t begin, int64_t end) {
    for (int64_t r = begin; r < end; ++r) {
      const float* grow = g + r * features;
      const float* row = x + r * features;
      int64_t f = 0;
      for (; f + W <= features; f += W) {
        R u = V::Load(row + f);
        if (bias != nullptr) u = V::Add(u, V::Load(bias + f));
        const R du = V::Mul(V::Load(grow + f), GeluDerivativeV<V>(u));
        const int64_t i = r * features + f;
        if (scratch != nullptr) V::Store(scratch + i, du);
        if (dx != nullptr) V::Store(dx + i, V::Add(V::Load(dx + i), du));
      }
      for (; f < features; ++f) {
        const float u = bias != nullptr ? row[f] + bias[f] : row[f];
        const float du = grow[f] * ScalarGeluDerivative(u);
        const int64_t i = r * features + f;
        if (scratch != nullptr) scratch[i] = du;
        if (dx != nullptr) dx[i] += du;
      }
    }
  });
  if (dbias != nullptr) {
    // Group-parallel column reduction, rows ascending per lane (same rule
    // as the LayerNorm dgamma/dbeta reduction above).
    const int64_t groups = (features + W - 1) / W;
    ParallelFor(0, groups, Grain(rows * W), [=](int64_t gb, int64_t ge) {
      for (int64_t gi = gb; gi < ge; ++gi) {
        const int64_t f0 = gi * W;
        if (f0 + W <= features) {
          R sum = V::Zero();
          for (int64_t r = 0; r < rows; ++r) {
            sum = V::Add(sum, V::Load(scratch + r * features + f0));
          }
          V::Store(dbias + f0, V::Add(V::Load(dbias + f0), sum));
        } else {
          for (int64_t f = f0; f < features; ++f) {
            float sum = 0.0f;
            for (int64_t r = 0; r < rows; ++r) {
              sum += scratch[r * features + f];
            }
            dbias[f] += sum;
          }
        }
      }
    });
  }
}

template <class V>
int64_t CountNonFinite(const float* x, int64_t n) {
  constexpr int W = V::kWidth;
  std::atomic<int64_t> total{0};
  // Integer counts are exact under any association, so the vector/tail
  // split may follow the chunk boundaries here without breaking the
  // determinism contract.
  ParallelFor(0, n, kElementwiseGrain, [&](int64_t begin, int64_t end) {
    int64_t local = 0;
    int64_t i = begin;
    for (; i + W <= end; i += W) {
      local += V::CountNonFinite(V::Load(x + i));
    }
    for (; i < end; ++i) {
      if (!std::isfinite(x[i])) ++local;
    }
    if (local != 0) total.fetch_add(local, std::memory_order_relaxed);
  });
  return total.load(std::memory_order_relaxed);
}

/// The dispatch table for one instantiated ISA; called by the per-ISA TUs.
template <class V>
KernelTable MakeTable(const char* name) {
  return KernelTable{
      name,
      &GemmNN<V>,
      &GemmNT<V>,
      &GemmTN<V>,
      &FusedLayerNormForward<V>,
      &FusedLayerNormBackward<V>,
      &FusedSoftmaxForward<V>,
      &FusedSoftmaxBackward<V>,
      &FusedBiasGeluForward<V>,
      &FusedBiasGeluBackward<V>,
      &CountNonFinite<V>,
  };
}

}  // namespace timedrl::kernels::simd::arch

#endif  // TIMEDRL_TENSOR_KERNELS_ARCH_SIMD_KERNELS_H_
