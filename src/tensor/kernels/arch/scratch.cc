#include "tensor/kernels/arch/scratch.h"

#include <utility>

#include "tensor/buffer_pool.h"

namespace timedrl::kernels::simd::arch {

PoolScratch::PoolScratch(int64_t n)
    : buffer_(pool::AcquireUninit(n)), data_(buffer_.data()) {}

PoolScratch::~PoolScratch() { pool::Release(std::move(buffer_)); }

}  // namespace timedrl::kernels::simd::arch
