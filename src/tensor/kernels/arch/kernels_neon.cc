// NEON backend TU. NEON is baseline on AArch64, so no special flags are
// needed there; on every other target the accessor is a nullptr stub.

#include "tensor/kernels/arch/simd_kernels.h"

namespace timedrl::kernels::simd::arch {

#if defined(__ARM_NEON) && defined(__aarch64__)

const KernelTable* NeonTable() {
  static const KernelTable table = MakeTable<Neon>("neon");
  return &table;
}

#else

const KernelTable* NeonTable() { return nullptr; }

#endif

}  // namespace timedrl::kernels::simd::arch
