// Pool-backed scratch for the packed GEMM (kernels/arch/simd_kernels.h).
//
// A thin RAII wrapper over pool::AcquireUninit / pool::Release whose
// constructor and destructor are deliberately OUT-OF-LINE (scratch.cc,
// compiled with baseline flags): the per-ISA TUs must not instantiate
// std::vector member functions, or the linker could resolve another TU's
// copy of those comdat symbols to one compiled with -mavx2/-mavx512 and
// execute vector instructions from a baseline code path.

#ifndef TIMEDRL_TENSOR_KERNELS_ARCH_SCRATCH_H_
#define TIMEDRL_TENSOR_KERNELS_ARCH_SCRATCH_H_

#include <cstdint>
#include <vector>

namespace timedrl::kernels::simd::arch {

/// A buffer of `n` floats from the buffer pool, with unspecified contents
/// (callers overwrite before reading), returned to the pool on destruction.
class PoolScratch {
 public:
  explicit PoolScratch(int64_t n);
  ~PoolScratch();
  PoolScratch(const PoolScratch&) = delete;
  PoolScratch& operator=(const PoolScratch&) = delete;

  float* data() { return data_; }

 private:
  std::vector<float> buffer_;
  float* data_;
};

}  // namespace timedrl::kernels::simd::arch

#endif  // TIMEDRL_TENSOR_KERNELS_ARCH_SCRATCH_H_
