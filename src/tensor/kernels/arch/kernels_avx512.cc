// AVX-512 backend TU (F+DQ+VL+BW feature set). This file (alone) is
// compiled with the -mavx512* flags on x86 (src/tensor/CMakeLists.txt);
// otherwise the accessor is a nullptr stub and no 512-bit code exists in
// the binary.

#include "tensor/kernels/arch/simd_kernels.h"

namespace timedrl::kernels::simd::arch {

#if defined(__AVX512F__) && defined(__AVX512DQ__) && defined(__AVX512VL__) && \
    defined(__AVX512BW__)

const KernelTable* Avx512Table() {
  static const KernelTable table = MakeTable<Avx512>("avx512");
  return &table;
}

#else

const KernelTable* Avx512Table() { return nullptr; }

#endif

}  // namespace timedrl::kernels::simd::arch
