// AVX2+FMA backend TU. This file (alone) is compiled with -mavx2 -mfma on
// x86 (src/tensor/CMakeLists.txt); on other targets — or if those flags are
// missing — the guard below compiles the accessor to a nullptr stub and no
// vector code exists in the TU.

#include "tensor/kernels/arch/simd_kernels.h"

namespace timedrl::kernels::simd::arch {

#if defined(__AVX2__) && defined(__FMA__)

const KernelTable* Avx2Table() {
  static const KernelTable table = MakeTable<Avx2>("avx2");
  return &table;
}

#else

const KernelTable* Avx2Table() { return nullptr; }

#endif

}  // namespace timedrl::kernels::simd::arch
