// Data-movement kernels: dense accumulation, strided block copies, and
// strided gathers. These hold the loops behind reshape/permute/slice/concat/
// broadcast in src/tensor/ops_shape.cc.
//
// Threading model (see util/thread_pool.h): every parallel kernel here
// partitions disjoint OUTPUT ranges across threads — a block copy owns whole
// destination blocks, a gather owns output indices. Scatter-style strided
// accumulation (many output indices folding onto one destination slot, as in
// BroadcastTo's backward) reuses the serial ReduceAddStrided from
// tensor/kernels/reduce.h instead.

#ifndef TIMEDRL_TENSOR_KERNELS_COPY_H_
#define TIMEDRL_TENSOR_KERNELS_COPY_H_

#include <cstdint>
#include <vector>

#include "tensor/shape.h"

namespace timedrl::kernels {

/// dst[i] += src[i] for i in [0, n). Parallel; disjoint writes.
void AddInto(const float* src, float* dst, int64_t n);

/// Copies `count` blocks of `block` floats:
///   dst[i*dst_stride .. +block) = src[i*src_stride .. +block).
/// Parallel over blocks; callers must pass dst_stride >= block so that
/// destination blocks stay disjoint per thread.
void CopyStridedBlocks(const float* src, float* dst, int64_t count,
                       int64_t block, int64_t src_stride, int64_t dst_stride);

/// Like CopyStridedBlocks but accumulates: dst[...] += src[...].
/// Parallel over blocks; same disjointness requirement on dst_stride.
void AccumulateStridedBlocks(const float* src, float* dst, int64_t count,
                             int64_t block, int64_t src_stride,
                             int64_t dst_stride);

/// out[i] = src[offset(i)] where offset(i) walks `strides` (stride 0 on
/// broadcast dims) over the row-major indices of `out_shape`. Parallel:
/// output writes are disjoint, the source is only read.
void GatherStrided(const Shape& out_shape,
                   const std::vector<int64_t>& strides, const float* src,
                   float* out);

}  // namespace timedrl::kernels

#endif  // TIMEDRL_TENSOR_KERNELS_COPY_H_
