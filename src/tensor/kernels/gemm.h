// Dense float GEMM kernels in the three transpose variants the autograd ops
// need. Pure raw-buffer functions: no shapes, no autograd — that wiring
// lives in src/tensor/ops_matmul.cc and friends.
//
// With `accumulate` (the default) the kernels ACCUMULATE into C (C += ...),
// so callers can chain them for gradient accumulation without zeroing
// between calls. With accumulate=false they overwrite C instead — the rows a
// worker owns are zeroed right before their accumulation loop, while they
// are cache-hot, which spares forward ops a separate zero-fill pass over
// cold output memory. Both modes produce bitwise-identical values (the
// overwrite path still starts every element from +0.0f).
//
// Threading model (see util/thread_pool.h): every kernel partitions its
// OUTPUT rows across the global thread pool. Each output element is computed
// by exactly one thread with a fixed inner reduction order, so results are
// bitwise-identical for any TIMEDRL_NUM_THREADS. Parallel gradient
// accumulation stays race-free for the same reason: a thread only writes
// rows it owns. Kernels that cannot partition their outputs disjointly must
// run serially — do not "optimize" them onto the pool.

#ifndef TIMEDRL_TENSOR_KERNELS_GEMM_H_
#define TIMEDRL_TENSOR_KERNELS_GEMM_H_

#include <cstdint>

namespace timedrl::kernels {

/// C[m,n] += A[m,k] * B[k,n] (or = with accumulate=false). Parallel over
/// rows of C.
void GemmNN(const float* a, const float* b, float* c, int64_t m, int64_t k,
            int64_t n, bool accumulate = true);

/// C[m,k] += A[m,n] * B[k,n]^T (i.e. C = A * B^T; = with accumulate=false).
/// Parallel over rows of C.
void GemmNT(const float* a, const float* b, float* c, int64_t m, int64_t n,
            int64_t k, bool accumulate = true);

/// C[k,n] += A[m,k]^T * B[m,n] (i.e. C = A^T * B). Parallel over rows of C
/// (the k dimension), which makes the accumulation disjoint per thread even
/// though the reduction runs over rows of A and B.
void GemmTN(const float* a, const float* b, float* c, int64_t m, int64_t k,
            int64_t n, bool accumulate = true);

}  // namespace timedrl::kernels

#endif  // TIMEDRL_TENSOR_KERNELS_GEMM_H_
