// A dense float32 CPU tensor with reverse-mode automatic differentiation.
//
// Design notes:
//  - Tensors are always contiguous row-major buffers; every op materializes
//    its result (no views). This keeps kernels and gradients simple and is
//    plenty fast for the model sizes this project trains.
//  - Autograd is tape-free: each op stores its parents and a backward closure
//    on the result's TensorImpl. Tensor::Backward() topologically sorts the
//    reachable graph and runs closures in reverse order.
//  - Gradient recording is controlled by the thread-local ExecContext
//    (NoGradGuard / InferenceModeGuard) and per-tensor `requires_grad`.
//    Op wrappers consult internal::Recording() BEFORE building parent lists
//    or backward closures, so a non-recording forward (eval-mode serving,
//    metric computation) is graph-free by construction: results are plain
//    leaves and no per-op autograd bookkeeping is allocated at all.

#ifndef TIMEDRL_TENSOR_TENSOR_H_
#define TIMEDRL_TENSOR_TENSOR_H_

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "tensor/shape.h"
#include "util/rng.h"

namespace timedrl {

/// Shared state behind a Tensor handle. Public members are for internal use
/// by op kernels; library users interact through Tensor.
struct TensorImpl {
  Shape shape;
  std::vector<float> data;
  /// Gradient buffer; empty until first accumulation.
  std::vector<float> grad;
  bool requires_grad = false;
  /// Set when Backward(retain_graph=false) consumed this node's edges.
  bool graph_released = false;

  /// Autograd graph edges: inputs that produced this tensor.
  std::vector<std::shared_ptr<TensorImpl>> parents;
  /// Propagates `this->grad` into `parents`' grads. Null for leaves.
  std::function<void(TensorImpl&)> backward_fn;

  /// Returns data and grad storage to the buffer pool (see buffer_pool.h).
  ~TensorImpl();

  int64_t numel() const { return NumElements(shape); }

  /// Gradient buffer, allocated (zero-filled) on first use.
  std::vector<float>& MutableGrad();
};

/// Execution mode of the calling thread's forward path (see ExecContext).
enum class ExecMode {
  kTraining,   // ops record autograd state for inputs that require grad
  kInference,  // whole-op graph-free fast path; implies recording off
};

/// Per-thread execution context consulted by every op wrapper. Training
/// code never touches this directly — NoGradGuard and InferenceModeGuard
/// are the public controls — but it is exposed so tests and the serving
/// layer can assert on `graph_nodes_created`.
struct ExecContext {
  /// Cleared by NoGradGuard: gates autograd recording.
  bool grad_enabled = true;
  /// Set to kInference by InferenceModeGuard.
  ExecMode mode = ExecMode::kTraining;
  /// Op results that received autograd state (parent edges + a backward
  /// closure) on this thread, monotonically increasing. Graph-free paths
  /// are verified by asserting a delta of zero across a forward pass.
  int64_t graph_nodes_created = 0;
};

/// The calling thread's execution context.
ExecContext& ThreadExecContext();

/// Returns true when ops should record autograd graph edges: gradients are
/// enabled and the thread executes in training mode.
bool GradEnabled();

/// Autograd graph nodes created by this thread so far (see ExecContext).
int64_t GraphNodesCreated();

/// RAII scope that disables gradient recording (like torch.no_grad()).
/// Ops inside the scope take the graph-free path: no parent edges, no
/// backward closures, results are plain leaves.
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool previous_;
};

/// RAII scope entering inference execution (like torch.inference_mode()).
/// Subsumes NoGradGuard and is independent of it: recording stays off for
/// the scope's lifetime even if code inside constructs fresh guards.
/// `enable = false` makes the guard a no-op, for scopes that are
/// conditionally graph-free (e.g. eval-mode model forwards).
class InferenceModeGuard {
 public:
  explicit InferenceModeGuard(bool enable = true);
  ~InferenceModeGuard();
  InferenceModeGuard(const InferenceModeGuard&) = delete;
  InferenceModeGuard& operator=(const InferenceModeGuard&) = delete;

 private:
  ExecMode previous_;
};

/// Value-semantic handle to a shared TensorImpl.
///
/// Copying a Tensor aliases the same storage (like torch). Use Clone() for a
/// deep copy. A default-constructed Tensor is "empty" (defined() == false).
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::shared_ptr<TensorImpl> impl) : impl_(std::move(impl)) {}

  // ---- Factories -----------------------------------------------------------

  static Tensor Zeros(const Shape& shape, bool requires_grad = false);
  static Tensor Ones(const Shape& shape, bool requires_grad = false);
  static Tensor Full(const Shape& shape, float value,
                     bool requires_grad = false);
  /// Takes ownership of `values`; dies unless values.size() == numel(shape).
  static Tensor FromVector(const Shape& shape, std::vector<float> values,
                           bool requires_grad = false);
  /// Convenience scalar (shape [1]).
  static Tensor Scalar(float value, bool requires_grad = false);
  /// I.i.d. N(mean, stddev^2) entries.
  static Tensor Randn(const Shape& shape, Rng& rng, float mean = 0.0f,
                      float stddev = 1.0f, bool requires_grad = false);
  /// I.i.d. U[lo, hi) entries.
  static Tensor Rand(const Shape& shape, Rng& rng, float lo = 0.0f,
                     float hi = 1.0f, bool requires_grad = false);

  // ---- Introspection -------------------------------------------------------

  bool defined() const { return impl_ != nullptr; }
  const Shape& shape() const;
  int64_t dim() const { return static_cast<int64_t>(shape().size()); }
  int64_t numel() const;
  /// Size of dimension `d` (negative indices allowed).
  int64_t size(int64_t d) const;
  bool requires_grad() const;
  void set_requires_grad(bool value);

  std::vector<float>& data();
  const std::vector<float>& data() const;
  /// Accumulated gradient; dies if no gradient has been produced.
  const std::vector<float>& grad() const;
  bool has_grad() const;
  /// Gradient as a (non-differentiable) Tensor of the same shape.
  Tensor GradTensor() const;

  /// The single element of a one-element tensor.
  float item() const;
  /// Element access by multi-dimensional index (bounds-checked).
  float at(std::initializer_list<int64_t> index) const;
  float& at(std::initializer_list<int64_t> index);

  std::string ToString() const;

  // ---- Autograd ------------------------------------------------------------

  /// Runs backpropagation from this tensor. If `grad_seed` is not provided,
  /// this tensor must hold a single element and is seeded with 1.
  ///
  /// By default the graph is released eagerly: as soon as a node's closure
  /// has run, its parent edges and closure are dropped, so intermediate
  /// activation buffers return to the buffer pool mid-backward instead of at
  /// end of step. Leaf data and leaf grads are never touched, and any node
  /// still held by a Tensor handle keeps its data/grad — only the graph
  /// wiring goes away. Pass `retain_graph = true` to keep the graph for a
  /// second Backward over the same nodes; calling Backward again on a
  /// released graph dies with a CHECK.
  void Backward(bool retain_graph = false);
  void Backward(const Tensor& grad_seed, bool retain_graph = false);

  /// Clears this tensor's accumulated gradient.
  void ZeroGrad();

  /// A new leaf tensor sharing this tensor's storage but cut off from the
  /// autograd graph (the paper's stop_gradient operation).
  Tensor Detach() const;

  /// Deep copy (fresh storage, leaf, same requires_grad).
  Tensor Clone() const;

  /// Internal: shared implementation pointer used by op kernels.
  const std::shared_ptr<TensorImpl>& impl() const;

 private:
  std::shared_ptr<TensorImpl> impl_;
};

namespace internal {

/// Builds an op result: wires parents and the backward closure when gradient
/// recording is active and some parent requires grad.
Tensor MakeOpResult(Shape shape, std::vector<float> data,
                    std::vector<std::shared_ptr<TensorImpl>> parents,
                    std::function<void(TensorImpl&)> backward_fn);

/// Graph-free op result: a plain leaf holding shape + data. The inference
/// path's counterpart to MakeOpResult.
Tensor MakeLeafResult(Shape shape, std::vector<float> data);

/// True when an op over these inputs must record autograd state: recording
/// is active and some input requires grad. Wrappers branch on this BEFORE
/// building parent lists or backward closures, so non-recording forwards
/// allocate neither.
inline bool Recording(const Tensor& a) {
  return GradEnabled() && a.requires_grad();
}
inline bool Recording(const Tensor& a, const Tensor& b) {
  return GradEnabled() && (a.requires_grad() || b.requires_grad());
}
bool Recording(const std::vector<Tensor>& tensors);

}  // namespace internal
}  // namespace timedrl

#endif  // TIMEDRL_TENSOR_TENSOR_H_
