// Fused transformer hot-path ops: LayerNorm, masked attention softmax, and
// Bias+GELU, each collapsing a multi-op composition into one autograd node
// backed by a single kernel sweep (tensor/kernels/fused.h).
//
// Every op here has a composed fallback — the exact op sequence it
// replaced — selected at runtime via fusion::Enabled(). Setting the
// TIMEDRL_FUSION_DISABLE=1 environment variable (or calling
// fusion::SetEnabled(false)) routes all callers through the fallback, the
// escape hatch for A/B timing and numerical bisection.
//
// Numerical-equivalence policy (see DESIGN.md §13):
//  - FusedAttentionSoftmax's forward is BITWISE identical to the composed
//    scale -> MaskedFill -> Softmax sequence (same per-element operations
//    in the same order).
//  - FusedBiasGelu's forward is bitwise identical to Add -> Gelu.
//  - FusedLayerNorm uses single-pass Welford statistics, which round
//    differently from the composed two-pass mean/var; forwards agree to
//    float rounding (~1e-6 relative), gradients to ~1e-4.
//  - All fused ops are bitwise deterministic across thread counts.

#ifndef TIMEDRL_TENSOR_OPS_FUSED_H_
#define TIMEDRL_TENSOR_OPS_FUSED_H_

#include "tensor/tensor.h"

namespace timedrl {

namespace fusion {

/// Whether the Fused* ops run their fused kernels (true) or the composed
/// fallback ops. Seeded from TIMEDRL_FUSION_DISABLE at first use.
bool Enabled();

/// Programmatic override of TIMEDRL_FUSION_DISABLE (benchmarks, tests).
void SetEnabled(bool enabled);

}  // namespace fusion

/// LayerNorm over the last dimension: (x - mean) / sqrt(var + eps) * gamma
/// + beta, with per-row statistics. gamma/beta: [features] where features =
/// x.size(-1). Replaces the ~8-op composition in nn::LayerNorm.
Tensor FusedLayerNorm(const Tensor& x, const Tensor& gamma,
                      const Tensor& beta, float eps);

/// softmax(scale * scores + mask) over the last dimension — the attention
/// epilogue. `mask` is optional (pass a default-constructed Tensor for
/// none): a [T, T] tile whose nonzero entries force the score to -1e9
/// before the softmax, tiled over the leading dims (mask gets no
/// gradient). Replaces scale -> MaskedFill -> Softmax in attention.
Tensor FusedAttentionSoftmax(const Tensor& scores, float scale,
                             const Tensor& mask);

/// gelu(x + bias) with bias broadcast over the last dimension — the FFN
/// epilogue. `bias` is optional (undefined Tensor computes plain gelu(x)).
Tensor FusedBiasGelu(const Tensor& x, const Tensor& bias);

}  // namespace timedrl

#endif  // TIMEDRL_TENSOR_OPS_FUSED_H_
