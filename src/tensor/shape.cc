#include "tensor/shape.h"

#include <sstream>

#include "util/check.h"

namespace timedrl {

int64_t NumElements(const Shape& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    TIMEDRL_CHECK_GE(d, 0) << "negative dimension in " << ShapeToString(shape);
    n *= d;
  }
  return n;
}

std::vector<int64_t> RowMajorStrides(const Shape& shape) {
  std::vector<int64_t> strides(shape.size());
  int64_t running = 1;
  for (int64_t i = static_cast<int64_t>(shape.size()) - 1; i >= 0; --i) {
    strides[i] = running;
    running *= shape[i];
  }
  return strides;
}

bool BroadcastCompatible(const Shape& a, const Shape& b) {
  size_t rank = std::max(a.size(), b.size());
  for (size_t i = 0; i < rank; ++i) {
    int64_t da = i < a.size() ? a[a.size() - 1 - i] : 1;
    int64_t db = i < b.size() ? b[b.size() - 1 - i] : 1;
    if (da != db && da != 1 && db != 1) return false;
  }
  return true;
}

Shape BroadcastShape(const Shape& a, const Shape& b) {
  TIMEDRL_CHECK(BroadcastCompatible(a, b))
      << "cannot broadcast " << ShapeToString(a) << " with "
      << ShapeToString(b);
  size_t rank = std::max(a.size(), b.size());
  Shape out(rank);
  for (size_t i = 0; i < rank; ++i) {
    int64_t da = i < a.size() ? a[a.size() - 1 - i] : 1;
    int64_t db = i < b.size() ? b[b.size() - 1 - i] : 1;
    out[rank - 1 - i] = std::max(da, db);
  }
  return out;
}

std::vector<int64_t> BroadcastStrides(const Shape& from, const Shape& to) {
  TIMEDRL_CHECK_GE(to.size(), from.size());
  std::vector<int64_t> natural = RowMajorStrides(from);
  std::vector<int64_t> strides(to.size(), 0);
  for (size_t i = 0; i < from.size(); ++i) {
    size_t from_dim = from.size() - 1 - i;
    size_t to_dim = to.size() - 1 - i;
    if (from[from_dim] == to[to_dim]) {
      strides[to_dim] = natural[from_dim];
    } else {
      TIMEDRL_CHECK_EQ(from[from_dim], 1)
          << "cannot view " << ShapeToString(from) << " as "
          << ShapeToString(to);
      strides[to_dim] = 0;
    }
  }
  return strides;
}

std::string ShapeToString(const Shape& shape) {
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) out << ", ";
    out << shape[i];
  }
  out << "]";
  return out.str();
}

int64_t NormalizeDim(int64_t dim, int64_t rank) {
  if (dim < 0) dim += rank;
  TIMEDRL_CHECK(dim >= 0 && dim < rank)
      << "dim " << dim << " out of range for rank " << rank;
  return dim;
}

}  // namespace timedrl
